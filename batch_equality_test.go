package repro

// Output-equality matrix for the batched record exchange and the columnar
// whole-batch execution path: batched vs unbatched, and ColumnarExec on vs
// off, × exactly-once vs at-least-once × parallelism 1/4, over the
// windowed-count and CEP pipelines, with checkpoint barriers flowing
// mid-stream so aligned-mode stashes carry batches. Batching and columnar
// execution are transport/dispatch optimisations; any observable difference
// in results is a bug.

import (
	"fmt"
	"testing"

	"repro/internal/cep"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/window"
)

// multiset folds sink output into comparable key→count form.
func multiset(evs []core.Event) map[string]int {
	out := map[string]int{}
	for _, e := range evs {
		out[fmt.Sprintf("%s@%d=%v", e.Key, e.Timestamp, e.Value)]++
	}
	return out
}

func requireEqualOutput(t *testing.T, label string, want, got map[string]int) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: distinct outputs differ: unbatched=%d batched=%d", label, len(want), len(got))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("%s: output %q: unbatched×%d batched×%d", label, k, n, got[k])
		}
	}
}

// runWindowedCount runs a keyed tumbling count with checkpoints every 500
// source records and a small channel capacity, so barriers align mid-stream.
func runWindowedCount(t *testing.T, batch, par int, atLeastOnce, columnar bool) map[string]int {
	t.Helper()
	spec := gen.Spec{N: 4_000, Keys: 16, IntervalMs: 10, Seed: 11}
	sink := core.NewCollectSink()
	b := core.NewBuilder(core.Config{
		Name:              "eq-window",
		MaxBatchSize:      batch,
		ColumnarExec:      columnar,
		SnapshotStore:     core.NewMemorySnapshotStore(),
		CheckpointEvery:   500,
		ChannelCapacity:   8,
		WatermarkInterval: 16,
		AtLeastOnce:       atLeastOnce,
	})
	s := b.Source("src", gen.SourceFactory(spec), core.WithBoundedDisorder(0), core.WithParallelism(par)).
		KeyBy(func(e core.Event) string { return e.Key })
	window.Apply(s, "win", window.NewTumbling(1_000), window.CountAggregate()).
		Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	runWithTimeout(t, j)
	return multiset(sink.Events())
}

// runCEP runs the fraud pattern over a generated transaction stream. The
// source stays at parallelism 1 — gen sources stride-partition the stream,
// so a parallel source delivers one card's transactions over several
// channels in nondeterministic relative order and the order-sensitive NFA
// would differ run to run even unbatched. The pattern operator itself runs
// at the matrix parallelism, exercising batched hash fan-out.
func runCEP(t *testing.T, batch, par int, atLeastOnce, columnar bool) map[string]int {
	t.Helper()
	spec := gen.FraudSpec(3_000, 20, 0.05, 3)
	alerts := core.NewCollectSink()
	b := core.NewBuilder(core.Config{
		Name:               "eq-cep",
		MaxBatchSize:       batch,
		ColumnarExec:       columnar,
		SnapshotStore:      core.NewMemorySnapshotStore(),
		CheckpointEvery:    500,
		ChannelCapacity:    8,
		DefaultParallelism: par,
		AtLeastOnce:        atLeastOnce,
	})
	txns := b.Source("txns", gen.SourceFactory(spec), core.WithBoundedDisorder(0), core.WithParallelism(1))
	small := func(e core.Event) bool { return e.Value.(gen.Transaction).Amount < 100 }
	large := func(e core.Event) bool { return e.Value.(gen.Transaction).Amount >= 500 }
	pattern := cep.Begin("p1", small).FollowedBy("p2", small).
		FollowedBy("hit", large).Within(60_000).MustBuild()
	keyed := txns.KeyBy(func(e core.Event) string { return e.Value.(gen.Transaction).Card })
	cep.PatternStream(keyed, "pattern", pattern, func(card string, m cep.Match, emit func(core.Event)) {
		emit(core.Event{Key: card, Timestamp: m.End, Value: "alert"})
	}, cep.SkipPastLastEvent()).Sink("alerts", alerts.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	runWithTimeout(t, j)
	return multiset(alerts.Events())
}

func TestBatchedOutputEqualityMatrix(t *testing.T) {
	pipelines := map[string]func(t *testing.T, batch, par int, alo, columnar bool) map[string]int{
		"window": runWindowedCount,
		"cep":    runCEP,
	}
	for name, run := range pipelines {
		for _, par := range []int{1, 4} {
			for _, alo := range []bool{false, true} {
				mode := "exactly-once"
				if alo {
					mode = "at-least-once"
				}
				label := fmt.Sprintf("%s/par-%d/%s", name, par, mode)
				t.Run(label, func(t *testing.T) {
					want := run(t, 0, par, alo, false)
					got := run(t, 64, par, alo, false)
					if len(want) == 0 {
						t.Fatalf("%s: reference run produced no output", label)
					}
					requireEqualOutput(t, label, want, got)
				})
			}
		}
	}
}

// TestColumnarOutputEqualityMatrix pins the columnar whole-batch path:
// ColumnarExec on vs off at batch 64 across guarantee modes and parallelism,
// over the windowed-count pipeline (the BatchOperator fast path, including
// count kernels and run segmentation) and the CEP pipeline (a per-record
// operator running with the flag on, i.e. the fallback dispatch). Output must
// be byte-identical — the count aggregates are integers, so even float
// rounding cannot excuse a diff.
func TestColumnarOutputEqualityMatrix(t *testing.T) {
	pipelines := map[string]func(t *testing.T, batch, par int, alo, columnar bool) map[string]int{
		"window": runWindowedCount,
		"cep":    runCEP,
	}
	for name, run := range pipelines {
		for _, par := range []int{1, 4} {
			for _, alo := range []bool{false, true} {
				mode := "exactly-once"
				if alo {
					mode = "at-least-once"
				}
				label := fmt.Sprintf("%s/par-%d/%s", name, par, mode)
				t.Run(label, func(t *testing.T) {
					want := run(t, 64, par, alo, false)
					got := run(t, 64, par, alo, true)
					if len(want) == 0 {
						t.Fatalf("%s: reference run produced no output", label)
					}
					requireEqualOutput(t, label, want, got)
				})
			}
		}
	}
}

// TestBatchedCheckpointRestoreEquality stops a batched windowed job at a
// savepoint, restores it, and verifies the combined output equals a clean
// batched run and a clean unbatched run — exactly-once survives batching,
// including batches stashed during barrier alignment.
func TestBatchedCheckpointRestoreEquality(t *testing.T) {
	spec := gen.Spec{N: 3_000, Keys: 8, IntervalMs: 10, Seed: 21}
	store := core.NewMemorySnapshotStore()

	build := func(batch, stopAt int, columnar bool, jobRef **core.Job, st *core.MemorySnapshotStore, sink *core.CollectSink) *core.Job {
		b := core.NewBuilder(core.Config{
			Name:              "batch-restore",
			MaxBatchSize:      batch,
			ColumnarExec:      columnar,
			SnapshotStore:     st,
			ChannelCapacity:   4,
			WatermarkInterval: 8,
		})
		s := b.Source("src", gen.SourceFactory(spec), core.WithBoundedDisorder(0))
		if stopAt > 0 {
			s = s.Process("mid", savepointTrigger(stopAt, jobRef))
		} else {
			s = s.Map("mid", func(e core.Event) (core.Event, bool) { return e, true })
		}
		keyed := s.KeyBy(func(e core.Event) string { return e.Key })
		window.Apply(keyed, "count", window.NewTumbling(1_000), window.CountAggregate()).
			Sink("out", sink.Factory())
		j, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}

	// Unbatched clean reference.
	ref := core.NewCollectSink()
	runWithTimeout(t, build(0, 0, false, nil, nil, ref))

	// Batched clean run must match it.
	clean := core.NewCollectSink()
	runWithTimeout(t, build(64, 0, false, nil, nil, clean))
	requireEqualOutput(t, "clean", multiset(ref.Events()), multiset(clean.Events()))

	// Columnar clean run must match it too.
	columnar := core.NewCollectSink()
	runWithTimeout(t, build(64, 0, true, nil, nil, columnar))
	requireEqualOutput(t, "columnar-clean", multiset(ref.Events()), multiset(columnar.Events()))

	// Batched interrupted run + restore must match too.
	var j1 *core.Job
	part1 := core.NewCollectSink()
	j1 = build(64, 1_000, false, &j1, store, part1)
	runWithTimeout(t, j1)
	cp := j1.LastCheckpoint()
	if cp < 0 {
		t.Fatal("no savepoint completed")
	}
	part2 := core.NewCollectSink()
	j2 := build(64, 0, false, nil, store, part2)
	j2.RestoreFrom(cp)
	runWithTimeout(t, j2)
	requireEqualOutput(t, "restored",
		multiset(ref.Events()),
		multiset(append(part1.Events(), part2.Events()...)))

	// Columnar interrupted run + restore: the savepoint cuts batches stashed
	// during alignment and window state written by the whole-batch path; the
	// combined output must still match the per-record reference.
	cstore := core.NewMemorySnapshotStore()
	var cj1 *core.Job
	cpart1 := core.NewCollectSink()
	cj1 = build(64, 1_000, true, &cj1, cstore, cpart1)
	runWithTimeout(t, cj1)
	ccp := cj1.LastCheckpoint()
	if ccp < 0 {
		t.Fatal("no columnar savepoint completed")
	}
	cpart2 := core.NewCollectSink()
	cj2 := build(64, 0, true, nil, cstore, cpart2)
	cj2.RestoreFrom(ccp)
	runWithTimeout(t, cj2)
	requireEqualOutput(t, "columnar-restored",
		multiset(ref.Events()),
		multiset(append(cpart1.Events(), cpart2.Events()...)))
}
