package repro

// One testing.B benchmark per experiment in DESIGN.md §4. The benchmark
// bodies measure the experiment's core operation; the full paper-style
// tables are printed by `go run ./cmd/benchtables`. Sub-benchmarks expose
// the parameter axes (strategy, disorder, backend, policy, ...) so
// `-bench=. -benchmem` regenerates every series.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"testing"

	"repro/internal/core"
	"repro/internal/eventtime"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/iterate"
	"repro/internal/lineage"
	"repro/internal/load"
	"repro/internal/ml"
	"repro/internal/obsv"
	"repro/internal/state"
	"repro/internal/synopsis"
	"repro/internal/txn"
	"repro/internal/window"
)

// BenchmarkE1_GenerationPipelines runs one representative pipeline per
// generation (Figure 1) end to end.
func BenchmarkE1_GenerationPipelines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E1Evolution(0.02)
	}
}

// BenchmarkE2_EngineThroughput measures the 2nd-generation engine on the
// Table 1 baseline workload: keyed windowed aggregation end to end.
func BenchmarkE2_EngineThroughput(b *testing.B) {
	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parallelism-%d", par), func(b *testing.B) {
			events := 20_000
			spec := gen.Spec{N: events, Keys: 128, IntervalMs: 2, Seed: 1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink := core.NewCollectSink()
				bd := core.NewBuilder(core.Config{Name: "bench", ChannelCapacity: 1024})
				s := bd.Source("src", gen.SourceFactory(spec), core.WithBoundedDisorder(0), core.WithParallelism(par)).
					KeyBy(func(e core.Event) string { return e.Key })
				window.Apply(s, "win", window.NewTumbling(1_000), window.CountAggregate()).
					Sink("out", sink.Factory())
				j, err := bd.Build()
				if err != nil {
					b.Fatal(err)
				}
				if err := j.Run(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(events*b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkE3_SlidingAggregation compares naive / panes / two-stacks per
// element ("No pane, no gain").
func BenchmarkE3_SlidingAggregation(b *testing.B) {
	mk := map[string]func() window.SlidingAggregator{
		"naive":     func() window.SlidingAggregator { return window.NewNaiveSliding(60_000, 1_000, window.Sum) },
		"panes":     func() window.SlidingAggregator { return window.NewPaneSliding(60_000, 1_000, window.Sum) },
		"twostacks": func() window.SlidingAggregator { return window.NewTwoStacksSliding(60_000, 1_000, window.Sum) },
	}
	for name, fac := range mk {
		b.Run(name, func(b *testing.B) {
			agg := fac()
			rng := rand.New(rand.NewSource(7))
			ts := int64(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ts += int64(rng.Intn(20))
				agg.Add(ts, 1.0)
			}
		})
	}
}

// BenchmarkE4_OOPvsBuffering measures the two disorder-handling strategies.
func BenchmarkE4_OOPvsBuffering(b *testing.B) {
	const disorder = 1_000
	b.Run("iop-reorder-buffer", func(b *testing.B) {
		buf := eventtime.NewReorderBuffer(0)
		wm := eventtime.NewBoundedOutOfOrderness(disorder)
		rng := rand.New(rand.NewSource(3))
		ts := int64(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ts += 2
			jit := ts - rng.Int63n(disorder)
			buf.Push(jit, jit)
			wm.OnEvent(jit)
			if i%32 == 0 {
				buf.Release(wm.OnPeriodic())
			}
		}
	})
	b.Run("oop-window-partials", func(b *testing.B) {
		open := map[int64]int64{}
		wm := eventtime.NewBoundedOutOfOrderness(disorder)
		rng := rand.New(rand.NewSource(3))
		ts := int64(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ts += 2
			jit := ts - rng.Int63n(disorder)
			open[jit/1_000]++
			wm.OnEvent(jit)
			if i%32 == 0 {
				bound := wm.OnPeriodic()
				for w := range open {
					if (w+1)*1_000 <= bound {
						delete(open, w)
					}
				}
			}
		}
	})
}

// BenchmarkE5_ProgressMechanisms measures the per-event cost of each
// progress-tracking mechanism.
func BenchmarkE5_ProgressMechanisms(b *testing.B) {
	b.Run("watermark", func(b *testing.B) {
		g := eventtime.NewBoundedOutOfOrderness(500)
		for i := 0; i < b.N; i++ {
			g.OnEvent(int64(i))
			if i%64 == 0 {
				g.OnPeriodic()
			}
		}
	})
	b.Run("punctuation", func(b *testing.B) {
		tr := eventtime.NewPunctuationTracker(1)
		for i := 0; i < b.N; i++ {
			if i%64 == 0 {
				tr.Observe(0, eventtime.Punctuation{TS: int64(i)})
			}
		}
	})
	b.Run("heartbeat", func(b *testing.B) {
		h := eventtime.NewHeartbeatGenerator(100, 100)
		for i := 0; i < b.N; i++ {
			if i%64 == 0 {
				h.ReportSourceClock("s", int64(i))
				h.Heartbeat()
			}
		}
	})
	b.Run("slack", func(b *testing.B) {
		s := eventtime.NewSlackBuffer(64)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			s.Push(int64(i)-rng.Int63n(50), i)
		}
	})
	b.Run("frontier", func(b *testing.B) {
		f := eventtime.NewFrontier()
		for i := 0; i < b.N; i++ {
			p := eventtime.Pointstamp{Node: 0, Time: int64(i)}
			f.Add(p, 1)
			f.Add(p, -1)
		}
	})
}

// BenchmarkE6_StateBackends measures keyed writes per backend.
func BenchmarkE6_StateBackends(b *testing.B) {
	run := func(b *testing.B, backend state.Backend) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			backend.SetCurrentKey(fmt.Sprintf("k%d", i%4096))
			backend.Value("v").Set(int64(i))
		}
	}
	b.Run("memory", func(b *testing.B) { run(b, state.NewMemoryBackend(0)) })
	b.Run("lsm", func(b *testing.B) {
		be, err := state.NewLSMBackend(b.TempDir(), 0)
		if err != nil {
			b.Fatal(err)
		}
		defer be.Dispose()
		b.ResetTimer()
		run(b, be)
	})
	b.Run("changelog", func(b *testing.B) { run(b, state.NewChangelogBackend(0, state.NewChangelog())) })
}

// BenchmarkE7_Recovery measures passive-standby recovery (checkpoint restore
// + replay) and the lineage baseline's recomputation.
func BenchmarkE7_Recovery(b *testing.B) {
	b.Run("passive-restore", func(b *testing.B) {
		// Prepare one checkpoint, then repeatedly restore-and-finish.
		const events = 2_000
		evs := make([]core.Event, events)
		for i := range evs {
			evs[i] = core.Event{Key: fmt.Sprintf("k%d", i%7), Timestamp: int64(i), Value: int64(1)}
		}
		store := core.NewMemorySnapshotStore()
		build := func() (*core.Job, *core.CollectSink) {
			sink := core.NewCollectSink()
			bd := core.NewBuilder(core.Config{Name: "bench-rec", SnapshotStore: store,
				CheckpointEvery: 500, ChannelCapacity: 8})
			bd.Source("src", core.NewSliceSourceFactory(evs)).
				Map("id", func(e core.Event) (core.Event, bool) { return e, true }).
				Sink("out", sink.Factory())
			j, err := bd.Build()
			if err != nil {
				b.Fatal(err)
			}
			return j, sink
		}
		j, _ := build()
		if err := j.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
		cp := j.LastCheckpoint()
		if cp < 0 {
			b.Fatal("no checkpoint")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j2, _ := build()
			j2.RestoreFrom(cp)
			if err := j2.Run(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lineage-recompute", func(b *testing.B) {
		evs := make([]core.Event, 2_000)
		for i := range evs {
			evs[i] = core.Event{Timestamp: int64(i), Value: int64(1)}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j, err := lineage.NewJob(lineage.Config{BatchSize: 50, CheckpointEveryBatches: 8},
				evs, nil, func(st any, in []core.Event) ([]core.Event, any) {
					return nil, st.(int64) + int64(len(in))
				}, int64(0))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := j.Run(27); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE8_Overload runs the overload simulation per policy.
func BenchmarkE8_Overload(b *testing.B) {
	cfg := load.SimConfig{BaseRate: 100, BurstFactor: 2.5, BurstStart: 50, BurstEnd: 150,
		Ticks: 300, CapacityPerInstance: 120, QueueBound: 500, Instances: 1, MaxInstances: 8, Seed: 7}
	for _, p := range []load.Policy{load.PolicyShedRandom, load.PolicyShedSemantic,
		load.PolicyBackpressure, load.PolicyElastic} {
		b.Run(p.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				load.RunOverloadSim(p, cfg)
			}
		})
	}
}

// BenchmarkE9_Synopses measures synopsis update cost vs exact map state.
func BenchmarkE9_Synopses(b *testing.B) {
	keys := make([]string, 65536)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	b.Run("exact-map", func(b *testing.B) {
		m := map[string]uint64{}
		for i := 0; i < b.N; i++ {
			m[keys[i%len(keys)]]++
		}
	})
	b.Run("countmin", func(b *testing.B) {
		cm, _ := synopsis.NewCountMin(0.001, 0.01)
		for i := 0; i < b.N; i++ {
			cm.Add(keys[i%len(keys)], 1)
		}
	})
	b.Run("hyperloglog", func(b *testing.B) {
		h, _ := synopsis.NewHyperLogLog(12)
		for i := 0; i < b.N; i++ {
			h.Add(keys[i%len(keys)])
		}
	})
	b.Run("exphistogram", func(b *testing.B) {
		eh, _ := synopsis.NewExpHistogram(60_000, 0.05)
		for i := 0; i < b.N; i++ {
			eh.Add(int64(i))
		}
	})
}

// BenchmarkE10_Vectorized measures the scalar vs batched window kernels.
func BenchmarkE10_Vectorized(b *testing.B) {
	values := make([]float64, 1<<16)
	for i := range values {
		values[i] = float64(i % 1000)
	}
	b.Run("scalar", func(b *testing.B) {
		k := window.NewScalarTumbling(1024, window.Sum)
		b.SetBytes(int64(len(values) * 8))
		for i := 0; i < b.N; i++ {
			k.Process(values)
		}
	})
	b.Run("vectorized", func(b *testing.B) {
		k := window.NewBatchTumbling(1024, window.Sum)
		b.SetBytes(int64(len(values) * 8))
		for i := 0; i < b.N; i++ {
			k.Process(values)
		}
	})
}

// BenchmarkE11_Iteration measures BSP supersteps and online SGD updates.
func BenchmarkE11_Iteration(b *testing.B) {
	b.Run("pregel-cc-1kvertices", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var verts []*iterate.Vertex
			for v := 0; v < 1000; v++ {
				verts = append(verts, &iterate.Vertex{ID: fmt.Sprintf("v%d", v), Value: float64(v)})
			}
			for v := 1; v < 1000; v++ {
				verts[v].Edges = append(verts[v].Edges, iterate.Edge{To: verts[v-1].ID})
				verts[v-1].Edges = append(verts[v-1].Edges, iterate.Edge{To: verts[v].ID})
			}
			g := iterate.NewPregel(verts)
			err := g.Run(func(ctx *iterate.VertexContext, msgs []any) {
				v := ctx.Vertex()
				cur := v.Value.(float64)
				changed := ctx.Superstep() == 0
				for _, m := range msgs {
					if l := m.(float64); l < cur {
						cur, changed = l, true
					}
				}
				v.Value = cur
				if changed {
					ctx.SendToAllNeighbors(cur)
				}
				ctx.VoteToHalt()
			}, 2000)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sgd-update", func(b *testing.B) {
		m := ml.NewLinearRegression(8)
		x := make([]float64, 8)
		for i := range x {
			x[i] = float64(i)
		}
		s := ml.Sample{Features: x, Label: 1}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Update(s, 0.01)
		}
	})
}

// BenchmarkE12_Transactions measures serializable transfer throughput.
func BenchmarkE12_Transactions(b *testing.B) {
	for _, parts := range []int{1, 16} {
		b.Run(fmt.Sprintf("partitions-%d", parts), func(b *testing.B) {
			store := txn.NewStore(parts)
			for i := 0; i < 1000; i++ {
				k := fmt.Sprintf("acct%d", i)
				store.Execute([]string{k}, func(tx *txn.Tx) error { return tx.Set(k, int64(1_000_000)) })
			}
			rng := rand.New(rand.NewSource(9))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				from := fmt.Sprintf("acct%d", rng.Intn(1000))
				to := fmt.Sprintf("acct%d", rng.Intn(1000))
				if from == to {
					continue
				}
				store.Execute([]string{from, to}, func(tx *txn.Tx) error {
					fv, _, _ := tx.Get(from)
					tv, _, _ := tx.Get(to)
					tx.Set(from, fv.(int64)-1)
					tx.Set(to, tv.(int64)+1)
					return nil
				})
			}
		})
	}
}

// BenchmarkE13_Rescale measures key-group redistribution of a checkpoint.
func BenchmarkE13_Rescale(b *testing.B) {
	// Build a checkpoint with populated keyed state once.
	const events = 5_000
	evs := make([]core.Event, events)
	for i := range evs {
		evs[i] = core.Event{Key: fmt.Sprintf("k%d", i%997), Timestamp: int64(i), Value: int64(1)}
	}
	store := core.NewMemorySnapshotStore()
	sink := core.NewCollectSink()
	bd := core.NewBuilder(core.Config{Name: "bench-rescale", SnapshotStore: store, ChannelCapacity: 64})
	bd.Source("src", core.NewSliceSourceFactory(evs)).
		KeyBy(func(e core.Event) string { return e.Key }).
		ProcessWith("count", countFactory(), 2).
		Sink("out", sink.Factory())
	j, err := bd.Build()
	if err != nil {
		b.Fatal(err)
	}
	// The request is buffered; the coordinator injects the barrier once the
	// job starts, and the checkpoint completes before the stream ends.
	j.TriggerCheckpoint()
	if err := j.Run(context.Background()); err != nil {
		b.Fatal(err)
	}
	cp := j.LastCheckpoint()
	if cp < 0 {
		b.Skip("no checkpoint completed")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RescaleCheckpoint(store, cp, cp+100+int64(i), "count", 8, state.DefaultKeyGroups); err != nil {
			b.Fatal(err)
		}
	}
}

func countFactory() core.OperatorFactory {
	return func() core.Operator { return &benchCountOp{} }
}

type benchCountOp struct {
	core.BaseOperator
}

func (c *benchCountOp) ProcessElement(e core.Event, ctx core.Context) error {
	st := ctx.State().Value("count")
	n := int64(0)
	if v, ok := st.Get(); ok {
		n = v.(int64)
	}
	st.Set(n + 1)
	return nil
}

func (c *benchCountOp) Close(ctx core.Context) error {
	ctx.State().ForEachKey("count", func(key string, v any) bool {
		ctx.Emit(core.Event{Key: key, Value: v})
		return true
	})
	return nil
}

// BenchmarkE14_ObservabilityOverhead measures the cost of the observability
// layer on the E2-style keyed windowed pipeline: "off" is the baseline,
// "markers" adds Instrument + latency markers every 64 records, and
// "markers+tracer" additionally records spans. The acceptance bar is <5%
// throughput loss with instrumentation enabled.
func BenchmarkE14_ObservabilityOverhead(b *testing.B) {
	run := func(b *testing.B, instrument, traced bool) {
		events := 20_000
		spec := gen.Spec{N: events, Keys: 128, IntervalMs: 2, Seed: 1}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sink := core.NewCollectSink()
			cfg := core.Config{Name: "bench-obs", ChannelCapacity: 1024}
			if instrument {
				cfg.Instrument = true
				cfg.LatencyMarkerInterval = 64
			}
			if traced {
				cfg.Tracer = obsv.NewTracer(obsv.DefaultTraceCapacity)
			}
			bd := core.NewBuilder(cfg)
			s := bd.Source("src", gen.SourceFactory(spec), core.WithBoundedDisorder(0)).
				KeyBy(func(e core.Event) string { return e.Key })
			window.Apply(s, "win", window.NewTumbling(1_000), window.CountAggregate()).
				Sink("out", sink.Factory())
			j, err := bd.Build()
			if err != nil {
				b.Fatal(err)
			}
			if err := j.Run(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(events*b.N)/b.Elapsed().Seconds(), "events/s")
	}
	b.Run("off", func(b *testing.B) { run(b, false, false) })
	b.Run("markers", func(b *testing.B) { run(b, true, false) })
	b.Run("markers+tracer", func(b *testing.B) { run(b, true, true) })
}

// BenchmarkE15_BatchedExchange measures the batched record exchange on a
// parallel keyed-window pipeline shaped like the canonical ETL job: 2 source
// instances → parse → project → hash-partition into a parallel tumbling
// count. Every record crosses three exchange edges, so per-record channel
// synchronization (one select per hop per record) dominates the unbatched
// baseline. batch-1 is that baseline (batching disabled); batch-64 must
// deliver ≥2x records/sec by amortising the per-hop cost across 64 records.
func BenchmarkE15_BatchedExchange(b *testing.B) {
	run := func(b *testing.B, batch int) {
		// Pregenerate the stream so the timed region measures the engine, not
		// the event generator.
		events := 50_000
		spec := gen.Spec{N: events, Keys: 256, IntervalMs: 2, Seed: 1}
		stream := make([]core.Event, events)
		for i := range stream {
			stream[i] = spec.At(int64(i))
		}
		// Lock-free strided replay: the bench takes no checkpoints, so it
		// skips SliceSource's offset-tracking mutex.
		src := core.SourceFunc(func(ctx core.SourceContext) error {
			for i := ctx.InstanceIndex(); i < len(stream); i += ctx.Parallelism() {
				if !ctx.Collect(stream[i]) {
					return nil
				}
			}
			return nil
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Start every iteration from a collected heap so GC carryover from
			// the previous run does not leak into the measurement.
			b.StopTimer()
			runtime.GC()
			b.StartTimer()
			sink := core.NewCollectSink()
			bd := core.NewBuilder(core.Config{
				Name:               "bench-batch",
				ChannelCapacity:    64,
				MaxBatchSize:       batch,
				DefaultParallelism: 2,
				WatermarkInterval:  512,
			})
			s := bd.Source("src", src, core.WithBoundedDisorder(0), core.WithParallelism(2)).
				Map("parse", func(e core.Event) (core.Event, bool) { return e, true }).
				Filter("project", func(e core.Event) bool { return true }).
				KeyBy(func(e core.Event) string { return e.Key })
			window.Apply(s, "win", window.NewTumbling(10_000), window.CountAggregate()).
				Sink("out", sink.Factory())
			j, err := bd.Build()
			if err != nil {
				b.Fatal(err)
			}
			if err := j.Run(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(events*b.N)/b.Elapsed().Seconds(), "events/s")
	}
	b.Run("batch-1", func(b *testing.B) { run(b, 1) })
	b.Run("batch-64", func(b *testing.B) { run(b, 64) })
}

// BenchmarkE20_ColumnarExec measures whole-batch columnar operator execution
// on the E15 pipeline shape (2 sources → parse → project → hash-partition →
// parallel tumbling aggregation) at batch 64: ColumnarExec off is the
// per-record dispatch baseline; on must deliver ≥2x records/sec by building
// each batch's columnar view once and amortising key scoping, state lookups,
// window assignment and the aggregate fold over same-key runs. The "burst"
// stream models per-device report uploads (runs of 16 consecutive readings
// per device — the arrival shape columnar run segmentation exploits); the
// "uniform" stream interleaves keys record-by-record, the worst case for run
// amortisation, reported so the fast path's floor is visible too.
func BenchmarkE20_ColumnarExec(b *testing.B) {
	const events = 50_000
	const keys = 256
	devKeys := make([]string, keys)
	for i := range devKeys {
		devKeys[i] = fmt.Sprintf("d%03d", i)
	}
	// Readings come from a bounded sensor domain; boxing each possible value
	// once keeps the synthetic input from flooding the GC with 50k distinct
	// tiny float allocations — the benchmark measures operator execution,
	// not tracing of the generator's litter. Both legs share the input.
	boxedVals := make([]any, 1000)
	for i := range boxedVals {
		boxedVals[i] = float64(i)
	}
	const srcPar = 2
	// genShards generates the device stream directly into key-partitioned
	// shards, Kafka-topic style: each source instance replays the devices
	// hashed to its partition, in event-time order, so device bursts stay
	// contiguous within a partition as they would on a real ingest topic and
	// both partitions advance event time together.
	genShards := func(runLen int) [srcPar][]core.Event {
		rng := rand.New(rand.NewSource(3))
		var shards [srcPar][]core.Event
		ts := int64(0)
		for i := 0; i < events; {
			dev := rng.Intn(keys)
			p := dev % srcPar
			for r := 0; r < runLen && i < events; r++ {
				shards[p] = append(shards[p], core.Event{
					Key: devKeys[dev], Timestamp: ts, Value: boxedVals[rng.Intn(1000)],
				})
				ts += 2
				i++
			}
		}
		return shards
	}
	run := func(b *testing.B, shards [srcPar][]core.Event, columnar bool) {
		// Relax GC pacing for the measurement loop: with default GOGC the
		// collector triggers every few iterations and its trace work is
		// charged to whichever leg happens to run, drowning the dispatch-cost
		// signal this benchmark isolates. runtime.GC() per iteration (below)
		// still bounds heap growth deterministically.
		defer debug.SetGCPercent(debug.SetGCPercent(800))
		// Replay in ingest-poll-sized batches through CollectBatch, the way a
		// partition consumer hands records to the runtime.
		src := core.SourceFunc(func(ctx core.SourceContext) error {
			shard := shards[ctx.InstanceIndex()]
			const poll = 512
			for lo := 0; lo < len(shard); lo += poll {
				hi := lo + poll
				if hi > len(shard) {
					hi = len(shard)
				}
				if !ctx.CollectBatch(shard[lo:hi]) {
					return nil
				}
			}
			return nil
		})
		b.ResetTimer()
		var results int64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			runtime.GC()
			b.StartTimer()
			// Counting sink: retaining every result (CollectSink) would make
			// sink-slice growth the dominant allocation of the run.
			var got int64
			bd := core.NewBuilder(core.Config{
				Name:               "bench-columnar",
				ChannelCapacity:    64,
				MaxBatchSize:       64,
				ColumnarExec:       columnar,
				DefaultParallelism: 2,
				WatermarkInterval:  512,
			})
			s := bd.Source("src", src, core.WithBoundedDisorder(0), core.WithParallelism(2)).
				Map("parse", func(e core.Event) (core.Event, bool) { return e, true }).
				Filter("project", func(e core.Event) bool { return true }).
				KeyBy(func(e core.Event) string { return e.Key })
			window.Apply(s, "win", window.NewTumbling(10_000), window.ValueAggregate(window.Sum)).
				Sink("out", core.SinkFunc(func(core.Event) error { got++; return nil }))
			j, err := bd.Build()
			if err != nil {
				b.Fatal(err)
			}
			if err := j.Run(context.Background()); err != nil {
				b.Fatal(err)
			}
			results += got
		}
		if results == 0 {
			b.Fatal("pipeline produced no window results")
		}
		b.ReportMetric(float64(events*b.N)/b.Elapsed().Seconds(), "events/s")
	}
	// Shards are generated per sub-benchmark so only one input set is live
	// (and GC-traced) at a time.
	b.Run("burst/columnar-off", func(b *testing.B) { run(b, genShards(16), false) })
	b.Run("burst/columnar-on", func(b *testing.B) { run(b, genShards(16), true) })
	b.Run("uniform/columnar-off", func(b *testing.B) { run(b, genShards(1), false) })
	b.Run("uniform/columnar-on", func(b *testing.B) { run(b, genShards(1), true) })
}
