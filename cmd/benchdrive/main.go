// Command benchdrive runs the benchmark scenario matrix and persists one
// BENCH_<scenario>.json per scenario, or diffs two recorded result sets.
//
// Run the full matrix at a reduced scale into the repo root:
//
//	go run ./cmd/benchdrive -scale 0.25 -out .
//
// Run a subset:
//
//	go run ./cmd/benchdrive -only quickstart-b64-p4,quickstart-crash-b16-p2
//
// Gate on a recorded baseline (exit 1 on any regression past the threshold):
//
//	go run ./cmd/benchdrive -compare -threshold 0.5 baseline/ fresh/
//
// The compare arguments are directories of BENCH_*.json files or single
// result files.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		scale     = flag.Float64("scale", 1.0, "workload scale factor (events multiplier)")
		only      = flag.String("only", "", "comma-separated scenario names to run (default: all)")
		out       = flag.String("out", ".", "directory to write BENCH_<scenario>.json files into (empty: don't persist)")
		list      = flag.Bool("list", false, "list the scenario matrix and exit")
		compare   = flag.Bool("compare", false, "compare two result sets: benchdrive -compare [-threshold T] OLD NEW")
		threshold = flag.Float64("threshold", bench.DefaultThreshold, "fractional worsening treated as a regression by -compare")
	)
	flag.Parse()

	if *list {
		for _, sc := range bench.Matrix() {
			fmt.Printf("%-28s %-12s %-7s batch=%-3d par=%d %-14s events=%d  %s\n",
				sc.Name, sc.Pipeline, sc.Arrival, sc.Batch, sc.Parallelism,
				sc.Guarantee(), sc.Events, sc.Description)
		}
		return
	}

	if *compare {
		if flag.NArg() != 2 {
			fatalf("usage: benchdrive -compare [-threshold T] OLD NEW (got %d args)", flag.NArg())
		}
		rep, err := bench.CompareFiles(flag.Arg(0), flag.Arg(1), *threshold)
		if err != nil {
			fatalf("compare: %v", err)
		}
		fmt.Print(rep.Format())
		if len(rep.Regressions()) > 0 {
			os.Exit(1)
		}
		return
	}

	scenarios := bench.Matrix()
	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var picked []bench.Scenario
		for _, sc := range scenarios {
			if want[sc.Name] {
				picked = append(picked, sc)
				delete(want, sc.Name)
			}
		}
		if len(want) > 0 {
			var unknown []string
			for name := range want {
				unknown = append(unknown, name)
			}
			fatalf("unknown scenario(s) %s; use -list", strings.Join(unknown, ", "))
		}
		scenarios = picked
	}

	if _, err := bench.RunMatrix(scenarios, *scale, *out, os.Stdout); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdrive: "+format+"\n", args...)
	os.Exit(1)
}
