// Command benchtables is the experiment harness: it regenerates every paper
// exhibit (Figure 1 as E1, Table 1 as E2) and the figure-shaped experiments
// E3–E13 derived from the survey's comparative claims, printing paper-style
// rows. See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
// recorded expected-vs-measured outcomes.
//
// Usage:
//
//	benchtables [-scale 1.0] [-only E3,E8]
package main

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale factor (0.1 for a quick pass)")
	only := flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	all := map[string]func(float64) experiments.Report{
		"E1":  experiments.E1Evolution,
		"E2":  func(float64) experiments.Report { return experiments.E2Table1() },
		"E3":  experiments.E3SlidingAggregation,
		"E4":  experiments.E4OOPvsBuffering,
		"E5":  experiments.E5ProgressMechanisms,
		"E6":  experiments.E6StateBackends,
		"E7":  experiments.E7Recovery,
		"E8":  experiments.E8Overload,
		"E9":  experiments.E9Synopses,
		"E10": experiments.E10Vectorized,
		"E11": experiments.E11Iteration,
		"E12": experiments.E12Transactions,
		"E13": experiments.E13Rescale,
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13"}

	for _, id := range order {
		if len(want) > 0 && !want[id] {
			continue
		}
		fmt.Println(all[id](*scale))
	}
}
