// Command cqlrun executes a CQL continuous query against a generated demo
// stream, printing the emitted stream deltas — §2.1 end to end.
//
// Usage:
//
//	cqlrun [-n 200] [-stream flows|trades] [-limit 20] "QUERY"
//
// The flows stream has columns (src, dst, port, bytes, proto); trades has
// (symbol, price, size). Examples:
//
//	cqlrun "ISTREAM (SELECT src, bytes FROM flows WHERE bytes > 30000)"
//	cqlrun "RSTREAM (SELECT proto, COUNT(*) AS n FROM flows [ROWS 100] GROUP BY proto)"
//	cqlrun -stream trades "RSTREAM (SELECT symbol, AVG(price) AS avgp FROM trades [RANGE 1000] GROUP BY symbol)"
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"

	"repro/internal/cql"
	"repro/internal/gen"
)

func main() {
	n := flag.Int("n", 200, "number of input tuples")
	streamName := flag.String("stream", "flows", "demo stream: flows or trades")
	limit := flag.Int("limit", 20, "max output rows to print (0 = all)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cqlrun [flags] \"QUERY\"")
		flag.Usage()
		os.Exit(2)
	}
	query := flag.Arg(0)

	ex, err := cql.Prepare(query)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	printed := 0
	emit := func(outs []cql.Output) {
		for _, o := range outs {
			if *limit > 0 && printed >= *limit {
				return
			}
			kind := "+"
			if o.Kind == cql.Delete {
				kind = "-"
			}
			fmt.Printf("%s t=%-8d %s\n", kind, o.Ts, renderRow(o.Row))
			printed++
		}
	}

	switch *streamName {
	case "flows":
		spec := gen.FlowSpec(*n, 500, 42)
		for i := 0; i < *n; i++ {
			e := spec.At(int64(i))
			f := e.Value.(gen.NetFlow)
			outs, err := ex.Push("flows", e.Timestamp, cql.Row{
				"src": f.SrcIP, "dst": f.DstIP, "port": float64(f.DstPort),
				"bytes": float64(f.Bytes), "proto": f.Protocol,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			emit(outs)
		}
	case "trades":
		rng := rand.New(rand.NewSource(42))
		symbols := []string{"AAA", "BBB", "CCC"}
		for i := 0; i < *n; i++ {
			outs, err := ex.Push("trades", int64(i*10), cql.Row{
				"symbol": symbols[rng.Intn(len(symbols))],
				"price":  50 + rng.Float64()*100,
				"size":   float64(1 + rng.Intn(500)),
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			emit(outs)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown stream %q (want flows or trades)\n", *streamName)
		os.Exit(2)
	}
	fmt.Printf("-- %d rows printed (limit %d)\n", printed, *limit)
}

func renderRow(r cql.Row) string {
	keys := make([]string, 0, len(r))
	for k := range r {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%v", k, r[k]))
	}
	return strings.Join(parts, " ")
}
