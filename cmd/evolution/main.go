// Command evolution regenerates Figure 1 of the paper: the timeline of
// stream processing generations, annotated with the package in this
// repository implementing each element, followed by the three runnable
// generation pipelines of experiment E1.
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiments"
)

var timeline = []struct {
	era      string
	systems  string
	concepts []string
}{
	{
		era:     "1st gen '92-'03 (from DBs to DSMSs): Tapestry, NiagaraCQ, TelegraphCQ, STREAM, Aurora/Borealis",
		systems: "prototypes from the database community",
		concepts: []string{
			"continuous queries ............ internal/cql (CQL: windows, ISTREAM/DSTREAM/RSTREAM)",
			"synopses / bounded memory ..... internal/synopsis (CMS, Bloom, HLL, reservoir, exp. histograms)",
			"sliding windows ............... internal/window (assigners + naive/panes/two-stacks aggregation)",
			"slack / best-effort order ..... internal/eventtime (SlackBuffer)",
			"load shedding ................. internal/load (random + semantic shedders, when/how-many controller)",
		},
	},
	{
		era:     "commercial wave '04-'10: IBM System S, Esper, Oracle CQL/CEP, TIBCO",
		systems: "scale-up engines over ordered streams",
		concepts: []string{
			"complex event processing ...... internal/cep (NFA: strict/relaxed contiguity, Kleene, within)",
			"heartbeats (STREAM) ........... internal/eventtime (HeartbeatGenerator)",
			"punctuations .................. internal/eventtime (Punctuation, PunctuationTracker)",
		},
	},
	{
		era:     "2nd gen '10-'18 (scalable data streaming): Storm, Spark Streaming, Millwheel/Dataflow, Flink, Samza, Kafka Streams, Naiad",
		systems: "distributed shared-nothing dataflows on commodity clusters",
		concepts: []string{
			"out-of-order processing ....... internal/eventtime (watermarks) + internal/core (alignment)",
			"state management .............. internal/state (memory / LSM / changelog backends, key groups)",
			"processing guarantees ......... internal/core (aligned barriers, exactly-once restore)",
			"scalability ................... internal/core (parallel operator instances, hash partitioning)",
			"reconfiguration ............... core.RescaleCheckpoint (key-group migration)",
			"backpressure & elasticity ..... internal/load (credit control, DS2-style scaling)",
			"lineage / micro-batch ......... internal/lineage (discretized streams baseline)",
			"frontiers (Naiad) ............. internal/eventtime (Frontier, pointstamps)",
			"stream SQL .................... internal/cql",
		},
	},
	{
		era:     "3rd gen '18- (beyond analytics): Stateful Functions, Ray, Arcon, Neptune, Ambrosia, S-Store",
		systems: "event-driven applications, cloud services, ML on streams",
		concepts: []string{
			"actors / stateful functions ... internal/statefun (virtual actors, request/response)",
			"transactions .................. internal/txn (serializable store + saga workflows)",
			"model serving & training ...... internal/ml (online SGD, versioned registry, hot swap)",
			"streaming graphs .............. internal/graphstream (incremental CC / SSSP, random walks)",
			"loops & cycles ................ internal/iterate (async feedback, BSP supersteps)",
			"queryable state ............... internal/queryable (TCP point queries, snapshot isolation)",
			"state versioning .............. internal/state (SchemaRegistry, VersionedValue)",
			"hardware acceleration ......... internal/window (vectorized kernels, E10)",
		},
	},
}

func main() {
	scale := flag.Float64("scale", 0.5, "workload scale for the generation pipelines")
	flag.Parse()

	fmt.Println("Figure 1 — the evolution of stream processing systems, mapped to this repository")
	fmt.Println()
	for _, t := range timeline {
		fmt.Println(t.era)
		for _, c := range t.concepts {
			fmt.Println("    " + c)
		}
		fmt.Println()
	}
	fmt.Println(experiments.E1Evolution(*scale))
}
