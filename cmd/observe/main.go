// Command observe runs an instrumented demo pipeline and serves the
// observability endpoints while it executes:
//
//	/metrics  Prometheus text format (throughput, latency, watermark lag,
//	          queue depth, backpressure, checkpoint metrics)
//	/jobs     topology + per-instance runtime state as JSON
//	/traces   recent spans (checkpoints, barrier alignment, operator batches)
//
// The pipeline is generator -> keyed windowed count -> sink plus a CEP
// pattern branch, with latency markers and periodic checkpoints enabled, so
// every metric family the observability layer exports is live. Run with a
// long -duration and point a browser or Prometheus scraper at the address.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/cep"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/elastic"
	"repro/internal/gen"
	"repro/internal/load"
	"repro/internal/obsv"
	"repro/internal/window"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "introspection server address (host:port, port 0 picks a free one)")
	n := flag.Int("n", 200_000, "number of generated transactions")
	markerEvery := flag.Int("marker-every", 64, "inject a latency marker every N source records")
	checkpointEvery := flag.Int("checkpoint-every", 10_000, "trigger a checkpoint every N source records")
	duration := flag.Duration("duration", 0, "stop after this long (0 = run the workload to completion)")
	dump := flag.Bool("dump", true, "fetch and print /metrics once the job finishes")
	batch := flag.Int("batch", 0, "coalesce up to N records per exchange message (0/1 = per-record sends)")
	columnar := flag.Bool("columnar", false, "whole-batch columnar operator execution (requires -batch > 1)")
	chaosMode := flag.Bool("chaos", false, "inject snapshot-store faults (every 3rd save fails with a torn write, plus latency) so the abort/retry metrics go live")
	elasticMode := flag.Bool("elastic", false, "run the elastic demo instead: a rate ramp drives the DS2 policy through live scale-out and scale-in, with rescale metrics on /metrics and /jobs")
	flag.Parse()

	if *elasticMode {
		runElasticDemo(*addr)
		return
	}

	var store core.SnapshotStore = core.NewMemorySnapshotStore()
	var faulty *chaos.FaultyStore
	if *chaosMode {
		faulty = chaos.Wrap(store, chaos.FaultPlan{
			FailSaveEvery: 3,
			TornSave:      true,
			SaveLatency:   200 * time.Microsecond,
		})
		store = faulty
	}

	tracer := obsv.NewTracer(obsv.DefaultTraceCapacity)
	b := core.NewBuilder(core.Config{
		Name:                  "observe-demo",
		Instrument:            true,
		LatencyMarkerInterval: *markerEvery,
		Tracer:                tracer,
		SnapshotStore:         store,
		CheckpointEvery:       *checkpointEvery,
		ChannelCapacity:       64,
		MaxBatchSize:          *batch,
		ColumnarExec:          *columnar,
	})

	spec := gen.FraudSpec(*n, 50, 0.05, 7)
	txns := b.Source("txns", gen.SourceFactory(spec), core.WithBoundedDisorder(0))
	keyed := txns.KeyBy(func(e core.Event) string { return e.Value.(gen.Transaction).Card })

	counts := core.NewCollectSink()
	window.Apply(keyed, "win-1s", window.NewTumbling(1_000), window.CountAggregate()).
		Sink("counts", counts.Factory())

	small := func(e core.Event) bool { return e.Value.(gen.Transaction).Amount < 100 }
	large := func(e core.Event) bool { return e.Value.(gen.Transaction).Amount >= 500 }
	pattern := cep.Begin("p1", small).FollowedBy("hit", large).Within(60_000).MustBuild()
	alerts := core.NewCollectSink()
	cep.PatternStream(keyed, "fraud", pattern, func(card string, m cep.Match, emit func(core.Event)) {
		emit(core.Event{Key: card, Timestamp: m.End, Value: "alert"})
	}, cep.SkipPastLastEvent()).Sink("alerts", alerts.Factory())

	job, err := b.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "build:", err)
		os.Exit(1)
	}
	srv, err := job.ServeIntrospection(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	defer srv.Close()
	fmt.Printf("observability server on http://%s  (/metrics /jobs /traces)\n", srv.Addr())

	ctx := context.Background()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}
	start := time.Now()
	if err := job.Run(ctx); err != nil && err != context.DeadlineExceeded {
		fmt.Fprintln(os.Stderr, "run:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	fmt.Printf("job finished in %v: %d window results, %d alerts, last checkpoint %d\n",
		elapsed.Round(time.Millisecond), counts.Len(), alerts.Len(), job.LastCheckpoint())
	if faulty != nil {
		st := faulty.Stats()
		fmt.Printf("chaos: %d/%d saves failed (%d torn), %d checkpoints aborted, %d save failures post-retry — job survived in place\n",
			st.SaveFaults, st.Saves, st.TornWrites, job.AbortedCheckpoints(), job.SnapshotSaveFailures())
	}
	lat := job.Metrics().Histogram("node.counts.latency_ns")
	if lat.Count() > 0 {
		fmt.Printf("end-to-end marker latency at sink: p50=%v p99=%v (%d markers)\n",
			time.Duration(lat.Quantile(0.5)), time.Duration(lat.Quantile(0.99)), lat.Count())
	}

	if *dump {
		// Scrape our own endpoint so the HTTP path is exercised end to end.
		resp, err := http.Get("http://" + srv.Addr() + "/metrics")
		if err != nil {
			fmt.Fprintln(os.Stderr, "scrape:", err)
			os.Exit(1)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "scrape:", err)
			os.Exit(1)
		}
		fmt.Printf("--- /metrics (%d bytes) ---\n%s", len(body), body)
	}
}

// runElasticDemo drives a pipeline through a load ramp under the elastic
// controller: a gentle phase (1 instance suffices), a burst (backpressure
// pushes corrected demand past one instance's true rate, the DS2 policy
// scales out via stop-with-savepoint -> rescale -> restore), and a cool-down
// (hysteresis then scales back in). Rescale lineage is live on /metrics
// (elastic.*) and /jobs while it runs.
func runElasticDemo(addr string) {
	const n = 4500
	events := make([]core.Event, n)
	for i := range events {
		events[i] = core.Event{
			Key:       fmt.Sprintf("k%d", i%5),
			Timestamp: int64(i * 10),
			Value:     int64(i),
		}
	}
	pace := func(i int) time.Duration {
		if i < n/3 || i >= 2*n/3 {
			return time.Millisecond // gentle offered load
		}
		return 0 // burst: as fast as the pipeline admits
	}

	tracer := obsv.NewTracer(obsv.DefaultTraceCapacity)
	build := func(par int, sink *core.CollectSink, store core.SnapshotStore) (*core.Job, error) {
		b := core.NewBuilder(core.Config{
			Name:              "elastic-demo",
			Instrument:        true,
			Tracer:            tracer,
			SnapshotStore:     store,
			CheckpointEvery:   500,
			ChannelCapacity:   32,
			WatermarkInterval: 1,
		})
		// ~150µs of simulated work per record bounds one instance's true
		// processing rate, so the burst genuinely needs more instances.
		work := core.MapFunc(func(e core.Event, ctx core.Context) error {
			time.Sleep(150 * time.Microsecond)
			ctx.Emit(e)
			return nil
		})
		keyed := b.Source("src", elastic.NewPacedSourceFactory(events, pace),
			core.WithParallelism(1), core.WithBoundedDisorder(0)).
			KeyBy(func(e core.Event) string { return e.Key }).
			ProcessWith("work", work, par).
			KeyBy(func(e core.Event) string { return e.Key })
		window.Apply(keyed, "win-1s", window.NewTumbling(1_000), window.CountAggregate()).
			Sink("out", sink.Factory())
		return b.Build()
	}

	ctrl, err := elastic.New(elastic.Config{
		Node:                "work",
		Upstream:            "src",
		UpstreamParallelism: 1,
		Build:               build,
		Store:               core.NewMemorySnapshotStore(),
		Policy:              load.NewScalingPolicy(0.8, 1, 4),
		InitialParallelism:  1,
		SampleEvery:         100 * time.Millisecond,
		Tracer:              tracer,
		Logger:              os.Stderr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "elastic:", err)
		os.Exit(1)
	}
	srv, err := ctrl.ServeIntrospection(addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	defer srv.Close()
	fmt.Printf("elastic demo on http://%s  (/metrics /jobs /traces)\n", srv.Addr())

	start := time.Now()
	out, rep, err := ctrl.Run(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, "run:", err)
		os.Exit(1)
	}
	fmt.Printf("stream drained in %v: %d exactly-once results (%d duplicate emissions suppressed), %d incarnations, final parallelism %d\n",
		time.Since(start).Round(time.Millisecond), rep.Output, rep.Duplicates, rep.Attempts, rep.FinalParallelism)
	_ = out
	for i, ev := range rep.Rescales {
		fmt.Printf("rescale %d: %d -> %d  downtime=%v offline=%v state=%dB timers=%d (savepoint %d -> checkpoint %d)\n",
			i+1, ev.From, ev.To, ev.Downtime.Round(time.Millisecond), ev.Offline.Round(time.Millisecond),
			ev.StateBytes, ev.Timers, ev.SavepointID, ev.RescaledID)
	}
	if len(rep.Rescales) == 0 {
		fmt.Println("no rescale triggered — try a slower machine or a longer burst")
	}
}
