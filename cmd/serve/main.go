// Command serve demonstrates the stream SQL front door end to end: it runs a
// network-flow pipeline whose source is tapped into a serve.Server, connects
// several TCP clients, registers continuous CQL subscriptions (a windowed
// per-protocol aggregate fanned out to multiple clients, plus a WHERE-filtered
// elephant-flow feed), point-queries the job's queryable state over the same
// connections while the job is live, and reports what each subscriber saw —
// including proof that fan-out delivered identical delta streams.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cql"
	"repro/internal/gen"
	"repro/internal/queryable"
	"repro/internal/serve"
)

const (
	aggQuery      = "ISTREAM (SELECT proto, COUNT(*) AS flows, SUM(bytes) AS bytes FROM flows [RANGE 1000 SLIDE 1000] GROUP BY proto)"
	elephantQuery = "ISTREAM (SELECT src, bytes FROM flows [NOW] WHERE bytes > 60000)"
)

// subReport is what one subscriber's drain goroutine observed.
type subReport struct {
	client     int
	id         string
	deltas     int
	watermarks int
	rows       []string // JSON-ish render of each delta, for fan-out equality
	err        string
}

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "front-door listen address (port 0 picks a free one)")
	n := flag.Int("n", 20_000, "number of generated network flows")
	clients := flag.Int("clients", 3, "number of TCP subscriber clients (min 2)")
	flag.Parse()
	if *clients < 2 {
		*clients = 2
	}

	// Front door first: streams must be registered before the pipeline is
	// built so the tap can be wired into the topology.
	svc := queryable.NewService()
	srv := serve.NewServer(serve.Options{Service: svc})
	tap := srv.RegisterStream("flows", func(e core.Event) (cql.Row, bool) {
		f, ok := e.Value.(gen.NetFlow)
		if !ok {
			return nil, false
		}
		return cql.Row{"src": f.SrcIP, "proto": f.Protocol, "bytes": float64(f.Bytes)}, true
	})
	if err := srv.Listen(*addr); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("stream SQL front door on %s\n", srv.Addr())

	// Pipeline: flow source -> tap (serving) -> keyed per-source byte
	// counters published as queryable state.
	b := core.NewBuilder(core.Config{Name: "serve-demo", WatermarkInterval: 64})
	src := b.Source("flows", gen.SourceFactory(gen.FlowSpec(*n, 500, 42)),
		core.WithBoundedDisorder(0), core.WithParallelism(2))
	keyed := src.TapInto("tap", tap).
		KeyBy(func(e core.Event) string { return e.Value.(gen.NetFlow).SrcIP })
	queryable.PublishOperator(keyed, "bytes-by-src", svc, "src_bytes", "bytes",
		func(e core.Event, ctx core.Context) {
			st := ctx.State().Value("bytes")
			cur := int64(0)
			if v, ok := st.Get(); ok {
				cur = v.(int64)
			}
			st.Set(cur + e.Value.(gen.NetFlow).Bytes)
		}).Sink("qs-sink", core.NewCollectSink().Factory())
	job, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Subscribe before the job starts so every delta is delivered: client 0
	// gets the windowed aggregate, client 1 the filtered elephant feed, and
	// every further client repeats the aggregate — those streams must come
	// out identical (fan-out correctness observed from the outside).
	reports := make([]*subReport, *clients)
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		c, err := serve.Dial(srv.Addr())
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		id, query := "per-proto-1s", aggQuery
		if i == 1 {
			id, query = "elephants", elephantQuery
		}
		sub, err := c.Subscribe(id, query, serve.SubscribeOptions{Buffer: 1024})
		if err != nil {
			log.Fatal(err)
		}
		rep := &subReport{client: i, id: id}
		reports[i] = rep
		wg.Add(1)
		go func() {
			defer wg.Done()
			for f := range sub.Frames {
				switch f.Op {
				case "delta":
					rep.deltas++
					rep.rows = append(rep.rows, fmt.Sprintf("%s@%d:%v", f.Kind, f.Ts, f.Row))
				case "watermark":
					rep.watermarks++
				case "error":
					rep.err = fmt.Sprintf("%s: %s", f.Code, f.Err)
				}
			}
		}()
	}

	// A separate client point-queries live state while the job runs — the
	// same front door serves continuous queries and key lookups.
	pq, err := serve.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer pq.Close()
	stop := make(chan struct{})
	liveGets := 0
	var pqWG sync.WaitGroup
	pqWG.Add(1)
	go func() {
		defer pqWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			time.Sleep(2 * time.Millisecond)
			ks, err := pq.Keys("src_bytes")
			if err != nil || len(ks) == 0 {
				continue
			}
			if _, found, err := pq.Get("src_bytes", ks[0]); err == nil && found {
				liveGets++
			}
		}
	}()

	if err := job.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	close(stop)
	pqWG.Wait()
	wg.Wait() // each subscription ends with an EOS frame when the job drains

	fmt.Println("stream SQL front door demo:")
	fmt.Printf("  flows processed      : %d\n", *n)
	fmt.Printf("  subscriber clients   : %d (+1 point-query client)\n", *clients)
	for _, rep := range reports {
		status := "eos"
		if rep.err != "" {
			status = rep.err
		}
		fmt.Printf("  client %d %-12s : %d deltas, %d watermarks, %s\n",
			rep.client, rep.id, rep.deltas, rep.watermarks, status)
	}

	// Fan-out proof: every aggregate subscriber saw the same delta stream.
	identical := true
	for _, rep := range reports[2:] {
		if fmt.Sprint(rep.rows) != fmt.Sprint(reports[0].rows) {
			identical = false
		}
	}
	fmt.Printf("  fan-out identical    : %v (aggregate stream across %d subscribers)\n",
		identical, *clients-1)
	fmt.Printf("  live point queries   : %d while the job ran\n", liveGets)

	// Final state through the same TCP door: top sources by exact bytes.
	streams, tables, err := pq.Describe()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  served streams/tables: %v / %v\n", streams, tables)
	keys, err := pq.Keys("src_bytes")
	if err != nil {
		log.Fatal(err)
	}
	type talker struct {
		src   string
		bytes int64
	}
	var talkers []talker
	for _, k := range keys {
		v, found, err := pq.Get("src_bytes", k)
		if err != nil || !found {
			continue
		}
		// JSON round-trip delivers numbers as float64.
		talkers = append(talkers, talker{src: k, bytes: int64(v.(float64))})
	}
	sort.Slice(talkers, func(i, j int) bool { return talkers[i].bytes > talkers[j].bytes })
	fmt.Println("  top sources by exact bytes (served over TCP):")
	for i, tk := range talkers {
		if i == 5 {
			break
		}
		fmt.Printf("    %-8s %d\n", tk.src, tk.bytes)
	}
}
