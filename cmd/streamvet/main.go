// Command streamvet runs the engine's invariant analyzers (poolretain,
// msgexhaustive, wallclock, lockcross, maporder, errdrop, chanblock,
// goroleak) over Go package patterns:
//
//	go run ./cmd/streamvet ./...
//	go run ./cmd/streamvet -run wallclock,lockcross ./internal/core
//	go run ./cmd/streamvet -json ./... | jq '.[].analyzer'
//	go run ./cmd/streamvet -facts ./internal/lsm
//
// Exit codes: 0 — scan clean; 1 — at least one diagnostic; 2 — the tool
// itself failed (bad flags, unknown analyzer, load or type-check error).
// CI gates on the distinction: 1 means the code regressed, 2 means the gate
// is broken and must not be read as a pass.
//
// -json prints the diagnostics as a JSON array on stdout (file/line/col/
// analyzer/message), one object per diagnostic, for editors and dashboards.
// -facts dumps every cross-package fact exported during the run to stderr —
// the debugging view of why an inter-procedural analyzer did (or did not)
// fire.
//
// The suite is standard-library only — type information comes from `go list
// -export` build-cache export data — so it runs in offline environments
// where golang.org/x/tools (and therefore `go vet -vettool`) is unavailable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis/streamvet"
)

// jsonDiagnostic is the -json wire shape of one diagnostic.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	asJSON := flag.Bool("json", false, "print diagnostics as a JSON array on stdout")
	facts := flag.Bool("facts", false, "dump exported cross-package facts to stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: streamvet [-list] [-run a,b] [-json] [-facts] [package patterns]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := streamvet.Suite()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *run != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*run, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var selected []*streamvet.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				selected = append(selected, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "streamvet: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = selected
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := streamvet.ModuleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "streamvet: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := streamvet.Load(root, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "streamvet: %v\n", err)
		os.Exit(2)
	}
	res, err := streamvet.Run(analyzers, pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "streamvet: %v\n", err)
		os.Exit(2)
	}

	if *facts {
		for _, r := range res.Facts {
			fmt.Fprintf(os.Stderr, "fact: %s: %s: %v\n", r.Analyzer, r.Object, r.Fact)
		}
	}

	diags := res.Diagnostics
	if *asJSON {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "streamvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "streamvet: %d violation(s) in %d package(s) scanned\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
