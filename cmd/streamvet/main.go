// Command streamvet runs the engine's invariant analyzers (poolretain,
// msgexhaustive, wallclock, lockcross) over Go package patterns:
//
//	go run ./cmd/streamvet ./...
//	go run ./cmd/streamvet -run wallclock,lockcross ./internal/core
//
// It exits 1 when any diagnostic is reported, so it slots directly into CI.
// The suite is standard-library only — type information comes from `go list
// -export` build-cache export data — so it runs in offline environments
// where golang.org/x/tools (and therefore `go vet -vettool`) is unavailable.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis/streamvet"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: streamvet [-list] [-run a,b] [package patterns]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := streamvet.Suite()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *run != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*run, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var selected []*streamvet.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				selected = append(selected, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "streamvet: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = selected
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := streamvet.ModuleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "streamvet: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := streamvet.Load(root, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "streamvet: %v\n", err)
		os.Exit(2)
	}
	diags, err := streamvet.RunAnalyzers(analyzers, pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "streamvet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "streamvet: %d violation(s) in %d package(s) scanned\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
