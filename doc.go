// Package repro is a comprehensive Go reproduction of "Beyond Analytics:
// The Evolution of Stream Processing Systems" (Carbone, Fragkoulis, Kalavri,
// Katsifodimos — SIGMOD 2020): a full stream-processing engine and the
// surrounding subsystems covering all three generations the tutorial
// surveys, plus the experiment harness that regenerates its exhibits.
//
// See README.md for an overview, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results. The
// benchmarks in bench_test.go (one per experiment E1–E13) regenerate every
// table and figure; cmd/benchtables prints them as a human-readable report.
package repro
