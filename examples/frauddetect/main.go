// Command frauddetect is the credit-card fraud pipeline the paper's
// introduction motivates ("banks apply it for credit card fraud detection").
// It combines three generations of techniques in one job:
//
//   - a CEP pattern per card (two small probe charges followed by a large
//     charge, within a time window) — classic 2nd-wave complex event
//     processing;
//   - an online logistic-regression model trained *and* served inside the
//     same pipeline with hot model swaps — the 3rd-generation streaming-ML
//     design of §4.1;
//   - exactly-once checkpointing under the whole thing.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/cep"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/ml"
)

func main() {
	const events = 20_000
	spec := gen.FraudSpec(events, 50, 0.03, 7)

	registry := ml.NewRegistry()
	alerts := core.NewCollectSink()
	scores := core.NewCollectSink()

	b := core.NewBuilder(core.Config{
		Name:            "frauddetect",
		SnapshotStore:   core.NewMemorySnapshotStore(),
		CheckpointEvery: 5_000,
	})

	txns := b.Source("txns", gen.SourceFactory(spec), core.WithBoundedDisorder(0))

	// Branch 1: CEP probe-probe-hit pattern per card.
	small := func(e core.Event) bool { return e.Value.(gen.Transaction).Amount < 100 }
	large := func(e core.Event) bool { return e.Value.(gen.Transaction).Amount >= 500 }
	pattern := cep.Begin("probe1", small).
		FollowedBy("probe2", small).
		FollowedBy("hit", large).
		Within(60_000).
		MustBuild()
	keyed := txns.KeyBy(func(e core.Event) string { return e.Value.(gen.Transaction).Card })
	cep.PatternStream(keyed, "pattern", pattern, func(card string, m cep.Match, emit func(core.Event)) {
		hit := m.Events["hit"][0].Value.(gen.Transaction)
		emit(core.Event{Key: card, Timestamp: m.End, Value: hit.Amount})
	}, cep.SkipPastLastEvent()).Sink("alerts", alerts.Factory())

	// Branch 2: online model — train on labelled transactions, serve
	// continuously with the freshest published version.
	features := func(t gen.Transaction) []float64 {
		return []float64{t.Amount / 1000, float64(t.MerchantID%7) / 7}
	}
	samples := txns.Map("featurize", func(e core.Event) (core.Event, bool) {
		t := e.Value.(gen.Transaction)
		label := 0.0
		if t.Fraudulent {
			label = 1
		}
		e.Value = ml.Sample{Features: features(t), Label: label}
		return e, true
	})
	ml.TrainOperator(samples, "train", ml.NewLogisticRegression(2), registry, 0.2, 1_000).
		Sink("model-log", core.NewCollectSink().Factory())
	ml.ServeOperator(samples, "serve", registry).
		Sink("scores", scores.Factory())

	job, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	if err := job.Run(context.Background()); err != nil {
		log.Fatal(err)
	}

	// Evaluate the served scores against ground truth (timestamps are unique
	// per event in this spec, so they identify transactions exactly).
	truth := map[int64]bool{}
	for i := int64(0); i < events; i++ {
		e := spec.At(i)
		truth[e.Timestamp] = e.Value.(gen.Transaction).Fraudulent
	}
	var tp, fp, fn, tn int
	for _, e := range scores.Events() {
		pred := e.Value.(ml.Prediction)
		isFraud := truth[e.Timestamp]
		switch {
		case pred.Score > 0.5 && isFraud:
			tp++
		case pred.Score > 0.5 && !isFraud:
			fp++
		case pred.Score <= 0.5 && isFraud:
			fn++
		default:
			tn++
		}
	}

	fmt.Println("fraud detection pipeline:")
	fmt.Printf("  transactions processed : %d\n", events)
	fmt.Printf("  CEP pattern alerts     : %d\n", alerts.Len())
	fmt.Printf("  model versions served  : %d\n", registry.NumVersions())
	fmt.Printf("  online model confusion : tp=%d fp=%d fn=%d tn=%d\n", tp, fp, fn, tn)
	if tp+fn > 0 {
		fmt.Printf("  recall=%.2f precision=%.2f\n",
			float64(tp)/float64(tp+fn), float64(tp)/max1(tp+fp))
	}
	fmt.Printf("  last checkpoint        : %d\n", job.LastCheckpoint())
}

func max1(n int) float64 {
	if n < 1 {
		return 1
	}
	return float64(n)
}
