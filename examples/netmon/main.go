// Command netmon is the Gigascope-style network monitoring workload ("a
// stream database for network applications") rebuilt across generations:
// bounded-memory synopses track heavy hitters and distinct destinations, a
// CQL continuous query aggregates per-protocol traffic in-engine, and the
// flow stream plus the per-source byte counters are served through the
// stream SQL front door — a TCP client subscribes a WHERE-filtered
// continuous query live and point-queries exact state afterwards over the
// same connection: 1st-generation analytics under a 3rd-generation
// interface.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/cql"
	"repro/internal/gen"
	"repro/internal/queryable"
	"repro/internal/serve"
	"repro/internal/synopsis"
)

func main() {
	const flows = 50_000
	spec := gen.FlowSpec(flows, 5_000, 99)

	// Shared synopses updated by a parallel operator; each instance owns its
	// own sketch, merged at the end (the mergeability that makes sketches
	// parallel-friendly).
	const par = 2
	sketches := make([]*synopsis.CountMin, par)
	hlls := make([]*synopsis.HyperLogLog, par)
	for i := range sketches {
		sketches[i] = synopsis.NewCountMinWithSize(4096, 4)
		h, err := synopsis.NewHyperLogLog(12)
		if err != nil {
			log.Fatal(err)
		}
		hlls[i] = h
	}

	svc := queryable.NewService()
	cqlOut := core.NewCollectSink()

	// Stream SQL front door: the flow stream is tapped into a serve hub so
	// network clients can attach continuous CQL queries while the job runs,
	// and the queryable service answers point queries over the same protocol.
	front := serve.NewServer(serve.Options{Service: svc})
	tap := front.RegisterStream("flows", func(e core.Event) (cql.Row, bool) {
		f, ok := e.Value.(gen.NetFlow)
		if !ok {
			return nil, false
		}
		return cql.Row{"src": f.SrcIP, "bytes": float64(f.Bytes)}, true
	})
	if err := front.Listen("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer front.Close()

	b := core.NewBuilder(core.Config{Name: "netmon", WatermarkInterval: 64})
	src := b.Source("flows", gen.SourceFactory(spec), core.WithBoundedDisorder(0), core.WithParallelism(par)).
		TapInto("tap", tap)

	// Branch 1: synopses (heavy hitters + distinct destinations).
	src.ProcessWith("sketch", func() core.Operator {
		return core.MapFunc(func(e core.Event, ctx core.Context) error {
			f := e.Value.(gen.NetFlow)
			sketches[ctx.InstanceIndex()].Add(f.SrcIP, uint64(f.Bytes))
			hlls[ctx.InstanceIndex()].Add(f.DstIP)
			return nil
		})()
	}, par).Sink("sketch-sink", core.NewCollectSink().Factory())

	// Branch 2: CQL per-protocol aggregate over a sliding row window.
	cql.Operator(src, "per-proto",
		"RSTREAM (SELECT proto, COUNT(*) AS flows, SUM(bytes) AS bytes FROM flows [ROWS 2000] GROUP BY proto)",
		"flows", func(e core.Event) (cql.Row, bool) {
			f, ok := e.Value.(gen.NetFlow)
			if !ok {
				return nil, false
			}
			return cql.Row{"proto": f.Protocol, "bytes": float64(f.Bytes)}, true
		}).Sink("cql-out", cqlOut.Factory())

	// Branch 3: queryable per-source byte counters.
	keyed := src.KeyBy(func(e core.Event) string { return e.Value.(gen.NetFlow).SrcIP })
	queryable.PublishOperator(keyed, "bytes-by-src", svc, "src_bytes", "bytes",
		func(e core.Event, ctx core.Context) {
			st := ctx.State().Value("bytes")
			cur := int64(0)
			if v, ok := st.Get(); ok {
				cur = v.(int64)
			}
			st.Set(cur + e.Value.(gen.NetFlow).Bytes)
		}).Sink("qs-sink", core.NewCollectSink().Factory())

	job, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// A TCP client subscribes an elephant-flow feed (WHERE-filtered, [NOW]
	// window — cheap enough to fan out per record) before the job starts, so
	// it observes the whole stream live and drains on job EOS.
	client, err := serve.Dial(front.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	sub, err := client.Subscribe("elephants",
		"ISTREAM (SELECT src, bytes FROM flows [NOW] WHERE bytes > 60000)",
		serve.SubscribeOptions{Buffer: 1024})
	if err != nil {
		log.Fatal(err)
	}
	elephants := 0
	var drain sync.WaitGroup
	drain.Add(1)
	go func() {
		defer drain.Done()
		for f := range sub.Frames {
			if f.Op == "delta" {
				elephants++
			}
		}
	}()

	if err := job.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	drain.Wait()

	// Merge per-instance sketches.
	cm := sketches[0]
	hll := hlls[0]
	for i := 1; i < par; i++ {
		if err := cm.Merge(sketches[i]); err != nil {
			log.Fatal(err)
		}
		if err := hll.Merge(hlls[i]); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("network monitoring pipeline:")
	fmt.Printf("  flows processed        : %d\n", flows)
	fmt.Printf("  distinct destinations  : ~%d (HyperLogLog, %d bytes)\n", hll.Estimate(), hll.Bytes())

	// Heavy hitters: probe the sketch with the keys the queryable state
	// knows about, report the top 5 by estimated bytes.
	type talker struct {
		src string
		est uint64
	}
	var talkers []talker
	for _, k := range svc.Keys("src_bytes") {
		talkers = append(talkers, talker{src: k, est: cm.Estimate(k)})
	}
	sort.Slice(talkers, func(i, j int) bool { return talkers[i].est > talkers[j].est })
	fmt.Printf("  tracked sources        : %d (CMS %d bytes)\n", len(talkers), cm.Bytes())
	fmt.Printf("  elephant flows >60kB   : %d (streamed live over the front door)\n", elephants)
	fmt.Println("  top talkers (sketch estimate vs exact state over the front door):")
	for _, tk := range talkers[:5] {
		exact, _, err := client.Get("src_bytes", tk.src)
		if err != nil {
			log.Fatal(err)
		}
		// Values round-trip through JSON, so numbers arrive as float64.
		fmt.Printf("    %-8s sketch=%-12d exact=%-12d\n", tk.src, tk.est, int64(exact.(float64)))
	}

	// Last CQL relation snapshot per protocol.
	latest := map[string]cql.Row{}
	for _, e := range cqlOut.Events() {
		row := e.Value.(cql.Row)
		latest[row["proto"].(string)] = row
	}
	fmt.Println("  per-protocol (CQL, last 2000 flows):")
	var protos []string
	for p := range latest {
		protos = append(protos, p)
	}
	sort.Strings(protos)
	for _, p := range protos {
		r := latest[p]
		fmt.Printf("    %-4s flows=%-6.0f bytes=%.0f\n", p, r["flows"], r["bytes"])
	}
}
