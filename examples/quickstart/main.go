// Command quickstart is the canonical first streaming program: an
// event-time windowed word count. It demonstrates the public API end to
// end — a generated source with watermarks, keying, tumbling windows with a
// count aggregate, and a sink — in ~40 lines of pipeline code.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/window"
)

func main() {
	// 10k skewed words, one every 10 ms of event time.
	words := gen.WordSpec(10_000, 42)

	sink := core.NewCollectSink()
	b := core.NewBuilder(core.Config{Name: "quickstart", DefaultParallelism: 2})

	stream := b.
		Source("words", gen.SourceFactory(words), core.WithBoundedDisorder(0)).
		// Re-key by the word itself (the generator keys by word id).
		Map("extract", func(e core.Event) (core.Event, bool) {
			e.Key = e.Value.(string)
			return e, true
		}).
		KeyBy(func(e core.Event) string { return e.Key })

	// Count each word in 5-second tumbling event-time windows.
	window.Apply(stream, "count-5s", window.NewTumbling(5_000), window.CountAggregate()).
		Sink("out", sink.Factory())

	job, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	if err := job.Run(context.Background()); err != nil {
		log.Fatal(err)
	}

	// Render per-window leaderboards.
	type result struct {
		word  string
		count int64
	}
	byWindow := map[int64][]result{}
	for _, e := range sink.Events() {
		byWindow[e.Timestamp] = append(byWindow[e.Timestamp], result{e.Key, e.Value.(int64)})
	}
	var windows []int64
	for w := range byWindow {
		windows = append(windows, w)
	}
	sort.Slice(windows, func(i, j int) bool { return windows[i] < windows[j] })

	fmt.Println("windowed word count (tumbling 5s, event time):")
	for _, w := range windows {
		rs := byWindow[w]
		sort.Slice(rs, func(i, j int) bool { return rs[i].count > rs[j].count })
		total := int64(0)
		for _, r := range rs {
			total += r.count
		}
		top := rs
		if len(top) > 3 {
			top = top[:3]
		}
		fmt.Printf("  window ending %6dms: %4d words; top:", w+1, total)
		for _, r := range top {
			fmt.Printf(" %s=%d", r.word, r.count)
		}
		fmt.Println()
	}
	fmt.Printf("%d windows, %d results\n", len(windows), sink.Len())
}
