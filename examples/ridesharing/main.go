// Command ridesharing is the §4.1 motivating use-case: "traffic and demand
// prediction for ride sharing services ... continuously compute shortest
// path queries with low latency" plus dynamic trip pricing. One pipeline:
//
//   - ingests a skewed trip stream,
//   - maintains a streaming zone graph whose edge weights are observed
//     travel times, answering incremental shortest-path (ETA) queries,
//   - computes per-zone demand in sliding windows to set surge multipliers,
//   - sessionises driver activity with session windows.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graphstream"
	"repro/internal/window"
)

const zones = 12

func main() {
	spec := gen.TripSpec(15_000, 200, zones, 11)

	demand := core.NewCollectSink()
	sessions := core.NewCollectSink()

	// Shared streaming zone graph + incremental SSSP from the airport
	// (zone 0). A parallelism-1 operator owns all writes.
	zoneGraph := graphstream.NewDynamicGraph(false)
	sssp := graphstream.NewIncrementalSSSP(zoneGraph, "zone0")

	b := core.NewBuilder(core.Config{Name: "ridesharing"})
	trips := b.Source("trips", gen.SourceFactory(spec), core.WithBoundedDisorder(0))

	// Branch 1: demand per pickup zone, sliding 60s window every 15s.
	zoneKeyed := trips.
		Map("pickup-zone", func(e core.Event) (core.Event, bool) {
			t := e.Value.(gen.Trip)
			e.Key = fmt.Sprintf("zone%d", t.ZoneFrom)
			e.Value = 1.0
			return e, true
		}).
		KeyBy(func(e core.Event) string { return e.Key })
	window.Apply(zoneKeyed, "demand-60s",
		window.NewSliding(60_000, 15_000), window.CountAggregate()).
		Sink("demand", demand.Factory())

	// Branch 2: maintain the travel-time graph and ETAs.
	trips.
		ProcessWith("zone-graph", func() core.Operator {
			return &graphOp{g: zoneGraph, sssp: sssp}
		}, 1).
		Sink("eta-log", core.NewCollectSink().Factory())

	// Branch 3: driver session windows (30s inactivity gap).
	driverKeyed := trips.KeyBy(func(e core.Event) string { return e.Value.(gen.Trip).Driver })
	window.Apply(driverKeyed, "driver-sessions",
		window.NewSession(30_000), window.FloatAggregate(window.Sum,
			func(e core.Event) float64 { return e.Value.(gen.Trip).Fare })).
		Sink("sessions", sessions.Factory())

	job, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	if err := job.Run(context.Background()); err != nil {
		log.Fatal(err)
	}

	// Surge pricing: demand of the last window per zone, normalised.
	latest := map[string]int64{}
	for _, e := range demand.Events() {
		latest[e.Key] = e.Value.(int64)
	}
	var zoneNames []string
	var total int64
	for z, d := range latest {
		zoneNames = append(zoneNames, z)
		total += d
	}
	sort.Strings(zoneNames)
	mean := float64(total) / float64(len(latest))

	fmt.Println("ride sharing pipeline:")
	fmt.Printf("  trips: %d, zones: %d, driver sessions: %d\n", spec.N, zones, sessions.Len())
	fmt.Println("  zone demand (last 60s window) and surge multiplier:")
	for _, z := range zoneNames {
		d := latest[z]
		surge := 1.0
		if mean > 0 && float64(d) > 1.5*mean {
			surge = float64(d) / mean
		}
		fmt.Printf("    %-7s demand=%-5d surge=%.2fx\n", z, d, surge)
	}
	fmt.Println("  ETA from zone0 (incremental shortest paths over observed travel times):")
	for z := 1; z < zones; z++ {
		d := sssp.Distance(fmt.Sprintf("zone%d", z))
		fmt.Printf("    zone0 -> zone%-2d : %.1f min\n", z, d)
	}
	fmt.Printf("  sssp stats: %d incremental relaxations, %d full recomputes\n",
		sssp.Relaxations, sssp.Recomputes)
}

// graphOp feeds trip observations into the zone graph: each completed trip
// is an observed travel time between zones, improving (or creating) the
// corresponding edge.
type graphOp struct {
	core.BaseOperator
	g    *graphstream.DynamicGraph
	sssp *graphstream.IncrementalSSSP
}

func (o *graphOp) ProcessElement(e core.Event, ctx core.Context) error {
	t := e.Value.(gen.Trip)
	if t.ZoneFrom == t.ZoneTo {
		return nil
	}
	// Travel time estimate in minutes derived from the fare distance model.
	travel := (t.Fare - 2.5) / 1.3
	from := fmt.Sprintf("zone%d", t.ZoneFrom)
	to := fmt.Sprintf("zone%d", t.ZoneTo)
	// Keep the best observed time per edge (roads don't get faster than
	// their fastest observation).
	if cur, ok := o.g.Neighbors(from)[to]; !ok || travel < cur {
		ev := graphstream.EdgeEvent{Op: graphstream.AddEdge, From: from, To: to, Weight: travel, Ts: e.Timestamp}
		o.g.Apply(ev)
		o.sssp.Apply(ev)
	}
	return nil
}
