// Command statefun is the §4.1 Cloud-application example: an e-commerce
// checkout built from stateful functions (virtual actors) with a
// transactional payment workflow underneath — "stream processors can become
// full-fledged systems for backing Cloud services such as Virtual Actors and
// Microservices, capable of executing transactions ... and embedding complex
// business logic of stateful services inside dataflow operators".
//
// Three function types cooperate: cart (accumulates items), checkout
// (orchestrates), inventory (reserves stock). Payment runs as a txn.Workflow
// with automatic compensation: an order that cannot be paid releases its
// reserved stock.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/statefun"
	"repro/internal/txn"
)

// Messages.
type addItem struct {
	SKU   string
	Price int64
}
type checkoutNow struct{}
type orderResult struct {
	User    string
	Total   int64
	Success bool
	Reason  string
}

func main() {
	store := txn.NewStore(8)
	// Seed inventory and user balances.
	mustExec(store, []string{"stock/widget"}, func(tx *txn.Tx) error { return tx.Set("stock/widget", int64(3)) })
	mustExec(store, []string{"stock/gadget"}, func(tx *txn.Tx) error { return tx.Set("stock/gadget", int64(10)) })
	for _, u := range []string{"alice", "bob", "carol"} {
		k := "balance/" + u
		mustExec(store, []string{k}, func(tx *txn.Tx) error { return tx.Set(k, int64(120)) })
	}

	rt := statefun.NewRuntime(4)

	// cart/<user>: accumulates items, forwards to checkout on demand.
	mustRegister(rt, "cart", func(ctx statefun.Context, msg statefun.Message) error {
		st := ctx.State()
		items, _ := st.Get()
		cart, _ := items.([]any)
		switch m := msg.Payload.(type) {
		case addItem:
			st.Set(append(cart, m))
		case checkoutNow:
			ctx.Send(statefun.Address{Type: "checkout", ID: ctx.Self().ID}, cart)
			st.Clear()
		}
		return nil
	})

	// checkout/<user>: runs the payment workflow transactionally.
	mustRegister(rt, "checkout", func(ctx statefun.Context, msg statefun.Message) error {
		cart, _ := msg.Payload.([]any)
		user := ctx.Self().ID
		var total int64
		var keys []string
		for _, it := range cart {
			item := it.(addItem)
			total += item.Price
			keys = append(keys, "stock/"+item.SKU)
		}
		if len(cart) == 0 {
			ctx.Egress(orderResult{User: user, Success: false, Reason: "empty cart"})
			return nil
		}

		wf := txn.Workflow{
			Name: "checkout-" + user,
			Steps: []txn.Step{
				{
					Name: "reserve-stock",
					Keys: keys,
					Do: func(tx *txn.Tx) error {
						for _, it := range cart {
							item := it.(addItem)
							k := "stock/" + item.SKU
							v, ok, _ := tx.Get(k)
							if !ok || v.(int64) < 1 {
								tx.Abort(errors.New("out of stock: " + item.SKU))
								return nil
							}
							if err := tx.Set(k, v.(int64)-1); err != nil {
								return err
							}
						}
						return nil
					},
					Compensate: func(tx *txn.Tx) error {
						for _, it := range cart {
							item := it.(addItem)
							k := "stock/" + item.SKU
							v, _, _ := tx.Get(k)
							if err := tx.Set(k, v.(int64)+1); err != nil {
								return err
							}
						}
						return nil
					},
				},
				{
					Name: "charge",
					Keys: []string{"balance/" + user},
					Do: func(tx *txn.Tx) error {
						k := "balance/" + user
						v, _, _ := tx.Get(k)
						if v.(int64) < total {
							tx.Abort(errors.New("insufficient funds"))
							return nil
						}
						return tx.Set(k, v.(int64)-total)
					},
				},
			},
		}
		res := wf.Execute(store)
		if res.Err != nil {
			ctx.Egress(orderResult{User: user, Total: total, Success: false, Reason: res.Err.Error()})
		} else {
			ctx.Egress(orderResult{User: user, Total: total, Success: true})
		}
		return nil
	})

	rt.Start()

	// Drive the shop: alice and bob buy widgets; carol over-spends; a fourth
	// wave exhausts widget stock so compensation paths fire.
	send := func(user string, m any) {
		rt.Send(statefun.Address{Type: "cart", ID: user}, m)
	}
	send("alice", addItem{SKU: "widget", Price: 60})
	send("alice", addItem{SKU: "gadget", Price: 30})
	send("alice", checkoutNow{})

	send("bob", addItem{SKU: "widget", Price: 60})
	send("bob", checkoutNow{})

	send("carol", addItem{SKU: "widget", Price: 60})
	send("carol", addItem{SKU: "gadget", Price: 90}) // 150 > 120 balance
	send("carol", checkoutNow{})
	rt.Drain()

	// Widget stock is now 3-2(-1 carol reserved+compensated)=1; two more
	// buyers race for the last widget.
	send("alice", addItem{SKU: "widget", Price: 60})
	send("alice", checkoutNow{})
	send("bob", addItem{SKU: "widget", Price: 60})
	send("bob", checkoutNow{})
	rt.Stop()

	fmt.Println("stateful-functions checkout:")
	for _, v := range rt.EgressValues() {
		r := v.(orderResult)
		status := "OK"
		if !r.Success {
			status = "FAILED (" + r.Reason + ")"
		}
		fmt.Printf("  order user=%-6s total=%-4d %s\n", r.User, r.Total, status)
	}
	stock, _ := store.Read("stock/widget")
	fmt.Printf("  final widget stock : %v\n", stock)
	for _, u := range []string{"alice", "bob", "carol"} {
		bal, _ := store.Read("balance/" + u)
		fmt.Printf("  final balance %-6s: %v\n", u, bal)
	}
	fmt.Printf("  txn commits=%d aborts=%d, function invocations=%d\n",
		store.Commits.Load(), store.Aborts.Load(), rt.Invocations.Load())
	if fails := rt.Failures(); len(fails) > 0 {
		log.Fatalf("function failures: %v", fails)
	}
}

func mustExec(s *txn.Store, keys []string, fn func(tx *txn.Tx) error) {
	if err := s.Execute(keys, fn); err != nil {
		log.Fatal(err)
	}
}

func mustRegister(rt *statefun.Runtime, name string, fn statefun.Function) {
	if err := rt.Register(name, fn); err != nil {
		log.Fatal(err)
	}
}
