package repro

// Smoke tests that every example program and command-line tool builds and
// runs to completion. Guarded by -short since each invocation compiles a
// binary.

import (
	"os/exec"
	"strings"
	"testing"
)

func runGo(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", args...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go %s failed: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping example executions in -short mode")
	}
	for _, tc := range []struct {
		path string
		want string
	}{
		{"./examples/quickstart", "windowed word count"},
		{"./examples/frauddetect", "fraud detection pipeline"},
		{"./examples/ridesharing", "ride sharing pipeline"},
		{"./examples/statefun", "stateful-functions checkout"},
		{"./examples/netmon", "network monitoring pipeline"},
	} {
		t.Run(tc.path, func(t *testing.T) {
			out := runGo(t, "run", tc.path)
			if !strings.Contains(out, tc.want) {
				t.Fatalf("%s output missing %q:\n%s", tc.path, tc.want, out)
			}
		})
	}
}

func TestCommandsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping command executions in -short mode")
	}
	t.Run("cqlrun", func(t *testing.T) {
		out := runGo(t, "run", "./cmd/cqlrun", "-n", "50",
			"RSTREAM (SELECT proto, COUNT(*) AS n FROM flows [ROWS 20] GROUP BY proto)")
		if !strings.Contains(out, "rows printed") {
			t.Fatalf("cqlrun output unexpected:\n%s", out)
		}
	})
	t.Run("benchtables-tiny", func(t *testing.T) {
		out := runGo(t, "run", "./cmd/benchtables", "-scale", "0.01", "-only", "E2,E3")
		if !strings.Contains(out, "Table 1") || !strings.Contains(out, "two-stacks") {
			t.Fatalf("benchtables output unexpected:\n%s", out)
		}
	})
	t.Run("evolution-tiny", func(t *testing.T) {
		out := runGo(t, "run", "./cmd/evolution", "-scale", "0.01")
		if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "gen3 pipeline") {
			t.Fatalf("evolution output unexpected:\n%s", out)
		}
	})
	t.Run("serve-tiny", func(t *testing.T) {
		// Exercises the stream SQL front door end to end: tapped pipeline,
		// TCP subscribers with continuous CQL queries, live point queries.
		out := runGo(t, "run", "./cmd/serve", "-n", "4000", "-clients", "3")
		for _, want := range []string{
			"stream SQL front door on",
			"stream SQL front door demo",
			"true (aggregate stream across 2 subscribers)",
			"served streams/tables: [flows] / [src_bytes]",
		} {
			if !strings.Contains(out, want) {
				t.Fatalf("serve output missing %q:\n%s", want, out)
			}
		}
	})
	t.Run("observe-tiny", func(t *testing.T) {
		// The command self-scrapes /metrics at the end, so this exercises the
		// introspection HTTP path end to end.
		out := runGo(t, "run", "./cmd/observe", "-n", "5000", "-checkpoint-every", "1000", "-addr", "127.0.0.1:0")
		for _, want := range []string{"observability server on http://", "job finished", "node_win_1s_in 5000", "checkpoint_completed"} {
			if !strings.Contains(out, want) {
				t.Fatalf("observe output missing %q:\n%s", want, out)
			}
		}
	})
}
