package repro

// Cross-module integration tests: whole jobs exercising several subsystems
// together — the scenarios a downstream user of the library would actually
// build.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/cep"
	"repro/internal/core"
	"repro/internal/cql"
	"repro/internal/gen"
	"repro/internal/ml"
	"repro/internal/queryable"
	"repro/internal/state"
	"repro/internal/window"
)

func runWithTimeout(t *testing.T, j *core.Job) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := j.Run(ctx); err != nil {
		t.Fatalf("job failed: %v", err)
	}
}

// TestWindowedPipelineSurvivesRestore runs a windowed aggregation with
// checkpoints, stops at a savepoint, restores, and verifies the window
// results equal an uninterrupted run — windows + managed state + barriers +
// replayable generated source, together.
func TestWindowedPipelineSurvivesRestore(t *testing.T) {
	spec := gen.Spec{N: 3_000, Keys: 8, IntervalMs: 10, Seed: 21}
	store := core.NewMemorySnapshotStore()

	build := func(stopAt int, jobRef **core.Job, sink *core.CollectSink) *core.Job {
		b := core.NewBuilder(core.Config{
			Name:              "win-restore",
			SnapshotStore:     store,
			ChannelCapacity:   4,
			WatermarkInterval: 8,
		})
		s := b.Source("src", gen.SourceFactory(spec), core.WithBoundedDisorder(0))
		if stopAt > 0 {
			s = s.Process("mid", savepointTrigger(stopAt, jobRef))
		} else {
			s = s.Map("mid", func(e core.Event) (core.Event, bool) { return e, true })
		}
		keyed := s.KeyBy(func(e core.Event) string { return e.Key })
		window.Apply(keyed, "count", window.NewTumbling(1_000), window.CountAggregate()).
			Sink("out", sink.Factory())
		j, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}

	// Reference: clean run.
	ref := core.NewCollectSink()
	runWithTimeout(t, build(0, nil, ref))

	// Interrupted run + restore.
	var j1 *core.Job
	part1 := core.NewCollectSink()
	j1 = build(1_000, &j1, part1)
	runWithTimeout(t, j1)
	cp := j1.LastCheckpoint()
	if cp < 0 {
		t.Fatal("no savepoint completed")
	}
	part2 := core.NewCollectSink()
	j2 := build(0, nil, part2)
	j2.RestoreFrom(cp)
	runWithTimeout(t, j2)

	sum := func(evs []core.Event) map[string]int64 {
		out := map[string]int64{}
		for _, e := range evs {
			out[fmt.Sprintf("%s@%d", e.Key, e.Timestamp)] += e.Value.(int64)
		}
		return out
	}
	want := sum(ref.Events())
	got := sum(append(part1.Events(), part2.Events()...))
	if len(want) != len(got) {
		t.Fatalf("window result count differs: clean=%d restored=%d", len(want), len(got))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("window %s: clean=%d restored=%d", k, v, got[k])
		}
	}
}

func savepointTrigger(at int, job **core.Job) core.OperatorFactory {
	return func() core.Operator { return &spTrigger{at: at, job: job} }
}

type spTrigger struct {
	core.BaseOperator
	at, seen int
	job      **core.Job
}

func (o *spTrigger) ProcessElement(e core.Event, ctx core.Context) error {
	ctx.Emit(e)
	o.seen++
	if o.seen == o.at && o.job != nil && *o.job != nil {
		(*o.job).TriggerSavepoint()
	}
	return nil
}

// TestCQLOperatorInsideEngine runs a CQL aggregation as a dataflow operator
// over a generated trade stream.
func TestCQLOperatorInsideEngine(t *testing.T) {
	var events []core.Event
	for i := 0; i < 300; i++ {
		events = append(events, core.Event{
			Timestamp: int64(i * 10),
			Value: cql.Row{
				"symbol": []string{"AAA", "BBB"}[i%2],
				"price":  float64(100 + i%7),
			},
		})
	}
	sink := core.NewCollectSink()
	b := core.NewBuilder(core.Config{Name: "cql-engine"})
	s := b.Source("trades", core.NewSliceSourceFactory(events))
	cql.Operator(s, "avg", "RSTREAM (SELECT symbol, AVG(price) AS avgp FROM trades [ROWS 50] GROUP BY symbol)",
		"trades", func(e core.Event) (cql.Row, bool) {
			r, ok := e.Value.(cql.Row)
			return r, ok
		}).
		Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	runWithTimeout(t, j)
	if sink.Len() == 0 {
		t.Fatal("no CQL output")
	}
	// Every emitted row must carry a plausible running average.
	for _, e := range sink.Events() {
		row := e.Value.(cql.Row)
		avg := row["avgp"].(float64)
		if avg < 100 || avg > 107 {
			t.Fatalf("implausible average: %v", row)
		}
	}
}

// TestFraudPipelineEndToEnd wires generator -> CEP -> alerts and
// generator -> features -> online model -> predictions, in one job, with an
// LSM state backend under the CEP operator — three subsystems composed.
func TestFraudPipelineEndToEnd(t *testing.T) {
	dir := t.TempDir()
	spec := gen.FraudSpec(4_000, 20, 0.05, 3)
	registry := ml.NewRegistry()
	alerts := core.NewCollectSink()
	scores := core.NewCollectSink()

	b := core.NewBuilder(core.Config{
		Name: "fraud-e2e",
		BackendFactory: func(node string, instance int) (state.Backend, error) {
			return state.NewLSMBackend(fmt.Sprintf("%s/%s-%d", dir, node, instance), 0)
		},
	})
	txns := b.Source("txns", gen.SourceFactory(spec), core.WithBoundedDisorder(0))

	small := func(e core.Event) bool { return e.Value.(gen.Transaction).Amount < 100 }
	large := func(e core.Event) bool { return e.Value.(gen.Transaction).Amount >= 500 }
	pattern := cep.Begin("p1", small).FollowedBy("p2", small).
		FollowedBy("hit", large).Within(60_000).MustBuild()
	keyed := txns.KeyBy(func(e core.Event) string { return e.Value.(gen.Transaction).Card })
	cep.PatternStream(keyed, "pattern", pattern, func(card string, m cep.Match, emit func(core.Event)) {
		emit(core.Event{Key: card, Timestamp: m.End, Value: "alert"})
	}, cep.SkipPastLastEvent()).Sink("alerts", alerts.Factory())

	samples := txns.Map("featurize", func(e core.Event) (core.Event, bool) {
		tx := e.Value.(gen.Transaction)
		label := 0.0
		if tx.Fraudulent {
			label = 1
		}
		e.Value = ml.Sample{Features: []float64{tx.Amount / 1000}, Label: label}
		return e, true
	})
	ml.TrainOperator(samples, "train", ml.NewLogisticRegression(1), registry, 0.2, 500).
		Sink("pub", core.NewCollectSink().Factory())
	ml.ServeOperator(samples, "serve", registry).Sink("scores", scores.Factory())

	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	runWithTimeout(t, j)

	if alerts.Len() == 0 {
		t.Fatal("no CEP alerts on a stream with injected fraud")
	}
	if registry.NumVersions() < 4 {
		t.Fatalf("too few model versions: %d", registry.NumVersions())
	}
	// Late predictions (trained model) should separate fraud from normal.
	var fraudScore, normalScore float64
	var fraudN, normalN int
	truth := map[int64]bool{}
	for i := int64(0); i < int64(spec.N); i++ {
		e := spec.At(i)
		truth[e.Timestamp] = e.Value.(gen.Transaction).Fraudulent
	}
	events := scores.Events()
	for _, e := range events[len(events)/2:] { // second half: model warmed up
		p := e.Value.(ml.Prediction)
		if truth[e.Timestamp] {
			fraudScore += p.Score
			fraudN++
		} else {
			normalScore += p.Score
			normalN++
		}
	}
	if fraudN == 0 || normalN == 0 {
		t.Fatal("missing classes in scored stream")
	}
	if fraudScore/float64(fraudN) <= normalScore/float64(normalN) {
		t.Fatalf("model does not separate: fraud avg %.3f vs normal avg %.3f",
			fraudScore/float64(fraudN), normalScore/float64(normalN))
	}
}

// TestQueryableStateAcrossRescale publishes pipeline state, rescales the
// operator via a savepoint, resumes, and verifies the queryable counts end
// up exactly right — state migration + queryable state composed.
func TestQueryableStateAcrossRescale(t *testing.T) {
	const events = 2_000
	evs := make([]core.Event, events)
	for i := range evs {
		evs[i] = core.Event{Key: fmt.Sprintf("k%d", i%13), Timestamp: int64(i), Value: int64(1)}
	}
	store := core.NewMemorySnapshotStore()
	svc := queryable.NewService()

	build := func(par int, stopAt int, jobRef **core.Job) *core.Job {
		b := core.NewBuilder(core.Config{Name: "qrescale", SnapshotStore: store,
			ChannelCapacity: 4, WatermarkInterval: 16})
		s := b.Source("src", core.NewSliceSourceFactory(evs), core.WithBoundedDisorder(0))
		if stopAt > 0 {
			s = s.Process("mid", savepointTrigger(stopAt, jobRef))
		} else {
			s = s.Map("mid", func(e core.Event) (core.Event, bool) { return e, true })
		}
		keyed := s.KeyBy(func(e core.Event) string { return e.Key })
		str := queryable.PublishOperator(keyed, "count", svc, "counts", "n",
			func(e core.Event, ctx core.Context) {
				st := ctx.State().Value("n")
				cur := int64(0)
				if v, ok := st.Get(); ok {
					cur = v.(int64)
				}
				st.Set(cur + 1)
			})
		_ = par
		str.Sink("out", core.NewCollectSink().Factory())
		j, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}

	var j1 *core.Job
	j1 = build(1, 800, &j1)
	runWithTimeout(t, j1)
	cp := j1.LastCheckpoint()
	if cp < 0 {
		t.Fatal("no savepoint")
	}
	j2 := build(1, 0, nil)
	j2.RestoreFrom(cp)
	runWithTimeout(t, j2)

	total := int64(0)
	for _, k := range svc.Keys("counts") {
		v, _ := svc.Get("counts", k)
		total += v.(int64)
	}
	if total != events {
		t.Fatalf("queryable counts after restore: want %d, got %d", events, total)
	}
}

// TestAtLeastOnceModeDeliversEverything exercises the unaligned-barrier
// mode: a restore may duplicate but never lose.
func TestAtLeastOnceModeDeliversEverything(t *testing.T) {
	const events = 1_000
	evs := make([]core.Event, events)
	for i := range evs {
		evs[i] = core.Event{Key: "k", Timestamp: int64(i), Value: int64(1)}
	}
	store := core.NewMemorySnapshotStore()

	var j1 *core.Job
	sink1 := core.NewCollectSink()
	b := core.NewBuilder(core.Config{Name: "alo", SnapshotStore: store,
		AtLeastOnce: true, ChannelCapacity: 2})
	b.Source("src", core.NewSliceSourceFactory(evs)).
		Process("mid", savepointTrigger(400, &j1)).
		Sink("out", sink1.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	j1 = j
	runWithTimeout(t, j)
	cp := j.LastCheckpoint()
	if cp < 0 {
		t.Fatal("no savepoint in at-least-once mode")
	}

	sink2 := core.NewCollectSink()
	b2 := core.NewBuilder(core.Config{Name: "alo2", SnapshotStore: store, AtLeastOnce: true})
	b2.Source("src", core.NewSliceSourceFactory(evs)).
		Map("mid", func(e core.Event) (core.Event, bool) { return e, true }).
		Sink("out", sink2.Factory())
	j2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	j2.RestoreFrom(cp)
	runWithTimeout(t, j2)

	// Union must cover every timestamp at least once.
	seen := map[int64]int{}
	for _, e := range append(sink1.Events(), sink2.Events()...) {
		seen[e.Timestamp]++
	}
	for i := int64(0); i < events; i++ {
		if seen[i] == 0 {
			t.Fatalf("at-least-once lost event %d", i)
		}
	}
}
