package streamvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// BlocksFact marks a function that may block on a channel: its body performs
// a channel send/receive, a select without a default, a range over a
// channel, or sync.Cond.Wait / sync.WaitGroup.Wait — or it calls (statically)
// a function already carrying the fact. Facts flow across package
// boundaries, so a core function calling an lsm helper that receives on a
// channel is seen blocking even though core never spells out the receive.
type BlocksFact struct {
	Op  string // the direct blocking operation at the chain's root
	Via string // ObjKey of the callee the fact arrived through ("" = direct)
}

func (BlocksFact) AFact() {}

func (f BlocksFact) String() string {
	if f.Via == "" {
		return "may block: " + f.Op
	}
	return fmt.Sprintf("may block: %s (via %s)", f.Op, f.Via)
}

// NewChanBlock builds the chanblock analyzer: the inter-procedural upgrade
// of lockcross. lockcross sees `mu.Lock(); <-ch` inside one function;
// chanblock sees `mu.Lock(); drain()` where drain — possibly in another
// package — receives on a channel. Facts are computed for every package the
// run loads; diagnostics are reported only in the designated pkgs, where
// backpressure makes an indefinite block under a lock a reachable deadlock.
func NewChanBlock(pkgs ...string) *Analyzer {
	designated := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		designated[p] = true
	}
	a := &Analyzer{
		Name: "chanblock",
		Doc:  "reports calls made while holding a mutex to functions that may block on a channel, across package boundaries (fact-propagated lockcross)",
	}
	a.Run = func(pass *Pass) error {
		exportBlocksFacts(pass)
		if !designated[pass.Pkg.Path()] {
			return nil
		}
		lw := &lockWalker{pass: pass}
		lw.onCall = func(call *ast.CallExpr, held lockState) {
			callee := staticCallee(pass.TypesInfo, call)
			if callee == nil {
				return
			}
			fact, ok := pass.ObjectFact(callee)
			if !ok {
				return
			}
			bf := fact.(BlocksFact)
			for lock, at := range held {
				pass.Reportf(call.Pos(),
					"call to %s while holding %s (locked at %s); %s %s — a blocking call under a mutex can deadlock under backpressure",
					ObjKey(callee), lock, pass.Fset.Position(at), ObjKey(callee), bf)
			}
		}
		for _, file := range pass.Files {
			lw.walkFile(file)
		}
		return nil
	}
	return a
}

// exportBlocksFacts computes the may-block fact for every function declared
// in the package, to a fixpoint: a function blocks directly, or through any
// static callee that blocks (same package — resolved by iterating — or an
// import, whose facts the dependency-ordered run has already stored).
func exportBlocksFacts(pass *Pass) {
	type fnInfo struct {
		fn   *types.Func
		body *ast.BlockStmt
	}
	var fns []fnInfo
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fns = append(fns, fnInfo{fn: fn, body: fd.Body})
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			if _, done := pass.ObjectFact(fi.fn); done {
				continue
			}
			if op, via, blocks := bodyBlocks(pass, fi.body); blocks {
				pass.ExportObjectFact(fi.fn, BlocksFact{Op: op, Via: via})
				changed = true
			}
		}
	}
}

// blockingWaitCalls are stdlib calls treated as channel-equivalent blocking
// points (a Cond.Wait or WaitGroup.Wait parks until another goroutine acts).
var blockingWaitCalls = map[string]string{
	"sync.(*Cond).Wait":      "sync.Cond.Wait",
	"sync.(*WaitGroup).Wait": "sync.WaitGroup.Wait",
}

// bodyBlocks scans one function body — excluding nested function literals
// and go statements, whose bodies run on other goroutines — for a direct
// blocking operation or a static call to a function with a BlocksFact.
func bodyBlocks(pass *Pass, body *ast.BlockStmt) (op, via string, blocks bool) {
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if blocks {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SendStmt:
			op, blocks = "channel send", true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				op, blocks = "channel receive", true
			}
		case *ast.SelectStmt:
			if !selectHasDefault(x) {
				op, blocks = "select", true
				return false
			}
			// A select with a default never blocks, and neither do the sends
			// and receives in its case headers — only the clause bodies can.
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, s := range cc.Body {
						ast.Inspect(s, visit)
					}
				}
			}
			return false
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[x.X]; ok && tv.Type != nil {
				if _, isChan := types.Unalias(tv.Type.Underlying()).(*types.Chan); isChan {
					op, blocks = "range over channel", true
				}
			}
		case *ast.CallExpr:
			callee := staticCallee(pass.TypesInfo, x)
			if callee == nil {
				return true
			}
			key := ObjKey(callee)
			if w, ok := blockingWaitCalls[key]; ok {
				op, blocks = w, true
				return false
			}
			if fact, ok := pass.ObjectFact(callee); ok {
				bf := fact.(BlocksFact)
				op, via, blocks = bf.Op, key, true
			}
		}
		return !blocks
	}
	ast.Inspect(body, visit)
	return op, via, blocks
}

// selectHasDefault reports whether a select statement has a default clause
// (making it non-blocking).
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// staticCallee resolves the called function of a call expression when it is
// statically known: a plain identifier or a selector resolving to a
// *types.Func (package function, method on a concrete type, or an interface
// method). Calls through function values and type conversions return nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}
