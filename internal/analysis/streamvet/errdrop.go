package streamvet

import (
	"go/ast"
	"go/types"
)

// DurabilityFact marks a function whose error result can originate from a
// durability operation — a snapshot-store Save/Complete/LinkFile, a WAL
// append or fsync, an os.File Sync — so wrappers (`func (s *store) flush()
// error { return s.f.Sync() }`) are as dangerous to ignore as the seed call
// itself. The fact crosses package boundaries: state code discarding the
// error of an lsm helper that fsyncs is flagged even though state never
// mentions a file.
type DurabilityFact struct {
	Via string // ObjKey of the seed or fact-carrying callee the error flows from
}

func (DurabilityFact) AFact() {}

func (f DurabilityFact) String() string { return "returns durability error (via " + f.Via + ")" }

// errDropSeeds are the stdlib durability-error sources every configuration
// starts from; engine-specific seeds (snapshot stores, the WAL) are added by
// the Suite configuration.
var errDropSeeds = []string{
	"os.(*File).Sync",
	"os.(*File).Close",
}

// NewErrDrop builds the errdrop analyzer. designated are the packages on the
// durability path (lsm, state, core) where a dropped error silently voids
// the exactly-once contract: a checkpoint the store failed to persist, a WAL
// frame the OS never flushed. seeds are extra ObjKeys treated as
// durability-error sources besides the stdlib defaults.
//
// Reported shapes, for calls whose static callee carries the fact:
//
//   - the call as a bare statement (or `go` statement): error discarded;
//   - a multi-value assignment with `_` in the error position;
//   - the error assigned to a variable that is overwritten before any read,
//     or — for `:=` declarations — never read at all in its scope.
//
// Deliberate discards stay visible and unflagged: `_ = f.Close()` (the
// explicit single blank assignment) and `defer f.Close()` (the read-path
// cleanup idiom; write paths must Sync first, which is checked).
func NewErrDrop(designated []string, seeds ...string) *Analyzer {
	pkgs := make(map[string]bool, len(designated))
	for _, p := range designated {
		pkgs[p] = true
	}
	seedSet := make(map[string]bool, len(errDropSeeds)+len(seeds))
	for _, s := range errDropSeeds {
		seedSet[s] = true
	}
	for _, s := range seeds {
		seedSet[s] = true
	}
	a := &Analyzer{
		Name: "errdrop",
		Doc:  "reports discarded or shadowed error results of durability operations (Save/Complete/LinkFile, WAL append/fsync, file Sync/Close) on the checkpoint path",
	}
	a.Run = func(pass *Pass) error {
		exportDurabilityFacts(pass, seedSet)
		if !pkgs[pass.Pkg.Path()] {
			return nil
		}
		ed := &errDrop{pass: pass, seeds: seedSet}
		for _, body := range functionBodies(pass.Files) {
			ed.check(body)
		}
		return nil
	}
	return a
}

// functionBodies returns the body of every function in the files —
// declarations and literals alike. The statement walkers never descend into
// nested literals, so each body is visited exactly once.
func functionBodies(files []*ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					out = append(out, fn.Body)
				}
			case *ast.FuncLit:
				out = append(out, fn.Body)
			}
			return true
		})
	}
	return out
}

// exportDurabilityFacts marks, to a fixpoint, every declared function that
// returns an error and whose body calls a durability seed or an already
// marked function.
func exportDurabilityFacts(pass *Pass, seeds map[string]bool) {
	type fnInfo struct {
		fn   *types.Func
		body *ast.BlockStmt
	}
	var fns []fnInfo
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok || !returnsError(fn) {
				continue
			}
			fns = append(fns, fnInfo{fn: fn, body: fd.Body})
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			if _, done := pass.ObjectFact(fi.fn); done {
				continue
			}
			if via, ok := bodyTouchesDurability(pass, fi.body, seeds); ok {
				pass.ExportObjectFact(fi.fn, DurabilityFact{Via: via})
				changed = true
			}
		}
	}
}

// returnsError reports whether any result of fn is the error type.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return qualifiedTypeName(types.Unalias(t)) == "error"
}

// bodyTouchesDurability scans one body (excluding nested literals and go
// statements) for a call to a seed or fact-carrying function.
func bodyTouchesDurability(pass *Pass, body *ast.BlockStmt, seeds map[string]bool) (via string, found bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if key, ok := durabilityCallee(pass, seeds, x); ok {
				via, found = key, true
				return false
			}
		}
		return true
	})
	return via, found
}

// durabilityCallee resolves a call's static callee and reports whether it is
// a durability-error source (seed or fact), returning its ObjKey.
func durabilityCallee(pass *Pass, seeds map[string]bool, call *ast.CallExpr) (string, bool) {
	callee := staticCallee(pass.TypesInfo, call)
	if callee == nil || !returnsError(callee) {
		return "", false
	}
	key := ObjKey(callee)
	if seeds[key] {
		return key, true
	}
	if _, ok := pass.ObjectFact(callee); ok {
		return key, true
	}
	return "", false
}

// errDrop scans function bodies for discarded or shadowed durability errors.
type errDrop struct {
	pass  *Pass
	seeds map[string]bool
}

// check scans one function body. Discards are local statement shapes; shadow
// detection is position-based over the whole body, so a read anywhere after
// the assignment — an enclosing scope, a later branch, a capturing closure —
// counts as checking the error.
func (ed *errDrop) check(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			return false // a separate body, checked on its own
		case *ast.DeferStmt:
			// defer f.Close() is the sanctioned read-path cleanup idiom; write
			// paths must Sync (checked) before relying on Close.
			return false
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if key, ok := durabilityCallee(ed.pass, ed.seeds, call); ok {
					ed.pass.Reportf(call.Pos(),
						"discarded error from %s, a durability operation; a dropped Save/fsync error silently voids the exactly-once contract",
						key)
				}
			}
		case *ast.GoStmt:
			// A `go save()` can never observe the error; same discard.
			if key, ok := durabilityCallee(ed.pass, ed.seeds, st.Call); ok {
				ed.pass.Reportf(st.Call.Pos(),
					"discarded error from %s, a durability operation, in a go statement; the goroutine drops the error on the floor",
					key)
			}
		case *ast.AssignStmt:
			ed.checkAssign(body, st)
		}
		return true
	})
}

// checkAssign inspects one assignment whose RHS is a single durability call.
func (ed *errDrop) checkAssign(body *ast.BlockStmt, st *ast.AssignStmt) {
	if len(st.Rhs) != 1 {
		return
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	key, ok := durabilityCallee(ed.pass, ed.seeds, call)
	if !ok {
		return
	}
	callee := staticCallee(ed.pass.TypesInfo, call)
	sig := callee.Type().(*types.Signature)
	if len(st.Lhs) != sig.Results().Len() && sig.Results().Len() > 1 {
		return // odd shapes (assignment through a tuple variable) — skip
	}
	for i, lhs := range st.Lhs {
		if i >= sig.Results().Len() || !isErrorType(sig.Results().At(i).Type()) {
			continue
		}
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		if id.Name == "_" {
			// `_ = call()` alone is the explicit, sanctioned discard; a blank
			// in a multi-value assignment hides the error among used results.
			if len(st.Lhs) > 1 {
				ed.pass.Reportf(st.Pos(),
					"durability error from %s discarded via blank identifier; handle it or make the discard a standalone `_ = ...`",
					key)
			}
			continue
		}
		obj := ed.objectOf(id)
		if obj == nil {
			continue
		}
		ed.checkFlow(body, st, obj, id.Name, key)
	}
}

// objectOf resolves an assignment LHS identifier to its object, whether the
// assignment declares it (:=) or reuses it (=).
func (ed *errDrop) objectOf(id *ast.Ident) types.Object {
	if obj := ed.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return ed.pass.TypesInfo.Uses[id]
}

// checkFlow finds the first mention of obj after the assignment, anywhere in
// the body. The first mention decides: a pure overwrite (obj only on the left
// of another assignment) means the durability error was shadowed away before
// anyone read it; a read means it was handled. No mention at all is reported
// only when the variable's whole life is visible — declared in this body and
// not read by an earlier line of an enclosing loop (the next iteration's
// read) — so outer-scope and package variables never false-positive.
func (ed *errDrop) checkFlow(body *ast.BlockStmt, assign *ast.AssignStmt, obj types.Object, name, key string) {
	var first *ast.Ident
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Pos() <= assign.End() {
			return true
		}
		if ed.pass.TypesInfo.Uses[id] != obj && ed.pass.TypesInfo.Defs[id] != obj {
			return true
		}
		if first == nil || id.Pos() < first.Pos() {
			first = id
		}
		return true
	})
	if first == nil {
		if ed.readInEnclosingLoop(body, assign, obj) {
			return
		}
		if obj.Pos() < body.Pos() || obj.Pos() > body.End() {
			return // outer-scope or package variable: reads exist elsewhere
		}
		ed.pass.Reportf(assign.Pos(),
			"durability error from %s assigned to %s and never checked", key, name)
		return
	}
	if ov := ed.enclosingAssignLHS(body, first); ov != nil && pureOverwrite(ed.pass, ov, obj) {
		ed.pass.Reportf(assign.Pos(),
			"durability error from %s assigned to %s but overwritten at %s before being checked",
			key, name, ed.pass.Fset.Position(ov.Pos()))
	}
}

// readInEnclosingLoop reports whether a for/range statement encloses the
// assignment and mentions obj somewhere outside it — a read that executes on
// the next iteration even though it sits at an earlier position.
func (ed *errDrop) readInEnclosingLoop(body *ast.BlockStmt, assign *ast.AssignStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if n.Pos() <= assign.Pos() && assign.End() <= n.End() &&
				referencesObjectAfter(ed.pass, n, obj, assign) {
				found = true
			}
		}
		return !found
	})
	return found
}

// enclosingAssignLHS returns the assignment statement that has id as one of
// its left-hand sides, if any.
func (ed *errDrop) enclosingAssignLHS(body *ast.BlockStmt, id *ast.Ident) *ast.AssignStmt {
	var out *ast.AssignStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, l := range as.Lhs {
			if lid, ok := l.(*ast.Ident); ok && lid == id {
				out = as
			}
		}
		return out == nil
	})
	return out
}

// referencesObject reports whether the statement subtree mentions obj.
func referencesObject(pass *Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if id, ok := x.(*ast.Ident); ok {
			if pass.TypesInfo.Uses[id] == obj || pass.TypesInfo.Defs[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// referencesObjectAfter is referencesObject excluding one subtree (the
// assignment itself, when it syntactically sits inside n as an init clause).
func referencesObjectAfter(pass *Pass, n ast.Node, obj types.Object, skip ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found || x == skip {
			return false
		}
		if id, ok := x.(*ast.Ident); ok {
			if pass.TypesInfo.Uses[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// pureOverwrite reports whether the assignment writes obj without reading it
// — obj appears on the LHS and nowhere in the RHS.
func pureOverwrite(pass *Pass, st *ast.AssignStmt, obj types.Object) bool {
	writes := false
	for _, lhs := range st.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && (pass.TypesInfo.Uses[id] == obj || pass.TypesInfo.Defs[id] == obj) {
			writes = true
		}
	}
	if !writes {
		return false
	}
	for _, rhs := range st.Rhs {
		if referencesObject(pass, rhs, obj) {
			return false
		}
	}
	return true
}
