package streamvet

import (
	"fmt"
	"go/types"
	"sort"
)

// The fact system makes analyzers inter-procedural: an analyzer can attach a
// Fact to a function (or any other named object) while analyzing the package
// that declares it, and read that fact back from any later pass — including
// passes over packages that only see the declaring package through `go list
// -export` export data. Facts are keyed by the object's stable fully
// qualified name (ObjKey), not by go/types object identity, because the
// source-checked version of a package and the export-data version imported
// by its dependents are distinct *types.Package values. RunAnalyzers
// processes packages in dependency order, so by the time a dependent is
// analyzed, every fact of its imports is already in the store.

// Fact is a piece of information an analyzer exports about an object. The
// AFact marker method mirrors golang.org/x/tools/go/analysis.Fact.
// Implementations should have a useful String() for the -facts debug dump.
type Fact interface{ AFact() }

// FactRecord is one exported fact, in the externalized form the -facts dump
// and tests consume.
type FactRecord struct {
	Analyzer string // exporting analyzer
	Object   string // ObjKey of the object the fact is about
	Fact     Fact
}

// factStore holds every fact exported during one Run, namespaced per
// analyzer so two analyzers' facts about the same function never collide.
type factStore struct {
	m map[string]map[string]Fact // analyzer -> ObjKey -> fact
}

func newFactStore() *factStore {
	return &factStore{m: make(map[string]map[string]Fact)}
}

func (s *factStore) export(analyzer, key string, f Fact) {
	byKey := s.m[analyzer]
	if byKey == nil {
		byKey = make(map[string]Fact)
		s.m[analyzer] = byKey
	}
	byKey[key] = f
}

func (s *factStore) get(analyzer, key string) (Fact, bool) {
	f, ok := s.m[analyzer][key]
	return f, ok
}

// records externalizes the store, sorted for deterministic dumps.
func (s *factStore) records() []FactRecord {
	var out []FactRecord
	for analyzer, byKey := range s.m {
		for key, f := range byKey {
			out = append(out, FactRecord{Analyzer: analyzer, Object: key, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Analyzer != out[j].Analyzer {
			return out[i].Analyzer < out[j].Analyzer
		}
		return out[i].Object < out[j].Object
	})
	return out
}

// ObjKey renders an object as a stable fully qualified key that is identical
// whether the object came from source type-checking or from export data:
//
//	repro/internal/lsm.linkOrCopy          package function
//	repro/internal/lsm.(*Tree).Put         pointer-receiver method
//	repro/internal/core.(Collector).Collect  interface method
//	os.(*File).Sync                        stdlib method (seed keys)
//
// Objects that cannot be named across packages (locals, universe scope)
// return "".
func ObjKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	path := obj.Pkg().Path()
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := types.Unalias(sig.Recv().Type())
			ptr := ""
			if p, ok := t.(*types.Pointer); ok {
				t = types.Unalias(p.Elem())
				ptr = "*"
			}
			named, ok := t.(*types.Named)
			if !ok {
				return "" // method on an unnamed type (e.g. a local interface)
			}
			return fmt.Sprintf("%s.(%s%s).%s", path, ptr, named.Obj().Name(), fn.Name())
		}
		// A local function (declared inside another function) has a non-nil
		// Pkg but no cross-package name; parent scope distinguishes it.
		if fn.Scope() != nil && fn.Pkg().Scope().Lookup(fn.Name()) != fn {
			return ""
		}
	}
	return path + "." + obj.Name()
}

// ExportObjectFact records a fact about obj under this pass's analyzer. It
// is a no-op for objects without a stable cross-package name.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if p.facts == nil {
		return
	}
	if key := ObjKey(obj); key != "" {
		p.facts.export(p.Analyzer.Name, key, f)
	}
}

// ObjectFact returns this pass's analyzer's fact about obj, whether exported
// by this pass or by a pass over a dependency package earlier in the run.
func (p *Pass) ObjectFact(obj types.Object) (Fact, bool) {
	if p.facts == nil {
		return nil, false
	}
	return p.facts.get(p.Analyzer.Name, ObjKey(obj))
}

// ObjectFactByKey is ObjectFact addressed by key, for analyzers that track
// seed sets and propagation worklists as ObjKey strings.
func (p *Pass) ObjectFactByKey(key string) (Fact, bool) {
	if p.facts == nil {
		return nil, false
	}
	return p.facts.get(p.Analyzer.Name, key)
}
