package streamvet

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestChanBlockFactsCrossPackages is the tentpole contract: a fact computed
// while analyzing one package (base.Drain may block) must reach the analysis
// of a dependent package that sees base only through export data, and produce
// the diagnostic there. If fact propagation breaks — keying by object
// identity instead of ObjKey, losing dependency order in Load — this test
// fails while the single-package goldens keep passing.
func TestChanBlockFactsCrossPackages(t *testing.T) {
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "repro/internal/analysis/streamvet/facttest/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2 (base and use)", len(pkgs))
	}
	const basePath = "repro/internal/analysis/streamvet/facttest/base"
	if pkgs[0].PkgPath != basePath {
		t.Errorf("dependency order broken: first package is %s, want %s", pkgs[0].PkgPath, basePath)
	}

	res, err := Run([]*Analyzer{NewChanBlock("repro/internal/analysis/streamvet/facttest/use")}, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diagnostics) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1: %v", len(res.Diagnostics), res.Diagnostics)
	}
	d := res.Diagnostics[0]
	if !strings.Contains(d.Message, "call to "+basePath+".Drain while holding g.mu") {
		t.Errorf("diagnostic %q does not name the cross-package callee and the held lock", d.Message)
	}
	if !strings.Contains(d.Message, "channel receive") {
		t.Errorf("diagnostic %q does not carry the root blocking op from the fact", d.Message)
	}

	foundFact := false
	for _, r := range res.Facts {
		if r.Analyzer == "chanblock" && r.Object == basePath+".Drain" {
			foundFact = true
			if !strings.Contains(r.Fact.(BlocksFact).Op, "channel receive") {
				t.Errorf("fact for base.Drain has op %q, want channel receive", r.Fact.(BlocksFact).Op)
			}
		}
	}
	if !foundFact {
		t.Errorf("no chanblock fact recorded for %s.Drain; facts: %v", basePath, res.Facts)
	}
}

// TestStaleAllow pins the stale-annotation check against the staleallow
// testdata package: a used annotation is quiet, a rotted one is reported
// under the staleallow name, and a rotted one explicitly tagged staleallow is
// tolerated.
func TestStaleAllow(t *testing.T) {
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(root, filepath.Join(root, "internal/analysis/streamvet/testdata/staleallow"))
	if err != nil {
		t.Fatal(err)
	}

	diags, err := RunAnalyzers([]*Analyzer{NewWallClock("staleallow")}, []*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1 (the rotted annotation): %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != StaleAllowName {
		t.Errorf("diagnostic analyzer = %q, want %q", d.Analyzer, StaleAllowName)
	}
	if !strings.Contains(d.Message, "suppresses no wallclock diagnostic") {
		t.Errorf("diagnostic %q does not describe the rotted escape", d.Message)
	}

	// An annotation naming an analyzer outside the run set is not judged: the
	// analyzer that would use it never looked.
	diags, err = RunAnalyzers([]*Analyzer{NewLockCross("staleallow")}, []*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("run without wallclock judged its annotations: %v", diags)
	}
}
