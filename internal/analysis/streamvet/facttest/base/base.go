// Package base is one half of the cross-package fact-propagation fixture (a
// real module package, not testdata, so `go list -export` compiles it and its
// dependents see it only through export data). Drain blocks on a channel; the
// chanblock analyzer must export a BlocksFact for it that survives the
// package boundary into facttest/use.
package base

// Drain blocks until a value arrives.
func Drain(ch chan int) int {
	return <-ch
}
