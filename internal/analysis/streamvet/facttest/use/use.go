// Package use is the other half of the cross-package fact-propagation
// fixture: Take calls base.Drain — a function whose blocking nature is
// invisible here without facts — while holding a mutex. The package is not
// designated in the Suite configuration, so the whole-repo scan stays clean;
// TestChanBlockFactsCrossPackages designates it explicitly and requires the
// diagnostic.
package use

import (
	"sync"

	"repro/internal/analysis/streamvet/facttest/base"
)

type Guarded struct {
	mu sync.Mutex
	N  int
}

func (g *Guarded) Take(ch chan int) {
	g.mu.Lock()
	g.N = base.Drain(ch)
	g.mu.Unlock()
}
