package streamvet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SignaledFact marks a function that participates in shutdown signaling: its
// body receives from a channel, selects, ranges over a channel, waits on a
// sync.Cond or WaitGroup, calls WaitGroup.Done, or statically calls a
// function already carrying the fact. A goroutine whose root is signaled is
// tied to a lifecycle — it can be told to stop, or its completion can be
// joined — so Close can actually quiesce the job.
type SignaledFact struct {
	Op string // the signaling operation at the chain's root
}

func (SignaledFact) AFact() {}

func (f SignaledFact) String() string { return "shutdown-signaled: " + f.Op }

// complianceCalls are stdlib calls that by themselves tie a goroutine to a
// lifecycle: parking on a Cond or WaitGroup, or announcing completion with
// Done so a Close-side Wait can join.
var complianceCalls = map[string]string{
	"sync.(*Cond).Wait":      "sync.Cond.Wait",
	"sync.(*WaitGroup).Wait": "sync.WaitGroup.Wait",
	"sync.(*WaitGroup).Done": "sync.WaitGroup.Done",
}

// NewGoroLeak builds the goroleak analyzer. pkgs are the long-lived-component
// packages (core, elastic, obsv, ha) where an unjoined goroutine outlives its
// owner: it keeps polling a closed store, holds ports, and makes test
// shutdown flaky.
//
// Every `go` statement in a designated package must start a function that is
// tied to shutdown: its body (or a function it statically calls, across
// packages via facts, or a local `name := func(){...}` it invokes) receives
// on a ctx.Done/quit channel, selects, joins or signals a WaitGroup, or waits
// on a Cond. Goroutines launched through dynamic function values are not
// judged — the analyzer cannot see their bodies.
func NewGoroLeak(pkgs ...string) *Analyzer {
	designated := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		designated[p] = true
	}
	a := &Analyzer{
		Name: "goroleak",
		Doc:  "reports goroutines in lifecycle-owning packages that are not tied to shutdown (no done/quit channel, no WaitGroup join) and so leak past Close",
	}
	a.Run = func(pass *Pass) error {
		exportSignaledFacts(pass)
		if !designated[pass.Pkg.Path()] {
			return nil
		}
		gl := &goroLeak{pass: pass}
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					if fn.Body != nil {
						gl.checkOwner(fn.Body)
					}
					return false
				}
				return true
			})
		}
		return nil
	}
	return a
}

// goroLeak checks the go statements of one package.
type goroLeak struct {
	pass *Pass
}

// checkOwner walks one top-level function body, collecting local
// `name := func(){...}` bindings as it goes so `go name()` and bodies calling
// name resolve, then judges every go statement found anywhere inside
// (including inside nested literals, which share the local environment).
func (gl *goroLeak) checkOwner(body *ast.BlockStmt) {
	env := map[types.Object]*ast.FuncLit{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			lit, ok := rhs.(*ast.FuncLit)
			if !ok {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := gl.pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = gl.pass.TypesInfo.Uses[id]
			}
			if obj != nil {
				env[obj] = lit
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			gl.checkGo(g, env)
		}
		return true
	})
}

// checkGo judges one go statement's root function.
func (gl *goroLeak) checkGo(g *ast.GoStmt, env map[types.Object]*ast.FuncLit) {
	visited := map[ast.Node]bool{}
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		if gl.compliant(fun.Body, env, visited) {
			return
		}
	case *ast.Ident:
		if obj := gl.pass.TypesInfo.Uses[fun]; obj != nil {
			if lit, ok := env[obj]; ok {
				if gl.compliant(lit.Body, env, visited) {
					return
				}
				break
			}
		}
		if gl.calleeCompliant(g.Call) {
			return
		}
	default:
		if gl.calleeCompliant(g.Call) {
			return
		}
	}
	gl.pass.Reportf(g.Pos(),
		"goroutine is not tied to shutdown: its body neither selects on a done/quit channel nor joins a WaitGroup, so it outlives Close; thread a ctx/done channel or register with a WaitGroup")
}

// calleeCompliant resolves the go statement's static callee and checks its
// fact; dynamic function values resolve to nil and are not judged.
func (gl *goroLeak) calleeCompliant(call *ast.CallExpr) bool {
	callee := staticCallee(gl.pass.TypesInfo, call)
	if callee == nil {
		return true // unjudgeable: a func value whose body is elsewhere
	}
	if complianceCalls[ObjKey(callee)] != "" {
		return true
	}
	_, ok := gl.pass.ObjectFact(callee)
	return ok
}

// compliant reports whether a body contains a signaling operation: a channel
// receive, any select, a range over a channel, a compliance call, a call to a
// fact-carrying function, or a call into a local function-literal binding
// whose body is compliant. Nested go statements are excluded (a spawned
// child being signaled does not tie this goroutine down); nested literals
// that are deferred or invoked inline run on this goroutine and are
// included.
func (gl *goroLeak) compliant(body *ast.BlockStmt, env map[types.Object]*ast.FuncLit, visited map[ast.Node]bool) bool {
	if visited[body] {
		return false
	}
	visited[body] = true
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch x := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				ok = true
			}
		case *ast.SelectStmt:
			ok = true
		case *ast.RangeStmt:
			if tv, found := gl.pass.TypesInfo.Types[x.X]; found && tv.Type != nil {
				if _, isChan := types.Unalias(tv.Type.Underlying()).(*types.Chan); isChan {
					ok = true
				}
			}
		case *ast.CallExpr:
			if id, isIdent := ast.Unparen(x.Fun).(*ast.Ident); isIdent {
				if obj := gl.pass.TypesInfo.Uses[id]; obj != nil {
					if lit, bound := env[obj]; bound && gl.compliant(lit.Body, env, visited) {
						ok = true
						return false
					}
				}
			}
			callee := staticCallee(gl.pass.TypesInfo, x)
			if callee == nil {
				return true
			}
			if complianceCalls[ObjKey(callee)] != "" {
				ok = true
				return false
			}
			if _, carries := gl.pass.ObjectFact(callee); carries {
				ok = true
				return false
			}
		}
		return !ok
	})
	return ok
}

// exportSignaledFacts marks, to a fixpoint, every declared function whose
// body contains a signaling operation or statically calls a marked function.
func exportSignaledFacts(pass *Pass) {
	type fnInfo struct {
		fn   *types.Func
		body *ast.BlockStmt
	}
	var fns []fnInfo
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fns = append(fns, fnInfo{fn: fn, body: fd.Body})
		}
	}
	gl := &goroLeak{pass: pass}
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			if _, done := pass.ObjectFact(fi.fn); done {
				continue
			}
			if op, sig := gl.signalOp(fi.body); sig {
				pass.ExportObjectFact(fi.fn, SignaledFact{Op: op})
				changed = true
			}
		}
	}
}

// signalOp is compliant() for fact export: it additionally names the
// operation found, and uses an empty local environment (declared functions
// resolve through facts, not literal bindings).
func (gl *goroLeak) signalOp(body *ast.BlockStmt) (string, bool) {
	op := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if op != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				op = "channel receive"
			}
		case *ast.SelectStmt:
			op = "select"
		case *ast.RangeStmt:
			if tv, found := gl.pass.TypesInfo.Types[x.X]; found && tv.Type != nil {
				if _, isChan := types.Unalias(tv.Type.Underlying()).(*types.Chan); isChan {
					op = "range over channel"
				}
			}
		case *ast.CallExpr:
			callee := staticCallee(gl.pass.TypesInfo, x)
			if callee == nil {
				return true
			}
			key := ObjKey(callee)
			if w, known := complianceCalls[key]; known {
				op = w
				return false
			}
			if fact, carries := gl.pass.ObjectFact(callee); carries {
				op = fact.(SignaledFact).Op + " (via " + key + ")"
				return false
			}
		}
		return op == ""
	})
	return op, op != ""
}
