package streamvet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Imports    []string
}

// goList runs `go list -export -deps -json` for the given patterns in dir and
// decodes the stream of package objects. -export populates each package's
// build-cache export-data path, which is how the type checker resolves
// imports without golang.org/x/tools (unavailable offline).
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := []string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Imports"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// newExportImporter returns a types.Importer that resolves imports from the
// export-data files `go list -export` reported. One importer is shared across
// all packages of a Load so identical imports resolve to identical
// *types.Package values.
func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// typeCheck parses and type-checks one listed package.
func typeCheck(fset *token.FileSet, imp types.Importer, p listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
	}
	return &Package{PkgPath: p.ImportPath, Fset: fset, Files: files, Types: pkg, Info: info}, nil
}

// Load loads and type-checks the packages matching the go package patterns
// (e.g. "./..."), resolving them relative to dir ("" = current directory).
// Only the matched packages are returned; their dependencies are consumed as
// export data. Packages are returned in dependency order (every package
// after all of its imports) so analyzer facts exported while checking a
// package are visible to passes over its dependents; ties break on import
// path, keeping the order deterministic.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	targets = topoSort(targets)
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		pkg, err := typeCheck(fset, imp, t)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// topoSort orders targets so that every package appears after all of its
// imports that are themselves targets (Kahn's algorithm). The ready set is
// kept sorted by import path, so the order is deterministic. Import cycles
// cannot occur in valid Go; if the input is somehow cyclic, the remainder is
// appended in path order rather than dropped.
func topoSort(targets []listedPackage) []listedPackage {
	byPath := make(map[string]*listedPackage, len(targets))
	indeg := make(map[string]int, len(targets))
	dependents := make(map[string][]string)
	for i := range targets {
		byPath[targets[i].ImportPath] = &targets[i]
		indeg[targets[i].ImportPath] = 0
	}
	for _, t := range targets {
		for _, imp := range t.Imports {
			if _, ok := byPath[imp]; ok {
				indeg[t.ImportPath]++
				dependents[imp] = append(dependents[imp], t.ImportPath)
			}
		}
	}
	var ready []string
	for path, d := range indeg {
		if d == 0 {
			ready = append(ready, path)
		}
	}
	sort.Strings(ready)
	out := make([]listedPackage, 0, len(targets))
	for len(ready) > 0 {
		path := ready[0]
		ready = ready[1:]
		out = append(out, *byPath[path])
		delete(indeg, path)
		var unlocked []string
		for _, dep := range dependents[path] {
			if indeg[dep]--; indeg[dep] == 0 {
				unlocked = append(unlocked, dep)
			}
		}
		if len(unlocked) > 0 {
			ready = append(ready, unlocked...)
			sort.Strings(ready)
		}
	}
	if len(indeg) > 0 { // cyclic remainder: keep deterministic, don't drop
		var rest []string
		for path := range indeg {
			rest = append(rest, path)
		}
		sort.Strings(rest)
		for _, path := range rest {
			out = append(out, *byPath[path])
		}
	}
	return out
}

// LoadDir loads a single directory of Go files as one package — the shape of
// an analyzer testdata package, which lives under testdata/ and is therefore
// invisible to the go build graph. Imports (standard library only) are
// resolved through `go list -export`, run from moduleRoot so the build cache
// is shared with the main module. The package path is the package name
// declared in the sources.
func LoadDir(moduleRoot, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imports := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				return nil, err
			}
			imports[path] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	exports := make(map[string]string)
	if len(imports) > 0 {
		patterns := make([]string, 0, len(imports))
		for p := range imports {
			patterns = append(patterns, p)
		}
		sort.Strings(patterns)
		listed, err := goList(moduleRoot, patterns)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := newExportImporter(fset, exports)
	name := files[0].Name.Name
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(name, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", dir, err)
	}
	return &Package{PkgPath: name, Fset: fset, Files: files, Types: pkg, Info: info}, nil
}

// ModuleRoot locates the enclosing module's root directory (the directory
// holding go.mod), so tests and the CLI can run `go list` from anywhere in
// the tree.
func ModuleRoot() (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a Go module")
	}
	return filepath.Dir(gomod), nil
}
