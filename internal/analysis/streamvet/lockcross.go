package streamvet

import (
	"go/token"
)

// NewLockCross builds the lockcross analyzer. pkgs are the import paths of
// the packages whose locking discipline it enforces (the engine core, where
// backpressure makes the deadlock reachable).
//
// The analyzer reports a sync.Mutex or sync.RWMutex held across a channel
// send, channel receive, select, or sync.Cond.Wait within one function.
// Under backpressure a channel operation can block indefinitely; if the
// blocked goroutine holds a lock that the goroutine draining the channel
// needs, the job wedges. The check is intra-procedural and flow-approximate
// (see lockWalker); its inter-procedural counterpart — a call to a function
// that may block, made while holding a lock — is chanblock.
func NewLockCross(pkgs ...string) *Analyzer {
	designated := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		designated[p] = true
	}
	a := &Analyzer{
		Name: "lockcross",
		Doc:  "reports mutexes held across channel operations in engine packages — the deadlock shape backpressure makes reachable",
	}
	a.Run = func(pass *Pass) error {
		if !designated[pass.Pkg.Path()] {
			return nil
		}
		lc := &lockWalker{pass: pass}
		lc.onOp = func(pos token.Pos, op string, held lockState) {
			for lock, at := range held {
				pass.Reportf(pos,
					"%s while holding %s (locked at %s); a mutex held across a blocking channel operation can deadlock under backpressure",
					op, lock, pass.Fset.Position(at))
			}
		}
		for _, file := range pass.Files {
			lc.walkFile(file)
		}
		return nil
	}
	return a
}
