package streamvet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockWalker is the shared held-mutex dataflow used by lockcross (direct
// channel operations under a lock) and chanblock (calls to may-block
// functions under a lock). It walks one function body in source order,
// tracking Lock/Unlock pairs through straight-line code and branches,
// treating a deferred Unlock as holding until function exit, and analyzing
// closure bodies as separate functions. Clients observe through two hooks:
//
//   - onOp fires for each direct blocking operation (channel send/receive,
//     select, range over channel, sync.Cond.Wait) with the current lock set;
//   - onCall fires for each function/method call reached while at least one
//     lock is held (never inside nested function literals or go statements,
//     whose bodies run under their own lock state).
type lockWalker struct {
	pass   *Pass
	onOp   func(pos token.Pos, op string, held lockState)
	onCall func(call *ast.CallExpr, held lockState)
}

// lockState maps the printed receiver expression of a Lock call to the
// position where the lock was taken.
type lockState map[string]token.Pos

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// walkFile analyzes every function — declaration or literal, however nested
// — as its own unit with its own lock state; the statement walker never
// descends into nested literals.
func (lc *lockWalker) walkFile(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				lc.checkFunc(fn.Body)
			}
		case *ast.FuncLit:
			lc.checkFunc(fn.Body)
		}
		return true
	})
}

// checkFunc walks one function body in source order, tracking held locks.
// Nested function literals are analyzed independently (their bodies run
// later, under their own lock state).
func (lc *lockWalker) checkFunc(body *ast.BlockStmt) {
	held := make(lockState)
	lc.walkStmts(body.List, held)
}

// walkStmts processes a statement list, mutating held in place, and returns
// whether the list definitely terminates (ends in return, or an
// unconditional branch out).
func (lc *lockWalker) walkStmts(list []ast.Stmt, held lockState) bool {
	for _, s := range list {
		if lc.walkStmt(s, held) {
			return true
		}
	}
	return false
}

// walkStmt processes one statement; returns true if the statement definitely
// terminates the enclosing list.
func (lc *lockWalker) walkStmt(s ast.Stmt, held lockState) bool {
	switch st := s.(type) {
	case *ast.ExprStmt:
		lc.checkExpr(st.X, held)
		lc.applyLockCall(st.X, held, false)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held for the rest of the
		// function; any other deferred call runs at exit and is ignored.
		lc.applyLockCall(st.Call, held, true)
	case *ast.SendStmt:
		lc.op(st.Arrow, "channel send", held)
		lc.checkExpr(st.Value, held)
	case *ast.SelectStmt:
		lc.op(st.Select, "select", held)
		// Comm clause bodies run with the same lock state.
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				branch := held.clone()
				lc.walkStmts(cc.Body, branch)
			}
		}
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			lc.checkExpr(r, held)
		}
		for _, l := range st.Lhs {
			lc.checkExpr(l, held)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						lc.checkExpr(v, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			lc.checkExpr(r, held)
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto end this list from the walker's perspective.
		return true
	case *ast.IfStmt:
		if st.Init != nil {
			lc.walkStmt(st.Init, held)
		}
		lc.checkExpr(st.Cond, held)
		thenState := held.clone()
		thenTerm := lc.walkStmts(st.Body.List, thenState)
		var elseState lockState
		elseTerm := false
		if st.Else != nil {
			elseState = held.clone()
			elseTerm = lc.walkStmt(st.Else, elseState)
		}
		// Merge: the state after the if is the state of whichever branches
		// fall through. A branch that terminates (unlock-and-return) does not
		// constrain the code after the if.
		switch {
		case thenTerm && st.Else == nil:
			// held unchanged: only the fall-through (no else) path continues.
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			replace(held, elseState)
		case st.Else == nil:
			merge(held, thenState)
		case elseTerm:
			replace(held, thenState)
		default:
			replace(held, thenState)
			merge(held, elseState)
		}
	case *ast.BlockStmt:
		return lc.walkStmts(st.List, held)
	case *ast.ForStmt:
		if st.Init != nil {
			lc.walkStmt(st.Init, held)
		}
		if st.Cond != nil {
			lc.checkExpr(st.Cond, held)
		}
		bodyState := held.clone()
		lc.walkStmts(st.Body.List, bodyState)
		if st.Post != nil {
			lc.walkStmt(st.Post, bodyState)
		}
		merge(held, bodyState)
	case *ast.RangeStmt:
		// Ranging over a channel receives from it.
		if tv, ok := lc.pass.TypesInfo.Types[st.X]; ok && tv.Type != nil {
			if _, isChan := types.Unalias(tv.Type.Underlying()).(*types.Chan); isChan {
				lc.op(st.For, "range over channel", held)
			}
		}
		lc.checkExpr(st.X, held)
		bodyState := held.clone()
		lc.walkStmts(st.Body.List, bodyState)
		merge(held, bodyState)
	case *ast.SwitchStmt:
		if st.Init != nil {
			lc.walkStmt(st.Init, held)
		}
		if st.Tag != nil {
			lc.checkExpr(st.Tag, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				branch := held.clone()
				lc.walkStmts(cc.Body, branch)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				branch := held.clone()
				lc.walkStmts(cc.Body, branch)
			}
		}
	case *ast.GoStmt:
		// The goroutine body runs under its own lock state; the FuncLit case
		// in walkFile analyzes it separately.
	case *ast.LabeledStmt:
		return lc.walkStmt(st.Stmt, held)
	}
	return false
}

// merge unions src into dst (a lock held on either path is considered held).
func merge(dst, src lockState) {
	for k, v := range src {
		if _, ok := dst[k]; !ok {
			dst[k] = v
		}
	}
}

// replace overwrites dst with src.
func replace(dst, src lockState) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// op dispatches one direct blocking operation to the client.
func (lc *lockWalker) op(pos token.Pos, op string, held lockState) {
	if lc.onOp != nil {
		lc.onOp(pos, op, held)
	}
}

// checkExpr scans an expression for channel receives (<-ch), sync.Cond.Wait
// calls, and — when a lock is held — function calls. Function literals are
// skipped: their bodies run later.
func (lc *lockWalker) checkExpr(e ast.Expr, held lockState) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				lc.op(x.OpPos, "channel receive", held)
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if lc.isSyncType(sel.X, "sync.Cond") {
					lc.op(x.Pos(), "sync.Cond.Wait", held)
				}
			}
			if lc.onCall != nil {
				lc.onCall(x, held)
			}
		}
		return true
	})
}

// applyLockCall updates held if expr is a Lock/RLock/Unlock/RUnlock call on a
// sync.Mutex or sync.RWMutex. deferred Unlocks leave the lock held (it
// releases only at function exit).
func (lc *lockWalker) applyLockCall(e ast.Expr, held lockState, deferred bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	if name != "Lock" && name != "RLock" && name != "Unlock" && name != "RUnlock" {
		return
	}
	if !lc.isSyncType(sel.X, "sync.Mutex") && !lc.isSyncType(sel.X, "sync.RWMutex") {
		return
	}
	key := exprKey(sel.X)
	switch name {
	case "Lock", "RLock":
		held[key] = call.Pos()
	case "Unlock", "RUnlock":
		if !deferred {
			delete(held, key)
		}
	}
}

// isSyncType reports whether the expression's (possibly pointer) type is the
// given sync type.
func (lc *lockWalker) isSyncType(e ast.Expr, want string) bool {
	tv, ok := lc.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := types.Unalias(tv.Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	return qualifiedTypeName(t) == want
}

// exprKey renders the lock receiver expression as a comparable key
// (approximate: distinct expressions printing alike are treated as the same
// lock, which errs on the side of reporting).
func exprKey(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprKey(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprKey(x.X)
	case *ast.StarExpr:
		return "*" + exprKey(x.X)
	case *ast.IndexExpr:
		return exprKey(x.X) + "[...]"
	case *ast.CallExpr:
		return exprKey(x.Fun) + "(...)"
	default:
		return "lock"
	}
}
