package streamvet

import (
	"go/ast"
	"go/types"
	"sort"
)

// SerializesFact marks a function whose call is an order-sensitive sink:
// calling it with data derived from map iteration bakes Go's randomized map
// order into bytes that must be deterministic — a checkpoint payload, an
// emitted record stream, a snapshot manifest. The fact propagates through
// wrappers across packages: a state helper that gob-encodes its argument
// makes its own callers order-sensitive too.
type SerializesFact struct {
	Via string // ObjKey of the seed or carrier the sensitivity flows from
}

func (SerializesFact) AFact() {}

func (f SerializesFact) String() string { return "order-sensitive sink (via " + f.Via + ")" }

// mapOrderSeeds are the stdlib order-sensitive encoders; the engine sinks
// (Emit, Collect, SnapshotStore.Save) are configured by the Suite.
var mapOrderSeeds = []string{
	"encoding/gob.(*Encoder).Encode",
	"encoding/json.(*Encoder).Encode",
	"encoding/binary.Write",
}

// NewMapOrder builds the maporder analyzer. designated are the packages whose
// serialized bytes feed determinism contracts (checkpoints compared across
// recoveries, output-equality tests); sinks are extra ObjKeys treated as
// order-sensitive besides the stdlib encoders.
//
// Two shapes are reported, per function body:
//
//   - a call to a sink inside `for k := range m` over a map: records leave in
//     map order, which differs run to run;
//   - values collected from a map range (appends/assignments tainted by the
//     loop variables) reaching a sink call later in the same function without
//     passing through a sort.* or slices.* call first. The collect-sort-use
//     idiom — append keys, sort.Strings, iterate sorted — is the fix and is
//     recognized as clean.
func NewMapOrder(designated []string, sinks ...string) *Analyzer {
	pkgs := make(map[string]bool, len(designated))
	for _, p := range designated {
		pkgs[p] = true
	}
	sinkSet := make(map[string]bool, len(mapOrderSeeds)+len(sinks))
	for _, s := range mapOrderSeeds {
		sinkSet[s] = true
	}
	for _, s := range sinks {
		sinkSet[s] = true
	}
	a := &Analyzer{
		Name: "maporder",
		Doc:  "reports map iteration whose values reach snapshot serialization or record emission without an intervening sort — nondeterministic bytes on the determinism path",
	}
	a.Run = func(pass *Pass) error {
		exportSerializesFacts(pass, sinkSet)
		if !pkgs[pass.Pkg.Path()] {
			return nil
		}
		mo := &mapOrder{pass: pass, sinks: sinkSet}
		for _, body := range functionBodies(pass.Files) {
			mo.checkBody(body)
		}
		return nil
	}
	return a
}

// exportSerializesFacts marks, to a fixpoint, every declared function whose
// body calls a sink or an already marked function — wrappers inherit
// order-sensitivity.
func exportSerializesFacts(pass *Pass, sinks map[string]bool) {
	type fnInfo struct {
		fn   *types.Func
		body *ast.BlockStmt
	}
	var fns []fnInfo
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fns = append(fns, fnInfo{fn: fn, body: fd.Body})
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			if _, done := pass.ObjectFact(fi.fn); done {
				continue
			}
			via := ""
			ast.Inspect(fi.body, func(n ast.Node) bool {
				if via != "" {
					return false
				}
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if key, ok := sinkCallee(pass, sinks, call); ok {
						via = key
						return false
					}
				}
				return true
			})
			if via != "" {
				pass.ExportObjectFact(fi.fn, SerializesFact{Via: via})
				changed = true
			}
		}
	}
}

// sinkCallee resolves a call's static callee and reports whether it is an
// order-sensitive sink (configured or fact-carrying), returning its ObjKey.
func sinkCallee(pass *Pass, sinks map[string]bool, call *ast.CallExpr) (string, bool) {
	callee := staticCallee(pass.TypesInfo, call)
	if callee == nil {
		return "", false
	}
	key := ObjKey(callee)
	if sinks[key] {
		return key, true
	}
	if _, ok := pass.ObjectFact(callee); ok {
		return key, true
	}
	return "", false
}

type mapOrder struct {
	pass  *Pass
	sinks map[string]bool
}

// checkBody finds each map range in one function body (nested literals are
// separate bodies) and checks both violation shapes.
func (mo *mapOrder) checkBody(body *ast.BlockStmt) {
	var ranges []*ast.RangeStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if r, ok := n.(*ast.RangeStmt); ok && mo.isMapRange(r) {
			ranges = append(ranges, r)
		}
		return true
	})
	for _, r := range ranges {
		mo.checkDirectSinks(r)
		mo.checkTaintFlow(r, body)
	}
}

func (mo *mapOrder) isMapRange(r *ast.RangeStmt) bool {
	tv, ok := mo.pass.TypesInfo.Types[r.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := types.Unalias(tv.Type.Underlying()).(*types.Map)
	return isMap
}

// checkDirectSinks reports sink calls made inside the map-range body itself:
// per-iteration emission in map order.
func (mo *mapOrder) checkDirectSinks(r *ast.RangeStmt) {
	ast.Inspect(r.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, ok := sinkCallee(mo.pass, mo.sinks, call); ok {
			mo.pass.Reportf(call.Pos(),
				"%s called inside iteration over a map (range at %s); map order is nondeterministic — collect into a slice, sort, then emit",
				key, mo.pass.Fset.Position(r.Pos()))
		}
		return true
	})
}

// checkTaintFlow tracks values collected from the map range (variables
// assigned from the loop key/value, transitively within the loop body) to
// sink calls later in the enclosing function. A sort.* or slices.* call whose
// arguments mention a tainted variable cleanses it.
func (mo *mapOrder) checkTaintFlow(r *ast.RangeStmt, body *ast.BlockStmt) {
	tainted := mo.taintedByLoop(r)
	if len(tainted) == 0 {
		return
	}
	// Walk the function after the loop in source order: cleanses first-come,
	// then sinks on whatever taint remains.
	type event struct {
		pos     int
		cleanse bool
		call    *ast.CallExpr
		key     string
		objs    []types.Object
	}
	var events []event
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= r.End() {
			return true
		}
		var touched []types.Object
		for _, arg := range call.Args {
			for obj := range tainted {
				if referencesObject(mo.pass, arg, obj) {
					touched = append(touched, obj)
				}
			}
		}
		if len(touched) == 0 {
			return true
		}
		if mo.isSortCall(call) {
			events = append(events, event{pos: int(call.Pos()), cleanse: true, objs: touched})
			return true
		}
		if key, ok := sinkCallee(mo.pass, mo.sinks, call); ok {
			events = append(events, event{pos: int(call.Pos()), call: call, key: key, objs: touched})
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	for _, ev := range events {
		if ev.cleanse {
			for _, obj := range ev.objs {
				delete(tainted, obj)
			}
			continue
		}
		for _, obj := range ev.objs {
			if !tainted[obj] {
				continue
			}
			mo.pass.Reportf(ev.call.Pos(),
				"%s receives %s, collected from map iteration at %s, without an intervening sort; the serialized bytes differ run to run",
				ev.key, obj.Name(), mo.pass.Fset.Position(r.Pos()))
			break // one report per sink call
		}
	}
}

// taintedByLoop returns the variables outside the loop that the loop body
// fills from the iteration variables (append targets and direct assignment
// targets), found by a small fixpoint so chained local copies inside the body
// propagate.
func (mo *mapOrder) taintedByLoop(r *ast.RangeStmt) map[types.Object]bool {
	seeds := make(map[types.Object]bool)
	for _, e := range []ast.Expr{r.Key, r.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := mo.pass.TypesInfo.Defs[id]; obj != nil {
				seeds[obj] = true
			}
		}
	}
	if len(seeds) == 0 {
		// `for range m` yields no values to leak.
		return nil
	}
	all := make(map[types.Object]bool, len(seeds))
	for o := range seeds {
		all[o] = true
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(r.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			rhsTainted := false
			for _, rhs := range as.Rhs {
				for obj := range all {
					if referencesObject(mo.pass, rhs, obj) {
						rhsTainted = true
					}
				}
			}
			if !rhsTainted {
				return true
			}
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					obj := mo.pass.TypesInfo.Defs[id]
					if obj == nil {
						obj = mo.pass.TypesInfo.Uses[id]
					}
					if obj != nil && !all[obj] {
						all[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}
	// Only variables that outlive the loop matter downstream.
	out := make(map[types.Object]bool)
	for obj := range all {
		if seeds[obj] {
			continue
		}
		if obj.Pos() < r.Pos() || obj.Pos() > r.End() {
			out[obj] = true
		}
	}
	return out
}

// isSortCall reports whether the call is into package sort or slices — the
// recognized cleanse for map-derived collections.
func (mo *mapOrder) isSortCall(call *ast.CallExpr) bool {
	callee := staticCallee(mo.pass.TypesInfo, call)
	if callee == nil || callee.Pkg() == nil {
		return false
	}
	p := callee.Pkg().Path()
	return p == "sort" || p == "slices"
}
