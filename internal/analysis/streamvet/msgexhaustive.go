package streamvet

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// NewMsgExhaustive builds the msgexhaustive analyzer. kindTypes are the
// qualified names ("pkgpath.Name") of enum-like kind types — msgKind,
// PartitionKind, chaos.CrashPoint — whose switches must be exhaustive.
//
// A switch over a kind type must either list a case for every declared
// constant of the type or carry an explicit default clause. The engine
// multiplexes records, watermarks, barriers and end-of-stream markers over
// one channel; a switch that silently ignores a kind drops control messages,
// which wedges watermark progress or barrier alignment instead of failing
// loudly.
func NewMsgExhaustive(kindTypes ...string) *Analyzer {
	kinds := make(map[string]bool, len(kindTypes))
	for _, t := range kindTypes {
		kinds[t] = true
	}
	a := &Analyzer{
		Name: "msgexhaustive",
		Doc:  "reports switches over engine kind types that neither cover every kind nor declare a default",
	}
	a.Run = func(pass *Pass) error {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				tv, ok := pass.TypesInfo.Types[sw.Tag]
				if !ok || tv.Type == nil {
					return true
				}
				tagType := types.Unalias(tv.Type)
				name := qualifiedTypeName(tagType)
				if !kinds[name] {
					return true
				}
				checkKindSwitch(pass, sw, tagType, name)
				return true
			})
		}
		return nil
	}
	return a
}

// checkKindSwitch verifies one switch over a designated kind type.
func checkKindSwitch(pass *Pass, sw *ast.SwitchStmt, tagType types.Type, typeName string) {
	named, ok := tagType.(*types.Named)
	if !ok {
		return
	}
	declared := declaredConstants(named)
	if len(declared) == 0 {
		return
	}
	covered := make(map[string]bool)
	hasDefault := false
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, e := range cc.List {
			tv, ok := pass.TypesInfo.Types[e]
			if !ok || tv.Value == nil {
				continue
			}
			covered[constKey(tv.Value)] = true
		}
	}
	if hasDefault {
		return
	}
	var missing []string
	for key, names := range declared {
		if !covered[key] {
			missing = append(missing, names)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Switch,
		"switch over %s is missing cases for %s and has no default; a silently dropped message kind wedges the engine — add the cases or a default that fails loudly",
		typeName, strings.Join(missing, ", "))
}

// declaredConstants collects the package-level constants of the named type,
// grouped by value (aliased constants count as one kind) and rendered as a
// name list per value.
func declaredConstants(named *types.Named) map[string]string {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil
	}
	byValue := make(map[string][]string)
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if !types.Identical(types.Unalias(c.Type()), named) {
			continue
		}
		key := constKey(c.Val())
		byValue[key] = append(byValue[key], c.Name())
	}
	out := make(map[string]string, len(byValue))
	for key, names := range byValue {
		sort.Strings(names)
		out[key] = strings.Join(names, "/")
	}
	return out
}

// constKey renders a constant value as a comparable map key.
func constKey(v constant.Value) string {
	return v.ExactString()
}
