package streamvet

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestSeededViolations is the negative CI check: each testdata/seeded
// package plants exactly one violation, and the matching analyzer must
// report it. If an analyzer regresses into reporting nothing, this test
// fails instead of the whole-repo scan silently passing everything.
func TestSeededViolations(t *testing.T) {
	cases := []struct {
		dir      string
		analyzer *Analyzer
		contains string
	}{
		{
			dir:      "poolretain",
			analyzer: NewPoolRetain([]string{"seedpoolretain.Event"}),
			contains: "stored in struct field",
		},
		{
			dir:      "msgexhaustive",
			analyzer: NewMsgExhaustive("seedmsgexhaustive.kind"),
			contains: "missing cases for kindBarrier",
		},
		{
			dir:      "wallclock",
			analyzer: NewWallClock("seedwallclock"),
			contains: "time.Now in event-time package seedwallclock",
		},
		{
			dir:      "lockcross",
			analyzer: NewLockCross("seedlockcross"),
			contains: "channel send while holding b.mu",
		},
		{
			dir:      "maporder",
			analyzer: NewMapOrder([]string{"seedmaporder"}),
			contains: "collected from map iteration",
		},
		{
			dir:      "errdrop",
			analyzer: NewErrDrop([]string{"seederrdrop"}),
			contains: "discarded error from os.(*File).Sync",
		},
		{
			dir:      "chanblock",
			analyzer: NewChanBlock("seedchanblock"),
			contains: "call to seedchanblock.(*box).recv while holding b.mu",
		},
		{
			dir:      "goroleak",
			analyzer: NewGoroLeak("seedgoroleak"),
			contains: "goroutine is not tied to shutdown",
		},
	}
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			dir := filepath.Join(root, "internal/analysis/streamvet/testdata/seeded", tc.dir)
			pkg, err := LoadDir(root, dir)
			if err != nil {
				t.Fatal(err)
			}
			diags, err := RunAnalyzers([]*Analyzer{tc.analyzer}, []*Package{pkg})
			if err != nil {
				t.Fatal(err)
			}
			if len(diags) != 1 {
				t.Fatalf("%s on seeded package: got %d diagnostics, want exactly 1: %v",
					tc.analyzer.Name, len(diags), diags)
			}
			if !strings.Contains(diags[0].Message, tc.contains) {
				t.Errorf("%s diagnostic %q does not contain %q", tc.analyzer.Name, diags[0].Message, tc.contains)
			}
		})
	}
}
