package streamvet

import (
	"go/ast"
	"go/types"
)

// NewPoolRetain builds the poolretain analyzer. elemTypes are the qualified
// names ("pkgpath.Name") of event types whose pooled batch slices must not be
// retained: any value of type *[]E for a configured E is treated as a pooled
// batch (that is exactly the type the exchange pool traffics in), as is the
// result of a (*sync.Pool).Get type-asserted to a pointer-to-slice or slice
// type. structTypes additionally name pooled columnar-buffer structs: any
// value of type *S for a configured struct S is treated as pooled, and
// selecting a field from it (cols.Vals, cols.Events) yields an alias of its
// pooled buffers. Stores into such a struct's own fields are the intended
// build/reset path and stay silent, exactly like stores into the batch
// itself.
//
// A pooled batch — or any alias that shares its backing array: the
// dereferenced slice, a sub-slice, an element pointer, or an append to the
// batch that may reuse its backing — must not outlive the call that received
// it. The analyzer reports storing such a value in a struct field, a
// package-level variable, or a container that outlives the call; sending it
// on a channel; returning it; or capturing it in a goroutine or an escaping
// closure. Passing the batch to an ordinary call is permitted: that is the
// ownership handoff the exchange itself performs.
func NewPoolRetain(elemTypes []string, structTypes ...string) *Analyzer {
	elems := make(map[string]bool, len(elemTypes))
	for _, t := range elemTypes {
		elems[t] = true
	}
	structs := make(map[string]bool, len(structTypes))
	for _, t := range structTypes {
		structs[t] = true
	}
	a := &Analyzer{
		Name: "poolretain",
		Doc:  "reports pooled exchange batches (or aliases of them) retained past the receiving call",
	}
	a.Run = func(pass *Pass) error {
		pr := &poolRetain{pass: pass, elems: elems, structs: structs}
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					if fn.Body != nil {
						pr.checkFunc(fn.Body)
					}
					return false // checkFunc covers nested FuncLits
				}
				return true
			})
		}
		return nil
	}
	return a
}

type poolRetain struct {
	pass    *Pass
	elems   map[string]bool
	structs map[string]bool
	// tainted holds local variables bound to a pooled batch or an alias of
	// one, per analyzed function.
	tainted map[types.Object]bool
}

// isPooledPtrType reports whether t is *[]E for a configured element type E —
// the shape of a pooled batch handle — or *S for a configured pooled
// columnar-buffer struct S.
func (pr *poolRetain) isPooledPtrType(t types.Type) bool {
	ptr, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	elem := types.Unalias(ptr.Elem())
	if slice, ok := elem.(*types.Slice); ok {
		return pr.elems[qualifiedTypeName(types.Unalias(slice.Elem()))]
	}
	return pr.structs[qualifiedTypeName(elem)]
}

// isPoolGetAssert reports whether e is `pool.Get().(*[]T)` or
// `pool.Get().([]T)` for a sync.Pool — a pooled value regardless of the
// element type.
func (pr *poolRetain) isPoolGetAssert(e *ast.TypeAssertExpr) bool {
	call, ok := e.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" {
		return false
	}
	recv := pr.pass.TypesInfo.Types[sel.X].Type
	if recv == nil {
		return false
	}
	if ptr, ok := types.Unalias(recv).(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	if qualifiedTypeName(types.Unalias(recv)) != "sync.Pool" {
		return false
	}
	asserted := pr.pass.TypesInfo.Types[e.Type].Type
	if asserted == nil {
		return false
	}
	asserted = types.Unalias(asserted)
	if ptr, ok := asserted.(*types.Pointer); ok {
		asserted = types.Unalias(ptr.Elem())
	}
	_, isSlice := asserted.(*types.Slice)
	return isSlice
}

// taintedExpr reports whether e evaluates to a pooled batch or an alias
// sharing its backing array.
func (pr *poolRetain) taintedExpr(e ast.Expr) bool {
	if e == nil {
		return false
	}
	if tv, ok := pr.pass.TypesInfo.Types[e]; ok && tv.Type != nil {
		// nil and constants carry the contextual type but never alias a pool.
		if tv.IsNil() || tv.Value != nil {
			return false
		}
		if pr.isPooledPtrType(tv.Type) {
			return true
		}
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := pr.pass.TypesInfo.Uses[x]
		return obj != nil && pr.tainted[obj]
	case *ast.ParenExpr:
		return pr.taintedExpr(x.X)
	case *ast.StarExpr:
		// Dereferencing a pooled pointer yields the pooled slice itself.
		return pr.taintedExpr(x.X)
	case *ast.SelectorExpr:
		// A field of a pooled columnar struct (cols.Vals, cols.Events) shares
		// its pooled buffers; selecting through a tainted base carries the
		// taint.
		return pr.taintedExpr(x.X)
	case *ast.SliceExpr:
		// A sub-slice shares the batch's backing array.
		return pr.taintedExpr(x.X)
	case *ast.TypeAssertExpr:
		return pr.isPoolGetAssert(x) || pr.taintedExpr(x.X)
	case *ast.UnaryExpr:
		// &batch[i] aliases an element of the backing array. batch[i] alone
		// is a value copy of the element and is safe.
		if x.Op.String() == "&" {
			if idx, ok := x.X.(*ast.IndexExpr); ok {
				return pr.taintedExpr(idx.X)
			}
			return pr.taintedExpr(x.X)
		}
	case *ast.CallExpr:
		// append(batch, ...) may return the batch's own backing array.
		// Appending a batch's *elements* to another slice copies them and is
		// safe.
		if fun, ok := x.Fun.(*ast.Ident); ok && fun.Name == "append" && len(x.Args) > 0 {
			return pr.taintedExpr(x.Args[0])
		}
	case *ast.CompositeLit:
		// A composite value embedding the batch carries the alias.
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if pr.taintedExpr(kv.Value) {
					return true
				}
			} else if pr.taintedExpr(elt) {
				return true
			}
		}
	case *ast.FuncLit:
		// A closure referencing the batch carries the alias if it escapes.
		found := false
		ast.Inspect(x.Body, func(n ast.Node) bool {
			if found {
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				obj := pr.pass.TypesInfo.Uses[id]
				if obj == nil {
					return true
				}
				// Only captures alias the enclosing call's batch; the
				// closure's own parameters and locals are handed fresh values
				// by its future callers.
				if obj.Pos() >= x.Pos() && obj.Pos() <= x.End() {
					return true
				}
				// Tainted local, or any variable of the pooled handle type
				// (parameters and fields are pooled by type, not by
				// assignment).
				if pr.tainted[obj] || pr.isPooledPtrType(obj.Type()) {
					found = true
				}
			}
			return true
		})
		return found
	}
	return false
}

// checkFunc analyzes one function body: first a fixpoint pass propagating
// taint through local assignments, then a reporting pass over the escape
// points.
func (pr *poolRetain) checkFunc(body *ast.BlockStmt) {
	pr.tainted = make(map[types.Object]bool)
	// Fixpoint: a local bound to a tainted expression becomes tainted, which
	// can make further expressions tainted.
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) != len(s.Rhs) {
					return true
				}
				for i, lhs := range s.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj := pr.pass.TypesInfo.Defs[id]
					if obj == nil {
						obj = pr.pass.TypesInfo.Uses[id]
					}
					if obj == nil || pr.tainted[obj] {
						continue
					}
					if isLocalVar(obj) && pr.taintedExpr(s.Rhs[i]) {
						pr.tainted[obj] = true
						changed = true
					}
				}
			case *ast.ValueSpec:
				if len(s.Names) != len(s.Values) {
					return true
				}
				for i, id := range s.Names {
					obj := pr.pass.TypesInfo.Defs[id]
					if obj == nil || pr.tainted[obj] {
						continue
					}
					if isLocalVar(obj) && pr.taintedExpr(s.Values[i]) {
						pr.tainted[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				if !pr.taintedExpr(s.Rhs[i]) {
					continue
				}
				pr.checkStore(lhs, s.Rhs[i])
			}
		case *ast.SendStmt:
			if pr.taintedExpr(s.Value) {
				pr.pass.Reportf(s.Arrow, "pooled batch (or an alias of its backing array) sent on a channel; pooled exchange batches must not outlive the call that received them")
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if pr.taintedExpr(r) {
					pr.pass.Reportf(r.Pos(), "pooled batch (or an alias of its backing array) returned from the function; pooled exchange batches must not outlive the call that received them")
				}
			}
		case *ast.GoStmt:
			if pr.taintedExpr(s.Call.Fun) {
				pr.pass.Reportf(s.Pos(), "pooled batch captured by a goroutine; the goroutine may outlive the call that received the batch")
				return true
			}
			for _, arg := range s.Call.Args {
				if pr.taintedExpr(arg) {
					pr.pass.Reportf(s.Pos(), "pooled batch passed to a goroutine; the goroutine may outlive the call that received the batch")
					break
				}
			}
		}
		return true
	})
}

// checkStore reports a tainted value stored anywhere that outlives the call:
// a struct field, a package-level variable, or a container reached through
// one. Stores into the pooled batch itself (e.g. *b = (*b)[:0], b[i] = e) are
// the intended use and stay silent; so do rebindings of local variables,
// which the taint fixpoint already tracks.
func (pr *poolRetain) checkStore(lhs, rhs ast.Expr) {
	switch l := lhs.(type) {
	case *ast.Ident:
		obj := pr.pass.TypesInfo.Defs[l]
		if obj == nil {
			obj = pr.pass.TypesInfo.Uses[l]
		}
		if obj != nil && !isLocalVar(obj) {
			pr.pass.Reportf(rhs.Pos(), "pooled batch (or an alias of its backing array) stored in package-level variable %s; pooled exchange batches must not outlive the call that received them", l.Name)
		}
	case *ast.SelectorExpr:
		if pr.taintedExpr(l.X) {
			// Store into a field of the pooled struct itself (the columnar
			// build path: cols.Keys = append(cols.Keys[:0], ...)) — intended
			// use, like *b = (*b)[:0] on a batch.
			return
		}
		pr.pass.Reportf(rhs.Pos(), "pooled batch (or an alias of its backing array) stored in struct field or package variable %s; pooled exchange batches must not outlive the call that received them", l.Sel.Name)
	case *ast.IndexExpr:
		if !pr.taintedExpr(l.X) {
			pr.pass.Reportf(rhs.Pos(), "pooled batch (or an alias of its backing array) stored in a container that outlives the call; pooled exchange batches must not be retained")
		}
	case *ast.StarExpr:
		if !pr.taintedExpr(l.X) {
			pr.pass.Reportf(rhs.Pos(), "pooled batch (or an alias of its backing array) stored through a pointer that outlives the call; pooled exchange batches must not be retained")
		}
	case *ast.ParenExpr:
		pr.checkStore(l.X, rhs)
	}
}

// isLocalVar reports whether obj is a function-scoped variable (including
// parameters and named results).
func isLocalVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	if v.IsField() {
		return false
	}
	// Package-level variables have the package scope as parent.
	return v.Parent() == nil || v.Parent() != v.Pkg().Scope()
}
