// Package streamvet is a static-analysis suite that enforces the engine's
// runtime invariants at compile time. PRs 2–3 made correctness depend on
// conventions the compiler cannot see:
//
//   - pooled []Event batches must not be retained past the exchange
//     (poolretain),
//   - every switch over an engine kind type must handle every kind or fail
//     loudly in a default — a silently dropped barrier or watermark wedges
//     alignment (msgexhaustive),
//   - event-time code must never read the wall clock, or the crash-matrix
//     and output-equality tests stop being deterministic (wallclock),
//   - a mutex held across a channel operation is the deadlock shape that
//     backpressure makes reachable (lockcross).
//
// The suite is built on the standard library only (go/ast, go/types, with
// type information from `go list -export` build-cache export data), so it
// mirrors the golang.org/x/tools/go/analysis shape — Analyzer, Pass,
// Diagnostic — without requiring the module. It runs standalone:
//
//	go run ./cmd/streamvet ./...
//
// False positives in genuinely processing-time or ownership-transfer code
// are silenced with an annotation on (or immediately above) the offending
// line:
//
//	//streamvet:allow <analyzer> [<analyzer>...] — reason
package streamvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check, mirroring
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //streamvet:allow annotations.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run inspects one package and reports violations through the pass.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// allow maps file name → line → analyzer name → annotation entry,
	// collected from //streamvet:allow comments. Entries are shared between
	// the annotation's own line and the following one, and record whether
	// they ever suppressed a diagnostic (unused entries are stale).
	allow map[string]map[int]map[string]*allowEntry

	// facts is the run-wide fact store shared by every pass (nil when an
	// analyzer is driven outside Run, e.g. in focused unit tests).
	facts *factStore

	diagnostics []Diagnostic
}

// allowEntry is one (annotation, analyzer) pair from a //streamvet:allow
// comment.
type allowEntry struct {
	analyzer string
	pos      token.Position // position of the annotation comment
	used     bool           // did it ever suppress a diagnostic?
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a violation at pos unless a //streamvet:allow annotation
// covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allowedAt(position) {
		return
	}
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowedAt reports whether an annotation for this pass's analyzer covers the
// given source position, marking the annotation used so the stale-allow check
// knows it still earns its keep.
func (p *Pass) allowedAt(pos token.Position) bool {
	lines := p.allow[pos.Filename]
	if lines == nil {
		return false
	}
	e := lines[pos.Line][p.Analyzer.Name]
	if e == nil {
		return false
	}
	e.used = true
	return true
}

// allowPrefix introduces a streamvet annotation comment.
const allowPrefix = "//streamvet:allow"

// collectAllows indexes every //streamvet:allow annotation in the package. A
// trailing annotation covers its own line; a standalone annotation comment
// additionally covers the following line, so it can sit above a long
// statement. Both lines share one entry, so suppressing through either marks
// the annotation used.
func collectAllows(fset *token.FileSet, files []*ast.File) map[string]map[int]map[string]*allowEntry {
	out := make(map[string]map[int]map[string]*allowEntry)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				names := strings.TrimPrefix(c.Text, allowPrefix)
				// Everything after an em dash or "--" is a human reason.
				if i := strings.IndexAny(names, "—"); i >= 0 {
					names = names[:i]
				}
				if i := strings.Index(names, "--"); i >= 0 {
					names = names[:i]
				}
				pos := fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]*allowEntry)
					out[pos.Filename] = lines
				}
				add := func(line int, e *allowEntry) {
					set := lines[line]
					if set == nil {
						set = make(map[string]*allowEntry)
						lines[line] = set
					}
					set[e.analyzer] = e
				}
				for _, name := range strings.Fields(names) {
					e := &allowEntry{analyzer: name, pos: pos}
					add(pos.Line, e)
					add(pos.Line+1, e)
				}
			}
		}
	}
	return out
}

// StaleAllowName is the analyzer name under which unused //streamvet:allow
// annotations are reported. It is a framework check, not a Suite member: an
// annotation that suppresses nothing is an escape that has rotted — either
// the violation it silenced was fixed (delete the annotation) or the
// analyzer regressed (which the seeded-violation tests catch separately).
const StaleAllowName = "staleallow"

// Result is the outcome of one Run: the combined diagnostics plus every fact
// exported along the way (for the -facts debug dump and fact-propagation
// tests).
type Result struct {
	Diagnostics []Diagnostic
	Facts       []FactRecord
}

// Run applies every analyzer to every package, in the order given — Load
// returns dependency order, which is what makes cross-package facts work —
// and returns the combined diagnostics (sorted by position) and exported
// facts. After the analyzers finish with a package, any //streamvet:allow
// annotation naming a ran analyzer that suppressed nothing is reported under
// StaleAllowName.
func Run(analyzers []*Analyzer, pkgs []*Package) (*Result, error) {
	facts := newFactStore()
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allows := collectAllows(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				allow:     allows,
				facts:     facts,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
			}
			diags = append(diags, pass.diagnostics...)
		}
		diags = append(diags, staleAllows(allows, ran)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return &Result{Diagnostics: diags, Facts: facts.records()}, nil
}

// RunAnalyzers is Run without the fact/stale plumbing in the signature, kept
// for callers that only consume diagnostics.
func RunAnalyzers(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	res, err := Run(analyzers, pkgs)
	if err != nil {
		return nil, err
	}
	return res.Diagnostics, nil
}

// staleAllows reports every allow annotation in one package that names an
// analyzer in the run set but suppressed no diagnostic. Annotations naming
// analyzers outside the run set (e.g. under -run subsets) are not judged —
// the analyzer that would use them never looked.
func staleAllows(allows map[string]map[int]map[string]*allowEntry, ran map[string]bool) []Diagnostic {
	seen := make(map[*allowEntry]bool)
	var out []Diagnostic
	for _, lines := range allows {
		for _, byName := range lines {
			for _, e := range byName {
				if seen[e] || e.used || !ran[e.analyzer] {
					seen[e] = true
					continue
				}
				seen[e] = true
				// A stale report can itself be allowed (annotation churn
				// during a refactor): honor //streamvet:allow staleallow on
				// the same line.
				if se := byName[StaleAllowName]; se != nil {
					se.used = true
					continue
				}
				out = append(out, Diagnostic{
					Pos:      e.pos,
					Analyzer: StaleAllowName,
					Message: fmt.Sprintf(
						"//streamvet:allow %s suppresses no %s diagnostic; the escape has rotted — remove it (or fix the annotation)",
						e.analyzer, e.analyzer),
				})
			}
		}
	}
	return out
}

// Suite returns the eight analyzers configured for this repository's engine
// types and packages.
func Suite() []*Analyzer {
	return []*Analyzer{
		NewPoolRetain([]string{"repro/internal/core.Event"}, "repro/internal/core.Columns"),
		NewMsgExhaustive(
			"repro/internal/core.msgKind",
			"repro/internal/core.PartitionKind",
			"repro/internal/chaos.CrashPoint",
		),
		NewWallClock(
			"repro/internal/core",
			"repro/internal/window",
			"repro/internal/cep",
			"repro/internal/eventtime",
		),
		NewLockCross(
			"repro/internal/core",
			"repro/internal/eventtime",
		),
		NewMapOrder(
			[]string{
				"repro/internal/core",
				"repro/internal/state",
				"repro/internal/lsm",
				"repro/internal/window",
				"repro/internal/cep",
			},
			"repro/internal/core.(Context).Emit",
			"repro/internal/core.(BatchContext).EmitBatch",
			"repro/internal/core.(SourceContext).Collect",
			"repro/internal/core.(SourceContext).CollectBatch",
			"repro/internal/core.(SnapshotStore).Save",
		),
		NewErrDrop(
			[]string{
				"repro/internal/core",
				"repro/internal/state",
				"repro/internal/lsm",
			},
			"repro/internal/core.(SnapshotStore).Save",
			"repro/internal/core.(SnapshotStore).Complete",
			"repro/internal/core.(FileLinkingStore).LinkFile",
			"repro/internal/core.(DiscardableStore).Discard",
			"repro/internal/lsm.(*wal).append",
		),
		NewChanBlock(
			"repro/internal/core",
			"repro/internal/eventtime",
		),
		NewGoroLeak(
			"repro/internal/core",
			"repro/internal/elastic",
			"repro/internal/obsv",
			"repro/internal/ha",
		),
	}
}

// qualifiedTypeName renders a named type as "pkgpath.Name" for matching
// against analyzer configuration. Unnamed types return "".
func qualifiedTypeName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name() // universe scope (error, ...)
	}
	return obj.Pkg().Path() + "." + obj.Name()
}
