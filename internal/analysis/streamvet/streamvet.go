// Package streamvet is a static-analysis suite that enforces the engine's
// runtime invariants at compile time. PRs 2–3 made correctness depend on
// conventions the compiler cannot see:
//
//   - pooled []Event batches must not be retained past the exchange
//     (poolretain),
//   - every switch over an engine kind type must handle every kind or fail
//     loudly in a default — a silently dropped barrier or watermark wedges
//     alignment (msgexhaustive),
//   - event-time code must never read the wall clock, or the crash-matrix
//     and output-equality tests stop being deterministic (wallclock),
//   - a mutex held across a channel operation is the deadlock shape that
//     backpressure makes reachable (lockcross).
//
// The suite is built on the standard library only (go/ast, go/types, with
// type information from `go list -export` build-cache export data), so it
// mirrors the golang.org/x/tools/go/analysis shape — Analyzer, Pass,
// Diagnostic — without requiring the module. It runs standalone:
//
//	go run ./cmd/streamvet ./...
//
// False positives in genuinely processing-time or ownership-transfer code
// are silenced with an annotation on (or immediately above) the offending
// line:
//
//	//streamvet:allow <analyzer> [<analyzer>...] — reason
package streamvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check, mirroring
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //streamvet:allow annotations.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run inspects one package and reports violations through the pass.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// allow maps file name → line → the set of analyzer names allowed there,
	// collected from //streamvet:allow comments.
	allow map[string]map[int]map[string]bool

	diagnostics []Diagnostic
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a violation at pos unless a //streamvet:allow annotation
// covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allowedAt(position) {
		return
	}
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowedAt reports whether an annotation for this pass's analyzer covers the
// given source position.
func (p *Pass) allowedAt(pos token.Position) bool {
	lines := p.allow[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][p.Analyzer.Name]
}

// allowPrefix introduces a streamvet annotation comment.
const allowPrefix = "//streamvet:allow"

// collectAllows indexes every //streamvet:allow annotation in the package. A
// trailing annotation covers its own line; a standalone annotation comment
// additionally covers the following line, so it can sit above a long
// statement.
func collectAllows(fset *token.FileSet, files []*ast.File) map[string]map[int]map[string]bool {
	out := make(map[string]map[int]map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				names := strings.TrimPrefix(c.Text, allowPrefix)
				// Everything after an em dash or "--" is a human reason.
				if i := strings.IndexAny(names, "—"); i >= 0 {
					names = names[:i]
				}
				if i := strings.Index(names, "--"); i >= 0 {
					names = names[:i]
				}
				pos := fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					out[pos.Filename] = lines
				}
				add := func(line int, name string) {
					set := lines[line]
					if set == nil {
						set = make(map[string]bool)
						lines[line] = set
					}
					set[name] = true
				}
				for _, name := range strings.Fields(names) {
					add(pos.Line, name)
					add(pos.Line+1, name)
				}
			}
		}
	}
	return out
}

// RunAnalyzers applies every analyzer to every package and returns the
// combined diagnostics sorted by position.
func RunAnalyzers(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allows := collectAllows(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				allow:     allows,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
			}
			diags = append(diags, pass.diagnostics...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// Suite returns the four analyzers configured for this repository's engine
// types and packages.
func Suite() []*Analyzer {
	return []*Analyzer{
		NewPoolRetain([]string{"repro/internal/core.Event"}, "repro/internal/core.Columns"),
		NewMsgExhaustive(
			"repro/internal/core.msgKind",
			"repro/internal/core.PartitionKind",
			"repro/internal/chaos.CrashPoint",
		),
		NewWallClock(
			"repro/internal/core",
			"repro/internal/window",
			"repro/internal/cep",
			"repro/internal/eventtime",
		),
		NewLockCross(
			"repro/internal/core",
			"repro/internal/eventtime",
		),
	}
}

// qualifiedTypeName renders a named type as "pkgpath.Name" for matching
// against analyzer configuration. Unnamed types return "".
func qualifiedTypeName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name() // universe scope (error, ...)
	}
	return obj.Pkg().Path() + "." + obj.Name()
}
