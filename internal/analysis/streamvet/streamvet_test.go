package streamvet

import (
	"go/token"
	"path/filepath"
	"testing"
)

// golden runs one analyzer against its testdata package and reports every
// mismatch between diagnostics and `// want` comments.
func golden(t *testing.T, dir string, a *Analyzer) {
	t.Helper()
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	problems, err := CheckGolden(root, filepath.Join(root, "internal/analysis/streamvet/testdata", dir), a)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

func TestPoolRetainGolden(t *testing.T) {
	golden(t, "poolretain", NewPoolRetain([]string{"poolretain.Event"}, "poolretain.Columns"))
}

func TestMsgExhaustiveGolden(t *testing.T) {
	golden(t, "msgexhaustive", NewMsgExhaustive("msgexhaustive.kind", "msgexhaustive.faultPoint"))
}

func TestWallClockGolden(t *testing.T) {
	golden(t, "wallclock", NewWallClock("wallclock"))
}

func TestLockCrossGolden(t *testing.T) {
	golden(t, "lockcross", NewLockCross("lockcross"))
}

func TestMapOrderGolden(t *testing.T) {
	golden(t, "maporder", NewMapOrder([]string{"maporder"}, "maporder.(Emitter).Emit"))
}

func TestErrDropGolden(t *testing.T) {
	golden(t, "errdrop", NewErrDrop([]string{"errdrop"}, "errdrop.(Store).Save"))
}

func TestChanBlockGolden(t *testing.T) {
	golden(t, "chanblock", NewChanBlock("chanblock"))
}

func TestGoroLeakGolden(t *testing.T) {
	golden(t, "goroleak", NewGoroLeak("goroleak"))
}

// TestAllowAnnotationScope pins the annotation contract: a trailing
// annotation covers its line, a standalone annotation covers the next line,
// and an annotation for one analyzer does not silence another.
func TestAllowAnnotationScope(t *testing.T) {
	e := &allowEntry{analyzer: "wallclock"}
	allows := map[string]map[int]map[string]*allowEntry{
		"f.go": {
			10: {"wallclock": e},
			11: {"wallclock": e},
		},
	}
	pass := &Pass{Analyzer: &Analyzer{Name: "wallclock"}, allow: allows}
	if pass.allowedAt(token.Position{Filename: "f.go", Line: 9}) {
		t.Error("line 9 must not be covered")
	}
	if e.used {
		t.Error("a miss must not mark the annotation used")
	}
	for _, line := range []int{10, 11} {
		if !pass.allowedAt(token.Position{Filename: "f.go", Line: line}) {
			t.Errorf("line %d must be covered", line)
		}
	}
	if !e.used {
		t.Error("suppressing must mark the annotation used")
	}
	if pass.allowedAt(token.Position{Filename: "f.go", Line: 12}) {
		t.Error("line 12 must not be covered")
	}
	other := &Pass{Analyzer: &Analyzer{Name: "lockcross"}, allow: allows}
	if other.allowedAt(token.Position{Filename: "f.go", Line: 10}) {
		t.Error("wallclock annotation must not silence lockcross")
	}
}

// TestSuiteComposition pins the suite: eight analyzers under their contract
// names, so a config regression (dropping one, renaming one) fails here.
func TestSuiteComposition(t *testing.T) {
	want := []string{
		"poolretain", "msgexhaustive", "wallclock", "lockcross",
		"maporder", "errdrop", "chanblock", "goroleak",
	}
	suite := Suite()
	if len(suite) != len(want) {
		t.Fatalf("Suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("Suite[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("Suite[%d] (%s) has no Doc", i, a.Name)
		}
	}
}
