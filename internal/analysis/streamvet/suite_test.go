package streamvet

import "testing"

// TestSuiteCleanOnRepo runs the full streamvet suite over the whole module —
// the same scan CI performs with `go run ./cmd/streamvet ./...` — and fails
// on any violation. Running it from `go test` means a violation cannot land
// even when only the test step of CI runs.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo scan skipped in -short mode")
	}
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	diags, err := RunAnalyzers(Suite(), pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("streamvet violation: %s", d)
	}
}
