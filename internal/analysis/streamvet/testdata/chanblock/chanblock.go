// Package chanblock is golden testdata for the chanblock analyzer, with this
// package designated. chanblock is the inter-procedural lockcross: a call
// made under a mutex to a function that may block on a channel — directly or
// through wrappers, resolved via facts — is the deadlock shape backpressure
// makes reachable.
package chanblock

import "sync"

type pool struct {
	mu    sync.Mutex
	ready chan int
	n     int
}

// drain blocks on a receive: it carries the may-block fact.
func (p *pool) drain() int {
	return <-p.ready
}

// refill wraps drain: the fact propagates through the wrapper.
func (p *pool) refill() {
	p.n = p.drain()
}

func (p *pool) takeDirect() {
	p.mu.Lock()
	p.n = p.drain() // want `call to chanblock\.\(\*pool\)\.drain while holding p\.mu`
	p.mu.Unlock()
}

func (p *pool) takeViaWrapper() {
	p.mu.Lock()
	p.refill() // want `call to chanblock\.\(\*pool\)\.refill while holding p\.mu`
	p.mu.Unlock()
}

// unlockedCall is clean: no lock held at the call.
func (p *pool) unlockedCall() {
	p.n = p.drain()
}

// nonBlockingUnderLock is clean: bump never touches a channel.
func (p *pool) nonBlockingUnderLock() {
	p.mu.Lock()
	p.bump()
	p.mu.Unlock()
}

func (p *pool) bump() { p.n++ }

// waitAll parks on a WaitGroup — channel-equivalent blocking.
func waitAll(wg *sync.WaitGroup) { wg.Wait() }

func (p *pool) joinUnderLock(wg *sync.WaitGroup) {
	p.mu.Lock()
	waitAll(wg) // want `call to chanblock\.waitAll while holding p\.mu`
	p.mu.Unlock()
}

// tryTake is clean: the select has a default, so drainNonBlocking never
// blocks and carries no fact.
func (p *pool) tryTake() {
	p.mu.Lock()
	p.n = p.drainNonBlocking()
	p.mu.Unlock()
}

func (p *pool) drainNonBlocking() int {
	select {
	case v := <-p.ready:
		return v
	default:
		return 0
	}
}
