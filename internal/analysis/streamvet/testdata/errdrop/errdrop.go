// Package errdrop is golden testdata for the errdrop analyzer, with this
// package designated and errdrop.(Store).Save configured as a durability
// seed alongside the built-in os.(*File).Sync and Close. A dropped
// durability error silently voids the exactly-once contract.
package errdrop

import "os"

type Store interface {
	Save(name string, data []byte) error
}

func discardStatement(f *os.File) {
	f.Sync() // want `discarded error from os\.\(\*File\)\.Sync`
}

func discardInGoStmt(s Store) {
	go s.Save("a", nil) // want `discarded error from errdrop\.\(Store\)\.Save, a durability operation, in a go statement`
}

// explicitBlank is the sanctioned deliberate discard. Clean.
func explicitBlank(f *os.File) {
	_ = f.Sync()
}

// deferredClose is the sanctioned read-path cleanup idiom. Clean.
func deferredClose(f *os.File) byte {
	defer f.Close()
	var b [1]byte
	f.Read(b[:])
	return b[0]
}

// flush wraps Sync: it returns an error and calls a seed, so it carries the
// durability fact and dropping its error is dropping the fsync error.
func flush(f *os.File) error {
	return f.Sync()
}

func discardWrapped(f *os.File) {
	flush(f) // want `discarded error from errdrop\.flush`
}

// writeAll carries the fact through a multi-result signature.
func writeAll(f *os.File, data []byte) (int, error) {
	n, err := f.Write(data)
	if err != nil {
		return n, err
	}
	return n, f.Sync()
}

func blankInTuple(f *os.File) int {
	n, _ := writeAll(f, nil) // want `durability error from errdrop\.writeAll discarded via blank identifier`
	return n
}

func overwritten(f *os.File, ok bool) error {
	err := flush(f) // want `assigned to err but overwritten at`
	err = validate(ok)
	return err
}

func lastWriteDropped(f *os.File, ok bool) error {
	var err error
	err = validate(ok)
	if err != nil {
		return err
	}
	err = flush(f) // want `assigned to err and never checked`
	return nil
}

// checkedLater is clean: the read happens in an outer scope after the branch
// that assigned.
func checkedLater(f *os.File, ok bool) error {
	var err error
	if ok {
		err = flush(f)
	}
	return err
}

// checkedInCond is clean: the if condition reads the error.
func checkedInCond(f *os.File) {
	if err := flush(f); err != nil {
		panic(err)
	}
}

// retryLoop is clean: the error is read after the loop.
func retryLoop(f *os.File, n int) error {
	var err error
	for i := 0; i < n; i++ {
		if i > 0 && err == nil {
			return nil
		}
		err = flush(f)
	}
	return err
}

// retryUntilNil is clean: the only read sits at the top of the loop, before
// the assignment positionally, but it executes on the next iteration.
func retryUntilNil(f *os.File, n int) {
	var err error
	for i := 0; i < n; i++ {
		if err != nil {
			return
		}
		err = flush(f)
	}
}

func validate(ok bool) error {
	if !ok {
		return os.ErrInvalid
	}
	return nil
}
