// Package goroleak is golden testdata for the goroleak analyzer, with this
// package designated. Every goroutine in a lifecycle-owning package must be
// tied to shutdown: select on a done/quit channel, join or signal a
// WaitGroup — directly, through a statically-called function (facts), or
// through a local function-literal binding.
package goroleak

import (
	"context"
	"sync"
)

type worker struct {
	quit chan struct{}
	wg   sync.WaitGroup
}

func poll() {}

func (w *worker) startLeakyLit() {
	go func() { // want `goroutine is not tied to shutdown`
		for {
			poll()
		}
	}()
}

// startSelect is clean: the body selects on ctx.Done.
func (w *worker) startSelect(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				poll()
			}
		}
	}()
}

// startJoined is clean: the body signals a WaitGroup the owner joins.
func (w *worker) startJoined() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		poll()
	}()
}

// run receives from quit, so it carries the signaled fact.
func (w *worker) run() {
	<-w.quit
}

// startMethod is clean: the static callee carries the fact.
func (w *worker) startMethod() {
	go w.run()
}

// startLocalLit is clean: loop is a local binding whose body selects on quit.
func (w *worker) startLocalLit() {
	loop := func() {
		for {
			select {
			case <-w.quit:
				return
			default:
				poll()
			}
		}
	}
	go loop()
}

func (w *worker) spin() {
	for {
		poll()
	}
}

func (w *worker) startLeakyMethod() {
	go w.spin() // want `goroutine is not tied to shutdown`
}

// startDynamic is not judged: the analyzer cannot see a function value's
// body, and guessing would flood callers with false positives.
func startDynamic(f func()) {
	go f()
}

// startNested is clean for the outer goroutine (it joins the WaitGroup); the
// inner one it spawns has its own select.
func (w *worker) startNested() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		go func() {
			<-w.quit
		}()
	}()
}
