// Package lockcross is golden testdata for the lockcross analyzer, with this
// package designated as engine code. A sync.Mutex or RWMutex held across a
// channel send, receive, select, range-over-channel or sync.Cond.Wait is the
// deadlock shape backpressure makes reachable.
package lockcross

import "sync"

type guarded struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	cond *sync.Cond
	n    int
}

func sendUnderLock(g *guarded, ch chan int) {
	g.mu.Lock()
	ch <- g.n // want `channel send while holding g.mu`
	g.mu.Unlock()
}

func receiveUnderLock(g *guarded, ch chan int) {
	g.mu.Lock()
	g.n = <-ch // want `channel receive while holding g.mu`
	g.mu.Unlock()
}

func selectUnderLock(g *guarded, ch chan int) {
	g.mu.Lock()
	select { // want `select while holding g.mu`
	case v := <-ch:
		g.n = v
	default:
	}
	g.mu.Unlock()
}

func condWaitUnderLock(g *guarded) {
	g.mu.Lock()
	g.cond.Wait() // want `sync.Cond.Wait while holding g.mu`
	g.mu.Unlock()
}

func rlockAcrossReceive(g *guarded, ch chan int) {
	g.rw.RLock()
	g.n = <-ch // want `channel receive while holding g.rw`
	g.rw.RUnlock()
}

func deferredUnlock(g *guarded, ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	ch <- g.n // want `channel send while holding g.mu`
}

func fallThroughStillHeld(g *guarded, ch chan int, fast bool) {
	g.mu.Lock()
	if fast {
		g.mu.Unlock()
		return
	}
	ch <- g.n // want `channel send while holding g.mu`
	g.mu.Unlock()
}

func rangeOverChannelUnderLock(g *guarded, ch chan int) {
	g.mu.Lock()
	for v := range ch { // want `range over channel while holding g.mu`
		g.n += v
	}
	g.mu.Unlock()
}

func twoLocksHeld(g *guarded, h *guarded, ch chan int) {
	g.mu.Lock()
	h.mu.Lock()
	ch <- 1 // want `while holding g.mu` `while holding h.mu`
	h.mu.Unlock()
	g.mu.Unlock()
}

func lockInsideGoroutine(g *guarded, ch chan int) {
	go func() {
		g.mu.Lock()
		ch <- g.n // want `channel send while holding g.mu`
		g.mu.Unlock()
	}()
}

func unlockBeforeSend(g *guarded, ch chan int) {
	g.mu.Lock()
	n := g.n
	g.mu.Unlock()
	ch <- n
}

func bothBranchesUnlock(g *guarded, ch chan int, fast bool) {
	g.mu.Lock()
	if fast {
		g.mu.Unlock()
	} else {
		g.mu.Unlock()
	}
	ch <- g.n
}

func goroutineEscapesLockScope(g *guarded, ch chan int) {
	g.mu.Lock()
	// The goroutine body runs under its own lock state: the send below does
	// not execute while this frame holds the mutex.
	go func() {
		ch <- 1
	}()
	g.mu.Unlock()
}

func annotatedSend(g *guarded, ch chan int) {
	g.mu.Lock()
	ch <- g.n //streamvet:allow lockcross — buffered private channel under test
	g.mu.Unlock()
}

func rangeOverSliceUnderLock(g *guarded, xs []int) {
	g.mu.Lock()
	for _, v := range xs { // ranging over a slice is not a channel op
		g.n += v
	}
	g.mu.Unlock()
}
