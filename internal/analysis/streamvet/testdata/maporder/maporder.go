// Package maporder is golden testdata for the maporder analyzer, with this
// package designated and maporder.(Emitter).Emit configured as an
// order-sensitive sink alongside the built-in encoders. Map iteration whose
// values reach a sink without a sort bakes nondeterministic order into bytes
// that must be stable.
package maporder

import (
	"bytes"
	"encoding/gob"
	"sort"
)

type Emitter interface{ Emit(v any) }

func emitPerKey(e Emitter, m map[string]int) {
	for k := range m {
		e.Emit(k) // want `maporder\.\(Emitter\)\.Emit called inside iteration over a map`
	}
}

func encodeCollected(m map[string]int) ([]byte, error) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(keys); err != nil { // want `receives keys, collected from map iteration`
		return nil, err
	}
	return buf.Bytes(), nil
}

// encodeSorted is the fix: collect, sort, then encode. Clean.
func encodeSorted(m map[string]int) ([]byte, error) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(keys); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// encodeVia wraps a gob encode, so it inherits the order-sensitivity fact and
// calling it from inside a map range is as bad as encoding directly.
func encodeVia(v any) error {
	return gob.NewEncoder(new(bytes.Buffer)).Encode(v)
}

func emitViaWrapper(m map[string]int) {
	for k := range m {
		_ = encodeVia(k) // want `maporder\.encodeVia called inside iteration over a map`
	}
}

// chained taint: a local copy inside the loop still carries the map order.
func encodeChained(e Emitter, m map[string]int) {
	var rows []string
	for k, v := range m {
		row := k
		if v > 0 {
			row = k + "!"
		}
		rows = append(rows, row)
	}
	e.Emit(rows) // want `receives rows, collected from map iteration`
}

// keysOnlyLookup is clean: iterating sorted keys and looking values up does
// not leak map order even though a map is read in the loop.
func keysOnlyLookup(e Emitter, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.Emit(m[k])
	}
}
