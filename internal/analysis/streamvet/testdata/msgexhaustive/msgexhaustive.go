// Package msgexhaustive is golden testdata for the msgexhaustive analyzer,
// configured with kind types "msgexhaustive.kind" and
// "msgexhaustive.faultPoint". It mirrors the engine's message-kind switches:
// every switch over a kind type must cover every declared constant or carry
// an explicit default.
package msgexhaustive

type kind uint8

const (
	kindRecord kind = iota
	kindWatermark
	kindBarrier
	kindEOS
)

type faultPoint int

const (
	faultNone faultPoint = iota
	faultMidSave
	faultPreComplete
)

// faultSaveAlias shares faultMidSave's value: covering either name covers
// the kind.
const faultSaveAlias = faultMidSave

// other is not a designated kind type; its switches are never checked.
type other uint8

const (
	otherA other = iota
	otherB
)

func missingOne(k kind) {
	switch k { // want `missing cases for kindEOS and has no default`
	case kindRecord:
	case kindWatermark:
	case kindBarrier:
	}
}

func missingSeveral(k kind) {
	switch k { // want `missing cases for kindBarrier, kindEOS, kindWatermark and has no default`
	case kindRecord:
	}
}

func covered(k kind) {
	switch k {
	case kindRecord:
	case kindWatermark:
	case kindBarrier:
	case kindEOS:
	}
}

func coveredMultiValueCase(k kind) {
	switch k {
	case kindRecord, kindWatermark:
	case kindBarrier, kindEOS:
	}
}

func defaulted(k kind) {
	switch k {
	case kindRecord:
	default:
	}
}

func aliasedConstant(p faultPoint) {
	// faultSaveAlias covers the same value as faultMidSave.
	switch p {
	case faultNone:
	case faultSaveAlias:
	case faultPreComplete:
	}
}

func aliasMissing(p faultPoint) {
	switch p { // want `missing cases for faultMidSave/faultSaveAlias and has no default`
	case faultNone:
	case faultPreComplete:
	}
}

func undesignated(o other) {
	switch o { // not a kind type: exhaustiveness not required
	case otherA:
	}
}

func noTag(k kind) {
	switch { // tagless switches are ordinary if/else chains
	case k == kindRecord:
	}
}

func annotated(k kind) {
	//streamvet:allow msgexhaustive — deliberate partial handling under test
	switch k {
	case kindRecord:
	}
}
