// Package poolretain is golden testdata for the poolretain analyzer,
// configured with element type "poolretain.Event". It mirrors the engine's
// batched-exchange shapes: pooled *[]Event batches arrive from a sync.Pool or
// as parameters, and must not be retained past the receiving call.
package poolretain

import "sync"

// Event stands in for the engine's record type.
type Event struct {
	Key       string
	Timestamp int64
	Value     any
}

var pool = sync.Pool{New: func() any { b := make([]Event, 0, 8); return &b }}

type holder struct {
	batch   *[]Event
	slice   []Event
	elem    *Event
	batches []*[]Event
	notify  func()
}

var globalBatch *[]Event
var globalSlice []Event

// retainDirect covers the direct escape points for the pooled pointer.
func retainDirect(h *holder, ch chan *[]Event) *[]Event {
	b := pool.Get().(*[]Event)
	h.batch = b      // want `stored in struct field or package variable batch`
	globalBatch = b  // want `stored in package-level variable globalBatch`
	h.batches[0] = b // want `stored in a container that outlives the call`
	ch <- b          // want `sent on a channel`
	return b         // want `returned from the function`
}

// retainAliases covers aliases that share the batch's backing array.
func retainAliases(h *holder, b *[]Event) {
	sub := (*b)[1:3]
	h.slice = sub // want `stored in struct field or package variable slice`

	ep := &(*b)[0]
	h.elem = ep // want `stored in struct field or package variable elem`

	// append on the batch itself may return the batch's own backing array.
	grown := append(*b, Event{})
	globalSlice = grown // want `stored in package-level variable globalSlice`

	h.slice = (*b)[:0] // want `stored in struct field or package variable slice`
}

// retainClosure covers closures that outlive the call.
func retainClosure(h *holder, b *[]Event) {
	go func() { // want `captured by a goroutine`
		_ = (*b)[0]
	}()
	h.notify = func() { // want `stored in struct field or package variable notify`
		*b = (*b)[:0]
	}
}

// retainSeam covers the transfer seam: an escape the engine performs
// deliberately carries an annotation.
func retainSeam(h *holder, b *[]Event) {
	h.batch = b //streamvet:allow poolretain — ownership handoff under test
}

// safeUses exercises the permitted patterns: value copies of elements,
// copying appends into other backing arrays, writes into the batch itself,
// ordinary calls, and nil stores.
func safeUses(h *holder, b *[]Event, sink func(*[]Event)) {
	e := (*b)[0] // element copy is a value, not an alias
	_ = e

	dst := make([]Event, 0, len(*b))
	dst = append(dst, (*b)...) // copies elements into dst's backing array
	h.slice = dst

	(*b)[0] = Event{} // writing into the batch is the intended use
	*b = (*b)[:0]     // truncating the batch in place is fine

	sink(b)     // passing to a call is the ownership handoff
	pool.Put(b) // returning to the pool is the required epilogue

	h.batch = nil // clearing a field is not a retention
}

// localFlow: taint through locals is tracked, but purely local use is fine.
func localFlow(b *[]Event) int {
	alias := b
	sub := (*alias)[:1]
	return len(sub)
}

// genericPool: a sync.Pool of a non-configured element type is still pooled
// when obtained via Get.
func genericPool(h *intHolder) {
	q := intPool.Get().(*[]int)
	h.ints = q // want `stored in struct field or package variable ints`
}

var intPool = sync.Pool{New: func() any { b := make([]int, 0, 8); return &b }}

type intHolder struct{ ints *[]int }

// --- Pooled columnar buffers (configured struct type "poolretain.Columns") ---

// Columns stands in for the engine's pooled columnar batch view.
type Columns struct {
	Events []Event
	Keys   []string
	Vals   []float64
}

var colsPool = sync.Pool{New: func() any { return new(Columns) }}

type colHolder struct {
	cols *Columns
	vals []float64
	evs  []Event
	keys []string
	fold func(*Columns) int
}

// closureOwnParam: a closure whose OWN parameter is a pooled handle captures
// nothing — its future callers hand it fresh values — so storing the closure
// is safe.
func closureOwnParam(h *colHolder) {
	h.fold = func(c *Columns) int { return len(c.Vals) }
}

// retainColumns covers escapes of the pooled struct and of its field slices,
// which alias the pooled buffers.
func retainColumns(h *colHolder, c *Columns) *Columns {
	h.cols = c         // want `stored in struct field or package variable cols`
	h.vals = c.Vals    // want `stored in struct field or package variable vals`
	h.evs = c.Events   // want `stored in struct field or package variable evs`
	h.keys = c.Keys[1:] // want `stored in struct field or package variable keys`
	go func() { // want `captured by a goroutine`
		_ = c.Vals
	}()
	return c // want `returned from the function`
}

// retainColumnsFlow: taint flows through locals bound to a field alias.
func retainColumnsFlow(h *colHolder) {
	c := colsPool.Get().(*Columns)
	vals := c.Vals
	h.vals = vals // want `stored in struct field or package variable vals`
	colsPool.Put(c)
}

// buildColumns exercises the intended build path: stores into the pooled
// struct's own fields are silent, as is recycling it.
func buildColumns(c *Columns, b *[]Event) {
	c.Events = *b
	c.Keys = c.Keys[:0]
	c.Vals = append(c.Vals[:0], 1.0)
	for i := range c.Events {
		c.Keys = append(c.Keys, c.Events[i].Key)
	}
	colsPool.Put(c)
}

// safeColumnUses: value reads of columns and copying appends are fine.
func safeColumnUses(h *colHolder, c *Columns) {
	v := c.Vals[0] // element copy
	_ = v
	dst := make([]float64, 0, len(c.Vals))
	dst = append(dst, c.Vals...) // copies into dst's backing array
	h.vals = dst
	h.cols = nil
}
