// Package seedchanblock carries exactly one chanblock violation: a call made
// under a mutex to a function that blocks on a channel receive.
package seedchanblock

import "sync"

type box struct {
	mu sync.Mutex
	ch chan int
	v  int
}

func (b *box) recv() int { return <-b.ch }

func (b *box) take() {
	b.mu.Lock()
	b.v = b.recv() // the seeded violation
	b.mu.Unlock()
}
