// Package seederrdrop carries exactly one errdrop violation: a discarded
// fsync error on what the configuration treats as a durability path.
package seederrdrop

import "os"

func Flush(f *os.File) {
	f.Sync() // the seeded violation
}
