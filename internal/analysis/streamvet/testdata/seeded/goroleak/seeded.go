// Package seedgoroleak carries exactly one goroleak violation: a goroutine
// with no tie to shutdown.
package seedgoroleak

func tick() {}

func Start() {
	go func() { // the seeded violation
		for {
			tick()
		}
	}()
}
