// Package seedlockcross carries exactly one lockcross violation: a mutex
// held across a channel send.
package seedlockcross

import "sync"

type inbox struct {
	mu    sync.Mutex
	queue chan int
	depth int
}

func (b *inbox) push(v int) {
	b.mu.Lock()
	b.depth++
	b.queue <- v // the seeded violation: send while holding b.mu
	b.mu.Unlock()
}
