// Package seedmaporder carries exactly one maporder violation: map-collected
// values reach a gob encode without an intervening sort.
package seedmaporder

import (
	"bytes"
	"encoding/gob"
)

func Snapshot(set map[string]int64) ([]byte, error) {
	entries := make([]string, 0, len(set))
	for k := range set {
		entries = append(entries, k)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(entries); err != nil { // the seeded violation
		return nil, err
	}
	return buf.Bytes(), nil
}
