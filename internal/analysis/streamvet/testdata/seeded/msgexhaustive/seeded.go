// Package seedmsgexhaustive carries exactly one msgexhaustive violation: a
// switch over a kind type that misses a case and has no default.
package seedmsgexhaustive

type kind uint8

const (
	kindRecord kind = iota
	kindWatermark
	kindBarrier
)

func dispatch(k kind) string {
	switch k { // the seeded violation: kindBarrier silently dropped
	case kindRecord:
		return "record"
	case kindWatermark:
		return "watermark"
	}
	return ""
}
