// Package seedpoolretain carries exactly one poolretain violation: a pooled
// batch stored in a struct field. The negative CI test asserts the analyzer
// still reports it — a regression in the analyzer fails the build rather
// than silently passing everything.
package seedpoolretain

import "sync"

type Event struct {
	Key       string
	Timestamp int64
}

var pool = sync.Pool{New: func() any { b := make([]Event, 0, 8); return &b }}

type receiver struct {
	retained *[]Event
}

func (r *receiver) onBatch() {
	b := pool.Get().(*[]Event)
	r.retained = b // the seeded violation: batch retained past the call
}
