// Package seedwallclock carries exactly one wallclock violation: an
// unannotated wall-clock read in a designated event-time package.
package seedwallclock

import "time"

func eventTimeOfRecord(ts int64) int64 {
	if ts == 0 {
		ts = time.Now().UnixMilli() // the seeded violation: wall clock in event-time code
	}
	return ts
}
