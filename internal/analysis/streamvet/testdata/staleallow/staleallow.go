// Package staleallow exercises the stale-annotation check: an allow that
// suppresses a genuine diagnostic is kept quiet; an allow whose violation has
// since been fixed is itself reported under the staleallow name; an allow
// additionally tagged staleallow is tolerated (annotation churn mid-refactor).
package staleallow

import "time"

// Boot genuinely reads the wall clock; the annotation earns its keep.
func Boot() int64 {
	//streamvet:allow wallclock — lifecycle timestamp, not event time
	return time.Now().UnixNano()
}

// Stale suppresses nothing: the violation it once silenced is gone.
func Stale() int {
	//streamvet:allow wallclock — rotted: nothing below reads the clock
	return 42
}

// Muted is a rotted annotation explicitly kept through a refactor.
func Muted() int {
	//streamvet:allow wallclock staleallow — kept while the migration lands
	return 7
}
