// Package wallclock is golden testdata for the wallclock analyzer, with this
// package designated as event-time code. time.Now and time.Since are banned
// unless the line carries (or follows) a //streamvet:allow wallclock
// annotation; the injected-clock path and other time functions stay legal.
package wallclock

import "time"

// clock mirrors the engine's injected eventtime.Clock.
type clock interface {
	Now() int64
	After(d time.Duration) <-chan time.Time
}

func readsWallClock() int64 {
	return time.Now().UnixMilli() // want `time.Now in event-time package wallclock`
}

func measuresWallClock(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since in event-time package wallclock`
}

// referenceWithoutCall: storing time.Now as a function value smuggles the
// wall clock just as effectively as calling it.
var nowFunc = time.Now // want `time.Now in event-time package wallclock`

func injectedClock(c clock) int64 {
	return c.Now() // the injected clock is the sanctioned path
}

func otherTimeFunctions(d time.Duration) {
	<-time.After(d)        // After/Tick/Sleep are processing-time waits, not banned
	_ = time.UnixMilli(42) // constructors are fine
	_ = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
}

func allowedTrailing() int64 {
	return time.Now().UnixMilli() //streamvet:allow wallclock — metrics stamp under test
}

func allowedPreceding() int64 {
	//streamvet:allow wallclock — metrics stamp under test
	return time.Now().UnixMilli()
}

// localNow is a decoy: only the standard library's time package is banned.
type fakeTime struct{}

func (fakeTime) Now() int64           { return 0 }
func (fakeTime) Since(int64) int64    { return 0 }
func decoy(f fakeTime) (int64, int64) { return f.Now(), f.Since(0) }
