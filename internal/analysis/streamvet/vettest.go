package streamvet

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// vettest: an analysistest-style golden harness. A testdata package marks
// each line where a diagnostic is expected with a trailing comment:
//
//	x.f = batch // want `stored in struct field`
//	mu.Lock()   // want `re1` `re2`   (two diagnostics on one line)
//
// Each quoted or backquoted string is a regular expression that must match
// the message of exactly one diagnostic reported on that line; diagnostics
// without a matching expectation, and expectations without a matching
// diagnostic, are failures. Kept free of *testing.T so the harness is usable
// from both tests and ad-hoc tools; tests report the returned problems.

// wantExpr extracts the expectation strings from a `// want` comment.
var wantExpr = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// expectation is one `// want` regexp at a file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// CheckGolden runs one analyzer over the single-directory package at dir
// (resolved through moduleRoot for imports) and compares the diagnostics
// against the package's `// want` comments. It returns one human-readable
// problem per mismatch; an empty slice means the golden run passed.
func CheckGolden(moduleRoot, dir string, a *Analyzer) ([]string, error) {
	pkg, err := LoadDir(moduleRoot, dir)
	if err != nil {
		return nil, err
	}
	diags, err := RunAnalyzers([]*Analyzer{a}, []*Package{pkg})
	if err != nil {
		return nil, err
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, raw := range wantExpr.FindAllString(text, -1) {
					var pattern string
					if raw[0] == '`' {
						pattern = raw[1 : len(raw)-1]
					} else {
						pattern, err = strconv.Unquote(raw)
						if err != nil {
							return nil, fmt.Errorf("%s: bad want string %s: %v", pos, raw, err)
						}
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	var problems []string
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.used || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, w := range wants {
		if !w.used {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re))
		}
	}
	return problems, nil
}
