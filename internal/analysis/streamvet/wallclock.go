package streamvet

import (
	"go/ast"
)

// NewWallClock builds the wallclock analyzer. pkgs are the import paths of
// the designated event-time packages.
//
// Inside a designated package, any reference to time.Now or time.Since is
// reported: event-time logic must take its notion of "now" from the injected
// eventtime.Clock (or from event timestamps and watermarks), or the
// crash-matrix and output-equality tests stop being deterministic and
// recovery replays diverge from the original run. Genuinely processing-time
// code — metrics stamps, observability probes, the wall-clock implementation
// of the Clock interface itself — opts out per line with
// //streamvet:allow wallclock.
func NewWallClock(pkgs ...string) *Analyzer {
	designated := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		designated[p] = true
	}
	a := &Analyzer{
		Name: "wallclock",
		Doc:  "bans time.Now/time.Since in designated event-time packages unless routed through the injected clock",
	}
	banned := map[string]bool{"Now": true, "Since": true}
	a.Run = func(pass *Pass) error {
		if !designated[pass.Pkg.Path()] {
			return nil
		}
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || !banned[sel.Sel.Name] {
					return true
				}
				obj := pass.TypesInfo.Uses[sel.Sel]
				if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
					return true
				}
				pass.Reportf(sel.Pos(),
					"time.%s in event-time package %s; route through the injected clock (eventtime.Clock) or annotate genuinely processing-time code with //streamvet:allow wallclock",
					sel.Sel.Name, pass.Pkg.Path())
				return true
			})
		}
		return nil
	}
	return a
}
