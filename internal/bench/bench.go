// Package bench is the perf-trajectory harness: a scenario benchmark driver
// that turns the engine's own observability substrate — in-band latency
// markers, registry histograms and their quantiles, checkpoint timings,
// supervised-recovery and rescale-downtime measurements — into persisted,
// diffable BENCH_<scenario>.json files so every future change can prove its
// performance delta mechanically instead of in prose.
//
// A Scenario couples a pipeline (the quickstart windowed count, frauddetect
// CEP, netmon heavy-hitter aggregation or ridesharing zone demand, all
// driven by internal/gen specs), an arrival shape (steady, zipfian hot-key,
// burst ramp via a paced source) and a config point (batch size ×
// parallelism × delivery guarantee, optionally a mid-run crash via
// internal/chaos or a mid-run rescale via internal/elastic). The runner
// executes the matrix, samples each job's metrics registry, and writes one
// schema-versioned Result per scenario; Compare diffs two result sets with a
// configurable regression threshold so CI can gate on "no silent perf loss".
package bench

import (
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// SchemaVersion is bumped whenever Result's JSON shape changes
// incompatibly; Compare refuses to diff across schema versions.
const SchemaVersion = 1

// Arrival shapes.
const (
	// ArrivalSteady offers records as fast as the pipeline admits, with a
	// uniform key distribution.
	ArrivalSteady = "steady"
	// ArrivalHotKey is ArrivalSteady with zipf-skewed keys, stressing
	// key-group balance (the skew the elastic controller must survive).
	ArrivalHotKey = "hotkey"
	// ArrivalBurst paces the source through a lull → burst → lull ramp, the
	// diurnal shape that motivates elasticity.
	ArrivalBurst = "burst"
)

// Pipeline names.
const (
	PipelineQuickstart  = "quickstart"
	PipelineFraudDetect = "frauddetect"
	PipelineNetmon      = "netmon"
	PipelineRideSharing = "ridesharing"
)

// Scenario is one cell of the benchmark matrix.
type Scenario struct {
	// Name keys the persisted file (BENCH_<Name>.json) and the compare
	// pairing; it must be unique within a matrix.
	Name string `json:"name"`
	// Pipeline selects the workload topology (Pipeline* constants).
	Pipeline string `json:"pipeline"`
	// Arrival selects the offered-load shape (Arrival* constants).
	Arrival string `json:"arrival"`
	// Batch is Config.MaxBatchSize (0/1 = per-record exchange).
	Batch int `json:"batch"`
	// Parallelism is the default node parallelism.
	Parallelism int `json:"parallelism"`
	// AtLeastOnce selects unaligned barriers; default exactly-once.
	AtLeastOnce bool `json:"at_least_once,omitempty"`
	// Crash kills the job mid-checkpoint via an armed chaos store and runs
	// it under supervision, measuring recovery time.
	Crash bool `json:"crash,omitempty"`
	// Rescale runs the pipeline under the elastic controller with a
	// scripted scale-out + scale-in, measuring rescale downtime.
	Rescale bool `json:"rescale,omitempty"`
	// Keys overrides the quickstart pipeline's key cardinality (0 = the
	// default 64). High-cardinality cells make checkpoint size a function of
	// total state, which is what the delta scenarios measure.
	Keys int `json:"keys,omitempty"`
	// Delta enables incremental (delta) checkpoints; the run then also
	// records checkpoint-bytes stats and the delta count, the sublinearity
	// metrics the perf gate tracks.
	Delta bool `json:"delta,omitempty"`
	// Columnar enables Config.ColumnarExec: whole-batch columnar operator
	// execution over the batched exchange. Only meaningful with Batch > 1.
	Columnar bool `json:"columnar,omitempty"`
	// Subscribers attaches this many live serve-layer CQL subscribers (TCP
	// clients on the stream SQL front door) to the pipeline's tapped source
	// stream for the whole run — the serving-workload cell: fan-out transport
	// overhead must not dent job throughput.
	Subscribers int `json:"subscribers,omitempty"`
	// Events is the stream length at scale 1.0.
	Events int `json:"events"`
	// Description says what the scenario exercises.
	Description string `json:"description,omitempty"`
}

// Guarantee renders the delivery mode for reports.
func (s Scenario) Guarantee() string {
	if s.AtLeastOnce {
		return "at-least-once"
	}
	return "exactly-once"
}

// Matrix returns the default scenario matrix: the four example pipelines
// swept across arrival shapes and config points, plus the fault-recovery and
// live-rescale cells whose metrics only exist under failure/reconfiguration.
func Matrix() []Scenario {
	return []Scenario{
		{
			Name: "quickstart-b1-p1", Pipeline: PipelineQuickstart, Arrival: ArrivalSteady,
			Batch: 1, Parallelism: 1, Events: 40_000,
			Description: "windowed count, per-record exchange baseline",
		},
		{
			Name: "quickstart-b64-p4", Pipeline: PipelineQuickstart, Arrival: ArrivalSteady,
			Batch: 64, Parallelism: 4, Events: 40_000,
			Description: "windowed count, batched exchange at fan-out parallelism",
		},
		{
			Name: "quickstart-columnar-b64-p4", Pipeline: PipelineQuickstart, Arrival: ArrivalSteady,
			Batch: 64, Parallelism: 4, Columnar: true, Events: 40_000,
			Description: "windowed count with whole-batch columnar operator execution",
		},
		{
			Name: "quickstart-serve", Pipeline: PipelineQuickstart, Arrival: ArrivalSteady,
			Batch: 64, Parallelism: 4, Subscribers: 8, Events: 40_000,
			Description: "windowed count with 8 live CQL subscribers on the serve front door (vs quickstart-b64-p4 unserved)",
		},
		{
			Name: "quickstart-hotkey-b64-p4", Pipeline: PipelineQuickstart, Arrival: ArrivalHotKey,
			Batch: 64, Parallelism: 4, Events: 40_000,
			Description: "windowed count under zipfian hot keys (key-group imbalance)",
		},
		{
			Name: "quickstart-alo-b64-p4", Pipeline: PipelineQuickstart, Arrival: ArrivalSteady,
			Batch: 64, Parallelism: 4, AtLeastOnce: true, Events: 40_000,
			Description: "windowed count with unaligned at-least-once barriers",
		},
		{
			Name: "frauddetect-b64-p2", Pipeline: PipelineFraudDetect, Arrival: ArrivalSteady,
			Batch: 64, Parallelism: 2, Events: 30_000,
			Description: "CEP probe-probe-hit pattern per card",
		},
		{
			Name: "netmon-hotkey-b64-p4", Pipeline: PipelineNetmon, Arrival: ArrivalHotKey,
			Batch: 64, Parallelism: 4, Events: 40_000,
			Description: "per-source byte aggregation over zipf-skewed flows",
		},
		{
			Name: "ridesharing-burst-b16-p2", Pipeline: PipelineRideSharing, Arrival: ArrivalBurst,
			Batch: 16, Parallelism: 2, Events: 15_000,
			Description: "zone demand windows under a paced burst ramp",
		},
		{
			Name: "quickstart-crash-b16-p2", Pipeline: PipelineQuickstart, Arrival: ArrivalSteady,
			Batch: 16, Parallelism: 2, Crash: true, Events: 8_000,
			Description: "mid-checkpoint crash, supervised restart: recovery time",
		},
		{
			Name: "quickstart-1mkey-delta", Pipeline: PipelineQuickstart, Arrival: ArrivalSteady,
			Batch: 64, Parallelism: 2, Keys: 1_000_000, Delta: true, Crash: true, Events: 1_000_000,
			Description: "1M-key windowed count with incremental checkpoints: checkpoint bytes and delta-chain recovery",
		},
		{
			Name: "quickstart-rescale-p2", Pipeline: PipelineQuickstart, Arrival: ArrivalSteady,
			Batch: 1, Parallelism: 2, Rescale: true, Events: 4_000,
			Description: "scripted live scale-out and scale-in: rescale downtime",
		},
	}
}

// Env fingerprints the machine a Result was recorded on, so a regression
// report can flag apples-to-oranges comparisons.
type Env struct {
	GoVersion      string `json:"go_version"`
	GOOS           string `json:"goos"`
	GOARCH         string `json:"goarch"`
	NumCPU         int    `json:"num_cpu"`
	GOMAXPROCS     int    `json:"gomaxprocs"`
	GitRev         string `json:"git_rev,omitempty"`
	RecordedAtUnix int64  `json:"recorded_at_unix"`
}

// Fingerprint captures the current environment. The git revision is best
// effort (empty outside a work tree).
func Fingerprint() Env {
	env := Env{
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		NumCPU:         runtime.NumCPU(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		RecordedAtUnix: time.Now().Unix(),
	}
	if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		env.GitRev = strings.TrimSpace(string(out))
	}
	return env
}

// Result is the persisted outcome of one scenario run — the perf trajectory
// record future PRs diff against. Latencies are in-band marker latencies
// (source → named instrument), not sink-side estimates.
type Result struct {
	Schema   int      `json:"schema"`
	Scenario Scenario `json:"scenario"`
	// Scale is the workload scale factor the run used; compares across
	// different scales are flagged.
	Scale float64 `json:"scale"`
	// Events is the actual (scaled) stream length.
	Events int `json:"events"`
	Env    Env `json:"env"`

	// ElapsedMs is total wall time, including any recovery or rescale.
	ElapsedMs float64 `json:"elapsed_ms"`
	// RecordsPerSec is source records per second over the measured window
	// (post-warmup where the scenario has one).
	RecordsPerSec float64 `json:"records_per_sec"`
	// LatencyP*Ns are end-to-end latency-marker quantiles at the sink.
	LatencyP50Ns int64 `json:"latency_p50_ns"`
	LatencyP95Ns int64 `json:"latency_p95_ns"`
	LatencyP99Ns int64 `json:"latency_p99_ns"`
	// Markers counts latency markers behind those quantiles.
	Markers int64 `json:"markers"`
	// MaxWatermarkLagMs is the worst watermark lag observed by the
	// sampling poller across all instances.
	MaxWatermarkLagMs int64 `json:"max_watermark_lag_ms"`
	// Checkpoint stats from the checkpoint.duration_ns histogram.
	Checkpoints      int64   `json:"checkpoints"`
	CheckpointMeanMs float64 `json:"checkpoint_mean_ms"`
	CheckpointMaxMs  float64 `json:"checkpoint_max_ms"`
	// Checkpoint size stats (checkpoint.bytes histogram) and the number of
	// incremental checkpoints, recorded for Delta scenarios only so older
	// baselines compare cleanly. Mean bytes is the sublinearity headline: a
	// delta chain keeps it far below the full-image max.
	CheckpointMeanBytes float64 `json:"checkpoint_mean_bytes,omitempty"`
	CheckpointMaxBytes  float64 `json:"checkpoint_max_bytes,omitempty"`
	DeltaCheckpoints    int64   `json:"delta_checkpoints,omitempty"`
	// RecoveryMs/Restarts are filled by crash scenarios (failure → first
	// post-restart output, per ha.SupervisionReport).
	RecoveryMs int64 `json:"recovery_ms,omitempty"`
	Restarts   int   `json:"restarts,omitempty"`
	// Rescale stats are filled by elastic scenarios: worst downtime (output
	// gap) and offline span across the run's rescales.
	Rescales          int   `json:"rescales,omitempty"`
	RescaleDowntimeMs int64 `json:"rescale_downtime_ms,omitempty"`
	RescaleOfflineMs  int64 `json:"rescale_offline_ms,omitempty"`
	// Output is the sink result count (sanity: a perf win that loses
	// results is a bug, not a win).
	Output int `json:"output"`
}
