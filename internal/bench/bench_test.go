package bench

import (
	"path/filepath"
	"testing"
)

// testScale keeps unit-test runs tiny; minEvents floors the stream so the
// crash and rescale machinery still trips.
const testScale = 0.01

func findScenario(t *testing.T, name string) Scenario {
	t.Helper()
	for _, sc := range Matrix() {
		if sc.Name == name {
			return sc
		}
	}
	t.Fatalf("scenario %s not in Matrix", name)
	return Scenario{}
}

func TestMatrixIsWellFormed(t *testing.T) {
	seen := map[string]bool{}
	crash, rescale := false, false
	for _, sc := range Matrix() {
		if seen[sc.Name] {
			t.Fatalf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if sc.Events <= 0 || sc.Parallelism <= 0 {
			t.Fatalf("scenario %s: non-positive events/parallelism", sc.Name)
		}
		if _, err := pipelineFor(sc, minEvents); err != nil {
			t.Fatalf("scenario %s: %v", sc.Name, err)
		}
		crash = crash || sc.Crash
		rescale = rescale || sc.Rescale
	}
	if !crash || !rescale {
		t.Fatal("matrix must include a crash and a rescale scenario")
	}
}

func TestRunSteadyScenario(t *testing.T) {
	res, err := Run(findScenario(t, "quickstart-b64-p4"), testScale)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema != SchemaVersion {
		t.Fatalf("schema: want %d, got %d", SchemaVersion, res.Schema)
	}
	if res.RecordsPerSec <= 0 {
		t.Fatalf("records/s not measured: %+v", res)
	}
	if res.Markers <= 0 || res.LatencyP99Ns <= 0 {
		t.Fatalf("marker latency not measured: markers=%d p99=%d", res.Markers, res.LatencyP99Ns)
	}
	if res.LatencyP50Ns > res.LatencyP99Ns {
		t.Fatalf("quantiles inverted: p50=%d p99=%d", res.LatencyP50Ns, res.LatencyP99Ns)
	}
	if res.Checkpoints <= 0 || res.CheckpointMeanMs < 0 {
		t.Fatalf("checkpoints not measured: %+v", res)
	}
	if res.Output <= 0 {
		t.Fatal("sink produced no output")
	}
	if res.Env.GoVersion == "" || res.Env.GOMAXPROCS <= 0 {
		t.Fatalf("env fingerprint missing: %+v", res.Env)
	}
}

func TestRunBurstScenario(t *testing.T) {
	res, err := Run(findScenario(t, "ridesharing-burst-b16-p2"), testScale)
	if err != nil {
		t.Fatal(err)
	}
	if res.RecordsPerSec <= 0 || res.Output <= 0 {
		t.Fatalf("burst run unmeasured: %+v", res)
	}
}

func TestRunCrashScenario(t *testing.T) {
	res, err := Run(findScenario(t, "quickstart-crash-b16-p2"), testScale)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts < 1 {
		t.Fatalf("crash scenario did not restart: %+v", res)
	}
	if res.RecoveryMs <= 0 {
		t.Fatalf("recovery time not measured: %+v", res)
	}
	if res.Output <= 0 {
		t.Fatal("no output after recovery")
	}
}

func TestRun1MKeyDeltaScenario(t *testing.T) {
	// testScale of the 1M-event trajectory is still a 10k-event run: large
	// enough for several checkpoints, a mid-delta-save crash, and a
	// delta-chain recovery.
	res, err := Run(findScenario(t, "quickstart-1mkey-delta"), testScale)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts < 1 {
		t.Fatalf("delta crash scenario did not restart: %+v", res)
	}
	if res.RecoveryMs <= 0 {
		t.Fatalf("recovery time not measured: %+v", res)
	}
	if res.DeltaCheckpoints < 1 {
		t.Fatalf("no incremental checkpoints recorded: %+v", res)
	}
	if res.CheckpointMeanBytes <= 0 || res.CheckpointMaxBytes < res.CheckpointMeanBytes {
		t.Fatalf("checkpoint byte stats not measured: mean=%.0f max=%.0f",
			res.CheckpointMeanBytes, res.CheckpointMaxBytes)
	}
	if res.Output <= 0 {
		t.Fatal("no output after recovery")
	}
}

func TestRunRescaleScenario(t *testing.T) {
	res, err := Run(findScenario(t, "quickstart-rescale-p2"), testScale)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rescales < 1 {
		t.Fatalf("rescale scenario did not rescale: %+v", res)
	}
	if res.RescaleDowntimeMs <= 0 {
		t.Fatalf("rescale downtime not measured: %+v", res)
	}
	if res.Output <= 0 {
		t.Fatal("no output across rescale")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	res, err := Run(findScenario(t, "quickstart-b1-p1"), testScale)
	if err != nil {
		t.Fatal(err)
	}
	path, err := WriteResult(dir, res)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_quickstart-b1-p1.json"); path != want {
		t.Fatalf("path: want %s, got %s", want, path)
	}
	got, err := ReadResult(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scenario.Name != res.Scenario.Name || got.Events != res.Events ||
		got.LatencyP99Ns != res.LatencyP99Ns || got.Schema != res.Schema {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, res)
	}
	set, err := ReadSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 || set[res.Scenario.Name].Events != res.Events {
		t.Fatalf("ReadSet mismatch: %+v", set)
	}
}
