package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FileFor returns the persisted filename for a scenario name.
func FileFor(name string) string { return "BENCH_" + name + ".json" }

// WriteResult persists one result as dir/BENCH_<scenario>.json (indented, so
// diffs are reviewable) and returns the path written.
func WriteResult(dir string, res Result) (string, error) {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, FileFor(res.Scenario.Name))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadResult loads one persisted result file.
func ReadResult(path string) (Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Result{}, err
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		return Result{}, fmt.Errorf("bench: %s: %w", path, err)
	}
	return res, nil
}

// ReadSet loads a result set. A directory is globbed for BENCH_*.json; a
// file path loads that single result.
func ReadSet(path string) (map[string]Result, error) {
	set := map[string]Result{}
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	paths := []string{path}
	if info.IsDir() {
		paths, err = filepath.Glob(filepath.Join(path, "BENCH_*.json"))
		if err != nil {
			return nil, err
		}
	}
	for _, p := range paths {
		res, err := ReadResult(p)
		if err != nil {
			return nil, err
		}
		set[res.Scenario.Name] = res
	}
	return set, nil
}

// DefaultThreshold is the Change (see Delta) above which Compare flags a
// regression when the caller doesn't pick one: 0.30 means "more than 1.3x
// worse".
const DefaultThreshold = 0.30

// metricDef describes one compared metric: its direction and the absolute
// floor below which both values are considered noise (microbenchmark jitter
// on sub-threshold values would otherwise drown the report in false alarms).
type metricDef struct {
	name         string
	value        func(Result) float64
	higherBetter bool
	floor        float64
}

var comparedMetrics = []metricDef{
	{"records_per_sec", func(r Result) float64 { return r.RecordsPerSec }, true, 0},
	{"latency_p50_ns", func(r Result) float64 { return float64(r.LatencyP50Ns) }, false, 50_000},
	{"latency_p99_ns", func(r Result) float64 { return float64(r.LatencyP99Ns) }, false, 100_000},
	{"checkpoint_mean_ms", func(r Result) float64 { return r.CheckpointMeanMs }, false, 0.5},
	{"checkpoint_mean_bytes", func(r Result) float64 { return r.CheckpointMeanBytes }, false, 4096},
	{"checkpoint_max_bytes", func(r Result) float64 { return r.CheckpointMaxBytes }, false, 4096},
	{"recovery_ms", func(r Result) float64 { return float64(r.RecoveryMs) }, false, 5},
	{"rescale_downtime_ms", func(r Result) float64 { return float64(r.RescaleDowntimeMs) }, false, 5},
}

// Delta is one metric comparison within one scenario.
type Delta struct {
	Scenario string  `json:"scenario"`
	Metric   string  `json:"metric"`
	Old      float64 `json:"old"`
	New      float64 `json:"new"`
	// Change is how many times worse the new value is, minus one — 0 means
	// unchanged, 1 means 2x worse, negative means improved — regardless of
	// the metric's direction. The ratio form keeps one threshold meaningful
	// for both throughput collapses and latency blowups.
	Change     float64 `json:"change"`
	Regression bool    `json:"regression"`
}

// appearedFromZero is the capped Change for a lower-is-better metric that
// was zero in the baseline but now exceeds its noise floor (a true ratio
// would be infinite, which JSON cannot carry).
const appearedFromZero = 99.0

// CompareReport is the outcome of diffing two result sets.
type CompareReport struct {
	Threshold float64 `json:"threshold"`
	Deltas    []Delta `json:"deltas"`
	// Missing lists scenarios present in old but absent from new.
	Missing []string `json:"missing,omitempty"`
	// Notes records skipped comparisons (scale mismatches, env changes).
	Notes []string `json:"notes,omitempty"`
}

// Regressions returns the deltas that crossed the threshold.
func (r CompareReport) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// Format renders the report for terminals and CI logs.
func (r CompareReport) Format() string {
	var b strings.Builder
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	for _, m := range r.Missing {
		fmt.Fprintf(&b, "missing: scenario %s has no new result\n", m)
	}
	for _, d := range r.Deltas {
		mark := "ok  "
		if d.Regression {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "%s %-28s %-20s %12.1f -> %12.1f  (%+.1f%%)\n",
			mark, d.Scenario, d.Metric, d.Old, d.New, d.Change*100)
	}
	regs := r.Regressions()
	if len(regs) == 0 {
		fmt.Fprintf(&b, "no regressions beyond %.0f%% threshold\n", r.Threshold*100)
	} else {
		fmt.Fprintf(&b, "%d regression(s) beyond %.0f%% threshold\n", len(regs), r.Threshold*100)
	}
	return b.String()
}

// CompareFiles loads two result sets (directories of BENCH_*.json or single
// files) and diffs them — the programmatic form of `benchdrive -compare`,
// usable directly from tests.
func CompareFiles(oldPath, newPath string, threshold float64) (CompareReport, error) {
	old, err := ReadSet(oldPath)
	if err != nil {
		return CompareReport{}, err
	}
	cur, err := ReadSet(newPath)
	if err != nil {
		return CompareReport{}, err
	}
	return Compare(old, cur, threshold)
}

// Compare diffs two result sets keyed by scenario name. threshold <= 0
// selects DefaultThreshold. Scenarios recorded at different scales are
// noted and skipped (the numbers aren't comparable); mismatched schema
// versions are an error.
func Compare(old, new map[string]Result, threshold float64) (CompareReport, error) {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	rep := CompareReport{Threshold: threshold}
	names := make([]string, 0, len(old))
	for name := range old {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		o := old[name]
		n, ok := new[name]
		if !ok {
			rep.Missing = append(rep.Missing, name)
			continue
		}
		if o.Schema != SchemaVersion || n.Schema != SchemaVersion {
			return rep, fmt.Errorf("bench: scenario %s: schema mismatch (old=%d new=%d, supported=%d)",
				name, o.Schema, n.Schema, SchemaVersion)
		}
		if o.Scale != n.Scale {
			rep.Notes = append(rep.Notes,
				fmt.Sprintf("scenario %s: scale mismatch (old=%g new=%g), skipped", name, o.Scale, n.Scale))
			continue
		}
		for _, m := range comparedMetrics {
			ov, nv := m.value(o), m.value(n)
			if ov == 0 && nv == 0 {
				continue // metric not produced by this scenario
			}
			if ov <= m.floor && nv <= m.floor {
				continue // both under the noise floor
			}
			var change float64
			if m.higherBetter {
				if nv > 0 {
					change = ov/nv - 1
				} else if ov > 0 {
					change = appearedFromZero // collapsed to zero
				}
			} else {
				if ov > 0 {
					change = nv/ov - 1
				} else if nv > m.floor {
					change = appearedFromZero
				}
			}
			rep.Deltas = append(rep.Deltas, Delta{
				Scenario: name, Metric: m.name, Old: ov, New: nv,
				Change: change, Regression: change > threshold,
			})
		}
	}
	return rep, nil
}
