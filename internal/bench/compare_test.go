package bench

import (
	"strings"
	"testing"
)

func baseline(name string) Result {
	return Result{
		Schema:        SchemaVersion,
		Scenario:      Scenario{Name: name},
		Scale:         1.0,
		RecordsPerSec: 100_000,
		LatencyP50Ns:  400_000,
		LatencyP99Ns:  2_000_000,
		Checkpoints:   10, CheckpointMeanMs: 3,
	}
}

func set(results ...Result) map[string]Result {
	m := map[string]Result{}
	for _, r := range results {
		m[r.Scenario.Name] = r
	}
	return m
}

func TestCompareDetectsInjectedRegression(t *testing.T) {
	old := set(baseline("a"))
	// Inject a synthetic regression: throughput halves, p99 triples.
	bad := baseline("a")
	bad.RecordsPerSec = 50_000
	bad.LatencyP99Ns = 6_000_000
	rep, err := Compare(old, set(bad), 0.30)
	if err != nil {
		t.Fatal(err)
	}
	regs := rep.Regressions()
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions, got %d: %+v", len(regs), regs)
	}
	byMetric := map[string]Delta{}
	for _, d := range regs {
		byMetric[d.Metric] = d
	}
	// Halved throughput is 2x worse: Change = 1.0 in ratio form.
	if d, ok := byMetric["records_per_sec"]; !ok || d.Change < 0.99 || d.Change > 1.01 {
		t.Fatalf("records_per_sec regression wrong: %+v", byMetric)
	}
	if d, ok := byMetric["latency_p99_ns"]; !ok || d.Change < 1.9 {
		t.Fatalf("latency_p99_ns regression wrong: %+v", byMetric)
	}
	if !strings.Contains(rep.Format(), "FAIL") {
		t.Fatalf("formatted report missing FAIL markers:\n%s", rep.Format())
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	old := set(baseline("a"))
	near := baseline("a")
	near.RecordsPerSec = 85_000  // -15%
	near.LatencyP99Ns = 2_300_000 // +15%
	rep, err := Compare(old, set(near), 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Fatalf("15%% drift under a 30%% threshold must pass, got %+v", regs)
	}
	if len(rep.Deltas) == 0 {
		t.Fatal("deltas should still be reported")
	}
}

func TestCompareImprovementIsNotRegression(t *testing.T) {
	old := set(baseline("a"))
	better := baseline("a")
	better.RecordsPerSec = 300_000 // 3x faster
	better.LatencyP99Ns = 500_000  // 4x lower
	rep, err := Compare(old, set(better), 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Fatalf("improvements flagged as regressions: %+v", regs)
	}
}

func TestCompareNoiseFloorSuppressesTinyLatencies(t *testing.T) {
	old := set(baseline("a"))
	old["a"] = func() Result {
		r := old["a"]
		r.LatencyP50Ns = 10_000 // both sides under the 50µs floor
		return r
	}()
	noisy := old["a"]
	noisy.LatencyP50Ns = 40_000 // 4x, but still sub-floor
	rep, err := Compare(old, set(noisy), 0.30)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.Deltas {
		if d.Metric == "latency_p50_ns" {
			t.Fatalf("sub-floor latency compared: %+v", d)
		}
	}
}

func TestCompareScaleMismatchSkipped(t *testing.T) {
	old := set(baseline("a"))
	rescaled := baseline("a")
	rescaled.Scale = 0.25
	rescaled.RecordsPerSec = 1 // would be a huge regression if compared
	rep, err := Compare(old, set(rescaled), 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Deltas) != 0 {
		t.Fatalf("mismatched scales must not be compared: %+v", rep.Deltas)
	}
	if len(rep.Notes) != 1 || !strings.Contains(rep.Notes[0], "scale mismatch") {
		t.Fatalf("expected a scale-mismatch note, got %+v", rep.Notes)
	}
}

func TestCompareSchemaMismatchErrors(t *testing.T) {
	old := set(baseline("a"))
	future := baseline("a")
	future.Schema = SchemaVersion + 1
	if _, err := Compare(old, set(future), 0.30); err == nil {
		t.Fatal("schema mismatch must be an error, not a silent skip")
	}
}

func TestCompareMissingScenarioReported(t *testing.T) {
	old := set(baseline("a"), baseline("b"))
	rep, err := Compare(old, set(baseline("a")), 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Missing) != 1 || rep.Missing[0] != "b" {
		t.Fatalf("missing scenario not reported: %+v", rep.Missing)
	}
}

func TestCompareRecoveryAppearingFromZeroFlagged(t *testing.T) {
	old := set(baseline("a")) // RecoveryMs zero
	degraded := baseline("a")
	degraded.RecoveryMs = 400
	rep, err := Compare(old, set(degraded), 0.30)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range rep.Regressions() {
		if d.Metric == "recovery_ms" {
			found = true
		}
	}
	if !found {
		t.Fatalf("recovery_ms appearing from zero must regress: %+v", rep.Deltas)
	}
}

func TestCompareDefaultThreshold(t *testing.T) {
	rep, err := Compare(set(baseline("a")), set(baseline("a")), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Threshold != DefaultThreshold {
		t.Fatalf("threshold: want %g, got %g", DefaultThreshold, rep.Threshold)
	}
}
