package bench

import (
	"fmt"

	"repro/internal/cep"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/window"
)

// pipeline is a benchmark workload wired for measurement: every pipeline
// names its source node "src" (throughput counter), its sink node "out"
// (end-to-end marker latency histogram), and designates the keyed hot
// operator as the node an elastic scenario scales.
type pipeline struct {
	events []core.Event
	source string
	sink   string
	scaled string
	// build wires the topology; tap, when non-nil, is inserted on the source
	// stream (only the quickstart pipeline honours it — the serve scenario's
	// attachment point).
	build func(b *core.Builder, src core.SourceFactory, srcOpts []core.SourceOption, sink *core.CollectSink, tap core.Tap)
}

// pipelineFor materialises the scenario's input stream (deterministic in the
// scenario, so every run and every compare sees identical data) and returns
// the topology builder.
func pipelineFor(sc Scenario, n int) (pipeline, error) {
	hot := sc.Arrival == ArrivalHotKey
	switch sc.Pipeline {
	case PipelineQuickstart:
		return quickstartPipeline(n, hot, sc.Keys), nil
	case PipelineFraudDetect:
		return fraudPipeline(n, hot), nil
	case PipelineNetmon:
		return netmonPipeline(n, hot), nil
	case PipelineRideSharing:
		return ridesharingPipeline(n), nil
	}
	return pipeline{}, fmt.Errorf("bench: unknown pipeline %q", sc.Pipeline)
}

// quickstartPipeline is the canonical windowed count: keyed stream into a
// 5s tumbling count window. keys = 0 selects the default 64-key stream;
// high-cardinality cells pass the scenario's Keys override.
func quickstartPipeline(n int, hot bool, keys int) pipeline {
	if keys <= 0 {
		keys = 64
	}
	spec := gen.Spec{N: n, Keys: keys, IntervalMs: 10, Seed: 42}
	if hot {
		spec.ZipfS = 1.4
	}
	return pipeline{
		events: gen.Events(spec),
		source: "src", sink: "out", scaled: "count-5s",
		build: func(b *core.Builder, src core.SourceFactory, srcOpts []core.SourceOption, sink *core.CollectSink, tap core.Tap) {
			s := b.Source("src", src, srcOpts...)
			if tap != nil {
				s = s.TapInto("tap", tap)
			}
			keyed := s.KeyBy(func(e core.Event) string { return e.Key })
			window.Apply(keyed, "count-5s", window.NewTumbling(5_000), window.CountAggregate()).
				Sink("out", sink.Factory())
		},
	}
}

// fraudPipeline is the frauddetect example's CEP branch: the
// probe-probe-hit pattern per card.
func fraudPipeline(n int, hot bool) pipeline {
	spec := gen.FraudSpec(n, 50, 0.03, 7)
	if hot {
		spec.ZipfS = 1.4
	}
	small := func(e core.Event) bool { return e.Value.(gen.Transaction).Amount < 100 }
	large := func(e core.Event) bool { return e.Value.(gen.Transaction).Amount >= 500 }
	pattern := cep.Begin("probe1", small).
		FollowedBy("probe2", small).
		FollowedBy("hit", large).
		Within(60_000).
		MustBuild()
	return pipeline{
		events: gen.Events(spec),
		source: "src", sink: "out", scaled: "pattern",
		build: func(b *core.Builder, src core.SourceFactory, srcOpts []core.SourceOption, sink *core.CollectSink, _ core.Tap) {
			keyed := b.Source("src", src, srcOpts...).
				KeyBy(func(e core.Event) string { return e.Value.(gen.Transaction).Card })
			cep.PatternStream(keyed, "pattern", pattern, func(card string, m cep.Match, emit func(core.Event)) {
				hit := m.Events["hit"][0].Value.(gen.Transaction)
				emit(core.Event{Key: card, Timestamp: m.End, Value: hit.Amount})
			}, cep.SkipPastLastEvent()).Sink("out", sink.Factory())
		},
	}
}

// netmonPipeline is the netmon example's aggregation core: per-source byte
// totals in tumbling windows over (by default zipf-skewed) flows.
func netmonPipeline(n int, hot bool) pipeline {
	spec := gen.FlowSpec(n, 2_000, 99)
	if !hot {
		spec.ZipfS = 0 // steady variant: uniform sources
	}
	return pipeline{
		events: gen.Events(spec),
		source: "src", sink: "out", scaled: "bytes-10s",
		build: func(b *core.Builder, src core.SourceFactory, srcOpts []core.SourceOption, sink *core.CollectSink, _ core.Tap) {
			keyed := b.Source("src", src, srcOpts...).
				KeyBy(func(e core.Event) string { return e.Value.(gen.NetFlow).SrcIP })
			window.Apply(keyed, "bytes-10s", window.NewTumbling(10_000),
				window.FloatAggregate(window.Sum,
					func(e core.Event) float64 { return float64(e.Value.(gen.NetFlow).Bytes) })).
				Sink("out", sink.Factory())
		},
	}
}

// ridesharingPipeline is the ridesharing example's demand branch: trips
// re-keyed by pickup zone into sliding demand windows.
func ridesharingPipeline(n int) pipeline {
	spec := gen.TripSpec(n, 200, 12, 11)
	return pipeline{
		events: gen.Events(spec),
		source: "src", sink: "out", scaled: "demand-60s",
		build: func(b *core.Builder, src core.SourceFactory, srcOpts []core.SourceOption, sink *core.CollectSink, _ core.Tap) {
			zoneKeyed := b.Source("src", src, srcOpts...).
				Map("pickup-zone", func(e core.Event) (core.Event, bool) {
					t := e.Value.(gen.Trip)
					e.Key = fmt.Sprintf("zone%d", t.ZoneFrom)
					e.Value = 1.0
					return e, true
				}).
				KeyBy(func(e core.Event) string { return e.Key })
			window.Apply(zoneKeyed, "demand-60s", window.NewSliding(60_000, 15_000), window.CountAggregate()).
				Sink("out", sink.Factory())
		},
	}
}
