package bench

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/cql"
	"repro/internal/elastic"
	"repro/internal/ha"
	"repro/internal/metrics"
	"repro/internal/serve"
)

const (
	// markerEvery injects a latency marker every this many source records.
	markerEvery = 32
	// minEvents floors the scaled stream length so crash/rescale scenarios
	// still cross their checkpoint and decision thresholds at tiny scales.
	minEvents = 500
	// warmupFraction of the stream runs before histograms and meters are
	// reset, separating JIT/pool/backpressure ramp-up from the measured
	// window (steady scenarios only; crash and rescale runs measure the
	// whole disturbance on purpose).
	warmupFraction = 5 // 1/5 of the stream
	// pollEvery is the watch goroutine's sampling interval for watermark
	// lag and the warmup threshold.
	pollEvery = 500 * time.Microsecond
	// runTimeout bounds one scenario so a wedged pipeline fails the bench
	// instead of hanging CI.
	runTimeout = 2 * time.Minute
)

// Run executes one scenario at the given workload scale and returns its
// Result. Scale 1.0 is the recorded trajectory size; CI uses a smaller scale
// with the same scenario names.
func Run(sc Scenario, scale float64) (Result, error) {
	if scale <= 0 {
		scale = 1.0
	}
	n := int(float64(sc.Events) * scale)
	if n < minEvents {
		n = minEvents
	}
	p, err := pipelineFor(sc, n)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Schema:   SchemaVersion,
		Scenario: sc,
		Scale:    scale,
		Events:   n,
		Env:      Fingerprint(),
	}
	ctx, cancel := context.WithTimeout(context.Background(), runTimeout)
	defer cancel()
	switch {
	case sc.Crash:
		err = runCrash(ctx, sc, p, n, &res)
	case sc.Rescale:
		err = runRescale(ctx, sc, p, n, &res)
	default:
		err = runSteady(ctx, sc, p, n, &res)
	}
	if err != nil {
		return Result{}, fmt.Errorf("bench: scenario %s: %w", sc.Name, err)
	}
	return res, nil
}

// RunMatrix runs every scenario, writing one BENCH_<name>.json per scenario
// into outDir when outDir is non-empty, and progress lines to log when
// non-nil.
func RunMatrix(scenarios []Scenario, scale float64, outDir string, log io.Writer) ([]Result, error) {
	logf := func(format string, args ...any) {
		if log != nil {
			fmt.Fprintf(log, format, args...)
		}
	}
	results := make([]Result, 0, len(scenarios))
	for _, sc := range scenarios {
		start := time.Now()
		res, err := Run(sc, scale)
		if err != nil {
			return results, err
		}
		logf("%-28s %9.0f rec/s  p50=%-8v p99=%-8v ckpt=%d rec=%dms down=%dms (%v)\n",
			sc.Name, res.RecordsPerSec,
			time.Duration(res.LatencyP50Ns).Round(time.Microsecond),
			time.Duration(res.LatencyP99Ns).Round(time.Microsecond),
			res.Checkpoints, res.RecoveryMs, res.RescaleDowntimeMs,
			time.Since(start).Round(time.Millisecond))
		if outDir != "" {
			path, err := WriteResult(outDir, res)
			if err != nil {
				return results, err
			}
			logf("  wrote %s\n", path)
		}
		results = append(results, res)
	}
	return results, nil
}

// baseConfig is the instrumented job configuration every scenario starts
// from. CheckpointEvery is per source instance, sized for several completed
// checkpoints per run so checkpoint timings are always populated.
func baseConfig(sc Scenario, n int, store core.SnapshotStore) core.Config {
	par := sc.Parallelism
	if par < 1 {
		par = 1
	}
	ce := n / (6 * par)
	if ce < 50 {
		ce = 50
	}
	return core.Config{
		Name:                  sc.Name,
		DefaultParallelism:    par,
		MaxBatchSize:          sc.Batch,
		ColumnarExec:          sc.Columnar,
		AtLeastOnce:           sc.AtLeastOnce,
		SnapshotStore:         store,
		CheckpointEvery:       ce,
		Instrument:            true,
		LatencyMarkerInterval: markerEvery,
		DeltaCheckpoints:      sc.Delta,
	}
}

// watch polls a (possibly changing) registry while a scenario runs: it
// tracks the worst watermark lag across all instances and, when warmAt > 0,
// resets every histogram and meter once the source has emitted warmAt
// records, opening the clean measured window.
type watch struct {
	mu      sync.Mutex
	reg     *metrics.Registry
	source  string
	warmAt  int64
	warmCap int64
	warmed  bool
	baseOut int64
	measure time.Time
	maxLag  int64
	stop    chan struct{}
	done    chan struct{}
}

func newWatch(reg *metrics.Registry, source string, warmAt, warmCap int64) *watch {
	w := &watch{
		reg: reg, source: source, warmAt: warmAt, warmCap: warmCap,
		measure: time.Now(),
		stop:    make(chan struct{}), done: make(chan struct{}),
	}
	go w.run()
	return w
}

// setRegistry re-points the watch at a new incarnation's registry (crash and
// rescale scenarios rebuild the job, and with it the registry, mid-run).
func (w *watch) setRegistry(reg *metrics.Registry) {
	w.mu.Lock()
	w.reg = reg
	w.mu.Unlock()
}

func (w *watch) run() {
	defer close(w.done)
	ticker := time.NewTicker(pollEvery)
	defer ticker.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-ticker.C:
			w.sample()
		}
	}
}

func (w *watch) sample() {
	w.mu.Lock()
	reg := w.reg
	warmed, warmAt := w.warmed, w.warmAt
	w.mu.Unlock()

	var lag int64
	reg.Each(metrics.Visitor{Gauge: func(name string, v int64) {
		if strings.HasSuffix(name, ".watermark_lag_ms") && v > lag {
			lag = v
		}
	}})
	out := reg.Counter("node." + w.source + ".out").Value()

	w.mu.Lock()
	if lag > w.maxLag {
		w.maxLag = lag
	}
	w.mu.Unlock()

	if !warmed && warmAt > 0 && out >= warmAt {
		if out >= w.warmCap {
			// The run outpaced the poller: resetting now would leave almost
			// no measured window. Keep whole-run stats instead.
			w.mu.Lock()
			w.warmed = true
			w.mu.Unlock()
			return
		}
		// End of warmup: clear distribution instruments so quantiles and
		// rates describe only the measured window (checkpoint durations are
		// kept — they don't ramp, and tiny runs may not checkpoint again).
		// Counters keep counting; throughput is the delta past this point.
		reg.Each(metrics.Visitor{
			Histogram: func(name string, h *metrics.Histogram) {
				if name != "checkpoint.duration_ns" {
					h.Reset()
				}
			},
			Meter: func(_ string, m *metrics.Meter) { m.Reset() },
		})
		w.mu.Lock()
		w.warmed = true
		w.baseOut = reg.Counter("node." + w.source + ".out").Value()
		w.measure = time.Now()
		w.maxLag = 0
		w.mu.Unlock()
	}
}

// finish stops the poller and returns the measured window's start, the
// source-records base at that point, and the worst watermark lag seen.
func (w *watch) finish() (measureStart time.Time, baseOut, maxLag int64) {
	close(w.stop)
	<-w.done
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.measure, w.baseOut, w.maxLag
}

// fillFromRegistry reads the observability substrate the run leaves behind:
// marker-latency quantiles at the sink and checkpoint durations.
func fillFromRegistry(res *Result, reg *metrics.Registry, sinkNode string) {
	lat := reg.Histogram("node." + sinkNode + ".latency_ns")
	res.LatencyP50Ns = lat.Quantile(0.50)
	res.LatencyP95Ns = lat.Quantile(0.95)
	res.LatencyP99Ns = lat.Quantile(0.99)
	res.Markers = lat.Count()
	ck := reg.Histogram("checkpoint.duration_ns").Export()
	res.Checkpoints = ck.Count
	if ck.Count > 0 {
		res.CheckpointMeanMs = float64(ck.Sum) / float64(ck.Count) / 1e6
		res.CheckpointMaxMs = float64(ck.Max) / 1e6
	}
	// Checkpoint size and delta counts are recorded for Delta scenarios only:
	// older baselines predate these fields, and Compare treats a metric that
	// appears from zero as a regression.
	if res.Scenario.Delta {
		cb := reg.Histogram("checkpoint.bytes").Export()
		if cb.Count > 0 {
			res.CheckpointMeanBytes = float64(cb.Sum) / float64(cb.Count)
			res.CheckpointMaxBytes = float64(cb.Max)
		}
		res.DeltaCheckpoints = reg.Counter("checkpoint.deltas").Value()
	}
}

// sourceFactory shapes the offered load: steady and hotkey replay the
// materialised stream as fast as the pipeline admits; burst paces it through
// lull → burst → lull.
func sourceFactory(sc Scenario, p pipeline, n int) core.SourceFactory {
	if sc.Arrival == ArrivalBurst {
		third := n / 3
		return elastic.NewPacedSourceFactory(p.events, func(i int) time.Duration {
			if i < third || i >= 2*third {
				return 200 * time.Microsecond
			}
			return 0
		})
	}
	return core.NewSliceSourceFactory(p.events)
}

// runSteady measures throughput and tails on an undisturbed run: warmup,
// reset, measured window. Scenarios with Subscribers > 0 additionally run a
// serve front door with that many live TCP subscribers on the tapped source
// stream for the whole run.
func runSteady(ctx context.Context, sc Scenario, p pipeline, n int, res *Result) error {
	sink := core.NewCollectSink()
	b := core.NewBuilder(baseConfig(sc, n, core.NewMemorySnapshotStore()))
	var tap core.Tap
	var drained []chan struct{}
	if sc.Subscribers > 0 {
		srv := serve.NewServer(serve.Options{})
		tap = srv.RegisterStream("events", func(e core.Event) (cql.Row, bool) {
			return cql.Row{"k": e.Key, "v": e.Value.(float64)}, true
		})
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			return err
		}
		defer srv.Close()
		for i := 0; i < sc.Subscribers; i++ {
			c, err := serve.Dial(srv.Addr())
			if err != nil {
				return err
			}
			defer c.Close()
			sub, err := c.Subscribe("bench", "ISTREAM (SELECT k, v FROM events [NOW])",
				serve.SubscribeOptions{Buffer: 1024})
			if err != nil {
				return err
			}
			done := make(chan struct{})
			go func() {
				defer close(done)
				for range sub.Frames {
					// Discard: the scenario measures fan-out transport cost,
					// not a client workload.
				}
			}()
			drained = append(drained, done)
		}
	}
	p.build(b, sourceFactory(sc, p, n), []core.SourceOption{core.WithBoundedDisorder(0)}, sink, tap)
	job, err := b.Build()
	if err != nil {
		return err
	}
	reg := job.Metrics()
	w := newWatch(reg, p.source, int64(n/warmupFraction), int64(n/2))
	start := time.Now()
	if err := job.Run(ctx); err != nil {
		w.finish()
		return err
	}
	end := time.Now()
	measureStart, baseOut, maxLag := w.finish()
	// Subscribers drain to EOS after the measured window closes; a wedged
	// front door fails the scenario instead of hanging it.
	for _, d := range drained {
		select {
		case <-d:
		case <-ctx.Done():
			return fmt.Errorf("subscriber drain: %w", ctx.Err())
		}
	}

	res.ElapsedMs = float64(end.Sub(start).Nanoseconds()) / 1e6
	total := reg.Counter("node." + p.source + ".out").Value()
	if window := end.Sub(measureStart).Seconds(); window > 0 && total > baseOut {
		res.RecordsPerSec = float64(total-baseOut) / window
	} else if secs := end.Sub(start).Seconds(); secs > 0 {
		res.RecordsPerSec = float64(n) / secs
	}
	res.MaxWatermarkLagMs = maxLag
	res.Output = sink.Len()
	fillFromRegistry(res, reg, p.sink)
	return nil
}

// runCrash kills the job mid-checkpoint via an armed chaos store and runs it
// under supervision: the headline metrics are recovery time (failure → first
// post-restart output) and whole-run throughput including the disturbance.
func runCrash(ctx context.Context, sc Scenario, p pipeline, n int, res *Result) error {
	// The source is paced (and pinned to one instance) so several
	// checkpoints complete mid-stream instead of the whole run draining in
	// one burst; the crash ordinal then lands inside the second checkpoint's
	// saves (source + every operator instance save once per checkpoint), so
	// recovery restores a completed checkpoint and replays a real tail. A
	// delta scenario crashes two checkpoints later, so the checkpoint it
	// recovers from is a delta and the restore resolves a real chain.
	saves := 1 + 2*sc.Parallelism
	crashAt := saves + 1
	if sc.Delta {
		crashAt = 3*saves + 1
	}
	store := chaos.Wrap(core.NewMemorySnapshotStore(), chaos.FaultPlan{}).
		Arm(chaos.CrashMidSave, crashAt)
	// Delta cells sleep every Nth record instead of every record: the pacing
	// exists to let checkpoints land mid-stream, not to stretch a 1M-event
	// run into minutes (a nominal 40µs sleep costs ~1ms of wall time at
	// kernel timer granularity). Bounding the sleep count keeps the pacing
	// cost roughly constant across scales; the small per-record-paced crash
	// cells keep their recorded trajectories.
	stride := 1
	if sc.Delta {
		stride = n / 2_000
		if stride < 1 {
			stride = 1
		}
	}
	pace := func(i int) time.Duration {
		if i%stride == 0 {
			return 40 * time.Microsecond
		}
		return 0
	}
	factory := func(sink *core.CollectSink, st core.SnapshotStore) (*core.Job, error) {
		cfg := baseConfig(sc, n, st)
		cfg.ChannelCapacity = 8
		cfg.WatermarkInterval = 1
		b := core.NewBuilder(cfg)
		p.build(b, elastic.NewPacedSourceFactory(p.events, pace),
			[]core.SourceOption{core.WithBoundedDisorder(0), core.WithParallelism(1)}, sink, nil)
		return b.Build()
	}
	var mu sync.Mutex
	var lastReg *metrics.Registry
	w := newWatch(metrics.NewRegistry(), p.source, 0, 0)
	onStart := func(_ int, job *core.Job) {
		mu.Lock()
		lastReg = job.Metrics()
		mu.Unlock()
		w.setRegistry(job.Metrics())
		store.SetKill(func() { job.Fail(chaos.ErrInjectedCrash) })
	}
	start := time.Now()
	out, rep, err := ha.RunSupervised(ctx, factory, store,
		ha.RestartStrategy{MaxRestarts: 3, Delay: 5 * time.Millisecond}, onStart)
	end := time.Now()
	_, _, maxLag := w.finish()
	if err != nil {
		return err
	}

	res.ElapsedMs = float64(end.Sub(start).Nanoseconds()) / 1e6
	if secs := end.Sub(start).Seconds(); secs > 0 {
		res.RecordsPerSec = float64(n) / secs
	}
	res.MaxWatermarkLagMs = maxLag
	res.RecoveryMs = rep.RecoveryMillis
	res.Restarts = rep.Restarts
	res.Output = len(out)
	mu.Lock()
	reg := lastReg
	mu.Unlock()
	if reg != nil {
		fillFromRegistry(res, reg, p.sink)
	}
	return nil
}

// runRescale drives the pipeline through a scripted scale-out and scale-in
// under the elastic controller, measuring per-rescale downtime and offline
// spans. The source is paced (and pinned to parallelism 1) so savepoint
// barriers land mid-stream, exactly like the E17 experiment.
func runRescale(ctx context.Context, sc Scenario, p pipeline, n int, res *Result) error {
	build := func(par int, sink *core.CollectSink, st core.SnapshotStore) (*core.Job, error) {
		cfg := baseConfig(sc, n, st)
		cfg.DefaultParallelism = par
		cfg.ChannelCapacity = 8
		cfg.WatermarkInterval = 1
		b := core.NewBuilder(cfg)
		pace := func(int) time.Duration { return 50 * time.Microsecond }
		p.build(b, elastic.NewPacedSourceFactory(p.events, pace),
			[]core.SourceOption{core.WithBoundedDisorder(0), core.WithParallelism(1)}, sink, nil)
		return b.Build()
	}
	w := newWatch(metrics.NewRegistry(), p.source, 0, 0)
	var mu sync.Mutex
	var lastReg *metrics.Registry
	up := sc.Parallelism * 2
	quarter, threeQuarters := int64(n/4), int64(3*n/4)
	ctrl, err := elastic.New(elastic.Config{
		Node:  p.scaled,
		Build: build,
		Store: core.NewMemorySnapshotStore(),
		Decider: func(s elastic.Sample, current int) int {
			switch {
			case s.Records > threeQuarters:
				return sc.Parallelism // scale back in for the tail
			case s.Records > quarter:
				return up // scale out once the stream is established
			}
			return current
		},
		InitialParallelism: sc.Parallelism,
		SampleEvery:        3 * time.Millisecond,
		Restart:            ha.RestartStrategy{MaxRestarts: 2, Delay: 5 * time.Millisecond},
		OnStart: func(_ int, job *core.Job) {
			mu.Lock()
			lastReg = job.Metrics()
			mu.Unlock()
			w.setRegistry(job.Metrics())
		},
	})
	if err != nil {
		w.finish()
		return err
	}
	start := time.Now()
	out, rep, err := ctrl.Run(ctx)
	end := time.Now()
	_, _, maxLag := w.finish()
	if err != nil {
		return err
	}

	res.ElapsedMs = float64(end.Sub(start).Nanoseconds()) / 1e6
	if secs := end.Sub(start).Seconds(); secs > 0 {
		res.RecordsPerSec = float64(n) / secs
	}
	res.MaxWatermarkLagMs = maxLag
	res.Rescales = len(rep.Rescales)
	for _, ev := range rep.Rescales {
		if ms := ev.Downtime.Milliseconds(); ms > res.RescaleDowntimeMs {
			res.RescaleDowntimeMs = ms
		}
		if ms := ev.Offline.Milliseconds(); ms > res.RescaleOfflineMs {
			res.RescaleOfflineMs = ms
		}
	}
	res.Restarts = rep.Restarts
	res.Output = len(out)
	mu.Lock()
	reg := lastReg
	mu.Unlock()
	if reg != nil {
		fillFromRegistry(res, reg, p.sink)
	}
	return nil
}
