package cep

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
)

func ev(ts int64, v string) core.Event {
	return core.Event{Timestamp: ts, Value: v}
}

func isVal(s string) Predicate {
	return func(e core.Event) bool { return e.Value.(string) == s }
}

func TestSimpleSequenceRelaxed(t *testing.T) {
	p := Begin("a", isVal("a")).FollowedBy("b", isVal("b")).MustBuild()
	m := NewMatcher(p)
	var matches []Match
	for i, v := range []string{"a", "x", "b"} {
		matches = append(matches, m.Process(ev(int64(i), v))...)
	}
	if len(matches) != 1 {
		t.Fatalf("want 1 match, got %d", len(matches))
	}
	if matches[0].Start != 0 || matches[0].End != 2 {
		t.Fatalf("match span wrong: %+v", matches[0])
	}
}

func TestStrictContiguityKillsOnGap(t *testing.T) {
	p := Begin("a", isVal("a")).Next("b", isVal("b")).MustBuild()
	m := NewMatcher(p)
	var matches []Match
	for i, v := range []string{"a", "x", "b"} {
		matches = append(matches, m.Process(ev(int64(i), v))...)
	}
	if len(matches) != 0 {
		t.Fatalf("strict pattern must not match across gap, got %d", len(matches))
	}
	// Adjacent a,b does match.
	m2 := NewMatcher(p)
	var m2got []Match
	for i, v := range []string{"a", "b"} {
		m2got = append(m2got, m2.Process(ev(int64(i), v))...)
	}
	if len(m2got) != 1 {
		t.Fatalf("adjacent strict: want 1 match, got %d", len(m2got))
	}
}

func TestMultipleOverlappingMatches(t *testing.T) {
	// a a b under relaxed semantics: both a's pair with b.
	p := Begin("a", isVal("a")).FollowedBy("b", isVal("b")).MustBuild()
	m := NewMatcher(p)
	var matches []Match
	for i, v := range []string{"a", "a", "b"} {
		matches = append(matches, m.Process(ev(int64(i), v))...)
	}
	if len(matches) != 2 {
		t.Fatalf("want 2 overlapping matches, got %d", len(matches))
	}
}

func TestWithinPrunesOldRuns(t *testing.T) {
	p := Begin("a", isVal("a")).FollowedBy("b", isVal("b")).Within(10).MustBuild()
	m := NewMatcher(p)
	m.Process(ev(0, "a"))
	matches := m.Process(ev(50, "b")) // too late
	if len(matches) != 0 {
		t.Fatalf("expired run matched: %d", len(matches))
	}
	if m.PrunedRuns == 0 {
		t.Fatal("pruning not recorded")
	}
	m.Process(ev(60, "a"))
	if got := m.Process(ev(65, "b")); len(got) != 1 {
		t.Fatalf("in-window match missed: %d", len(got))
	}
}

func TestKleeneOneOrMore(t *testing.T) {
	// a b+ c — b's accumulate.
	p := Begin("a", isVal("a")).FollowedBy("b", isVal("b")).OneOrMore().
		FollowedBy("c", isVal("c")).MustBuild()
	m := NewMatcher(p)
	var matches []Match
	for i, v := range []string{"a", "b", "b", "c"} {
		matches = append(matches, m.Process(ev(int64(i), v))...)
	}
	if len(matches) == 0 {
		t.Fatal("kleene pattern did not match")
	}
	// The greediest match holds both b's.
	maxB := 0
	for _, match := range matches {
		if n := len(match.Events["b"]); n > maxB {
			maxB = n
		}
	}
	if maxB != 2 {
		t.Fatalf("greediest kleene match should hold 2 b's, got %d", maxB)
	}
}

func TestKleeneFinalStageExtends(t *testing.T) {
	p := Begin("a", isVal("a")).FollowedBy("b", isVal("b")).OneOrMore().MustBuild()
	m := NewMatcher(p)
	var matches []Match
	for i, v := range []string{"a", "b", "b"} {
		matches = append(matches, m.Process(ev(int64(i), v))...)
	}
	// Emits on first b and on the extension.
	if len(matches) < 2 {
		t.Fatalf("kleene final stage should emit per extension, got %d", len(matches))
	}
}

func TestPatternValidation(t *testing.T) {
	if _, err := (&PatternBuilder{}).Build(); err == nil {
		t.Fatal("empty pattern accepted")
	}
	if _, err := Begin("x", isVal("a")).FollowedBy("x", isVal("b")).Build(); err == nil {
		t.Fatal("duplicate stage names accepted")
	}
	if _, err := Begin("a", nil).Build(); err == nil {
		t.Fatal("nil predicate accepted")
	}
}

// bruteForce enumerates all matches of a relaxed, kleene-free pattern by
// exhaustive subsequence search — the reference for the NFA property test.
func bruteForce(preds []Predicate, within int64, events []core.Event) int {
	count := 0
	var rec func(stage int, startIdx int, startTS int64)
	rec = func(stage, startIdx int, startTS int64) {
		if stage == len(preds) {
			count++
			return
		}
		for i := startIdx; i < len(events); i++ {
			e := events[i]
			if stage > 0 && within > 0 && e.Timestamp-startTS > within {
				break
			}
			if preds[stage](e) {
				ts := startTS
				if stage == 0 {
					ts = e.Timestamp
				}
				rec(stage+1, i+1, ts)
			}
		}
	}
	rec(0, 0, 0)
	return count
}

func TestNFAMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	alphabet := []string{"a", "b", "c"}
	for trial := 0; trial < 50; trial++ {
		var events []core.Event
		n := 10 + rng.Intn(15)
		for i := 0; i < n; i++ {
			events = append(events, ev(int64(i*3), alphabet[rng.Intn(len(alphabet))]))
		}
		within := int64(0)
		if rng.Intn(2) == 0 {
			within = int64(10 + rng.Intn(30))
		}
		b := Begin("s0", isVal("a")).FollowedBy("s1", isVal("b"))
		preds := []Predicate{isVal("a"), isVal("b")}
		if rng.Intn(2) == 0 {
			b = b.FollowedBy("s2", isVal("c"))
			preds = append(preds, isVal("c"))
		}
		if within > 0 {
			b = b.Within(within)
		}
		p := b.MustBuild()
		m := NewMatcher(p)
		m.MaxRuns = 0
		got := 0
		for _, e := range events {
			got += len(m.Process(e))
		}
		want := bruteForce(preds, within, events)
		if got != want {
			t.Fatalf("trial %d: NFA found %d matches, brute force %d (events=%v within=%d)",
				trial, got, want, events, within)
		}
	}
}

func TestCEPOperatorInEngine(t *testing.T) {
	// Fraud-like pattern per card: two small charges followed by a large one.
	small := func(e core.Event) bool { return e.Value.(float64) < 10 }
	large := func(e core.Event) bool { return e.Value.(float64) >= 500 }
	p := Begin("probe1", small).FollowedBy("probe2", small).
		FollowedBy("hit", large).Within(1000).MustBuild()

	var events []core.Event
	mk := func(key string, ts int64, amt float64) core.Event {
		return core.Event{Key: key, Timestamp: ts, Value: amt}
	}
	events = append(events,
		mk("cardA", 0, 5), mk("cardA", 10, 3), mk("cardA", 20, 900), // match
		mk("cardB", 0, 5), mk("cardB", 10, 600), // no second probe
		mk("cardC", 0, 5), mk("cardC", 2000, 3), mk("cardC", 2100, 700), // probes split by Within... second+third within 1000
	)

	sink := core.NewCollectSink()
	b := core.NewBuilder(core.Config{Name: "cep"})
	s := b.Source("src", core.NewSliceSourceFactory(events)).
		KeyBy(func(e core.Event) string { return e.Key })
	PatternStream(s, "fraud", p, func(key string, m Match, emit func(core.Event)) {
		emit(core.Event{Key: key, Timestamp: m.End, Value: "ALERT"})
	}).Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := j.Run(ctx); err != nil {
		t.Fatal(err)
	}
	byKey := map[string]int{}
	for _, e := range sink.Events() {
		byKey[e.Key]++
	}
	if byKey["cardA"] != 1 {
		t.Fatalf("cardA: want 1 alert, got %d", byKey["cardA"])
	}
	if byKey["cardB"] != 0 {
		t.Fatalf("cardB: want 0 alerts, got %d", byKey["cardB"])
	}
	if byKey["cardC"] != 0 {
		t.Fatalf("cardC: want 0 alerts (probes outside window), got %d", byKey["cardC"])
	}
}

func TestMatcherStateRoundtripsThroughRuns(t *testing.T) {
	p := Begin("a", isVal("a")).FollowedBy("b", isVal("b")).MustBuild()
	m1 := NewMatcher(p)
	m1.Process(ev(0, "a"))
	runs := m1.Runs()

	m2 := NewMatcher(p)
	m2.SetRuns(runs)
	if got := m2.Process(ev(1, "b")); len(got) != 1 {
		t.Fatalf("restored matcher should complete the match, got %d", len(got))
	}
	_ = fmt.Sprintf("%v", runs)
}
