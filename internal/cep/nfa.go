package cep

import (
	"repro/internal/core"
)

// Run is one partial NFA match. Runs are exported (with gob-friendly
// fields) so the engine operator can checkpoint matcher state.
type Run struct {
	// Idx is the stage currently being matched.
	Idx int
	// Staged holds matched events per stage index.
	Staged [][]core.Event
	// Start is the timestamp of the first matched event.
	Start int64
}

func (r Run) clone() Run {
	staged := make([][]core.Event, len(r.Staged))
	for i, s := range r.Staged {
		staged[i] = append([]core.Event(nil), s...)
	}
	return Run{Idx: r.Idx, Staged: staged, Start: r.Start}
}

// Matcher evaluates one pattern over one logical stream (typically one key).
// It is not safe for concurrent use.
type Matcher struct {
	pattern Pattern
	runs    []Run
	// MaxRuns bounds simultaneous partial runs as a safety valve against
	// pathological patterns; 0 means unbounded.
	MaxRuns int
	// PrunedRuns counts runs discarded by the Within constraint or MaxRuns.
	PrunedRuns int64
}

// NewMatcher returns a matcher for the pattern.
func NewMatcher(p Pattern) *Matcher {
	return &Matcher{pattern: p, MaxRuns: 10000}
}

// Runs exposes the current partial runs (for snapshots).
func (m *Matcher) Runs() []Run { return m.runs }

// SetRuns replaces the partial runs (for restores).
func (m *Matcher) SetRuns(runs []Run) { m.runs = runs }

// Process consumes one event (timestamps must be non-decreasing per matcher)
// and returns any completed matches.
func (m *Matcher) Process(e core.Event) []Match {
	var matches []Match
	var next []Run

	// Prune expired runs first.
	if m.pattern.within > 0 {
		kept := m.runs[:0]
		for _, r := range m.runs {
			if e.Timestamp-r.Start <= m.pattern.within {
				kept = append(kept, r)
			} else {
				m.PrunedRuns++
			}
		}
		m.runs = kept
	}

	advance := func(r Run, stageIdx int) {
		// Place e at stageIdx and derive the follow-up runs.
		r2 := r.clone()
		for len(r2.Staged) <= stageIdx {
			r2.Staged = append(r2.Staged, nil)
		}
		r2.Staged[stageIdx] = append(r2.Staged[stageIdx], e)
		st := m.pattern.stages[stageIdx]
		last := stageIdx == len(m.pattern.stages)-1
		if last {
			matches = append(matches, m.complete(r2))
			if st.kleene {
				// A Kleene final stage keeps extending.
				r2.Idx = stageIdx
				next = append(next, r2)
			}
			return
		}
		if st.kleene {
			// Stay to take more, and later branch into the next stage.
			r2.Idx = stageIdx
			next = append(next, r2)
		} else {
			r2.Idx = stageIdx + 1
			next = append(next, r2)
		}
	}

	for _, r := range m.runs {
		st := m.pattern.stages[r.Idx]
		matched := false
		if st.pred(e) {
			advance(r, r.Idx)
			matched = true
		}
		// A Kleene stage with at least one event may also try the next
		// stage on this event.
		if st.kleene && r.Idx+1 < len(m.pattern.stages) &&
			r.Idx < len(r.Staged) && len(r.Staged[r.Idx]) > 0 {
			nst := m.pattern.stages[r.Idx+1]
			if nst.pred(e) {
				advance(r, r.Idx+1)
				matched = true
			}
		}
		// Skip branch: the run survives unchanged under relaxed contiguity.
		// Under strict contiguity a non-matching event kills the run; a
		// matching one consumes it (no skip).
		strict := st.cont == Strict || (r.Idx+1 < len(m.pattern.stages) &&
			st.kleene && m.pattern.stages[r.Idx+1].cont == Strict)
		if !strict {
			next = append(next, r)
		} else if !matched {
			m.PrunedRuns++
		}
	}

	// A new run can start at every event matching stage 0.
	if m.pattern.stages[0].pred(e) {
		advance(Run{Start: e.Timestamp}, 0)
	}

	if m.MaxRuns > 0 && len(next) > m.MaxRuns {
		m.PrunedRuns += int64(len(next) - m.MaxRuns)
		next = next[len(next)-m.MaxRuns:]
	}
	m.runs = next
	return matches
}

// complete converts a finished run into a Match.
func (m *Matcher) complete(r Run) Match {
	match := Match{Events: make(map[string][]core.Event, len(m.pattern.stages))}
	match.Start = r.Start
	for i, st := range m.pattern.stages {
		if i < len(r.Staged) {
			evs := append([]core.Event(nil), r.Staged[i]...)
			match.Events[st.name] = evs
			for _, e := range evs {
				if e.Timestamp > match.End {
					match.End = e.Timestamp
				}
			}
		}
	}
	return match
}
