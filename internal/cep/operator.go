package cep

import (
	"repro/internal/core"
	"repro/internal/state"
)

func init() {
	state.RegisterType([]Run{})
	state.RegisterType(core.Event{})
}

// MatchHandler converts a completed match into zero or more output events.
type MatchHandler func(key string, m Match, emit func(core.Event))

// OperatorOption customises the CEP operator.
type OperatorOption func(*cepOperator)

// SkipPastLastEvent is the after-match skip strategy: once a key produces a
// match, all of that key's partial runs are discarded, so events are not
// reused across matches. Without it the NFA enumerates every combination
// (skip-till-any-match), which is exhaustive but combinatorial.
func SkipPastLastEvent() OperatorOption {
	return func(o *cepOperator) { o.skipPastLast = true }
}

// PatternStream attaches a CEP operator to a keyed stream: each key runs its
// own NFA, whose partial runs live in managed state and therefore survive
// checkpoints, restores and rescales.
func PatternStream(s *core.Stream, name string, p Pattern, handler MatchHandler, opts ...OperatorOption) *core.Stream {
	fac := func() core.Operator {
		op := &cepOperator{pattern: p, handler: handler}
		for _, o := range opts {
			o(op)
		}
		return op
	}
	return s.Process(name, fac)
}

type cepOperator struct {
	core.BaseOperator
	pattern      Pattern
	handler      MatchHandler
	skipPastLast bool
}

const runState = "cep-runs"

func (o *cepOperator) ProcessElement(e core.Event, ctx core.Context) error {
	st := ctx.State().Value(runState)
	m := NewMatcher(o.pattern)
	if raw, ok := st.Get(); ok {
		if runs, ok := raw.([]Run); ok {
			m.SetRuns(runs)
		}
	}
	matches := m.Process(e)
	if o.skipPastLast && len(matches) > 1 {
		// All matches completing on the same event collapse to one under
		// the skip strategy.
		matches = matches[:1]
	}
	for _, match := range matches {
		o.handler(ctx.Key(), match, ctx.Emit)
	}
	if len(matches) > 0 && o.skipPastLast {
		st.Clear()
		return nil
	}
	if runs := m.Runs(); len(runs) > 0 {
		st.Set(runs)
	} else {
		st.Clear()
	}
	return nil
}
