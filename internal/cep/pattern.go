// Package cep implements Complex Event Processing — the pattern-matching
// workload that, together with windowed analytics, defined the commercial
// 2nd-wave systems the paper lists (Esper, Oracle CEP, TIBCO, IBM System S).
// Patterns are sequences of predicate stages with strict (`Next`) or relaxed
// (`FollowedBy`) contiguity, Kleene closure (`OneOrMore`) and a `Within`
// time constraint, compiled to an NFA whose partial runs branch
// nondeterministically per event (SASE-style skip-till-next-match
// semantics).
package cep

import (
	"fmt"

	"repro/internal/core"
)

// Contiguity controls how a stage relates to the events between it and the
// previous stage.
type Contiguity uint8

const (
	// Relaxed contiguity ignores non-matching events in between.
	Relaxed Contiguity = iota
	// Strict contiguity requires the stage to match the immediately next
	// event; any other event kills the partial match.
	Strict
)

// Predicate tests whether an event can occupy a stage.
type Predicate func(e core.Event) bool

// stage is one step of a pattern.
type stage struct {
	name   string
	pred   Predicate
	cont   Contiguity
	kleene bool
}

// Pattern is an immutable compiled pattern.
type Pattern struct {
	stages []stage
	within int64 // 0 = unbounded
}

// PatternBuilder assembles a Pattern fluently.
type PatternBuilder struct {
	p   Pattern
	err error
}

// Begin starts a pattern with a first stage.
func Begin(name string, pred Predicate) *PatternBuilder {
	b := &PatternBuilder{}
	b.p.stages = append(b.p.stages, stage{name: name, pred: pred, cont: Relaxed})
	return b
}

// Next appends a stage with strict contiguity.
func (b *PatternBuilder) Next(name string, pred Predicate) *PatternBuilder {
	b.p.stages = append(b.p.stages, stage{name: name, pred: pred, cont: Strict})
	return b
}

// FollowedBy appends a stage with relaxed contiguity.
func (b *PatternBuilder) FollowedBy(name string, pred Predicate) *PatternBuilder {
	b.p.stages = append(b.p.stages, stage{name: name, pred: pred, cont: Relaxed})
	return b
}

// OneOrMore marks the most recent stage as Kleene-closed (matches one or
// more events).
func (b *PatternBuilder) OneOrMore() *PatternBuilder {
	if len(b.p.stages) == 0 {
		b.err = fmt.Errorf("cep: OneOrMore before any stage")
		return b
	}
	b.p.stages[len(b.p.stages)-1].kleene = true
	return b
}

// Within bounds the time between the first and last matched event.
func (b *PatternBuilder) Within(millis int64) *PatternBuilder {
	b.p.within = millis
	return b
}

// Build finalises the pattern.
func (b *PatternBuilder) Build() (Pattern, error) {
	if b.err != nil {
		return Pattern{}, b.err
	}
	if len(b.p.stages) == 0 {
		return Pattern{}, fmt.Errorf("cep: empty pattern")
	}
	names := map[string]bool{}
	for _, s := range b.p.stages {
		if s.pred == nil {
			return Pattern{}, fmt.Errorf("cep: stage %q has no predicate", s.name)
		}
		if names[s.name] {
			return Pattern{}, fmt.Errorf("cep: duplicate stage name %q", s.name)
		}
		names[s.name] = true
	}
	return b.p, nil
}

// MustBuild panics on error (for statically known-good patterns).
func (b *PatternBuilder) MustBuild() Pattern {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// StageNames lists the pattern's stage names in order.
func (p Pattern) StageNames() []string {
	out := make([]string, len(p.stages))
	for i, s := range p.stages {
		out[i] = s.name
	}
	return out
}

// Match is one complete pattern occurrence: the matched events per stage.
type Match struct {
	// Events maps stage name to the events it matched (len > 1 only for
	// Kleene stages).
	Events map[string][]core.Event
	// Start and End are the timestamps of the first and last matched event.
	Start, End int64
}
