// Package chaos is the fault-injection harness for the recovery experiments:
// it manufactures, deterministically, the failures §3.2 of the paper says a
// second-generation system must survive — snapshot-store I/O errors and
// latency, torn partial writes, operator panics, and crashes at the worst
// possible points of the checkpoint lifecycle (mid-Save, between the last
// Save and Complete, mid-restore).
//
// The injectors compose with ha.RunSupervised: a FaultyStore wraps any
// core.SnapshotStore, a PanicInjector wraps any core.OperatorFactory, and a
// crash point arms a one-shot kill switch (typically core.Job.Fail) so the
// supervised job dies exactly once at the chosen point and must recover from
// its latest completed checkpoint.
package chaos

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// ErrInjected is the error returned by every injected store fault.
var ErrInjected = errors.New("chaos: injected store fault")

// ErrInjectedCrash is the failure a crash point reports through the kill
// switch.
var ErrInjectedCrash = errors.New("chaos: injected crash")

// CrashPoint selects where in the checkpoint lifecycle the one-shot crash
// fires.
type CrashPoint int

const (
	// CrashNone disables the crash driver.
	CrashNone CrashPoint = iota
	// CrashMidSave kills the job during the At-th Save call, after a torn
	// prefix of the snapshot reached the underlying store — the classic
	// partial-write crash.
	CrashMidSave
	// CrashPreComplete kills the job on the At-th Complete call, after every
	// instance snapshot landed but before the checkpoint metadata commits —
	// the window where a non-atomic store would present a half checkpoint.
	CrashPreComplete
	// CrashMidRestore kills the job during the At-th Load call, i.e. while a
	// restarted incarnation is reading its restore snapshots.
	CrashMidRestore
	// CrashPostSavepoint kills the job right after the At-th *savepoint*
	// Complete commits durably — the start of a live-rescale window: the
	// savepoint exists, but the reconfiguration that was about to consume it
	// never ran. Recovery must resume from that savepoint. At counts
	// savepoint completions only.
	CrashPostSavepoint
	// CrashPreRescaleComplete fails the At-th Complete of a checkpoint
	// synthesised by RescaleCheckpoint before it reaches the underlying
	// store — a crash at the end of the rescale window, leaving the rescaled
	// checkpoint invisible so recovery rolls back to the pre-rescale
	// savepoint at the old parallelism. At counts rescale completions only.
	CrashPreRescaleComplete
	// CrashMidDeltaSave kills the job during the At-th Save of a *delta*
	// payload (an incremental checkpoint), after a torn prefix reached the
	// underlying store — the worst case for chain integrity: a torn delta
	// must never become a restorable link. At counts delta saves only.
	CrashMidDeltaSave
	// CrashMidChainRestore kills the job during the At-th *ancestor* Load —
	// a Load for a checkpoint older than Latest, which only happens while a
	// restarted incarnation is resolving a delta chain back to its full
	// parent. At counts ancestor loads only.
	CrashMidChainRestore
)

func (p CrashPoint) String() string {
	switch p {
	case CrashMidSave:
		return "mid-save"
	case CrashPreComplete:
		return "pre-complete"
	case CrashMidRestore:
		return "mid-restore"
	case CrashPostSavepoint:
		return "post-savepoint"
	case CrashPreRescaleComplete:
		return "pre-rescale-complete"
	case CrashMidDeltaSave:
		return "mid-delta-save"
	case CrashMidChainRestore:
		return "mid-chain-restore"
	default:
		return "none"
	}
}

// FaultPlan schedules deterministic store faults by per-operation ordinal
// (counted from 0 across the store's lifetime, which spans supervised
// restarts).
type FaultPlan struct {
	// FailSaveFrom/FailSaveCount make Save ordinals in
	// [FailSaveFrom, FailSaveFrom+FailSaveCount) fail — an I/O error burst.
	FailSaveFrom  int
	FailSaveCount int
	// FailSaveEvery additionally fails every Nth Save (0 = off).
	FailSaveEvery int
	// TornSave makes every failing Save first write a truncated prefix of
	// the snapshot through to the underlying store, simulating a torn write
	// that reached the medium before the error surfaced.
	TornSave bool
	// SaveLatency is added to every Save (slow durable storage).
	SaveLatency time.Duration
	// FailLoadFrom/FailLoadCount make Load ordinals fail (restore-path I/O
	// errors).
	FailLoadFrom  int
	FailLoadCount int
	// FailCompleteFrom/FailCompleteCount make Complete ordinals fail before
	// reaching the underlying store, so the checkpoint never becomes
	// visible.
	FailCompleteFrom  int
	FailCompleteCount int
}

func inWindow(ordinal, from, count int) bool {
	return count > 0 && ordinal >= from && ordinal < from+count
}

// FaultStats counts what the injector actually did.
type FaultStats struct {
	Saves, Loads, Completes                int // operations observed
	SaveFaults, LoadFaults, CompleteFaults int // operations failed
	TornWrites                             int
	Crashes                                int
}

// FaultyStore wraps a SnapshotStore with scheduled fault injection and an
// optional one-shot crash point. It is safe for concurrent use and forwards
// Discard when the underlying store supports it.
type FaultyStore struct {
	inner core.SnapshotStore
	plan  FaultPlan

	mu    sync.Mutex
	stats FaultStats

	crash   CrashPoint
	crashAt int
	crashed bool
	kill    atomic.Value // func()

	// Per-kind Complete ordinals, so the rescale-window crash points can be
	// aimed at "the Nth savepoint" / "the Nth rescale" instead of counting
	// periodic checkpoint completions that vary with timing.
	savepointCompletes int
	rescaleCompletes   int
	// Per-kind Save/Load ordinals for the incremental-checkpoint crash
	// points: delta-payload saves and ancestor (chain-link) loads.
	deltaSaves int
	chainLoads int
}

// Wrap builds a FaultyStore injecting plan over inner.
func Wrap(inner core.SnapshotStore, plan FaultPlan) *FaultyStore {
	return &FaultyStore{inner: inner, plan: plan}
}

// Arm installs a one-shot crash at the given lifecycle point and operation
// ordinal. The kill switch is set separately via SetKill (the job it aims at
// usually does not exist yet).
func (s *FaultyStore) Arm(point CrashPoint, at int) *FaultyStore {
	s.mu.Lock()
	s.crash = point
	s.crashAt = at
	s.mu.Unlock()
	return s
}

// SetKill aims the crash at a job incarnation; call it from the supervisor's
// onStart hook so restarts re-aim automatically. kill is invoked at most once
// (the crash is one-shot), outside the store lock.
func (s *FaultyStore) SetKill(kill func()) { s.kill.Store(kill) }

// Stats returns a snapshot of the injection counters.
func (s *FaultyStore) Stats() FaultStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// fire triggers the armed crash: marks it spent, counts it, and invokes the
// kill switch. Requires s.mu; the kill runs after unlock via the returned
// func.
func (s *FaultyStore) fireLocked() func() {
	s.crashed = true
	s.stats.Crashes++
	kill, _ := s.kill.Load().(func())
	return func() {
		if kill != nil {
			kill()
		}
	}
}

// Save implements core.SnapshotStore with injected latency, error windows,
// torn partial writes, and the mid-save crash point.
func (s *FaultyStore) Save(cp int64, instanceID string, data []byte) error {
	if s.plan.SaveLatency > 0 {
		time.Sleep(s.plan.SaveLatency)
	}
	// Sniffing delta payloads costs a decode per Save, which is fine for a
	// fault-injection harness and keeps the mid-delta-save ordinal exact.
	isDelta := core.SnapshotIsDelta(data)
	s.mu.Lock()
	ord := s.stats.Saves
	s.stats.Saves++
	var deltaOrd int
	if isDelta {
		deltaOrd = s.deltaSaves
		s.deltaSaves++
	}
	crash := !s.crashed && (s.crash == CrashMidSave && ord >= s.crashAt ||
		s.crash == CrashMidDeltaSave && isDelta && deltaOrd >= s.crashAt)
	fail := crash ||
		inWindow(ord, s.plan.FailSaveFrom, s.plan.FailSaveCount) ||
		(s.plan.FailSaveEvery > 0 && ord%s.plan.FailSaveEvery == s.plan.FailSaveEvery-1)
	torn := fail && (s.plan.TornSave || crash)
	if fail {
		s.stats.SaveFaults++
	}
	if torn {
		s.stats.TornWrites++
	}
	var kill func()
	if crash {
		kill = s.fireLocked()
	}
	s.mu.Unlock()

	if torn && len(data) > 0 {
		// The torn prefix reaches the medium before the failure surfaces.
		s.inner.Save(cp, instanceID, data[:len(data)/2])
	}
	if kill != nil {
		kill()
	}
	if fail {
		return fmt.Errorf("%w: save #%d (checkpoint %d, %s)", ErrInjected, ord, cp, instanceID)
	}
	return s.inner.Save(cp, instanceID, data)
}

// Load implements core.SnapshotStore with restore-path faults and the
// mid-restore crash point.
func (s *FaultyStore) Load(cp int64, instanceID string) ([]byte, error) {
	// A Load for a checkpoint older than Latest is a chain-link load: only
	// the delta-chain resolver reads ancestors during restore.
	lm, lok := s.inner.Latest()
	chainLoad := lok && cp != lm.ID
	s.mu.Lock()
	ord := s.stats.Loads
	s.stats.Loads++
	var chainOrd int
	if chainLoad {
		chainOrd = s.chainLoads
		s.chainLoads++
	}
	crash := !s.crashed && (s.crash == CrashMidRestore && ord >= s.crashAt ||
		s.crash == CrashMidChainRestore && chainLoad && chainOrd >= s.crashAt)
	fail := crash || inWindow(ord, s.plan.FailLoadFrom, s.plan.FailLoadCount)
	if fail {
		s.stats.LoadFaults++
	}
	var kill func()
	if crash {
		kill = s.fireLocked()
	}
	s.mu.Unlock()

	if kill != nil {
		kill()
	}
	if fail {
		return nil, fmt.Errorf("%w: load #%d (checkpoint %d, %s)", ErrInjected, ord, cp, instanceID)
	}
	return s.inner.Load(cp, instanceID)
}

// Complete implements core.SnapshotStore with completion faults and the
// pre-complete crash point: a crashing Complete never reaches the underlying
// store, so the checkpoint whose snapshots all landed stays invisible —
// exactly the window a crash between the last Save and the metadata commit
// would create.
func (s *FaultyStore) Complete(meta core.CheckpointMeta) error {
	s.mu.Lock()
	ord := s.stats.Completes
	s.stats.Completes++
	var kindOrd int
	switch {
	case meta.Rescaled:
		kindOrd = s.rescaleCompletes
		s.rescaleCompletes++
	case meta.Savepoint:
		kindOrd = s.savepointCompletes
		s.savepointCompletes++
	}
	armed := !s.crashed
	crashPre := armed && (s.crash == CrashPreComplete && ord >= s.crashAt ||
		s.crash == CrashPreRescaleComplete && meta.Rescaled && kindOrd >= s.crashAt)
	// The post-savepoint crash lets the Complete reach the medium first: the
	// savepoint is durable, the process dies immediately after — the moment a
	// live rescale would begin.
	crashPost := armed && s.crash == CrashPostSavepoint && meta.Savepoint && kindOrd >= s.crashAt
	fail := crashPre || inWindow(ord, s.plan.FailCompleteFrom, s.plan.FailCompleteCount)
	if fail {
		s.stats.CompleteFaults++
	}
	var kill func()
	if crashPre || crashPost {
		kill = s.fireLocked()
	}
	s.mu.Unlock()

	if fail {
		if kill != nil {
			kill()
		}
		return fmt.Errorf("%w: complete #%d (checkpoint %d)", ErrInjected, ord, meta.ID)
	}
	err := s.inner.Complete(meta)
	if kill != nil {
		kill()
	}
	return err
}

// Latest implements core.SnapshotStore.
func (s *FaultyStore) Latest() (core.CheckpointMeta, bool) { return s.inner.Latest() }

// Instances implements core.SnapshotStore.
func (s *FaultyStore) Instances(cp int64) ([]string, error) { return s.inner.Instances(cp) }

// Discard implements core.DiscardableStore when the wrapped store does.
func (s *FaultyStore) Discard(cp int64) error {
	if d, ok := s.inner.(core.DiscardableStore); ok {
		return d.Discard(cp)
	}
	return nil
}

// LinkFile implements core.FileLinkingStore by forwarding to the wrapped
// store; when the inner store cannot link files it reports
// core.ErrFileLinkUnsupported so instances fall back to embedding file
// contents, exactly as they would against the inner store directly.
func (s *FaultyStore) LinkFile(cp int64, name, src string) error {
	if ls, ok := s.inner.(core.FileLinkingStore); ok {
		return ls.LinkFile(cp, name, src)
	}
	return core.ErrFileLinkUnsupported
}

// LinkedPath implements core.FileLinkingStore (see LinkFile).
func (s *FaultyStore) LinkedPath(cp int64, name string) (string, error) {
	if ls, ok := s.inner.(core.FileLinkingStore); ok {
		return ls.LinkedPath(cp, name)
	}
	return "", core.ErrFileLinkUnsupported
}

var _ core.SnapshotStore = (*FaultyStore)(nil)
var _ core.DiscardableStore = (*FaultyStore)(nil)
var _ core.FileLinkingStore = (*FaultyStore)(nil)

// PanicInjector makes one wrapped operator instance panic after the injector
// has seen After elements in total — once per injector lifetime, so a
// supervised restart runs clean. The engine converts the panic into a job
// failure; the supervisor restarts from the latest completed checkpoint.
type PanicInjector struct {
	After int64
	seen  atomic.Int64
	fired atomic.Bool
}

// NewPanicInjector returns an injector that panics on the After-th processed
// element.
func NewPanicInjector(after int) *PanicInjector {
	return &PanicInjector{After: int64(after)}
}

// Fired reports whether the panic has been delivered.
func (p *PanicInjector) Fired() bool { return p.fired.Load() }

// Wrap decorates an operator factory with the injection. Snapshotter
// operators keep their custom snapshot/restore behaviour through the
// wrapper.
func (p *PanicInjector) Wrap(fac core.OperatorFactory) core.OperatorFactory {
	return func() core.Operator {
		inner := fac()
		w := &panicOperator{inner: inner, inj: p}
		if snap, ok := inner.(core.Snapshotter); ok {
			return &snapshottingPanicOperator{panicOperator: w, snap: snap}
		}
		return w
	}
}

type panicOperator struct {
	inner core.Operator
	inj   *PanicInjector
}

func (o *panicOperator) Open(ctx core.Context) error { return o.inner.Open(ctx) }

func (o *panicOperator) ProcessElement(e core.Event, ctx core.Context) error {
	if o.inj.seen.Add(1) >= o.inj.After && o.inj.fired.CompareAndSwap(false, true) {
		panic(fmt.Sprintf("chaos: injected operator panic after %d elements", o.inj.After))
	}
	return o.inner.ProcessElement(e, ctx)
}

func (o *panicOperator) OnTimer(ts int64, ctx core.Context) error { return o.inner.OnTimer(ts, ctx) }
func (o *panicOperator) OnWatermark(wm int64, ctx core.Context) error {
	return o.inner.OnWatermark(wm, ctx)
}
func (o *panicOperator) Close(ctx core.Context) error { return o.inner.Close(ctx) }

type snapshottingPanicOperator struct {
	*panicOperator
	snap core.Snapshotter
}

func (o *snapshottingPanicOperator) SnapshotCustom() ([]byte, error) { return o.snap.SnapshotCustom() }
func (o *snapshottingPanicOperator) RestoreCustom(data []byte) error {
	return o.snap.RestoreCustom(data)
}

var _ core.Snapshotter = (*snapshottingPanicOperator)(nil)
