package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ha"
	"repro/internal/state"
	"repro/internal/window"
)

// pipelineEvents is the workload every matrix run processes: nEvents events
// over five keys, 10ms apart, so the tumbling 1s window yields a fully
// deterministic result set (nWindows windows x 5 keys, 20 events per cell).
const nEvents = 900

func pipelineEvents() []core.Event {
	events := make([]core.Event, nEvents)
	for i := range events {
		events[i] = core.Event{
			Key:       fmt.Sprintf("k%d", i%5),
			Timestamp: int64(i * 10),
			Value:     int64(i),
		}
	}
	return events
}

// pipelineFactory builds the matrix pipeline: parallel source -> relay
// (optionally panic-injected) -> keyed tumbling count window -> sink, with
// exactly-once checkpointing every 50 records. The small channel capacity
// backpressures the source and the relay paces the stream, so several
// checkpoints complete mid-run and the armed crash ordinals are reached.
func pipelineFactory(events []core.Event, inj *PanicInjector, mutate func(*core.Config)) ha.JobFactory {
	return func(sink *core.CollectSink, store core.SnapshotStore) (*core.Job, error) {
		cfg := core.Config{
			Name:               "chaos-matrix",
			SnapshotStore:      store,
			CheckpointEvery:    50,
			ChannelCapacity:    4,
			WatermarkInterval:  1,
			DefaultParallelism: 2,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		b := core.NewBuilder(cfg)
		relay := core.MapFunc(func(e core.Event, ctx core.Context) error {
			time.Sleep(120 * time.Microsecond)
			ctx.Emit(e)
			return nil
		})
		if inj != nil {
			relay = inj.Wrap(relay)
		}
		keyed := b.Source("src", core.NewSliceSourceFactory(events), core.WithBoundedDisorder(0)).
			Process("relay", relay).
			KeyBy(func(e core.Event) string { return e.Key })
		window.Apply(keyed, "win", window.NewTumbling(1_000), window.CountAggregate()).
			Sink("out", sink.Factory())
		return b.Build()
	}
}

// signature reduces a result set to a canonical, order-independent form that
// includes the values, so a replay that produced a wrong count (not just a
// missing/duplicate window) fails the equality check.
func signature(events []core.Event) []string {
	out := make([]string, len(events))
	for i, e := range events {
		out[i] = fmt.Sprintf("%s@%d=%v", e.Key, e.Timestamp, e.Value)
	}
	sort.Strings(out)
	return out
}

// verifyLatestRestorable asserts the acceptance property: whatever Latest
// returns is fully loadable — a checkpoint with a failed or torn Save must
// never be surfaced. Verification goes through the clean inner store so the
// injector cannot interfere.
func verifyLatestRestorable(t *testing.T, store core.SnapshotStore) {
	t.Helper()
	meta, ok := store.Latest()
	if !ok {
		return
	}
	ids, err := store.Instances(meta.ID)
	if err != nil {
		t.Fatalf("Instances(%d) after recovery: %v", meta.ID, err)
	}
	if len(ids) < len(meta.InstanceIDs) {
		t.Fatalf("checkpoint %d lists %d instances but the store holds %d", meta.ID, len(meta.InstanceIDs), len(ids))
	}
	for _, id := range meta.InstanceIDs {
		if _, err := store.Load(meta.ID, id); err != nil {
			t.Fatalf("Latest() returned checkpoint %d but instance %s does not load: %v", meta.ID, id, err)
		}
	}
}

// baseline runs the pipeline fault-free and returns its output signature.
func baseline(t *testing.T, ctx context.Context, events []core.Event) []string {
	t.Helper()
	store, err := core.NewFileSnapshotStore(filepath.Join(t.TempDir(), "chk"))
	if err != nil {
		t.Fatal(err)
	}
	out, rep, err := ha.RunSupervised(ctx, pipelineFactory(events, nil, nil), store,
		ha.RestartStrategy{MaxRestarts: 1, Delay: time.Millisecond}, nil)
	if err != nil {
		t.Fatalf("baseline run failed: %v", err)
	}
	if rep.Attempts != 1 {
		t.Fatalf("baseline needed %d attempts: %v", rep.Attempts, rep.Failures)
	}
	return signature(out)
}

// matrixScenario is one cell of the crash matrix.
type matrixScenario struct {
	name       string
	plan       FaultPlan
	crash      CrashPoint
	crashAt    int
	panicAfter int // 0 = no operator panic
	// delta runs the pipeline with incremental (delta) checkpoints on, so
	// the fault hits a checkpoint chain instead of self-contained snapshots.
	delta bool
	// lsmNative runs every operator on an LSM backend with SSTable-native
	// snapshots, so saves carry linked-file manifests instead of state
	// images. Restarted incarnations open fresh LSM dirs — recovery must
	// come entirely from the checkpoint store, as on a replacement worker.
	lsmNative bool
	// wantRestart requires at least one supervised restart (crash/panic
	// scenarios); scenarios that must survive in-place set it false.
	wantRestart bool
}

// configMutator builds the Config hook for the scenario's checkpoint mode.
func (sc matrixScenario) configMutator(t *testing.T) func(*core.Config) {
	if !sc.delta && !sc.lsmNative {
		return nil
	}
	base := t.TempDir()
	var seq atomic.Int64
	return func(c *core.Config) {
		c.DeltaCheckpoints = sc.delta
		if sc.lsmNative {
			c.LSMNativeSnapshots = true
			c.BackendFactory = func(node string, instance int) (state.Backend, error) {
				dir := filepath.Join(base, fmt.Sprintf("%s-%d-inc%d", node, instance, seq.Add(1)))
				return state.NewLSMBackend(dir, 0)
			}
		}
	}
}

func (sc matrixScenario) run(t *testing.T, ctx context.Context, events []core.Event, want []string) {
	t.Helper()
	inner, err := core.NewFileSnapshotStore(filepath.Join(t.TempDir(), "chk"))
	if err != nil {
		t.Fatal(err)
	}
	store := Wrap(inner, sc.plan).Arm(sc.crash, sc.crashAt)
	var inj *PanicInjector
	if sc.panicAfter > 0 {
		inj = NewPanicInjector(sc.panicAfter)
	}
	var lastJob *core.Job
	onStart := func(attempt int, job *core.Job) {
		lastJob = job
		store.SetKill(func() { job.Fail(ErrInjectedCrash) })
	}
	out, rep, err := ha.RunSupervised(ctx, pipelineFactory(events, inj, sc.configMutator(t)), store,
		ha.RestartStrategy{MaxRestarts: 4, Delay: 2 * time.Millisecond}, onStart)
	if err != nil {
		t.Fatalf("supervised run failed (report %+v): %v", rep, err)
	}

	if got := signature(out); !reflect.DeepEqual(got, want) {
		t.Fatalf("output diverged from fault-free run:\n got %d results %v\nwant %d results %v",
			len(got), got, len(want), want)
	}
	if sc.wantRestart && rep.Restarts == 0 {
		t.Fatalf("scenario expected a restart, got report %+v (stats %+v)", rep, store.Stats())
	}
	if !sc.wantRestart && rep.Restarts != 0 {
		t.Fatalf("scenario should survive in place, got %d restarts (failures %v)", rep.Restarts, rep.Failures)
	}
	if sc.crash != CrashNone && store.Stats().Crashes != 1 {
		t.Fatalf("armed crash fired %d times, want exactly 1", store.Stats().Crashes)
	}
	if sc.panicAfter > 0 && !inj.Fired() {
		t.Fatal("panic injector never fired")
	}
	// Every scenario whose store faults exhausted the retry budget must have
	// aborted (not killed) those checkpoints.
	if n := sc.plan.FailSaveCount; n > 0 && sc.crash == CrashNone {
		if lastJob == nil || lastJob.AbortedCheckpoints() == 0 {
			t.Fatalf("save-error burst should abort at least one checkpoint, job reported %d", lastJob.AbortedCheckpoints())
		}
	}
	verifyLatestRestorable(t, inner)
}

// TestCrashMatrix asserts exactly-once output equality against a fault-free
// run for every injected failure point: mid-save crash (with torn partial
// write), crash between the last Save and Complete, crash mid-restore,
// store-error bursts longer than the retry budget, intermittent torn saves,
// slow storage, and operator panics.
func TestCrashMatrix(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	events := pipelineEvents()
	want := baseline(t, ctx, events)

	scenarios := []matrixScenario{
		// Killed during the second checkpoint's saves, after a torn prefix of
		// the snapshot reached disk.
		{name: "crash-mid-save", crash: CrashMidSave, crashAt: 8, wantRestart: true},
		// Killed after every snapshot of checkpoint 2 landed but before its
		// metadata committed: Latest() must fall back to checkpoint 1.
		{name: "crash-pre-complete", crash: CrashPreComplete, crashAt: 1, wantRestart: true},
		// A panic brings the job down mid-stream; the first restore is then
		// killed while reading its snapshots, forcing a second restore.
		{name: "crash-mid-restore", crash: CrashMidRestore, crashAt: 2, panicAfter: 600, wantRestart: true},
		// An I/O error burst longer than the retry budget: the checkpoints
		// abort but the job survives in place and later checkpoints succeed.
		{name: "save-error-burst", plan: FaultPlan{FailSaveFrom: 2, FailSaveCount: 9, SaveLatency: 100 * time.Microsecond}},
		// Intermittent torn writes: the failing save leaves a truncated file
		// behind; the retry must overwrite it and Latest() must stay clean.
		{name: "torn-save-intermittent", plan: FaultPlan{FailSaveEvery: 7, TornSave: true}},
		// Plain operator panic, recovered from the latest checkpoint.
		{name: "operator-panic", panicAfter: 500, wantRestart: true},
		// Killed during a *delta* save, after a torn prefix of the delta
		// reached disk: the torn link must never commit, and recovery from
		// the intact chain must replay exactly once.
		{name: "crash-mid-delta-save", delta: true, crash: CrashMidDeltaSave, crashAt: 2, wantRestart: true},
		// A panic forces a restore whose Latest is a delta; the restart is
		// then killed while loading an *ancestor* of the chain, forcing a
		// second chain resolution.
		{name: "crash-mid-chain-restore", delta: true, crash: CrashMidChainRestore, crashAt: 1, panicAfter: 600, wantRestart: true},
		// Intermittent torn writes against a checkpoint chain: aborted delta
		// checkpoints must not corrupt later links or the restore path.
		{name: "delta-torn-save-intermittent", delta: true, plan: FaultPlan{FailSaveEvery: 7, TornSave: true}},
		// SSTable-native checkpoints: killed mid-save while snapshots are
		// linked-file manifests; the replacement incarnation starts on empty
		// LSM dirs and must rebuild purely from the store's linked files.
		{name: "native-crash-mid-save", lsmNative: true, crash: CrashMidSave, crashAt: 8, wantRestart: true},
		// Delta chains layered on SSTable-native fulls, recovered across an
		// operator panic with no crash-point assist.
		{name: "native-delta-panic", delta: true, lsmNative: true, panicAfter: 500, wantRestart: true},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) { sc.run(t, ctx, events, want) })
	}
}

// TestCrashMatrixRandomized draws seeded random crash points and fault
// schedules, asserting the same output-equality invariant on each. The seed
// is fixed so failures reproduce.
func TestCrashMatrixRandomized(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized matrix skipped in -short")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	events := pipelineEvents()
	want := baseline(t, ctx, events)

	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 4; i++ {
		// Alternate checkpoint modes outside the rng stream so the fault
		// draws stay identical to earlier seeds.
		sc := matrixScenario{name: fmt.Sprintf("rand-%d", i), delta: i%2 == 1}
		switch rng.Intn(3) {
		case 0:
			sc.crash = CrashMidSave
			sc.crashAt = rng.Intn(12)
			sc.wantRestart = true
		case 1:
			sc.crash = CrashPreComplete
			sc.crashAt = rng.Intn(3)
			sc.wantRestart = true
		case 2:
			sc.panicAfter = 400 + rng.Intn(400)
			sc.wantRestart = true
			if rng.Intn(2) == 0 {
				sc.crash = CrashMidRestore
				sc.crashAt = rng.Intn(4)
			}
		}
		if rng.Intn(2) == 0 {
			sc.plan.TornSave = true
			sc.plan.FailSaveEvery = 5 + rng.Intn(10)
		}
		t.Run(sc.name, func(t *testing.T) { sc.run(t, ctx, events, want) })
	}
}

// TestFaultyStoreSchedules pins the injector's own semantics: windows,
// every-N, one-shot crashes, and torn forwarding.
func TestFaultyStoreSchedules(t *testing.T) {
	inner := core.NewMemorySnapshotStore()
	fs := Wrap(inner, FaultPlan{
		FailSaveFrom:  1,
		FailSaveCount: 2,
		TornSave:      true,
		FailLoadFrom:  0,
		FailLoadCount: 1,
	})

	if err := fs.Save(1, "a", []byte("0123456789")); err != nil {
		t.Fatalf("save #0 must pass: %v", err)
	}
	if err := fs.Save(1, "b", []byte("0123456789")); !errors.Is(err, ErrInjected) {
		t.Fatalf("save #1 must fail injected, got %v", err)
	}
	// The torn prefix reached the inner store.
	if data, err := inner.Load(1, "b"); err != nil || string(data) != "01234" {
		t.Fatalf("torn save should leave a half-written snapshot, got %q err %v", data, err)
	}
	if err := fs.Save(1, "b", []byte("0123456789")); !errors.Is(err, ErrInjected) {
		t.Fatal("save #2 still inside the failure window")
	}
	if err := fs.Save(1, "b", []byte("0123456789")); err != nil {
		t.Fatalf("save #3 past the window must pass: %v", err)
	}

	if _, err := fs.Load(1, "a"); !errors.Is(err, ErrInjected) {
		t.Fatal("load #0 must fail injected")
	}
	if _, err := fs.Load(1, "a"); err != nil {
		t.Fatalf("load #1 must pass: %v", err)
	}

	st := fs.Stats()
	if st.Saves != 4 || st.SaveFaults != 2 || st.TornWrites != 2 || st.Loads != 2 || st.LoadFaults != 1 {
		t.Fatalf("stats wrong: %+v", st)
	}

	// One-shot crash: fires once, then the store behaves.
	fired := 0
	fs2 := Wrap(core.NewMemorySnapshotStore(), FaultPlan{}).Arm(CrashPreComplete, 0)
	fs2.SetKill(func() { fired++ })
	meta := core.CheckpointMeta{ID: 1}
	if err := fs2.Complete(meta); !errors.Is(err, ErrInjected) {
		t.Fatal("armed complete must fail")
	}
	if err := fs2.Complete(meta); err != nil {
		t.Fatalf("crash is one-shot, second complete must pass: %v", err)
	}
	if fired != 1 {
		t.Fatalf("kill switch fired %d times, want 1", fired)
	}
	if got := fs2.Stats().Crashes; got != 1 {
		t.Fatalf("crash count: %d", got)
	}

	// File-link forwarding: over a memory store (no linking) the wrapper must
	// report the sentinel so instances fall back to embedding file bytes.
	if err := fs.LinkFile(1, "a/x.sst", "/no/such/file"); !errors.Is(err, core.ErrFileLinkUnsupported) {
		t.Fatalf("LinkFile over a non-linking store: %v", err)
	}
	if _, err := fs.LinkedPath(1, "a/x.sst"); !errors.Is(err, core.ErrFileLinkUnsupported) {
		t.Fatalf("LinkedPath over a non-linking store: %v", err)
	}
}

// TestCrashPointString keeps the matrix output readable.
func TestCrashPointString(t *testing.T) {
	for p, want := range map[CrashPoint]string{
		CrashNone: "none", CrashMidSave: "mid-save", CrashPreComplete: "pre-complete", CrashMidRestore: "mid-restore",
		CrashPostSavepoint: "post-savepoint", CrashPreRescaleComplete: "pre-rescale-complete",
		CrashMidDeltaSave: "mid-delta-save", CrashMidChainRestore: "mid-chain-restore",
	} {
		if got := p.String(); got != want {
			t.Fatalf("CrashPoint(%d).String() = %q, want %q", p, got, want)
		}
	}
	if !strings.Contains(fmt.Sprintf("%v", CrashMidSave), "mid-save") {
		t.Fatal("CrashPoint must format via String")
	}
}
