package core

import (
	"fmt"

	"repro/internal/eventtime"
)

// Builder assembles a logical dataflow graph with a fluent API and compiles
// it into a runnable Job. The API mirrors the functional/fluent style that
// §2.1 identifies as the dominant programming model of open-source streaming
// systems ("MapReduce-like APIs ... to hardcode Aurora-like dataflows").
type Builder struct {
	cfg   Config
	graph *Graph
	err   error
}

// NewBuilder returns a Builder with the given configuration.
func NewBuilder(cfg Config) *Builder {
	return &Builder{cfg: cfg.withDefaults(), graph: &Graph{}}
}

// Stream is a handle to a node's output within the builder.
type Stream struct {
	b    *Builder
	node *node
	// keySel, when non-nil, marks the stream as keyed: the next operator is
	// connected with hash partitioning on this selector.
	keySel KeySelector
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

func (b *Builder) addNode(n *node) *node {
	n.id = len(b.graph.nodes)
	b.graph.nodes = append(b.graph.nodes, n)
	return n
}

func (b *Builder) addEdge(from, to *node, kind PartitionKind, sel KeySelector) {
	e := &edge{id: len(b.graph.edges), from: from, to: to, kind: kind, keySel: sel}
	b.graph.edges = append(b.graph.edges, e)
	from.outEdges = append(from.outEdges, e)
	to.inEdges = append(to.inEdges, e)
}

// SourceOption customises a source node.
type SourceOption func(*node)

// WithParallelism sets the node's parallelism.
func WithParallelism(p int) SourceOption {
	return func(n *node) { n.parallelism = p }
}

// WithWatermarks installs a periodic watermark strategy for the source; gen
// is invoked once per instance.
func WithWatermarks(gen func() eventtime.WatermarkGenerator) SourceOption {
	return func(n *node) { n.wmStrategy = gen }
}

// WithBoundedDisorder is shorthand for a bounded-out-of-orderness watermark
// strategy with the given bound in milliseconds.
func WithBoundedDisorder(boundMillis int64) SourceOption {
	return WithWatermarks(func() eventtime.WatermarkGenerator {
		return eventtime.NewBoundedOutOfOrderness(boundMillis)
	})
}

// WithWatermarkInterval overrides the per-source record interval between
// periodic watermark emissions.
func WithWatermarkInterval(records int) SourceOption {
	return func(n *node) { n.wmInterval = records }
}

// Source adds a source node.
func (b *Builder) Source(name string, fac SourceFactory, opts ...SourceOption) *Stream {
	n := b.addNode(&node{
		name:        name,
		parallelism: b.cfg.DefaultParallelism,
		isSource:    true,
		sourceFac:   fac,
		wmInterval:  b.cfg.WatermarkInterval,
	})
	for _, o := range opts {
		o(n)
	}
	return &Stream{b: b, node: n}
}

// apply appends an operator node downstream of s.
func (s *Stream) apply(name string, fac OperatorFactory, parallelism int) *Stream {
	if s.b.err != nil {
		return &Stream{b: s.b, node: s.node}
	}
	if parallelism <= 0 {
		parallelism = s.b.cfg.DefaultParallelism
	}
	n := s.b.addNode(&node{name: name, parallelism: parallelism, opFac: fac})
	kind := PartitionRebalance
	var sel KeySelector
	if s.keySel != nil {
		kind, sel = PartitionHash, s.keySel
	} else if s.node.parallelism == parallelism {
		kind = PartitionForward
	}
	s.b.addEdge(s.node, n, kind, sel)
	return &Stream{b: s.b, node: n}
}

// Process attaches a custom operator with the stream's default wiring.
func (s *Stream) Process(name string, fac OperatorFactory) *Stream {
	return s.apply(name, fac, 0)
}

// ProcessWith attaches a custom operator with explicit parallelism.
func (s *Stream) ProcessWith(name string, fac OperatorFactory, parallelism int) *Stream {
	return s.apply(name, fac, parallelism)
}

// Map transforms each event; returning the zero Event with ok=false drops it.
// The transform is pure (it never sees the operator context), so the columnar
// whole-batch path runs it over the batch and emits the outputs in bulk.
func (s *Stream) Map(name string, fn func(e Event) (Event, bool)) *Stream {
	return s.Process(name, func() Operator {
		return &mapOperator{
			fn: func(e Event, ctx Context) error {
				if out, ok := fn(e); ok {
					ctx.Emit(out)
				}
				return nil
			},
			xform: fn,
		}
	})
}

// Filter keeps events satisfying pred. Like Map, the predicate is pure, so
// the columnar whole-batch path filters the batch and emits in bulk.
func (s *Stream) Filter(name string, pred func(e Event) bool) *Stream {
	return s.Process(name, func() Operator {
		return &mapOperator{
			fn: func(e Event, ctx Context) error {
				if pred(e) {
					ctx.Emit(e)
				}
				return nil
			},
			xform: func(e Event) (Event, bool) { return e, pred(e) },
		}
	})
}

// FlatMap expands each event into zero or more events.
func (s *Stream) FlatMap(name string, fn func(e Event, emit func(Event))) *Stream {
	return s.Process(name, MapFunc(func(e Event, ctx Context) error {
		fn(e, ctx.Emit)
		return nil
	}))
}

// KeyBy marks the stream as keyed: the next operator receives hash-partitioned
// input and its state/timers are scoped per key.
func (s *Stream) KeyBy(sel KeySelector) *Stream {
	return &Stream{b: s.b, node: s.node, keySel: sel}
}

// Rebalance clears keying, returning to round-robin distribution.
func (s *Stream) Rebalance() *Stream {
	return &Stream{b: s.b, node: s.node}
}

// Broadcast connects the next operator with broadcast partitioning.
func (s *Stream) Broadcast(name string, fac OperatorFactory, parallelism int) *Stream {
	if s.b.err != nil {
		return &Stream{b: s.b, node: s.node}
	}
	if parallelism <= 0 {
		parallelism = s.b.cfg.DefaultParallelism
	}
	n := s.b.addNode(&node{name: name, parallelism: parallelism, opFac: fac})
	s.b.addEdge(s.node, n, PartitionBroadcast, nil)
	return &Stream{b: s.b, node: n}
}

// Sink terminates the stream into a sink operator with parallelism 1.
func (s *Stream) Sink(name string, fac OperatorFactory) *Stream {
	return s.apply(name, fac, 1)
}

// Union merges this stream with others into a single input of the next
// operator. All constituent streams feed the operator added by the returned
// stream's next Process/Map/... call.
func (s *Stream) Union(others ...*Stream) *UnionStream {
	us := &UnionStream{b: s.b, parts: append([]*Stream{s}, others...)}
	return us
}

// UnionStream is a pending union; attach an operator to materialise it.
type UnionStream struct {
	b     *Builder
	parts []*Stream
}

// Process attaches an operator consuming all unioned streams.
func (u *UnionStream) Process(name string, fac OperatorFactory, parallelism int) *Stream {
	if u.b.err != nil && len(u.parts) > 0 {
		return &Stream{b: u.b, node: u.parts[0].node}
	}
	if parallelism <= 0 {
		parallelism = u.b.cfg.DefaultParallelism
	}
	n := u.b.addNode(&node{name: name, parallelism: parallelism, opFac: fac})
	for _, p := range u.parts {
		kind := PartitionRebalance
		var sel KeySelector
		if p.keySel != nil {
			kind, sel = PartitionHash, p.keySel
		}
		u.b.addEdge(p.node, n, kind, sel)
	}
	return &Stream{b: u.b, node: n}
}

// Build validates the graph and returns a runnable Job.
func (b *Builder) Build() (*Job, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.graph.validate(); err != nil {
		return nil, err
	}
	return newJob(b.cfg, b.graph), nil
}
