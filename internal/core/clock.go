package core

import "time"

// nanotime is the engine's single sanctioned wall-clock read. All
// processing-time instrumentation in this package — latency markers, barrier
// alignment and snapshot timing, backpressure stall measurement — takes
// nanosecond stamps through this hook, so streamvet's wallclock analyzer can
// verify at compile time that no event-time logic reads the wall clock
// directly: event-time code must use the injected eventtime.Clock (or event
// timestamps and watermarks), or crash-matrix replays and output-equality
// tests stop being deterministic. Tests may swap the hook for a virtual
// nanosecond source.
//
//streamvet:allow wallclock — this is the one sanctioned wall-clock read
var nanotime = func() int64 { return time.Now().UnixNano() }
