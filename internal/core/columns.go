package core

import "sync"

// Columns is the columnar view of one exchange batch: the row view plus
// per-field columns (keys, timestamps, and — when every record's Value is a
// float64 — a dense value column). Each column is materialized at most once
// per batch, on first use, so stateless operators that only walk the row
// view pay nothing for columns they never read.
//
// A Columns is pooled and owned by the runtime for the duration of a single
// ProcessBatch call: every slice in it (including Events, which aliases the
// pooled exchange batch, and every slice returned by Keys/Times/Vals) is
// recycled when the call returns. Operators must not retain the struct or
// any of those slices; copy what must outlive the call (streamvet's
// poolretain analyzer enforces this).
type Columns struct {
	// Events is the row view, in arrival order. It aliases the pooled
	// exchange batch.
	Events []Event

	keys    []string
	times   []int64
	vals    []float64
	keysOK  bool
	timesOK bool
	valsOK  bool
	dense   bool
}

// Len returns the number of records in the batch.
func (c *Columns) Len() int { return len(c.Events) }

// Keys returns the key column (Events[i].Key), materializing it on first
// call. Consecutive equal keys form the key runs whole-batch operators
// amortize state lookups over.
func (c *Columns) Keys() []string {
	if !c.keysOK {
		keys := c.keys[:0]
		for i := range c.Events {
			keys = append(keys, c.Events[i].Key)
		}
		c.keys = keys
		c.keysOK = true
	}
	return c.keys //streamvet:allow poolretain — call-scoped column view, recycled by releaseColumns
}

// Times returns the timestamp column (Events[i].Timestamp), materializing it
// on first call.
func (c *Columns) Times() []int64 {
	if !c.timesOK {
		times := c.times[:0]
		for i := range c.Events {
			times = append(times, c.Events[i].Timestamp)
		}
		c.times = times
		c.timesOK = true
	}
	return c.times //streamvet:allow poolretain — call-scoped column view, recycled by releaseColumns
}

// Vals returns the dense float64 value column (Events[i].Value.(float64)),
// materializing it on first call, or nil if any record's Value is not a
// float64. A non-nil result covers the whole batch, ready for the unrolled
// window kernels.
func (c *Columns) Vals() []float64 {
	if !c.valsOK {
		vals := c.vals[:0]
		c.dense = true
		for i := range c.Events {
			v, ok := c.Events[i].Value.(float64)
			if !ok {
				c.dense = false
				break
			}
			vals = append(vals, v)
		}
		c.vals = vals
		c.valsOK = true
	}
	if !c.dense {
		return nil
	}
	return c.vals //streamvet:allow poolretain — call-scoped column view, recycled by releaseColumns
}

var colsPool = sync.Pool{New: func() any { return new(Columns) }}

// buildColumns wraps a pooled exchange batch in a columnar view. The view
// aliases b and must be released with releaseColumns before b is recycled.
func buildColumns(b *[]Event) *Columns {
	c := colsPool.Get().(*Columns)
	c.Events = *b
	return c //streamvet:allow poolretain — runtime-owned view, released before the batch is recycled
}

// releaseColumns drops the batch alias and string references (so the pool
// doesn't pin event payloads) and recycles the view.
func releaseColumns(c *Columns) {
	c.Events = nil
	clear(c.keys)
	c.keys = c.keys[:0]
	c.times = c.times[:0]
	c.vals = c.vals[:0]
	c.keysOK, c.timesOK, c.valsOK, c.dense = false, false, false, false
	colsPool.Put(c)
}
