package core

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/eventtime"
	"repro/internal/state"
)

// genEvents builds n events with ascending timestamps and cyclic keys.
func genEvents(n, keys int) []Event {
	evs := make([]Event, n)
	for i := range evs {
		evs[i] = Event{
			Key:       fmt.Sprintf("k%d", i%keys),
			Timestamp: int64(i * 10),
			Value:     int64(1),
		}
	}
	return evs
}

func runJob(t *testing.T, j *Job) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := j.Run(ctx); err != nil {
		t.Fatalf("job failed: %v", err)
	}
}

func TestMapFilterPipeline(t *testing.T) {
	b := NewBuilder(Config{Name: "map-filter"})
	sink := NewCollectSink()
	b.Source("src", NewSliceSourceFactory(genEvents(100, 4))).
		Map("double", func(e Event) (Event, bool) {
			e.Value = e.Value.(int64) * 2
			return e, true
		}).
		Filter("evens", func(e Event) bool { return e.Timestamp%20 == 0 }).
		Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	runJob(t, j)
	if got := sink.Len(); got != 50 {
		t.Fatalf("want 50 events, got %d", got)
	}
	for _, e := range sink.Events() {
		if e.Value.(int64) != 2 {
			t.Fatalf("value not doubled: %v", e)
		}
	}
}

func TestParallelKeyedCount(t *testing.T) {
	const n, keys = 1000, 7
	b := NewBuilder(Config{Name: "keyed-count", DefaultParallelism: 1})
	sink := NewCollectSink()

	counter := func() Operator {
		return &countOperator{}
	}
	b.Source("src", NewSliceSourceFactory(genEvents(n, keys)), WithParallelism(2)).
		KeyBy(func(e Event) string { return e.Key }).
		ProcessWith("count", counter, 3).
		Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	runJob(t, j)

	// The count operator emits the final count per key on Close.
	totals := map[string]int64{}
	for _, e := range sink.Events() {
		totals[e.Key] += e.Value.(int64)
	}
	if len(totals) != keys {
		t.Fatalf("want %d keys, got %d: %v", keys, len(totals), totals)
	}
	sum := int64(0)
	for _, v := range totals {
		sum += v
	}
	if sum != n {
		t.Fatalf("want total %d, got %d", n, sum)
	}
}

// countOperator counts elements per key in managed state and emits totals on
// Close.
type countOperator struct {
	BaseOperator
}

func (c *countOperator) ProcessElement(e Event, ctx Context) error {
	st := ctx.State().Value("count")
	cur, _ := st.Get()
	n, _ := cur.(int64)
	st.Set(n + 1)
	return nil
}

func (c *countOperator) Close(ctx Context) error {
	ctx.State().ForEachKey("count", func(key string, v any) bool {
		ctx.Emit(Event{Key: key, Value: v})
		return true
	})
	return nil
}

func TestEventTimeTimersFireWithWatermarks(t *testing.T) {
	// An operator that registers a timer 50ms after each event and emits on
	// fire; with bounded disorder 0 all timers must fire by end of stream.
	b := NewBuilder(Config{Name: "timers", WatermarkInterval: 1})
	sink := NewCollectSink()
	fac := func() Operator { return &timerEcho{} }
	b.Source("src", NewSliceSourceFactory(genEvents(50, 3)), WithBoundedDisorder(0)).
		KeyBy(func(e Event) string { return e.Key }).
		Process("echo", fac).
		Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	runJob(t, j)
	if sink.Len() != 50 {
		t.Fatalf("want 50 timer firings, got %d", sink.Len())
	}
	// Watermark visible to the operator must have been monotone.
	for _, e := range sink.Events() {
		if e.Value.(int64) < 0 {
			t.Fatalf("timer fired before watermark passed it: %v", e)
		}
	}
}

type timerEcho struct {
	BaseOperator
}

func (o *timerEcho) ProcessElement(e Event, ctx Context) error {
	st := ctx.State().List("pending")
	st.Append(e.Timestamp)
	ctx.RegisterEventTimeTimer(e.Timestamp + 50)
	return nil
}

func (o *timerEcho) OnTimer(ts int64, ctx Context) error {
	lag := ctx.CurrentWatermark() - ts // >= 0 iff watermark passed the timer
	ctx.Emit(Event{Key: ctx.Key(), Timestamp: ts, Value: lag})
	return nil
}

func TestWatermarkAlignmentAcrossChannels(t *testing.T) {
	// Two parallel sources; downstream watermark must be the min across
	// channels, hence monotone at the sink.
	b := NewBuilder(Config{Name: "wm-align", WatermarkInterval: 1})
	var wms []int64
	probe := func() Operator { return &wmProbe{out: &wms} }
	b.Source("src", NewSliceSourceFactory(genEvents(200, 5)), WithParallelism(2), WithBoundedDisorder(0)).
		ProcessWith("probe", probe, 1).
		Sink("out", NewCollectSink().Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	runJob(t, j)
	if len(wms) == 0 {
		t.Fatal("probe saw no watermarks")
	}
	for i := 1; i < len(wms); i++ {
		if wms[i] < wms[i-1] {
			t.Fatalf("watermark regressed: %d then %d", wms[i-1], wms[i])
		}
	}
}

type wmProbe struct {
	BaseOperator
	out *[]int64
}

func (o *wmProbe) OnWatermark(wm int64, _ Context) error {
	if wm != eventtime.MaxWatermark {
		*o.out = append(*o.out, wm)
	}
	return nil
}

func TestCheckpointAndRestore(t *testing.T) {
	// Run a counting job with periodic checkpoints; then restore a second
	// job from the last checkpoint and verify counts continue (state and
	// source offsets both restored) so the final total matches a clean run.
	const n, keys = 400, 4
	store := NewMemorySnapshotStore()

	build := func(sink *CollectSink) *Job {
		b := NewBuilder(Config{
			Name:            "chk",
			SnapshotStore:   store,
			CheckpointEvery: 50,
			// Keep the source close behind consumers so barriers are
			// injected mid-stream deterministically.
			ChannelCapacity: 4,
		})
		b.Source("src", NewSliceSourceFactory(genEvents(n, keys))).
			KeyBy(func(e Event) string { return e.Key }).
			Process("count", func() Operator { return &countOperator{} }).
			Sink("out", sink.Factory())
		j, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}

	// First run to completion: checkpoints are taken along the way.
	sink1 := NewCollectSink()
	j1 := build(sink1)
	runJob(t, j1)
	cp := j1.LastCheckpoint()
	if cp < 0 {
		t.Fatal("no checkpoint completed")
	}

	// Restore from the checkpoint: the job resumes from the snapshot offset
	// and replays only the tail; per-key totals at Close must still equal
	// the full count (state restored + remaining events).
	sink2 := NewCollectSink()
	j2 := build(sink2)
	j2.RestoreFrom(cp)
	runJob(t, j2)

	totals := map[string]int64{}
	for _, e := range sink2.Events() {
		totals[e.Key] += e.Value.(int64)
	}
	sum := int64(0)
	for _, v := range totals {
		sum += v
	}
	if sum != n {
		t.Fatalf("restored run: want total %d, got %d (%v)", n, sum, totals)
	}
}

func TestSavepointStopsAndResumes(t *testing.T) {
	// Trigger a savepoint mid-stream: the job stops early; a second job
	// restored from the savepoint processes exactly the remainder.
	const n = 300
	store := NewMemorySnapshotStore()
	sink1 := NewCollectSink()

	// The trigger operator requests a savepoint after 100 elements; the tiny
	// channel capacity keeps the source close behind the sink so the barrier
	// is injected before the source finishes.
	var jobRef *Job
	b := NewBuilder(Config{Name: "sp", SnapshotStore: store, ChannelCapacity: 2})
	b.Source("src", NewSliceSourceFactory(genEvents(n, 3))).
		Process("trigger", func() Operator { return &savepointTrigger{at: 100, job: &jobRef} }).
		Sink("out", sink1.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	jobRef = j
	runJob(t, j)
	cp := j.LastCheckpoint()
	if cp < 0 {
		t.Fatal("savepoint did not complete")
	}
	got1 := sink1.Len()
	if got1 >= n {
		t.Fatalf("savepoint did not stop the job early (%d events)", got1)
	}

	sink2 := NewCollectSink()
	b2 := NewBuilder(Config{Name: "sp2", SnapshotStore: store})
	b2.Source("src", NewSliceSourceFactory(genEvents(n, 3))).
		Sink("out", sink2.Factory())
	j2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	j2.RestoreFrom(cp)
	runJob(t, j2)
	if got1+sink2.Len() != n {
		t.Fatalf("savepoint split lost/duplicated events: %d + %d != %d", got1, sink2.Len(), n)
	}
}

// savepointTrigger forwards events and requests a savepoint after `at`
// elements have passed through.
type savepointTrigger struct {
	BaseOperator
	at   int
	seen int
	job  **Job
}

func (o *savepointTrigger) ProcessElement(e Event, ctx Context) error {
	ctx.Emit(e)
	o.seen++
	if o.seen == o.at && *o.job != nil {
		(*o.job).TriggerSavepoint()
	}
	return nil
}

func TestExactlyOnceNoDuplicatesAcrossRestore(t *testing.T) {
	// With aligned barriers and replayable sources, restoring from the
	// savepoint and concatenating outputs yields exactly the input stream.
	const n = 200
	store := NewMemorySnapshotStore()
	events := genEvents(n, 1)

	run := func(restoreFrom int64, stopAt int) ([]Event, int64) {
		sink := NewCollectSink()
		var jobRef *Job
		b := NewBuilder(Config{Name: "eo", SnapshotStore: store, ChannelCapacity: 2})
		s := b.Source("src", NewSliceSourceFactory(events))
		if stopAt > 0 {
			s = s.Process("mid", func() Operator { return &savepointTrigger{at: stopAt, job: &jobRef} })
		} else {
			s = s.Map("mid", func(e Event) (Event, bool) { return e, true })
		}
		s.Sink("out", sink.Factory())
		j, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		jobRef = j
		if restoreFrom >= 0 {
			j.RestoreFrom(restoreFrom)
		}
		runJob(t, j)
		return sink.Events(), j.LastCheckpoint()
	}

	first, cp := run(-1, 60)
	if cp < 0 {
		t.Fatal("no savepoint")
	}
	second, _ := run(cp, 0)

	all := append(append([]Event(nil), first...), second...)
	if len(all) != n {
		t.Fatalf("want exactly %d events, got %d (first=%d second=%d)", n, len(all), len(first), len(second))
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Timestamp < all[j].Timestamp })
	for i, e := range all {
		if e.Timestamp != int64(i*10) {
			t.Fatalf("event %d has timestamp %d; duplicate or loss detected", i, e.Timestamp)
		}
	}
}

func TestBroadcastReachesAllInstances(t *testing.T) {
	const n = 50
	b := NewBuilder(Config{Name: "bcast"})
	sink := NewCollectSink()
	s := b.Source("src", NewSliceSourceFactory(genEvents(n, 2)))
	s.Broadcast("fan", MapFunc(func(e Event, ctx Context) error {
		e.Key = fmt.Sprintf("inst-%d", ctx.InstanceIndex())
		ctx.Emit(e)
		return nil
	}), 3).Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	runJob(t, j)
	if sink.Len() != n*3 {
		t.Fatalf("broadcast: want %d events, got %d", n*3, sink.Len())
	}
}

func TestUnionMergesStreams(t *testing.T) {
	b := NewBuilder(Config{Name: "union"})
	sink := NewCollectSink()
	s1 := b.Source("a", NewSliceSourceFactory(genEvents(30, 1)))
	s2 := b.Source("b", NewSliceSourceFactory(genEvents(20, 1)))
	s1.Union(s2).Process("merge", MapFunc(func(e Event, ctx Context) error {
		ctx.Emit(e)
		return nil
	}), 1).Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	runJob(t, j)
	if sink.Len() != 50 {
		t.Fatalf("union: want 50, got %d", sink.Len())
	}
}

func TestGraphValidationRejectsCycles(t *testing.T) {
	g := &Graph{}
	a := &node{id: 0, name: "a", parallelism: 1, isSource: true, sourceFac: NewSliceSourceFactory(nil)}
	bn := &node{id: 1, name: "b", parallelism: 1, opFac: MapFunc(nil)}
	c := &node{id: 2, name: "c", parallelism: 1, opFac: MapFunc(nil)}
	g.nodes = []*node{a, bn, c}
	e1 := &edge{id: 0, from: a, to: bn, kind: PartitionForward}
	e2 := &edge{id: 1, from: bn, to: c, kind: PartitionForward}
	e3 := &edge{id: 2, from: c, to: bn, kind: PartitionForward}
	g.edges = []*edge{e1, e2, e3}
	a.outEdges = []*edge{e1}
	bn.inEdges = []*edge{e1, e3}
	bn.outEdges = []*edge{e2}
	c.inEdges = []*edge{e2}
	c.outEdges = []*edge{e3}
	if err := g.validate(); err == nil {
		t.Fatal("cycle not rejected")
	}
}

func TestLSMBackendInEngine(t *testing.T) {
	dir := t.TempDir()
	b := NewBuilder(Config{
		Name: "lsm-backend",
		BackendFactory: func(nodeName string, instance int) (state.Backend, error) {
			return state.NewLSMBackend(fmt.Sprintf("%s/%s-%d", dir, nodeName, instance), 0)
		},
	})
	sink := NewCollectSink()
	b.Source("src", NewSliceSourceFactory(genEvents(100, 5))).
		KeyBy(func(e Event) string { return e.Key }).
		Process("count", func() Operator { return &countOperator{} }).
		Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	runJob(t, j)
	total := int64(0)
	for _, e := range sink.Events() {
		total += e.Value.(int64)
	}
	if total != 100 {
		t.Fatalf("lsm-backed count: want 100, got %d", total)
	}
}

func TestRescaleCheckpointRedistributesState(t *testing.T) {
	// Run a keyed count at parallelism 2, savepoint mid-stream, rescale the
	// count node to parallelism 4, resume, and verify the total still adds
	// up: no key lost or double-counted across migration.
	const n, keys = 500, 11
	store := NewMemorySnapshotStore()
	events := genEvents(n, keys)

	build := func(par int, stopAt int, jobRef **Job, sink *CollectSink) *Job {
		b := NewBuilder(Config{Name: "rescale", SnapshotStore: store, ChannelCapacity: 2})
		s := b.Source("src", NewSliceSourceFactory(events))
		if stopAt > 0 {
			s = s.Process("trigger", func() Operator { return &savepointTrigger{at: stopAt, job: jobRef} })
		} else {
			s = s.Map("trigger", func(e Event) (Event, bool) { return e, true })
		}
		s.KeyBy(func(e Event) string { return e.Key }).
			ProcessWith("count", func() Operator { return &countOperator{} }, par).
			Sink("out", sink.Factory())
		j, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}

	var j1 *Job
	sink1 := NewCollectSink()
	j1 = build(2, 200, &j1, sink1)
	runJob(t, j1)
	cp := j1.LastCheckpoint()
	if cp < 0 {
		t.Fatal("no savepoint")
	}

	stats, err := RescaleCheckpoint(store, cp, cp+1, "count", 4, state.DefaultKeyGroups)
	if err != nil {
		t.Fatal(err)
	}
	if stats.OldParallelism != 2 || stats.NewParallelism != 4 {
		t.Fatalf("unexpected stats: %+v", stats)
	}

	sink2 := NewCollectSink()
	j2 := build(4, 0, nil, sink2)
	j2.RestoreFrom(cp + 1)
	runJob(t, j2)

	totals := map[string]int64{}
	for _, e := range sink2.Events() {
		totals[e.Key] += e.Value.(int64)
	}
	sum := int64(0)
	for _, v := range totals {
		sum += v
	}
	if sum != n {
		t.Fatalf("after rescale: want total %d, got %d (%d keys)", n, sum, len(totals))
	}
	if len(totals) != keys {
		t.Fatalf("after rescale: want %d keys, got %d", keys, len(totals))
	}
}

func TestOperatorErrorFailsJob(t *testing.T) {
	b := NewBuilder(Config{Name: "failing"})
	b.Source("src", NewSliceSourceFactory(genEvents(100, 2))).
		Process("boom", MapFunc(func(e Event, ctx Context) error {
			if e.Timestamp >= 300 {
				return fmt.Errorf("injected failure at %d", e.Timestamp)
			}
			ctx.Emit(e)
			return nil
		})).
		Sink("out", NewCollectSink().Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = j.Run(ctx)
	if err == nil {
		t.Fatal("operator error did not fail the job")
	}
	if !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("wrong error surfaced: %v", err)
	}
}

func TestJobRunsOnlyOnce(t *testing.T) {
	b := NewBuilder(Config{Name: "once"})
	b.Source("src", NewSliceSourceFactory(genEvents(5, 1))).
		Sink("out", NewCollectSink().Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	runJob(t, j)
	if err := j.Run(context.Background()); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestJobStopCancelsPromptly(t *testing.T) {
	// An endless source must stop when Stop is called.
	endless := SourceFunc(func(ctx SourceContext) error {
		i := int64(0)
		for ctx.Collect(Event{Timestamp: i}) {
			i++
		}
		return nil
	})
	sink := NewCollectSink()
	b := NewBuilder(Config{Name: "stoppable", ChannelCapacity: 4})
	b.Source("src", endless).Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- j.Run(context.Background()) }()
	for sink.Len() < 100 {
		time.Sleep(time.Millisecond)
	}
	j.Stop()
	// Stop is a graceful user cancellation: Run must return promptly (nil,
	// since the caller's own context is intact).
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("job did not stop")
	}
}

func TestJobMetricsCountRecords(t *testing.T) {
	b := NewBuilder(Config{Name: "metrics"})
	sink := NewCollectSink()
	b.Source("src", NewSliceSourceFactory(genEvents(50, 2))).
		Map("m", func(e Event) (Event, bool) { return e, true }).
		Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	runJob(t, j)
	if got := j.Metrics().Counter("node.src.out").Value(); got != 50 {
		t.Fatalf("source out counter: want 50, got %d", got)
	}
	if got := j.Metrics().Counter("node.m.in").Value(); got != 50 {
		t.Fatalf("map in counter: want 50, got %d", got)
	}
	if got := j.Metrics().Counter("node.m.out").Value(); got != 50 {
		t.Fatalf("map out counter: want 50, got %d", got)
	}
}

func TestBuilderValidationErrors(t *testing.T) {
	// Empty graph.
	if _, err := NewBuilder(Config{}).Build(); err == nil {
		t.Fatal("empty graph accepted")
	}
	// Duplicate node names.
	b := NewBuilder(Config{})
	b.Source("dup", NewSliceSourceFactory(nil))
	b.Source("dup", NewSliceSourceFactory(nil))
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate names accepted")
	}
	// No source.
	g := &Graph{nodes: []*node{{id: 0, name: "op", parallelism: 1, opFac: MapFunc(nil),
		inEdges: []*edge{{}}}}}
	if err := g.validate(); err == nil {
		t.Fatal("graph without source accepted")
	}
}

func TestNonDrainStopDoesNotFlushTimers(t *testing.T) {
	// With a savepoint stop, registered timers must NOT fire (they are
	// captured in the snapshot instead); with a natural end they all fire.
	mkJob := func(stopAt int, jobRef **Job, store SnapshotStore) (*Job, *CollectSink) {
		sink := NewCollectSink()
		b := NewBuilder(Config{Name: "drain-test", SnapshotStore: store,
			ChannelCapacity: 2, WatermarkInterval: 4})
		s := b.Source("src", NewSliceSourceFactory(genEvents(200, 3)), WithBoundedDisorder(0))
		if stopAt > 0 {
			s = s.Process("mid", func() Operator { return &savepointTrigger{at: stopAt, job: jobRef} })
		} else {
			s = s.Map("mid", func(e Event) (Event, bool) { return e, true })
		}
		s.KeyBy(func(e Event) string { return e.Key }).
			Process("timers", func() Operator { return &farTimerOp{} }).
			Sink("out", sink.Factory())
		j, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return j, sink
	}

	// Natural end: all timers fire via the final watermark.
	jNat, sinkNat := mkJob(0, nil, nil)
	runJob(t, jNat)
	if sinkNat.Len() != 200 {
		t.Fatalf("natural end should fire all 200 timers, got %d", sinkNat.Len())
	}

	// Savepoint stop: no timer fires at stop; they fire after restore+finish.
	store := NewMemorySnapshotStore()
	var j1 *Job
	job1, sink1 := mkJob(50, &j1, store)
	j1 = job1
	runJob(t, job1)
	if sink1.Len() != 0 {
		t.Fatalf("savepoint stop fired %d timers; want 0", sink1.Len())
	}
	job2, sink2 := mkJob(0, nil, store)
	job2.RestoreFrom(job1.LastCheckpoint())
	runJob(t, job2)
	if sink2.Len() != 200 {
		t.Fatalf("restored run should fire all 200 timers, got %d", sink2.Len())
	}
}

// farTimerOp registers a far-future timer per element; they only fire when
// event time is driven to infinity (drain) or by later stream progress.
type farTimerOp struct {
	BaseOperator
}

func (o *farTimerOp) ProcessElement(e Event, ctx Context) error {
	// One unique far-future timer per element; they fire only when event
	// time is driven to infinity (drain).
	ctx.RegisterEventTimeTimer((1 << 40) + e.Timestamp + 1)
	return nil
}

func (o *farTimerOp) OnTimer(ts int64, ctx Context) error {
	if ts > 1<<40 { // the per-element timers
		ctx.Emit(Event{Key: ctx.Key(), Timestamp: ts})
	}
	return nil
}

func TestFileSnapshotStore(t *testing.T) {
	dir := t.TempDir()
	store, err := NewFileSnapshotStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Latest(); ok {
		t.Fatal("empty store reports a checkpoint")
	}
	if err := store.Save(1, "op-0", []byte("snap1")); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(1, "src-0", []byte("snap2")); err != nil {
		t.Fatal(err)
	}
	// Incomplete checkpoints are invisible.
	if _, ok := store.Latest(); ok {
		t.Fatal("incomplete checkpoint reported")
	}
	meta := CheckpointMeta{ID: 1, JobName: "fs", InstanceIDs: []string{"op-0", "src-0"}, Bytes: 10}
	if err := store.Complete(meta); err != nil {
		t.Fatal(err)
	}
	got, ok := store.Latest()
	if !ok || got.ID != 1 || got.JobName != "fs" {
		t.Fatalf("latest: %+v %v", got, ok)
	}
	data, err := store.Load(1, "op-0")
	if err != nil || string(data) != "snap1" {
		t.Fatalf("load: %q %v", data, err)
	}
	ids, err := store.Instances(1)
	if err != nil || len(ids) != 2 {
		t.Fatalf("instances: %v %v", ids, err)
	}
	// A newer completed checkpoint wins.
	store.Save(3, "op-0", []byte("x"))
	store.Complete(CheckpointMeta{ID: 3})
	if got, _ := store.Latest(); got.ID != 3 {
		t.Fatalf("latest should be 3, got %d", got.ID)
	}
	// Reopening the directory sees the same state (process restart).
	store2, err := NewFileSnapshotStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := store2.Latest(); !ok || got.ID != 3 {
		t.Fatalf("reopened store: %+v %v", got, ok)
	}
	if _, err := store2.Load(99, "nope"); err == nil {
		t.Fatal("missing checkpoint load succeeded")
	}
	if _, err := store2.Instances(99); err == nil {
		t.Fatal("missing checkpoint instances succeeded")
	}
}

func TestRecoveryAcrossProcessRestartViaFileStore(t *testing.T) {
	// End-to-end: checkpoint to disk, build a brand-new job (fresh "process")
	// against the same directory, restore, and finish exactly-once.
	dir := t.TempDir()
	const n = 300
	events := genEvents(n, 3)

	run := func(restore bool, stopAt int) (int, int64) {
		store, err := NewFileSnapshotStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		sink := NewCollectSink()
		var jobRef *Job
		b := NewBuilder(Config{Name: "file-rec", SnapshotStore: store, ChannelCapacity: 2})
		s := b.Source("src", NewSliceSourceFactory(events))
		if stopAt > 0 {
			s = s.Process("mid", func() Operator { return &savepointTrigger{at: stopAt, job: &jobRef} })
		} else {
			s = s.Map("mid", func(e Event) (Event, bool) { return e, true })
		}
		s.Sink("out", sink.Factory())
		j, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		jobRef = j
		if restore {
			cp, ok := store.Latest()
			if !ok {
				t.Fatal("no checkpoint on disk")
			}
			j.RestoreFrom(cp.ID)
		}
		runJob(t, j)
		return sink.Len(), j.LastCheckpoint()
	}

	got1, cp := run(false, 120)
	if cp < 0 {
		t.Fatal("no savepoint written")
	}
	got2, _ := run(true, 0)
	if got1+got2 != n {
		t.Fatalf("file-store recovery lost/duplicated: %d + %d != %d", got1, got2, n)
	}
}

func TestFlatMapAndRebalance(t *testing.T) {
	b := NewBuilder(Config{Name: "flatmap"})
	sink := NewCollectSink()
	b.Source("src", NewSliceSourceFactory(genEvents(20, 2))).
		KeyBy(func(e Event) string { return e.Key }).
		Rebalance(). // clear keying again
		FlatMap("dup", func(e Event, emit func(Event)) {
			emit(e)
			emit(e)
		}).
		Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	runJob(t, j)
	if sink.Len() != 40 {
		t.Fatalf("flatmap: want 40, got %d", sink.Len())
	}
}

func TestDeleteEventTimeTimer(t *testing.T) {
	// Register then delete: the timer must not fire.
	b := NewBuilder(Config{Name: "del-timer", WatermarkInterval: 1})
	sink := NewCollectSink()
	b.Source("src", NewSliceSourceFactory(genEvents(10, 1)), WithBoundedDisorder(0)).
		KeyBy(func(e Event) string { return e.Key }).
		Process("reg", func() Operator { return &regDelOp{} }).
		Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	runJob(t, j)
	if sink.Len() != 0 {
		t.Fatalf("deleted timers fired %d times", sink.Len())
	}
}

type regDelOp struct {
	BaseOperator
}

func (o *regDelOp) ProcessElement(e Event, ctx Context) error {
	ctx.RegisterEventTimeTimer(e.Timestamp + 5)
	ctx.DeleteEventTimeTimer(e.Timestamp + 5)
	return nil
}

func (o *regDelOp) OnTimer(ts int64, ctx Context) error {
	ctx.Emit(Event{Key: ctx.Key(), Timestamp: ts})
	return nil
}

func TestContextAccessors(t *testing.T) {
	b := NewBuilder(Config{Name: "accessors"})
	sink := NewCollectSink()
	b.Source("src", NewSliceSourceFactory(genEvents(4, 1))).
		ProcessWith("probe", MapFunc(func(e Event, ctx Context) error {
			if ctx.Parallelism() != 2 {
				return fmt.Errorf("parallelism: %d", ctx.Parallelism())
			}
			if ctx.InstanceIndex() < 0 || ctx.InstanceIndex() >= 2 {
				return fmt.Errorf("instance index: %d", ctx.InstanceIndex())
			}
			if ctx.Logger() == nil {
				return fmt.Errorf("nil logger")
			}
			ctx.Emit(e)
			return nil
		}), 2).
		Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	j.SetLogger(io.Discard)
	runJob(t, j)
	if sink.Len() != 4 {
		t.Fatalf("accessors pipeline dropped events: %d", sink.Len())
	}
}

func TestSourceContextAccessors(t *testing.T) {
	b := NewBuilder(Config{Name: "src-acc"})
	sink := NewCollectSink()
	probe := SourceFunc(func(ctx SourceContext) error {
		if ctx.Parallelism() != 2 || ctx.InstanceIndex() >= 2 {
			return fmt.Errorf("bad source identity %d/%d", ctx.InstanceIndex(), ctx.Parallelism())
		}
		ctx.Collect(Event{Timestamp: int64(ctx.InstanceIndex())})
		return nil
	})
	b.Source("src", probe, WithParallelism(2), WithWatermarkInterval(4)).
		Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	runJob(t, j)
	if sink.Len() != 2 {
		t.Fatalf("want 2 events, got %d", sink.Len())
	}
}

func TestCollectSinkHelpers(t *testing.T) {
	s := NewCollectSink()
	fac := s.Factory()
	op := fac()
	op.ProcessElement(Event{Key: "b", Timestamp: 2}, nil)
	op.ProcessElement(Event{Key: "a", Timestamp: 1}, nil)
	sorted := s.SortedByTimestamp()
	if len(sorted) != 2 || sorted[0].Timestamp != 1 {
		t.Fatalf("sorted: %v", sorted)
	}
	if s.Events()[0].String() == "" {
		t.Fatal("event string empty")
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatal("reset failed")
	}
}
