package core

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/state"
)

// cpTrigger forwards events and requests a checkpoint every `every` records,
// then briefly yields so the coordinator can complete it before the next
// trigger. Auto-triggering via CheckpointEvery completes only one or two
// checkpoints in a fast test run (requests arriving while one is in flight
// are coalesced away); explicit pacing gives the multi-checkpoint histories
// the delta tests need.
type cpTrigger struct {
	BaseOperator
	every int
	seen  int
	job   **Job
}

func (o *cpTrigger) ProcessElement(e Event, ctx Context) error {
	ctx.Emit(e)
	o.seen++
	if o.every > 0 && o.seen%o.every == 0 && *o.job != nil {
		(*o.job).TriggerCheckpoint()
		time.Sleep(2 * time.Millisecond)
	}
	return nil
}

// skewedEvents builds a two-phase stream: the first fill events spread over
// spread keys (building a wide state), the rest hammer only hot keys. Late
// checkpoints therefore see a small change set against a large total state —
// the regime where delta checkpoints must win.
func skewedEvents(fill, hammer, spread, hot int) []Event {
	evs := make([]Event, 0, fill+hammer)
	for i := 0; i < fill; i++ {
		evs = append(evs, Event{Key: fmt.Sprintf("k%04d", i%spread), Timestamp: int64(i * 10), Value: int64(1)})
	}
	for i := 0; i < hammer; i++ {
		evs = append(evs, Event{Key: fmt.Sprintf("k%04d", i%hot), Timestamp: int64((fill + i) * 10), Value: int64(1)})
	}
	return evs
}

// countPayloadBytes sums the stored payload bytes of checkpoint cp's count
// instances.
func countPayloadBytes(t *testing.T, s SnapshotStore, cp int64) int {
	t.Helper()
	ids, err := s.Instances(cp)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, id := range ids {
		if !strings.HasPrefix(id, "count-") {
			continue
		}
		data, err := s.Load(cp, id)
		if err != nil {
			t.Fatal(err)
		}
		total += len(data)
	}
	return total
}

func TestDeltaCheckpointsEndToEnd(t *testing.T) {
	// Run a keyed count with delta checkpoints over a skewed stream, then
	// restore a second job from the newest *delta* checkpoint: recovery must
	// replay the full image plus the delta chain and still produce the exact
	// total. Also asserts the deltas are measurably smaller than fulls.
	const n = 1200
	events := skewedEvents(800, 400, 400, 3)
	store := NewMemorySnapshotStore()

	build := func(sink *CollectSink, jobRef **Job) *Job {
		b := NewBuilder(Config{
			Name:             "delta",
			SnapshotStore:    store,
			ChannelCapacity:  4,
			DeltaCheckpoints: true,
		})
		b.Source("src", NewSliceSourceFactory(events)).
			Process("pace", func() Operator { return &cpTrigger{every: 100, job: jobRef} }).
			KeyBy(func(e Event) string { return e.Key }).
			Process("count", func() Operator { return &countOperator{} }).
			Sink("out", sink.Factory())
		j, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}

	var j1 *Job
	sink1 := NewCollectSink()
	j1 = build(sink1, &j1)
	runJob(t, j1)

	metas := store.Completed()
	var newestDelta, newestFull CheckpointMeta
	for _, m := range metas {
		if m.Parent != 0 {
			if m.ID > newestDelta.ID {
				newestDelta = m
			}
		} else if m.ID > newestFull.ID {
			newestFull = m
		}
	}
	if newestDelta.ID == 0 {
		t.Fatalf("no delta checkpoint completed (metas: %+v)", metas)
	}
	if newestFull.ID == 0 {
		t.Fatalf("no full checkpoint completed (metas: %+v)", metas)
	}

	// The smallest delta (hammer phase: ~3 touched keys vs 400 total) must be
	// well under the full image.
	minDelta := -1
	for _, m := range metas {
		if m.Parent == 0 {
			continue
		}
		if b := countPayloadBytes(t, store, m.ID); minDelta < 0 || b < minDelta {
			minDelta = b
		}
	}
	fullBytes := countPayloadBytes(t, store, newestFull.ID)
	if minDelta*3 >= fullBytes {
		t.Fatalf("delta checkpoints not sublinear: smallest delta %dB vs full %dB", minDelta, fullBytes)
	}

	// Restore from the newest delta: the runtime must resolve and replay the
	// whole parent chain.
	var j2 *Job
	sink2 := NewCollectSink()
	j2 = build(sink2, &j2)
	j2.RestoreFrom(newestDelta.ID)
	runJob(t, j2)

	total := int64(0)
	for _, e := range sink2.Events() {
		total += e.Value.(int64)
	}
	if total != n {
		t.Fatalf("restored from delta chain: want total %d, got %d", n, total)
	}
}

func TestFullSnapshotCadenceBoundsChain(t *testing.T) {
	// FullSnapshotEvery must cap the delta chain: walking any completed
	// checkpoint's parent lineage reaches a full within FullSnapshotEvery
	// links.
	const every = 3
	store := NewMemorySnapshotStore()
	sink := NewCollectSink()
	var jobRef *Job
	b := NewBuilder(Config{
		Name:              "cadence",
		SnapshotStore:     store,
		ChannelCapacity:   4,
		DeltaCheckpoints:  true,
		FullSnapshotEvery: every,
	})
	b.Source("src", NewSliceSourceFactory(genEvents(600, 4))).
		Process("pace", func() Operator { return &cpTrigger{every: 40, job: &jobRef} }).
		KeyBy(func(e Event) string { return e.Key }).
		Process("count", func() Operator { return &countOperator{} }).
		Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	jobRef = j
	runJob(t, j)

	metas := store.Completed()
	byID := make(map[int64]CheckpointMeta, len(metas))
	sawDelta := false
	for _, m := range metas {
		byID[m.ID] = m
		if m.Parent != 0 {
			sawDelta = true
		}
	}
	if !sawDelta {
		t.Fatalf("no delta checkpoints taken (metas: %+v)", metas)
	}
	for _, m := range metas {
		links := 0
		for cur := m; cur.Parent != 0; links++ {
			if links >= every {
				t.Fatalf("checkpoint %d has a delta chain longer than FullSnapshotEvery=%d", m.ID, every)
			}
			next, ok := byID[cur.Parent]
			if !ok {
				t.Fatalf("checkpoint %d references unknown parent %d", cur.ID, cur.Parent)
			}
			cur = next
		}
	}
}

func TestLSMNativeSnapshotsRestore(t *testing.T) {
	// LSM-native checkpoints reference the backend's immutable SSTables,
	// hard-linked into the file store. A second job with *fresh* backend
	// directories must recover purely from the linked files.
	const n = 600
	dir := t.TempDir()
	store, err := NewFileSnapshotStore(filepath.Join(dir, "chk"))
	if err != nil {
		t.Fatal(err)
	}

	build := func(gen string, sink *CollectSink, jobRef **Job) *Job {
		b := NewBuilder(Config{
			Name:            "lsm-native",
			SnapshotStore:   store,
			ChannelCapacity: 4,
			BackendFactory: func(nodeName string, instance int) (state.Backend, error) {
				return state.NewLSMBackend(filepath.Join(dir, gen, fmt.Sprintf("%s-%d", nodeName, instance)), 0)
			},
			LSMNativeSnapshots: true,
		})
		b.Source("src", NewSliceSourceFactory(genEvents(n, 7))).
			Process("pace", func() Operator { return &cpTrigger{every: 100, job: jobRef} }).
			KeyBy(func(e Event) string { return e.Key }).
			Process("count", func() Operator { return &countOperator{} }).
			Sink("out", sink.Factory())
		j, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}

	var j1 *Job
	sink1 := NewCollectSink()
	j1 = build("gen1", sink1, &j1)
	runJob(t, j1)
	meta, ok := store.Latest()
	if !ok {
		t.Fatal("no restorable checkpoint")
	}
	if len(meta.Files) == 0 {
		t.Fatalf("native checkpoint %d recorded no linked files", meta.ID)
	}
	for _, name := range meta.Files {
		if _, err := store.LinkedPath(meta.ID, name); err != nil {
			t.Fatalf("linked file unresolvable: %v", err)
		}
	}

	var j2 *Job
	sink2 := NewCollectSink()
	j2 = build("gen2", sink2, &j2)
	j2.RestoreFrom(meta.ID)
	runJob(t, j2)

	total := int64(0)
	for _, e := range sink2.Events() {
		total += e.Value.(int64)
	}
	if total != n {
		t.Fatalf("restored from linked SSTables: want total %d, got %d", n, total)
	}
}

func TestLSMNativeFallsBackToEmbeddedFiles(t *testing.T) {
	// With a store that cannot link local files (MemorySnapshotStore), the
	// file-native path embeds the SSTable bytes in the payload; recovery
	// materialises them in a scratch dir and adopts them.
	const n = 400
	dir := t.TempDir()
	store := NewMemorySnapshotStore()

	build := func(gen string, sink *CollectSink) *Job {
		b := NewBuilder(Config{
			Name:            "lsm-embed",
			SnapshotStore:   store,
			CheckpointEvery: 80,
			ChannelCapacity: 4,
			BackendFactory: func(nodeName string, instance int) (state.Backend, error) {
				return state.NewLSMBackend(filepath.Join(dir, gen, fmt.Sprintf("%s-%d", nodeName, instance)), 0)
			},
			LSMNativeSnapshots: true,
		})
		b.Source("src", NewSliceSourceFactory(genEvents(n, 5))).
			KeyBy(func(e Event) string { return e.Key }).
			Process("count", func() Operator { return &countOperator{} }).
			Sink("out", sink.Factory())
		j, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}

	sink1 := NewCollectSink()
	j1 := build("gen1", sink1)
	runJob(t, j1)
	cp := j1.LastCheckpoint()
	if cp < 0 {
		t.Fatal("no checkpoint completed")
	}
	if meta, _ := store.Latest(); len(meta.Files) != 0 {
		t.Fatalf("non-linking store must not record linked files, got %v", meta.Files)
	}

	sink2 := NewCollectSink()
	j2 := build("gen2", sink2)
	j2.RestoreFrom(cp)
	runJob(t, j2)

	total := int64(0)
	for _, e := range sink2.Events() {
		total += e.Value.(int64)
	}
	if total != n {
		t.Fatalf("restored from embedded files: want total %d, got %d", n, total)
	}
}

func TestDeltaChainOnNativeFullRestore(t *testing.T) {
	// The richest recovery path: fulls are file-native (linked SSTables),
	// deltas ride on top of them. Restoring the chain head must adopt the
	// linked files, then replay each delta.
	const n = 1000
	dir := t.TempDir()
	store, err := NewFileSnapshotStore(filepath.Join(dir, "chk"))
	if err != nil {
		t.Fatal(err)
	}

	build := func(gen string, sink *CollectSink, jobRef **Job) *Job {
		b := NewBuilder(Config{
			Name:            "lsm-delta",
			SnapshotStore:   store,
			ChannelCapacity: 4,
			BackendFactory: func(nodeName string, instance int) (state.Backend, error) {
				return state.NewLSMBackend(filepath.Join(dir, gen, fmt.Sprintf("%s-%d", nodeName, instance)), 0)
			},
			DeltaCheckpoints:   true,
			FullSnapshotEvery:  4,
			LSMNativeSnapshots: true,
		})
		b.Source("src", NewSliceSourceFactory(genEvents(n, 9))).
			Process("pace", func() Operator { return &cpTrigger{every: 80, job: jobRef} }).
			KeyBy(func(e Event) string { return e.Key }).
			Process("count", func() Operator { return &countOperator{} }).
			Sink("out", sink.Factory())
		j, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}

	var j1 *Job
	sink1 := NewCollectSink()
	j1 = build("gen1", sink1, &j1)
	runJob(t, j1)

	newest, ok := store.Latest()
	if !ok {
		t.Fatal("no restorable checkpoint")
	}
	if newest.Parent == 0 {
		t.Skip("newest checkpoint is a full in this run; delta-on-native not exercised")
	}

	var j2 *Job
	sink2 := NewCollectSink()
	j2 = build("gen2", sink2, &j2)
	j2.RestoreFrom(newest.ID)
	runJob(t, j2)

	total := int64(0)
	for _, e := range sink2.Events() {
		total += e.Value.(int64)
	}
	if total != n {
		t.Fatalf("restored delta-on-native chain: want total %d, got %d", n, total)
	}
}

func TestRescaleRejectsDeltaCheckpoint(t *testing.T) {
	// Rescaling redistributes a full serialized image; a delta checkpoint
	// must be rejected with a clear error, not silently mis-redistributed.
	store := NewMemorySnapshotStore()
	sink := NewCollectSink()
	var jobRef *Job
	b := NewBuilder(Config{
		Name:             "rescale-delta",
		SnapshotStore:    store,
		ChannelCapacity:  4,
		DeltaCheckpoints: true,
	})
	b.Source("src", NewSliceSourceFactory(genEvents(600, 6))).
		Process("pace", func() Operator { return &cpTrigger{every: 60, job: &jobRef} }).
		KeyBy(func(e Event) string { return e.Key }).
		ProcessWith("count", func() Operator { return &countOperator{} }, 2).
		Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	jobRef = j
	runJob(t, j)

	var delta CheckpointMeta
	for _, m := range store.Completed() {
		if m.Parent != 0 && m.ID > delta.ID {
			delta = m
		}
	}
	if delta.ID == 0 {
		t.Fatalf("no delta checkpoint completed (metas: %+v)", store.Completed())
	}
	if _, err := RescaleCheckpoint(store, delta.ID, delta.ID+100, "count", 4, state.DefaultKeyGroups); err == nil {
		t.Fatal("rescaling a delta checkpoint must fail")
	} else if !strings.Contains(err.Error(), "savepoint") {
		t.Fatalf("rescale error should point at savepoints, got: %v", err)
	}
}
