// Package core implements the dataflow stream-processing engine at the heart
// of this reproduction: a 2nd-generation, Flink/Millwheel-style scale-out
// runtime (logical graph → parallel operator instances connected by bounded
// channels) carrying records, watermarks, checkpoint barriers and
// end-of-stream markers, with managed keyed state, event-time timers, and
// aligned-barrier exactly-once snapshots. The 1st-generation techniques
// (synopses, load shedding, slack) and 3rd-generation prospects (stateful
// functions, transactions, iteration) from the paper are built on top of, or
// contrasted against, this engine by the sibling packages.
package core

import (
	"fmt"
)

// Event is one data element flowing through the dataflow. Timestamp is the
// event time in Unix milliseconds; Key is set once the stream has been keyed
// (empty on non-keyed streams).
type Event struct {
	Key       string
	Timestamp int64
	Value     any
}

// String renders the event for debugging.
func (e Event) String() string {
	return fmt.Sprintf("Event{key=%q ts=%d value=%v}", e.Key, e.Timestamp, e.Value)
}

// msgKind discriminates the in-band message types on engine channels.
type msgKind uint8

const (
	msgRecord msgKind = iota
	// msgWatermark asserts event-time progress (§2.3).
	msgWatermark
	// msgBarrier is a checkpoint barrier (aligned snapshotting, §3.1/§3.2).
	msgBarrier
	// msgEOS signals that the sending channel is exhausted.
	msgEOS
	// msgLatencyMarker is a latency probe (§3.3 observability): injected at
	// sources on a configurable interval, it rides the data channels through
	// every operator, so the time it accumulates is exactly the queueing +
	// processing latency a record experiences. Operators never see markers;
	// each instance records the latency and forwards a fresh marker.
	msgLatencyMarker
	// msgRecordBatch carries several records in one channel exchange
	// (Config.MaxBatchSize > 1), amortising per-record synchronization on the
	// hot path. A batch never spans a control message: senders flush pending
	// batches before every watermark, barrier, EOS and latency marker, so
	// alignment and progress semantics are identical to the unbatched path.
	msgRecordBatch
)

// message is the unit transported on inter-instance channels. channel is the
// receiver-local input-channel index identifying the (edge, upstream
// instance) pair the message arrived on — required for watermark and barrier
// alignment. drain qualifies msgEOS: a draining end-of-stream (natural end)
// advances event time to infinity and flushes open windows; a non-draining
// one (stop-with-savepoint) terminates without firing, so restored state
// resumes exactly where it left off.
type message struct {
	kind    msgKind
	channel int
	event   Event
	wm      int64
	barrier barrierMark
	drain   bool
	// marker is only set on msgLatencyMarker messages; a pointer keeps the
	// common message struct small on the record hot path.
	marker *latencyMarker
	// batch is only set on msgRecordBatch messages. It points at a pooled
	// slice: the receiver returns it to batchPool after unpacking, so a
	// steady-state batched exchange allocates nothing per batch.
	batch *[]Event
}

// latencyMarker is the payload of a msgLatencyMarker. Receivers must treat a
// marker as immutable — the same marker may fan out to several edges — and
// forward a fresh one.
type latencyMarker struct {
	// origin is the wall-clock UnixNano at source injection; now-origin at an
	// instance is the end-to-end latency from source to that operator.
	origin int64
	// hopped is the wall-clock UnixNano at the last forwarding hop; now-hopped
	// is the single-hop (channel + queueing) latency.
	hopped int64
	// from names the node that forwarded the marker (per-edge attribution).
	from string
	// source identifies the originating source instance.
	source string
}

// barrierMark carries checkpoint metadata with a barrier.
type barrierMark struct {
	// ID is the checkpoint sequence number.
	ID int64
	// Savepoint marks a final checkpoint taken for a planned stop/rescale.
	Savepoint bool
	// DeltaBase, when non-zero, asks backends to snapshot only the state
	// changed since that (completed) checkpoint. Backends that cannot honor
	// it fall back to a full snapshot. Savepoints are never deltas.
	DeltaBase int64
}
