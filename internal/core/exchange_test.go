package core

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/eventtime"
)

// --- Batched exchange -------------------------------------------------------

// TestBatchedKeyedCountEquality runs the parallel keyed count with batching
// enabled and verifies the totals match the unbatched run exactly.
func TestBatchedKeyedCountEquality(t *testing.T) {
	const n, keys = 1000, 7
	run := func(batch int) map[string]int64 {
		b := NewBuilder(Config{Name: "batched-count", MaxBatchSize: batch})
		sink := NewCollectSink()
		b.Source("src", NewSliceSourceFactory(genEvents(n, keys)), WithParallelism(2)).
			KeyBy(func(e Event) string { return e.Key }).
			ProcessWith("count", func() Operator { return &countOperator{} }, 3).
			Sink("out", sink.Factory())
		j, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		runJob(t, j)
		totals := map[string]int64{}
		for _, e := range sink.Events() {
			totals[e.Key] += e.Value.(int64)
		}
		return totals
	}
	want := run(0)
	got := run(64)
	if len(want) != keys || len(got) != len(want) {
		t.Fatalf("key counts differ: unbatched=%d batched=%d", len(want), len(got))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %s: unbatched=%d batched=%d", k, v, got[k])
		}
	}
}

// TestBatchedExchangeFlushesOnControl checks the sender-side invariant: a
// control message forces every open batch out first, so per-channel order is
// record-batches then control, never interleaved.
func TestBatchedExchangeFlushesOnControl(t *testing.T) {
	ch := make(chan message, 16)
	o := &outEdge{
		edge:     &edge{kind: PartitionForward},
		targets:  []chan message{ch},
		chIDs:    []int{0},
		maxBatch: 8,
		pending:  make([]*[]Event, 1),
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if !o.sendRecord(ctx, Event{Timestamp: int64(i)}) {
			t.Fatal("send failed")
		}
	}
	if len(ch) != 0 {
		t.Fatalf("batch flushed before reaching size or control: %d messages", len(ch))
	}
	if !o.broadcastCtl(ctx, message{kind: msgWatermark, wm: 100}) {
		t.Fatal("ctl send failed")
	}
	first := <-ch
	if first.kind != msgRecordBatch || len(*first.batch) != 3 {
		t.Fatalf("want 3-record batch before control, got kind=%d", first.kind)
	}
	second := <-ch
	if second.kind != msgWatermark || second.wm != 100 {
		t.Fatalf("want watermark after batch, got kind=%d", second.kind)
	}
}

// TestBatchedExchangeFlushesOnSize checks a batch ships as soon as it fills.
func TestBatchedExchangeFlushesOnSize(t *testing.T) {
	ch := make(chan message, 16)
	o := &outEdge{
		edge:     &edge{kind: PartitionForward},
		targets:  []chan message{ch},
		chIDs:    []int{0},
		maxBatch: 4,
		pending:  make([]*[]Event, 1),
	}
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		o.sendRecord(ctx, Event{Timestamp: int64(i)})
	}
	if len(ch) != 1 {
		t.Fatalf("full batch not flushed: %d messages queued", len(ch))
	}
	m := <-ch
	if m.kind != msgRecordBatch || len(*m.batch) != 4 {
		t.Fatalf("want 4-record batch, got kind=%d", m.kind)
	}
}

// TestUnbatchedSendPathZeroAllocs asserts MaxBatchSize=0 keeps the existing
// per-record send path allocation-free — the batching fields must not leak
// cost into the default configuration.
func TestUnbatchedSendPathZeroAllocs(t *testing.T) {
	ch := make(chan message, 256)
	o := &outEdge{
		edge:    &edge{kind: PartitionForward},
		targets: []chan message{ch},
		chIDs:   []int{0},
	}
	ctx := context.Background()
	e := Event{Key: "k", Timestamp: 1, Value: int64(7)}
	allocs := testing.AllocsPerRun(200, func() {
		if !o.sendRecord(ctx, e) {
			t.Fatal("send failed")
		}
		<-ch
	})
	if allocs != 0 {
		t.Fatalf("unbatched send path allocates %.1f times per record; want 0", allocs)
	}
}

// --- Round-robin cursor overflow -------------------------------------------

// TestRoundRobinCursorWrap seeds the rebalance and marker cursors right below
// the wrap point; sends must keep cycling targets instead of producing a
// negative index (the pre-fix signed cursor panicked here).
func TestRoundRobinCursorWrap(t *testing.T) {
	chs := []chan message{make(chan message, 8), make(chan message, 8), make(chan message, 8)}
	o := &outEdge{
		edge:    &edge{kind: PartitionRebalance},
		targets: chs,
		chIDs:   []int{0, 0, 0},
		rr:      math.MaxUint64 - 1,
		mrr:     math.MaxUint64 - 1,
	}
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		if !o.sendRecord(ctx, Event{Timestamp: int64(i)}) {
			t.Fatalf("send %d failed", i)
		}
	}
	total := 0
	for _, ch := range chs {
		total += len(ch)
	}
	if total != 6 {
		t.Fatalf("lost records across the wrap: delivered %d of 6", total)
	}
	// Each target must have received at least one record over 6 sends on 3
	// targets — a broken cursor would pin or skip targets.
	for i, ch := range chs {
		if len(ch) == 0 {
			t.Fatalf("target %d starved across cursor wrap", i)
		}
	}
	for i := 0; i < 4; i++ {
		if !o.sendMarker(ctx, &latencyMarker{}) {
			t.Fatalf("marker send %d failed", i)
		}
	}
}

// --- Timer cascade ----------------------------------------------------------

// cascadeOp registers a far-future timer per element; when it fires (only at
// drain) it registers a second-stage cleanup timer that must fire within the
// same watermark advancement. The cleanup callback re-registers its own
// identical (ts, key) to exercise the infinite-loop guard.
type cascadeOp struct {
	BaseOperator
}

const cascadeBase = int64(1) << 40

func (o *cascadeOp) ProcessElement(e Event, ctx Context) error {
	ctx.RegisterEventTimeTimer(cascadeBase + e.Timestamp)
	return nil
}

func (o *cascadeOp) OnTimer(ts int64, ctx Context) error {
	if ts < 2*cascadeBase { // first stage: session end
		ctx.Emit(Event{Key: ctx.Key(), Timestamp: ts, Value: "fire"})
		ctx.RegisterEventTimeTimer(ts + 2*cascadeBase)
		return nil
	}
	// Second stage: session cleanup. Re-register the identical timer — the
	// engine must drop it instead of cascading forever.
	ctx.RegisterEventTimeTimer(ts)
	ctx.Emit(Event{Key: ctx.Key(), Timestamp: ts, Value: "cleanup"})
	return nil
}

// TestTimerCascadeFiresAtDrain is the regression test for the single-pass
// timers.due bug: a timer registered during OnTimer with TS <= wm fired only
// on the next watermark — and never fired at drain (wm = MaxWatermark), losing
// final output.
func TestTimerCascadeFiresAtDrain(t *testing.T) {
	const n, keys = 40, 4
	b := NewBuilder(Config{Name: "cascade", WatermarkInterval: 1})
	sink := NewCollectSink()
	b.Source("src", NewSliceSourceFactory(genEvents(n, keys)), WithBoundedDisorder(0)).
		KeyBy(func(e Event) string { return e.Key }).
		Process("session", func() Operator { return &cascadeOp{} }).
		Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	runJob(t, j)
	var fires, cleanups int
	for _, e := range sink.Events() {
		switch e.Value.(string) {
		case "fire":
			fires++
		case "cleanup":
			cleanups++
		}
	}
	if fires != n {
		t.Fatalf("want %d first-stage firings, got %d", n, fires)
	}
	if cleanups != n {
		t.Fatalf("cascaded cleanup timers lost at drain: want %d, got %d", n, cleanups)
	}
}

// --- Barrier stash replay ---------------------------------------------------

// closeCountOp forwards elements and counts Close invocations.
type closeCountOp struct {
	BaseOperator
	closes *int
}

func (o *closeCountOp) ProcessElement(e Event, ctx Context) error {
	ctx.Emit(e)
	return nil
}

func (o *closeCountOp) Close(ctx Context) error {
	*o.closes++
	return nil
}

// newTestInstance wires a bare instance (no channels, no outs) so handle can
// be driven message by message, deterministically.
func newTestInstance(t *testing.T, numInputs int, op Operator) *instance {
	t.Helper()
	cfg := Config{Name: "unit"}.withDefaults()
	j := newJob(cfg, &Graph{})
	backend, err := cfg.BackendFactory("op", 0)
	if err != nil {
		t.Fatal(err)
	}
	return &instance{
		job:             j,
		node:            &node{name: "op", parallelism: 1},
		id:              "op-0",
		numInputs:       numInputs,
		op:              op,
		backend:         backend,
		timers:          newTimerService(),
		tracker:         eventtime.NewWatermarkTracker(numInputs),
		inCounter:       j.inCounter("op"),
		outCounter:      j.outCounter("op"),
		barrierArrived:  make([]bool, numInputs),
		channelFinished: make([]bool, numInputs),
	}
}

// TestBarrierStashReplayEOSTerminates drives a two-input instance through a
// barrier alignment in which channel 0 delivers its EOS while blocked: the
// EOS is stashed, and its replay after the barrier completes must terminate
// the instance exactly once. Pre-fix, completeBarrier discarded the replay's
// done result, so the instance ran shutdown twice (double Close, duplicate
// final output).
func TestBarrierStashReplayEOSTerminates(t *testing.T) {
	closes := 0
	in := newTestInstance(t, 2, &closeCountOp{closes: &closes})
	ctx := context.Background()
	octx := &opContext{inst: in, runCtx: ctx}
	b := barrierMark{ID: 1}

	step := func(m message, wantDone bool) {
		t.Helper()
		done, err := in.handle(ctx, octx, m)
		if err != nil {
			t.Fatal(err)
		}
		if done != wantDone {
			t.Fatalf("handle(%+v): done=%v, want %v", m, done, wantDone)
		}
	}

	// Barrier arrives on channel 0; the channel is now blocked.
	step(message{kind: msgBarrier, channel: 0, barrier: b}, false)
	// Post-barrier traffic on the blocked channel is stashed, EOS included.
	step(message{kind: msgRecord, channel: 0, event: Event{Timestamp: 1}}, false)
	step(message{kind: msgWatermark, channel: 0, wm: eventtime.MaxWatermark}, false)
	step(message{kind: msgEOS, channel: 0, drain: true}, false)
	if len(in.stash) != 3 {
		t.Fatalf("want 3 stashed messages (record, watermark, EOS), got %d", len(in.stash))
	}
	if in.channelFinished[0] {
		t.Fatal("EOS on a blocked channel must not finish the channel before replay")
	}
	// Channel 1 ends without delivering the barrier: it counts as aligned,
	// the barrier completes, and the stash replays — ending with channel 0's
	// EOS, which is now the last open input. handle must report done.
	step(message{kind: msgEOS, channel: 1, drain: true}, true)

	if closes != 1 {
		t.Fatalf("instance closed %d times; want exactly 1", closes)
	}
	if got := in.inCounter.Value(); got != 1 {
		t.Fatalf("stashed record not replayed: in=%d", got)
	}
}

// TestBarrierStashReplaysBatches covers the batched variant: a stashed
// message may now be a whole record batch, and replay must unpack it through
// the normal path.
func TestBarrierStashReplaysBatches(t *testing.T) {
	closes := 0
	in := newTestInstance(t, 2, &closeCountOp{closes: &closes})
	ctx := context.Background()
	octx := &opContext{inst: in, runCtx: ctx}

	step := func(m message, wantDone bool) {
		t.Helper()
		done, err := in.handle(ctx, octx, m)
		if err != nil {
			t.Fatal(err)
		}
		if done != wantDone {
			t.Fatalf("handle: done=%v, want %v", done, wantDone)
		}
	}

	step(message{kind: msgBarrier, channel: 0, barrier: barrierMark{ID: 7}}, false)
	batch := []Event{{Timestamp: 1}, {Timestamp: 2}, {Timestamp: 3}}
	step(message{kind: msgRecordBatch, channel: 0, batch: &batch}, false)
	if len(in.stash) != 1 {
		t.Fatalf("batch not stashed: stash=%d", len(in.stash))
	}
	step(message{kind: msgBarrier, channel: 1, barrier: barrierMark{ID: 7}}, false)
	if got := in.inCounter.Value(); got != 3 {
		t.Fatalf("stashed batch not fully replayed: in=%d, want 3", got)
	}
	step(message{kind: msgEOS, channel: 0, drain: true}, false)
	step(message{kind: msgEOS, channel: 1, drain: true}, true)
	if closes != 1 {
		t.Fatalf("closes=%d, want 1", closes)
	}
}

// TestBatchedBroadcastDeliversAll ensures per-target pending batches on a
// broadcast edge deliver every record to every instance.
func TestBatchedBroadcastDeliversAll(t *testing.T) {
	const n = 50
	b := NewBuilder(Config{Name: "bcast-batched", MaxBatchSize: 16})
	sink := NewCollectSink()
	s := b.Source("src", NewSliceSourceFactory(genEvents(n, 2)))
	s.Broadcast("fan", MapFunc(func(e Event, ctx Context) error {
		e.Key = fmt.Sprintf("inst-%d", ctx.InstanceIndex())
		ctx.Emit(e)
		return nil
	}), 3).Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	runJob(t, j)
	if sink.Len() != n*3 {
		t.Fatalf("batched broadcast: want %d events, got %d", n*3, sink.Len())
	}
}
