package core

import (
	"fmt"
	"time"

	"repro/internal/eventtime"
	"repro/internal/obsv"
	"repro/internal/state"
)

// PartitionKind determines how an edge distributes records across downstream
// instances.
type PartitionKind uint8

const (
	// PartitionForward sends instance i to instance i (requires equal
	// parallelism).
	PartitionForward PartitionKind = iota
	// PartitionHash routes by key group of the event key.
	PartitionHash
	// PartitionRebalance distributes round-robin.
	PartitionRebalance
	// PartitionBroadcast replicates every record to all instances.
	PartitionBroadcast
)

// KeySelector derives the routing key of an event.
type KeySelector func(e Event) string

// node is a logical graph vertex.
type node struct {
	id          int
	name        string
	parallelism int
	isSource    bool
	sourceFac   SourceFactory
	opFac       OperatorFactory
	// wmStrategy builds a watermark generator per source instance; nil means
	// the source emits no automatic watermarks.
	wmStrategy func() eventtime.WatermarkGenerator
	// wmInterval is the number of records between periodic watermark
	// emissions at sources.
	wmInterval int
	inEdges    []*edge
	outEdges   []*edge
}

// edge is a logical graph connection.
type edge struct {
	id       int
	from, to *node
	kind     PartitionKind
	keySel   KeySelector
}

// Graph is the logical dataflow assembled by a Builder.
type Graph struct {
	nodes []*node
	edges []*edge
}

// validate checks the structural invariants the runtime depends on.
func (g *Graph) validate() error {
	if len(g.nodes) == 0 {
		return fmt.Errorf("core: empty graph")
	}
	names := make(map[string]bool)
	hasSource := false
	for _, n := range g.nodes {
		if n.name == "" {
			return fmt.Errorf("core: node %d has no name", n.id)
		}
		if names[n.name] {
			return fmt.Errorf("core: duplicate node name %q", n.name)
		}
		names[n.name] = true
		if n.parallelism < 1 {
			return fmt.Errorf("core: node %q has parallelism %d", n.name, n.parallelism)
		}
		if n.isSource {
			hasSource = true
			if len(n.inEdges) > 0 {
				return fmt.Errorf("core: source %q has inputs", n.name)
			}
			if n.sourceFac == nil {
				return fmt.Errorf("core: source %q has no factory", n.name)
			}
		} else {
			if len(n.inEdges) == 0 {
				return fmt.Errorf("core: node %q has no inputs", n.name)
			}
			if n.opFac == nil {
				return fmt.Errorf("core: node %q has no operator factory", n.name)
			}
		}
	}
	if !hasSource {
		return fmt.Errorf("core: graph has no source")
	}
	for _, e := range g.edges {
		if e.kind == PartitionForward && e.from.parallelism != e.to.parallelism {
			return fmt.Errorf("core: forward edge %q->%q requires equal parallelism (%d vs %d)",
				e.from.name, e.to.name, e.from.parallelism, e.to.parallelism)
		}
		if e.kind == PartitionHash && e.keySel == nil {
			return fmt.Errorf("core: hash edge %q->%q has no key selector", e.from.name, e.to.name)
		}
	}
	if err := g.checkAcyclic(); err != nil {
		return err
	}
	return nil
}

// checkAcyclic rejects cycles: feedback loops are handled by the iterate
// package's dedicated runtime, not the core DAG engine.
func (g *Graph) checkAcyclic() error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(g.nodes))
	var visit func(n *node) error
	visit = func(n *node) error {
		color[n.id] = grey
		for _, e := range n.outEdges {
			switch color[e.to.id] {
			case grey:
				return fmt.Errorf("core: graph has a cycle through %q", e.to.name)
			case white:
				if err := visit(e.to); err != nil {
					return err
				}
			}
		}
		color[n.id] = black
		return nil
	}
	for _, n := range g.nodes {
		if color[n.id] == white {
			if err := visit(n); err != nil {
				return err
			}
		}
	}
	return nil
}

// Config carries job-level settings.
type Config struct {
	// Name labels the job in logs and snapshot metadata.
	Name string
	// ChannelCapacity bounds inter-instance channels; this bound is what
	// creates natural backpressure (§3.3). Default 256.
	ChannelCapacity int
	// DefaultParallelism applies to nodes that don't override it. Default 1.
	DefaultParallelism int
	// NumKeyGroups is the key-group fan-out for keyed state. Default
	// state.DefaultKeyGroups.
	NumKeyGroups int
	// BackendFactory builds a state backend per operator instance. Default
	// builds MemoryBackends.
	BackendFactory func(nodeName string, instance int) (state.Backend, error)
	// SnapshotStore persists checkpoints; nil disables checkpointing.
	SnapshotStore SnapshotStore
	// CheckpointEvery triggers a checkpoint after this many source records
	// per source instance (deterministic, clock-free). 0 disables automatic
	// checkpoints (manual TriggerCheckpoint still works when a store is set).
	CheckpointEvery int
	// AtLeastOnce selects unaligned barriers (no channel blocking); the
	// default is aligned exactly-once barriers.
	AtLeastOnce bool
	// SnapshotRetries is how many extra attempts a failed snapshot Save gets
	// before the checkpoint is aborted (the job keeps running and the next
	// barrier subsumes the aborted checkpoint). Default 2; negative disables
	// retries.
	SnapshotRetries int
	// SnapshotRetryBackoff is the fixed delay between snapshot Save retries.
	// Default 2ms.
	SnapshotRetryBackoff time.Duration
	// MaxBatchSize enables batched record exchange: senders coalesce up to
	// this many records per downstream instance into one pooled channel
	// message, flushing on size and before every control message (watermark,
	// barrier, EOS, latency marker), so results — including aligned
	// exactly-once snapshots — are bit-for-bit identical to the unbatched
	// path. 0 or 1 disables batching and keeps the existing per-record send
	// path unchanged (zero extra allocations).
	MaxBatchSize int
	// ColumnarExec enables whole-batch columnar execution on top of the
	// batched exchange: operators implementing BatchOperator receive each
	// pooled record batch as one ProcessBatch call on its columnar view
	// (keys, timestamps, and a dense float64 value column extracted once per
	// batch) instead of per-record ProcessElement dispatch. Operators that
	// don't implement BatchOperator fall back to the per-record path
	// unchanged. Results are identical with the flag on or off (bit-for-bit
	// for count/min/max aggregates; float sums may differ in final-bit
	// rounding where the unrolled kernel re-associates addition over runs of
	// same-key, same-window records). Effective only with MaxBatchSize > 1;
	// off by default.
	ColumnarExec bool
	// WatermarkInterval is the default number of records between periodic
	// watermark emissions at sources. Default 32.
	WatermarkInterval int
	// Clock is the processing-time clock. Default system clock.
	Clock eventtime.Clock
	// Instrument enables the observability layer (§3.3): queue-depth and
	// watermark-lag gauges, blocked-send (backpressure) histograms, checkpoint
	// timing metrics, and — when LatencyMarkerInterval is set — latency
	// markers. Off by default; the disabled paths add no allocations and no
	// timer reads to the record hot path.
	Instrument bool
	// LatencyMarkerInterval injects a latency marker every this many records
	// per source instance when Instrument is set. Markers flow through every
	// operator's channels and populate the per-operator latency_ns and
	// per-edge hop_ns histograms. 0 disables markers.
	LatencyMarkerInterval int
	// Tracer records structured spans (operator batches, checkpoints, barrier
	// alignment, source/instance lifecycles) into a ring buffer for the
	// /traces endpoint. nil disables tracing.
	Tracer *obsv.Tracer
	// DeltaCheckpoints makes checkpoints between periodic full snapshots
	// serialize only the state changed since the last completed checkpoint
	// (RocksDB/Samza-style incremental checkpointing): checkpoint bytes scale
	// with the change rate instead of total state size. Recovery replays the
	// full image plus the delta chain. Backends that don't implement
	// state.DeltaBackend, and savepoints, always take full snapshots. Off by
	// default.
	DeltaCheckpoints bool
	// FullSnapshotEvery bounds the delta chain: every Nth checkpoint is a
	// full snapshot (recovery replays at most N-1 deltas). Default 8.
	FullSnapshotEvery int
	// LSMNativeSnapshots makes state.FileBackend backends (the LSM backend)
	// checkpoint by referencing their immutable SSTables — hard-linked into a
	// FileSnapshotStore when local, embedded otherwise — instead of
	// serializing a full state image: unchanged SSTables cost zero bytes.
	// Savepoints still serialize the portable image. Off by default.
	LSMNativeSnapshots bool
}

func (c Config) withDefaults() Config {
	if c.ChannelCapacity <= 0 {
		c.ChannelCapacity = 256
	}
	if c.DefaultParallelism <= 0 {
		c.DefaultParallelism = 1
	}
	if c.NumKeyGroups <= 0 {
		c.NumKeyGroups = state.DefaultKeyGroups
	}
	if c.WatermarkInterval <= 0 {
		c.WatermarkInterval = 32
	}
	if c.SnapshotRetries == 0 {
		c.SnapshotRetries = 2
	} else if c.SnapshotRetries < 0 {
		c.SnapshotRetries = 0
	}
	if c.SnapshotRetryBackoff <= 0 {
		c.SnapshotRetryBackoff = 2 * time.Millisecond
	}
	if c.FullSnapshotEvery <= 0 {
		c.FullSnapshotEvery = 8
	}
	if c.BackendFactory == nil {
		groups := c.NumKeyGroups
		c.BackendFactory = func(string, int) (state.Backend, error) {
			return state.NewMemoryBackend(groups), nil
		}
	}
	if c.Clock == nil {
		c.Clock = eventtime.SystemClock{}
	}
	return c
}
