package core

import (
	"context"
	"fmt"
	"io"
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/eventtime"
	"repro/internal/metrics"
	"repro/internal/obsv"
	"repro/internal/state"
)

// Job is a compiled dataflow ready to run. A Job value runs at most once;
// build a new one (optionally restoring from a checkpoint) to run again.
type Job struct {
	cfg   Config
	graph *Graph

	logger  *log.Logger
	metrics *metrics.Registry

	sources   []*sourceInstance
	instances []*instance

	// Checkpointing.
	cpRequest chan barrierMark // external/auto triggers, coalesced
	cpSeq     atomic.Int64
	acks      chan ackMsg
	inflight  *checkpointInflight
	restoreCP int64 // checkpoint to restore from; <0 means fresh

	started atomic.Bool
	// physDone flips once buildPhysical has wired instances, publishing the
	// instance slices to concurrent readers (the introspection server).
	physDone  atomic.Bool
	cancel    context.CancelFunc
	drainDone chan struct{}
	// failCh carries an externally injected failure (Job.Fail); Run returns
	// it after shutdown, so fault injectors can crash a job mid-flight.
	failCh chan error

	// LastCheckpoint is the ID of the most recently completed checkpoint.
	lastCheckpoint atomic.Int64
	// savepointStopped flips when a stop-with-savepoint barrier halts a
	// source mid-stream, distinguishing that exit from a natural
	// end-of-stream once Run returns.
	savepointStopped atomic.Bool
	// abortedCP counts checkpoints abandoned because an instance's snapshot
	// failed; saveFailures counts the individual failed snapshot attempts.
	// The job keeps running through both — the next barrier subsumes the
	// aborted checkpoint.
	abortedCP    atomic.Int64
	saveFailures atomic.Int64
	// deltaChainLen counts completed delta checkpoints since the last
	// completed full one; the coordinator forces a full snapshot once the
	// chain reaches FullSnapshotEvery-1. Only the coordinator goroutine
	// touches it.
	deltaChainLen int
}

type ackMsg struct {
	cp         int64
	instanceID string
	bytes      int64
	savepoint  bool
	// failed marks a snapshot that could not be taken or persisted; the
	// coordinator aborts the whole checkpoint on the first failed ack.
	failed bool
	// files lists backend files the instance linked into the checkpoint
	// (SSTable reuse); they become part of the checkpoint metadata.
	files []string
}

type checkpointInflight struct {
	mu      sync.Mutex
	active  bool
	id      int64
	pending map[string]bool
	bytes   int64
	save    bool
	// deltaBase is the completed checkpoint this one is a delta of (0 =
	// full); files accumulates linked backend files from instance acks.
	deltaBase int64
	files     []string
	// started and span time/trace the in-flight checkpoint (observability).
	// started is a nanotime() stamp.
	started int64
	span    *obsv.Span
	// waiters are closed when a checkpoint with at least the given ID
	// completes (a later checkpoint subsumes earlier aborted ones).
	waiters map[int64][]chan struct{}
	// pendingSave records a savepoint request that arrived while another
	// checkpoint was in flight. The coordinator re-initiates it when the
	// in-flight checkpoint completes or aborts, so an accepted savepoint is
	// never silently coalesced away — callers that got `true` from
	// TriggerSavepoint can rely on the job eventually stopping (unless the
	// stream ends first).
	pendingSave bool
}

func newJob(cfg Config, g *Graph) *Job {
	j := &Job{
		cfg:       cfg,
		graph:     g,
		logger:    log.New(io.Discard, "", 0),
		metrics:   metrics.NewRegistry(),
		cpRequest: make(chan barrierMark, 8),
		acks:      make(chan ackMsg, 256),
		inflight:  &checkpointInflight{waiters: make(map[int64][]chan struct{})},
		restoreCP: -1,
		drainDone: make(chan struct{}),
		failCh:    make(chan error, 1),
	}
	j.lastCheckpoint.Store(-1)
	return j
}

// SetLogger directs job logging to the given writer.
func (j *Job) SetLogger(w io.Writer) {
	j.logger = log.New(w, "["+j.cfg.Name+"] ", log.Lmicroseconds)
}

// Metrics returns the job metrics registry.
func (j *Job) Metrics() *metrics.Registry { return j.metrics }

// inCounter and outCounter resolve a node's record counters once at wiring
// time; instances hold the pointers so the per-record path is a single
// atomic increment, not a registry lookup.
func (j *Job) inCounter(node string) *metrics.Counter {
	return j.metrics.Counter("node." + node + ".in")
}

func (j *Job) outCounter(node string) *metrics.Counter {
	return j.metrics.Counter("node." + node + ".out")
}

// RestoreFrom makes the next Run restore all instances from the given
// completed checkpoint. Must be called before Run.
func (j *Job) RestoreFrom(checkpointID int64) { j.restoreCP = checkpointID }

// LastCheckpoint returns the most recently completed checkpoint ID, or -1.
func (j *Job) LastCheckpoint() int64 { return j.lastCheckpoint.Load() }

// SavepointStopped reports whether a stop-with-savepoint barrier halted the
// job's sources mid-stream. Meaningful once Run has returned: true means the
// exit was a savepoint stop (no final watermark, open windows preserved in
// state), false means the stream ended naturally or the run failed. Note the
// savepoint itself may still have aborted (snapshot failure) — check
// LastCheckpoint or the store for what actually completed.
func (j *Job) SavepointStopped() bool { return j.savepointStopped.Load() }

// WhenCheckpoint returns a channel closed once a checkpoint with ID >= id
// completes. Aborted checkpoints are subsumed by the next completed one, so
// waiting on an aborted ID still unblocks. The channel never closes if the
// job stops before any such checkpoint completes.
func (j *Job) WhenCheckpoint(id int64) <-chan struct{} {
	ch := make(chan struct{})
	j.inflight.mu.Lock()
	if j.lastCheckpoint.Load() >= id {
		j.inflight.mu.Unlock()
		close(ch)
		return ch
	}
	j.inflight.waiters[id] = append(j.inflight.waiters[id], ch)
	j.inflight.mu.Unlock()
	return ch
}

// notifyCheckpoint releases every waiter registered for a checkpoint ID the
// completed checkpoint covers. Channels close outside the lock.
func (j *Job) notifyCheckpoint(completed int64) {
	var release []chan struct{}
	j.inflight.mu.Lock()
	for id, ws := range j.inflight.waiters {
		if id <= completed {
			release = append(release, ws...)
			delete(j.inflight.waiters, id)
		}
	}
	j.inflight.mu.Unlock()
	for _, w := range release {
		close(w)
	}
}

// AbortedCheckpoints returns how many checkpoints were aborted (and subsumed
// by a later one) because an instance snapshot failed.
func (j *Job) AbortedCheckpoints() int64 { return j.abortedCP.Load() }

// SnapshotSaveFailures returns how many individual instance snapshot
// attempts failed (after retries).
func (j *Job) SnapshotSaveFailures() int64 { return j.saveFailures.Load() }

// sourceInstance is one parallel source instance at runtime.
type sourceInstance struct {
	job        *Job
	node       *node
	idx        int
	id         string
	outs       []*outEdge
	barrierReq chan barrierMark
	src        Source
	gen        eventtime.WatermarkGenerator
	restore    []byte
	outCounter *metrics.Counter
	// markerEvery injects a latency marker every N collected records
	// (0 = markers off).
	markerEvery int
	tracer      *obsv.Tracer
}

// sourceCtx implements SourceContext.
type sourceCtx struct {
	si      *sourceInstance
	runCtx  context.Context
	stopped bool
	// savepointStop records that a savepoint barrier halted the source
	// mid-stream: the subsequent EOS must not drain (no final watermark, no
	// window flushes) so a restore resumes exactly.
	savepointStop bool
	count         int
	lastWM        int64
}

func (c *sourceCtx) InstanceIndex() int { return c.si.idx }
func (c *sourceCtx) Parallelism() int   { return c.si.node.parallelism }

func (c *sourceCtx) Stopped() bool {
	if c.stopped {
		return true
	}
	select {
	case <-c.runCtx.Done():
		c.stopped = true
	default:
	}
	return c.stopped
}

func (c *sourceCtx) EmitWatermark(wm int64) {
	if wm <= c.lastWM && c.lastWM != eventtime.MinWatermark {
		return
	}
	c.lastWM = wm
	for _, o := range c.si.outs {
		if !o.broadcastCtl(c.runCtx, message{kind: msgWatermark, wm: wm}) {
			c.stopped = true
			return
		}
	}
}

// Collect emits one event, handling barrier injection, periodic watermarks
// and automatic checkpoint triggering.
func (c *sourceCtx) Collect(e Event) bool {
	if c.Stopped() {
		return false
	}
	// Barrier injection point: a pending barrier is emitted *before* the
	// next element so the snapshot offset excludes it.
	select {
	case b := <-c.si.barrierReq:
		if !c.si.emitBarrier(c.runCtx, b) {
			c.stopped = true
			return false
		}
		if b.Savepoint {
			c.stopped = true
			c.savepointStop = true
			return false
		}
	default:
	}
	for _, o := range c.si.outs {
		if !o.sendRecord(c.runCtx, e) {
			c.stopped = true
			return false
		}
	}
	c.si.outCounter.Inc()
	c.count++
	if c.si.gen != nil {
		if wm := c.si.gen.OnEvent(e.Timestamp); wm != eventtime.MinWatermark {
			c.EmitWatermark(wm)
		}
		interval := c.si.node.wmInterval
		if interval > 0 && c.count%interval == 0 {
			if wm := c.si.gen.OnPeriodic(); wm != eventtime.MinWatermark {
				c.EmitWatermark(wm)
			}
		}
	}
	if me := c.si.markerEvery; me > 0 && c.count%me == 0 {
		now := nanotime()
		mk := &latencyMarker{origin: now, hopped: now, from: c.si.node.name, source: c.si.id}
		for _, o := range c.si.outs {
			if !o.sendMarker(c.runCtx, mk) {
				c.stopped = true
				return false
			}
		}
	}
	if n := c.si.job.cfg.CheckpointEvery; n > 0 && c.count%n == 0 {
		c.si.job.requestCheckpoint(false)
	}
	return true
}

// CollectBatch emits events in order with the per-record dispatch amortized:
// the stop and barrier checks run once per call (see the SourceContext doc
// for the offset-granularity consequence), records go downstream through the
// bulk routing path, and the periodic-obligation modulo checks run once per
// chunk. The watermark generator still observes every record, and a
// punctuated watermark splits the chunk so it lands between the same two
// records as on the per-record path.
func (c *sourceCtx) CollectBatch(events []Event) bool {
	if c.Stopped() {
		return false
	}
	select {
	case b := <-c.si.barrierReq:
		if !c.si.emitBarrier(c.runCtx, b) {
			c.stopped = true
			return false
		}
		if b.Savepoint {
			c.stopped = true
			c.savepointStop = true
			return false
		}
	default:
	}
	for len(events) > 0 {
		// Chunk up to the next per-record obligation boundary so each
		// boundary fires exactly once, right where the per-record path would
		// fire it.
		n := len(events)
		if c.si.gen != nil {
			if iv := c.si.node.wmInterval; iv > 0 {
				if k := iv - c.count%iv; k < n {
					n = k
				}
			}
		}
		if me := c.si.markerEvery; me > 0 {
			if k := me - c.count%me; k < n {
				n = k
			}
		}
		if ce := c.si.job.cfg.CheckpointEvery; ce > 0 {
			if k := ce - c.count%ce; k < n {
				n = k
			}
		}
		chunk := events[:n]
		sent := 0
		if c.si.gen != nil {
			for i := 0; i < n; i++ {
				if wm := c.si.gen.OnEvent(chunk[i].Timestamp); wm != eventtime.MinWatermark {
					if !c.sendSlice(chunk[sent : i+1]) {
						return false
					}
					sent = i + 1
					c.EmitWatermark(wm)
					if c.stopped {
						return false
					}
				}
			}
		}
		if !c.sendSlice(chunk[sent:]) {
			return false
		}
		c.count += n
		if c.si.gen != nil {
			if iv := c.si.node.wmInterval; iv > 0 && c.count%iv == 0 {
				if wm := c.si.gen.OnPeriodic(); wm != eventtime.MinWatermark {
					c.EmitWatermark(wm)
					if c.stopped {
						return false
					}
				}
			}
		}
		if me := c.si.markerEvery; me > 0 && c.count%me == 0 {
			now := nanotime()
			mk := &latencyMarker{origin: now, hopped: now, from: c.si.node.name, source: c.si.id}
			for _, o := range c.si.outs {
				if !o.sendMarker(c.runCtx, mk) {
					c.stopped = true
					return false
				}
			}
		}
		if ce := c.si.job.cfg.CheckpointEvery; ce > 0 && c.count%ce == 0 {
			c.si.job.requestCheckpoint(false)
		}
		events = events[n:]
	}
	return true
}

// sendSlice routes a slice of records down every out edge through the bulk
// path, bumping the out counter once.
func (c *sourceCtx) sendSlice(events []Event) bool {
	if len(events) == 0 {
		return true
	}
	for _, o := range c.si.outs {
		if !o.sendRecords(c.runCtx, events) {
			c.stopped = true
			return false
		}
	}
	c.si.outCounter.Add(int64(len(events)))
	return true
}

// emitBarrier snapshots the source offset, acks, and broadcasts the barrier.
// A failed offset snapshot aborts the checkpoint, not the source: the barrier
// still flows downstream so alignment never wedges, and the next barrier
// starts a fresh checkpoint.
func (s *sourceInstance) emitBarrier(ctx context.Context, b barrierMark) bool {
	var offset []byte
	snapErr := error(nil)
	if rs, ok := s.src.(ReplayableSource); ok {
		offset, snapErr = rs.SnapshotOffset()
	}
	if snapErr == nil {
		var data []byte
		if data, snapErr = encodeInstanceSnapshot(instanceSnapshot{SourceOffset: offset}); snapErr == nil {
			s.job.saveAndAck(ctx, b, s.id, data)
		}
	}
	if snapErr != nil {
		s.job.failCheckpoint(b, s.id, snapErr)
	}
	for _, o := range s.outs {
		if !o.broadcastCtl(ctx, message{kind: msgBarrier, barrier: b}) {
			return false
		}
	}
	return true
}

// run executes the source to completion, then emits the final watermark and
// EOS markers.
func (s *sourceInstance) run(ctx context.Context) error {
	lifeSpan := s.tracer.Begin("source.run", s.node.name, s.id)
	defer lifeSpan.End()
	if s.restore != nil {
		snap, err := decodeInstanceSnapshot(s.restore)
		if err != nil {
			return fmt.Errorf("%s: %w", s.id, err)
		}
		if rs, ok := s.src.(ReplayableSource); ok && snap.SourceOffset != nil {
			if err := rs.RestoreOffset(snap.SourceOffset); err != nil {
				return fmt.Errorf("%s: restore offset: %w", s.id, err)
			}
		}
	}
	sctx := &sourceCtx{si: s, runCtx: ctx, lastWM: eventtime.MinWatermark}
	if err := s.src.Run(sctx); err != nil {
		return fmt.Errorf("%s: %w", s.id, err)
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	// Drain pending barriers (e.g. a savepoint that stopped the source, or a
	// checkpoint initiated as the stream ended) before closing the stream.
drain:
	for {
		select {
		case b := <-s.barrierReq:
			if !s.emitBarrier(ctx, b) {
				return ctx.Err()
			}
		default:
			break drain
		}
	}
	if sctx.savepointStop {
		s.job.savepointStopped.Store(true)
	}
	for _, o := range s.outs {
		// A natural end drains: event time advances to infinity so all open
		// windows fire. A stop-with-savepoint ends without draining.
		if !sctx.savepointStop {
			if !o.broadcastCtl(ctx, message{kind: msgWatermark, wm: eventtime.MaxWatermark}) {
				return ctx.Err()
			}
		}
		if !o.broadcastCtl(ctx, message{kind: msgEOS, drain: !sctx.savepointStop}) {
			return ctx.Err()
		}
	}
	return nil
}

// buildPhysical instantiates instances, inboxes and wiring.
func (j *Job) buildPhysical() error {
	// Create instances and inboxes first.
	opInst := make(map[int][]*instance) // node id -> instances
	srcInst := make(map[int][]*sourceInstance)
	inboxes := make(map[int][]chan message)
	inputCount := make(map[int][]int) // node id -> per-instance input channel count

	for _, n := range j.graph.nodes {
		if n.isSource {
			for i := 0; i < n.parallelism; i++ {
				si := &sourceInstance{
					job:        j,
					node:       n,
					idx:        i,
					id:         fmt.Sprintf("%s-%d", n.name, i),
					barrierReq: make(chan barrierMark, 4),
					src:        n.sourceFac(i, n.parallelism),
					outCounter: j.outCounter(n.name),
					tracer:     j.cfg.Tracer,
				}
				if j.cfg.Instrument {
					si.markerEvery = j.cfg.LatencyMarkerInterval
				}
				if n.wmStrategy != nil {
					si.gen = n.wmStrategy()
				}
				srcInst[n.id] = append(srcInst[n.id], si)
				j.sources = append(j.sources, si)
			}
			continue
		}
		// ChannelCapacity bounds in-flight records. With batching, one message
		// carries up to MaxBatchSize records, so the message capacity scales
		// down to keep buffered records — memory footprint and queueing
		// latency — comparable to the unbatched configuration.
		boxCap := j.cfg.ChannelCapacity
		if j.cfg.MaxBatchSize > 1 {
			if boxCap = boxCap / j.cfg.MaxBatchSize; boxCap < 1 {
				boxCap = 1
			}
		}
		boxes := make([]chan message, n.parallelism)
		for i := 0; i < n.parallelism; i++ {
			boxes[i] = make(chan message, boxCap)
			inst := &instance{
				job:        j,
				node:       n,
				idx:        i,
				id:         fmt.Sprintf("%s-%d", n.name, i),
				inbox:      boxes[i],
				op:         n.opFac(),
				timers:     newTimerService(),
				inCounter:  j.inCounter(n.name),
				outCounter: j.outCounter(n.name),
				tracer:     j.cfg.Tracer,
			}
			if j.cfg.ColumnarExec {
				if bo, ok := inst.op.(BatchOperator); ok {
					inst.batchOp = bo
				}
			}
			if j.cfg.Instrument {
				pfx := fmt.Sprintf("node.%s.%d.", n.name, i)
				inst.queueDepth = j.metrics.Gauge(pfx + "queue_depth")
				inst.wmGauge = j.metrics.Gauge(pfx + "watermark")
				inst.wmLag = j.metrics.Gauge(pfx + "watermark_lag_ms")
				inst.busyNs = j.metrics.Counter(pfx + "busy_ns")
				inst.latency = j.metrics.Histogram("node." + n.name + ".latency_ns")
				inst.alignNs = j.metrics.Histogram("node." + n.name + ".align_ns")
			}
			backend, err := j.cfg.BackendFactory(n.name, i)
			if err != nil {
				return fmt.Errorf("core: backend for %s: %w", inst.id, err)
			}
			inst.backend = backend
			if j.cfg.DeltaCheckpoints {
				if db, ok := backend.(state.DeltaBackend); ok {
					db.SetDeltaTracking(true)
				}
			}
			opInst[n.id] = append(opInst[n.id], inst)
			j.instances = append(j.instances, inst)
		}
		inboxes[n.id] = boxes
		inputCount[n.id] = make([]int, n.parallelism)
	}

	// Wire edges: allocate receiver-local channel IDs per (edge, upstream
	// instance) pair.
	groupMap := func(par int) []int {
		m := make([]int, j.cfg.NumKeyGroups)
		for i := 0; i < par; i++ {
			s, e := state.GroupRange(j.cfg.NumKeyGroups, par, i)
			for g := s; g < e; g++ {
				m[g] = i
			}
		}
		return m
	}

	for _, e := range j.graph.edges {
		downBoxes := inboxes[e.to.id]
		counts := inputCount[e.to.id]
		upPar := e.from.parallelism
		for ui := 0; ui < upPar; ui++ {
			o := &outEdge{edge: e, numKeyGroups: j.cfg.NumKeyGroups}
			if j.cfg.MaxBatchSize > 1 {
				o.maxBatch = j.cfg.MaxBatchSize
			}
			if j.cfg.Instrument {
				pfx := "edge." + e.from.name + "." + e.to.name + "."
				o.blocked = j.metrics.Histogram(pfx + "blocked_ns")
				if o.maxBatch > 1 {
					o.batchSize = j.metrics.Histogram(pfx + "batch_size")
					o.flushSize = j.metrics.Counter(pfx + "flush_size")
					o.flushCtl = j.metrics.Counter(pfx + "flush_ctl")
				}
			}
			if e.kind == PartitionHash {
				o.groupToTarget = groupMap(e.to.parallelism)
			}
			if e.kind == PartitionForward {
				o.targets = []chan message{downBoxes[ui]}
				o.chIDs = []int{counts[ui]}
				counts[ui]++
			} else {
				for di := 0; di < e.to.parallelism; di++ {
					o.targets = append(o.targets, downBoxes[di])
					o.chIDs = append(o.chIDs, counts[di])
					counts[di]++
				}
			}
			if o.maxBatch > 1 {
				o.pending = make([]*[]Event, len(o.targets))
			}
			if e.from.isSource {
				srcInst[e.from.id][ui].outs = append(srcInst[e.from.id][ui].outs, o)
			} else {
				opInst[e.from.id][ui].outs = append(opInst[e.from.id][ui].outs, o)
			}
		}
	}

	for _, n := range j.graph.nodes {
		if n.isSource {
			continue
		}
		for i, inst := range opInst[n.id] {
			inst.numInputs = inputCount[n.id][i]
			inst.tracker = eventtime.NewWatermarkTracker(inst.numInputs)
			inst.barrierArrived = make([]bool, inst.numInputs)
			inst.channelFinished = make([]bool, inst.numInputs)
		}
	}
	return nil
}

// loadRestoreSnapshots assigns restore payloads from the configured
// checkpoint. An instance whose newest payload is a delta gets its whole
// chain, full image first; sources always save full offsets, so they load a
// single payload.
func (j *Job) loadRestoreSnapshots() error {
	if j.restoreCP < 0 {
		return nil
	}
	if j.cfg.SnapshotStore == nil {
		return fmt.Errorf("core: RestoreFrom set but no SnapshotStore configured")
	}
	for _, in := range j.instances {
		chain, err := loadSnapshotChain(j.cfg.SnapshotStore, j.restoreCP, in.id)
		if err != nil {
			return fmt.Errorf("core: restore %s: %w", in.id, err)
		}
		in.restore = chain
	}
	for _, s := range j.sources {
		data, err := j.cfg.SnapshotStore.Load(j.restoreCP, s.id)
		if err != nil {
			return fmt.Errorf("core: restore %s: %w", s.id, err)
		}
		s.restore = data
	}
	j.cpSeq.Store(j.restoreCP + 1)
	return nil
}

// restorePayload is one link of an instance's restore chain: the payload and
// the checkpoint it was saved under (needed to resolve store-linked files).
type restorePayload struct {
	cp   int64
	data []byte
}

// loadSnapshotChain loads one instance's payload chain from the store:
// result[0] is the oldest (full) payload, result[len-1] the checkpoint being
// restored. Chain links must be strictly decreasing — anything else marks
// corrupt lineage.
func loadSnapshotChain(store SnapshotStore, cp int64, instanceID string) ([]restorePayload, error) {
	var chain []restorePayload
	for {
		data, err := store.Load(cp, instanceID)
		if err != nil {
			return nil, err
		}
		chain = append([]restorePayload{{cp: cp, data: data}}, chain...)
		snap, err := decodeInstanceSnapshot(data)
		if err != nil {
			return nil, err
		}
		if snap.DeltaBase == 0 {
			return chain, nil
		}
		if snap.DeltaBase >= cp {
			return nil, fmt.Errorf("core: checkpoint %d: delta base %d is not older than its child", cp, snap.DeltaBase)
		}
		cp = snap.DeltaBase
	}
}

// sortedUnique sorts and deduplicates a string slice (nil stays nil).
func sortedUnique(in []string) []string {
	if len(in) == 0 {
		return nil
	}
	sort.Strings(in)
	out := in[:1]
	for _, s := range in[1:] {
		if s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}

// Run executes the job until all sources finish and the pipeline drains, the
// context is cancelled, or an operator fails. It returns nil on clean
// completion.
func (j *Job) Run(ctx context.Context) error {
	if !j.started.CompareAndSwap(false, true) {
		return fmt.Errorf("core: job %q already ran; build a new Job", j.cfg.Name)
	}
	if err := j.buildPhysical(); err != nil {
		return err
	}
	j.physDone.Store(true)
	if err := j.loadRestoreSnapshots(); err != nil {
		return err
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	j.cancel = cancel

	errCh := make(chan error, len(j.instances)+len(j.sources))
	var wg sync.WaitGroup

	// Checkpoint coordinator.
	coordDone := make(chan struct{})
	go j.coordinate(runCtx, coordDone)

	// runGuarded converts operator panics into job failures: a panicking
	// instance fails the job (and a supervisor may restart it from the last
	// checkpoint) instead of crashing the process.
	runGuarded := func(id string, f func(context.Context) error) {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				errCh <- fmt.Errorf("core: %s: panic: %v", id, r)
				cancel()
			}
		}()
		if err := f(runCtx); err != nil && err != context.Canceled {
			errCh <- err
			cancel()
		}
	}
	for _, in := range j.instances {
		wg.Add(1)
		go runGuarded(in.id, in.run)
	}
	for _, s := range j.sources {
		wg.Add(1)
		go runGuarded(s.id, s.run)
	}

	wg.Wait()
	close(j.drainDone)
	<-coordDone
	cancel()
	select {
	case err := <-errCh:
		return err
	default:
	}
	select {
	case err := <-j.failCh:
		return err
	default:
	}
	return ctx.Err()
}

// Stop cancels a running job. Run returns nil: a stop is a clean shutdown.
func (j *Job) Stop() {
	if j.cancel != nil {
		j.cancel()
	}
}

// Fail terminates a running job as if an operator had failed: Run returns
// err. Fault injectors use it to simulate a crash at a precise point; unlike
// Stop, a supervisor observes the run as failed and restarts it.
func (j *Job) Fail(err error) {
	if err == nil {
		err = fmt.Errorf("core: job %q failed", j.cfg.Name)
	}
	select {
	case j.failCh <- err:
	default: // a failure is already recorded; keep the first
	}
	j.Stop()
}

// requestCheckpoint asks the coordinator to start a checkpoint and reports
// whether the request was accepted. The send is non-blocking by design —
// sources call this from their hot path — so a full request queue rejects
// rather than stalls; callers that must not lose the request (the elastic
// controller's savepoint trigger) retry on false instead of assuming the
// checkpoint will happen.
func (j *Job) requestCheckpoint(savepoint bool) bool {
	select {
	case j.cpRequest <- barrierMark{Savepoint: savepoint}:
		return true
	default:
		return false
	}
}

// TriggerCheckpoint manually starts a checkpoint (no-op without a store). It
// returns whether the request was accepted; false means the coordinator's
// request queue was full and the caller should retry.
func (j *Job) TriggerCheckpoint() bool { return j.requestCheckpoint(false) }

// TriggerSavepoint starts a final checkpoint and stops the sources once the
// barrier is emitted; the pipeline then drains and Run returns. The
// savepoint's checkpoint ID is reported via LastCheckpoint after completion.
// It returns whether the request was accepted; false means the request queue
// was full and the savepoint will NOT happen unless retried. An accepted
// savepoint is never dropped: if another checkpoint is in flight when the
// request is dequeued, the savepoint is held and initiated as soon as the
// in-flight checkpoint completes or aborts.
func (j *Job) TriggerSavepoint() bool { return j.requestCheckpoint(true) }

// coordinate runs the checkpoint coordinator: it serialises checkpoint
// initiation and completes checkpoints as acks arrive. Once the job's
// instances have all exited, remaining acks are drained so a checkpoint whose
// snapshots all landed still completes.
func (j *Job) coordinate(ctx context.Context, done chan struct{}) {
	defer close(done)
	for {
		select {
		case <-ctx.Done():
			return
		case <-j.drainDone:
			for {
				select {
				case a := <-j.acks:
					j.processAck(a)
				default:
					return
				}
			}
		case req := <-j.cpRequest:
			j.initiateCheckpoint(ctx, req)
		case a := <-j.acks:
			if j.processAck(a) {
				// A savepoint arrived while that checkpoint was in flight;
				// start it now that the slot is free.
				j.initiateCheckpoint(ctx, barrierMark{Savepoint: true})
			}
		}
	}
}

func (j *Job) initiateCheckpoint(ctx context.Context, req barrierMark) {
	if j.cfg.SnapshotStore == nil {
		return
	}
	j.inflight.mu.Lock()
	if j.inflight.active {
		// Coalesce concurrent checkpoint requests — but hold a savepoint for
		// re-initiation, because dropping it would leave a TriggerSavepoint
		// caller waiting for a stop that never comes.
		if req.Savepoint {
			j.inflight.pendingSave = true
		}
		j.inflight.mu.Unlock()
		return
	}
	if req.Savepoint {
		j.inflight.pendingSave = false
	}
	id := j.cpSeq.Add(1)
	j.inflight.active = true
	j.inflight.id = id
	j.inflight.save = req.Savepoint
	j.inflight.bytes = 0
	j.inflight.files = nil
	j.inflight.deltaBase = 0
	// Delta selection: base on the last *completed* checkpoint (guaranteed
	// restorable; also naturally forces the first post-restore checkpoint
	// full, since lastCheckpoint starts at -1 in a new incarnation), unless
	// the chain has reached its bound. Savepoints are always full — they are
	// the rescale/portability format.
	if j.cfg.DeltaCheckpoints && !req.Savepoint {
		if base := j.lastCheckpoint.Load(); base > 0 && j.deltaChainLen+1 < j.cfg.FullSnapshotEvery {
			j.inflight.deltaBase = base
		}
	}
	if j.cfg.Instrument {
		j.inflight.started = nanotime()
	}
	if j.cfg.Tracer != nil {
		j.inflight.span = j.cfg.Tracer.Begin("checkpoint", "", j.cfg.Name).SetInt("checkpoint", id)
		if req.Savepoint {
			j.inflight.span.SetAttr("savepoint", "true")
		}
	}
	j.inflight.pending = make(map[string]bool, len(j.instances)+len(j.sources))
	for _, in := range j.instances {
		j.inflight.pending[in.id] = true
	}
	for _, s := range j.sources {
		j.inflight.pending[s.id] = true
	}
	deltaBase := j.inflight.deltaBase
	j.inflight.mu.Unlock()
	b := barrierMark{ID: id, Savepoint: req.Savepoint, DeltaBase: deltaBase}
	for _, s := range j.sources {
		select {
		case s.barrierReq <- b:
		case <-ctx.Done():
			return
		}
	}
}

// processAck folds one instance ack into the in-flight checkpoint. The
// return value reports whether a held savepoint should be initiated now that
// the in-flight slot is free (completion or abort of a non-savepoint
// checkpoint with pendingSave set).
func (j *Job) processAck(a ackMsg) bool {
	j.inflight.mu.Lock()
	if !j.inflight.active || a.cp != j.inflight.id {
		j.inflight.mu.Unlock()
		return false
	}
	if a.failed {
		// Abort-and-subsume: abandon this checkpoint, discard its partial
		// snapshots, and keep the job running — the next barrier starts a
		// fresh checkpoint that subsumes it. Late acks for the aborted ID
		// fall through the active/id guard above.
		j.inflight.active = false
		// An aborted savepoint already stopped the sources, so a held
		// follow-up savepoint has nothing left to snapshot — drop it.
		resume := j.inflight.pendingSave && !j.inflight.save
		j.inflight.pendingSave = false
		span := j.inflight.span
		j.inflight.span = nil
		j.inflight.mu.Unlock()
		j.abortedCP.Add(1)
		if j.cfg.Instrument {
			j.metrics.Counter("checkpoint.aborted").Inc()
		}
		span.SetAttr("aborted", "true").End()
		if d, ok := j.cfg.SnapshotStore.(DiscardableStore); ok {
			if err := d.Discard(a.cp); err != nil {
				j.logger.Printf("checkpoint %d: discard: %v", a.cp, err)
			}
		}
		j.logger.Printf("checkpoint %d aborted (snapshot failed at %s)", a.cp, a.instanceID)
		return resume
	}
	delete(j.inflight.pending, a.instanceID)
	j.inflight.bytes += a.bytes
	j.inflight.files = append(j.inflight.files, a.files...)
	if len(j.inflight.pending) > 0 {
		j.inflight.mu.Unlock()
		return false
	}
	meta := CheckpointMeta{
		ID:        j.inflight.id,
		JobName:   j.cfg.Name,
		Savepoint: j.inflight.save,
		Bytes:     j.inflight.bytes,
		Parent:    j.inflight.deltaBase,
		Files:     sortedUnique(j.inflight.files),
	}
	for _, in := range j.instances {
		meta.InstanceIDs = append(meta.InstanceIDs, in.id)
	}
	for _, s := range j.sources {
		meta.InstanceIDs = append(meta.InstanceIDs, s.id)
	}
	j.inflight.active = false
	resume := j.inflight.pendingSave && !j.inflight.save
	j.inflight.pendingSave = false
	started := j.inflight.started
	span := j.inflight.span
	j.inflight.span = nil
	j.inflight.mu.Unlock()
	if j.cfg.Instrument {
		j.metrics.Histogram("checkpoint.duration_ns").Observe(nanotime() - started)
		j.metrics.Gauge("checkpoint.last_id").Set(meta.ID)
		j.metrics.Gauge("checkpoint.last_bytes").Set(meta.Bytes)
		j.metrics.Histogram("checkpoint.bytes").Observe(meta.Bytes)
		j.metrics.Counter("checkpoint.completed").Inc()
		if meta.Parent != 0 {
			j.metrics.Counter("checkpoint.deltas").Inc()
		}
	}
	span.SetInt("bytes", meta.Bytes)
	span.End()
	if err := j.cfg.SnapshotStore.Complete(meta); err != nil {
		j.logger.Printf("checkpoint %d: complete: %v", meta.ID, err)
		return resume
	}
	if meta.Parent != 0 {
		j.deltaChainLen++
	} else {
		// Any completed full snapshot (savepoints included) restarts the
		// chain: later deltas may base on it directly.
		j.deltaChainLen = 0
	}
	j.lastCheckpoint.Store(meta.ID)
	j.logger.Printf("checkpoint %d complete (%d bytes)", meta.ID, meta.Bytes)
	j.notifyCheckpoint(meta.ID)
	return resume
}

// saveAndAck persists one instance snapshot (retrying transient store I/O
// errors with a fixed backoff) and acknowledges it to the coordinator. A save
// that still fails after the retry budget does not fail the instance: the
// checkpoint is aborted via a failed ack and the job keeps running.
func (j *Job) saveAndAck(ctx context.Context, b barrierMark, instanceID string, data []byte) {
	j.saveAndAckFiles(ctx, b, instanceID, data, nil)
}

// saveAndAckFiles is saveAndAck for instances that also linked backend files
// into the checkpoint: the names ride along in the ack so the coordinator can
// record them in the checkpoint metadata. Linked files contribute no payload
// bytes — a hard link writes no data, which is exactly the reuse the
// checkpoint-bytes metric measures.
func (j *Job) saveAndAckFiles(ctx context.Context, b barrierMark, instanceID string, data []byte, files []string) {
	if j.cfg.SnapshotStore == nil {
		return
	}
	var err error
	for attempt := 0; attempt <= j.cfg.SnapshotRetries; attempt++ {
		if attempt > 0 {
			if j.cfg.Instrument {
				j.metrics.Counter("checkpoint.save_retries").Inc()
			}
			select {
			case <-time.After(j.cfg.SnapshotRetryBackoff):
			case <-ctx.Done():
				return
			}
		}
		if err = j.cfg.SnapshotStore.Save(b.ID, instanceID, data); err == nil {
			break
		}
	}
	if err != nil {
		j.failCheckpoint(b, instanceID, err)
		return
	}
	j.sendAck(ackMsg{
		cp: b.ID, instanceID: instanceID, bytes: int64(len(data)),
		savepoint: b.Savepoint, files: files,
	})
}

// failCheckpoint reports that an instance could not contribute its snapshot
// to checkpoint b; the coordinator aborts the checkpoint and the job keeps
// running (the next barrier subsumes it).
func (j *Job) failCheckpoint(b barrierMark, instanceID string, err error) {
	j.saveFailures.Add(1)
	if j.cfg.Instrument {
		j.metrics.Counter("checkpoint.save_failures").Inc()
	}
	j.logger.Printf("checkpoint %d: %s: snapshot failed: %v", b.ID, instanceID, err)
	j.sendAck(ackMsg{cp: b.ID, instanceID: instanceID, failed: true, savepoint: b.Savepoint})
}

func (j *Job) sendAck(a ackMsg) {
	select {
	case j.acks <- a:
	default:
		// The coordinator drains acks continuously; a full channel here means
		// the job is shutting down. Dropping the ack only delays checkpoint
		// completion, never correctness.
	}
}
