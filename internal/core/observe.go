package core

import (
	"repro/internal/obsv"
)

// partitionNames maps PartitionKind to the /jobs JSON vocabulary.
var partitionNames = map[PartitionKind]string{
	PartitionForward:   "forward",
	PartitionHash:      "hash",
	PartitionRebalance: "rebalance",
	PartitionBroadcast: "broadcast",
}

// Describe returns the job's topology and live runtime signals for the
// introspection server. Safe to call concurrently with a running job:
// counters and gauges are atomic, the logical graph is immutable after
// Build, and per-instance details appear once the job has wired its
// physical plan.
func (j *Job) Describe() obsv.JobInfo {
	info := obsv.JobInfo{
		Name:                 j.cfg.Name,
		LastCheckpoint:       j.lastCheckpoint.Load(),
		AbortedCheckpoints:   j.abortedCP.Load(),
		SnapshotSaveFailures: j.saveFailures.Load(),
	}
	byNode := make(map[*node][]obsv.InstanceInfo)
	if j.physDone.Load() {
		for _, in := range j.instances {
			ii := obsv.InstanceInfo{
				ID:            in.id,
				QueueDepth:    len(in.inbox),
				QueueCapacity: cap(in.inbox),
			}
			if in.wmGauge != nil {
				ii.Watermark = in.wmGauge.Value()
				ii.WatermarkLagMs = in.wmLag.Value()
			}
			byNode[in.node] = append(byNode[in.node], ii)
		}
		for _, s := range j.sources {
			byNode[s.node] = append(byNode[s.node], obsv.InstanceInfo{ID: s.id})
		}
	}
	for _, n := range j.graph.nodes {
		ni := obsv.NodeInfo{
			Name:        n.name,
			Parallelism: n.parallelism,
			Source:      n.isSource,
			In:          j.inCounter(n.name).Value(),
			Out:         j.outCounter(n.name).Value(),
			Instances:   byNode[n],
		}
		if n.isSource {
			ni.In = 0
		}
		info.Nodes = append(info.Nodes, ni)
	}
	for _, e := range j.graph.edges {
		info.Edges = append(info.Edges, obsv.EdgeInfo{
			From:      e.from.name,
			To:        e.to.name,
			Partition: partitionNames[e.kind],
		})
	}
	return info
}

// ServeIntrospection starts an HTTP introspection server for this job on
// addr (host:port; port 0 picks a free one) serving /metrics in Prometheus
// text format, /jobs (topology + live counters) and /traces (recent spans
// when Config.Tracer is set). The caller owns the returned server and should
// Close it when done; it can be started before or during Run.
func (j *Job) ServeIntrospection(addr string) (*obsv.Server, error) {
	s := obsv.NewServer(j.metrics, j.cfg.Tracer, func() []obsv.JobInfo {
		return []obsv.JobInfo{j.Describe()}
	})
	if err := s.Start(addr); err != nil {
		return nil, err
	}
	return s, nil
}

// RescaleCheckpointTraced is RescaleCheckpoint with a span recorded on tr
// (nil tr traces nothing), so reconfiguration shows up on /traces alongside
// checkpoints and operator activity.
func RescaleCheckpointTraced(tr *obsv.Tracer, store SnapshotStore, fromCP, toCP int64, nodeName string, newParallelism, numGroups int) (RescaleStats, error) {
	span := tr.Begin("rescale", nodeName, "").
		SetInt("from_checkpoint", fromCP).
		SetInt("to_checkpoint", toCP).
		SetInt("new_parallelism", int64(newParallelism))
	stats, err := RescaleCheckpoint(store, fromCP, toCP, nodeName, newParallelism, numGroups)
	if err != nil {
		span.SetAttr("error", err.Error())
	} else {
		span.SetInt("state_bytes", stats.StateBytes).SetInt("timers", int64(stats.Timers))
	}
	span.End()
	return stats, err
}
