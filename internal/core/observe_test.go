package core

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/obsv"
)

// sortEvents orders events deterministically for output comparison.
func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Timestamp != evs[j].Timestamp {
			return evs[i].Timestamp < evs[j].Timestamp
		}
		return evs[i].Key < evs[j].Key
	})
}

// httpGet fetches a URL and returns its body, failing the test on any error.
func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d\n%s", url, resp.StatusCode, body)
	}
	return string(body)
}

// TestSendDisabledPathNoAllocs pins down the "observability off" contract:
// the record send path must not allocate, so an uninstrumented job pays
// nothing for the instrumentation hooks.
func TestSendDisabledPathNoAllocs(t *testing.T) {
	ch := make(chan message, 1)
	o := &outEdge{
		edge:    &edge{kind: PartitionForward},
		targets: []chan message{ch},
		chIDs:   []int{0},
	}
	ctx := context.Background()
	ev := Event{Key: "k", Timestamp: 42, Value: int64(7)} // boxed once, outside the loop
	allocs := testing.AllocsPerRun(1000, func() {
		if !o.sendRecord(ctx, ev) {
			t.Fatal("send failed")
		}
		<-ch
	})
	if allocs != 0 {
		t.Fatalf("disabled send path allocates: %v allocs/op", allocs)
	}
}

// TestSendInstrumentedMeasuresBlockedTime checks that a send stalling on a
// full channel records the stall duration on the edge histogram, and that an
// unobstructed send records nothing.
func TestSendInstrumentedMeasuresBlockedTime(t *testing.T) {
	ch := make(chan message, 1)
	h := metrics.NewHistogram()
	o := &outEdge{
		edge:    &edge{kind: PartitionForward},
		targets: []chan message{ch},
		chIDs:   []int{0},
		blocked: h,
	}
	ctx := context.Background()

	// Free channel: fast path, no observation.
	if !o.sendRecord(ctx, Event{}) {
		t.Fatal("send failed")
	}
	if h.Count() != 0 {
		t.Fatalf("unobstructed send observed blocked time: count=%d", h.Count())
	}

	// Full channel: the send must block until the reader drains, and the
	// stall must land in the histogram.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if !o.sendRecord(ctx, Event{}) {
			t.Error("blocked send failed")
		}
	}()
	time.Sleep(20 * time.Millisecond)
	<-ch // make room; the goroutine's pending send completes
	<-done
	<-ch
	if h.Count() != 1 {
		t.Fatalf("blocked send not observed: count=%d", h.Count())
	}
	if h.Max() < int64(10*time.Millisecond) {
		t.Fatalf("blocked time implausibly small: %v", time.Duration(h.Max()))
	}
}

// TestSendMarkerRotatesTargets verifies markers sample every downstream
// channel over time while sending to only one instance per hop.
func TestSendMarkerRotatesTargets(t *testing.T) {
	chs := []chan message{make(chan message, 8), make(chan message, 8), make(chan message, 8)}
	o := &outEdge{
		edge:    &edge{kind: PartitionRebalance},
		targets: chs,
		chIDs:   []int{0, 0, 0},
	}
	mk := &latencyMarker{origin: 1, hopped: 1, from: "src", source: "src-0"}
	for i := 0; i < 6; i++ {
		if !o.sendMarker(context.Background(), mk) {
			t.Fatal("sendMarker failed")
		}
	}
	for i, ch := range chs {
		if got := len(ch); got != 2 {
			t.Fatalf("target %d: want 2 markers, got %d", i, got)
		}
		m := <-ch
		if m.kind != msgLatencyMarker || m.marker != mk {
			t.Fatalf("target %d: unexpected message %+v", i, m)
		}
	}
}

// TestHandleMarkerObservesAndForwards exercises one marker hop through an
// operator instance: end-to-end and per-hop latency are recorded, and a
// *fresh* marker (origin preserved, hop time restamped) goes downstream.
func TestHandleMarkerObservesAndForwards(t *testing.T) {
	j := newJob(Config{Name: "mk"}, &Graph{})
	down := make(chan message, 4)
	in := &instance{
		job:     j,
		node:    &node{name: "op"},
		id:      "op-0",
		latency: j.metrics.Histogram("node.op.latency_ns"),
		outs: []*outEdge{{
			edge:    &edge{kind: PartitionForward},
			targets: []chan message{down},
			chIDs:   []int{0},
		}},
	}
	origin := time.Now().Add(-5 * time.Millisecond).UnixNano()
	mk := &latencyMarker{origin: origin, hopped: origin, from: "src", source: "src-0"}
	if err := in.handleMarker(context.Background(), mk); err != nil {
		t.Fatal(err)
	}

	if c := in.latency.Count(); c != 1 {
		t.Fatalf("latency histogram count: want 1, got %d", c)
	}
	if min := in.latency.Min(); min < int64(5*time.Millisecond) {
		t.Fatalf("end-to-end latency too small: %v", time.Duration(min))
	}
	if c := j.metrics.Histogram("edge.src.op.hop_ns").Count(); c != 1 {
		t.Fatalf("hop histogram count: want 1, got %d", c)
	}

	fwd := <-down
	if fwd.kind != msgLatencyMarker {
		t.Fatalf("forwarded message kind: %v", fwd.kind)
	}
	if fwd.marker.origin != origin {
		t.Fatal("forwarded marker lost its origin timestamp")
	}
	if fwd.marker.hopped <= origin {
		t.Fatal("forwarded marker not restamped at the hop")
	}
	if fwd.marker.from != "op" {
		t.Fatalf("forwarded marker from: want op, got %s", fwd.marker.from)
	}
	if fwd.marker.source != "src-0" {
		t.Fatalf("forwarded marker source: want src-0, got %s", fwd.marker.source)
	}
}

// TestHandleMarkerAtSink verifies a sink (no out edges) terminates the marker
// after observing it.
func TestHandleMarkerAtSink(t *testing.T) {
	j := newJob(Config{Name: "mk"}, &Graph{})
	in := &instance{
		job:     j,
		node:    &node{name: "sink"},
		id:      "sink-0",
		latency: j.metrics.Histogram("node.sink.latency_ns"),
	}
	now := time.Now().UnixNano()
	if err := in.handleMarker(context.Background(), &latencyMarker{origin: now, hopped: now, from: "op", source: "src-0"}); err != nil {
		t.Fatal(err)
	}
	if c := in.latency.Count(); c != 1 {
		t.Fatalf("sink latency count: want 1, got %d", c)
	}
}

// TestMarkersAreInvisibleToOperators runs the same pipeline with and without
// markers and checks outputs match exactly: markers must never reach operator
// callbacks or perturb their state.
func TestMarkersAreInvisibleToOperators(t *testing.T) {
	run := func(instrument bool) []Event {
		cfg := Config{Name: "inv"}
		if instrument {
			cfg.Instrument = true
			cfg.LatencyMarkerInterval = 3 // aggressively frequent
		}
		b := NewBuilder(cfg)
		sink := NewCollectSink()
		b.Source("src", NewSliceSourceFactory(genEvents(200, 4)), WithBoundedDisorder(0)).
			KeyBy(func(e Event) string { return e.Key }).
			Map("tag", func(e Event) (Event, bool) {
				e.Value = e.Key
				return e, true
			}).
			Sink("out", sink.Factory())
		j, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		runJob(t, j)
		evs := sink.Events()
		sortEvents(evs)
		return evs
	}
	plain, marked := run(false), run(true)
	if len(plain) != len(marked) {
		t.Fatalf("output sizes differ: %d vs %d", len(plain), len(marked))
	}
	for i := range plain {
		if plain[i] != marked[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, plain[i], marked[i])
		}
	}
}

// TestDescribeTopology checks /jobs-level introspection data straight from
// Job.Describe on an instrumented, completed job.
func TestDescribeTopology(t *testing.T) {
	b := NewBuilder(Config{Name: "describe", Instrument: true, LatencyMarkerInterval: 10})
	sink := NewCollectSink()
	b.Source("src", NewSliceSourceFactory(genEvents(100, 4)), WithBoundedDisorder(0)).
		KeyBy(func(e Event) string { return e.Key }).
		ProcessWith("op", MapFunc(func(e Event, ctx Context) error {
			ctx.Emit(e)
			return nil
		}), 2).
		Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	// Before Run: topology only, no instances yet.
	pre := j.Describe()
	if len(pre.Nodes) != 3 || len(pre.Edges) != 2 {
		t.Fatalf("pre-run topology: %d nodes, %d edges", len(pre.Nodes), len(pre.Edges))
	}
	for _, n := range pre.Nodes {
		if len(n.Instances) != 0 {
			t.Fatalf("instances visible before Run: %+v", n)
		}
	}

	runJob(t, j)
	info := j.Describe()
	byName := map[string]obsv.NodeInfo{}
	for _, n := range info.Nodes {
		byName[n.Name] = n
	}
	src, op, out := byName["src"], byName["op"], byName["out"]
	if !src.Source || src.In != 0 || src.Out != 100 {
		t.Fatalf("src node: %+v", src)
	}
	if op.Parallelism != 2 || len(op.Instances) != 2 || op.In != 100 || op.Out != 100 {
		t.Fatalf("op node: %+v", op)
	}
	if out.In != 100 {
		t.Fatalf("out node: %+v", out)
	}
	if len(info.Edges) != 2 || info.Edges[0].Partition != "hash" {
		t.Fatalf("edges: %+v", info.Edges)
	}
	// The watermark gauges drained to the pre-MaxWatermark value.
	for _, ii := range op.Instances {
		if ii.Watermark <= 0 {
			t.Fatalf("instance watermark not advanced: %+v", ii)
		}
	}
	// The whole description must serialise.
	if _, err := json.Marshal(info); err != nil {
		t.Fatal(err)
	}
}

// TestInstrumentedJobRecordsLatencyHistograms is the metric-side acceptance
// check at the core level: each operator node gets a populated latency_ns
// histogram when markers flow.
func TestInstrumentedJobRecordsLatencyHistograms(t *testing.T) {
	b := NewBuilder(Config{Name: "lat", Instrument: true, LatencyMarkerInterval: 5})
	sink := NewCollectSink()
	b.Source("src", NewSliceSourceFactory(genEvents(300, 3)), WithBoundedDisorder(0)).
		Map("a", func(e Event) (Event, bool) { return e, true }).
		Map("b", func(e Event) (Event, bool) { return e, true }).
		Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	runJob(t, j)
	if sink.Len() != 300 {
		t.Fatalf("lost records: %d", sink.Len())
	}
	for _, nodeName := range []string{"a", "b", "out"} {
		h := j.Metrics().Histogram("node." + nodeName + ".latency_ns")
		if h.Count() == 0 {
			t.Fatalf("node %s: latency histogram empty", nodeName)
		}
		if h.Min() < 0 {
			t.Fatalf("node %s: negative latency %d", nodeName, h.Min())
		}
	}
	// Hop histograms exist per traversed edge.
	for _, e := range []string{"edge.src.a.hop_ns", "edge.a.b.hop_ns", "edge.b.out.hop_ns"} {
		if j.Metrics().Histogram(e).Count() == 0 {
			t.Fatalf("%s empty", e)
		}
	}
}

// TestBatchedExchangeMetrics checks an instrumented batched job populates the
// per-edge batch instrumentation: the batch-size histogram and the two
// flush-reason counters (size-triggered vs control-message-triggered), and
// that the histogram never records a batch beyond the configured maximum.
func TestBatchedExchangeMetrics(t *testing.T) {
	b := NewBuilder(Config{
		Name:         "batchmetrics",
		Instrument:   true,
		MaxBatchSize: 8,
		// Frequent watermarks force control flushes well below the size cap.
		WatermarkInterval: 16,
	})
	sink := NewCollectSink()
	b.Source("src", NewSliceSourceFactory(genEvents(500, 4)), WithBoundedDisorder(0)).
		KeyBy(func(e Event) string { return e.Key }).
		Map("op", func(e Event) (Event, bool) { return e, true }).
		Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	runJob(t, j)
	if sink.Len() != 500 {
		t.Fatalf("lost records: %d", sink.Len())
	}
	for _, pfx := range []string{"edge.src.op.", "edge.op.out."} {
		h := j.Metrics().Histogram(pfx + "batch_size")
		if h.Count() == 0 {
			t.Fatalf("%sbatch_size histogram empty", pfx)
		}
		if h.Max() > 8 {
			t.Fatalf("%sbatch_size recorded %d > configured max 8", pfx, h.Max())
		}
		size := j.Metrics().Counter(pfx + "flush_size").Value()
		ctl := j.Metrics().Counter(pfx + "flush_ctl").Value()
		if size+ctl == 0 {
			t.Fatalf("%s no flushes counted", pfx)
		}
		if ctl == 0 {
			t.Fatalf("%s watermarks flowed but no control flush counted", pfx)
		}
		if size+ctl != h.Count() {
			t.Fatalf("%s flush counters (%d+%d) disagree with histogram count %d",
				pfx, size, ctl, h.Count())
		}
	}
}

// TestServeIntrospectionEndToEnd boots the HTTP server against a real job and
// exercises the acceptance URLs.
func TestServeIntrospectionEndToEnd(t *testing.T) {
	tr := obsv.NewTracer(256)
	store := NewMemorySnapshotStore()
	b := NewBuilder(Config{
		Name:                  "http",
		Instrument:            true,
		LatencyMarkerInterval: 5,
		Tracer:                tr,
		SnapshotStore:         store,
		CheckpointEvery:       100,
		// Keep the source close behind consumers so barriers are injected
		// mid-stream deterministically.
		ChannelCapacity: 4,
	})
	sink := NewCollectSink()
	b.Source("src", NewSliceSourceFactory(genEvents(400, 4)), WithBoundedDisorder(0)).
		KeyBy(func(e Event) string { return e.Key }).
		Map("op", func(e Event) (Event, bool) { return e, true }).
		Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := j.ServeIntrospection("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	runJob(t, j)

	body := httpGet(t, "http://"+srv.Addr()+"/metrics")
	for _, want := range []string{
		"node_op_in ",
		"node_op_0_watermark_lag_ms ",
		"node_op_0_queue_depth ",
		"# TYPE node_op_latency_ns histogram",
		"checkpoint_duration_ns_count ",
		"checkpoint_completed ",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	var jobs []obsv.JobInfo
	if err := json.Unmarshal([]byte(httpGet(t, "http://"+srv.Addr()+"/jobs")), &jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].Name != "http" || len(jobs[0].Nodes) != 3 {
		t.Fatalf("/jobs unexpected: %+v", jobs)
	}
	if jobs[0].LastCheckpoint < 1 {
		t.Fatalf("no checkpoint completed: %+v", jobs[0])
	}

	var spans []obsv.Span
	if err := json.Unmarshal([]byte(httpGet(t, "http://"+srv.Addr()+"/traces")), &spans); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, s := range spans {
		names[s.Name] = true
	}
	for _, want := range []string{"checkpoint", "snapshot", "barrier.align", "operator.process", "source.run", "instance.run"} {
		if !names[want] {
			t.Fatalf("/traces missing %q spans; have %v", want, names)
		}
	}
}

// TestRescaleCheckpointTraced covers the traced wrapper around rescaling.
func TestRescaleCheckpointTraced(t *testing.T) {
	tr := obsv.NewTracer(16)
	store := NewMemorySnapshotStore()
	b := NewBuilder(Config{Name: "rescale", SnapshotStore: store, CheckpointEvery: 50, ChannelCapacity: 4})
	sink := NewCollectSink()
	b.Source("src", NewSliceSourceFactory(genEvents(200, 8)), WithBoundedDisorder(0)).
		KeyBy(func(e Event) string { return e.Key }).
		Map("op", func(e Event) (Event, bool) { return e, true }).
		Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	runJob(t, j)
	cp := j.LastCheckpoint()
	if cp < 1 {
		t.Fatal("no checkpoint to rescale from")
	}
	if _, err := RescaleCheckpointTraced(tr, store, cp, cp+1000, "op", 2, 0); err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	var found bool
	for _, s := range spans {
		if s.Name == "rescale" && s.Operator == "op" && s.Attrs["new_parallelism"] == "2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no rescale span recorded: %+v", spans)
	}
}
