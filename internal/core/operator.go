package core

import (
	"log"

	"repro/internal/state"
)

// Context is handed to operator callbacks. It is only valid for the duration
// of the callback.
type Context interface {
	// Emit sends an event downstream on all outgoing edges.
	Emit(e Event)
	// Key returns the key the current element/timer is scoped to (empty for
	// non-keyed operators).
	Key() string
	// State returns the instance's keyed state backend, already scoped to
	// Key(). Accessing state on a non-keyed operator scopes to the empty key.
	State() state.Backend
	// RegisterEventTimeTimer schedules OnTimer for the current key once the
	// watermark passes ts. Duplicate registrations coalesce.
	RegisterEventTimeTimer(ts int64)
	// DeleteEventTimeTimer unregisters a timer for the current key.
	DeleteEventTimeTimer(ts int64)
	// CurrentWatermark returns the instance's current combined watermark.
	CurrentWatermark() int64
	// InstanceIndex returns this parallel instance's index.
	InstanceIndex() int
	// Parallelism returns the operator's parallelism.
	Parallelism() int
	// Logger returns the job logger.
	Logger() *log.Logger
}

// Operator is the engine's operator API: user logic invoked per element,
// per fired timer, and on watermark advancement. Implementations need not be
// safe for concurrent use — the engine serialises all callbacks per instance.
type Operator interface {
	// Open is called once before any element, with a context usable for
	// state access (no emission).
	Open(ctx Context) error
	// ProcessElement handles one input element.
	ProcessElement(e Event, ctx Context) error
	// OnTimer fires for a previously registered event-time timer.
	OnTimer(ts int64, ctx Context) error
	// OnWatermark is called after the combined watermark advanced to wm and
	// all due timers have fired, before the watermark is forwarded.
	OnWatermark(wm int64, ctx Context) error
	// Close is called after all inputs are exhausted; the context can still
	// emit (final flushes).
	Close(ctx Context) error
}

// BatchContext extends Context for whole-batch operators, which process many
// keys in one callback and therefore re-scope the key themselves as they walk
// the batch.
type BatchContext interface {
	Context
	// SetKey re-scopes Key(), Emit and timer registration to key — the batch
	// equivalent of the per-record key scoping the runtime performs before
	// ProcessElement. The scoping is lazy: the state backend itself is
	// re-scoped on the next State() call, so key runs that never touch state
	// skip the key-hash entirely. Operators holding a state handle cached
	// from an earlier State() call must call State() again after SetKey
	// before using it.
	SetKey(key string)
	// EmitBatch emits events downstream in order, exactly equivalent to
	// calling Emit on each, with the per-record routing dispatch amortized
	// over the slice: forward edges bulk-append into the open exchange batch
	// and hash edges reuse the previous record's route across key runs. The
	// slice is not retained.
	EmitBatch(events []Event)
}

// BatchOperator is an optional Operator extension: when Config.ColumnarExec
// is on and the exchange is batched (MaxBatchSize > 1), the runtime delivers
// each record batch as a single ProcessBatch call on its columnar view
// instead of per-record ProcessElement dispatch.
//
// ProcessBatch must process every record of cols and preserve per-record
// semantics exactly — same state contents, same timer registrations, same
// emissions in the same order — so that results are independent of the
// ColumnarExec setting. cols and all of its slices are pooled and only valid
// for the duration of the call.
type BatchOperator interface {
	Operator
	ProcessBatch(cols *Columns, ctx BatchContext) error
}

// Snapshotter is an optional Operator extension for operators that carry
// instance-local state outside the managed state backend. The engine includes
// the custom bytes in checkpoints.
type Snapshotter interface {
	SnapshotCustom() ([]byte, error)
	RestoreCustom(data []byte) error
}

// BaseOperator provides no-op defaults; embed it to implement only the hooks
// you need.
type BaseOperator struct{}

// Open implements Operator.
func (BaseOperator) Open(Context) error { return nil }

// ProcessElement implements Operator.
func (BaseOperator) ProcessElement(Event, Context) error { return nil }

// OnTimer implements Operator.
func (BaseOperator) OnTimer(int64, Context) error { return nil }

// OnWatermark implements Operator.
func (BaseOperator) OnWatermark(int64, Context) error { return nil }

// Close implements Operator.
func (BaseOperator) Close(Context) error { return nil }

// OperatorFactory builds one Operator per parallel instance.
type OperatorFactory func() Operator

// mapOperator applies a user function to each element.
type mapOperator struct {
	BaseOperator
	fn func(Event, Context) error
	// xform, when non-nil, is the pure per-event form of fn (Map and Filter
	// nodes): it never touches the context, so the whole-batch path can
	// collect outputs into a scratch batch and emit them in bulk.
	xform func(Event) (Event, bool)
}

// ProcessElement invokes the mapped function.
func (m *mapOperator) ProcessElement(e Event, ctx Context) error { return m.fn(e, ctx) }

// ProcessBatch implements BatchOperator: one callback per batch with lazy
// key scoping, eliding the per-record dispatch and key-hash overhead that
// dominates stateless map/filter/flatMap nodes. Pure transforms (Map/Filter)
// additionally batch their output, amortizing the downstream routing too.
func (m *mapOperator) ProcessBatch(cols *Columns, ctx BatchContext) error {
	if m.xform != nil {
		// Transform in place: the batch is owned by this instance until the
		// runtime recycles it after ProcessBatch returns, so compacting the
		// outputs into its prefix avoids a scratch buffer and a second copy.
		// EmitBatch copies the events onward before returning.
		out := cols.Events[:0]
		for i := range cols.Events {
			if e, ok := m.xform(cols.Events[i]); ok {
				out = append(out, e)
			}
		}
		ctx.EmitBatch(out)
		return nil
	}
	for i := range cols.Events {
		ctx.SetKey(cols.Events[i].Key)
		if err := m.fn(cols.Events[i], ctx); err != nil {
			return err
		}
	}
	return nil
}

// MapFunc wraps a per-element function (which may emit zero or more events)
// into an OperatorFactory. It is the building block for Map, Filter and
// FlatMap in the builder API.
func MapFunc(fn func(Event, Context) error) OperatorFactory {
	return func() Operator { return &mapOperator{fn: fn} }
}

// sinkOperator terminates a stream into a user callback.
type sinkOperator struct {
	BaseOperator
	fn func(Event) error
}

// ProcessElement invokes the sink callback.
func (s *sinkOperator) ProcessElement(e Event, _ Context) error { return s.fn(e.Clone()) }

// ProcessBatch implements BatchOperator.
func (s *sinkOperator) ProcessBatch(cols *Columns, _ BatchContext) error {
	for i := range cols.Events {
		if err := s.fn(cols.Events[i].Clone()); err != nil {
			return err
		}
	}
	return nil
}

// Clone returns a copy of the event. Values are shared; callers that mutate
// values across operator boundaries must copy them explicitly.
func (e Event) Clone() Event { return e }

// SinkFunc wraps a per-element callback into an OperatorFactory for sinks.
func SinkFunc(fn func(Event) error) OperatorFactory {
	return func() Operator { return &sinkOperator{fn: fn} }
}
