package core

// Randomized-pipeline property tests: arbitrary DAG shapes and parallelism
// assignments must compute exactly the same multiset of results as a direct
// sequential evaluation of the same transformations.

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// pipelineSpec is a randomly drawn linear pipeline of element-wise stages.
type pipelineSpec struct {
	stages []stageSpec
}

type stageSpec struct {
	kind        int // 0 map(add), 1 filter(mod), 2 flatmap(dup), 3 keyBy
	param       int64
	parallelism int
}

// applySequential computes the reference result.
func (p pipelineSpec) applySequential(inputs []int64) []int64 {
	cur := inputs
	for _, s := range p.stages {
		var next []int64
		switch s.kind {
		case 0:
			for _, v := range cur {
				next = append(next, v+s.param)
			}
		case 1:
			for _, v := range cur {
				if v%s.param != 0 {
					next = append(next, v)
				}
			}
		case 2:
			for _, v := range cur {
				next = append(next, v, v*2)
			}
		default: // keyBy is a routing no-op for values
			next = cur
		}
		cur = next
	}
	return cur
}

// build assembles the equivalent engine pipeline.
func (p pipelineSpec) build(b *Builder, inputs []int64) *CollectSink {
	events := make([]Event, len(inputs))
	for i, v := range inputs {
		events[i] = Event{Timestamp: int64(i), Value: v}
	}
	s := b.Source("src", NewSliceSourceFactory(events))
	for i, st := range p.stages {
		name := fmt.Sprintf("stage-%d", i)
		switch st.kind {
		case 0:
			param := st.param
			s = s.ProcessWith(name, MapFunc(func(e Event, ctx Context) error {
				e.Value = e.Value.(int64) + param
				ctx.Emit(e)
				return nil
			}), st.parallelism)
		case 1:
			param := st.param
			s = s.ProcessWith(name, MapFunc(func(e Event, ctx Context) error {
				if e.Value.(int64)%param != 0 {
					ctx.Emit(e)
				}
				return nil
			}), st.parallelism)
		case 2:
			s = s.ProcessWith(name, MapFunc(func(e Event, ctx Context) error {
				ctx.Emit(e)
				e2 := e
				e2.Value = e.Value.(int64) * 2
				ctx.Emit(e2)
				return nil
			}), st.parallelism)
		default:
			s = s.KeyBy(func(e Event) string {
				return fmt.Sprintf("k%d", e.Value.(int64)%5)
			}).ProcessWith(name, MapFunc(func(e Event, ctx Context) error {
				ctx.Emit(e)
				return nil
			}), st.parallelism)
		}
	}
	sink := NewCollectSink()
	s.Sink("out", sink.Factory())
	return sink
}

// TestRandomPipelinesMatchSequentialEvaluation draws random pipelines and
// inputs and verifies the engine computes exactly the sequential result as a
// multiset, across parallelism and partitioning choices.
func TestRandomPipelinesMatchSequentialEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 25; trial++ {
		nStages := 1 + rng.Intn(5)
		spec := pipelineSpec{}
		for i := 0; i < nStages; i++ {
			spec.stages = append(spec.stages, stageSpec{
				kind:        rng.Intn(4),
				param:       int64(1 + rng.Intn(7)),
				parallelism: 1 + rng.Intn(3),
			})
		}
		inputs := make([]int64, 50+rng.Intn(200))
		for i := range inputs {
			inputs[i] = int64(rng.Intn(1000))
		}

		want := spec.applySequential(inputs)

		b := NewBuilder(Config{Name: fmt.Sprintf("prop-%d", trial), ChannelCapacity: 16})
		sink := spec.build(b, inputs)
		j, err := b.Build()
		if err != nil {
			t.Fatalf("trial %d: build: %v (spec %+v)", trial, err, spec)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := j.Run(ctx); err != nil {
			cancel()
			t.Fatalf("trial %d: run: %v", trial, err)
		}
		cancel()

		var got []int64
		for _, e := range sink.Events() {
			got = append(got, e.Value.(int64))
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(want) != len(got) {
			t.Fatalf("trial %d: result sizes differ: want %d, got %d (spec %+v)",
				trial, len(want), len(got), spec)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: multiset differs at %d: want %d, got %d",
					trial, i, want[i], got[i])
			}
		}
	}
}

// TestRandomPipelineWithCheckpointRestore draws random linear pipelines,
// savepoints them mid-stream, restores, and verifies the combined output
// equals the sequential result — recovery correctness under arbitrary
// topology shapes.
func TestRandomPipelineWithCheckpointRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 8; trial++ {
		nStages := 1 + rng.Intn(3)
		spec := pipelineSpec{}
		for i := 0; i < nStages; i++ {
			// Deterministic per-element stages only (no filter: keeps the
			// savepoint trigger's element count meaningful).
			spec.stages = append(spec.stages, stageSpec{kind: []int{0, 2, 3}[rng.Intn(3)],
				param: int64(1 + rng.Intn(7)), parallelism: 1})
		}
		inputs := make([]int64, 200)
		for i := range inputs {
			inputs[i] = int64(rng.Intn(1000))
		}
		want := spec.applySequential(inputs)

		store := NewMemorySnapshotStore()
		run := func(restore int64, stopAt int, jobRef **Job) []int64 {
			b := NewBuilder(Config{Name: fmt.Sprintf("prop-rec-%d", trial),
				SnapshotStore: store, ChannelCapacity: 2})
			events := make([]Event, len(inputs))
			for i, v := range inputs {
				events[i] = Event{Timestamp: int64(i), Value: v}
			}
			s := b.Source("src", NewSliceSourceFactory(events))
			if stopAt > 0 {
				s = s.Process("trig", func() Operator { return &savepointTrigger{at: stopAt, job: jobRef} })
			} else {
				s = s.Map("trig", func(e Event) (Event, bool) { return e, true })
			}
			for i, st := range spec.stages {
				name := fmt.Sprintf("stage-%d", i)
				switch st.kind {
				case 0:
					param := st.param
					s = s.Map(name, func(e Event) (Event, bool) {
						e.Value = e.Value.(int64) + param
						return e, true
					})
				case 2:
					s = s.FlatMap(name, func(e Event, emit func(Event)) {
						emit(e)
						e2 := e
						e2.Value = e.Value.(int64) * 2
						emit(e2)
					})
				default:
					s = s.KeyBy(func(e Event) string {
						return fmt.Sprintf("k%d", e.Value.(int64)%5)
					}).Process(name, MapFunc(func(e Event, ctx Context) error {
						ctx.Emit(e)
						return nil
					}))
				}
			}
			sink := NewCollectSink()
			s.Sink("out", sink.Factory())
			j, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			if jobRef != nil {
				*jobRef = j
			}
			if restore >= 0 {
				j.RestoreFrom(restore)
			}
			runJob(t, j)
			var out []int64
			for _, e := range sink.Events() {
				out = append(out, e.Value.(int64))
			}
			return out
		}

		var j1 *Job
		part1 := run(-1, 60+rng.Intn(80), &j1)
		cp := j1.LastCheckpoint()
		if cp < 0 {
			t.Fatalf("trial %d: no savepoint", trial)
		}
		part2 := run(cp, 0, nil)

		got := append(part1, part2...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(want) != len(got) {
			t.Fatalf("trial %d: sizes differ after recovery: want %d got %d", trial, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: recovered multiset differs at %d", trial, i)
			}
		}
	}
}
