package core

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/state"
)

// RescaleStats reports the state-movement cost of a rescale (E13).
type RescaleStats struct {
	// OldParallelism and NewParallelism are the instance counts before and
	// after the rescale.
	OldParallelism int
	NewParallelism int
	// StateBytes is the total keyed-state volume redistributed.
	StateBytes int64
	// Timers is the number of timers redistributed.
	Timers int
}

// RescaleCheckpoint rewrites the snapshots of one operator node inside a
// completed checkpoint for a new parallelism, redistributing keyed state and
// timers by key group (§3.3/§4.2 Elasticity & Reconfiguration). The result is
// stored as a new checkpoint `toCP`; all other nodes' snapshots are copied
// verbatim. A job built with the new parallelism can then RestoreFrom(toCP).
//
// Operators carrying Snapshotter custom state cannot be rescaled — keep
// rescalable state in the managed backend.
func RescaleCheckpoint(store SnapshotStore, fromCP, toCP int64, nodeName string, newParallelism, numGroups int) (RescaleStats, error) {
	var stats RescaleStats
	if newParallelism < 1 {
		return stats, fmt.Errorf("core: rescale to parallelism %d", newParallelism)
	}
	if numGroups <= 0 {
		numGroups = state.DefaultKeyGroups
	}
	ids, err := store.Instances(fromCP)
	if err != nil {
		return stats, err
	}

	var oldIDs []string
	var passthrough []string
	for _, id := range ids {
		if name, _, ok := splitInstanceID(id); ok && name == nodeName {
			oldIDs = append(oldIDs, id)
		} else {
			passthrough = append(passthrough, id)
		}
	}
	if len(oldIDs) == 0 {
		return stats, fmt.Errorf("core: checkpoint %d has no instances of node %q", fromCP, nodeName)
	}
	stats.OldParallelism = len(oldIDs)
	stats.NewParallelism = newParallelism

	// Merge all old state images and timers.
	merged := state.Image{NumGroups: numGroups, Groups: make(map[int]map[string]map[string]any)}
	var allTimers []timerEntry
	for _, id := range oldIDs {
		raw, err := store.Load(fromCP, id)
		if err != nil {
			return stats, err
		}
		snap, err := decodeInstanceSnapshot(raw)
		if err != nil {
			return stats, fmt.Errorf("core: rescale %s: %w", id, err)
		}
		if len(snap.Custom) > 0 {
			return stats, fmt.Errorf("core: node %q instance %s has custom snapshot state; cannot rescale", nodeName, id)
		}
		// Rescaling redistributes a decoded state image across a new key-group
		// assignment; a delta payload (no image, only changed slots) or a
		// file-native payload (state lives in linked SSTables) cannot be split
		// that way. Savepoints are always full serialized images, so requiring
		// one here is the documented contract, not a new restriction.
		if snap.DeltaBase > 0 || len(snap.Files) > 0 || len(snap.FileData) > 0 {
			return stats, fmt.Errorf("core: node %q instance %s: checkpoint %d is not a full serialized snapshot; rescale from a savepoint", nodeName, id, fromCP)
		}
		img, err := state.DecodeImage(snap.State)
		if err != nil {
			return stats, fmt.Errorf("core: rescale %s: %w", id, err)
		}
		// A non-empty image must declare the fan-out its keys were hashed
		// under. NumGroups == 0 with state present means the snapshot was
		// produced outside the managed backends (or corrupted): redistributing
		// it under this rescale's group count would route keys to instances
		// that will never look them up. An empty image with NumGroups == 0 is
		// fine — it is what an instance that held no state snapshots.
		if img.NumGroups == 0 && len(img.Groups) > 0 {
			return stats, fmt.Errorf("core: rescale %s: image carries %d key groups but declares no fan-out; cannot verify key placement", id, len(img.Groups))
		}
		if img.NumGroups != 0 && img.NumGroups != numGroups {
			return stats, fmt.Errorf("core: rescale %s: image has %d key groups, want %d", id, img.NumGroups, numGroups)
		}
		// Deep-merge per (group, state, key). Old instances own disjoint group
		// ranges in a well-formed checkpoint, but nothing enforces that here —
		// snapshots may come from overlapping incarnations or hand-built
		// images — so a plain `merged.Groups[g] = names` would silently drop
		// every earlier instance's keys for an overlapping group. Inner maps
		// are copied, not aliased, so the sub-images written below never share
		// structure with the decoded inputs (or with the caller's maps in
		// tests). On a per-key conflict the later instance wins — store
		// ordering (sorted instance IDs) makes that deterministic.
		for g, names := range img.Groups {
			if g < 0 || g >= numGroups {
				return stats, fmt.Errorf("core: rescale %s: key group %d out of range [0,%d)", id, g, numGroups)
			}
			dst := merged.Groups[g]
			if dst == nil {
				dst = make(map[string]map[string]any, len(names))
				merged.Groups[g] = dst
			}
			for name, kv := range names {
				dkv := dst[name]
				if dkv == nil {
					dkv = make(map[string]any, len(kv))
					dst[name] = dkv
				}
				for k, v := range kv {
					dkv[k] = v
				}
			}
		}
		ts := newTimerService()
		if err := ts.restore(snap.Timers); err != nil {
			return stats, err
		}
		for e := range ts.set {
			allTimers = append(allTimers, e)
		}
	}
	stats.Timers = len(allTimers)

	// Write new instance snapshots, each owning its contiguous group range.
	newIDs := make([]string, 0, newParallelism)
	for i := 0; i < newParallelism; i++ {
		lo, hi := state.GroupRange(numGroups, newParallelism, i)
		sub := state.Image{NumGroups: numGroups, Groups: make(map[int]map[string]map[string]any)}
		for g := lo; g < hi; g++ {
			if names, ok := merged.Groups[g]; ok {
				sub.Groups[g] = names
			}
		}
		stateImg, err := state.EncodeImage(sub)
		if err != nil {
			return stats, err
		}
		ts := newTimerService()
		for _, e := range allTimers {
			if g := state.KeyGroupFor(e.Key, numGroups); g >= lo && g < hi {
				ts.register(e.TS, e.Key)
			}
		}
		timerImg, err := ts.snapshot()
		if err != nil {
			return stats, err
		}
		data, err := encodeInstanceSnapshot(instanceSnapshot{State: stateImg, Timers: timerImg})
		if err != nil {
			return stats, err
		}
		id := fmt.Sprintf("%s-%d", nodeName, i)
		if err := store.Save(toCP, id, data); err != nil {
			return stats, err
		}
		stats.StateBytes += int64(len(data))
		newIDs = append(newIDs, id)
	}

	// Copy the untouched instances.
	var total int64 = stats.StateBytes
	for _, id := range passthrough {
		raw, err := store.Load(fromCP, id)
		if err != nil {
			return stats, err
		}
		if err := store.Save(toCP, id, raw); err != nil {
			return stats, err
		}
		total += int64(len(raw))
	}
	meta := CheckpointMeta{
		ID:          toCP,
		JobName:     fmt.Sprintf("rescale(%s->%d)", nodeName, newParallelism),
		Rescaled:    true,
		InstanceIDs: append(passthrough, newIDs...),
		Bytes:       total,
	}
	if err := store.Complete(meta); err != nil {
		return stats, err
	}
	return stats, nil
}

// NodeParallelismIn counts the instances of nodeName recorded in a checkpoint,
// i.e. the parallelism a job must be rebuilt with to RestoreFrom it. Zero
// means the checkpoint holds no instances of that node. The elastic controller
// uses this to roll back to a checkpoint's parallelism after a crash
// mid-rescale, when the checkpoint it recovers from may predate or postdate
// the reconfiguration.
func NodeParallelismIn(meta CheckpointMeta, nodeName string) int {
	n := 0
	for _, id := range meta.InstanceIDs {
		if name, _, ok := splitInstanceID(id); ok && name == nodeName {
			n++
		}
	}
	return n
}

// splitInstanceID splits "name-3" into ("name", 3). Node names may themselves
// contain dashes; the index is the suffix after the final dash.
func splitInstanceID(id string) (name string, idx int, ok bool) {
	i := strings.LastIndexByte(id, '-')
	if i <= 0 {
		return "", 0, false
	}
	n, err := strconv.Atoi(id[i+1:])
	if err != nil {
		return "", 0, false
	}
	return id[:i], n, true
}
