package core

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/state"
)

// RescaleStats reports the state-movement cost of a rescale (E13).
type RescaleStats struct {
	// OldParallelism and NewParallelism are the instance counts before and
	// after the rescale.
	OldParallelism int
	NewParallelism int
	// StateBytes is the total keyed-state volume redistributed.
	StateBytes int64
	// Timers is the number of timers redistributed.
	Timers int
}

// RescaleCheckpoint rewrites the snapshots of one operator node inside a
// completed checkpoint for a new parallelism, redistributing keyed state and
// timers by key group (§3.3/§4.2 Elasticity & Reconfiguration). The result is
// stored as a new checkpoint `toCP`; all other nodes' snapshots are copied
// verbatim. A job built with the new parallelism can then RestoreFrom(toCP).
//
// Operators carrying Snapshotter custom state cannot be rescaled — keep
// rescalable state in the managed backend.
func RescaleCheckpoint(store SnapshotStore, fromCP, toCP int64, nodeName string, newParallelism, numGroups int) (RescaleStats, error) {
	var stats RescaleStats
	if newParallelism < 1 {
		return stats, fmt.Errorf("core: rescale to parallelism %d", newParallelism)
	}
	if numGroups <= 0 {
		numGroups = state.DefaultKeyGroups
	}
	ids, err := store.Instances(fromCP)
	if err != nil {
		return stats, err
	}

	var oldIDs []string
	var passthrough []string
	for _, id := range ids {
		if name, _, ok := splitInstanceID(id); ok && name == nodeName {
			oldIDs = append(oldIDs, id)
		} else {
			passthrough = append(passthrough, id)
		}
	}
	if len(oldIDs) == 0 {
		return stats, fmt.Errorf("core: checkpoint %d has no instances of node %q", fromCP, nodeName)
	}
	stats.OldParallelism = len(oldIDs)
	stats.NewParallelism = newParallelism

	// Merge all old state images and timers.
	merged := state.Image{NumGroups: numGroups, Groups: make(map[int]map[string]map[string]any)}
	var allTimers []timerEntry
	for _, id := range oldIDs {
		raw, err := store.Load(fromCP, id)
		if err != nil {
			return stats, err
		}
		snap, err := decodeInstanceSnapshot(raw)
		if err != nil {
			return stats, fmt.Errorf("core: rescale %s: %w", id, err)
		}
		if len(snap.Custom) > 0 {
			return stats, fmt.Errorf("core: node %q instance %s has custom snapshot state; cannot rescale", nodeName, id)
		}
		img, err := state.DecodeImage(snap.State)
		if err != nil {
			return stats, fmt.Errorf("core: rescale %s: %w", id, err)
		}
		if img.NumGroups != 0 && img.NumGroups != numGroups {
			return stats, fmt.Errorf("core: rescale %s: image has %d key groups, want %d", id, img.NumGroups, numGroups)
		}
		for g, names := range img.Groups {
			merged.Groups[g] = names
		}
		ts := newTimerService()
		if err := ts.restore(snap.Timers); err != nil {
			return stats, err
		}
		for e := range ts.set {
			allTimers = append(allTimers, e)
		}
	}
	stats.Timers = len(allTimers)

	// Write new instance snapshots, each owning its contiguous group range.
	newIDs := make([]string, 0, newParallelism)
	for i := 0; i < newParallelism; i++ {
		lo, hi := state.GroupRange(numGroups, newParallelism, i)
		sub := state.Image{NumGroups: numGroups, Groups: make(map[int]map[string]map[string]any)}
		for g := lo; g < hi; g++ {
			if names, ok := merged.Groups[g]; ok {
				sub.Groups[g] = names
			}
		}
		stateImg, err := state.EncodeImage(sub)
		if err != nil {
			return stats, err
		}
		ts := newTimerService()
		for _, e := range allTimers {
			if g := state.KeyGroupFor(e.Key, numGroups); g >= lo && g < hi {
				ts.register(e.TS, e.Key)
			}
		}
		timerImg, err := ts.snapshot()
		if err != nil {
			return stats, err
		}
		data, err := encodeInstanceSnapshot(instanceSnapshot{State: stateImg, Timers: timerImg})
		if err != nil {
			return stats, err
		}
		id := fmt.Sprintf("%s-%d", nodeName, i)
		if err := store.Save(toCP, id, data); err != nil {
			return stats, err
		}
		stats.StateBytes += int64(len(data))
		newIDs = append(newIDs, id)
	}

	// Copy the untouched instances.
	var total int64 = stats.StateBytes
	for _, id := range passthrough {
		raw, err := store.Load(fromCP, id)
		if err != nil {
			return stats, err
		}
		if err := store.Save(toCP, id, raw); err != nil {
			return stats, err
		}
		total += int64(len(raw))
	}
	meta := CheckpointMeta{
		ID:          toCP,
		JobName:     fmt.Sprintf("rescale(%s->%d)", nodeName, newParallelism),
		InstanceIDs: append(passthrough, newIDs...),
		Bytes:       total,
	}
	if err := store.Complete(meta); err != nil {
		return stats, err
	}
	return stats, nil
}

// splitInstanceID splits "name-3" into ("name", 3). Node names may themselves
// contain dashes; the index is the suffix after the final dash.
func splitInstanceID(id string) (name string, idx int, ok bool) {
	i := strings.LastIndexByte(id, '-')
	if i <= 0 {
		return "", 0, false
	}
	n, err := strconv.Atoi(id[i+1:])
	if err != nil {
		return "", 0, false
	}
	return id[:i], n, true
}
