package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/state"
)

// saveStateSnapshot hand-builds an instance snapshot carrying the given state
// image and stores it under (cp, id) — the harness for feeding
// RescaleCheckpoint images a running job would never produce on its own
// (overlapping groups, missing fan-out, out-of-range groups).
func saveStateSnapshot(t *testing.T, store SnapshotStore, cp int64, id string, img state.Image) {
	t.Helper()
	stateData, err := state.EncodeImage(img)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := encodeInstanceSnapshot(instanceSnapshot{State: stateData})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(cp, id, raw); err != nil {
		t.Fatal(err)
	}
}

func loadStateImage(t *testing.T, store SnapshotStore, cp int64, id string) state.Image {
	t.Helper()
	raw, err := store.Load(cp, id)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := decodeInstanceSnapshot(raw)
	if err != nil {
		t.Fatal(err)
	}
	img, err := state.DecodeImage(snap.State)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func groups(m map[int]map[string]map[string]any) map[int]map[string]map[string]any {
	if m == nil {
		return map[int]map[string]map[string]any{}
	}
	return m
}

func TestRescaleMergesOverlappingGroups(t *testing.T) {
	// Two old instances both carry key group 3 — disjoint keys under the
	// same state name, plus each an exclusive state name. A correct merge
	// keeps all of it; the old `merged.Groups[g] = names` overwrite kept only
	// the lexicographically-last instance's map.
	const numGroups = 8
	store := NewMemorySnapshotStore()
	saveStateSnapshot(t, store, 1, "count-0", state.Image{
		NumGroups: numGroups,
		Groups: map[int]map[string]map[string]any{
			3: {
				"totals": {"alpha": 1},
				"only0":  {"x": 10},
			},
		},
	})
	saveStateSnapshot(t, store, 1, "count-1", state.Image{
		NumGroups: numGroups,
		Groups: map[int]map[string]map[string]any{
			3: {
				"totals": {"beta": 2},
			},
			5: {
				"totals": {"gamma": 3},
			},
		},
	})
	if err := store.Complete(CheckpointMeta{ID: 1, InstanceIDs: []string{"count-0", "count-1"}}); err != nil {
		t.Fatal(err)
	}

	stats, err := RescaleCheckpoint(store, 1, 2, "count", 1, numGroups)
	if err != nil {
		t.Fatal(err)
	}
	if stats.OldParallelism != 2 || stats.NewParallelism != 1 {
		t.Fatalf("stats: %+v", stats)
	}

	img := loadStateImage(t, store, 2, "count-0")
	g3 := groups(img.Groups)[3]
	if g3 == nil {
		t.Fatal("merged image lost group 3 entirely")
	}
	if v, ok := g3["totals"]["alpha"]; !ok || v != 1 {
		t.Fatalf("overlapping group overwrote instance 0's keys: totals=%v", g3["totals"])
	}
	if v, ok := g3["totals"]["beta"]; !ok || v != 2 {
		t.Fatalf("merge lost instance 1's keys: totals=%v", g3["totals"])
	}
	if v, ok := g3["only0"]["x"]; !ok || v != 10 {
		t.Fatalf("merge lost a state name present in only one instance: %v", g3)
	}
	if v, ok := groups(img.Groups)[5]["totals"]["gamma"]; !ok || v != 3 {
		t.Fatalf("merge lost non-overlapping group 5: %v", img.Groups[5])
	}
}

func TestRescaleConflictLastInstanceWins(t *testing.T) {
	// The same (group, state, key) in two old images is a malformed
	// checkpoint, but the merge must still be deterministic: instances are
	// visited in the store's sorted order, so the later one wins.
	const numGroups = 4
	store := NewMemorySnapshotStore()
	for i, val := range []int{100, 200} {
		saveStateSnapshot(t, store, 1, "op-"+string(rune('0'+i)), state.Image{
			NumGroups: numGroups,
			Groups:    map[int]map[string]map[string]any{2: {"s": {"k": val}}},
		})
	}
	if err := store.Complete(CheckpointMeta{ID: 1, InstanceIDs: []string{"op-0", "op-1"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := RescaleCheckpoint(store, 1, 2, "op", 2, numGroups); err != nil {
		t.Fatal(err)
	}
	// Group 2 of 4 lands on new instance 1 (GroupRange splits [0,2) / [2,4)).
	img := loadStateImage(t, store, 2, "op-1")
	if v := groups(img.Groups)[2]["s"]["k"]; v != 200 {
		t.Fatalf("conflict resolution not deterministic: got %v, want 200 (last sorted instance)", v)
	}
}

func TestRescaleRejectsImageWithoutFanout(t *testing.T) {
	// NumGroups == 0 with state present means the keys' group assignment is
	// unknown; redistributing under an assumed fan-out would misroute them.
	store := NewMemorySnapshotStore()
	saveStateSnapshot(t, store, 1, "op-0", state.Image{
		NumGroups: 0,
		Groups:    map[int]map[string]map[string]any{1: {"s": {"k": 1}}},
	})
	if err := store.Complete(CheckpointMeta{ID: 1, InstanceIDs: []string{"op-0"}}); err != nil {
		t.Fatal(err)
	}
	_, err := RescaleCheckpoint(store, 1, 2, "op", 2, 8)
	if err == nil {
		t.Fatal("rescale accepted an image with state but no declared key-group fan-out")
	}
	if !strings.Contains(err.Error(), "fan-out") {
		t.Fatalf("unhelpful error: %v", err)
	}

	// An empty image with NumGroups == 0 (an instance that held no state) is
	// fine and must not be rejected.
	store2 := NewMemorySnapshotStore()
	saveStateSnapshot(t, store2, 1, "op-0", state.Image{Groups: map[int]map[string]map[string]any{}})
	if err := store2.Complete(CheckpointMeta{ID: 1, InstanceIDs: []string{"op-0"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := RescaleCheckpoint(store2, 1, 2, "op", 2, 8); err != nil {
		t.Fatalf("rescale rejected a legitimately empty image: %v", err)
	}
}

func TestRescaleRejectsOutOfRangeGroup(t *testing.T) {
	// A group index past the declared fan-out would be silently dropped by
	// the redistribution loop (state loss) — reject instead.
	store := NewMemorySnapshotStore()
	saveStateSnapshot(t, store, 1, "op-0", state.Image{
		NumGroups: 8,
		Groups:    map[int]map[string]map[string]any{9: {"s": {"k": 1}}},
	})
	if err := store.Complete(CheckpointMeta{ID: 1, InstanceIDs: []string{"op-0"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := RescaleCheckpoint(store, 1, 2, "op", 2, 8); err == nil {
		t.Fatal("rescale accepted a group index outside the declared fan-out")
	}
}

func TestRescaleMetaMarksRescaled(t *testing.T) {
	store := NewMemorySnapshotStore()
	saveStateSnapshot(t, store, 1, "op-0", state.Image{
		NumGroups: 8,
		Groups:    map[int]map[string]map[string]any{1: {"s": {"k": 1}}},
	})
	if err := store.Complete(CheckpointMeta{ID: 1, InstanceIDs: []string{"op-0"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := RescaleCheckpoint(store, 1, 2, "op", 3, 8); err != nil {
		t.Fatal(err)
	}
	meta, ok := store.Latest()
	if !ok || meta.ID != 2 {
		t.Fatalf("latest = %+v, %v", meta, ok)
	}
	if !meta.Rescaled {
		t.Fatal("rescaled checkpoint not marked Rescaled in its meta")
	}
	if got := NodeParallelismIn(meta, "op"); got != 3 {
		t.Fatalf("NodeParallelismIn(op) = %d, want 3", got)
	}
	if got := NodeParallelismIn(meta, "absent"); got != 0 {
		t.Fatalf("NodeParallelismIn(absent) = %d, want 0", got)
	}
}

func TestTriggerReportsRejectionWhenQueueFull(t *testing.T) {
	// The request channel holds 8 entries; a job that isn't draining them
	// (not yet running) must reject the 9th instead of silently dropping it.
	b := NewBuilder(Config{Name: "trig", SnapshotStore: NewMemorySnapshotStore()})
	sink := NewCollectSink()
	b.Source("src", NewSliceSourceFactory(genEvents(10, 1))).Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if !j.TriggerCheckpoint() {
			t.Fatalf("request %d rejected with queue space available", i)
		}
	}
	if j.TriggerCheckpoint() {
		t.Fatal("9th request accepted on a full queue")
	}
	if j.TriggerSavepoint() {
		t.Fatal("savepoint accepted on a full queue")
	}
}

// slowStore delays Save so a checkpoint stays in flight long enough for a
// savepoint request to arrive while it is active.
type slowStore struct {
	SnapshotStore
	delay time.Duration
}

func (s *slowStore) Save(cp int64, id string, data []byte) error {
	time.Sleep(s.delay)
	return s.SnapshotStore.Save(cp, id, data)
}

// slowSavepointTrigger forwards events with a per-element pause (keeping the
// stream alive long enough for a held savepoint to take effect) and requests
// a savepoint after `at` elements.
type slowSavepointTrigger struct {
	BaseOperator
	at   int
	seen int
	job  **Job
}

func (o *slowSavepointTrigger) ProcessElement(e Event, ctx Context) error {
	time.Sleep(100 * time.Microsecond)
	ctx.Emit(e)
	o.seen++
	if o.seen == o.at && *o.job != nil {
		(*o.job).TriggerSavepoint()
	}
	return nil
}

func TestSavepointHeldBehindInflightCheckpoint(t *testing.T) {
	// A savepoint requested while another checkpoint is in flight must not
	// be coalesced away: it is held and initiated when the in-flight
	// checkpoint settles, so the job still stops with a savepoint.
	const n = 500
	store := &slowStore{SnapshotStore: NewMemorySnapshotStore(), delay: 30 * time.Millisecond}
	sink := NewCollectSink()
	var jobRef *Job
	// ChannelCapacity 8 keeps the source backpressured (alive) for the whole
	// run; an unbounded burst would let it exhaust its slice and exit before
	// the held savepoint's barrier could reach it.
	b := NewBuilder(Config{Name: "held", SnapshotStore: store, CheckpointEvery: 40, ChannelCapacity: 8})
	b.Source("src", NewSliceSourceFactory(genEvents(n, 2))).
		// The savepoint lands right behind an automatic checkpoint request
		// (CheckpointEvery=40, trigger at 45): with 30ms per snapshot save the
		// checkpoint is still in flight when the savepoint is dequeued.
		Process("mid", func() Operator { return &slowSavepointTrigger{at: 45, job: &jobRef} }).
		Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	jobRef = j
	runJob(t, j)
	if !j.SavepointStopped() {
		t.Fatalf("savepoint was dropped: job ran to completion (%d events)", sink.Len())
	}
	if sink.Len() >= n {
		t.Fatalf("savepoint did not stop the job early (%d events)", sink.Len())
	}
	meta, ok := store.Latest()
	if !ok || !meta.Savepoint {
		t.Fatalf("latest completed checkpoint is not the savepoint: %+v ok=%v", meta, ok)
	}
}

func TestWhenCheckpointNotifies(t *testing.T) {
	const n = 300
	store := NewMemorySnapshotStore()
	sink := NewCollectSink()
	b := NewBuilder(Config{Name: "notify", SnapshotStore: store, CheckpointEvery: 50})
	b.Source("src", NewSliceSourceFactory(genEvents(n, 2))).Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ch := j.WhenCheckpoint(1)
	runJob(t, j)
	select {
	case <-ch:
	default:
		t.Fatalf("waiter for checkpoint 1 never notified (last completed: %d)", j.LastCheckpoint())
	}
	// Registering for an already-completed ID returns a closed channel.
	select {
	case <-j.WhenCheckpoint(j.LastCheckpoint()):
	default:
		t.Fatal("waiter for an already-completed checkpoint not immediately closed")
	}
	if j.SavepointStopped() {
		t.Fatal("naturally-finished job reports SavepointStopped")
	}
}
