package core

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/eventtime"
	"repro/internal/metrics"
	"repro/internal/obsv"
	"repro/internal/state"
)

// outEdge is the sender-side view of one logical edge at one upstream
// instance: the downstream inboxes, the receiver-local channel IDs this
// sender occupies at each of them, and the routing policy.
type outEdge struct {
	edge    *edge
	targets []chan message // one per reachable downstream instance
	chIDs   []int          // receiver-local channel index at each target
	// groupToTarget maps a key group to the index in targets (hash edges).
	groupToTarget []int
	numKeyGroups  int
	rr            int // round-robin cursor for rebalance edges
	mrr           int // round-robin cursor for latency-marker forwarding
	// blocked records how long sends on this edge stalled on a full channel —
	// the backpressure signal (§3.3). nil when instrumentation is off, which
	// keeps the hot send path free of clock reads.
	blocked *metrics.Histogram
}

// sendRecord routes one record. Returns false if the job context ended.
func (o *outEdge) sendRecord(ctx context.Context, e Event) bool {
	switch o.edge.kind {
	case PartitionHash:
		e.Key = o.edge.keySel(e)
		g := state.KeyGroupFor(e.Key, o.numKeyGroups)
		t := o.groupToTarget[g]
		return o.send(ctx, o.targets[t], message{kind: msgRecord, channel: o.chIDs[t], event: e})
	case PartitionBroadcast:
		for t := range o.targets {
			if !o.send(ctx, o.targets[t], message{kind: msgRecord, channel: o.chIDs[t], event: e}) {
				return false
			}
		}
		return true
	case PartitionForward:
		// Exactly one target was wired for forward edges.
		return o.send(ctx, o.targets[0], message{kind: msgRecord, channel: o.chIDs[0], event: e})
	default: // PartitionRebalance
		t := o.rr % len(o.targets)
		o.rr++
		return o.send(ctx, o.targets[t], message{kind: msgRecord, channel: o.chIDs[t], event: e})
	}
}

// broadcastCtl sends a control message (watermark, barrier, EOS) to every
// reachable downstream instance on this edge.
func (o *outEdge) broadcastCtl(ctx context.Context, m message) bool {
	for t := range o.targets {
		m.channel = o.chIDs[t]
		if !o.send(ctx, o.targets[t], m) {
			return false
		}
	}
	return true
}

// sendMarker forwards a latency marker to exactly one downstream instance
// (rotating), so marker volume stays proportional to the graph, not to the
// parallelism, while every channel is still sampled over time.
func (o *outEdge) sendMarker(ctx context.Context, mk *latencyMarker) bool {
	t := o.mrr % len(o.targets)
	o.mrr++
	return o.send(ctx, o.targets[t], message{kind: msgLatencyMarker, channel: o.chIDs[t], marker: mk})
}

// send delivers one message, measuring time blocked on a full channel when
// the edge is instrumented.
func (o *outEdge) send(ctx context.Context, ch chan message, m message) bool {
	if o.blocked == nil {
		return send(ctx, ch, m)
	}
	select {
	case ch <- m:
		return true
	default:
	}
	start := time.Now()
	if !send(ctx, ch, m) {
		return false
	}
	o.blocked.Observe(int64(time.Since(start)))
	return true
}

func send(ctx context.Context, ch chan message, m message) bool {
	select {
	case ch <- m:
		return true
	case <-ctx.Done():
		return false
	}
}

// instance is one parallel operator instance at runtime.
type instance struct {
	job        *Job
	node       *node
	idx        int
	id         string
	inbox      chan message
	numInputs  int
	outs       []*outEdge
	op         Operator
	backend    state.Backend
	timers     *timerService
	tracker    *eventtime.WatermarkTracker
	restore    []byte // instance snapshot to restore, nil if fresh start
	inCounter  *metrics.Counter
	outCounter *metrics.Counter

	// Observability plumbing (nil / zero when Config.Instrument is off, so
	// the hot paths stay branch-and-done).
	queueDepth *metrics.Gauge     // node.<n>.<i>.queue_depth
	wmGauge    *metrics.Gauge     // node.<n>.<i>.watermark
	wmLag      *metrics.Gauge     // node.<n>.<i>.watermark_lag_ms
	latency    *metrics.Histogram // node.<n>.latency_ns (marker end-to-end)
	alignNs    *metrics.Histogram // node.<n>.align_ns (barrier alignment)
	alignStart time.Time
	tracer     *obsv.Tracer
	batchSpan  *obsv.Span // open operator.process span, record-batch scoped
	batchSize  int64
	alignSpan  *obsv.Span

	// Barrier alignment state.
	pendingBarrier  *barrierMark
	barrierArrived  []bool
	barrierCount    int
	stash           []message
	channelFinished []bool
	finishedCount   int
	// nonDrainStop records that at least one input ended without draining
	// (stop-with-savepoint): the instance then terminates without firing
	// open windows or emitting Close output.
	nonDrainStop bool
}

// opContext implements Context for one instance; reused across callbacks.
type opContext struct {
	inst       *instance
	runCtx     context.Context
	currentKey string
	emitErr    error
}

func (c *opContext) Emit(e Event) {
	for _, o := range c.inst.outs {
		if !o.sendRecord(c.runCtx, e) {
			c.emitErr = c.runCtx.Err()
			return
		}
	}
	c.inst.outCounter.Inc()
}

func (c *opContext) Key() string { return c.currentKey }

func (c *opContext) State() state.Backend {
	c.inst.backend.SetCurrentKey(c.currentKey)
	return c.inst.backend
}

func (c *opContext) RegisterEventTimeTimer(ts int64) { c.inst.timers.register(ts, c.currentKey) }
func (c *opContext) DeleteEventTimeTimer(ts int64)   { c.inst.timers.unregister(ts, c.currentKey) }
func (c *opContext) CurrentWatermark() int64         { return c.inst.tracker.Current() }
func (c *opContext) InstanceIndex() int              { return c.inst.idx }
func (c *opContext) Parallelism() int                { return c.inst.node.parallelism }
func (c *opContext) Logger() *log.Logger             { return c.inst.job.logger }

// run is the instance main loop.
func (in *instance) run(ctx context.Context) error {
	octx := &opContext{inst: in, runCtx: ctx}

	if in.restore != nil {
		snap, err := decodeInstanceSnapshot(in.restore)
		if err != nil {
			return fmt.Errorf("%s: %w", in.id, err)
		}
		if len(snap.State) > 0 {
			if err := in.backend.Restore(snap.State); err != nil {
				return fmt.Errorf("%s: restore state: %w", in.id, err)
			}
		}
		if err := in.timers.restore(snap.Timers); err != nil {
			return fmt.Errorf("%s: %w", in.id, err)
		}
		if s, ok := in.op.(Snapshotter); ok && len(snap.Custom) > 0 {
			if err := s.RestoreCustom(snap.Custom); err != nil {
				return fmt.Errorf("%s: restore custom: %w", in.id, err)
			}
		}
	}
	if err := in.op.Open(octx); err != nil {
		return fmt.Errorf("%s: open: %w", in.id, err)
	}
	lifeSpan := in.tracer.Begin("instance.run", in.node.name, in.id)
	defer func() {
		in.closeBatchSpan()
		lifeSpan.End()
	}()

	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case m := <-in.inbox:
			if in.queueDepth != nil {
				in.queueDepth.Set(int64(len(in.inbox)))
			}
			done, err := in.handle(ctx, octx, m)
			if err != nil {
				return fmt.Errorf("%s: %w", in.id, err)
			}
			if done {
				return nil
			}
		}
	}
}

// handle dispatches one message; done=true once all inputs are exhausted and
// shutdown is complete.
func (in *instance) handle(ctx context.Context, octx *opContext, m message) (bool, error) {
	// Aligned exactly-once barriers block already-aligned channels: their
	// records and watermarks are stashed until the barrier completes.
	if in.pendingBarrier != nil && !in.job.cfg.AtLeastOnce &&
		m.kind != msgBarrier && m.kind != msgEOS && in.barrierArrived[m.channel] {
		in.stash = append(in.stash, m)
		return false, nil
	}

	switch m.kind {
	case msgRecord:
		return false, in.processRecord(octx, m.event)

	case msgWatermark:
		in.closeBatchSpan()
		return false, in.advanceWatermark(ctx, octx, m.channel, m.wm)

	case msgBarrier:
		in.closeBatchSpan()
		return false, in.handleBarrier(ctx, octx, m.channel, m.barrier)

	case msgEOS:
		in.closeBatchSpan()
		return in.handleEOS(ctx, octx, m.channel, m.drain)

	case msgLatencyMarker:
		return false, in.handleMarker(ctx, m.marker)
	}
	return false, nil
}

// handleMarker records the latency a marker accumulated and forwards a fresh
// marker downstream. Markers are invisible to operators, so they can never
// perturb window, CEP or user state.
func (in *instance) handleMarker(ctx context.Context, mk *latencyMarker) error {
	now := time.Now().UnixNano()
	if in.latency != nil {
		in.latency.Observe(now - mk.origin)
		in.job.metrics.Histogram("edge." + mk.from + "." + in.node.name + ".hop_ns").
			Observe(now - mk.hopped)
	}
	if len(in.outs) == 0 {
		return nil
	}
	fwd := &latencyMarker{origin: mk.origin, hopped: now, from: in.node.name, source: mk.source}
	for _, o := range in.outs {
		if !o.sendMarker(ctx, fwd) {
			return ctx.Err()
		}
	}
	return nil
}

// closeBatchSpan ends the open record-batch span, stamping how many records
// it covered. Batches are delimited by control messages (watermarks,
// barriers, EOS), so span volume is bounded by control frequency, not record
// rate.
func (in *instance) closeBatchSpan() {
	if in.batchSpan == nil {
		return
	}
	in.batchSpan.SetInt("records", in.batchSize)
	in.batchSpan.End()
	in.batchSpan = nil
	in.batchSize = 0
}

func (in *instance) processRecord(octx *opContext, e Event) error {
	octx.currentKey = e.Key
	in.backend.SetCurrentKey(e.Key)
	in.inCounter.Inc()
	if in.tracer != nil {
		if in.batchSpan == nil {
			in.batchSpan = in.tracer.Begin("operator.process", in.node.name, in.id)
		}
		in.batchSize++
	}
	if err := in.op.ProcessElement(e, octx); err != nil {
		return err
	}
	return octx.emitErr
}

func (in *instance) advanceWatermark(ctx context.Context, octx *opContext, channel int, wm int64) error {
	combined, advanced := in.tracker.Update(channel, wm)
	if !advanced {
		return nil
	}
	return in.emitWatermarkProgress(ctx, octx, combined)
}

// emitWatermarkProgress fires due timers, notifies the operator, and forwards
// the watermark downstream.
func (in *instance) emitWatermarkProgress(ctx context.Context, octx *opContext, wm int64) error {
	if in.wmGauge != nil && wm != eventtime.MaxWatermark {
		in.wmGauge.Set(wm)
		in.wmLag.Set(eventtime.Lag(in.job.cfg.Clock.Now(), wm))
	}
	for _, t := range in.timers.due(wm) {
		octx.currentKey = t.Key
		in.backend.SetCurrentKey(t.Key)
		if err := in.op.OnTimer(t.TS, octx); err != nil {
			return err
		}
		if octx.emitErr != nil {
			return octx.emitErr
		}
	}
	if err := in.op.OnWatermark(wm, octx); err != nil {
		return err
	}
	if octx.emitErr != nil {
		return octx.emitErr
	}
	for _, o := range in.outs {
		if !o.broadcastCtl(ctx, message{kind: msgWatermark, wm: wm}) {
			return ctx.Err()
		}
	}
	return nil
}

func (in *instance) handleBarrier(ctx context.Context, octx *opContext, channel int, b barrierMark) error {
	if in.pendingBarrier == nil {
		pb := b
		in.pendingBarrier = &pb
		in.barrierCount = 0
		if in.alignNs != nil {
			in.alignStart = time.Now()
		}
		if in.tracer != nil {
			in.alignSpan = in.tracer.Begin("barrier.align", in.node.name, in.id).
				SetInt("checkpoint", b.ID)
		}
		for i := range in.barrierArrived {
			in.barrierArrived[i] = in.channelFinished[i]
			if in.barrierArrived[i] {
				in.barrierCount++
			}
		}
		if in.job.cfg.AtLeastOnce {
			// Unaligned mode forwards the barrier immediately.
			for _, o := range in.outs {
				if !o.broadcastCtl(ctx, message{kind: msgBarrier, barrier: b}) {
					return ctx.Err()
				}
			}
		}
	}
	if b.ID != in.pendingBarrier.ID {
		return fmt.Errorf("overlapping checkpoints %d and %d", in.pendingBarrier.ID, b.ID)
	}
	if !in.barrierArrived[channel] {
		in.barrierArrived[channel] = true
		in.barrierCount++
	}
	if in.barrierCount < in.numInputs {
		return nil
	}
	return in.completeBarrier(ctx, octx)
}

// completeBarrier snapshots, acks, forwards (aligned mode), and replays the
// stash.
func (in *instance) completeBarrier(ctx context.Context, octx *opContext) error {
	b := *in.pendingBarrier
	if in.alignNs != nil {
		in.alignNs.Observe(int64(time.Since(in.alignStart)))
	}
	if in.alignSpan != nil {
		in.alignSpan.SetInt("stashed", int64(len(in.stash)))
		in.alignSpan.End()
		in.alignSpan = nil
	}
	if err := in.snapshotAndAck(b); err != nil {
		return err
	}
	if !in.job.cfg.AtLeastOnce {
		for _, o := range in.outs {
			if !o.broadcastCtl(ctx, message{kind: msgBarrier, barrier: b}) {
				return ctx.Err()
			}
		}
	}
	in.pendingBarrier = nil
	stash := in.stash
	in.stash = nil
	for _, sm := range stash {
		if _, err := in.handle(ctx, octx, sm); err != nil {
			return err
		}
	}
	return nil
}

func (in *instance) snapshotAndAck(b barrierMark) error {
	var start time.Time
	instrumented := in.job.cfg.Instrument
	if instrumented {
		start = time.Now()
	}
	span := in.tracer.Begin("snapshot", in.node.name, in.id).SetInt("checkpoint", b.ID)
	stateImg, err := in.backend.Snapshot()
	if err != nil {
		return fmt.Errorf("snapshot state: %w", err)
	}
	timerImg, err := in.timers.snapshot()
	if err != nil {
		return err
	}
	snap := instanceSnapshot{State: stateImg, Timers: timerImg}
	if s, ok := in.op.(Snapshotter); ok {
		custom, err := s.SnapshotCustom()
		if err != nil {
			return fmt.Errorf("snapshot custom: %w", err)
		}
		snap.Custom = custom
	}
	data, err := encodeInstanceSnapshot(snap)
	if err != nil {
		return err
	}
	if instrumented {
		reg := in.job.metrics
		reg.Histogram("node." + in.node.name + ".snapshot_ns").Observe(int64(time.Since(start)))
		reg.Histogram("node." + in.node.name + ".snapshot_bytes").Observe(int64(len(data)))
	}
	span.SetInt("bytes", int64(len(data)))
	span.End()
	return in.job.saveAndAck(b, in.id, data)
}

func (in *instance) handleEOS(ctx context.Context, octx *opContext, channel int, drain bool) (bool, error) {
	if in.channelFinished[channel] {
		return false, nil
	}
	in.channelFinished[channel] = true
	in.finishedCount++
	if !drain {
		in.nonDrainStop = true
	}

	// A finished draining channel can never hold back progress again; a
	// stop-with-savepoint end must NOT advance event time, or open windows
	// would fire with partial contents that the savepoint also captured.
	if drain && !in.nonDrainStop {
		if err := in.advanceWatermark(ctx, octx, channel, eventtime.MaxWatermark); err != nil {
			return false, err
		}
	}
	// A finished channel cannot deliver a pending barrier: count it as
	// aligned.
	if in.pendingBarrier != nil && !in.barrierArrived[channel] {
		in.barrierArrived[channel] = true
		in.barrierCount++
		if in.barrierCount >= in.numInputs {
			if err := in.completeBarrier(ctx, octx); err != nil {
				return false, err
			}
		}
	}
	if in.finishedCount < in.numInputs {
		return false, nil
	}
	// All inputs exhausted. On a draining end, flush final output; on a
	// stop-with-savepoint, terminate silently — the snapshot holds the
	// in-progress state.
	if !in.nonDrainStop {
		octx.currentKey = ""
		if err := in.op.Close(octx); err != nil {
			return false, err
		}
		if octx.emitErr != nil {
			return false, octx.emitErr
		}
	}
	for _, o := range in.outs {
		if !o.broadcastCtl(ctx, message{kind: msgEOS, drain: !in.nonDrainStop}) {
			return false, ctx.Err()
		}
	}
	return true, nil
}
