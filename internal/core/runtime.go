package core

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/eventtime"
	"repro/internal/metrics"
	"repro/internal/obsv"
	"repro/internal/state"
)

// batchPool recycles record-batch slices between senders and receivers
// (same process, so a shared pool suffices). Slices are returned with len 0
// and whatever capacity they grew to.
var batchPool = sync.Pool{New: func() any { b := make([]Event, 0, 64); return &b }}

// outEdge is the sender-side view of one logical edge at one upstream
// instance: the downstream inboxes, the receiver-local channel IDs this
// sender occupies at each of them, and the routing policy.
type outEdge struct {
	edge    *edge
	targets []chan message // one per reachable downstream instance
	chIDs   []int          // receiver-local channel index at each target
	// groupToTarget maps a key group to the index in targets (hash edges).
	groupToTarget []int
	numKeyGroups  int
	// rr and mrr are free-running round-robin cursors (rebalance routing and
	// latency-marker forwarding). Unsigned so overflow wraps to 0 instead of
	// going negative — a signed cursor would eventually produce a negative
	// modulus and panic on the target index.
	rr  uint64
	mrr uint64
	// blocked records how long sends on this edge stalled on a full channel —
	// the backpressure signal (§3.3). nil when instrumentation is off, which
	// keeps the hot send path free of clock reads.
	blocked *metrics.Histogram

	// Batched exchange (Config.MaxBatchSize > 1). pending holds one open
	// pooled batch per downstream target; a nil entry means no open batch.
	// Batches flush on size and before any control message, so they never
	// cross a watermark, barrier, EOS or marker.
	maxBatch int
	pending  []*[]Event
	// batchSize and the flush counters are nil when instrumentation is off.
	batchSize *metrics.Histogram // records per flushed batch
	flushSize *metrics.Counter   // flushes because the batch filled
	flushCtl  *metrics.Counter   // flushes forced by a control message
}

// sendRecord routes one record. Returns false if the job context ended.
func (o *outEdge) sendRecord(ctx context.Context, e Event) bool {
	if o.maxBatch > 1 {
		return o.sendRecordBatched(ctx, e)
	}
	switch o.edge.kind {
	case PartitionHash:
		e.Key = o.edge.keySel(e)
		g := state.KeyGroupFor(e.Key, o.numKeyGroups)
		t := o.groupToTarget[g]
		return o.send(ctx, o.targets[t], message{kind: msgRecord, channel: o.chIDs[t], event: e})
	case PartitionBroadcast:
		for t := range o.targets {
			if !o.send(ctx, o.targets[t], message{kind: msgRecord, channel: o.chIDs[t], event: e}) {
				return false
			}
		}
		return true
	case PartitionForward:
		// Exactly one target was wired for forward edges.
		return o.send(ctx, o.targets[0], message{kind: msgRecord, channel: o.chIDs[0], event: e})
	default: // PartitionRebalance
		t := int(o.rr % uint64(len(o.targets)))
		o.rr++
		return o.send(ctx, o.targets[t], message{kind: msgRecord, channel: o.chIDs[t], event: e})
	}
}

// sendRecordBatched routes one record into the target's open batch, flushing
// when the batch reaches maxBatch records.
func (o *outEdge) sendRecordBatched(ctx context.Context, e Event) bool {
	switch o.edge.kind {
	case PartitionHash:
		e.Key = o.edge.keySel(e)
		g := state.KeyGroupFor(e.Key, o.numKeyGroups)
		return o.enqueue(ctx, o.groupToTarget[g], e)
	case PartitionBroadcast:
		for t := range o.targets {
			if !o.enqueue(ctx, t, e) {
				return false
			}
		}
		return true
	case PartitionForward:
		return o.enqueue(ctx, 0, e)
	default: // PartitionRebalance
		t := int(o.rr % uint64(len(o.targets)))
		o.rr++
		return o.enqueue(ctx, t, e)
	}
}

// sendRecords routes a slice of records in order, equivalent to calling
// sendRecord on each but with the per-record dispatch amortized: on batched
// forward edges the slice is appended into the open batch in chunks, and on
// batched hash edges consecutive records with the same key (key runs) reuse
// the previous record's route instead of re-hashing.
func (o *outEdge) sendRecords(ctx context.Context, events []Event) bool {
	if o.maxBatch > 1 {
		switch o.edge.kind {
		case PartitionForward:
			for len(events) > 0 {
				b := o.pending[0]
				if b == nil {
					b = batchPool.Get().(*[]Event)
					o.pending[0] = b //streamvet:allow poolretain — sender-owned open batch, flushed before any control message
				}
				n := o.maxBatch - len(*b)
				if n > len(events) {
					n = len(events)
				}
				*b = append(*b, events[:n]...)
				events = events[n:]
				if len(*b) >= o.maxBatch {
					if o.flushSize != nil {
						o.flushSize.Inc()
					}
					if !o.flushTarget(ctx, 0) {
						return false
					}
				}
			}
			return true
		case PartitionHash:
			n := len(events)
			for i := 0; i < n; {
				e := events[i]
				e.Key = o.edge.keySel(e)
				g := state.KeyGroupFor(e.Key, o.numKeyGroups)
				t := o.groupToTarget[g]
				// Extend the run of records selecting the same key: they all
				// route to the same target and are appended in bulk, with the
				// key group hashed once for the whole run.
				j := i + 1
				for j < n && o.edge.keySel(events[j]) == e.Key {
					j++
				}
				run := events[i:j]
				for len(run) > 0 {
					b := o.pending[t]
					if b == nil {
						b = batchPool.Get().(*[]Event)
						o.pending[t] = b //streamvet:allow poolretain — sender-owned open batch, flushed before any control message
					}
					c := o.maxBatch - len(*b)
					if c > len(run) {
						c = len(run)
					}
					base := len(*b)
					*b = append(*b, run[:c]...)
					for k := base; k < base+c; k++ {
						(*b)[k].Key = e.Key
					}
					run = run[c:]
					if len(*b) >= o.maxBatch {
						if o.flushSize != nil {
							o.flushSize.Inc()
						}
						if !o.flushTarget(ctx, t) {
							return false
						}
					}
				}
				i = j
			}
			return true
		case PartitionBroadcast, PartitionRebalance:
			// Per-record routing below: broadcast duplicates every record and
			// rebalance re-routes each one, so there is no run to amortize.
		}
	}
	for i := range events {
		if !o.sendRecord(ctx, events[i]) {
			return false
		}
	}
	return true
}

func (o *outEdge) enqueue(ctx context.Context, t int, e Event) bool {
	b := o.pending[t]
	if b == nil {
		b = batchPool.Get().(*[]Event)
		// The open batch is sender-owned until flushTarget hands it to the
		// receiver; flushAll ships it before any control message, so it never
		// outlives the exchange.
		o.pending[t] = b //streamvet:allow poolretain — sender-owned open batch, flushed before any control message
	}
	*b = append(*b, e)
	if len(*b) < o.maxBatch {
		return true
	}
	if o.flushSize != nil {
		o.flushSize.Inc()
	}
	return o.flushTarget(ctx, t)
}

// flushTarget ships target t's open batch, if any.
func (o *outEdge) flushTarget(ctx context.Context, t int) bool {
	b := o.pending[t]
	if b == nil {
		return true
	}
	o.pending[t] = nil
	if o.batchSize != nil {
		o.batchSize.Observe(int64(len(*b)))
	}
	return o.send(ctx, o.targets[t], message{kind: msgRecordBatch, channel: o.chIDs[t], batch: b})
}

// flushAll ships every open batch. Called before any control message so
// batches never reorder records across watermarks, barriers, EOS or markers.
func (o *outEdge) flushAll(ctx context.Context) bool {
	if o.maxBatch <= 1 {
		return true
	}
	flushed := false
	for t := range o.pending {
		if o.pending[t] != nil {
			flushed = true
		}
		if !o.flushTarget(ctx, t) {
			return false
		}
	}
	if flushed && o.flushCtl != nil {
		o.flushCtl.Inc()
	}
	return true
}

// broadcastCtl sends a control message (watermark, barrier, EOS) to every
// reachable downstream instance on this edge, flushing open batches first so
// per-channel ordering relative to the control message is preserved.
func (o *outEdge) broadcastCtl(ctx context.Context, m message) bool {
	if !o.flushAll(ctx) {
		return false
	}
	for t := range o.targets {
		m.channel = o.chIDs[t]
		if !o.send(ctx, o.targets[t], m) {
			return false
		}
	}
	return true
}

// sendMarker forwards a latency marker to exactly one downstream instance
// (rotating), so marker volume stays proportional to the graph, not to the
// parallelism, while every channel is still sampled over time. Open batches
// flush first so the marker measures the latency a record at the queue tail
// would see.
func (o *outEdge) sendMarker(ctx context.Context, mk *latencyMarker) bool {
	if !o.flushAll(ctx) {
		return false
	}
	t := int(o.mrr % uint64(len(o.targets)))
	o.mrr++
	return o.send(ctx, o.targets[t], message{kind: msgLatencyMarker, channel: o.chIDs[t], marker: mk})
}

// send delivers one message, measuring time blocked on a full channel when
// the edge is instrumented.
func (o *outEdge) send(ctx context.Context, ch chan message, m message) bool {
	if o.blocked == nil {
		return send(ctx, ch, m)
	}
	select {
	case ch <- m:
		return true
	default:
	}
	start := nanotime()
	if !send(ctx, ch, m) {
		return false
	}
	o.blocked.Observe(nanotime() - start)
	return true
}

func send(ctx context.Context, ch chan message, m message) bool {
	// Non-blocking fast path: a buffered channel with room skips the full
	// two-case select, which costs several times a bare channel op.
	select {
	case ch <- m:
		return true
	default:
	}
	select {
	case ch <- m:
		return true
	case <-ctx.Done():
		return false
	}
}

// instance is one parallel operator instance at runtime.
type instance struct {
	job        *Job
	node       *node
	idx        int
	id         string
	inbox      chan message
	numInputs  int
	outs       []*outEdge
	op         Operator
	batchOp    BatchOperator // non-nil only when ColumnarExec is on and op implements it
	backend    state.Backend
	timers     *timerService
	tracker    *eventtime.WatermarkTracker
	restore    []restorePayload // snapshot chain to restore (full first), nil if fresh start
	inCounter  *metrics.Counter
	outCounter *metrics.Counter

	// Observability plumbing (nil / zero when Config.Instrument is off, so
	// the hot paths stay branch-and-done).
	queueDepth *metrics.Gauge     // node.<n>.<i>.queue_depth
	wmGauge    *metrics.Gauge     // node.<n>.<i>.watermark
	wmLag      *metrics.Gauge     // node.<n>.<i>.watermark_lag_ms
	busyNs     *metrics.Counter   // node.<n>.<i>.busy_ns (useful-work time)
	latency    *metrics.Histogram // node.<n>.latency_ns (marker end-to-end)
	alignNs    *metrics.Histogram // node.<n>.align_ns (barrier alignment)
	alignStart int64              // nanotime() stamp at first barrier arrival
	tracer     *obsv.Tracer
	batchSpan  *obsv.Span // open operator.process span, record-batch scoped
	batchSize  int64
	alignSpan  *obsv.Span

	// Barrier alignment state.
	pendingBarrier  *barrierMark
	barrierArrived  []bool
	barrierCount    int
	stash           []message
	channelFinished []bool
	finishedCount   int
	// nonDrainStop records that at least one input ended without draining
	// (stop-with-savepoint): the instance then terminates without firing
	// open windows or emitting Close output.
	nonDrainStop bool
	// fired dedups re-registered timers within one watermark advance; it is
	// allocated on first use and cleared (not freed) afterwards so steady
	// window firing does not allocate per advance.
	fired map[timerEntry]bool
}

// opContext implements Context for one instance; reused across callbacks.
type opContext struct {
	inst       *instance
	runCtx     context.Context
	currentKey string
	emitErr    error
}

func (c *opContext) Emit(e Event) {
	for _, o := range c.inst.outs {
		if !o.sendRecord(c.runCtx, e) {
			c.emitErr = c.runCtx.Err()
			return
		}
	}
	c.inst.outCounter.Inc()
}

// EmitBatch implements BatchContext: events go downstream in order, exactly
// as repeated Emit calls would send them, but the routing dispatch and the
// output counter are amortized over the whole slice.
func (c *opContext) EmitBatch(events []Event) {
	if len(events) == 0 {
		return
	}
	for _, o := range c.inst.outs {
		if !o.sendRecords(c.runCtx, events) {
			c.emitErr = c.runCtx.Err()
			return
		}
	}
	c.inst.outCounter.Add(int64(len(events)))
}

func (c *opContext) Key() string { return c.currentKey }

// SetKey implements BatchContext. The key is scoped lazily: State()
// synchronizes the backend's current key on every call, so a plain SetKey is
// two word writes and stateless operators never pay the key hash.
func (c *opContext) SetKey(key string) { c.currentKey = key }

func (c *opContext) State() state.Backend {
	c.inst.backend.SetCurrentKey(c.currentKey)
	return c.inst.backend
}

func (c *opContext) RegisterEventTimeTimer(ts int64) { c.inst.timers.register(ts, c.currentKey) }
func (c *opContext) DeleteEventTimeTimer(ts int64)   { c.inst.timers.unregister(ts, c.currentKey) }
func (c *opContext) CurrentWatermark() int64         { return c.inst.tracker.Current() }
func (c *opContext) InstanceIndex() int              { return c.inst.idx }
func (c *opContext) Parallelism() int                { return c.inst.node.parallelism }
func (c *opContext) Logger() *log.Logger             { return c.inst.job.logger }

// run is the instance main loop.
func (in *instance) run(ctx context.Context) error {
	octx := &opContext{inst: in, runCtx: ctx}

	if len(in.restore) > 0 {
		if err := in.restoreChain(); err != nil {
			return fmt.Errorf("%s: %w", in.id, err)
		}
		in.restore = nil
	}
	if err := in.op.Open(octx); err != nil {
		return fmt.Errorf("%s: open: %w", in.id, err)
	}
	lifeSpan := in.tracer.Begin("instance.run", in.node.name, in.id)
	defer func() {
		in.closeBatchSpan()
		lifeSpan.End()
	}()

	for {
		// Non-blocking fast path first: under sustained load the inbox is
		// rarely empty, and a bare buffered receive is several times cheaper
		// than the two-case select. Cancellation is still observed promptly —
		// once the job context ends, senders stop and the inbox drains to the
		// blocking select below.
		var m message
		var ok bool
		select {
		case m = <-in.inbox:
			ok = true
		default:
		}
		if !ok {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case m = <-in.inbox:
			}
		}
		if in.queueDepth != nil {
			in.queueDepth.Set(int64(len(in.inbox)))
		}
		// busyNs accumulates only time spent handling messages — inbox
		// waits are excluded — giving the DS2-style "true" (useful-work)
		// processing rate the scaling policy divides the input rate by.
		var busyStart int64
		if in.busyNs != nil {
			busyStart = nanotime()
		}
		done, err := in.handle(ctx, octx, m)
		if in.busyNs != nil {
			in.busyNs.Add(nanotime() - busyStart)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", in.id, err)
		}
		if done {
			return nil
		}
	}
}

// handle dispatches one message; done=true once all inputs are exhausted and
// shutdown is complete.
func (in *instance) handle(ctx context.Context, octx *opContext, m message) (bool, error) {
	// Aligned exactly-once barriers block already-aligned channels: their
	// records, watermarks and EOS markers are stashed until the barrier
	// completes. (An EOS processed ahead of the stash would advance event
	// time past records the snapshot has not yet seen replayed.)
	if in.pendingBarrier != nil && !in.job.cfg.AtLeastOnce &&
		m.kind != msgBarrier && in.barrierArrived[m.channel] {
		in.stash = append(in.stash, m)
		return false, nil
	}

	switch m.kind {
	case msgRecord:
		return false, in.processRecord(octx, m.event)

	case msgRecordBatch:
		return false, in.processBatch(octx, m.batch)

	case msgWatermark:
		in.closeBatchSpan()
		return false, in.advanceWatermark(ctx, octx, m.channel, m.wm)

	case msgBarrier:
		in.closeBatchSpan()
		return in.handleBarrier(ctx, octx, m.channel, m.barrier)

	case msgEOS:
		in.closeBatchSpan()
		return in.handleEOS(ctx, octx, m.channel, m.drain)

	case msgLatencyMarker:
		return false, in.handleMarker(ctx, m.marker)

	default:
		// Fail loudly: a silently dropped message kind (a future msgKind this
		// switch does not know) would wedge watermark progress or barrier
		// alignment with no trace. streamvet's msgexhaustive analyzer enforces
		// that this switch stays total.
		return false, fmt.Errorf("unhandled message kind %d on channel %d", m.kind, m.channel)
	}
}

// processBatch unpacks a batched exchange — through the operator's
// whole-batch columnar path when wired (Config.ColumnarExec and the operator
// implements BatchOperator), through the per-record path otherwise — then
// recycles the batch slice.
func (in *instance) processBatch(octx *opContext, b *[]Event) error {
	if in.batchOp != nil {
		if err := in.processColumnar(octx, b); err != nil {
			return err
		}
	} else {
		for _, e := range *b {
			if err := in.processRecord(octx, e); err != nil {
				return err
			}
		}
	}
	clear(*b)
	*b = (*b)[:0]
	batchPool.Put(b)
	return nil
}

// processColumnar runs one batch through the operator's whole-batch path:
// the columnar view is built in a single pass, counters and the tracer span
// account for the whole batch at once, and the view is released before the
// underlying batch slice is recycled by the caller.
func (in *instance) processColumnar(octx *opContext, b *[]Event) error {
	cols := buildColumns(b)
	in.inCounter.Add(int64(len(cols.Events)))
	if in.tracer != nil {
		if in.batchSpan == nil {
			in.batchSpan = in.tracer.Begin("operator.process", in.node.name, in.id)
		}
		in.batchSize += int64(len(cols.Events))
	}
	err := in.batchOp.ProcessBatch(cols, octx)
	releaseColumns(cols)
	if err != nil {
		return err
	}
	return octx.emitErr
}

// handleMarker records the latency a marker accumulated and forwards a fresh
// marker downstream. Markers are invisible to operators, so they can never
// perturb window, CEP or user state.
func (in *instance) handleMarker(ctx context.Context, mk *latencyMarker) error {
	now := nanotime()
	if in.latency != nil {
		in.latency.Observe(now - mk.origin)
		in.job.metrics.Histogram("edge." + mk.from + "." + in.node.name + ".hop_ns").
			Observe(now - mk.hopped)
	}
	if len(in.outs) == 0 {
		return nil
	}
	fwd := &latencyMarker{origin: mk.origin, hopped: now, from: in.node.name, source: mk.source}
	for _, o := range in.outs {
		if !o.sendMarker(ctx, fwd) {
			return ctx.Err()
		}
	}
	return nil
}

// closeBatchSpan ends the open record-batch span, stamping how many records
// it covered. Batches are delimited by control messages (watermarks,
// barriers, EOS), so span volume is bounded by control frequency, not record
// rate.
func (in *instance) closeBatchSpan() {
	if in.batchSpan == nil {
		return
	}
	in.batchSpan.SetInt("records", in.batchSize)
	in.batchSpan.End()
	in.batchSpan = nil
	in.batchSize = 0
}

func (in *instance) processRecord(octx *opContext, e Event) error {
	octx.currentKey = e.Key
	in.backend.SetCurrentKey(e.Key)
	in.inCounter.Inc()
	if in.tracer != nil {
		if in.batchSpan == nil {
			in.batchSpan = in.tracer.Begin("operator.process", in.node.name, in.id)
		}
		in.batchSize++
	}
	if err := in.op.ProcessElement(e, octx); err != nil {
		return err
	}
	return octx.emitErr
}

func (in *instance) advanceWatermark(ctx context.Context, octx *opContext, channel int, wm int64) error {
	combined, advanced := in.tracker.Update(channel, wm)
	if !advanced {
		return nil
	}
	return in.emitWatermarkProgress(ctx, octx, combined)
}

// emitWatermarkProgress fires due timers, notifies the operator, and forwards
// the watermark downstream.
func (in *instance) emitWatermarkProgress(ctx context.Context, octx *opContext, wm int64) error {
	if in.wmGauge != nil && wm != eventtime.MaxWatermark {
		in.wmGauge.Set(wm)
		in.wmLag.Set(eventtime.Lag(in.job.cfg.Clock.Now(), wm))
	}
	// Fire due timers until none remain: an OnTimer callback may register
	// further timers at or below wm (cascades, e.g. session cleanup), which
	// must fire within this same watermark advancement — at drain
	// (MaxWatermark) there is no later watermark to catch them. fired guards
	// against a callback re-registering its own identical (ts, key): the
	// duplicate is dropped instead of looping forever.
	// The dedup map lives on the instance and is cleared after use, so a
	// steady stream of firing windows does not allocate one per advance.
	fired := in.fired
	for {
		due := in.timers.due(wm)
		if len(due) == 0 {
			break
		}
		if fired == nil {
			fired = make(map[timerEntry]bool, len(due))
			in.fired = fired
		}
		for _, t := range due {
			if fired[t] {
				continue
			}
			fired[t] = true
			octx.currentKey = t.Key
			in.backend.SetCurrentKey(t.Key)
			if err := in.op.OnTimer(t.TS, octx); err != nil {
				return err
			}
			if octx.emitErr != nil {
				return octx.emitErr
			}
		}
	}
	if len(fired) > 0 {
		clear(fired)
	}
	if err := in.op.OnWatermark(wm, octx); err != nil {
		return err
	}
	if octx.emitErr != nil {
		return octx.emitErr
	}
	for _, o := range in.outs {
		if !o.broadcastCtl(ctx, message{kind: msgWatermark, wm: wm}) {
			return ctx.Err()
		}
	}
	return nil
}

func (in *instance) handleBarrier(ctx context.Context, octx *opContext, channel int, b barrierMark) (bool, error) {
	if in.pendingBarrier == nil {
		pb := b
		in.pendingBarrier = &pb
		in.barrierCount = 0
		if in.alignNs != nil {
			in.alignStart = nanotime()
		}
		if in.tracer != nil {
			in.alignSpan = in.tracer.Begin("barrier.align", in.node.name, in.id).
				SetInt("checkpoint", b.ID)
		}
		for i := range in.barrierArrived {
			in.barrierArrived[i] = in.channelFinished[i]
			if in.barrierArrived[i] {
				in.barrierCount++
			}
		}
		if in.job.cfg.AtLeastOnce {
			// Unaligned mode forwards the barrier immediately.
			for _, o := range in.outs {
				if !o.broadcastCtl(ctx, message{kind: msgBarrier, barrier: b}) {
					return false, ctx.Err()
				}
			}
		}
	}
	if b.ID != in.pendingBarrier.ID {
		return false, fmt.Errorf("overlapping checkpoints %d and %d", in.pendingBarrier.ID, b.ID)
	}
	if !in.barrierArrived[channel] {
		in.barrierArrived[channel] = true
		in.barrierCount++
	}
	if in.barrierCount < in.numInputs {
		return false, nil
	}
	return in.completeBarrier(ctx, octx)
}

// completeBarrier snapshots, acks, forwards (aligned mode), and replays the
// stash. done=true when a stashed terminal message (the EOS of the last open
// channel) ended the input during replay — callers must propagate it, or the
// instance would outlive its inputs and shut down twice.
func (in *instance) completeBarrier(ctx context.Context, octx *opContext) (bool, error) {
	b := *in.pendingBarrier
	if in.alignNs != nil {
		in.alignNs.Observe(nanotime() - in.alignStart)
	}
	if in.alignSpan != nil {
		in.alignSpan.SetInt("stashed", int64(len(in.stash)))
		in.alignSpan.End()
		in.alignSpan = nil
	}
	in.snapshotAndAck(ctx, b)
	if !in.job.cfg.AtLeastOnce {
		for _, o := range in.outs {
			if !o.broadcastCtl(ctx, message{kind: msgBarrier, barrier: b}) {
				return false, ctx.Err()
			}
		}
	}
	in.pendingBarrier = nil
	stash := in.stash
	in.stash = nil
	for _, sm := range stash {
		done, err := in.handle(ctx, octx, sm)
		if err != nil {
			return false, err
		}
		if done {
			// Termination requires an EOS from every channel, and EOS is the
			// last message any channel sends, so nothing can remain stashed.
			return true, nil
		}
	}
	return false, nil
}

// snapshotAndAck captures the instance's state for checkpoint b. A failure
// at any step (state image, timers, custom payload, encode, store I/O) never
// fails the instance: it aborts the checkpoint via a failed ack and the job
// keeps processing — the next barrier retries with a fresh checkpoint.
func (in *instance) snapshotAndAck(ctx context.Context, b barrierMark) {
	var start int64
	instrumented := in.job.cfg.Instrument
	if instrumented {
		start = nanotime()
	}
	span := in.tracer.Begin("snapshot", in.node.name, in.id).SetInt("checkpoint", b.ID)
	data, files, err := in.captureSnapshot(b)
	if err != nil {
		span.SetAttr("error", err.Error()).End()
		in.job.failCheckpoint(b, in.id, err)
		return
	}
	if instrumented {
		reg := in.job.metrics
		reg.Histogram("node." + in.node.name + ".snapshot_ns").Observe(nanotime() - start)
		reg.Histogram("node." + in.node.name + ".snapshot_bytes").Observe(int64(len(data)))
	}
	span.SetInt("bytes", int64(len(data)))
	span.End()
	in.job.saveAndAckFiles(ctx, b, in.id, data, files)
}

// captureSnapshot serialises the instance's contribution to checkpoint b:
// a delta against b.DeltaBase when the coordinator asked for one and the
// backend can deliver it, the backend's immutable files for file-native
// checkpoints, or the full serialised image otherwise. The returned names
// are files linked into the store; they ride the ack into the checkpoint
// metadata so GC and chain verification can account for them.
func (in *instance) captureSnapshot(b barrierMark) ([]byte, []string, error) {
	var snap instanceSnapshot
	var files []string
	captured := false
	if b.DeltaBase > 0 {
		if db, ok := in.backend.(state.DeltaBackend); ok {
			delta, dok, err := db.SnapshotDelta(b.DeltaBase, b.ID)
			if err != nil {
				return nil, nil, fmt.Errorf("snapshot delta: %w", err)
			}
			if dok {
				snap.State = delta
				snap.DeltaBase = b.DeltaBase
				captured = true
			}
		}
	}
	if !captured && in.job.cfg.LSMNativeSnapshots && !b.Savepoint {
		if fb, ok := in.backend.(state.FileBackend); ok {
			var err error
			files, err = in.captureFiles(fb, b, &snap)
			if err != nil {
				return nil, nil, err
			}
			captured = true
		}
	}
	if !captured {
		img, err := in.backend.Snapshot()
		if err != nil {
			return nil, nil, fmt.Errorf("snapshot state: %w", err)
		}
		snap.State = img
	}
	if snap.DeltaBase == 0 {
		// Any full capture — image or file set — is a valid base for later
		// deltas (savepoints included: they are full payloads by construction).
		if db, ok := in.backend.(state.DeltaBackend); ok {
			db.MarkFull(b.ID)
		}
	}
	timerImg, err := in.timers.snapshot()
	if err != nil {
		return nil, nil, err
	}
	snap.Timers = timerImg
	if s, ok := in.op.(Snapshotter); ok {
		custom, err := s.SnapshotCustom()
		if err != nil {
			return nil, nil, fmt.Errorf("snapshot custom: %w", err)
		}
		snap.Custom = custom
	}
	data, err := encodeInstanceSnapshot(snap)
	if err != nil {
		return nil, nil, err
	}
	return data, files, nil
}

// captureFiles checkpoints a file-native backend by reference: the backend's
// immutable files are published into a linking store — hard links when local,
// so files shared with earlier checkpoints cost zero bytes — or embedded in
// the payload when the store cannot link local files.
func (in *instance) captureFiles(fb state.FileBackend, b barrierMark, snap *instanceSnapshot) ([]string, error) {
	paths, err := fb.SnapshotFiles()
	if err != nil {
		return nil, fmt.Errorf("snapshot files: %w", err)
	}
	names := make([]string, len(paths))
	for i, p := range paths {
		names[i] = in.id + "/" + filepath.Base(p)
	}
	snap.Files = names
	if ls, ok := in.job.cfg.SnapshotStore.(FileLinkingStore); ok {
		linked := true
		for i, p := range paths {
			if err := ls.LinkFile(b.ID, names[i], p); err != nil {
				if errors.Is(err, ErrFileLinkUnsupported) {
					linked = false
					break
				}
				return nil, fmt.Errorf("link %s: %w", names[i], err)
			}
		}
		if linked {
			return names, nil
		}
	}
	// The store cannot link local files: carry the bytes in the payload.
	snap.FileData = make(map[string][]byte, len(paths))
	for i, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, fmt.Errorf("embed %s: %w", names[i], err)
		}
		snap.FileData[names[i]] = data
	}
	return nil, nil
}

// restoreChain rebuilds instance state from a restore chain: the oldest
// payload is a full capture (serialised image or file-native), every later
// payload a delta replayed on top. Timers and custom operator state are
// always stored full, so they come from the newest payload only.
func (in *instance) restoreChain() error {
	last := len(in.restore) - 1
	for i, p := range in.restore {
		snap, err := decodeInstanceSnapshot(p.data)
		if err != nil {
			return err
		}
		if i == 0 {
			if len(snap.Files) > 0 {
				if err := in.restoreFiles(p.cp, snap); err != nil {
					return fmt.Errorf("checkpoint %d: restore files: %w", p.cp, err)
				}
			} else if len(snap.State) > 0 {
				if err := in.backend.Restore(snap.State); err != nil {
					return fmt.Errorf("restore state: %w", err)
				}
			}
		} else {
			db, ok := in.backend.(state.DeltaBackend)
			if !ok {
				return fmt.Errorf("checkpoint %d is a delta but backend %T cannot replay deltas", p.cp, in.backend)
			}
			if err := db.ApplyDelta(snap.State); err != nil {
				return fmt.Errorf("replay delta %d: %w", p.cp, err)
			}
		}
		if i != last {
			continue
		}
		if err := in.timers.restore(snap.Timers); err != nil {
			return err
		}
		if s, ok := in.op.(Snapshotter); ok && len(snap.Custom) > 0 {
			if err := s.RestoreCustom(snap.Custom); err != nil {
				return fmt.Errorf("restore custom: %w", err)
			}
		}
	}
	return nil
}

// restoreFiles rebuilds a file-native full snapshot: store-linked files
// resolve to local paths the backend adopts directly; embedded file bytes
// (stores that cannot link) materialise in a scratch dir first.
func (in *instance) restoreFiles(cp int64, snap instanceSnapshot) error {
	fb, ok := in.backend.(state.FileBackend)
	if !ok {
		return fmt.Errorf("snapshot references backend files but backend %T cannot adopt them", in.backend)
	}
	if len(snap.FileData) > 0 {
		tmp, err := os.MkdirTemp("", "restore-files-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		paths := make([]string, 0, len(snap.Files))
		for _, name := range snap.Files {
			data, ok := snap.FileData[name]
			if !ok {
				return fmt.Errorf("embedded file %q missing from payload", name)
			}
			p := filepath.Join(tmp, filepath.Base(name))
			if err := os.WriteFile(p, data, 0o644); err != nil {
				return err
			}
			paths = append(paths, p)
		}
		return fb.RestoreFromFiles(paths)
	}
	ls, ok := in.job.cfg.SnapshotStore.(FileLinkingStore)
	if !ok {
		return fmt.Errorf("snapshot references linked files but store %T cannot resolve them", in.job.cfg.SnapshotStore)
	}
	paths := make([]string, 0, len(snap.Files))
	for _, name := range snap.Files {
		p, err := ls.LinkedPath(cp, name)
		if err != nil {
			return err
		}
		paths = append(paths, p)
	}
	return fb.RestoreFromFiles(paths)
}

func (in *instance) handleEOS(ctx context.Context, octx *opContext, channel int, drain bool) (bool, error) {
	if in.channelFinished[channel] {
		return false, nil
	}
	in.channelFinished[channel] = true
	in.finishedCount++
	if !drain {
		in.nonDrainStop = true
	}

	// A finished draining channel can never hold back progress again; a
	// stop-with-savepoint end must NOT advance event time, or open windows
	// would fire with partial contents that the savepoint also captured.
	if drain && !in.nonDrainStop {
		if err := in.advanceWatermark(ctx, octx, channel, eventtime.MaxWatermark); err != nil {
			return false, err
		}
	}
	// A finished channel cannot deliver a pending barrier: count it as
	// aligned.
	if in.pendingBarrier != nil && !in.barrierArrived[channel] {
		in.barrierArrived[channel] = true
		in.barrierCount++
		if in.barrierCount >= in.numInputs {
			done, err := in.completeBarrier(ctx, octx)
			if err != nil {
				return false, err
			}
			if done {
				// A stashed EOS replayed above already closed the instance.
				return true, nil
			}
		}
	}
	if in.finishedCount < in.numInputs {
		return false, nil
	}
	// All inputs exhausted. On a draining end, flush final output; on a
	// stop-with-savepoint, terminate silently — the snapshot holds the
	// in-progress state.
	if !in.nonDrainStop {
		octx.currentKey = ""
		if err := in.op.Close(octx); err != nil {
			return false, err
		}
		if octx.emitErr != nil {
			return false, octx.emitErr
		}
	}
	for _, o := range in.outs {
		if !o.broadcastCtl(ctx, message{kind: msgEOS, drain: !in.nonDrainStop}) {
			return false, ctx.Err()
		}
	}
	return true, nil
}
