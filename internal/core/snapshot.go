package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// SnapshotStore persists checkpoint data. Implementations must be safe for
// concurrent use: instances snapshot in parallel.
type SnapshotStore interface {
	// Save persists one instance's snapshot under (checkpointID, instanceID).
	Save(checkpointID int64, instanceID string, data []byte) error
	// Load retrieves one instance's snapshot.
	Load(checkpointID int64, instanceID string) ([]byte, error)
	// Complete marks a checkpoint finished with its metadata. A checkpoint
	// must never become visible through Latest before Complete returns: the
	// engine treats anything un-completed as aborted on recovery.
	Complete(meta CheckpointMeta) error
	// Latest returns the newest completed checkpoint metadata, ok=false when
	// none exists.
	Latest() (CheckpointMeta, bool)
	// Instances lists the instance IDs stored under a checkpoint.
	Instances(checkpointID int64) ([]string, error)
}

// DiscardableStore is an optional SnapshotStore extension: the engine calls
// Discard to free the partial snapshots of an aborted checkpoint.
type DiscardableStore interface {
	// Discard drops every snapshot saved under the (never completed)
	// checkpoint. Discarding an unknown checkpoint is a no-op.
	Discard(checkpointID int64) error
}

// CheckpointMeta describes one completed checkpoint.
type CheckpointMeta struct {
	ID        int64
	JobName   string
	Savepoint bool
	// Rescaled marks a checkpoint synthesised offline by RescaleCheckpoint
	// rather than taken from a running job. Fault injectors use it to place
	// crash points inside the reconfiguration window.
	Rescaled bool
	// InstanceIDs lists every instance that contributed a snapshot.
	InstanceIDs []string
	// Bytes is the total snapshot volume, for experiment accounting.
	Bytes int64
	// Parent is the checkpoint this one is a delta of (0 = self-contained
	// full checkpoint). Restoring a delta requires the whole parent chain, so
	// GC must never collect a parent a retained delta depends on, and Latest
	// must verify the chain end to end.
	Parent int64
	// Files lists auxiliary files (linked SSTables) referenced by instance
	// snapshots, relative names as passed to FileLinkingStore.LinkFile.
	Files []string
}

// instanceSnapshot is the serialised unit each instance contributes.
type instanceSnapshot struct {
	// State is the keyed state backend image — or, when DeltaBase > 0, a
	// delta payload (state.EncodeDeltaOps) on top of checkpoint DeltaBase.
	State []byte
	// Timers is the timer service image.
	Timers []byte
	// Custom is the operator's Snapshotter payload, if any.
	Custom []byte
	// SourceOffset is the replayable source position, if the instance is a
	// source.
	SourceOffset []byte
	// DeltaBase is the checkpoint ID State is a delta of; 0 means State is a
	// full image. Timers/Custom/SourceOffset are always full.
	DeltaBase int64
	// Files names backend files (linked into the store via LinkFile) that
	// replace State for file-native backends.
	Files []string
	// FileData embeds the file contents when the store cannot link files
	// (FileData[name] holds the bytes of Files entries).
	FileData map[string][]byte
}

// SnapshotIsDelta reports whether a saved instance payload is a delta (its
// State depends on a parent checkpoint). Fault injectors use it to aim crash
// points at delta saves specifically. Undecodable payloads report false.
func SnapshotIsDelta(data []byte) bool {
	s, err := decodeInstanceSnapshot(data)
	return err == nil && s.DeltaBase > 0
}

// FileLinkingStore is an optional SnapshotStore extension for checkpoints
// that reference immutable backend files (SSTable reuse): LinkFile publishes
// an existing file into the checkpoint — by hard link when possible, so
// unchanged files cost zero bytes — and LinkedPath resolves it at restore.
type FileLinkingStore interface {
	// LinkFile publishes src under (checkpointID, name). name is
	// store-relative ("<instanceID>/<basename>").
	LinkFile(checkpointID int64, name, src string) error
	// LinkedPath returns a local path for a previously linked file.
	LinkedPath(checkpointID int64, name string) (string, error)
}

// ErrFileLinkUnsupported is returned by stores (or store wrappers) that
// cannot link local files; callers fall back to embedding file bytes in the
// instance snapshot.
var ErrFileLinkUnsupported = fmt.Errorf("core: snapshot store does not support file links")

func encodeInstanceSnapshot(s instanceSnapshot) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("core: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeInstanceSnapshot(data []byte) (instanceSnapshot, error) {
	var s instanceSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		return s, fmt.Errorf("core: decode snapshot: %w", err)
	}
	return s, nil
}

// MemorySnapshotStore keeps checkpoints on the heap.
type MemorySnapshotStore struct {
	mu        sync.Mutex
	data      map[int64]map[string][]byte
	completed []CheckpointMeta
	retain    int // completed checkpoints whose data is kept; 0 = unlimited
}

// NewMemorySnapshotStore returns an empty store.
func NewMemorySnapshotStore() *MemorySnapshotStore {
	return &MemorySnapshotStore{data: make(map[int64]map[string][]byte)}
}

// SetRetain bounds how many completed checkpoints keep their snapshot data:
// completing a checkpoint frees the data of everything subsumed beyond the
// newest n (metadata stays, so Completed still reports history). n <= 0 keeps
// everything.
func (s *MemorySnapshotStore) SetRetain(n int) {
	s.mu.Lock()
	s.retain = n
	s.mu.Unlock()
}

// Save implements SnapshotStore.
func (s *MemorySnapshotStore) Save(cp int64, instanceID string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.data[cp] == nil {
		s.data[cp] = make(map[string][]byte)
	}
	s.data[cp][instanceID] = append([]byte(nil), data...)
	return nil
}

// Load implements SnapshotStore.
func (s *MemorySnapshotStore) Load(cp int64, instanceID string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.data[cp]
	if m == nil {
		return nil, fmt.Errorf("core: checkpoint %d not found", cp)
	}
	d, ok := m[instanceID]
	if !ok {
		return nil, fmt.Errorf("core: checkpoint %d has no snapshot for %q", cp, instanceID)
	}
	return d, nil
}

// Complete implements SnapshotStore. A delta checkpoint (Parent != 0) is
// rejected unless its parent is itself completed: a delta whose base can
// never be resolved is unrestorable by construction.
func (s *MemorySnapshotStore) Complete(meta CheckpointMeta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if meta.Parent != 0 {
		if _, ok := s.metaLocked(meta.Parent); !ok {
			return fmt.Errorf("core: complete checkpoint %d: parent %d is not a completed checkpoint",
				meta.ID, meta.Parent)
		}
	}
	s.completed = append(s.completed, meta)
	// Keep completions ordered by checkpoint ID so Latest and the GC floor
	// stay correct even when Complete calls arrive out of order.
	if n := len(s.completed); n > 1 && s.completed[n-2].ID > meta.ID {
		sort.Slice(s.completed, func(i, j int) bool { return s.completed[i].ID < s.completed[j].ID })
	}
	if s.retain > 0 && len(s.completed) > s.retain {
		// GC subsumed checkpoints: everything older than the newest retain
		// completed ones, including never-completed (aborted) leftovers —
		// except full images a retained delta still depends on (the
		// transitive parent closure of the kept checkpoints).
		floor := s.completed[len(s.completed)-s.retain].ID
		keep := make(map[int64]bool)
		for _, m := range s.completed[len(s.completed)-s.retain:] {
			for cp := m.ID; cp != 0; {
				if keep[cp] {
					break
				}
				keep[cp] = true
				parent, ok := s.metaLocked(cp)
				if !ok {
					break
				}
				cp = parent.Parent
			}
		}
		for cp := range s.data {
			if cp < floor && !keep[cp] {
				delete(s.data, cp)
			}
		}
	}
	return nil
}

// metaLocked finds a completed checkpoint's metadata. Requires s.mu.
func (s *MemorySnapshotStore) metaLocked(cp int64) (CheckpointMeta, bool) {
	for i := len(s.completed) - 1; i >= 0; i-- {
		if s.completed[i].ID == cp {
			return s.completed[i], true
		}
	}
	return CheckpointMeta{}, false
}

// Discard implements DiscardableStore.
func (s *MemorySnapshotStore) Discard(cp int64) error {
	s.mu.Lock()
	delete(s.data, cp)
	s.mu.Unlock()
	return nil
}

// Latest implements SnapshotStore. A delta checkpoint is only returned when
// its whole parent chain is still restorable (every ancestor completed with
// its instance data present); an unrestorable chain head is skipped in favor
// of the newest older checkpoint that is.
func (s *MemorySnapshotStore) Latest() (CheckpointMeta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.completed) - 1; i >= 0; i-- {
		meta := s.completed[i]
		if meta.Parent == 0 || s.chainRestorableLocked(meta) {
			return meta, true
		}
	}
	return CheckpointMeta{}, false
}

// chainRestorableLocked walks meta's parent chain verifying each link is a
// completed checkpoint whose instance data is still present. Requires s.mu.
func (s *MemorySnapshotStore) chainRestorableLocked(meta CheckpointMeta) bool {
	for {
		m := s.data[meta.ID]
		if m == nil {
			return false
		}
		for _, id := range meta.InstanceIDs {
			if _, ok := m[id]; !ok {
				return false
			}
		}
		if meta.Parent == 0 {
			return true
		}
		parent, ok := s.metaLocked(meta.Parent)
		if !ok || parent.ID >= meta.ID {
			return false // broken or non-decreasing lineage
		}
		meta = parent
	}
}

// Completed returns all completed checkpoint metadata in order.
func (s *MemorySnapshotStore) Completed() []CheckpointMeta {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]CheckpointMeta(nil), s.completed...)
}

// Instances implements SnapshotStore.
func (s *MemorySnapshotStore) Instances(cp int64) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.data[cp]
	if m == nil {
		return nil, fmt.Errorf("core: checkpoint %d not found", cp)
	}
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

var _ SnapshotStore = (*MemorySnapshotStore)(nil)
var _ DiscardableStore = (*MemorySnapshotStore)(nil)

// Snapshot files are framed so a torn write is detectable on read:
//
//	magic "SNP1" | crc32(payload) | len(payload) | payload
//
// The frame is belt-and-braces on top of the atomic temp+rename commit: a
// crash can only leave garbage under the reserved _tmp- prefix, but the
// checksum also catches truncation or corruption that reached the final name
// through lower layers (or a fault injector).
const snapMagic = "SNP1"

const snapHeaderLen = 4 + 4 + 8

var errTornSnapshot = fmt.Errorf("core: torn or corrupt snapshot file")

func frameSnapshot(data []byte) []byte {
	out := make([]byte, snapHeaderLen+len(data))
	copy(out, snapMagic)
	binary.BigEndian.PutUint32(out[4:], crc32.ChecksumIEEE(data))
	binary.BigEndian.PutUint64(out[8:], uint64(len(data)))
	copy(out[snapHeaderLen:], data)
	return out
}

func unframeSnapshot(raw []byte) ([]byte, error) {
	if len(raw) < snapHeaderLen || string(raw[:4]) != snapMagic {
		return nil, errTornSnapshot
	}
	n := binary.BigEndian.Uint64(raw[8:])
	if uint64(len(raw)-snapHeaderLen) != n {
		return nil, errTornSnapshot
	}
	payload := raw[snapHeaderLen:]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(raw[4:]) {
		return nil, errTornSnapshot
	}
	return payload, nil
}

// tmpPrefix reserves a file-name namespace for in-flight writes; encoded
// instance IDs can never start with '_' (it is percent-escaped), so store
// bookkeeping files ("_meta", "_tmp-*") never collide with instance files.
const tmpPrefix = "_tmp-"

const metaFile = "_meta"

// encodeInstanceFile maps an arbitrary instance ID to a safe file name:
// bytes outside [A-Za-z0-9.-] are percent-escaped (so path separators,
// '_' and '%' never appear raw), and the path-special names "." and ".."
// are fully escaped.
func encodeInstanceFile(id string) string {
	var b strings.Builder
	b.Grow(len(id))
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '-':
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	if n := b.String(); n != "." && n != ".." {
		return n
	}
	var all strings.Builder
	for i := 0; i < len(id); i++ {
		fmt.Fprintf(&all, "%%%02X", id[i])
	}
	return all.String()
}

// decodeInstanceFile inverts encodeInstanceFile.
func decodeInstanceFile(name string) string {
	if !strings.ContainsRune(name, '%') {
		return name
	}
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		if name[i] == '%' && i+2 < len(name) {
			var v int
			if _, err := fmt.Sscanf(name[i+1:i+3], "%02X", &v); err == nil {
				b.WriteByte(byte(v))
				i += 2
				continue
			}
		}
		b.WriteByte(name[i])
	}
	return b.String()
}

// FileSnapshotStore persists checkpoints as files under a directory:
// <dir>/chk-<id>/<encoded instanceID> plus a _meta file committed last. It
// survives process restarts — and, because every file is committed via
// temp+fsync+rename with the _meta written only after all snapshots are
// verified on disk, it survives crashes at any point: a partially written
// checkpoint is invisible to Latest and gets garbage-collected.
type FileSnapshotStore struct {
	dir    string
	mu     sync.Mutex
	retain int // completed checkpoints kept on disk; 0 = unlimited
}

// NewFileSnapshotStore creates the directory if needed and sweeps stray
// temp files a previous crash may have left behind.
func NewFileSnapshotStore(dir string) (*FileSnapshotStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: snapshot dir: %w", err)
	}
	s := &FileSnapshotStore{dir: dir}
	s.sweepTmp()
	return s, nil
}

// SetRetain bounds how many completed checkpoints are kept: completing a
// checkpoint deletes everything subsumed beyond the newest n, including
// never-completed (aborted) checkpoint directories older than the newest
// completed one. n <= 0 keeps everything.
func (s *FileSnapshotStore) SetRetain(n int) {
	s.mu.Lock()
	s.retain = n
	s.mu.Unlock()
}

// sweepTmp removes in-flight temp files from every checkpoint directory;
// they are torn by construction (the rename never happened).
func (s *FileSnapshotStore) sweepTmp() {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "chk-") {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, e.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if strings.HasPrefix(f.Name(), tmpPrefix) {
				os.Remove(filepath.Join(s.dir, e.Name(), f.Name()))
			}
		}
	}
}

func (s *FileSnapshotStore) cpDir(cp int64) string {
	return filepath.Join(s.dir, fmt.Sprintf("chk-%d", cp))
}

// filesDir is the subdirectory of a checkpoint holding linked backend files
// (SSTable reuse). Instances skips it: it is store bookkeeping, not an
// instance snapshot.
func (s *FileSnapshotStore) filesDir(cp int64) string {
	return filepath.Join(s.cpDir(cp), "files")
}

// linkedFilePath resolves a Files entry ("<instanceID>/<basename>") inside a
// checkpoint's files dir. The instance prefix is percent-encoded into one
// directory segment (instance IDs may contain anything); the basename is kept
// verbatim, because a backend adopting the file at restore identifies it by
// its original name.
func (s *FileSnapshotStore) linkedFilePath(cp int64, name string) (string, error) {
	i := strings.LastIndexByte(name, '/')
	if i < 0 {
		return "", fmt.Errorf("core: linked file name %q has no instance prefix", name)
	}
	prefix, base := name[:i], name[i+1:]
	if base == "" || base == "." || base == ".." ||
		strings.ContainsAny(base, `/\`) || strings.HasPrefix(base, tmpPrefix) {
		return "", fmt.Errorf("core: unsafe linked file name %q", name)
	}
	return filepath.Join(s.filesDir(cp), encodeInstanceFile(prefix), base), nil
}

// LinkFile implements FileLinkingStore: src is published into the checkpoint
// by hard link when possible (zero bytes for unchanged SSTables shared with
// earlier checkpoints), fsynced copy otherwise.
func (s *FileSnapshotStore) LinkFile(cp int64, name, src string) error {
	dst, err := s.linkedFilePath(cp, name)
	if err != nil {
		return err
	}
	dir := filepath.Dir(dst)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: snapshot files dir: %w", err)
	}
	if err := os.Link(src, dst); err != nil {
		// Cross-device or an existing stale link from a retried save: copy
		// through the atomic commit path instead.
		os.Remove(dst)
		if err := os.Link(src, dst); err != nil {
			data, rerr := os.ReadFile(src)
			if rerr != nil {
				return fmt.Errorf("core: link snapshot file: %w", rerr)
			}
			if err := commitFile(dir, filepath.Base(dst), data); err != nil {
				return err
			}
			return nil
		}
	}
	return syncDir(dir)
}

// LinkedPath implements FileLinkingStore.
func (s *FileSnapshotStore) LinkedPath(cp int64, name string) (string, error) {
	path, err := s.linkedFilePath(cp, name)
	if err != nil {
		return "", err
	}
	if st, err := os.Stat(path); err != nil || st.Size() == 0 {
		return "", fmt.Errorf("core: checkpoint %d has no linked file %q", cp, name)
	}
	return path, nil
}

// verifyLinkedFile checks a Files entry exists with content.
func (s *FileSnapshotStore) verifyLinkedFile(cp int64, name string) error {
	path, err := s.linkedFilePath(cp, name)
	if err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	if st.Size() == 0 {
		return errTornSnapshot
	}
	return nil
}

// commitFile atomically publishes data under dir/name: write to a reserved
// temp name, fsync, rename, fsync the directory. A crash at any point leaves
// either the old content (or nothing) or the complete new content — never a
// prefix.
func commitFile(dir, name string, data []byte) error {
	tmp := filepath.Join(dir, tmpPrefix+name)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("core: snapshot tmp: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: snapshot fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: snapshot rename: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed or just-linked entry survives a
// crash. The previous best-effort version silently dropped the Sync error,
// which let a checkpoint be acknowledged while its directory entry could still
// vanish on power loss — exactly the torn-snapshot case the commit protocol
// exists to rule out.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("core: open dir for fsync: %w", err)
	}
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return fmt.Errorf("core: fsync dir: %w", err)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("core: close dir after fsync: %w", err)
	}
	return nil
}

// Save implements SnapshotStore.
func (s *FileSnapshotStore) Save(cp int64, instanceID string, data []byte) error {
	dir := s.cpDir(cp)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: snapshot dir: %w", err)
	}
	return commitFile(dir, encodeInstanceFile(instanceID), frameSnapshot(data))
}

// Load implements SnapshotStore. It validates the frame checksum, so a torn
// or corrupt snapshot surfaces as an error instead of decoding garbage.
func (s *FileSnapshotStore) Load(cp int64, instanceID string) ([]byte, error) {
	raw, err := os.ReadFile(filepath.Join(s.cpDir(cp), encodeInstanceFile(instanceID)))
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint %d has no snapshot for %q: %w", cp, instanceID, err)
	}
	payload, err := unframeSnapshot(raw)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint %d snapshot for %q: %w", cp, instanceID, err)
	}
	return payload, nil
}

// verifyInstanceFile checks that the snapshot for instanceID exists and its
// frame is structurally whole (magic + declared length), without paying a
// full checksum read.
func (s *FileSnapshotStore) verifyInstanceFile(cp int64, instanceID string) error {
	path := filepath.Join(s.cpDir(cp), encodeInstanceFile(instanceID))
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var hdr [snapHeaderLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return errTornSnapshot
	}
	if string(hdr[:4]) != snapMagic {
		return errTornSnapshot
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if uint64(st.Size())-snapHeaderLen != binary.BigEndian.Uint64(hdr[8:]) {
		return errTornSnapshot
	}
	return nil
}

// Complete implements SnapshotStore. It verifies every snapshot the metadata
// claims is durably on disk, then commits _meta atomically — so a checkpoint
// visible through Latest is guaranteed restorable.
func (s *FileSnapshotStore) Complete(meta CheckpointMeta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if meta.Parent != 0 {
		if _, err := s.readMeta(fmt.Sprintf("chk-%d", meta.Parent)); err != nil {
			return fmt.Errorf("core: complete checkpoint %d: parent %d is not a completed checkpoint: %w",
				meta.ID, meta.Parent, err)
		}
	}
	for _, id := range meta.InstanceIDs {
		if err := s.verifyInstanceFile(meta.ID, id); err != nil {
			return fmt.Errorf("core: complete checkpoint %d: instance %q: %w", meta.ID, id, err)
		}
	}
	for _, name := range meta.Files {
		if err := s.verifyLinkedFile(meta.ID, name); err != nil {
			return fmt.Errorf("core: complete checkpoint %d: linked file %q: %w", meta.ID, name, err)
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(meta); err != nil {
		return fmt.Errorf("core: encode checkpoint meta: %w", err)
	}
	dir := s.cpDir(meta.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: snapshot dir: %w", err)
	}
	if err := commitFile(dir, metaFile, frameSnapshot(buf.Bytes())); err != nil {
		return err
	}
	s.gcLocked(meta.ID)
	return nil
}

// gcLocked deletes checkpoint directories subsumed by the just-completed
// checkpoint: completed ones beyond the newest retain, and aborted
// (never-completed) ones older than the newest completed. Requires s.mu.
func (s *FileSnapshotStore) gcLocked(newest int64) {
	if s.retain <= 0 {
		return
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	var completed []int64
	incomplete := make(map[int64]bool)
	parents := make(map[int64]int64)
	for _, e := range entries {
		var id int64
		if _, err := fmt.Sscanf(e.Name(), "chk-%d", &id); err != nil {
			continue
		}
		if meta, err := s.readMeta(e.Name()); err == nil {
			completed = append(completed, id)
			parents[id] = meta.Parent
		} else {
			incomplete[id] = true
		}
	}
	sort.Slice(completed, func(i, j int) bool { return completed[i] > completed[j] })
	// Keep the newest retain completed checkpoints plus the transitive parent
	// closure of every kept delta: collecting a full image a retained delta
	// depends on would make that delta unrestorable.
	keep := make(map[int64]bool)
	for i, id := range completed {
		if i >= s.retain {
			break
		}
		for cp := id; cp != 0 && !keep[cp]; cp = parents[cp] {
			keep[cp] = true
		}
	}
	for i, id := range completed {
		if i >= s.retain && !keep[id] {
			os.RemoveAll(s.cpDir(id))
		}
	}
	for id := range incomplete {
		if id < newest {
			os.RemoveAll(s.cpDir(id))
		}
	}
}

// Discard implements DiscardableStore.
func (s *FileSnapshotStore) Discard(cp int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.RemoveAll(s.cpDir(cp))
}

// readMeta decodes a checkpoint's _meta, failing on torn frames.
func (s *FileSnapshotStore) readMeta(cpDirName string) (CheckpointMeta, error) {
	raw, err := os.ReadFile(filepath.Join(s.dir, cpDirName, metaFile))
	if err != nil {
		return CheckpointMeta{}, err
	}
	payload, err := unframeSnapshot(raw)
	if err != nil {
		return CheckpointMeta{}, err
	}
	var meta CheckpointMeta
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&meta); err != nil {
		return CheckpointMeta{}, err
	}
	return meta, nil
}

// Latest implements SnapshotStore. Incomplete, torn or unverifiable
// checkpoints are skipped, so the returned checkpoint is always restorable:
// every instance file it references exists with an intact frame.
func (s *FileSnapshotStore) Latest() (CheckpointMeta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return CheckpointMeta{}, false
	}
	var metas []CheckpointMeta
	for _, e := range entries {
		var id int64
		if _, err := fmt.Sscanf(e.Name(), "chk-%d", &id); err != nil {
			continue
		}
		meta, err := s.readMeta(e.Name())
		if err != nil {
			continue // incomplete or torn checkpoint
		}
		metas = append(metas, meta)
	}
	sort.Slice(metas, func(i, j int) bool { return metas[i].ID > metas[j].ID })
	byID := make(map[int64]CheckpointMeta, len(metas))
	for _, meta := range metas {
		byID[meta.ID] = meta
	}
	for _, meta := range metas {
		if s.verifyCheckpointLocked(meta) && s.chainRestorableLocked(meta, byID) {
			return meta, true
		}
	}
	return CheckpointMeta{}, false
}

// verifyCheckpointLocked checks one checkpoint's own files (instances plus
// linked backend files). Requires s.mu.
func (s *FileSnapshotStore) verifyCheckpointLocked(meta CheckpointMeta) bool {
	for _, id := range meta.InstanceIDs {
		if err := s.verifyInstanceFile(meta.ID, id); err != nil {
			return false
		}
	}
	for _, name := range meta.Files {
		if err := s.verifyLinkedFile(meta.ID, name); err != nil {
			return false
		}
	}
	return true
}

// chainRestorableLocked verifies meta's ancestors: every parent must itself
// be completed, verifiable, and strictly older (the ordering guard also
// bounds the walk against corrupt lineage cycles). Requires s.mu.
func (s *FileSnapshotStore) chainRestorableLocked(meta CheckpointMeta, byID map[int64]CheckpointMeta) bool {
	for meta.Parent != 0 {
		parent, ok := byID[meta.Parent]
		if !ok || parent.ID >= meta.ID {
			return false
		}
		if !s.verifyCheckpointLocked(parent) {
			return false
		}
		meta = parent
	}
	return true
}

// Instances implements SnapshotStore. Store bookkeeping files (_meta,
// in-flight temps) are never reported.
func (s *FileSnapshotStore) Instances(cp int64) ([]string, error) {
	entries, err := os.ReadDir(s.cpDir(cp))
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint %d not found: %w", cp, err)
	}
	var ids []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "_") || e.IsDir() {
			continue
		}
		ids = append(ids, decodeInstanceFile(e.Name()))
	}
	sort.Strings(ids)
	return ids, nil
}

var _ SnapshotStore = (*FileSnapshotStore)(nil)
var _ DiscardableStore = (*FileSnapshotStore)(nil)
var _ FileLinkingStore = (*FileSnapshotStore)(nil)
