package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// SnapshotStore persists checkpoint data. Implementations must be safe for
// concurrent use: instances snapshot in parallel.
type SnapshotStore interface {
	// Save persists one instance's snapshot under (checkpointID, instanceID).
	Save(checkpointID int64, instanceID string, data []byte) error
	// Load retrieves one instance's snapshot.
	Load(checkpointID int64, instanceID string) ([]byte, error)
	// Complete marks a checkpoint finished with its metadata.
	Complete(meta CheckpointMeta) error
	// Latest returns the newest completed checkpoint metadata, ok=false when
	// none exists.
	Latest() (CheckpointMeta, bool)
	// Instances lists the instance IDs stored under a checkpoint.
	Instances(checkpointID int64) ([]string, error)
}

// CheckpointMeta describes one completed checkpoint.
type CheckpointMeta struct {
	ID        int64
	JobName   string
	Savepoint bool
	// InstanceIDs lists every instance that contributed a snapshot.
	InstanceIDs []string
	// Bytes is the total snapshot volume, for experiment accounting.
	Bytes int64
}

// instanceSnapshot is the serialised unit each instance contributes.
type instanceSnapshot struct {
	// State is the keyed state backend image.
	State []byte
	// Timers is the timer service image.
	Timers []byte
	// Custom is the operator's Snapshotter payload, if any.
	Custom []byte
	// SourceOffset is the replayable source position, if the instance is a
	// source.
	SourceOffset []byte
}

func encodeInstanceSnapshot(s instanceSnapshot) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("core: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeInstanceSnapshot(data []byte) (instanceSnapshot, error) {
	var s instanceSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		return s, fmt.Errorf("core: decode snapshot: %w", err)
	}
	return s, nil
}

// MemorySnapshotStore keeps checkpoints on the heap.
type MemorySnapshotStore struct {
	mu        sync.Mutex
	data      map[int64]map[string][]byte
	completed []CheckpointMeta
}

// NewMemorySnapshotStore returns an empty store.
func NewMemorySnapshotStore() *MemorySnapshotStore {
	return &MemorySnapshotStore{data: make(map[int64]map[string][]byte)}
}

// Save implements SnapshotStore.
func (s *MemorySnapshotStore) Save(cp int64, instanceID string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.data[cp] == nil {
		s.data[cp] = make(map[string][]byte)
	}
	s.data[cp][instanceID] = append([]byte(nil), data...)
	return nil
}

// Load implements SnapshotStore.
func (s *MemorySnapshotStore) Load(cp int64, instanceID string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.data[cp]
	if m == nil {
		return nil, fmt.Errorf("core: checkpoint %d not found", cp)
	}
	d, ok := m[instanceID]
	if !ok {
		return nil, fmt.Errorf("core: checkpoint %d has no snapshot for %q", cp, instanceID)
	}
	return d, nil
}

// Complete implements SnapshotStore.
func (s *MemorySnapshotStore) Complete(meta CheckpointMeta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.completed = append(s.completed, meta)
	return nil
}

// Latest implements SnapshotStore.
func (s *MemorySnapshotStore) Latest() (CheckpointMeta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.completed) == 0 {
		return CheckpointMeta{}, false
	}
	return s.completed[len(s.completed)-1], true
}

// Completed returns all completed checkpoint metadata in order.
func (s *MemorySnapshotStore) Completed() []CheckpointMeta {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]CheckpointMeta(nil), s.completed...)
}

// Instances implements SnapshotStore.
func (s *MemorySnapshotStore) Instances(cp int64) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.data[cp]
	if m == nil {
		return nil, fmt.Errorf("core: checkpoint %d not found", cp)
	}
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

var _ SnapshotStore = (*MemorySnapshotStore)(nil)

// FileSnapshotStore persists checkpoints as files under a directory:
// <dir>/chk-<id>/<instanceID> plus a _meta file on completion. It survives
// process restarts, which the recovery experiments rely on.
type FileSnapshotStore struct {
	dir string
	mu  sync.Mutex
}

// NewFileSnapshotStore creates the directory if needed.
func NewFileSnapshotStore(dir string) (*FileSnapshotStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: snapshot dir: %w", err)
	}
	return &FileSnapshotStore{dir: dir}, nil
}

func (s *FileSnapshotStore) cpDir(cp int64) string {
	return filepath.Join(s.dir, fmt.Sprintf("chk-%d", cp))
}

// Save implements SnapshotStore.
func (s *FileSnapshotStore) Save(cp int64, instanceID string, data []byte) error {
	dir := s.cpDir(cp)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: snapshot dir: %w", err)
	}
	return os.WriteFile(filepath.Join(dir, instanceID), data, 0o644)
}

// Load implements SnapshotStore.
func (s *FileSnapshotStore) Load(cp int64, instanceID string) ([]byte, error) {
	return os.ReadFile(filepath.Join(s.cpDir(cp), instanceID))
}

// Complete implements SnapshotStore.
func (s *FileSnapshotStore) Complete(meta CheckpointMeta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(meta); err != nil {
		return fmt.Errorf("core: encode checkpoint meta: %w", err)
	}
	return os.WriteFile(filepath.Join(s.cpDir(meta.ID), "_meta"), buf.Bytes(), 0o644)
}

// Latest implements SnapshotStore.
func (s *FileSnapshotStore) Latest() (CheckpointMeta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return CheckpointMeta{}, false
	}
	best := CheckpointMeta{ID: -1}
	for _, e := range entries {
		var id int64
		if _, err := fmt.Sscanf(e.Name(), "chk-%d", &id); err != nil {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(s.dir, e.Name(), "_meta"))
		if err != nil {
			continue // incomplete checkpoint
		}
		var meta CheckpointMeta
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&meta); err != nil {
			continue
		}
		if meta.ID > best.ID {
			best = meta
		}
	}
	if best.ID < 0 {
		return CheckpointMeta{}, false
	}
	return best, true
}

// Instances implements SnapshotStore.
func (s *FileSnapshotStore) Instances(cp int64) ([]string, error) {
	entries, err := os.ReadDir(s.cpDir(cp))
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint %d not found: %w", cp, err)
	}
	var ids []string
	for _, e := range entries {
		if e.Name() != "_meta" {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

var _ SnapshotStore = (*FileSnapshotStore)(nil)
