package core

import (
	"bytes"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// snapshotStoreConformance is the shared behavioural contract every
// SnapshotStore implementation must satisfy. Both stores run the identical
// suite so the file store's crash-safety hardening cannot drift from the
// memory store's semantics.
func snapshotStoreConformance(t *testing.T, newStore func(t *testing.T) SnapshotStore) {
	t.Run("EmptyLatest", func(t *testing.T) {
		s := newStore(t)
		if _, ok := s.Latest(); ok {
			t.Fatal("fresh store must have no latest checkpoint")
		}
		if _, err := s.Instances(1); err == nil {
			t.Fatal("Instances of a missing checkpoint must error")
		}
	})

	t.Run("SaveLoadRoundtrip", func(t *testing.T) {
		s := newStore(t)
		payload := []byte("state-bytes \x00\x01\xff")
		if err := s.Save(1, "op-0", payload); err != nil {
			t.Fatal(err)
		}
		got, err := s.Load(1, "op-0")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("roundtrip mismatch: %q != %q", got, payload)
		}
		if _, err := s.Load(1, "missing"); err == nil {
			t.Fatal("loading a missing instance must error")
		}
		if _, err := s.Load(2, "op-0"); err == nil {
			t.Fatal("loading from a missing checkpoint must error")
		}
	})

	t.Run("OverwriteKeepsLastWrite", func(t *testing.T) {
		s := newStore(t)
		if err := s.Save(1, "op-0", []byte("first")); err != nil {
			t.Fatal(err)
		}
		if err := s.Save(1, "op-0", []byte("second")); err != nil {
			t.Fatal(err)
		}
		got, err := s.Load(1, "op-0")
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "second" {
			t.Fatalf("overwrite lost: %q", got)
		}
	})

	t.Run("CompleteGatesLatest", func(t *testing.T) {
		s := newStore(t)
		if err := s.Save(1, "op-0", []byte("a")); err != nil {
			t.Fatal(err)
		}
		// Saved but not completed: invisible.
		if _, ok := s.Latest(); ok {
			t.Fatal("an incomplete checkpoint must not be Latest")
		}
		if err := s.Complete(CheckpointMeta{ID: 1, InstanceIDs: []string{"op-0"}}); err != nil {
			t.Fatal(err)
		}
		meta, ok := s.Latest()
		if !ok || meta.ID != 1 {
			t.Fatalf("Latest after Complete: %+v ok=%v", meta, ok)
		}
		if !reflect.DeepEqual(meta.InstanceIDs, []string{"op-0"}) {
			t.Fatalf("meta instance IDs: %v", meta.InstanceIDs)
		}
	})

	t.Run("LatestPicksNewestCompleted", func(t *testing.T) {
		s := newStore(t)
		for _, id := range []int64{1, 2, 3} {
			if err := s.Save(id, "op-0", []byte(fmt.Sprintf("v%d", id))); err != nil {
				t.Fatal(err)
			}
		}
		// Complete out of order; 3 stays incomplete.
		if err := s.Complete(CheckpointMeta{ID: 2, InstanceIDs: []string{"op-0"}}); err != nil {
			t.Fatal(err)
		}
		if err := s.Complete(CheckpointMeta{ID: 1, InstanceIDs: []string{"op-0"}}); err != nil {
			t.Fatal(err)
		}
		meta, ok := s.Latest()
		if !ok || meta.ID != 2 {
			t.Fatalf("Latest should be newest completed (2), got %+v ok=%v", meta, ok)
		}
	})

	t.Run("InstancesSortedAndScoped", func(t *testing.T) {
		s := newStore(t)
		for _, id := range []string{"zeta", "alpha", "mid"} {
			if err := s.Save(7, id, []byte(id)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Save(8, "other", []byte("x")); err != nil {
			t.Fatal(err)
		}
		ids, err := s.Instances(7)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ids, []string{"alpha", "mid", "zeta"}) {
			t.Fatalf("Instances(7) = %v", ids)
		}
	})

	t.Run("HostileInstanceIDs", func(t *testing.T) {
		// IDs with path separators, reserved names and metacharacters must
		// round-trip without colliding or escaping the store.
		s := newStore(t)
		ids := []string{"op/1", "op/2", "_meta", "..", ".", "a b%c", "_tmp-x", "操作子"}
		for i, id := range ids {
			if err := s.Save(5, id, []byte(fmt.Sprintf("payload-%d", i))); err != nil {
				t.Fatalf("Save(%q): %v", id, err)
			}
		}
		for i, id := range ids {
			got, err := s.Load(5, id)
			if err != nil {
				t.Fatalf("Load(%q): %v", id, err)
			}
			if want := fmt.Sprintf("payload-%d", i); string(got) != want {
				t.Fatalf("Load(%q) = %q, want %q (ID collision?)", id, got, want)
			}
		}
		listed, err := s.Instances(5)
		if err != nil {
			t.Fatal(err)
		}
		if len(listed) != len(ids) {
			t.Fatalf("Instances lists %d of %d hostile IDs: %v", len(listed), len(ids), listed)
		}
		if err := s.Complete(CheckpointMeta{ID: 5, InstanceIDs: ids}); err != nil {
			t.Fatalf("Complete with hostile IDs: %v", err)
		}
		if meta, ok := s.Latest(); !ok || meta.ID != 5 {
			t.Fatalf("hostile-ID checkpoint not restorable: %+v ok=%v", meta, ok)
		}
	})

	t.Run("ConcurrentSaves", func(t *testing.T) {
		s := newStore(t)
		const workers = 8
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				id := fmt.Sprintf("op-%d", w)
				for cp := int64(1); cp <= 5; cp++ {
					if err := s.Save(cp, id, []byte(fmt.Sprintf("%s@%d", id, cp))); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for w, err := range errs {
			if err != nil {
				t.Fatalf("worker %d: %v", w, err)
			}
		}
		for w := 0; w < workers; w++ {
			id := fmt.Sprintf("op-%d", w)
			got, err := s.Load(5, id)
			if err != nil {
				t.Fatal(err)
			}
			if want := fmt.Sprintf("%s@5", id); string(got) != want {
				t.Fatalf("concurrent save corrupted %s: %q", id, got)
			}
		}
	})

	// save+complete is the common fixture for the delta-chain subtests: one
	// instance payload plus completed metadata with an optional parent link.
	saveCompleted := func(t *testing.T, s SnapshotStore, cp, parent int64) {
		t.Helper()
		if err := s.Save(cp, "op-0", []byte(fmt.Sprintf("payload-%d", cp))); err != nil {
			t.Fatal(err)
		}
		if err := s.Complete(CheckpointMeta{ID: cp, Parent: parent, InstanceIDs: []string{"op-0"}}); err != nil {
			t.Fatalf("Complete(%d, parent %d): %v", cp, parent, err)
		}
	}

	t.Run("DeltaWithoutParentRejected", func(t *testing.T) {
		s := newStore(t)
		if err := s.Save(2, "op-0", []byte("delta")); err != nil {
			t.Fatal(err)
		}
		// Parent 1 was never completed: the delta is unrestorable by
		// construction and must not commit.
		if err := s.Complete(CheckpointMeta{ID: 2, Parent: 1, InstanceIDs: []string{"op-0"}}); err == nil {
			t.Fatal("completing a delta whose parent was never completed must fail")
		}
		// With the parent completed first, the same delta commits.
		saveCompleted(t, s, 1, 0)
		if err := s.Complete(CheckpointMeta{ID: 2, Parent: 1, InstanceIDs: []string{"op-0"}}); err != nil {
			t.Fatalf("delta with completed parent: %v", err)
		}
		if meta, ok := s.Latest(); !ok || meta.ID != 2 || meta.Parent != 1 {
			t.Fatalf("Latest = %+v ok=%v, want ID=2 Parent=1", meta, ok)
		}
	})

	t.Run("GCKeepsParentsOfRetainedDeltas", func(t *testing.T) {
		s := newStore(t)
		r, ok := s.(interface{ SetRetain(int) })
		if !ok {
			t.Skip("store does not support retention")
		}
		r.SetRetain(1)
		saveCompleted(t, s, 1, 0) // full
		saveCompleted(t, s, 2, 1) // delta on 1
		// Retention says keep 1 checkpoint, but the retained delta cannot be
		// restored without its full parent: both must survive GC.
		for _, cp := range []int64{1, 2} {
			if _, err := s.Load(cp, "op-0"); err != nil {
				t.Fatalf("GC collected chain member %d still needed by the retained delta: %v", cp, err)
			}
		}
		meta, ok2 := s.Latest()
		if !ok2 || meta.ID != 2 {
			t.Fatalf("Latest = %+v ok=%v", meta, ok2)
		}
		// A new self-contained full releases the old chain.
		saveCompleted(t, s, 3, 0)
		if _, err := s.Load(1, "op-0"); err == nil {
			t.Fatal("checkpoint 1 must be collectable once no retained checkpoint depends on it")
		}
	})

	t.Run("LatestSkipsBrokenChainHead", func(t *testing.T) {
		s := newStore(t)
		d, ok := s.(DiscardableStore)
		if !ok {
			t.Skip("store does not support Discard")
		}
		saveCompleted(t, s, 1, 0) // full
		saveCompleted(t, s, 2, 1) // delta on 1
		saveCompleted(t, s, 3, 2) // delta on 2
		// Knock out the middle link: 3's chain is no longer restorable, so
		// Latest must fall back to the newest checkpoint that is.
		if err := d.Discard(2); err != nil {
			t.Fatal(err)
		}
		meta, ok2 := s.Latest()
		if !ok2 {
			t.Fatal("checkpoint 1 is still restorable; Latest must find it")
		}
		if meta.ID == 3 || meta.ID == 2 {
			t.Fatalf("Latest returned checkpoint %d from a broken chain", meta.ID)
		}
		if meta.ID != 1 {
			t.Fatalf("Latest = %d, want the intact full checkpoint 1", meta.ID)
		}
	})

	t.Run("DiscardDropsData", func(t *testing.T) {
		s := newStore(t)
		d, ok := s.(DiscardableStore)
		if !ok {
			t.Skip("store does not support Discard")
		}
		if err := s.Save(3, "op-0", []byte("doomed")); err != nil {
			t.Fatal(err)
		}
		if err := d.Discard(3); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Load(3, "op-0"); err == nil {
			t.Fatal("discarded checkpoint must not load")
		}
	})
}

func TestMemorySnapshotStoreConformance(t *testing.T) {
	snapshotStoreConformance(t, func(t *testing.T) SnapshotStore {
		return NewMemorySnapshotStore()
	})
}

func TestFileSnapshotStoreConformance(t *testing.T) {
	snapshotStoreConformance(t, func(t *testing.T) SnapshotStore {
		s, err := NewFileSnapshotStore(filepath.Join(t.TempDir(), "chk"))
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
}
