package core

import (
	"sort"
	"sync"
)

// SourceContext is handed to a running Source.
type SourceContext interface {
	// Collect emits an event downstream. It blocks under backpressure and
	// returns false when the source should stop (job cancelled).
	Collect(e Event) bool
	// CollectBatch emits events in order, equivalent to calling Collect on
	// each, with the stop/barrier checks and routing dispatch amortized over
	// the slice. Watermark semantics are preserved exactly: the generator
	// observes every record and punctuated watermarks land between the same
	// two records as on the per-record path. Unlike Collect, a checkpoint
	// barrier can only be injected before the first record of the slice, so
	// replayable sources must snapshot their offset at CollectBatch
	// granularity and size their batches accordingly (a few hundred records —
	// one ingest poll — is the sweet spot). The slice is not retained.
	CollectBatch(events []Event) bool
	// EmitWatermark emits an explicit watermark (punctuated strategies).
	// Periodic strategies are driven by the runtime instead.
	EmitWatermark(wm int64)
	// InstanceIndex returns this parallel source instance's index.
	InstanceIndex() int
	// Parallelism returns the source's parallelism.
	Parallelism() int
	// Stopped reports whether the job asked the source to stop. Collect
	// already checks this; long-idle sources should poll it.
	Stopped() bool
}

// Source produces the input stream of a job. Run must return once Collect
// returns false or Stopped reports true. Each parallel instance receives its
// own Source value from the SourceFactory.
type Source interface {
	Run(ctx SourceContext) error
}

// ReplayableSource is a Source whose read position can be checkpointed and
// restored — the property exactly-once recovery requires from inputs.
type ReplayableSource interface {
	Source
	// SnapshotOffset captures the current read position.
	SnapshotOffset() ([]byte, error)
	// RestoreOffset rewinds the source to a captured position. It is called
	// before Run.
	RestoreOffset(data []byte) error
}

// SourceFactory builds one Source per parallel instance.
type SourceFactory func(instance, parallelism int) Source

// SourceFunc adapts a plain function into a SourceFactory where every
// instance runs the same body.
func SourceFunc(fn func(ctx SourceContext) error) SourceFactory {
	return func(_, _ int) Source { return runnableSource{fn: fn} }
}

type runnableSource struct {
	fn func(ctx SourceContext) error
}

func (s runnableSource) Run(ctx SourceContext) error { return s.fn(ctx) }

// SliceSource replays a fixed set of events, partitioned round-robin across
// instances, checkpointing its offset. It is the workhorse of tests and
// recovery experiments.
type SliceSource struct {
	events   []Event
	instance int
	par      int

	mu     sync.Mutex
	offset int // index into the instance's own sub-slice
}

// NewSliceSourceFactory returns a factory replaying events. The slice is
// shared; do not mutate it after the job starts.
func NewSliceSourceFactory(events []Event) SourceFactory {
	return func(instance, parallelism int) Source {
		return &SliceSource{events: events, instance: instance, par: parallelism}
	}
}

// own returns the events assigned to this instance (round-robin).
func (s *SliceSource) own() []Event {
	if s.par <= 1 {
		return s.events
	}
	var out []Event
	for i := s.instance; i < len(s.events); i += s.par {
		out = append(out, s.events[i])
	}
	return out
}

// Run emits the instance's events from the restored offset.
func (s *SliceSource) Run(ctx SourceContext) error {
	events := s.own()
	for {
		s.mu.Lock()
		i := s.offset
		s.mu.Unlock()
		if i >= len(events) {
			return nil
		}
		if !ctx.Collect(events[i]) {
			return nil
		}
		s.mu.Lock()
		s.offset = i + 1
		s.mu.Unlock()
	}
}

// SnapshotOffset captures the replay position.
func (s *SliceSource) SnapshotOffset() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return []byte{byte(s.offset >> 24), byte(s.offset >> 16), byte(s.offset >> 8), byte(s.offset)}, nil
}

// RestoreOffset rewinds to a captured position.
func (s *SliceSource) RestoreOffset(data []byte) error {
	if len(data) != 4 {
		return nil
	}
	s.mu.Lock()
	s.offset = int(data[0])<<24 | int(data[1])<<16 | int(data[2])<<8 | int(data[3])
	s.mu.Unlock()
	return nil
}

var _ ReplayableSource = (*SliceSource)(nil)

// CollectSink accumulates sunk events for assertions. Safe for concurrent
// use by parallel sink instances.
type CollectSink struct {
	mu     sync.Mutex
	events []Event
}

// NewCollectSink returns an empty sink.
func NewCollectSink() *CollectSink { return &CollectSink{} }

// Factory returns the sink's OperatorFactory.
func (c *CollectSink) Factory() OperatorFactory {
	return SinkFunc(func(e Event) error {
		c.mu.Lock()
		c.events = append(c.events, e)
		c.mu.Unlock()
		return nil
	})
}

// Events returns a copy of the collected events.
func (c *CollectSink) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Len returns the number of collected events.
func (c *CollectSink) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Reset clears the sink.
func (c *CollectSink) Reset() {
	c.mu.Lock()
	c.events = nil
	c.mu.Unlock()
}

// SortedByTimestamp returns the collected events ordered by (timestamp, key).
func (c *CollectSink) SortedByTimestamp() []Event {
	evs := c.Events()
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Timestamp != evs[j].Timestamp {
			return evs[i].Timestamp < evs[j].Timestamp
		}
		return evs[i].Key < evs[j].Key
	})
	return evs
}
