package core

import "repro/internal/eventtime"

// Tap observes one stream's traffic from outside the job — the engine-side
// attachment point for serving layers (continuous-query subscriptions,
// result caches) that multiplex a running job's operator output to external
// consumers. Callbacks run on the tap operator's goroutine, serialised, so
// implementations need no internal ordering; they MUST NOT block, or they
// would backpressure the job itself — buffer and shed on the consumer side
// instead (see internal/serve).
type Tap interface {
	// OnRecord observes one record. The event's Value is shared with the
	// pipeline; taps that retain it across calls must copy.
	OnRecord(e Event)
	// OnWatermark observes event-time progress at the tap. The terminal
	// MaxWatermark is not forwarded; OnEOS signals the natural end instead.
	OnWatermark(wm int64)
	// OnEOS is called once when the stream drains naturally. A
	// stop-with-savepoint (rescale) terminates the tap silently WITHOUT
	// OnEOS — the rebuilt incarnation re-attaches and resumes publishing, so
	// downstream subscribers ride through reconfigurations.
	OnEOS()
}

// TapInto inserts a pass-through observation point: every record and
// watermark continues downstream unchanged and is also forwarded to t. The
// tap runs at parallelism 1 so t sees one serialised stream; it can terminate
// a branch (no downstream consumers) or sit mid-pipeline.
func (s *Stream) TapInto(name string, t Tap) *Stream {
	return s.ProcessWith(name, func() Operator { return &tapOperator{tap: t} }, 1)
}

type tapOperator struct {
	BaseOperator
	tap Tap
}

func (o *tapOperator) ProcessElement(e Event, ctx Context) error {
	o.tap.OnRecord(e)
	ctx.Emit(e)
	return nil
}

// ProcessBatch implements BatchOperator: per-record observation order is
// preserved, the pass-through emission is amortised over the batch.
func (o *tapOperator) ProcessBatch(cols *Columns, ctx BatchContext) error {
	for i := range cols.Events {
		o.tap.OnRecord(cols.Events[i])
	}
	ctx.EmitBatch(cols.Events)
	return nil
}

func (o *tapOperator) OnWatermark(wm int64, _ Context) error {
	if wm != eventtime.MaxWatermark {
		o.tap.OnWatermark(wm)
	}
	return nil
}

// Close fires OnEOS: the runtime only calls Close on a draining end of
// stream, never on a stop-with-savepoint, which is exactly the distinction
// Tap documents.
func (o *tapOperator) Close(Context) error {
	o.tap.OnEOS()
	return nil
}
