package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// recordingTap captures everything forwarded to it; callbacks arrive
// serialised but the job's Run goroutine differs from the test's, so it
// locks anyway.
type recordingTap struct {
	mu      sync.Mutex
	records []Event
	wms     []int64
	eos     int
}

func (r *recordingTap) OnRecord(e Event) {
	r.mu.Lock()
	r.records = append(r.records, e)
	r.mu.Unlock()
}

func (r *recordingTap) OnWatermark(wm int64) {
	r.mu.Lock()
	r.wms = append(r.wms, wm)
	r.mu.Unlock()
}

func (r *recordingTap) OnEOS() {
	r.mu.Lock()
	r.eos++
	r.mu.Unlock()
}

func tapTestEvents(n int) []Event {
	evs := make([]Event, n)
	for i := range evs {
		evs[i] = Event{Key: fmt.Sprintf("k%d", i%4), Timestamp: int64(i * 10), Value: int64(i)}
	}
	return evs
}

func runTapPipeline(t *testing.T, cfg Config, tap Tap) *CollectSink {
	t.Helper()
	sink := NewCollectSink()
	b := NewBuilder(cfg)
	s := b.Source("src", NewSliceSourceFactory(tapTestEvents(200)), WithBoundedDisorder(0))
	if tap != nil {
		s = s.TapInto("tap", tap)
	}
	s.Sink("out", sink.Factory())
	job, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return sink
}

func TestTapObservesRecordsWatermarksEOS(t *testing.T) {
	for _, cfg := range []Config{
		{Name: "tap", WatermarkInterval: 16},
		{Name: "tap-batched", WatermarkInterval: 16, MaxBatchSize: 8},
		{Name: "tap-columnar", WatermarkInterval: 16, MaxBatchSize: 8, ColumnarExec: true},
	} {
		t.Run(cfg.Name, func(t *testing.T) {
			tap := &recordingTap{}
			sink := runTapPipeline(t, cfg, tap)

			tap.mu.Lock()
			defer tap.mu.Unlock()
			if len(tap.records) != 200 {
				t.Fatalf("tap saw %d records, want 200", len(tap.records))
			}
			for i, e := range tap.records {
				if e.Value.(int64) != int64(i) {
					t.Fatalf("tap record %d out of order: %v", i, e)
				}
			}
			if len(tap.wms) == 0 {
				t.Fatal("tap saw no watermarks")
			}
			last := int64(-1)
			for _, wm := range tap.wms {
				if wm < last {
					t.Fatalf("tap watermarks regressed: %v", tap.wms)
				}
				last = wm
			}
			if tap.eos != 1 {
				t.Fatalf("tap EOS fired %d times, want 1", tap.eos)
			}
			// The tap is pass-through: the sink output matches an untapped run.
			plain := runTapPipeline(t, Config{Name: "plain", WatermarkInterval: 16}, nil)
			got, want := sink.SortedByTimestamp(), plain.SortedByTimestamp()
			if len(got) != len(want) {
				t.Fatalf("tapped run output %d events, untapped %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("output diverged at %d: %v vs %v", i, got[i], want[i])
				}
			}
		})
	}
}
