package core

import (
	"bytes"
	"container/heap"
	"encoding/gob"
	"fmt"
)

// timerEntry is one registered event-time timer.
type timerEntry struct {
	TS  int64
	Key string
}

// timerService maintains per-instance event-time timers, fired in timestamp
// order as the watermark advances. Duplicate (ts, key) registrations
// coalesce. The service is snapshotted into checkpoints.
type timerService struct {
	h   timerHeap
	set map[timerEntry]bool
}

func newTimerService() *timerService {
	return &timerService{set: make(map[timerEntry]bool)}
}

type timerHeap []timerEntry

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].TS != h[j].TS {
		return h[i].TS < h[j].TS
	}
	return h[i].Key < h[j].Key
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(timerEntry)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// register adds a timer; duplicates are ignored.
func (t *timerService) register(ts int64, key string) {
	e := timerEntry{TS: ts, Key: key}
	if t.set[e] {
		return
	}
	t.set[e] = true
	heap.Push(&t.h, e)
}

// unregister marks a timer deleted (lazily skipped when popped).
func (t *timerService) unregister(ts int64, key string) {
	delete(t.set, timerEntry{TS: ts, Key: key})
}

// due pops all timers with TS <= wm in order.
func (t *timerService) due(wm int64) []timerEntry {
	var out []timerEntry
	for t.h.Len() > 0 && t.h[0].TS <= wm {
		e := heap.Pop(&t.h).(timerEntry)
		if !t.set[e] {
			continue // deleted
		}
		delete(t.set, e)
		out = append(out, e)
	}
	return out
}

// pending returns the number of live timers.
func (t *timerService) pending() int { return len(t.set) }

// snapshot serialises the live timers.
func (t *timerService) snapshot() ([]byte, error) {
	entries := make([]timerEntry, 0, len(t.set))
	for e := range t.set {
		entries = append(entries, e)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(entries); err != nil {
		return nil, fmt.Errorf("core: snapshot timers: %w", err)
	}
	return buf.Bytes(), nil
}

// restore replaces the live timers from a snapshot.
func (t *timerService) restore(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var entries []timerEntry
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&entries); err != nil {
		return fmt.Errorf("core: restore timers: %w", err)
	}
	t.h = t.h[:0]
	t.set = make(map[timerEntry]bool, len(entries))
	for _, e := range entries {
		t.set[e] = true
		heap.Push(&t.h, e)
	}
	return nil
}
