package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
)

// timerEntry is one registered event-time timer.
type timerEntry struct {
	TS  int64
	Key string
}

// timerService maintains per-instance event-time timers, fired in timestamp
// order as the watermark advances. Duplicate (ts, key) registrations
// coalesce. The service is snapshotted into checkpoints.
type timerService struct {
	h   timerHeap
	set map[timerEntry]bool
	// scratch backs the slice due returns; each due call reuses it, so the
	// previous result must be fully consumed before the next call (the
	// watermark-advance loop does exactly that).
	scratch []timerEntry
}

func newTimerService() *timerService {
	return &timerService{set: make(map[timerEntry]bool)}
}

// timerHeap is a binary min-heap of timerEntry ordered by (TS, Key). It is
// hand-rolled rather than built on container/heap because the interface-based
// API boxes every entry through `any` on push and pop — a per-timer
// allocation on the hot watermark path.
type timerHeap []timerEntry

func (h timerHeap) less(i, j int) bool {
	if h[i].TS != h[j].TS {
		return h[i].TS < h[j].TS
	}
	return h[i].Key < h[j].Key
}

func (h timerHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h timerHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

func (h *timerHeap) push(e timerEntry) {
	*h = append(*h, e)
	h.up(len(*h) - 1)
}

func (h *timerHeap) pop() timerEntry {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	e := old[n]
	old[n] = timerEntry{} // release the key string to the GC
	*h = old[:n]
	if n > 0 {
		(*h).down(0)
	}
	return e
}

// register adds a timer; duplicates are ignored.
func (t *timerService) register(ts int64, key string) {
	e := timerEntry{TS: ts, Key: key}
	if t.set[e] {
		return
	}
	t.set[e] = true
	t.h.push(e)
}

// unregister marks a timer deleted (lazily skipped when popped).
func (t *timerService) unregister(ts int64, key string) {
	delete(t.set, timerEntry{TS: ts, Key: key})
}

// due pops all timers with TS <= wm in order.
func (t *timerService) due(wm int64) []timerEntry {
	out := t.scratch[:0]
	for len(t.h) > 0 && t.h[0].TS <= wm {
		e := t.h.pop()
		if !t.set[e] {
			continue // deleted
		}
		delete(t.set, e)
		out = append(out, e)
	}
	t.scratch = out
	return out
}

// pending returns the number of live timers.
func (t *timerService) pending() int { return len(t.set) }

// snapshot serialises the live timers in (TS, Key) order. The set is a map,
// so without the sort the checkpoint payload bytes depended on map iteration
// order — replay was still correct (restore rebuilds the heap), but two
// snapshots of identical timer state could differ byte-for-byte, breaking
// checkpoint-equality comparisons and content-addressed dedup.
func (t *timerService) snapshot() ([]byte, error) {
	entries := make([]timerEntry, 0, len(t.set))
	for e := range t.set {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].TS != entries[j].TS {
			return entries[i].TS < entries[j].TS
		}
		return entries[i].Key < entries[j].Key
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(entries); err != nil {
		return nil, fmt.Errorf("core: snapshot timers: %w", err)
	}
	return buf.Bytes(), nil
}

// restore replaces the live timers from a snapshot.
func (t *timerService) restore(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var entries []timerEntry
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&entries); err != nil {
		return fmt.Errorf("core: restore timers: %w", err)
	}
	t.h = t.h[:0]
	t.set = make(map[timerEntry]bool, len(entries))
	for _, e := range entries {
		t.set[e] = true
		t.h.push(e)
	}
	return nil
}
