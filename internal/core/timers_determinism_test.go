package core

import (
	"bytes"
	"fmt"
	"testing"
)

// TestTimerSnapshotDeterministic pins the fix for nondeterministic timer
// snapshots: the live set is a map, so the encoded entries used to leave in
// map iteration order — replay was correct, but two snapshots of identical
// timer state could differ byte-for-byte, breaking checkpoint-equality
// comparisons. Snapshots must now be identical across encodings of the same
// logical state regardless of registration order.
func TestTimerSnapshotDeterministic(t *testing.T) {
	build := func(reverse bool) *timerService {
		ts := newTimerService()
		for i := 0; i < 200; i++ {
			n := i
			if reverse {
				n = 199 - i
			}
			ts.register(int64(n%17), fmt.Sprintf("key-%04d", n))
		}
		return ts
	}

	base, err := build(false).snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := build(i%2 == 1).snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(base, again) {
			t.Fatalf("snapshot %d differs from the first for identical timer state", i)
		}
	}

	// The same service snapshotted twice must also be byte-stable (each range
	// over the set randomizes independently).
	s := build(false)
	a, err := s.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two snapshots of one service differ")
	}

	// Determinism must not change what restore sees.
	restored := newTimerService()
	if err := restored.restore(base); err != nil {
		t.Fatal(err)
	}
	if restored.pending() != build(false).pending() {
		t.Fatalf("restored %d timers, want %d", restored.pending(), build(false).pending())
	}
}
