package cql

import (
	"fmt"
	"strings"
)

// EmitKind is the relation-to-stream operator of a query.
type EmitKind int

const (
	// EmitIStream emits tuples inserted into the result relation.
	EmitIStream EmitKind = iota
	// EmitDStream emits tuples deleted from the result relation.
	EmitDStream
	// EmitRStream emits the full result relation at every instant.
	EmitRStream
)

// String names the emit kind.
func (k EmitKind) String() string {
	switch k {
	case EmitIStream:
		return "ISTREAM"
	case EmitDStream:
		return "DSTREAM"
	case EmitRStream:
		return "RSTREAM"
	}
	return "?"
}

// WindowKind is a stream-to-relation operator.
type WindowKind int

const (
	// WindowUnbounded keeps every tuple ever seen.
	WindowUnbounded WindowKind = iota
	// WindowNow keeps only tuples with the current timestamp.
	WindowNow
	// WindowRange keeps tuples within the trailing time range.
	WindowRange
	// WindowRows keeps the last N tuples.
	WindowRows
)

// WindowSpec is a parsed window clause.
type WindowSpec struct {
	Kind WindowKind
	// N is the range length (time units) or row count.
	N int64
	// Slide, when > 0 on a RANGE window, evaluates the relation only at
	// slide boundaries.
	Slide int64
}

// StreamRef is one FROM-clause entry: a stream with a window and an optional
// alias.
type StreamRef struct {
	Stream string
	Alias  string
	Window WindowSpec
	// JoinOn is the ON condition when the ref was introduced by JOIN.
	JoinOn Expr
}

// name returns the reference's binding name.
func (r StreamRef) name() string {
	if r.Alias != "" {
		return r.Alias
	}
	return r.Stream
}

// SelectItem is one projection: an expression with an optional alias, or *.
type SelectItem struct {
	Star  bool
	Expr  Expr
	Alias string
}

// outName derives the output column name.
func (s SelectItem) outName(i int) string {
	if s.Alias != "" {
		return s.Alias
	}
	if id, ok := s.Expr.(*Ident); ok {
		return id.Name
	}
	if c, ok := s.Expr.(*Call); ok {
		return strings.ToLower(c.Fn)
	}
	return fmt.Sprintf("col%d", i)
}

// SelectStmt is a parsed continuous query.
type SelectStmt struct {
	Emit    EmitKind
	Items   []SelectItem
	From    []StreamRef
	Where   Expr
	GroupBy []Expr
	Having  Expr
}

// Expr is a scalar or aggregate expression.
type Expr interface{ exprNode() }

// Ident references a column, optionally qualified ("s.price").
type Ident struct {
	Qualifier string
	Name      string
}

// NumberLit is a numeric literal (always float64 internally).
type NumberLit struct{ V float64 }

// StringLit is a string literal.
type StringLit struct{ V string }

// BoolLit is TRUE or FALSE.
type BoolLit struct{ V bool }

// Binary is a binary operation (+ - * / = != < <= > >= AND OR).
type Binary struct {
	Op          string
	Left, Right Expr
}

// Unary is NOT or negation.
type Unary struct {
	Op string
	X  Expr
}

// Call is a function call; aggregate functions are COUNT, SUM, AVG, MIN,
// MAX (with COUNT(*) allowed).
type Call struct {
	Fn   string // upper-cased
	Star bool
	Args []Expr
}

func (*Ident) exprNode()     {}
func (*NumberLit) exprNode() {}
func (*StringLit) exprNode() {}
func (*BoolLit) exprNode()   {}
func (*Binary) exprNode()    {}
func (*Unary) exprNode()     {}
func (*Call) exprNode()      {}

// aggregateFns lists supported aggregate functions.
var aggregateFns = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

// isAggregate reports whether the expression contains an aggregate call.
func isAggregate(e Expr) bool {
	switch x := e.(type) {
	case *Call:
		if aggregateFns[x.Fn] {
			return true
		}
		for _, a := range x.Args {
			if isAggregate(a) {
				return true
			}
		}
	case *Binary:
		return isAggregate(x.Left) || isAggregate(x.Right)
	case *Unary:
		return isAggregate(x.X)
	}
	return false
}
