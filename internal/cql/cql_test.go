package cql

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func push(t *testing.T, ex *Executor, stream string, ts int64, row Row) []Output {
	t.Helper()
	out, err := ex.Push(stream, ts, row)
	if err != nil {
		t.Fatalf("push %s@%d: %v", stream, ts, err)
	}
	return out
}

func TestParseBasics(t *testing.T) {
	for _, q := range []string{
		"SELECT * FROM trades",
		"SELECT price FROM trades [ROWS 10]",
		"SELECT symbol, AVG(price) AS avgp FROM trades [RANGE 60] GROUP BY symbol",
		"ISTREAM (SELECT * FROM trades [NOW] WHERE price > 100)",
		"DSTREAM (SELECT * FROM trades [RANGE 5])",
		"RSTREAM (SELECT t.price FROM trades [ROWS 1] AS t)",
		"SELECT a.x, b.y FROM s1 [RANGE 10] AS a, s2 [RANGE 10] AS b WHERE a.k = b.k",
		"SELECT a.x FROM s1 [RANGE 10] AS a JOIN s2 [RANGE 10] AS b ON a.k = b.k",
		"SELECT COUNT(*) AS n FROM s [RANGE 100 SLIDE 10]",
		"SELECT x FROM s WHERE NOT (x > 3 AND x < 5) OR x = 7;",
	} {
		if _, err := Parse(q); err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, q := range []string{
		"",
		"SELECT",
		"SELECT FROM s",
		"SELECT * FROM",
		"SELECT * FROM s [RANGE]",
		"SELECT * FROM s [BOGUS 5]",
		"ISTREAM SELECT * FROM s",        // missing parens
		"SELECT * FROM s WHERE",          // dangling
		"SELECT * FROM s extra nonsense", // trailing
		"SELECT 'unterminated FROM s",
	} {
		if _, err := Parse(q); err == nil {
			t.Fatalf("parse %q: expected error", q)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	// Non-aggregate column not in GROUP BY.
	stmt, err := Parse("SELECT symbol, price, COUNT(*) FROM s GROUP BY symbol")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewExecutor(stmt); err == nil {
		t.Fatal("ungrouped column accepted")
	}
	// Duplicate bindings.
	stmt2, _ := Parse("SELECT * FROM s, s")
	if _, err := NewExecutor(stmt2); err == nil {
		t.Fatal("duplicate binding accepted")
	}
	// Star with aggregation.
	stmt3, _ := Parse("SELECT * FROM s GROUP BY x")
	if _, err := NewExecutor(stmt3); err == nil {
		t.Fatal("star with aggregation accepted")
	}
}

func TestSelectionProjectionIStream(t *testing.T) {
	ex := MustPrepare("ISTREAM (SELECT symbol, price FROM trades WHERE price > 100)")
	out := push(t, ex, "trades", 1, Row{"symbol": "A", "price": 150.0})
	if len(out) != 1 || out[0].Row["symbol"] != "A" || out[0].Row["price"] != 150.0 {
		t.Fatalf("unexpected output: %v", out)
	}
	out = push(t, ex, "trades", 2, Row{"symbol": "B", "price": 50.0})
	if len(out) != 0 {
		t.Fatalf("filtered tuple emitted: %v", out)
	}
	// ISTREAM over an unbounded window emits each qualifying tuple once.
	out = push(t, ex, "trades", 3, Row{"symbol": "C", "price": 200.0})
	if len(out) != 1 || out[0].Row["symbol"] != "C" {
		t.Fatalf("want one new insertion, got %v", out)
	}
}

func TestRowsWindow(t *testing.T) {
	// ROWS 2 keeps the last two tuples; RSTREAM shows the relation each
	// instant.
	ex := MustPrepare("RSTREAM (SELECT price FROM trades [ROWS 2])")
	push(t, ex, "trades", 1, Row{"price": 1.0})
	push(t, ex, "trades", 2, Row{"price": 2.0})
	out := push(t, ex, "trades", 3, Row{"price": 3.0})
	if len(out) != 2 {
		t.Fatalf("ROWS 2 relation should hold 2 tuples, got %d", len(out))
	}
	prices := map[float64]bool{}
	for _, o := range out {
		prices[o.Row["price"].(float64)] = true
	}
	if !prices[2.0] || !prices[3.0] || prices[1.0] {
		t.Fatalf("wrong window contents: %v", out)
	}
}

func TestRangeWindowAndDStream(t *testing.T) {
	ex := MustPrepare("DSTREAM (SELECT price FROM trades [RANGE 10])")
	push(t, ex, "trades", 0, Row{"price": 1.0})
	push(t, ex, "trades", 5, Row{"price": 2.0})
	// At ts=11 the first tuple (ts=0) has left the 10-unit window.
	out, err := ex.AdvanceTo(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Kind != Delete || out[0].Row["price"] != 1.0 {
		t.Fatalf("want deletion of price=1, got %v", out)
	}
}

func TestNowWindow(t *testing.T) {
	ex := MustPrepare("RSTREAM (SELECT price FROM trades [NOW])")
	push(t, ex, "trades", 1, Row{"price": 1.0})
	out := push(t, ex, "trades", 2, Row{"price": 2.0})
	if len(out) != 1 || out[0].Row["price"] != 2.0 {
		t.Fatalf("NOW window should hold only the current instant: %v", out)
	}
}

func TestGroupedAggregation(t *testing.T) {
	ex := MustPrepare("RSTREAM (SELECT symbol, AVG(price) AS avgp, COUNT(*) AS n FROM trades [ROWS 100] GROUP BY symbol)")
	push(t, ex, "trades", 1, Row{"symbol": "A", "price": 10.0})
	push(t, ex, "trades", 2, Row{"symbol": "A", "price": 20.0})
	out := push(t, ex, "trades", 3, Row{"symbol": "B", "price": 5.0})
	if len(out) != 2 {
		t.Fatalf("want 2 groups, got %d: %v", len(out), out)
	}
	byGroup := map[string]Row{}
	for _, o := range out {
		byGroup[o.Row["symbol"].(string)] = o.Row
	}
	if byGroup["A"]["avgp"] != 15.0 || byGroup["A"]["n"] != 2.0 {
		t.Fatalf("group A wrong: %v", byGroup["A"])
	}
	if byGroup["B"]["avgp"] != 5.0 {
		t.Fatalf("group B wrong: %v", byGroup["B"])
	}
}

func TestAggregatesMinMaxSum(t *testing.T) {
	ex := MustPrepare("RSTREAM (SELECT MIN(v) AS lo, MAX(v) AS hi, SUM(v) AS s FROM nums [UNBOUNDED] GROUP BY k)")
	push(t, ex, "nums", 1, Row{"k": "x", "v": 3.0})
	push(t, ex, "nums", 2, Row{"k": "x", "v": -1.0})
	out := push(t, ex, "nums", 3, Row{"k": "x", "v": 10.0})
	if len(out) != 1 {
		t.Fatalf("want 1 group row, got %v", out)
	}
	r := out[0].Row
	if r["lo"] != -1.0 || r["hi"] != 10.0 || r["s"] != 12.0 {
		t.Fatalf("aggregates wrong: %v", r)
	}
}

func TestHaving(t *testing.T) {
	ex := MustPrepare("RSTREAM (SELECT k, COUNT(*) AS n FROM s [UNBOUNDED] GROUP BY k HAVING COUNT(*) >= 2)")
	push(t, ex, "s", 1, Row{"k": "a"})
	out := push(t, ex, "s", 2, Row{"k": "b"})
	if len(out) != 0 {
		t.Fatalf("no group reaches HAVING yet: %v", out)
	}
	out = push(t, ex, "s", 3, Row{"k": "a"})
	if len(out) != 1 || out[0].Row["k"] != "a" {
		t.Fatalf("group a should pass HAVING: %v", out)
	}
}

func TestTwoStreamJoin(t *testing.T) {
	ex := MustPrepare("ISTREAM (SELECT o.id, p.amount FROM orders [RANGE 100] AS o JOIN payments [RANGE 100] AS p ON o.id = p.order_id)")
	push(t, ex, "orders", 1, Row{"id": 1.0})
	push(t, ex, "orders", 2, Row{"id": 2.0})
	out := push(t, ex, "payments", 3, Row{"order_id": 2.0, "amount": 99.0})
	if len(out) != 1 {
		t.Fatalf("want 1 join result, got %v", out)
	}
	if out[0].Row["id"] != 2.0 || out[0].Row["amount"] != 99.0 {
		t.Fatalf("join row wrong: %v", out[0].Row)
	}
	// Non-matching payment joins nothing.
	out = push(t, ex, "payments", 4, Row{"order_id": 7.0, "amount": 1.0})
	if len(out) != 0 {
		t.Fatalf("unmatched join emitted: %v", out)
	}
}

func TestJoinWindowExpiry(t *testing.T) {
	// Order expires from its window before the payment arrives.
	ex := MustPrepare("ISTREAM (SELECT o.id, p.amount FROM orders [RANGE 10] AS o JOIN payments [RANGE 10] AS p ON o.id = p.order_id)")
	push(t, ex, "orders", 0, Row{"id": 1.0})
	out := push(t, ex, "payments", 50, Row{"order_id": 1.0, "amount": 5.0})
	if len(out) != 0 {
		t.Fatalf("join across expired window: %v", out)
	}
}

func TestSlideEvaluatesAtBoundaries(t *testing.T) {
	ex := MustPrepare("RSTREAM (SELECT COUNT(*) AS n FROM s [RANGE 100 SLIDE 10] GROUP BY k)")
	// Pushes within one slide produce no output until the boundary crosses.
	out := push(t, ex, "s", 101, Row{"k": "a"}) // first slide boundary 10
	_ = out
	o2 := push(t, ex, "s", 103, Row{"k": "a"})
	if len(o2) != 0 {
		t.Fatalf("mid-slide evaluation: %v", o2)
	}
	o3 := push(t, ex, "s", 112, Row{"k": "a"})
	if len(o3) != 1 || o3[0].Row["n"] != 3.0 {
		t.Fatalf("slide boundary evaluation wrong: %v", o3)
	}
}

func TestArithmeticAndPrecedence(t *testing.T) {
	ex := MustPrepare("RSTREAM (SELECT a + b * 2 AS v FROM s [NOW])")
	out := push(t, ex, "s", 1, Row{"a": 1.0, "b": 3.0})
	if out[0].Row["v"] != 7.0 {
		t.Fatalf("precedence wrong: %v", out[0].Row["v"])
	}
	ex2 := MustPrepare("RSTREAM (SELECT (a + b) * 2 AS v FROM s [NOW])")
	out2 := push(t, ex2, "s", 1, Row{"a": 1.0, "b": 3.0})
	if out2[0].Row["v"] != 8.0 {
		t.Fatalf("parens wrong: %v", out2[0].Row["v"])
	}
}

func TestStringComparisonAndBooleans(t *testing.T) {
	ex := MustPrepare("ISTREAM (SELECT name FROM s WHERE name = 'alice' AND active = TRUE)")
	out := push(t, ex, "s", 1, Row{"name": "alice", "active": true})
	if len(out) != 1 {
		t.Fatalf("string/bool predicate failed: %v", out)
	}
	out = push(t, ex, "s", 2, Row{"name": "bob", "active": true})
	if len(out) != 0 {
		t.Fatal("wrong name passed filter")
	}
}

func TestIntCoercion(t *testing.T) {
	ex := MustPrepare("ISTREAM (SELECT v FROM s WHERE v > 5)")
	out := push(t, ex, "s", 1, Row{"v": int64(10)})
	if len(out) != 1 {
		t.Fatalf("int64 coercion failed: %v", out)
	}
}

func TestUnknownStreamRejected(t *testing.T) {
	ex := MustPrepare("SELECT * FROM s")
	if _, err := ex.Push("other", 1, Row{}); err == nil {
		t.Fatal("push to unknown stream accepted")
	}
}

func TestAmbiguousColumnRejected(t *testing.T) {
	ex := MustPrepare("ISTREAM (SELECT x FROM a [NOW] AS a1, b [NOW] AS b1)")
	if _, err := ex.Push("a", 1, Row{"x": 1.0}); err != nil {
		t.Fatal(err)
	}
	// Now both windows hold rows with column x at the same instant; the
	// unqualified reference is ambiguous.
	ex2 := MustPrepare("ISTREAM (SELECT x FROM a [UNBOUNDED] AS a1, b [UNBOUNDED] AS b1)")
	push2, _ := ex2.Push("a", 1, Row{"x": 1.0})
	_ = push2
	if _, err := ex2.Push("b", 2, Row{"x": 2.0}); err == nil {
		t.Fatal("ambiguous column accepted")
	}
}

func TestUnaryOperators(t *testing.T) {
	ex := MustPrepare("ISTREAM (SELECT v FROM s WHERE NOT (v > 5) AND -v < 0)")
	out := push(t, ex, "s", 1, Row{"v": 3.0})
	if len(out) != 1 {
		t.Fatalf("unary predicate failed: %v", out)
	}
	out = push(t, ex, "s", 2, Row{"v": 7.0})
	if len(out) != 0 {
		t.Fatal("NOT inverted wrongly")
	}
}

func TestStringConcatAndOrdering(t *testing.T) {
	ex := MustPrepare("RSTREAM (SELECT a + b AS ab FROM s [NOW] WHERE a < b)")
	out := push(t, ex, "s", 1, Row{"a": "x", "b": "y"})
	if len(out) != 1 || out[0].Row["ab"] != "xy" {
		t.Fatalf("string concat: %v", out)
	}
}

func TestDivisionByZeroReported(t *testing.T) {
	ex := MustPrepare("RSTREAM (SELECT a / b AS q FROM s [NOW])")
	if _, err := ex.Push("s", 1, Row{"a": 1.0, "b": 0.0}); err == nil {
		t.Fatal("division by zero not reported")
	}
}

func TestTypeErrorsReported(t *testing.T) {
	// AND over non-boolean.
	ex := MustPrepare("ISTREAM (SELECT v FROM s WHERE v AND TRUE)")
	if _, err := ex.Push("s", 1, Row{"v": 1.0}); err == nil {
		t.Fatal("AND over number accepted")
	}
	// Arithmetic over string.
	ex2 := MustPrepare("RSTREAM (SELECT v * 2 AS d FROM s [NOW])")
	if _, err := ex2.Push("s", 1, Row{"v": "oops"}); err == nil {
		t.Fatal("string arithmetic accepted")
	}
	// Unknown column.
	ex3 := MustPrepare("ISTREAM (SELECT missing FROM s)")
	if _, err := ex3.Push("s", 1, Row{"v": 1.0}); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestStarProjectionWithJoinQualifies(t *testing.T) {
	ex := MustPrepare("RSTREAM (SELECT * FROM a [NOW] AS l, b [NOW] AS r)")
	push(t, ex, "a", 1, Row{"x": 1.0})
	out := push(t, ex, "b", 1, Row{"y": 2.0})
	if len(out) != 1 {
		t.Fatalf("join star: %v", out)
	}
	row := out[0].Row
	if row["l.x"] != 1.0 || row["r.y"] != 2.0 {
		t.Fatalf("star with join should qualify columns: %v", row)
	}
}

func TestHavingOverAverageExpression(t *testing.T) {
	ex := MustPrepare("RSTREAM (SELECT k, AVG(v) + 1 AS avp FROM s [UNBOUNDED] GROUP BY k HAVING AVG(v) > 10)")
	push(t, ex, "s", 1, Row{"k": "a", "v": 5.0})
	out := push(t, ex, "s", 2, Row{"k": "a", "v": 25.0})
	if len(out) != 1 || out[0].Row["avp"] != 16.0 {
		t.Fatalf("aggregate expression: %v", out)
	}
}

func TestEmitKindString(t *testing.T) {
	if EmitIStream.String() != "ISTREAM" || EmitDStream.String() != "DSTREAM" || EmitRStream.String() != "RSTREAM" {
		t.Fatal("EmitKind strings wrong")
	}
}

func TestPrepareReportsParseAndSemanticErrors(t *testing.T) {
	if _, err := Prepare("SELEC nonsense"); err == nil {
		t.Fatal("parse error not surfaced")
	}
	if _, err := Prepare("SELECT a, COUNT(*) FROM s GROUP BY b"); err == nil {
		t.Fatal("semantic error not surfaced")
	}
}

func TestCountColumnSkipsAbsent(t *testing.T) {
	ex := MustPrepare("RSTREAM (SELECT k, COUNT(v) AS n FROM s [UNBOUNDED] GROUP BY k)")
	push(t, ex, "s", 1, Row{"k": "a", "v": 1.0})
	out := push(t, ex, "s", 2, Row{"k": "a"}) // v missing
	if len(out) != 1 || out[0].Row["n"] != 1.0 {
		t.Fatalf("COUNT(col) should skip rows without the column: %v", out)
	}
}

func TestExprKeyCanonicalisation(t *testing.T) {
	stmt, err := Parse("SELECT a.x + 1, COUNT(*), NOT flag, 'lit', TRUE FROM s GROUP BY a.x + 1, NOT flag, 'lit', TRUE")
	if err != nil {
		t.Fatal(err)
	}
	// Building the executor exercises exprKey on every select item; the
	// grouped validation must accept the syntactically identical items.
	if _, err := NewExecutor(stmt); err != nil {
		t.Fatalf("exprKey canonicalisation failed: %v", err)
	}
}

// TestRowsWindowQueryMatchesDirectEvaluation is the property test promised in
// DESIGN.md: a random filter query over a ROWS window must match a direct
// hand evaluation of CQL's reference semantics (window contents at each
// instant, filtered, RSTREAM'd).
func TestRowsWindowQueryMatchesDirectEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		rows := 1 + rng.Intn(10)
		threshold := float64(rng.Intn(100))
		q := fmt.Sprintf("RSTREAM (SELECT v FROM s [ROWS %d] WHERE v > %g)", rows, threshold)
		ex := MustPrepare(q)

		var windowBuf []float64
		for i := 0; i < 200; i++ {
			v := float64(rng.Intn(100))
			out, err := ex.Push("s", int64(i), Row{"v": v})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			// Reference: maintain the ROWS window by hand, filter, compare
			// as multisets.
			windowBuf = append(windowBuf, v)
			if len(windowBuf) > rows {
				windowBuf = windowBuf[len(windowBuf)-rows:]
			}
			var want []float64
			for _, w := range windowBuf {
				if w > threshold {
					want = append(want, w)
				}
			}
			var got []float64
			for _, o := range out {
				got = append(got, o.Row["v"].(float64))
			}
			sort.Float64s(want)
			sort.Float64s(got)
			if len(want) != len(got) {
				t.Fatalf("trial %d step %d (%s): want %v got %v", trial, i, q, want, got)
			}
			for j := range want {
				if want[j] != got[j] {
					t.Fatalf("trial %d step %d: want %v got %v", trial, i, want, got)
				}
			}
		}
	}
}

// Regression: Push used to initialize lastSlide to 0, so every tuple whose
// ts/slide == 0 returned early and the entire first slide period was
// silently suppressed.
func TestFirstSlidePeriodEmits(t *testing.T) {
	ex := MustPrepare("RSTREAM (SELECT COUNT(*) AS n FROM s [RANGE 100 SLIDE 10] GROUP BY k)")
	out := push(t, ex, "s", 1, Row{"k": "a"}) // boundary 0: must evaluate
	if len(out) != 1 || out[0].Row["n"] != 1.0 {
		t.Fatalf("first slide period suppressed: %v", out)
	}
	if o := push(t, ex, "s", 3, Row{"k": "a"}); len(o) != 0 {
		t.Fatalf("mid-slide evaluation in first period: %v", o)
	}
	o3 := push(t, ex, "s", 12, Row{"k": "a"})
	if len(o3) != 1 || o3[0].Row["n"] != 3.0 {
		t.Fatalf("boundary after first period: %v", o3)
	}
}

// Regression: NewExecutor used to overwrite ex.slide with each windowed FROM
// ref, silently keeping only the last ref's SLIDE.
func TestMismatchedSlidesRejected(t *testing.T) {
	_, err := Prepare("ISTREAM (SELECT a.x FROM s1 [RANGE 100 SLIDE 10] AS a JOIN s2 [RANGE 100 SLIDE 20] AS b ON a.k = b.k)")
	if err == nil {
		t.Fatal("mismatched SLIDE values accepted")
	}
	// Matching slides across refs stay legal.
	if _, err := Prepare("ISTREAM (SELECT a.x FROM s1 [RANGE 100 SLIDE 10] AS a JOIN s2 [RANGE 50 SLIDE 10] AS b ON a.k = b.k)"); err != nil {
		t.Fatalf("matching slides rejected: %v", err)
	}
	// A single windowed ref plus an unwindowed one is fine too.
	if _, err := Prepare("ISTREAM (SELECT a.x FROM s1 [RANGE 100 SLIDE 10] AS a, s2 [ROWS 5] AS b)"); err != nil {
		t.Fatalf("single slide rejected: %v", err)
	}
}

// Regression: GROUP BY keys were built with %v, so int64(1), float64(1) and
// "1" merged into one group.
func TestGroupKeysAreTypeTagged(t *testing.T) {
	ex := MustPrepare("RSTREAM (SELECT k, COUNT(*) AS n FROM s [UNBOUNDED] GROUP BY k)")
	push(t, ex, "s", 1, Row{"k": int64(1)})
	push(t, ex, "s", 2, Row{"k": float64(1)})
	out := push(t, ex, "s", 3, Row{"k": "1"})
	if len(out) != 3 {
		t.Fatalf("distinct-typed keys merged: want 3 groups, got %d (%v)", len(out), out)
	}
	for _, o := range out {
		if o.Row["n"] != 1.0 {
			t.Fatalf("group counts corrupted by key collision: %v", out)
		}
	}
}

// Regression: rowKey used %v too, so the DStream bag diff treated
// {v: int64(1)} and {v: float64(1)} as the same row and swallowed the
// expiration delta.
func TestRowKeyTypeCollisionInBagDiff(t *testing.T) {
	ex := MustPrepare("DSTREAM (SELECT v FROM s [NOW])")
	push(t, ex, "s", 1, Row{"v": int64(1)})
	out := push(t, ex, "s", 2, Row{"v": float64(1)})
	if len(out) != 1 || out[0].Kind != Delete {
		t.Fatalf("expired row delete swallowed by key collision: %v", out)
	}
	if v, ok := out[0].Row["v"].(int64); !ok || v != 1 {
		t.Fatalf("deleted row carries wrong value: %v", out[0].Row)
	}
	// Strings with embedded separators cannot forge composite keys either.
	if keyPart("a\";b=i:1") == keyPart("a") || keyPart("1") == keyPart(int64(1)) {
		t.Fatal("keyPart collisions")
	}
}
