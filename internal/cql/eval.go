package cql

import (
	"fmt"
	"math"
)

// eval evaluates a scalar expression under a binding.
func eval(e Expr, b binding) (any, error) {
	switch x := e.(type) {
	case *NumberLit:
		return x.V, nil
	case *StringLit:
		return x.V, nil
	case *BoolLit:
		return x.V, nil
	case *Ident:
		return lookup(x, b)
	case *Unary:
		v, err := eval(x.X, b)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "-":
			f, err := toNum(v)
			if err != nil {
				return nil, err
			}
			return -f, nil
		case "NOT":
			bv, ok := v.(bool)
			if !ok {
				return nil, fmt.Errorf("cql: NOT applied to non-boolean %T", v)
			}
			return !bv, nil
		}
		return nil, fmt.Errorf("cql: unknown unary op %q", x.Op)
	case *Binary:
		return evalBinary(x, b)
	case *Call:
		return nil, fmt.Errorf("cql: aggregate %s used in scalar context", x.Fn)
	}
	return nil, fmt.Errorf("cql: cannot evaluate %T", e)
}

func evalBinary(x *Binary, b binding) (any, error) {
	if x.Op == "AND" || x.Op == "OR" {
		l, err := eval(x.Left, b)
		if err != nil {
			return nil, err
		}
		lb, ok := l.(bool)
		if !ok {
			return nil, fmt.Errorf("cql: %s on non-boolean %T", x.Op, l)
		}
		// Short-circuit.
		if x.Op == "AND" && !lb {
			return false, nil
		}
		if x.Op == "OR" && lb {
			return true, nil
		}
		r, err := eval(x.Right, b)
		if err != nil {
			return nil, err
		}
		rb, ok := r.(bool)
		if !ok {
			return nil, fmt.Errorf("cql: %s on non-boolean %T", x.Op, r)
		}
		return rb, nil
	}

	l, err := eval(x.Left, b)
	if err != nil {
		return nil, err
	}
	r, err := eval(x.Right, b)
	if err != nil {
		return nil, err
	}

	// String comparison.
	ls, lIsStr := l.(string)
	rs, rIsStr := r.(string)
	if lIsStr && rIsStr {
		switch x.Op {
		case "=":
			return ls == rs, nil
		case "!=":
			return ls != rs, nil
		case "<":
			return ls < rs, nil
		case "<=":
			return ls <= rs, nil
		case ">":
			return ls > rs, nil
		case ">=":
			return ls >= rs, nil
		case "+":
			return ls + rs, nil
		}
		return nil, fmt.Errorf("cql: op %q on strings", x.Op)
	}

	lf, err := toNum(l)
	if err != nil {
		return nil, err
	}
	rf, err := toNum(r)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "+":
		return lf + rf, nil
	case "-":
		return lf - rf, nil
	case "*":
		return lf * rf, nil
	case "/":
		if rf == 0 {
			return nil, fmt.Errorf("cql: division by zero")
		}
		return lf / rf, nil
	case "=":
		return lf == rf, nil
	case "!=":
		return lf != rf, nil
	case "<":
		return lf < rf, nil
	case "<=":
		return lf <= rf, nil
	case ">":
		return lf > rf, nil
	case ">=":
		return lf >= rf, nil
	}
	return nil, fmt.Errorf("cql: unknown operator %q", x.Op)
}

// lookup resolves an identifier against a binding.
func lookup(id *Ident, b binding) (any, error) {
	if id.Qualifier != "" {
		row, ok := b[id.Qualifier]
		if !ok {
			return nil, fmt.Errorf("cql: unknown stream binding %q", id.Qualifier)
		}
		v, ok := row[id.Name]
		if !ok {
			return nil, fmt.Errorf("cql: stream %q has no column %q", id.Qualifier, id.Name)
		}
		return v, nil
	}
	var found any
	hits := 0
	for _, row := range b {
		if v, ok := row[id.Name]; ok {
			found = v
			hits++
		}
	}
	switch hits {
	case 0:
		return nil, fmt.Errorf("cql: unknown column %q", id.Name)
	case 1:
		return found, nil
	}
	return nil, fmt.Errorf("cql: ambiguous column %q (qualify it)", id.Name)
}

func evalBool(e Expr, b binding) (bool, error) {
	v, err := eval(e, b)
	if err != nil {
		return false, err
	}
	bv, ok := v.(bool)
	if !ok {
		return false, fmt.Errorf("cql: predicate is %T, not boolean", v)
	}
	return bv, nil
}

func toNum(v any) (float64, error) {
	switch n := v.(type) {
	case float64:
		return n, nil
	case int64:
		return float64(n), nil
	case int:
		return float64(n), nil
	case bool:
		if n {
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("cql: %T is not numeric", v)
}

// evalOverGroup evaluates a (possibly aggregate) expression over a group of
// bindings. Non-aggregate subexpressions are taken from the first binding.
func evalOverGroup(e Expr, group []binding) (any, error) {
	switch x := e.(type) {
	case *Call:
		if !aggregateFns[x.Fn] {
			return nil, fmt.Errorf("cql: unknown function %q", x.Fn)
		}
		if x.Fn == "COUNT" {
			if x.Star {
				return float64(len(group)), nil
			}
			n := 0
			for _, b := range group {
				if v, err := eval(x.Args[0], b); err == nil && v != nil {
					n++
				}
			}
			return float64(n), nil
		}
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("cql: %s takes one argument", x.Fn)
		}
		var sum float64
		minV := math.Inf(1)
		maxV := math.Inf(-1)
		n := 0
		for _, b := range group {
			v, err := eval(x.Args[0], b)
			if err != nil {
				return nil, err
			}
			f, err := toNum(v)
			if err != nil {
				return nil, err
			}
			sum += f
			if f < minV {
				minV = f
			}
			if f > maxV {
				maxV = f
			}
			n++
		}
		if n == 0 {
			return nil, nil
		}
		switch x.Fn {
		case "SUM":
			return sum, nil
		case "AVG":
			return sum / float64(n), nil
		case "MIN":
			return minV, nil
		case "MAX":
			return maxV, nil
		}
		return nil, fmt.Errorf("cql: unhandled aggregate %q", x.Fn)
	case *Binary:
		l, err := evalOverGroup(x.Left, group)
		if err != nil {
			return nil, err
		}
		r, err := evalOverGroup(x.Right, group)
		if err != nil {
			return nil, err
		}
		return evalBinary(&Binary{Op: x.Op, Left: litOf(l), Right: litOf(r)}, nil)
	case *Unary:
		v, err := evalOverGroup(x.X, group)
		if err != nil {
			return nil, err
		}
		return eval(&Unary{Op: x.Op, X: litOf(v)}, nil)
	default:
		if len(group) == 0 {
			return nil, fmt.Errorf("cql: empty group")
		}
		return eval(e, group[0])
	}
}

// litOf wraps an evaluated value back into a literal expression.
func litOf(v any) Expr {
	switch x := v.(type) {
	case float64:
		return &NumberLit{V: x}
	case string:
		return &StringLit{V: x}
	case bool:
		return &BoolLit{V: x}
	case int64:
		return &NumberLit{V: float64(x)}
	}
	return &NumberLit{V: 0}
}

// evalHaving evaluates a HAVING predicate over a group.
func evalHaving(e Expr, group []binding) (bool, error) {
	v, err := evalOverGroup(e, group)
	if err != nil {
		return false, err
	}
	b, ok := v.(bool)
	if !ok {
		return false, fmt.Errorf("cql: HAVING is %T, not boolean", v)
	}
	return b, nil
}
