package cql

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Row is one tuple: column name -> value (float64, string, bool or int64;
// int64 values are coerced to float64 in expressions).
type Row map[string]any

// OutputKind marks a stream output as an insertion or a deletion delta.
type OutputKind int

const (
	// Insert marks a tuple added to the result relation.
	Insert OutputKind = iota
	// Delete marks a tuple removed from the result relation.
	Delete
)

// Output is one emitted stream element.
type Output struct {
	Ts   int64
	Kind OutputKind
	Row  Row
}

// Executor incrementally evaluates one continuous query. Tuples must be
// pushed in non-decreasing timestamp order (pair with an upstream reorder
// stage for disordered inputs).
type Executor struct {
	stmt *SelectStmt
	wins []*winBuf
	// prev is the previous instantaneous result relation as a bag.
	prevCounts map[string]int
	prevRows   map[string]Row
	// lastSlide is only meaningful once slidePrimed is set: initializing it
	// to a fixed boundary would silently suppress every tuple of that first
	// slide period (tuples with ts/slide == 0 used to be dropped).
	lastSlide   int64
	slidePrimed bool
	hasSlide    bool
	slide       int64
}

type winBuf struct {
	ref     StreamRef
	entries []winEntry
}

type winEntry struct {
	ts  int64
	row Row
}

// NewExecutor validates and prepares a parsed query.
func NewExecutor(stmt *SelectStmt) (*Executor, error) {
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("cql: query has no FROM clause")
	}
	names := map[string]bool{}
	ex := &Executor{stmt: stmt, prevCounts: map[string]int{}, prevRows: map[string]Row{}}
	for _, ref := range stmt.From {
		n := ref.name()
		if names[n] {
			return nil, fmt.Errorf("cql: duplicate stream binding %q (use AS aliases)", n)
		}
		names[n] = true
		ex.wins = append(ex.wins, &winBuf{ref: ref})
		if ref.Window.Slide > 0 {
			// The executor gates evaluation on one shared slide; silently
			// keeping only the last ref's value would make the other windows'
			// SLIDE clauses dead letters.
			if ex.hasSlide && ex.slide != ref.Window.Slide {
				return nil, fmt.Errorf("cql: FROM refs declare different SLIDE values (%d vs %d); all windowed refs must share one slide", ex.slide, ref.Window.Slide)
			}
			ex.hasSlide = true
			ex.slide = ref.Window.Slide
		}
	}
	// Aggregate queries: every non-aggregate select item must appear in
	// GROUP BY (checked syntactically by string form).
	agg := len(stmt.GroupBy) > 0
	for _, it := range stmt.Items {
		if !it.Star && isAggregate(it.Expr) {
			agg = true
		}
	}
	if agg {
		groupSet := map[string]bool{}
		for _, g := range stmt.GroupBy {
			groupSet[exprKey(g)] = true
		}
		for _, it := range stmt.Items {
			if it.Star {
				return nil, fmt.Errorf("cql: SELECT * is not allowed with aggregation")
			}
			if !isAggregate(it.Expr) && !groupSet[exprKey(it.Expr)] {
				return nil, fmt.Errorf("cql: non-aggregate select item %q not in GROUP BY", exprKey(it.Expr))
			}
		}
	}
	return ex, nil
}

// Streams returns the distinct stream names the query reads from, in FROM
// order — serving layers use this to validate references and route taps.
func (ex *Executor) Streams() []string {
	seen := map[string]bool{}
	var out []string
	for _, w := range ex.wins {
		if !seen[w.ref.Stream] {
			seen[w.ref.Stream] = true
			out = append(out, w.ref.Stream)
		}
	}
	return out
}

// MustPrepare parses and prepares a query, panicking on error.
func MustPrepare(src string) *Executor {
	stmt, err := Parse(src)
	if err != nil {
		panic(err)
	}
	ex, err := NewExecutor(stmt)
	if err != nil {
		panic(err)
	}
	return ex
}

// Prepare parses and validates a query.
func Prepare(src string) (*Executor, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return NewExecutor(stmt)
}

// Push feeds one tuple into the named stream at the given timestamp and
// returns the emitted outputs.
func (ex *Executor) Push(stream string, ts int64, row Row) ([]Output, error) {
	matched := false
	for _, w := range ex.wins {
		if w.ref.Stream == stream {
			w.entries = append(w.entries, winEntry{ts: ts, row: row})
			matched = true
		}
	}
	if !matched {
		return nil, fmt.Errorf("cql: tuple for unknown stream %q", stream)
	}
	if ex.hasSlide {
		boundary := ts / ex.slide
		if ex.slidePrimed && boundary == ex.lastSlide {
			return nil, nil
		}
		ex.slidePrimed = true
		ex.lastSlide = boundary
	}
	return ex.AdvanceTo(ts)
}

// AdvanceTo evaluates the query at the given instant without inserting a
// tuple — needed to observe pure expirations (DSTREAM deltas with no
// arrivals).
func (ex *Executor) AdvanceTo(ts int64) ([]Output, error) {
	for _, w := range ex.wins {
		w.expire(ts)
	}
	rel, err := ex.evaluate()
	if err != nil {
		return nil, err
	}
	return ex.diff(ts, rel), nil
}

// expire applies the stream-to-relation window at instant ts.
func (w *winBuf) expire(ts int64) {
	switch w.ref.Window.Kind {
	case WindowUnbounded:
	case WindowNow:
		kept := w.entries[:0]
		for _, e := range w.entries {
			if e.ts == ts {
				kept = append(kept, e)
			}
		}
		w.entries = kept
	case WindowRange:
		cut := ts - w.ref.Window.N
		i := 0
		for i < len(w.entries) && w.entries[i].ts <= cut {
			i++
		}
		w.entries = w.entries[i:]
	case WindowRows:
		if int64(len(w.entries)) > w.ref.Window.N {
			w.entries = w.entries[int64(len(w.entries))-w.ref.Window.N:]
		}
	}
}

// binding maps a FROM-ref name to the row bound from its window.
type binding map[string]Row

// evaluate computes the instantaneous result relation.
func (ex *Executor) evaluate() ([]Row, error) {
	// Cartesian product across windows, filtered by JOIN ON + WHERE.
	bindings := []binding{{}}
	for _, w := range ex.wins {
		var next []binding
		for _, b := range bindings {
			for _, e := range w.entries {
				nb := make(binding, len(b)+1)
				for k, v := range b {
					nb[k] = v
				}
				nb[w.ref.name()] = e.row
				if w.ref.JoinOn != nil {
					ok, err := evalBool(w.ref.JoinOn, nb)
					if err != nil {
						return nil, err
					}
					if !ok {
						continue
					}
				}
				next = append(next, nb)
			}
		}
		bindings = next
	}
	if ex.stmt.Where != nil {
		kept := bindings[:0]
		for _, b := range bindings {
			ok, err := evalBool(ex.stmt.Where, b)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, b)
			}
		}
		bindings = kept
	}

	grouped := len(ex.stmt.GroupBy) > 0
	for _, it := range ex.stmt.Items {
		if !it.Star && isAggregate(it.Expr) {
			grouped = true
		}
	}
	if !grouped {
		out := make([]Row, 0, len(bindings))
		for _, b := range bindings {
			row, err := ex.project(b)
			if err != nil {
				return nil, err
			}
			out = append(out, row)
		}
		return out, nil
	}

	// Grouped aggregation.
	groups := map[string][]binding{}
	var order []string
	for _, b := range bindings {
		var parts []string
		for _, g := range ex.stmt.GroupBy {
			v, err := eval(g, b)
			if err != nil {
				return nil, err
			}
			parts = append(parts, keyPart(v))
		}
		k := strings.Join(parts, "\x00")
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], b)
	}
	var out []Row
	for _, k := range order {
		gb := groups[k]
		row := Row{}
		for i, it := range ex.stmt.Items {
			v, err := evalOverGroup(it.Expr, gb)
			if err != nil {
				return nil, err
			}
			row[it.outName(i)] = v
		}
		if ex.stmt.Having != nil {
			ok, err := evalHaving(ex.stmt.Having, gb)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// project builds one output row from a binding.
func (ex *Executor) project(b binding) (Row, error) {
	row := Row{}
	for i, it := range ex.stmt.Items {
		if it.Star {
			if len(ex.wins) == 1 {
				for k, v := range b[ex.wins[0].ref.name()] {
					row[k] = v
				}
			} else {
				for name, r := range b {
					for k, v := range r {
						row[name+"."+k] = v
					}
				}
			}
			continue
		}
		v, err := eval(it.Expr, b)
		if err != nil {
			return nil, err
		}
		row[it.outName(i)] = v
	}
	return row, nil
}

// diff compares the new relation against the previous instant's and emits
// the configured deltas.
func (ex *Executor) diff(ts int64, rel []Row) []Output {
	cur := map[string]int{}
	curRows := map[string]Row{}
	for _, r := range rel {
		k := rowKey(r)
		cur[k]++
		curRows[k] = r
	}
	var out []Output
	switch ex.stmt.Emit {
	case EmitRStream:
		for _, r := range rel {
			out = append(out, Output{Ts: ts, Kind: Insert, Row: r})
		}
	case EmitIStream:
		for k, n := range cur {
			for d := ex.prevCounts[k]; d < n; d++ {
				out = append(out, Output{Ts: ts, Kind: Insert, Row: curRows[k]})
			}
		}
	case EmitDStream:
		for k, n := range ex.prevCounts {
			for d := cur[k]; d < n; d++ {
				out = append(out, Output{Ts: ts, Kind: Delete, Row: ex.prevRows[k]})
			}
		}
	}
	ex.prevCounts = cur
	ex.prevRows = curRows
	sort.Slice(out, func(i, j int) bool { return rowKey(out[i].Row) < rowKey(out[j].Row) })
	return out
}

// rowKey canonicalises a row for bag comparison.
func rowKey(r Row) string {
	keys := make([]string, 0, len(r))
	for k := range r {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%s;", k, keyPart(r[k]))
	}
	return sb.String()
}

// keyPart canonicalises one value for rowKey and GROUP BY keys with a type
// tag, so values that print alike but differ in type — int64(1), float64(1),
// "1" — cannot collide (a collision corrupts the IStream/DStream bag diff and
// merges distinct groups). Strings are quoted so embedded separators cannot
// forge a composite key either.
func keyPart(v any) string {
	switch x := v.(type) {
	case nil:
		return "_"
	case string:
		return "s:" + strconv.Quote(x)
	case bool:
		return "b:" + strconv.FormatBool(x)
	case int64:
		return "i:" + strconv.FormatInt(x, 10)
	case float64:
		return "f:" + strconv.FormatFloat(x, 'g', -1, 64)
	default:
		return fmt.Sprintf("%T:%v", x, x)
	}
}

// exprKey canonicalises an expression for GROUP BY matching.
func exprKey(e Expr) string {
	switch x := e.(type) {
	case *Ident:
		if x.Qualifier != "" {
			return x.Qualifier + "." + x.Name
		}
		return x.Name
	case *NumberLit:
		return fmt.Sprint(x.V)
	case *StringLit:
		return "'" + x.V + "'"
	case *BoolLit:
		return fmt.Sprint(x.V)
	case *Binary:
		return "(" + exprKey(x.Left) + x.Op + exprKey(x.Right) + ")"
	case *Unary:
		return x.Op + exprKey(x.X)
	case *Call:
		var args []string
		if x.Star {
			args = append(args, "*")
		}
		for _, a := range x.Args {
			args = append(args, exprKey(a))
		}
		return x.Fn + "(" + strings.Join(args, ",") + ")"
	}
	return "?"
}
