// Package cql implements a CQL-style continuous query language (§2.1 of the
// paper: "Virtually every attempt to create a standard language for streams
// has been an extension of SQL ... Most noteworthy examples were CQL and its
// derivatives"). The package provides the classic three-layer semantics of
// Arasu, Babu & Widom's CQL:
//
//   - stream-to-relation operators: sliding windows — [RANGE n], [ROWS n],
//     [NOW], [UNBOUNDED];
//   - relation-to-relation operators: selection, projection, joins, grouped
//     aggregation (plain SQL over the instantaneous relation);
//   - relation-to-stream operators: ISTREAM, DSTREAM, RSTREAM.
//
// Queries are parsed by a hand-written lexer/recursive-descent parser and
// executed incrementally: each arriving element advances the window state
// and emits the stream delta the relation-to-stream operator defines.
package cql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol
)

// token is one lexical unit.
type token struct {
	kind tokenKind
	text string // keywords are upper-cased
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"AS": true, "RANGE": true, "ROWS": true, "SLIDE": true, "NOW": true,
	"UNBOUNDED": true, "ISTREAM": true, "DSTREAM": true, "RSTREAM": true,
	"AND": true, "OR": true, "NOT": true, "JOIN": true, "ON": true,
	"HAVING": true, "TRUE": true, "FALSE": true,
}

// lex tokenises a query string.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := rune(src[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(src) && (isIdentChar(rune(src[j]))) {
				j++
			}
			word := src[i:j]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{kind: tokKeyword, text: up, pos: i})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: i})
			}
			i = j
		case unicode.IsDigit(c):
			j := i
			seenDot := false
			for j < len(src) && (unicode.IsDigit(rune(src[j])) || (src[j] == '.' && !seenDot)) {
				if src[j] == '.' {
					seenDot = true
				}
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: src[i:j], pos: i})
			i = j
		case c == '\'':
			j := i + 1
			for j < len(src) && src[j] != '\'' {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("cql: unterminated string at %d", i)
			}
			toks = append(toks, token{kind: tokString, text: src[i+1 : j], pos: i})
			i = j + 1
		default:
			// Multi-char operators first.
			for _, op := range []string{"<=", ">=", "!=", "<>"} {
				if strings.HasPrefix(src[i:], op) {
					toks = append(toks, token{kind: tokSymbol, text: op, pos: i})
					i += len(op)
					goto next
				}
			}
			if strings.ContainsRune("=<>+-*/,().;[]", c) {
				toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
				i++
			} else {
				return nil, fmt.Errorf("cql: unexpected character %q at %d", c, i)
			}
		next:
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(src)})
	return toks, nil
}

func isIdentChar(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_'
}
