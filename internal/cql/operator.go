package cql

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/state"
)

func init() {
	state.RegisterType(Row{})
}

// Operator runs a continuous CQL query as a dataflow operator: each input
// event's value must be a Row (or convertible via the extract function);
// emitted stream deltas flow downstream with the query's relation-to-stream
// semantics. The executor's windows live in the operator instance, so run it
// with parallelism 1 unless the query is partitionable by key.
func Operator(s *core.Stream, name, query, inputStream string, extract func(e core.Event) (Row, bool)) *core.Stream {
	fac := func() core.Operator {
		return &cqlOperator{query: query, stream: inputStream, extract: extract}
	}
	return s.ProcessWith(name, fac, 1)
}

type cqlOperator struct {
	core.BaseOperator
	query   string
	stream  string
	extract func(e core.Event) (Row, bool)
	ex      *Executor
}

// Open compiles the query.
func (o *cqlOperator) Open(core.Context) error {
	ex, err := Prepare(o.query)
	if err != nil {
		return fmt.Errorf("cql operator: %w", err)
	}
	o.ex = ex
	return nil
}

func (o *cqlOperator) ProcessElement(e core.Event, ctx core.Context) error {
	row, ok := o.extract(e)
	if !ok {
		return nil
	}
	outs, err := o.ex.Push(o.stream, e.Timestamp, row)
	if err != nil {
		return err
	}
	for _, out := range outs {
		kind := "+"
		if out.Kind == Delete {
			kind = "-"
		}
		ctx.Emit(core.Event{Key: kind, Timestamp: out.Ts, Value: out.Row})
	}
	return nil
}

// ProcessBatch implements core.BatchOperator: rows are pushed through the
// executor in arrival order exactly as the per-record path would, so output
// deltas are identical; the whole-batch call elides the per-record dispatch
// and key-scoping overhead that dominates projection-only (stateless SELECT)
// queries.
func (o *cqlOperator) ProcessBatch(cols *core.Columns, ctx core.BatchContext) error {
	for i := range cols.Events {
		ctx.SetKey(cols.Events[i].Key)
		if err := o.ProcessElement(cols.Events[i], ctx); err != nil {
			return err
		}
	}
	return nil
}

// OnWatermark advances the executor so pure expirations (DSTREAM deltas) are
// observed even without new arrivals.
func (o *cqlOperator) OnWatermark(wm int64, ctx core.Context) error {
	if wm < 0 || wm > 1<<60 {
		return nil // ignore the sentinel final watermark
	}
	outs, err := o.ex.AdvanceTo(wm)
	if err != nil {
		return err
	}
	for _, out := range outs {
		kind := "+"
		if out.Kind == Delete {
			kind = "-"
		}
		ctx.Emit(core.Event{Key: kind, Timestamp: out.Ts, Value: out.Row})
	}
	return nil
}
