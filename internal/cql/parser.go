package cql

import (
	"fmt"
	"strconv"
)

// Parse compiles one continuous query. Grammar (informally):
//
//	query   := [ISTREAM|DSTREAM|RSTREAM] '(' select ')' | select
//	select  := SELECT items FROM refs [WHERE expr] [GROUP BY exprs] [HAVING expr]
//	items   := '*' | item (',' item)*
//	item    := expr [AS ident]
//	refs    := ref ((',' | JOIN) ref [ON expr])*
//	ref     := ident ['[' window ']'] [AS? ident]
//	window  := RANGE number [SLIDE number] | ROWS number | NOW | UNBOUNDED
func Parse(src string) (*SelectStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	p.acceptSym(";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input starting at %q", p.cur().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) acceptKw(kw string) bool {
	if p.at(tokKeyword, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptSym(s string) bool {
	if p.at(tokSymbol, s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s, got %q", kw, p.cur().text)
	}
	return nil
}

func (p *parser) expectSym(s string) error {
	if !p.acceptSym(s) {
		return p.errf("expected %q, got %q", s, p.cur().text)
	}
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("cql: parse error at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseQuery() (*SelectStmt, error) {
	emit := EmitIStream
	wrapped := false
	switch {
	case p.acceptKw("ISTREAM"):
		emit, wrapped = EmitIStream, true
	case p.acceptKw("DSTREAM"):
		emit, wrapped = EmitDStream, true
	case p.acceptKw("RSTREAM"):
		emit, wrapped = EmitRStream, true
	}
	if wrapped {
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
	}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	stmt.Emit = emit
	if wrapped {
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	for {
		if p.acceptSym("*") {
			stmt.Items = append(stmt.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKw("AS") {
				if !p.at(tokIdent, "") {
					return nil, p.errf("expected alias after AS")
				}
				item.Alias = p.next().text
			}
			stmt.Items = append(stmt.Items, item)
		}
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	first, err := p.parseStreamRef()
	if err != nil {
		return nil, err
	}
	stmt.From = append(stmt.From, first)
	for {
		if p.acceptSym(",") {
			ref, err := p.parseStreamRef()
			if err != nil {
				return nil, err
			}
			stmt.From = append(stmt.From, ref)
			continue
		}
		if p.acceptKw("JOIN") {
			jref, err := p.parseStreamRef()
			if err != nil {
				return nil, err
			}
			if p.acceptKw("ON") {
				cond, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				jref.JoinOn = cond
			}
			stmt.From = append(stmt.From, jref)
			continue
		}
		break
	}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.acceptSym(",") {
				break
			}
		}
	}
	if p.acceptKw("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	return stmt, nil
}

func (p *parser) parseStreamRef() (StreamRef, error) {
	var ref StreamRef
	if !p.at(tokIdent, "") {
		return ref, p.errf("expected stream name, got %q", p.cur().text)
	}
	ref.Stream = p.next().text
	ref.Window = WindowSpec{Kind: WindowUnbounded}
	if p.acceptSym("[") {
		switch {
		case p.acceptKw("RANGE"):
			n, err := p.parseNumberTok()
			if err != nil {
				return ref, err
			}
			ref.Window = WindowSpec{Kind: WindowRange, N: n}
			if p.acceptKw("SLIDE") {
				s, err := p.parseNumberTok()
				if err != nil {
					return ref, err
				}
				ref.Window.Slide = s
			}
		case p.acceptKw("ROWS"):
			n, err := p.parseNumberTok()
			if err != nil {
				return ref, err
			}
			ref.Window = WindowSpec{Kind: WindowRows, N: n}
		case p.acceptKw("NOW"):
			ref.Window = WindowSpec{Kind: WindowNow}
		case p.acceptKw("UNBOUNDED"):
			ref.Window = WindowSpec{Kind: WindowUnbounded}
		default:
			return ref, p.errf("expected window spec, got %q", p.cur().text)
		}
		if err := p.expectSym("]"); err != nil {
			return ref, err
		}
	}
	if p.acceptKw("AS") {
		if !p.at(tokIdent, "") {
			return ref, p.errf("expected alias after AS")
		}
		ref.Alias = p.next().text
	} else if p.at(tokIdent, "") {
		ref.Alias = p.next().text
	}
	return ref, nil
}

func (p *parser) parseNumberTok() (int64, error) {
	if !p.at(tokNumber, "") {
		return 0, p.errf("expected number, got %q", p.cur().text)
	}
	v, err := strconv.ParseInt(p.next().text, 10, 64)
	if err != nil {
		return 0, p.errf("bad number: %v", err)
	}
	return v, nil
}

// Expression grammar with precedence: OR < AND < NOT < comparison < additive
// < multiplicative < unary < primary.
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKw("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"<=", ">=", "!=", "<>", "=", "<", ">"} {
		if p.at(tokSymbol, op) {
			p.pos++
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if op == "<>" {
				op = "!="
			}
			return &Binary{Op: op, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptSym("+"):
			op = "+"
		case p.acceptSym("-"):
			op = "-"
		default:
			return left, nil
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptSym("*"):
			op = "*"
		case p.acceptSym("/"):
			op = "/"
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptSym("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.pos++
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &NumberLit{V: v}, nil
	case t.kind == tokString:
		p.pos++
		return &StringLit{V: t.text}, nil
	case t.kind == tokKeyword && t.text == "TRUE":
		p.pos++
		return &BoolLit{V: true}, nil
	case t.kind == tokKeyword && t.text == "FALSE":
		p.pos++
		return &BoolLit{V: false}, nil
	case t.kind == tokSymbol && t.text == "(":
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		p.pos++
		name := t.text
		// Function call?
		if p.acceptSym("(") {
			call := &Call{Fn: upper(name)}
			if p.acceptSym("*") {
				call.Star = true
			} else if !p.at(tokSymbol, ")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.acceptSym(",") {
						break
					}
				}
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		// Qualified identifier?
		if p.acceptSym(".") {
			if !p.at(tokIdent, "") {
				return nil, p.errf("expected column after %q.", name)
			}
			col := p.next().text
			return &Ident{Qualifier: name, Name: col}, nil
		}
		return &Ident{Name: name}, nil
	}
	return nil, p.errf("unexpected token %q", t.text)
}

func upper(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'a' && b[i] <= 'z' {
			b[i] -= 32
		}
	}
	return string(b)
}
