// Package elastic closes the reconfiguration loop that §3.3/§4.2 of the
// paper present as the defining second→third-generation capability: instead
// of simulating elasticity (internal/load/sim.go), a Controller watches a
// *running* core.Job's metrics, feeds them to a DS2-style load.ScalingPolicy,
// and when the decision changes executes the full online rescale —
//
//	trigger stop-with-savepoint → RescaleCheckpoint to the new parallelism
//	→ rebuild the physical job → RestoreFrom the rescaled checkpoint → resume
//
// The loop is crash-tolerant: every step of the window (savepoint committed
// but rescale not started, rescale mid-write, restore mid-read) recovers by
// rolling back to the latest *completed* checkpoint and deriving the
// parallelism to rebuild with from that checkpoint's own instance list, so a
// crash can never strand the job between two parallelisms. Output across all
// incarnations is merged exactly-once with ha.Dedup, and under a
// deterministic keyed pipeline it is byte-identical to a fixed-parallelism
// run (the E17 equality experiment).
package elastic

import (
	"context"
	"fmt"
	"io"
	"log"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ha"
	"repro/internal/load"
	"repro/internal/metrics"
	"repro/internal/obsv"
	"repro/internal/state"
)

// BuildFunc constructs a fresh job with the scaled node at the given
// parallelism, writing results to sink and checkpointing to store. It is the
// elastic analogue of ha.JobFactory: the controller calls it for every
// incarnation — initial start, each rescale, and each crash recovery — so it
// must produce the same logical pipeline every time, varying only the
// parallelism. Nodes other than the scaled one (sources in particular) must
// keep a fixed parallelism across calls, because their checkpointed state is
// restored per-instance without redistribution.
type BuildFunc func(parallelism int, sink *core.CollectSink, store core.SnapshotStore) (*core.Job, error)

// Sample is one observation of the scaled node, the input to a scaling
// decision.
type Sample struct {
	// InputRate is the records/s arriving at the node, measured on the wall
	// clock. Under backpressure this is the *throttled* rate, not demand.
	InputRate float64
	// TrueRate is the DS2 "true processing rate": records per second of
	// busy (useful-work) time per instance — what one instance could do if
	// never idle. Non-finite before the node has done any work; the policy
	// holds the current parallelism on non-finite rates.
	TrueRate float64
	// BlockedFraction estimates the fraction of wall time upstream senders
	// spent blocked on the node's inboxes (0 when no Upstream is configured).
	// The controller inflates InputRate by 1/(1-BlockedFraction) to recover
	// offered demand from the throttled observation.
	BlockedFraction float64
	// Parallelism is the node's parallelism when the sample was taken.
	Parallelism int
	// Records counts records the node has received across all incarnations.
	// It is monotone but may double-count the replayed tail after a restore;
	// scripted deciders use it as a stream-position clock.
	Records int64
}

// RescaleEvent records one completed live reconfiguration.
type RescaleEvent struct {
	From, To int
	// SavepointID is the checkpoint the rescale consumed (normally the
	// stop-with-savepoint's checkpoint; the latest completed one if the
	// savepoint itself aborted). RescaledID = SavepointID+1 is the
	// synthesised checkpoint the new incarnation restored from.
	SavepointID int64
	RescaledID  int64
	// StateBytes and Timers account the redistributed state volume.
	StateBytes int64
	Timers     int
	// Downtime is the output gap: savepoint trigger accepted → first output
	// of the re-parallelised incarnation (or its clean finish when the
	// remaining stream produced no output).
	Downtime time.Duration
	// Offline is the span with no job running: old incarnation exited →
	// new incarnation launched (RescaleCheckpoint + rebuild).
	Offline time.Duration
}

// Report summarises a controller run.
type Report struct {
	Rescales []RescaleEvent
	// Attempts counts job incarnations (1 + rescales + restarts).
	Attempts int
	// Restarts counts crash recoveries (not planned rescales).
	Restarts         int
	FinalParallelism int
	// Output and Duplicates account for the exactly-once merge of all
	// incarnations' sink output.
	Output     int
	Duplicates int
}

// ScaleUps counts rescales that increased parallelism.
func (r Report) ScaleUps() int {
	n := 0
	for _, e := range r.Rescales {
		if e.To > e.From {
			n++
		}
	}
	return n
}

// ScaleDowns counts rescales that decreased parallelism.
func (r Report) ScaleDowns() int {
	n := 0
	for _, e := range r.Rescales {
		if e.To < e.From {
			n++
		}
	}
	return n
}

// Config parameterises a Controller.
type Config struct {
	// Node is the operator node the controller scales.
	Node string
	// Upstream optionally names the node feeding Node; when set, the edge's
	// blocked-send histogram drives the backpressure correction.
	Upstream string
	// UpstreamParallelism is the sender count on that edge (default 1),
	// needed to turn summed blocked-nanoseconds into a wall-time fraction.
	UpstreamParallelism int

	Build BuildFunc
	Store core.SnapshotStore

	// Policy maps measured rates to a target parallelism. Required unless
	// Decider is set.
	Policy *load.ScalingPolicy
	// Decider, when non-nil, replaces Policy: it receives each sample and
	// returns the target parallelism. Tests use it to script deterministic
	// rescale points; the rate-driven path is the default.
	Decider func(s Sample, current int) int

	// InitialParallelism is the scaled node's starting parallelism
	// (default 1). NumKeyGroups must match the built jobs' key-group count
	// (default state.DefaultKeyGroups).
	InitialParallelism int
	NumKeyGroups       int

	// SampleEvery is the metric sampling/decision interval (default 10ms).
	SampleEvery time.Duration

	// Restart bounds crash recovery, exactly as in ha.RunSupervised.
	Restart ha.RestartStrategy

	// OnStart observes each incarnation before it runs; fault injectors use
	// it to re-aim kill switches.
	OnStart func(attempt int, job *core.Job)

	Tracer *obsv.Tracer
	Logger io.Writer
}

// Controller drives the elastic loop. Build one with New, run it with Run.
type Controller struct {
	cfg Config
	reg *metrics.Registry
	log *log.Logger

	mu          sync.Mutex
	job         *core.Job // current incarnation, for Describe
	par         int
	rescales    int64
	restarts    int64
	lastDownMs  int64
	lastOffMs   int64
	baseRecords int64 // records consumed by finished incarnations
}

// New validates cfg and returns a controller.
func New(cfg Config) (*Controller, error) {
	if cfg.Node == "" {
		return nil, fmt.Errorf("elastic: Config.Node is required")
	}
	if cfg.Build == nil {
		return nil, fmt.Errorf("elastic: Config.Build is required")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("elastic: Config.Store is required")
	}
	if cfg.Policy == nil && cfg.Decider == nil {
		return nil, fmt.Errorf("elastic: one of Config.Policy or Config.Decider is required")
	}
	if cfg.InitialParallelism < 1 {
		cfg.InitialParallelism = 1
	}
	if cfg.NumKeyGroups <= 0 {
		cfg.NumKeyGroups = state.DefaultKeyGroups
	}
	if cfg.UpstreamParallelism < 1 {
		cfg.UpstreamParallelism = 1
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 10 * time.Millisecond
	}
	if cfg.Restart.MaxRestarts <= 0 {
		cfg.Restart.MaxRestarts = 3
	}
	if cfg.Restart.Delay <= 0 {
		cfg.Restart.Delay = 10 * time.Millisecond
	}
	c := &Controller{cfg: cfg, reg: metrics.NewRegistry(), log: log.New(io.Discard, "", 0)}
	if cfg.Logger != nil {
		c.log = log.New(cfg.Logger, "[elastic:"+cfg.Node+"] ", log.Lmicroseconds)
	}
	c.par = cfg.InitialParallelism
	return c, nil
}

// Metrics returns the controller's registry (elastic.* series).
func (c *Controller) Metrics() *metrics.Registry { return c.reg }

// CurrentParallelism returns the scaled node's parallelism right now.
func (c *Controller) CurrentParallelism() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.par
}

// Describe reports the current incarnation's topology with the controller's
// rescale lineage counters filled in, for the /jobs endpoint.
func (c *Controller) Describe() []obsv.JobInfo {
	c.mu.Lock()
	job := c.job
	rescales, restarts := c.rescales, c.restarts
	downMs, offMs := c.lastDownMs, c.lastOffMs
	c.mu.Unlock()
	if job == nil {
		return nil
	}
	info := job.Describe()
	info.Rescales = rescales
	info.Restarts = restarts
	info.LastRescaleDowntimeMs = downMs
	info.LastRescaleDurationMs = offMs
	return []obsv.JobInfo{info}
}

// ServeIntrospection starts an HTTP server exposing the controller's
// elastic.* metrics and the current incarnation under /jobs.
func (c *Controller) ServeIntrospection(addr string) (*obsv.Server, error) {
	s := obsv.NewServer(c.reg, c.cfg.Tracer, c.Describe)
	if err := s.Start(addr); err != nil {
		return nil, err
	}
	return s, nil
}

func (c *Controller) setCurrent(job *core.Job, par int) {
	c.mu.Lock()
	c.job = job
	c.par = par
	c.mu.Unlock()
	c.reg.Gauge("elastic.parallelism").Set(int64(par))
}

func (c *Controller) decide(s Sample, current int) int {
	if c.cfg.Decider != nil {
		return c.cfg.Decider(s, current)
	}
	demand := s.InputRate
	if f := s.BlockedFraction; f > 0 && f < 1 {
		// The node admitted InputRate while its senders were blocked for
		// fraction f of the wall clock: the offered rate is what would have
		// arrived had they never stalled.
		demand = s.InputRate / (1 - f)
	}
	return c.cfg.Policy.Decide(demand, s.TrueRate, current)
}

func (c *Controller) publish(s Sample) {
	c.reg.Gauge("elastic.input_rate").Set(int64(s.InputRate))
	if !math.IsNaN(s.TrueRate) && !math.IsInf(s.TrueRate, 0) {
		c.reg.Gauge("elastic.true_rate").Set(int64(s.TrueRate))
	}
	c.reg.Gauge("elastic.blocked_pct").Set(int64(s.BlockedFraction * 100))
}

// pendingRescale tracks a reconfiguration from savepoint trigger until the
// new incarnation proves liveness (first output), which closes the downtime
// window.
type pendingRescale struct {
	ev           RescaleEvent
	triggeredAt  time.Time
	offlineStart time.Time
	launched     bool
}

// Run drives the pipeline to natural completion under elastic control,
// returning the deduplicated output of every incarnation. The stream ends
// when an incarnation finishes without having been savepoint-stopped; crashes
// are retried per cfg.Restart; ctx cancellation aborts the run.
func (c *Controller) Run(ctx context.Context) ([]core.Event, Report, error) {
	cfg := c.cfg
	var rep Report
	var sinks []*core.CollectSink
	par := cfg.InitialParallelism
	restoreCP := int64(-1)
	restarts := 0
	var pending *pendingRescale

	for attempt := 0; ; attempt++ {
		sink := core.NewCollectSink()
		job, err := cfg.Build(par, sink, cfg.Store)
		if err != nil {
			return nil, rep, fmt.Errorf("elastic: build attempt %d: %w", attempt, err)
		}
		if restoreCP >= 0 {
			job.RestoreFrom(restoreCP)
		}
		c.setCurrent(job, par)
		if cfg.OnStart != nil {
			cfg.OnStart(attempt, job)
		}
		rep.Attempts++
		sinks = append(sinks, sink)

		// While a rescale (or the recovery after a mid-rescale crash) is in
		// flight, watch for this incarnation's first output: it closes the
		// downtime window.
		var firstOut chan time.Time
		var watchStop chan struct{}
		if pending != nil {
			if !pending.launched {
				pending.ev.Offline = time.Since(pending.offlineStart)
				pending.launched = true
			}
			firstOut = make(chan time.Time, 1)
			watchStop = make(chan struct{})
			go func() {
				for {
					if sink.Len() > 0 {
						firstOut <- time.Now()
						return
					}
					select {
					case <-watchStop:
						return
					default:
						time.Sleep(50 * time.Microsecond)
					}
				}
			}()
		}

		done := make(chan error, 1)
		go func() { done <- job.Run(ctx) }()

		smp := newSampler(job.Metrics(), cfg.Node, cfg.Upstream, cfg.UpstreamParallelism, par, c.baseRecords)
		ticker := time.NewTicker(cfg.SampleEvery)
		var triggeredAt time.Time
		target := 0
		var runErr error
	sampleLoop:
		for {
			select {
			case runErr = <-done:
				break sampleLoop
			case <-ticker.C:
				s := smp.sample()
				c.publish(s)
				if target != 0 {
					continue // savepoint already accepted; ride it out
				}
				want := c.decide(s, par)
				if want < 1 || want == par {
					continue
				}
				// TriggerSavepoint can reject when the request queue is
				// full; an accepted savepoint is never dropped, so retry on
				// the next tick rather than assuming.
				if job.TriggerSavepoint() {
					target = want
					triggeredAt = time.Now()
					c.log.Printf("rescale %d -> %d requested (in=%.0f/s true=%.0f/s blocked=%d%%)",
						par, want, s.InputRate, s.TrueRate, int(s.BlockedFraction*100))
				}
			}
		}
		ticker.Stop()
		c.baseRecords += job.Metrics().Counter("node." + cfg.Node + ".in").Value()

		// Close the previous rescale's downtime window if this incarnation
		// produced output (or legitimately finished without any).
		if watchStop != nil {
			close(watchStop)
			var at time.Time
			select {
			case at = <-firstOut:
			default:
				if sink.Len() > 0 || (runErr == nil && !job.SavepointStopped()) {
					at = time.Now()
				}
			}
			if !at.IsZero() {
				c.finishRescale(&rep, pending, at)
				pending = nil
			}
			// Otherwise (crashed again before any output) the window stays
			// open into the next incarnation.
		}

		if runErr != nil {
			if ctx.Err() != nil {
				return nil, rep, ctx.Err()
			}
			if restarts >= cfg.Restart.MaxRestarts {
				return nil, rep, fmt.Errorf("elastic: job failed after %d attempts: %w", rep.Attempts, runErr)
			}
			restarts++
			rep.Restarts++
			c.mu.Lock()
			c.restarts++
			c.mu.Unlock()
			c.reg.Counter("elastic.restarts").Inc()
			c.log.Printf("attempt %d failed: %v", attempt, runErr)
			select {
			case <-time.After(cfg.Restart.Delay):
			case <-ctx.Done():
				return nil, rep, ctx.Err()
			}
			// Roll back to the latest completed checkpoint — which may sit on
			// either side of a crashed reconfiguration — and rebuild at THAT
			// checkpoint's parallelism, derived from its own instance list.
			if meta, ok := cfg.Store.Latest(); ok {
				restoreCP = meta.ID
				if p := core.NodeParallelismIn(meta, cfg.Node); p > 0 {
					par = p
				}
			} else {
				restoreCP = -1
				par = cfg.InitialParallelism
			}
			continue
		}

		if target != 0 && job.SavepointStopped() {
			// Planned reconfiguration: the savepoint stopped the sources.
			// Rescale from the latest completed checkpoint — normally the
			// savepoint itself; an older one if the savepoint aborted on a
			// snapshot failure (the replayed tail then re-emits, and the
			// dedup merge suppresses it).
			offStart := time.Now()
			meta, ok := cfg.Store.Latest()
			if !ok {
				// Nothing completed yet: nothing to redistribute, so just
				// rebuild fresh at the target parallelism.
				c.log.Printf("rescale %d -> %d with no completed checkpoint; fresh start", par, target)
				pending = &pendingRescale{
					ev:           RescaleEvent{From: par, To: target, SavepointID: -1, RescaledID: -1},
					triggeredAt:  triggeredAt,
					offlineStart: offStart,
				}
				c.noteRescale()
				restoreCP = -1
				par = target
				continue
			}
			stats, err := core.RescaleCheckpointTraced(cfg.Tracer, cfg.Store, meta.ID, meta.ID+1, cfg.Node, target, cfg.NumKeyGroups)
			if err != nil {
				// A failed rescale is a crash inside the reconfiguration
				// window: recover from the latest completed checkpoint like
				// any other failure. The decision logic will re-trigger the
				// rescale once the job is healthy again.
				if restarts >= cfg.Restart.MaxRestarts {
					return nil, rep, fmt.Errorf("elastic: rescale %d -> %d failed after %d attempts: %w", par, target, rep.Attempts, err)
				}
				restarts++
				rep.Restarts++
				c.mu.Lock()
				c.restarts++
				c.mu.Unlock()
				c.reg.Counter("elastic.restarts").Inc()
				c.log.Printf("rescale %d -> %d failed, rolling back: %v", par, target, err)
				select {
				case <-time.After(cfg.Restart.Delay):
				case <-ctx.Done():
					return nil, rep, ctx.Err()
				}
				restoreCP = meta.ID
				if p := core.NodeParallelismIn(meta, cfg.Node); p > 0 {
					par = p
				}
				continue
			}
			pending = &pendingRescale{
				ev: RescaleEvent{
					From: par, To: target,
					SavepointID: meta.ID, RescaledID: meta.ID + 1,
					StateBytes: stats.StateBytes, Timers: stats.Timers,
				},
				triggeredAt:  triggeredAt,
				offlineStart: offStart,
			}
			c.noteRescale()
			restoreCP = meta.ID + 1
			par = target
			continue
		}

		// Natural completion: the stream is exhausted.
		slices := make([][]core.Event, len(sinks))
		for i, s := range sinks {
			slices[i] = s.Events()
		}
		out, dups := ha.Dedup(slices...)
		rep.Output = len(out)
		rep.Duplicates = dups
		rep.FinalParallelism = par
		return out, rep, nil
	}
}

func (c *Controller) noteRescale() {
	c.mu.Lock()
	c.rescales++
	c.mu.Unlock()
	c.reg.Counter("elastic.rescales").Inc()
}

// finishRescale closes a rescale's downtime window at the moment the new
// incarnation proved liveness, and publishes the event.
func (c *Controller) finishRescale(rep *Report, p *pendingRescale, at time.Time) {
	p.ev.Downtime = at.Sub(p.triggeredAt)
	rep.Rescales = append(rep.Rescales, p.ev)
	downMs := p.ev.Downtime.Milliseconds()
	offMs := p.ev.Offline.Milliseconds()
	c.mu.Lock()
	c.lastDownMs = downMs
	c.lastOffMs = offMs
	c.mu.Unlock()
	c.reg.Histogram("elastic.rescale_downtime_ms").Observe(downMs)
	c.reg.Histogram("elastic.rescale_offline_ms").Observe(offMs)
	c.reg.Counter("elastic.rescale_state_bytes").Add(p.ev.StateBytes)
	c.log.Printf("rescale %d -> %d complete: downtime=%s offline=%s state=%dB timers=%d",
		p.ev.From, p.ev.To, p.ev.Downtime, p.ev.Offline, p.ev.StateBytes, p.ev.Timers)
}

// sampler derives rate samples from counter deltas over wall time. It reads
// the job's own registry, so each incarnation gets a fresh sampler whose
// Records are offset by the lineage's running total.
type sampler struct {
	reg       *metrics.Registry
	node      string
	upstream  string
	senders   int
	par       int
	base      int64
	lastWall  time.Time
	lastIn    int64
	lastBusy  int64
	lastBlkNs int64
	havePrev  bool
}

func newSampler(reg *metrics.Registry, node, upstream string, senders, par int, base int64) *sampler {
	return &sampler{reg: reg, node: node, upstream: upstream, senders: senders, par: par, base: base}
}

func (s *sampler) busyNs() int64 {
	var total int64
	for i := 0; i < s.par; i++ {
		total += s.reg.Counter(fmt.Sprintf("node.%s.%d.busy_ns", s.node, i)).Value()
	}
	return total
}

func (s *sampler) blockedNs() int64 {
	if s.upstream == "" {
		return 0
	}
	return s.reg.Histogram("edge." + s.upstream + "." + s.node + ".blocked_ns").Export().Sum
}

func (s *sampler) sample() Sample {
	now := time.Now()
	in := s.reg.Counter("node." + s.node + ".in").Value()
	busy := s.busyNs()
	blocked := s.blockedNs()
	out := Sample{Parallelism: s.par, Records: s.base + in}
	if s.havePrev {
		dt := now.Sub(s.lastWall).Seconds()
		dIn := float64(in - s.lastIn)
		dBusySec := float64(busy-s.lastBusy) / 1e9
		if dt > 0 {
			out.InputRate = dIn / dt
			if s.upstream != "" {
				f := float64(blocked-s.lastBlkNs) / 1e9 / (dt * float64(s.senders))
				// Cap below 1: a fully-blocked interval would otherwise
				// claim infinite demand.
				out.BlockedFraction = math.Min(math.Max(f, 0), 0.95)
			}
		}
		// Deliberately unguarded: 0/0 and x/0 yield NaN/Inf before the node
		// has done measurable work, and ScalingPolicy.Decide holds the
		// current parallelism on non-finite rates.
		out.TrueRate = dIn / dBusySec
	} else {
		out.TrueRate = math.NaN()
	}
	s.lastWall, s.lastIn, s.lastBusy, s.lastBlkNs = now, in, busy, blocked
	s.havePrev = true
	return out
}
