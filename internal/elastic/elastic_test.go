package elastic

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/ha"
	"repro/internal/load"
	"repro/internal/metrics"
	"repro/internal/window"
)

// elasticEvents is the E17 workload: n events over five keys, 10ms of event
// time apart, so a tumbling 1s window yields a fully deterministic result set
// regardless of the window operator's parallelism.
func elasticEvents(n int) []core.Event {
	events := make([]core.Event, n)
	for i := range events {
		events[i] = core.Event{
			Key:       fmt.Sprintf("k%d", i%5),
			Timestamp: int64(i * 10),
			Value:     int64(i),
		}
	}
	return events
}

// makeBuild returns the pipeline under test: paced source (fixed parallelism
// 1) -> keyed tumbling count window "win" (the scaled node) -> sink. The
// small channel capacity keeps the source backpressured so savepoint barriers
// always land mid-stream.
func makeBuild(events []core.Event, pace func(int) time.Duration) BuildFunc {
	return func(par int, sink *core.CollectSink, store core.SnapshotStore) (*core.Job, error) {
		b := core.NewBuilder(core.Config{
			Name:               "elastic-e17",
			SnapshotStore:      store,
			CheckpointEvery:    60,
			ChannelCapacity:    4,
			WatermarkInterval:  1,
			DefaultParallelism: par,
			Instrument:         true,
		})
		keyed := b.Source("src", NewPacedSourceFactory(events, pace),
			core.WithParallelism(1), core.WithBoundedDisorder(0)).
			KeyBy(func(e core.Event) string { return e.Key })
		window.Apply(keyed, "win", window.NewTumbling(1_000), window.CountAggregate()).
			Sink("out", sink.Factory())
		return b.Build()
	}
}

// signature reduces a result set to a canonical order-independent form
// including values, so a rescale that mis-merged window state (wrong count,
// lost or duplicated window) fails the equality check.
func signature(events []core.Event) []string {
	out := make([]string, len(events))
	for i, e := range events {
		out[i] = fmt.Sprintf("%s@%d=%v", e.Key, e.Timestamp, e.Value)
	}
	sort.Strings(out)
	return out
}

// runBaseline runs the pipeline at a fixed parallelism with no pacing and no
// controller, returning its output signature — the ground truth every elastic
// run must reproduce byte-for-byte.
func runBaseline(t *testing.T, events []core.Event, par int) []string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sink := core.NewCollectSink()
	job, err := makeBuild(events, nil)(par, sink, core.NewMemorySnapshotStore())
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Run(ctx); err != nil {
		t.Fatalf("baseline run failed: %v", err)
	}
	return signature(sink.Events())
}

func pace50us(int) time.Duration { return 50 * time.Microsecond }

// TestLiveRescaleEquality is the E17 headline: a keyed-window pipeline that
// is rescaled up AND back down mid-stream by the controller must produce
// byte-identical exactly-once output versus a fixed-parallelism run, with no
// crash recoveries and a measurable (bounded) downtime per rescale.
func TestLiveRescaleEquality(t *testing.T) {
	const n = 1200
	events := elasticEvents(n)
	want := runBaseline(t, events, 2)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c, err := New(Config{
		Node:  "win",
		Build: makeBuild(events, pace50us),
		Store: core.NewMemorySnapshotStore(),
		// Scripted on stream position so the rescale points are deterministic;
		// the rate-driven path is covered by the sampler/decide tests below.
		Decider: func(s Sample, current int) int {
			switch {
			case s.Records > 800:
				return 3 // scale in once most of the stream has passed
			case s.Records > 250:
				return 4 // scale out early
			}
			return current
		},
		InitialParallelism: 2,
		SampleEvery:        3 * time.Millisecond,
		Restart:            ha.RestartStrategy{MaxRestarts: 2, Delay: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, rep, err := c.Run(ctx)
	if err != nil {
		t.Fatalf("elastic run failed (report %+v): %v", rep, err)
	}

	if got := signature(out); !reflect.DeepEqual(got, want) {
		t.Fatalf("elastic output diverged from fixed-parallelism run:\n got %d results %v\nwant %d results %v",
			len(got), got, len(want), want)
	}
	if rep.Restarts != 0 {
		t.Fatalf("clean rescales must not consume crash restarts: %+v", rep)
	}
	if rep.ScaleUps() < 1 || rep.ScaleDowns() < 1 {
		t.Fatalf("want at least one scale-up and one scale-down, got %+v", rep.Rescales)
	}
	if rep.FinalParallelism != 3 {
		t.Fatalf("final parallelism: want 3, got %d", rep.FinalParallelism)
	}
	for i, ev := range rep.Rescales {
		if ev.Downtime <= 0 {
			t.Fatalf("rescale %d has no measured downtime: %+v", i, ev)
		}
		if ev.Downtime > 30*time.Second {
			t.Fatalf("rescale %d downtime implausible: %+v", i, ev)
		}
		if ev.RescaledID != ev.SavepointID+1 {
			t.Fatalf("rescale %d checkpoint lineage broken: %+v", i, ev)
		}
	}
	for i, ev := range rep.Rescales {
		t.Logf("rescale %d: %d -> %d downtime=%v offline=%v state=%dB (savepoint %d -> checkpoint %d)",
			i+1, ev.From, ev.To, ev.Downtime, ev.Offline, ev.StateBytes, ev.SavepointID, ev.RescaledID)
	}
	// The lineage counters surfaced via Describe must agree with the report.
	infos := c.Describe()
	if len(infos) != 1 || infos[0].Rescales != int64(len(rep.Rescales)) {
		t.Fatalf("Describe rescale lineage mismatch: %+v vs report %+v", infos, rep)
	}
	if infos[0].LastRescaleDowntimeMs < 0 {
		t.Fatalf("Describe downtime negative: %+v", infos[0])
	}
}

// TestRescaleCrashMatrix drives the reconfiguration window through injected
// crashes at its three exposed seams — after the savepoint committed, before
// the rescaled checkpoint's metadata committed, and mid-restore into the
// rescaled topology — asserting exactly-once output equality and that the
// controller both recovered and eventually completed the rescale.
func TestRescaleCrashMatrix(t *testing.T) {
	const n = 900
	events := elasticEvents(n)
	want := runBaseline(t, events, 2)

	scenarios := []struct {
		name  string
		crash chaos.CrashPoint
		at    int
	}{
		// Killed right after the stop-with-savepoint's metadata reached the
		// store: recovery restores the savepoint at the OLD parallelism and
		// the decision logic re-triggers the rescale.
		{name: "crash-post-savepoint", crash: chaos.CrashPostSavepoint, at: 0},
		// The rescaled checkpoint's Complete fails (its snapshots are torn
		// garbage as far as Latest is concerned): the controller rolls back
		// to the savepoint and retries the whole reconfiguration.
		{name: "crash-pre-rescale-complete", crash: chaos.CrashPreRescaleComplete, at: 0},
		// Killed while loading the rescaled checkpoint into the new topology
		// (the rescale itself reads 4 snapshots first, so load ordinal 5 is
		// inside the restore): recovery restores the SAME rescaled
		// checkpoint, deriving the new parallelism from its instance list.
		{name: "crash-mid-restore", crash: chaos.CrashMidRestore, at: 5},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			store := chaos.Wrap(core.NewMemorySnapshotStore(), chaos.FaultPlan{}).Arm(sc.crash, sc.at)
			c, err := New(Config{
				Node:  "win",
				Build: makeBuild(events, pace50us),
				Store: store,
				Decider: func(s Sample, current int) int {
					if s.Records > 250 {
						return 4
					}
					return current
				},
				InitialParallelism: 2,
				SampleEvery:        3 * time.Millisecond,
				Restart:            ha.RestartStrategy{MaxRestarts: 4, Delay: 2 * time.Millisecond},
				OnStart: func(_ int, job *core.Job) {
					store.SetKill(func() { job.Fail(chaos.ErrInjectedCrash) })
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			out, rep, err := c.Run(ctx)
			if err != nil {
				t.Fatalf("elastic run failed (report %+v, stats %+v): %v", rep, store.Stats(), err)
			}
			if got := signature(out); !reflect.DeepEqual(got, want) {
				t.Fatalf("output diverged from fault-free fixed run:\n got %d results %v\nwant %d results %v",
					len(got), got, len(want), want)
			}
			if rep.Restarts < 1 {
				t.Fatalf("injected crash did not register as a restart: %+v (stats %+v)", rep, store.Stats())
			}
			if store.Stats().Crashes != 1 {
				t.Fatalf("armed crash fired %d times, want exactly 1", store.Stats().Crashes)
			}
			if rep.ScaleUps() < 1 {
				t.Fatalf("rescale never completed despite recovery: %+v", rep)
			}
			if rep.FinalParallelism != 4 {
				t.Fatalf("final parallelism: want 4, got %d", rep.FinalParallelism)
			}
		})
	}
}

// TestSamplerRates pins the metric-delta arithmetic: warm-up yields NaN (so
// the policy holds), and after counter movement the true rate is exactly
// records-per-busy-second while the blocked fraction stays inside [0, 0.95].
func TestSamplerRates(t *testing.T) {
	reg := metrics.NewRegistry()
	s := newSampler(reg, "win", "src", 1, 2, 100)
	first := s.sample()
	if !math.IsNaN(first.TrueRate) {
		t.Fatalf("warm-up TrueRate must be NaN, got %v", first.TrueRate)
	}
	if first.Records != 100 {
		t.Fatalf("Records must include the lineage base: want 100, got %d", first.Records)
	}

	reg.Counter("node.win.in").Add(1000)
	reg.Counter("node.win.0.busy_ns").Add(5e8)
	reg.Counter("node.win.1.busy_ns").Add(5e8)
	reg.Histogram("edge.src.win.blocked_ns").Observe(int64(5 * time.Millisecond))
	time.Sleep(15 * time.Millisecond)
	got := s.sample()
	if got.InputRate <= 0 {
		t.Fatalf("InputRate must be positive after arrivals: %v", got.InputRate)
	}
	// 1000 records over exactly 1.0s of summed busy time, wall-clock free.
	if got.TrueRate != 1000 {
		t.Fatalf("TrueRate: want 1000, got %v", got.TrueRate)
	}
	if got.BlockedFraction <= 0 || got.BlockedFraction > 0.95 {
		t.Fatalf("BlockedFraction out of range: %v", got.BlockedFraction)
	}
	if got.Records != 1100 {
		t.Fatalf("Records: want 1100, got %d", got.Records)
	}
}

// TestDecideBackpressureCorrection pins the demand inflation: an input rate
// observed while senders were blocked half the time represents twice the
// offered load.
func TestDecideBackpressureCorrection(t *testing.T) {
	c, err := New(Config{
		Node:   "win",
		Build:  makeBuild(nil, nil),
		Store:  core.NewMemorySnapshotStore(),
		Policy: load.NewScalingPolicy(0.8, 1, 16),
	})
	if err != nil {
		t.Fatal(err)
	}
	// demand = 500/(1-0.5) = 1000; ceil(1000/(200*0.8)) = 7.
	if got := c.decide(Sample{InputRate: 500, TrueRate: 200, BlockedFraction: 0.5}, 1); got != 7 {
		t.Fatalf("corrected decision: want 7, got %d", got)
	}
	// Without blocking the throttled rate is taken at face value: ceil(500/160)=4.
	if got := c.decide(Sample{InputRate: 500, TrueRate: 200}, 1); got != 4 {
		t.Fatalf("uncorrected decision: want 4, got %d", got)
	}
}

// TestPacedSourceOffsetRoundTrip pins the snapshot wire format and the
// round-robin global indexing that keeps a rescaled replay identical.
func TestPacedSourceOffsetRoundTrip(t *testing.T) {
	events := elasticEvents(10)
	s := &pacedSource{events: events, instance: 1, par: 2}
	s.offset = 3
	data, err := s.SnapshotOffset()
	if err != nil {
		t.Fatal(err)
	}
	s2 := &pacedSource{events: events, instance: 1, par: 2}
	if err := s2.RestoreOffset(data); err != nil {
		t.Fatal(err)
	}
	if s2.offset != 3 {
		t.Fatalf("offset round-trip: want 3, got %d", s2.offset)
	}
	// Instance 1 of 2 owns global indices 1,3,5,... — offset 3 maps to 7.
	if g := s2.globalIndex(s2.offset); g != 7 {
		t.Fatalf("global index: want 7, got %d", g)
	}
}

// TestNewValidation pins the config contract.
func TestNewValidation(t *testing.T) {
	build := makeBuild(nil, nil)
	store := core.NewMemorySnapshotStore()
	pol := load.NewScalingPolicy(0.8, 1, 4)
	cases := []Config{
		{Build: build, Store: store, Policy: pol}, // no node
		{Node: "win", Store: store, Policy: pol},  // no build
		{Node: "win", Build: build, Policy: pol},  // no store
		{Node: "win", Build: build, Store: store}, // no policy or decider
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
	c, err := New(Config{Node: "win", Build: build, Store: store, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	if c.CurrentParallelism() != 1 {
		t.Fatalf("default initial parallelism: want 1, got %d", c.CurrentParallelism())
	}
}
