package elastic

import (
	"sync"
	"time"

	"repro/internal/core"
)

// NewPacedSourceFactory replays a fixed event set round-robin across source
// instances (like core.NewSliceSourceFactory) but sleeps delay(globalIndex)
// before each emit, so demos and tests can shape the offered input rate —
// ramps, bursts, lulls — without changing the event content. Pacing only
// affects timing: the source is replayable, and a rescaled incarnation
// resumes from its checkpointed offset emitting identical data, which is what
// makes the elastic-vs-fixed equality experiment well-defined.
//
// delay receives the event's index in the original slice (not the instance's
// sub-stream), so one schedule shapes the whole stream regardless of source
// parallelism. A nil delay emits as fast as the pipeline accepts.
func NewPacedSourceFactory(events []core.Event, delay func(globalIndex int) time.Duration) core.SourceFactory {
	return func(instance, parallelism int) core.Source {
		return &pacedSource{events: events, instance: instance, par: parallelism, delay: delay}
	}
}

type pacedSource struct {
	events   []core.Event
	instance int
	par      int
	delay    func(globalIndex int) time.Duration

	mu     sync.Mutex
	offset int // index into the instance's own sub-stream
}

// own returns (event, globalIndex) pairs assigned to this instance.
func (s *pacedSource) globalIndex(i int) int {
	if s.par <= 1 {
		return i
	}
	return s.instance + i*s.par
}

func (s *pacedSource) Run(ctx core.SourceContext) error {
	for {
		s.mu.Lock()
		i := s.offset
		s.mu.Unlock()
		g := s.globalIndex(i)
		if g >= len(s.events) {
			return nil
		}
		if s.delay != nil {
			if d := s.delay(g); d > 0 {
				time.Sleep(d)
			}
		}
		if !ctx.Collect(s.events[g]) {
			return nil
		}
		s.mu.Lock()
		s.offset = i + 1
		s.mu.Unlock()
	}
}

// SnapshotOffset captures the replay position (same wire format as
// core.SliceSource).
func (s *pacedSource) SnapshotOffset() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.offset
	return []byte{byte(o >> 24), byte(o >> 16), byte(o >> 8), byte(o)}, nil
}

// RestoreOffset rewinds to a captured position.
func (s *pacedSource) RestoreOffset(data []byte) error {
	if len(data) != 4 {
		return nil
	}
	s.mu.Lock()
	s.offset = int(data[0])<<24 | int(data[1])<<16 | int(data[2])<<8 | int(data[3])
	s.mu.Unlock()
	return nil
}

var _ core.ReplayableSource = (*pacedSource)(nil)
