// Package eventtime implements the time and progress-tracking machinery of
// stream processing surveyed in §2.2 and §2.3 of the paper: event-time vs.
// processing-time clocks, and the five progress mechanisms — punctuations
// (Tucker et al.), watermarks (Dataflow), heartbeats (STREAM), slack
// (Aurora), and frontiers (Naiad).
//
// All timestamps in this repository are int64 milliseconds since the Unix
// epoch unless stated otherwise.
package eventtime

import (
	"sync"
	"time"
)

// Clock abstracts processing time so tests and experiments can run on a
// deterministic virtual clock instead of wall time.
type Clock interface {
	// Now returns the current processing time in Unix milliseconds.
	Now() int64
	// After returns a channel that delivers once the clock has advanced by d.
	After(d time.Duration) <-chan time.Time
}

// SystemClock is the wall clock.
type SystemClock struct{}

// Now returns the wall-clock time in Unix milliseconds.
func (SystemClock) Now() int64 { return time.Now().UnixMilli() } //streamvet:allow wallclock — SystemClock is the wall-clock Clock implementation

// After defers to time.After.
func (SystemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// VirtualClock is a manually advanced clock for deterministic tests. Waiters
// created with After fire when Advance moves the clock past their deadline.
type VirtualClock struct {
	mu      sync.Mutex
	now     int64
	waiters []virtualWaiter
}

type virtualWaiter struct {
	deadline int64
	ch       chan time.Time
}

// NewVirtualClock returns a virtual clock starting at the given Unix-millis
// instant.
func NewVirtualClock(start int64) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now returns the virtual current time.
func (c *VirtualClock) Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After returns a channel that fires when the virtual clock advances by d.
func (c *VirtualClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.mu.Lock()
	now := c.now
	deadline := now + d.Milliseconds()
	if deadline > now {
		c.waiters = append(c.waiters, virtualWaiter{deadline: deadline, ch: ch})
		c.mu.Unlock()
		return ch
	}
	// Non-positive duration: fire immediately. The send happens after the
	// unlock — the channel is buffered and private here, so it cannot block,
	// but the engine-wide rule (enforced by streamvet's lockcross) is that no
	// channel operation runs under a held mutex.
	c.mu.Unlock()
	ch <- time.UnixMilli(now)
	return ch
}

// Advance moves the clock forward by d milliseconds and fires any waiters
// whose deadline has been reached.
func (c *VirtualClock) Advance(d int64) {
	c.mu.Lock()
	c.now += d
	now := c.now
	remaining := c.waiters[:0]
	var fired []chan time.Time
	for _, w := range c.waiters {
		if w.deadline <= now {
			fired = append(fired, w.ch)
		} else {
			remaining = append(remaining, w)
		}
	}
	c.waiters = remaining
	c.mu.Unlock()
	for _, ch := range fired {
		ch <- time.UnixMilli(now)
	}
}
