package eventtime

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestVirtualClockAdvance(t *testing.T) {
	c := NewVirtualClock(1000)
	if c.Now() != 1000 {
		t.Fatalf("start: want 1000, got %d", c.Now())
	}
	ch := c.After(500 * time.Millisecond)
	select {
	case <-ch:
		t.Fatal("fired before advance")
	default:
	}
	c.Advance(499)
	select {
	case <-ch:
		t.Fatal("fired too early")
	default:
	}
	c.Advance(1)
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("did not fire after advance")
	}
}

func TestBoundedOutOfOrderness(t *testing.T) {
	g := NewBoundedOutOfOrderness(100)
	if g.OnPeriodic() != MinWatermark {
		t.Fatal("watermark before any event")
	}
	g.OnEvent(1000)
	g.OnEvent(900) // disorder within bound
	if wm := g.OnPeriodic(); wm != 1000-100-1 {
		t.Fatalf("want %d, got %d", 1000-100-1, wm)
	}
	g.OnEvent(2000)
	if wm := g.OnPeriodic(); wm != 2000-100-1 {
		t.Fatalf("want %d, got %d", 2000-100-1, wm)
	}
}

func TestWatermarkTrackerIsMinAcrossChannels(t *testing.T) {
	tr := NewWatermarkTracker(3)
	if _, adv := tr.Update(0, 100); adv {
		t.Fatal("single channel must not advance the combined watermark")
	}
	tr.Update(1, 50)
	wm, adv := tr.Update(2, 200)
	if !adv || wm != 50 {
		t.Fatalf("want combined 50, got %d (adv=%v)", wm, adv)
	}
	// Raising the slowest channel advances to the next minimum.
	wm, adv = tr.Update(1, 150)
	if !adv || wm != 100 {
		t.Fatalf("want combined 100, got %d", wm)
	}
}

func TestWatermarkTrackerMonotone(t *testing.T) {
	// Property: combined watermark never decreases under arbitrary updates.
	check := func(updates []struct {
		Ch uint8
		WM int16
	}) bool {
		tr := NewWatermarkTracker(4)
		last := int64(MinWatermark)
		for _, u := range updates {
			wm, _ := tr.Update(int(u.Ch%4), int64(u.WM))
			if wm < last {
				return false
			}
			last = wm
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPunctuationTracker(t *testing.T) {
	p := NewPunctuationTracker(2)
	p.Observe(0, Punctuation{TS: 10})
	if p.Current() != MinWatermark {
		t.Fatal("one channel should not set progress")
	}
	p.Observe(1, Punctuation{TS: 5})
	if p.Current() != 5 {
		t.Fatalf("want 5, got %d", p.Current())
	}
	if !(Punctuation{TS: 5}).Match(5) || (Punctuation{TS: 5}).Match(6) {
		t.Fatal("punctuation match semantics wrong")
	}
}

func TestHeartbeatGenerator(t *testing.T) {
	h := NewHeartbeatGenerator(10, 20)
	if h.Heartbeat() != MinWatermark {
		t.Fatal("heartbeat before any source report")
	}
	h.ReportSourceClock("a", 1000)
	h.ReportSourceClock("b", 900)
	if hb := h.Heartbeat(); hb != 900-10-20 {
		t.Fatalf("want %d, got %d", 900-10-20, hb)
	}
	// Stale report does not move a source backward.
	h.ReportSourceClock("b", 800)
	if hb := h.Heartbeat(); hb != 900-10-20 {
		t.Fatalf("stale report moved heartbeat: %d", hb)
	}
}

func TestSlackBufferReordersWithinSlack(t *testing.T) {
	s := NewSlackBuffer(2)
	var out []any
	out = append(out, s.Push(30, "c")...)
	out = append(out, s.Push(10, "a")...)
	out = append(out, s.Push(20, "b")...)
	out = append(out, s.Flush()...)
	want := []string{"a", "b", "c"}
	if len(out) != 3 {
		t.Fatalf("want 3 released, got %d", len(out))
	}
	for i, v := range out {
		if v.(string) != want[i] {
			t.Fatalf("order wrong at %d: %v", i, out)
		}
	}
}

func TestSlackBufferDropsTooLate(t *testing.T) {
	s := NewSlackBuffer(1)
	s.Push(10, "a")
	s.Push(20, "b") // forces release of 10
	if s.Dropped != 0 {
		t.Fatal("premature drop")
	}
	if rel := s.Push(5, "late"); rel != nil {
		t.Fatal("late element must not be released")
	}
	if s.Dropped != 1 {
		t.Fatalf("want 1 dropped, got %d", s.Dropped)
	}
}

func TestReorderBufferReleasesInOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewReorderBuffer(0)
	var input []int64
	for i := 0; i < 500; i++ {
		ts := int64(rng.Intn(10000))
		input = append(input, ts)
		b.Push(ts, ts)
	}
	out := b.Flush()
	sort.Slice(input, func(i, j int) bool { return input[i] < input[j] })
	for i, v := range out {
		if v.(int64) != input[i] {
			t.Fatalf("flush order wrong at %d", i)
		}
	}
	if b.MaxBuffered != 500 {
		t.Fatalf("max buffered should be 500, got %d", b.MaxBuffered)
	}
}

func TestReorderBufferBoundedForcesOldest(t *testing.T) {
	b := NewReorderBuffer(3)
	b.Push(3, "c")
	b.Push(1, "a")
	b.Push(2, "b")
	forced := b.Push(4, "d")
	if len(forced) != 1 || forced[0].(string) != "a" {
		t.Fatalf("bounded buffer should force-release oldest, got %v", forced)
	}
}

func TestReorderBufferReleaseByWatermark(t *testing.T) {
	b := NewReorderBuffer(0)
	b.Push(100, 1)
	b.Push(50, 2)
	b.Push(150, 3)
	rel := b.Release(100)
	if len(rel) != 2 {
		t.Fatalf("release(100): want 2, got %d", len(rel))
	}
	if b.Len() != 1 {
		t.Fatalf("one element should remain, got %d", b.Len())
	}
}

func TestFrontierTracking(t *testing.T) {
	f := NewFrontier()
	f.Add(Pointstamp{Node: 0, Time: 10}, 2)
	f.Add(Pointstamp{Node: 1, Time: 5}, 1)
	// Frontier at node 1 considers pointstamps at nodes <= 1.
	if got := f.FrontierAt(1); got != 5 {
		t.Fatalf("want 5, got %d", got)
	}
	// Frontier at node 0 ignores node 1's pointstamp.
	if got := f.FrontierAt(0); got != 10 {
		t.Fatalf("want 10, got %d", got)
	}
	f.Add(Pointstamp{Node: 1, Time: 5}, -1)
	if got := f.FrontierAt(1); got != 10 {
		t.Fatalf("after retire: want 10, got %d", got)
	}
	f.Add(Pointstamp{Node: 0, Time: 10}, -2)
	if got := f.FrontierAt(1); got != MaxWatermark {
		t.Fatalf("empty frontier should be MaxWatermark, got %d", got)
	}
}

func TestFrontierNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative pointstamp count must panic")
		}
	}()
	f := NewFrontier()
	f.Add(Pointstamp{Node: 0, Time: 1}, -1)
}

func TestWatermarkLag(t *testing.T) {
	if got := Lag(10_000, 9_400); got != 600 {
		t.Fatalf("lag: want 600, got %d", got)
	}
	if got := Lag(10_000, 12_000); got != -2_000 {
		t.Fatalf("ahead-of-clock lag: want -2000, got %d", got)
	}
	if got := Lag(10_000, MinWatermark); got != 0 {
		t.Fatalf("MinWatermark lag: want 0, got %d", got)
	}
	if got := Lag(10_000, MaxWatermark); got != 0 {
		t.Fatalf("MaxWatermark lag: want 0, got %d", got)
	}
}
