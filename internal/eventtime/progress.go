package eventtime

import (
	"fmt"
	"sort"
	"sync"
)

// This file implements the remaining progress-tracking mechanisms compared in
// §2.3 of the paper: punctuations, heartbeats, slack, and frontiers. Together
// with watermarks (watermark.go) these are the five measures the tutorial
// contrasts. The experiment harness (E5) drives the same stream through each
// mechanism and reports overhead and result timeliness.

// Punctuation is a predicate embedded in the stream asserting that no future
// element will satisfy it (Tucker et al., TKDE 2003). The most common form —
// and the one used here — is a timestamp punctuation: "no more elements with
// timestamp <= TS".
type Punctuation struct {
	// TS is the inclusive upper bound on timestamps of elements the
	// punctuation closes over.
	TS int64
}

// Match reports whether an element timestamp is covered (closed over) by the
// punctuation.
func (p Punctuation) Match(ts int64) bool { return ts <= p.TS }

// PunctuationTracker tracks explicit punctuations arriving in-band from
// multiple channels; progress is the minimum punctuation across channels,
// exactly like watermark alignment, but punctuations are emitted by the
// *source data* rather than synthesised by the system.
type PunctuationTracker struct {
	inner *WatermarkTracker
}

// NewPunctuationTracker returns a tracker over n channels.
func NewPunctuationTracker(n int) *PunctuationTracker {
	return &PunctuationTracker{inner: NewWatermarkTracker(n)}
}

// Observe records a punctuation from a channel; returns combined progress and
// whether it advanced.
func (t *PunctuationTracker) Observe(channel int, p Punctuation) (int64, bool) {
	return t.inner.Update(channel, p.TS)
}

// Current returns the combined progress bound.
func (t *PunctuationTracker) Current() int64 { return t.inner.Current() }

// HeartbeatGenerator implements STREAM-style heartbeats (Srivastava & Widom,
// PODS 2004): an external coordinator periodically tells each source "emit a
// heartbeat τ such that all future tuples have timestamp > τ", computed from
// per-source skew and network-delay bounds. Unlike watermarks, heartbeats are
// generated at the *ingestion point* from source metadata, not from observed
// data.
type HeartbeatGenerator struct {
	mu      sync.Mutex
	sources map[string]int64 // latest local clock reported per source
	skew    int64            // max clock skew bound across sources
	delay   int64            // max in-flight network delay bound
}

// NewHeartbeatGenerator returns a generator with the given skew and delay
// bounds in milliseconds.
func NewHeartbeatGenerator(skewBound, delayBound int64) *HeartbeatGenerator {
	return &HeartbeatGenerator{
		sources: make(map[string]int64),
		skew:    skewBound,
		delay:   delayBound,
	}
}

// ReportSourceClock records the latest local time reported by a source.
func (h *HeartbeatGenerator) ReportSourceClock(source string, localTime int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if localTime > h.sources[source] {
		h.sources[source] = localTime
	}
}

// Heartbeat computes the global heartbeat: min over sources of
// (localTime - skew - delay). Returns MinWatermark until every expected
// source has reported at least once (sources are registered on first report).
func (h *HeartbeatGenerator) Heartbeat() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.sources) == 0 {
		return MinWatermark
	}
	hb := int64(MaxWatermark)
	for _, t := range h.sources {
		if b := t - h.skew - h.delay; b < hb {
			hb = b
		}
	}
	return hb
}

// SlackBuffer implements Aurora-style slack (§2.3): an operator tolerates
// disorder by buffering up to `slack` elements (or slack time units) and
// releasing them in timestamp order; elements arriving later than the slack
// allows are dropped (best-effort, 1st-generation semantics).
type SlackBuffer struct {
	slack   int     // number of out-of-order positions tolerated
	buf     []int64 // pending timestamps, kept sorted
	values  map[int64][]any
	emitted int64 // highest timestamp already released
	started bool
	Dropped int64 // count of late-dropped elements
}

// NewSlackBuffer returns a buffer tolerating the given number of positions of
// disorder.
func NewSlackBuffer(slack int) *SlackBuffer {
	return &SlackBuffer{slack: slack, values: make(map[int64][]any)}
}

// Push offers an element; it returns the (timestamp-ordered) elements that
// the slack policy releases as a consequence. Late elements (older than the
// last released timestamp) are counted in Dropped and discarded.
func (s *SlackBuffer) Push(ts int64, v any) []any {
	if s.started && ts <= s.emitted {
		s.Dropped++
		return nil
	}
	i := sort.Search(len(s.buf), func(i int) bool { return s.buf[i] >= ts })
	if i < len(s.buf) && s.buf[i] == ts {
		s.values[ts] = append(s.values[ts], v)
	} else {
		s.buf = append(s.buf, 0)
		copy(s.buf[i+1:], s.buf[i:])
		s.buf[i] = ts
		s.values[ts] = append(s.values[ts], v)
	}
	var out []any
	for len(s.buf) > s.slack {
		t := s.buf[0]
		s.buf = s.buf[1:]
		out = append(out, s.values[t]...)
		delete(s.values, t)
		s.emitted = t
		s.started = true
	}
	return out
}

// Flush releases all buffered elements in timestamp order.
func (s *SlackBuffer) Flush() []any {
	var out []any
	for _, t := range s.buf {
		out = append(out, s.values[t]...)
		delete(s.values, t)
		s.emitted = t
		s.started = true
	}
	s.buf = s.buf[:0]
	return out
}

// Pending returns the number of buffered timestamps.
func (s *SlackBuffer) Pending() int { return len(s.buf) }

// Pointstamp identifies logical progress in a (possibly cyclic) dataflow à la
// Naiad: a location (node in the graph) paired with a timestamp.
type Pointstamp struct {
	Node int
	Time int64
}

// Frontier implements Naiad-style frontier tracking (§2.3): it maintains
// occurrence counts of outstanding pointstamps; the frontier at a node is the
// minimum timestamp of any pointstamp that could still reach it. A
// notification for (node, t) can be delivered once no pointstamp (node', t')
// with t' <= t can reach node. This simplified single-loop-free variant
// tracks reachability via the node order of a DAG (node indices are
// topologically ordered).
type Frontier struct {
	mu     sync.Mutex
	counts map[Pointstamp]int
}

// NewFrontier returns an empty frontier tracker.
func NewFrontier() *Frontier {
	return &Frontier{counts: make(map[Pointstamp]int)}
}

// Add records n occurrences of a pointstamp (n may be negative to retire).
// It panics if a count would go negative — that is a protocol violation.
func (f *Frontier) Add(p Pointstamp, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	c := f.counts[p] + n
	if c < 0 {
		panic(fmt.Sprintf("eventtime: pointstamp %+v count below zero", p))
	}
	if c == 0 {
		delete(f.counts, p)
	} else {
		f.counts[p] = c
	}
}

// FrontierAt returns the minimum timestamp among outstanding pointstamps at
// nodes <= the given node (i.e., that could still reach it in a topologically
// ordered DAG), or MaxWatermark if none remain. A notification at (node, t)
// is deliverable iff t < FrontierAt(node).
func (f *Frontier) FrontierAt(node int) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	min := int64(MaxWatermark)
	for p, c := range f.counts {
		if c > 0 && p.Node <= node && p.Time < min {
			min = p.Time
		}
	}
	return min
}

// Outstanding returns the number of distinct outstanding pointstamps.
func (f *Frontier) Outstanding() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.counts)
}
