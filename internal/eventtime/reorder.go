package eventtime

import (
	"container/heap"
)

// ReorderBuffer implements the first of the two fundamental out-of-order
// strategies of §2.2: buffer data at the ingestion point and release batches
// in timestamp order (the in-order processing, IOP, architecture of early
// systems and MillWheel-style ingestion reordering). The second strategy —
// ingesting disorder directly and reconciling via watermarks/low-watermark
// purging (OOP, Li et al. VLDB 2008) — is what the core engine does natively;
// experiment E4 compares the two.
type ReorderBuffer struct {
	h       tsHeap
	maxSize int
	// MaxBuffered tracks the high-water mark of buffered elements, the
	// memory-cost metric E4 reports.
	MaxBuffered int
}

type tsItem struct {
	ts  int64
	seq int64
	v   any
}

type tsHeap struct {
	items []tsItem
}

func (h tsHeap) Len() int { return len(h.items) }
func (h tsHeap) Less(i, j int) bool {
	if h.items[i].ts != h.items[j].ts {
		return h.items[i].ts < h.items[j].ts
	}
	return h.items[i].seq < h.items[j].seq
}
func (h tsHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *tsHeap) Push(x any)   { h.items = append(h.items, x.(tsItem)) }
func (h *tsHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// NewReorderBuffer returns a reorder buffer. maxSize <= 0 means unbounded.
func NewReorderBuffer(maxSize int) *ReorderBuffer {
	return &ReorderBuffer{maxSize: maxSize}
}

var reorderSeq int64

// Push buffers an element. If the buffer is bounded and full, the oldest
// element is force-released and returned so the caller can forward it.
func (b *ReorderBuffer) Push(ts int64, v any) (forced []any) {
	reorderSeq++
	heap.Push(&b.h, tsItem{ts: ts, seq: reorderSeq, v: v})
	if b.h.Len() > b.MaxBuffered {
		b.MaxBuffered = b.h.Len()
	}
	if b.maxSize > 0 {
		for b.h.Len() > b.maxSize {
			it := heap.Pop(&b.h).(tsItem)
			forced = append(forced, it.v)
		}
	}
	return forced
}

// Release pops all elements with timestamp <= bound, in timestamp order.
// The bound typically comes from a watermark, heartbeat or a processing-time
// delay policy.
func (b *ReorderBuffer) Release(bound int64) []any {
	var out []any
	for b.h.Len() > 0 && b.h.items[0].ts <= bound {
		it := heap.Pop(&b.h).(tsItem)
		out = append(out, it.v)
	}
	return out
}

// Flush releases everything in timestamp order.
func (b *ReorderBuffer) Flush() []any {
	var out []any
	for b.h.Len() > 0 {
		it := heap.Pop(&b.h).(tsItem)
		out = append(out, it.v)
	}
	return out
}

// Len returns the number of buffered elements.
func (b *ReorderBuffer) Len() int { return b.h.Len() }
