package eventtime

import "math"

// MinWatermark is the watermark value before any progress has been observed.
const MinWatermark = math.MinInt64

// MaxWatermark signals that the stream has ended: no element with any
// timestamp can arrive after it.
const MaxWatermark = math.MaxInt64

// WatermarkGenerator produces watermarks from the observed event stream.
// A watermark W asserts that no further events with timestamp <= W are
// expected (modulo late data, which downstream operators may still choose to
// handle). This is the 2nd-generation progress mechanism popularised by
// MillWheel and the Dataflow model (§2.3).
type WatermarkGenerator interface {
	// OnEvent observes an element timestamp and returns a new watermark, or
	// MinWatermark if the element does not advance progress (punctuated
	// generators emit on markers only, periodic ones on OnPeriodic).
	OnEvent(ts int64) int64
	// OnPeriodic is invoked by the runtime on a timer and returns the current
	// watermark, or MinWatermark if none should be emitted.
	OnPeriodic() int64
}

// BoundedOutOfOrderness is the standard watermark strategy: it assumes
// disorder is bounded by a fixed delay, emitting watermark = maxSeen - bound.
type BoundedOutOfOrderness struct {
	Bound   int64 // maximum expected out-of-orderness in milliseconds
	maxSeen int64
	started bool
}

// NewBoundedOutOfOrderness returns a generator tolerating the given disorder
// bound in milliseconds.
func NewBoundedOutOfOrderness(boundMillis int64) *BoundedOutOfOrderness {
	return &BoundedOutOfOrderness{Bound: boundMillis}
}

// OnEvent tracks the maximum timestamp; watermarks are emitted periodically.
func (b *BoundedOutOfOrderness) OnEvent(ts int64) int64 {
	if !b.started || ts > b.maxSeen {
		b.maxSeen = ts
		b.started = true
	}
	return MinWatermark
}

// OnPeriodic returns maxSeen - bound - 1, the strongest safe assertion under
// the bounded-disorder assumption.
func (b *BoundedOutOfOrderness) OnPeriodic() int64 {
	if !b.started {
		return MinWatermark
	}
	return b.maxSeen - b.Bound - 1
}

// AscendingTimestamps is the special case of perfectly ordered input.
type AscendingTimestamps struct {
	inner BoundedOutOfOrderness
}

// OnEvent tracks the maximum timestamp.
func (a *AscendingTimestamps) OnEvent(ts int64) int64 { return a.inner.OnEvent(ts) }

// OnPeriodic returns maxSeen-1.
func (a *AscendingTimestamps) OnPeriodic() int64 { return a.inner.OnPeriodic() }

// WatermarkTracker combines watermarks from multiple input channels into a
// single output watermark, the minimum across channels — the alignment rule
// every dataflow engine applies at operators with multiple upstream channels.
type WatermarkTracker struct {
	channels []int64
	current  int64
}

// NewWatermarkTracker returns a tracker over n input channels.
func NewWatermarkTracker(n int) *WatermarkTracker {
	t := &WatermarkTracker{channels: make([]int64, n), current: MinWatermark}
	for i := range t.channels {
		t.channels[i] = MinWatermark
	}
	return t
}

// Update records a watermark from the given channel and returns the combined
// watermark and whether it advanced.
func (t *WatermarkTracker) Update(channel int, wm int64) (int64, bool) {
	if channel < 0 || channel >= len(t.channels) {
		return t.current, false
	}
	if wm <= t.channels[channel] {
		return t.current, false
	}
	t.channels[channel] = wm
	min := int64(MaxWatermark)
	for _, w := range t.channels {
		if w < min {
			min = w
		}
	}
	if min > t.current {
		t.current = min
		return t.current, true
	}
	return t.current, false
}

// Current returns the combined watermark.
func (t *WatermarkTracker) Current() int64 { return t.current }

// Lag returns the event-time lag of a watermark relative to processing time:
// nowMillis - wm, the "how far behind real time is this operator's progress"
// signal monitoring systems chart. The sentinel values report 0 lag: before
// any progress (MinWatermark) there is nothing to lag behind, and after the
// stream ends (MaxWatermark) progress is complete. The result is negative
// when event time runs ahead of the processing clock (replays of synthetic or
// future-stamped data).
func Lag(nowMillis, wm int64) int64 {
	if wm == MinWatermark || wm == MaxWatermark {
		return 0
	}
	return nowMillis - wm
}
