package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/iterate"
	"repro/internal/ml"
	"repro/internal/state"
	"repro/internal/txn"
)

// E11Iteration demonstrates the loops of §4.2: bulk-synchronous supersteps
// (connected components over a random graph) and asynchronous feedback
// (online SGD whose loss falls while the pipeline serves). Expected shape:
// CC converges in O(diameter) supersteps; SGD loss decreases monotonically
// (smoothed) across publications.
func E11Iteration(scale float64) Report {
	rep := Report{ID: "E11", Title: "Loops & cycles: BSP supersteps and online training (§4.2)"}

	// BSP: connected components over a random graph with two planted
	// components.
	nVerts := n(scale, 2_000)
	rng := rand.New(rand.NewSource(3))
	var verts []*iterate.Vertex
	for i := 0; i < nVerts; i++ {
		verts = append(verts, &iterate.Vertex{ID: fmt.Sprintf("v%d", i), Value: float64(i)})
	}
	// Edges only within each half: two components.
	half := nVerts / 2
	addEdge := func(a, b int) {
		verts[a].Edges = append(verts[a].Edges, iterate.Edge{To: verts[b].ID})
		verts[b].Edges = append(verts[b].Edges, iterate.Edge{To: verts[a].ID})
	}
	for i := 1; i < half; i++ {
		addEdge(i, rng.Intn(i))
	}
	for i := half + 1; i < nVerts; i++ {
		addEdge(i, half+rng.Intn(i-half))
	}
	g := iterate.NewPregel(verts)
	err := g.Run(func(ctx *iterate.VertexContext, msgs []any) {
		v := ctx.Vertex()
		cur := v.Value.(float64)
		changed := ctx.Superstep() == 0
		for _, m := range msgs {
			if l := m.(float64); l < cur {
				cur, changed = l, true
			}
		}
		v.Value = cur
		if changed {
			ctx.SendToAllNeighbors(cur)
		}
		ctx.VoteToHalt()
	}, 500)
	labels := map[float64]int{}
	for _, v := range g.Vertices {
		labels[v.Value.(float64)]++
	}
	rep.Rows = append(rep.Rows, fmt.Sprintf(
		"BSP connected components: %d vertices -> %d components in %d supersteps (err=%v)",
		nVerts, len(labels), g.Supersteps, err))

	// Online SGD in a pipeline: loss per publication.
	samples := make([]core.Event, n(scale, 5_000))
	for i := range samples {
		x := rng.Float64()*2 - 1
		samples[i] = core.Event{Timestamp: int64(i), Value: ml.Sample{Features: []float64{x}, Label: 2*x - 1}}
	}
	registry := ml.NewRegistry()
	sink := core.NewCollectSink()
	b := core.NewBuilder(core.Config{Name: "e11"})
	src := b.Source("samples", core.NewSliceSourceFactory(samples))
	ml.TrainOperator(src, "train", ml.NewLinearRegression(1), registry, 0.05, len(samples)/8).
		Sink("log", sink.Factory())
	if j, err := b.Build(); err == nil {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		if err := j.Run(ctx); err == nil {
			var losses []string
			for _, e := range sink.Events() {
				if pe, ok := e.Value.(ml.PublishEvent); ok && pe.AvgLoss > 0 {
					losses = append(losses, fmt.Sprintf("v%d:%.4f", pe.Version, pe.AvgLoss))
				}
			}
			rep.Rows = append(rep.Rows, "online SGD loss per published model version: "+join(losses, "  "))
		}
		cancel()
	}
	rep.Notes = append(rep.Notes,
		"asynchronous feedback loops are exercised separately by iterate.AsyncLoop and the statefun runtime")
	return rep
}

func join(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}

// E12Transactions measures the §4.2 transactional facility: serializable
// account transfers executed by 8 concurrent workers across partition counts
// and contention levels. Expected shape: with few partitions all workers
// serialise on the same locks; more partitions unlock parallelism — unless
// the working set is a handful of hot keys, in which case contention, not
// partitioning, is the bottleneck (the S-Store design discussion).
func E12Transactions(scale float64) Report {
	rep := Report{ID: "E12", Title: "Streaming transactions: throughput vs partitions and contention (§4.2, S-Store)"}
	txns := n(scale, 50_000)
	const workers = 8
	rep.Rows = append(rep.Rows, fmt.Sprintf("%-12s %-10s %14s %12s",
		"partitions", "hot keys", "txns/sec", "final sum ok"))
	for _, parts := range []int{1, 4, 16, 64} {
		for _, hot := range []bool{false, true} {
			store := txn.NewStore(parts)
			accounts := 1_000
			if hot {
				accounts = 4 // everything contends
			}
			for i := 0; i < accounts; i++ {
				k := fmt.Sprintf("acct%d", i)
				store.Execute([]string{k}, func(tx *txn.Tx) error { return tx.Set(k, int64(1_000_000)) })
			}
			start := time.Now()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < txns/workers; i++ {
						from := fmt.Sprintf("acct%d", rng.Intn(accounts))
						to := fmt.Sprintf("acct%d", rng.Intn(accounts))
						if from == to {
							continue
						}
						store.Execute([]string{from, to}, func(tx *txn.Tx) error {
							fv, _, _ := tx.Get(from)
							tv, _, _ := tx.Get(to)
							// Simulated business logic: without per-txn work,
							// lock handoff rather than the critical section
							// dominates and partitioning shows nothing.
							work := int64(0)
							for w := 0; w < 2000; w++ {
								work += int64(w) * fv.(int64) % 7
							}
							// work>>62 is always zero here but defeats
							// dead-code elimination of the loop.
							tx.Set(from, fv.(int64)-1+(work>>62))
							tx.Set(to, tv.(int64)+1)
							return nil
						})
					}
				}(int64(w + 1))
			}
			wg.Wait()
			el := time.Since(start).Seconds()
			var total int64
			for _, v := range store.Snapshot() {
				total += v.(int64)
			}
			rep.Rows = append(rep.Rows, fmt.Sprintf("%-12d %-10v %14.0f %12v",
				parts, hot, float64(txns)/el, total == int64(accounts)*1_000_000))
		}
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("%d workers issuing transfers concurrently on GOMAXPROCS=%d; money conservation checked per cell",
			workers, runtime.GOMAXPROCS(0)),
		"on a single core the partition axis is flat by construction; with cores it scales until hot-key contention binds",
		"serializability additionally verified by TestConcurrentTransfersPreserveTotal")
	return rep
}

// E13Rescale measures live reconfiguration (§3.3/§4.2): savepoint → key-group
// redistribution → restore at higher parallelism, vs restarting from scratch.
// Expected shape: migration moves only the state bytes and replays only the
// post-savepoint tail, while a restart reprocesses everything.
func E13Rescale(scale float64) Report {
	rep := Report{ID: "E13", Title: "Elasticity & reconfiguration: rescale with key-group migration vs restart (§3.3)"}
	events := n(scale, 20_000)
	evs := make([]core.Event, events)
	for i := range evs {
		evs[i] = core.Event{Key: fmt.Sprintf("k%d", i%997), Timestamp: int64(i), Value: int64(1)}
	}

	store := core.NewMemorySnapshotStore()
	build := func(par int, stopAt int, jobRef **core.Job) (*core.Job, *core.CollectSink) {
		sink := core.NewCollectSink()
		b := core.NewBuilder(core.Config{Name: "e13", SnapshotStore: store, ChannelCapacity: 8})
		s := b.Source("src", core.NewSliceSourceFactory(evs))
		if stopAt > 0 {
			s = s.Process("mid", savepointAfter(stopAt, jobRef))
		} else {
			s = s.Map("mid", func(e core.Event) (core.Event, bool) { return e, true })
		}
		s.KeyBy(func(e core.Event) string { return e.Key }).
			ProcessWith("count", countOpFactory(), par).
			Sink("out", sink.Factory())
		j, err := b.Build()
		if err != nil {
			panic(err)
		}
		return j, sink
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var j1 *core.Job
	job1, _ := build(2, events/2, &j1)
	j1 = job1
	if err := job1.Run(ctx); err != nil {
		rep.Rows = append(rep.Rows, "FAILED: "+err.Error())
		return rep
	}
	cp := job1.LastCheckpoint()

	t0 := time.Now()
	stats, err := core.RescaleCheckpoint(store, cp, cp+100, "count", 8, state.DefaultKeyGroups)
	migrate := time.Since(t0)
	if err != nil {
		rep.Rows = append(rep.Rows, "FAILED: "+err.Error())
		return rep
	}
	t0 = time.Now()
	job2, sink2 := build(8, 0, nil)
	job2.RestoreFrom(cp + 100)
	if err := job2.Run(ctx); err != nil {
		rep.Rows = append(rep.Rows, "FAILED: "+err.Error())
		return rep
	}
	resume := time.Since(t0)

	// Baseline: full restart at parallelism 8 reprocesses everything.
	t0 = time.Now()
	job3, sink3 := build(8, 0, nil)
	if err := job3.Run(ctx); err != nil {
		rep.Rows = append(rep.Rows, "FAILED: "+err.Error())
		return rep
	}
	restart := time.Since(t0)

	total2 := sumCounts(sink2)
	total3 := sumCounts(sink3)
	rep.Rows = append(rep.Rows, fmt.Sprintf("rescale %d->%d instances: migrated %d state bytes, %d timers, in %v",
		stats.OldParallelism, stats.NewParallelism, stats.StateBytes, stats.Timers, migrate))
	rep.Rows = append(rep.Rows, fmt.Sprintf("%-22s %14s %16s %10s", "strategy", "wall time", "events replayed", "correct"))
	rep.Rows = append(rep.Rows, fmt.Sprintf("%-22s %14v %16d %10v",
		"migrate + resume", resume, events/2, total2 == int64(events)))
	rep.Rows = append(rep.Rows, fmt.Sprintf("%-22s %14v %16d %10v",
		"full restart", restart, events, total3 == int64(events)))
	rep.Notes = append(rep.Notes,
		"keyed state is organised in 128 key groups (Flink-style); rescaling reassigns contiguous group ranges")
	return rep
}

func sumCounts(sink *core.CollectSink) int64 {
	var total int64
	for _, e := range sink.Events() {
		total += e.Value.(int64)
	}
	return total
}

// countOpFactory builds the keyed counting operator used by E13.
func countOpFactory() core.OperatorFactory {
	return func() core.Operator { return &countOp{} }
}

type countOp struct {
	core.BaseOperator
}

func (c *countOp) ProcessElement(e core.Event, ctx core.Context) error {
	st := ctx.State().Value("count")
	n := int64(0)
	if v, ok := st.Get(); ok {
		n = v.(int64)
	}
	st.Set(n + 1)
	return nil
}

func (c *countOp) Close(ctx core.Context) error {
	ctx.State().ForEachKey("count", func(key string, v any) bool {
		ctx.Emit(core.Event{Key: key, Value: v})
		return true
	})
	return nil
}

// savepointAfter builds a pass-through operator triggering a savepoint.
func savepointAfter(at int, job **core.Job) core.OperatorFactory {
	return func() core.Operator { return &savepointOp{at: at, job: job} }
}

type savepointOp struct {
	core.BaseOperator
	at   int
	seen int
	job  **core.Job
}

func (o *savepointOp) ProcessElement(e core.Event, ctx core.Context) error {
	ctx.Emit(e)
	o.seen++
	if o.seen == o.at && o.job != nil && *o.job != nil {
		(*o.job).TriggerSavepoint()
	}
	return nil
}
