package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cql"
	"repro/internal/eventtime"
	"repro/internal/gen"
	"repro/internal/ml"
	"repro/internal/statefun"
	"repro/internal/synopsis"
	"repro/internal/txn"
	"repro/internal/window"
)

// E1Evolution regenerates Figure 1: the three generations of stream
// processing, each demonstrated by a runnable mini-pipeline built from this
// repository's implementation of that generation's signature techniques.
func E1Evolution(scale float64) Report {
	rep := Report{ID: "E1", Title: "Figure 1 — the evolution of stream processing (one runnable pipeline per generation)"}
	events := n(scale, 50_000)

	rep.Rows = append(rep.Rows,
		"1st gen ('92-'10, DBs->DSMSs): continuous queries (internal/cql), synopses (internal/synopsis),",
		"        sliding windows (internal/window), slack ordering + load shedding (internal/eventtime, internal/load), CEP (internal/cep)",
		"2nd gen ('10-'18, scalable streaming): out-of-order + watermarks (internal/eventtime), managed partitioned",
		"        state (internal/state, internal/lsm), exactly-once barriers (internal/core), reconfiguration (core.RescaleCheckpoint),",
		"        backpressure + elasticity (internal/load), stream SQL (internal/cql), lineage baseline (internal/lineage)",
		"3rd gen ('18-, beyond analytics): stateful functions/actors (internal/statefun), transactions (internal/txn),",
		"        online ML serving+training (internal/ml), streaming graphs (internal/graphstream), loops (internal/iterate),",
		"        queryable state (internal/queryable), state versioning (state.SchemaRegistry)",
		"")

	// --- Generation 1: single-threaded CQL query over an ordered stream,
	// best-effort slack reordering, synopsis state.
	{
		spec := gen.FlowSpec(events, 10_000, 1)
		ex := cql.MustPrepare("RSTREAM (SELECT proto, COUNT(*) AS n FROM flows [ROWS 1000] GROUP BY proto)")
		cm := synopsis.NewCountMinWithSize(2048, 4)
		slack := eventtime.NewSlackBuffer(64)
		start := time.Now()
		results := 0
		for i := 0; i < events; i++ {
			e := spec.At(int64(i))
			flow := e.Value.(gen.NetFlow)
			cm.Add(flow.SrcIP, 1)
			for _, released := range slack.Push(e.Timestamp, flow) {
				f := released.(gen.NetFlow)
				out, err := ex.Push("flows", e.Timestamp, cql.Row{"proto": f.Protocol})
				if err == nil {
					results += len(out)
				}
			}
		}
		el := time.Since(start)
		rep.Rows = append(rep.Rows, fmt.Sprintf(
			"gen1 pipeline (CQL+synopsis+slack): %d flows in %v (%.0f ev/s), %d relation updates, CMS %dB, %d late-dropped",
			events, el.Round(time.Millisecond), float64(events)/el.Seconds(), results, cm.Bytes(), slack.Dropped))
	}

	// --- Generation 2: parallel keyed event-time windows over disordered
	// input with watermarks and exactly-once checkpoints.
	{
		spec := gen.Spec{N: events, Keys: 256, IntervalMs: 2, DisorderMs: 500, Seed: 2}
		sink := core.NewCollectSink()
		b := core.NewBuilder(core.Config{
			Name:            "gen2",
			SnapshotStore:   core.NewMemorySnapshotStore(),
			CheckpointEvery: events / 4,
			ChannelCapacity: 512,
		})
		s := b.Source("src", gen.SourceFactory(spec), core.WithBoundedDisorder(500), core.WithParallelism(2)).
			KeyBy(func(e core.Event) string { return e.Key })
		window.Apply(s, "win", window.NewTumbling(5_000),
			window.FloatAggregate(window.Sum, func(e core.Event) float64 { return e.Value.(float64) })).
			Sink("out", sink.Factory())
		j, err := b.Build()
		start := time.Now()
		if err == nil {
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			err = j.Run(ctx)
			cancel()
		}
		el := time.Since(start)
		status := "ok"
		if err != nil {
			status = err.Error()
		}
		rep.Rows = append(rep.Rows, fmt.Sprintf(
			"gen2 pipeline (parallel OOO windows + exactly-once): %d events in %v (%.0f ev/s), %d window results, checkpoint %d, %s",
			events, el.Round(time.Millisecond), float64(events)/el.Seconds(), sink.Len(), j.LastCheckpoint(), status))
	}

	// --- Generation 3: stateful functions routing to a transactional store
	// with a continuously served model.
	{
		store := txn.NewStore(8)
		registry := ml.NewRegistry()
		model := ml.NewLinearRegression(1)
		for i := 0; i < 200; i++ {
			model.Update(ml.Sample{Features: []float64{float64(i % 10)}, Label: float64(i%10) * 2}, 0.05)
		}
		registry.Publish(model)

		rt := statefun.NewRuntime(4)
		rt.Register("account", func(ctx statefun.Context, msg statefun.Message) error {
			amt := msg.Payload.(int64)
			key := "bal/" + ctx.Self().ID
			return store.Execute([]string{key}, func(tx *txn.Tx) error {
				v, _, _ := tx.Get(key)
				cur, _ := v.(int64)
				return tx.Set(key, cur+amt)
			})
		})
		rt.Start()
		nMsgs := events / 10
		start := time.Now()
		for i := 0; i < nMsgs; i++ {
			rt.Send(statefun.Address{Type: "account", ID: fmt.Sprintf("a%d", i%50)}, int64(1))
		}
		rt.Stop()
		el := time.Since(start)
		m, v := registry.Current()
		pred := m.Predict([]float64{4})
		rep.Rows = append(rep.Rows, fmt.Sprintf(
			"gen3 pipeline (actors+txn+ML serving): %d messages in %v (%.0f msg/s), %d commits, model v%d predicts f(4)=%.2f",
			nMsgs, el.Round(time.Millisecond), float64(nMsgs)/el.Seconds(), store.Commits.Load(), v, pred))
	}
	return rep
}

// E2Table1 regenerates Table 1 ("Requirements for new applications"): the
// requirement × application matrix, where every checkmark is backed by a
// package and test in this repository. The per-cell checks are reconstructed
// from the §4.2 prose (the tutorial's table is rendered ambiguously in the
// source text; the row totals — 8 checks for Cloud Apps, 8 for ML, 4 for
// Graph — match).
func E2Table1() Report {
	rep := Report{ID: "E2", Title: "Table 1 — requirements for new applications, mapped to implementations"}

	type req struct {
		name          string
		cloud, ml, gr bool
		impl          string
	}
	reqs := []req{
		{"Programming Models", true, true, true, "core.Builder fluent API; statefun actors; cql SQL; iterate BSP"},
		{"Transactions", true, false, false, "txn.Store (serializable 2PL), txn.Workflow (compensation)"},
		{"Advanced State Backends", true, true, true, "state: memory / LSM (internal/lsm) / changelog; TTL"},
		{"Loops & Cycles", true, true, true, "iterate.AsyncLoop (async), iterate.Pregel (bulk-synchronous)"},
		{"Elasticity & Reconfiguration", true, true, false, "core.RescaleCheckpoint + load.ScalingPolicy (DS2-style)"},
		{"Dynamic Topologies", true, true, false, "statefun: addresses spawn on first message (virtual actors)"},
		{"Shared Mutable State", false, true, true, "txn.Store shared across operators; ml.Registry; graphstream"},
		{"Queryable State", true, true, false, "queryable.Service + TCP server/client, snapshot isolation"},
		{"State Versioning", true, true, false, "state.SchemaRegistry + VersionedValue; ml.Registry versions"},
		{"Hardware Acceleration", false, false, false, "window.BatchTumbling vectorized kernels (CPU stand-in, E10)"},
	}

	mark := func(b bool) string {
		if b {
			return "Y"
		}
		return "."
	}
	rep.Rows = append(rep.Rows, fmt.Sprintf("%-30s %-6s %-4s %-6s %s",
		"requirement", "cloud", "ml", "graph", "implemented by"))
	cloudN, mlN, grN := 0, 0, 0
	for _, r := range reqs {
		rep.Rows = append(rep.Rows, fmt.Sprintf("%-30s %-6s %-4s %-6s %s",
			r.name, mark(r.cloud), mark(r.ml), mark(r.gr), r.impl))
		if r.cloud {
			cloudN++
		}
		if r.ml {
			mlN++
		}
		if r.gr {
			grN++
		}
	}
	rep.Rows = append(rep.Rows, fmt.Sprintf("checks per application: cloud=%d ml=%d graph=%d (paper row totals: 8 / 8 / 4)",
		cloudN, mlN, grN))
	rep.Notes = append(rep.Notes,
		"every requirement row has a working implementation regardless of which cells the paper checks;",
		"HW acceleration is simulated by CPU-vectorized kernels per the substitution rule (see DESIGN.md §2)")
	return rep
}
