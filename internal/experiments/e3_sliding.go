package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/window"
)

// E3SlidingAggregation reproduces the "No pane, no gain" comparison: cost of
// naive re-evaluation vs pane-based partial aggregation vs two-stacks
// incremental aggregation, for invertible (sum) and non-invertible (min)
// functions, across window/slide ratios. Expected shape: naive degrades with
// range; panes amortise by the range/slide overlap factor; two-stacks is
// near-constant per element.
func E3SlidingAggregation(scale float64) Report {
	rep := Report{ID: "E3", Title: "Sliding-window aggregation: naive vs panes vs two-stacks (§2.1, Li et al. 2005)"}
	events := n(scale, 200_000)
	rep.Rows = append(rep.Rows, fmt.Sprintf("%-8s %-6s %10s %14s %14s %14s",
		"fn", "range", "slide", "naive ns/ev", "panes ns/ev", "2stacks ns/ev"))

	for _, fn := range []window.AggFn{window.Sum, window.Min} {
		for _, rng := range []int64{10_000, 60_000, 300_000} {
			slide := int64(1_000)
			na := timeAggregator(window.NewNaiveSliding(rng, slide, fn), events)
			pa := timeAggregator(window.NewPaneSliding(rng, slide, fn), events)
			ts := timeAggregator(window.NewTwoStacksSliding(rng, slide, fn), events)
			rep.Rows = append(rep.Rows, fmt.Sprintf("%-8s %-6d %10d %14.1f %14.1f %14.1f",
				fn.Name, rng/1000, slide/1000, na, pa, ts))
		}
	}
	rep.Notes = append(rep.Notes,
		"expected shape: naive grows with range; panes ~range/gcd(range,slide) partials; two-stacks O(1) amortised",
		"all three strategies verified element-for-element equal in TestSlidingAggregatorsAgree")
	return rep
}

// timeAggregator measures ns/event for one strategy over a synthetic
// timestamp-ordered stream.
func timeAggregator(agg window.SlidingAggregator, events int) float64 {
	rng := rand.New(rand.NewSource(7))
	start := time.Now()
	ts := int64(0)
	for i := 0; i < events; i++ {
		ts += int64(rng.Intn(20))
		agg.Add(ts, rng.Float64())
	}
	return float64(time.Since(start).Nanoseconds()) / float64(events)
}
