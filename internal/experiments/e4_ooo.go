package experiments

import (
	"fmt"

	"repro/internal/eventtime"
	"repro/internal/gen"
)

// E4OOPvsBuffering reproduces the §2.2 comparison of the two fundamental
// out-of-order strategies: (i) buffer at ingestion and release in order
// (IOP) vs (ii) ingest disorder directly and reconcile with watermarks
// (OOP, Li et al. VLDB 2008). Both compute identical tumbling counts; the
// figure is buffered-memory and emission latency as disorder grows.
// Expected shape: IOP buffer grows linearly with (rate × disorder) while OOP
// keeps only per-window partials; both see the same watermark-bound result
// delay.
func E4OOPvsBuffering(scale float64) Report {
	rep := Report{ID: "E4", Title: "Out-of-order handling: in-order buffering (IOP) vs native OOP (§2.2)"}
	events := n(scale, 100_000)
	const windowMs = 1_000
	rep.Rows = append(rep.Rows, fmt.Sprintf("%-12s %16s %16s %12s %14s",
		"disorder(ms)", "IOP max buffered", "OOP max state", "results ==", "IOP/OOP mem"))

	for _, disorder := range []int64{0, 100, 1_000, 5_000, 10_000} {
		spec := gen.Spec{N: events, Keys: 64, IntervalMs: 2, DisorderMs: disorder, Seed: 3}

		// IOP: reorder buffer releases by watermark, then an in-order
		// tumbling counter consumes.
		iopCounts := map[int64]int64{}
		buf := eventtime.NewReorderBuffer(0)
		wm := eventtime.NewBoundedOutOfOrderness(disorder)
		release := func(bound int64) {
			for _, v := range buf.Release(bound) {
				ts := v.(int64)
				iopCounts[ts/windowMs]++
			}
		}
		for i := 0; i < events; i++ {
			e := spec.At(int64(i))
			buf.Push(e.Timestamp, e.Timestamp)
			wm.OnEvent(e.Timestamp)
			if i%32 == 0 {
				release(wm.OnPeriodic())
			}
		}
		for _, v := range buf.Flush() {
			iopCounts[v.(int64)/windowMs]++
		}

		// OOP: disordered events update window partials directly; windows
		// close when the watermark passes.
		oopCounts := map[int64]int64{}
		oopOpen := map[int64]int64{}
		maxOpen := 0
		wm2 := eventtime.NewBoundedOutOfOrderness(disorder)
		for i := 0; i < events; i++ {
			e := spec.At(int64(i))
			oopOpen[e.Timestamp/windowMs]++
			wm2.OnEvent(e.Timestamp)
			if len(oopOpen) > maxOpen {
				maxOpen = len(oopOpen)
			}
			if i%32 == 0 {
				bound := wm2.OnPeriodic()
				for w, c := range oopOpen {
					if (w+1)*windowMs <= bound {
						oopCounts[w] = c
						delete(oopOpen, w)
					}
				}
			}
		}
		for w, c := range oopOpen {
			oopCounts[w] = c
		}

		equal := len(iopCounts) == len(oopCounts)
		if equal {
			for w, c := range iopCounts {
				if oopCounts[w] != c {
					equal = false
					break
				}
			}
		}
		ratio := float64(buf.MaxBuffered) / float64(max(maxOpen, 1))
		rep.Rows = append(rep.Rows, fmt.Sprintf("%-12d %16d %16d %12v %13.1fx",
			disorder, buf.MaxBuffered, maxOpen, equal, ratio))
	}
	rep.Notes = append(rep.Notes,
		"IOP buffers whole events until the watermark; OOP keeps one partial per open window",
		"the window package's engine operator is the OOP architecture; eventtime.ReorderBuffer is the IOP one")
	return rep
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// E5ProgressMechanisms contrasts the five progress-tracking measures of
// §2.3 on one disordered stream: how many control messages each needs and
// how close their progress bound tracks the true low watermark. Expected
// shape: punctuations cost one in-band message per assertion; periodic
// watermarks/heartbeats trade frequency for lag; slack admits fixed disorder
// but drops stragglers; frontiers track exactly at the cost of per-event
// occurrence counting.
func E5ProgressMechanisms(scale float64) Report {
	rep := Report{ID: "E5", Title: "Progress tracking: punctuations vs watermarks vs heartbeats vs slack vs frontiers (§2.3)"}
	events := n(scale, 50_000)
	const disorder = 500
	spec := gen.Spec{N: events, Keys: 16, IntervalMs: 2, DisorderMs: disorder, Seed: 5}

	// Ground truth: the exact low watermark after each event (max prefix
	// timestamp minus nothing — min outstanding).
	evs := make([]int64, events)
	for i := range evs {
		evs[i] = spec.At(int64(i)).Timestamp
	}

	type row struct {
		name    string
		ctlMsgs int
		avgLag  float64
		dropped int64
		exact   bool
	}
	var rows []row

	// Punctuations: the source emits "no more <= t" every 64 events (it
	// knows its own disorder bound).
	{
		tr := eventtime.NewPunctuationTracker(1)
		ctl, lagSum, lagN := 0, 0.0, 0
		maxSeen := int64(0)
		for i, ts := range evs {
			if ts > maxSeen {
				maxSeen = ts
			}
			if i%64 == 63 {
				tr.Observe(0, eventtime.Punctuation{TS: maxSeen - disorder - 1})
				ctl++
				lagSum += float64(maxSeen - tr.Current())
				lagN++
			}
		}
		rows = append(rows, row{"punctuation", ctl, lagSum / float64(lagN), 0, false})
	}
	// Watermarks: periodic generator every 64 events.
	{
		g := eventtime.NewBoundedOutOfOrderness(disorder)
		ctl, lagSum, lagN := 0, 0.0, 0
		maxSeen := int64(0)
		for i, ts := range evs {
			g.OnEvent(ts)
			if ts > maxSeen {
				maxSeen = ts
			}
			if i%64 == 63 {
				wm := g.OnPeriodic()
				ctl++
				lagSum += float64(maxSeen - wm)
				lagN++
			}
		}
		rows = append(rows, row{"watermark", ctl, lagSum / float64(lagN), 0, false})
	}
	// Heartbeats: source reports its clock; coordinator derives bound with
	// skew+delay slack.
	{
		h := eventtime.NewHeartbeatGenerator(disorder/2, disorder/2)
		ctl, lagSum, lagN := 0, 0.0, 0
		maxSeen := int64(0)
		for i, ts := range evs {
			if ts > maxSeen {
				maxSeen = ts
			}
			if i%64 == 63 {
				h.ReportSourceClock("s", maxSeen)
				ctl++
				lagSum += float64(maxSeen - h.Heartbeat())
				lagN++
			}
		}
		rows = append(rows, row{"heartbeat", ctl, lagSum / float64(lagN), 0, false})
	}
	// Slack: Aurora's fixed reorder allowance — no control messages at all,
	// but stragglers beyond the slack are dropped (best-effort). The slack
	// (64 positions ≈ 128 ms) is deliberately smaller than the disorder
	// bound to expose the loss behaviour.
	{
		sl := eventtime.NewSlackBuffer(64)
		for _, ts := range evs {
			sl.Push(ts, ts)
		}
		sl.Flush()
		rows = append(rows, row{"slack", 0, float64(64 * 2), sl.Dropped, false})
	}
	// Frontiers: exact — every event adds/retires a pointstamp occurrence.
	{
		f := eventtime.NewFrontier()
		ctl := 0
		lagSum, lagN := 0.0, 0
		maxSeen := int64(0)
		for i, ts := range evs {
			f.Add(eventtime.Pointstamp{Node: 0, Time: ts}, 1)
			ctl += 2 // occurrence increment + later retirement
			if ts > maxSeen {
				maxSeen = ts
			}
			// Retire everything older than the disorder bound (simulating
			// completed processing).
			if i%64 == 63 {
				lagSum += float64(maxSeen - f.FrontierAt(0))
				lagN++
				for _, old := range evs[maxInt(0, i-63) : i+1] {
					f.Add(eventtime.Pointstamp{Node: 0, Time: old}, -1)
				}
			}
		}
		rows = append(rows, row{"frontier", ctl, lagSum / float64(lagN), 0, true})
	}

	rep.Rows = append(rep.Rows, fmt.Sprintf("%-12s %10s %12s %9s %7s",
		"mechanism", "ctl msgs", "avg lag(ms)", "dropped", "exact"))
	for _, r := range rows {
		rep.Rows = append(rep.Rows, fmt.Sprintf("%-12s %10d %12.0f %9d %7v",
			r.name, r.ctlMsgs, r.avgLag, r.dropped, r.exact))
	}
	rep.Notes = append(rep.Notes,
		"slack is the only best-effort mechanism (1st gen): bounded memory, but late data is lost",
		"frontiers are exact but pay per-event occurrence accounting (Naiad)")
	return rep
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
