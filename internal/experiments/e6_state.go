package experiments

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/ha"
	"repro/internal/lineage"
	"repro/internal/state"
)

// E6StateBackends compares the state-management designs of §3.1: the
// in-memory ("internally managed") backend, the LSM-tree disk backend, and
// the changelog ("externally managed") backend, on write/read cost, snapshot
// size and recovery path. It also contrasts full vs incremental checkpoints
// on the LSM backend (manifest diffing). Expected shape: memory fastest,
// LSM pays the write-ahead + flush cost but spills beyond RAM and
// checkpoints incrementally; changelog recovery replays the log instead of
// shipping an image.
func E6StateBackends(scale float64) Report {
	rep := Report{ID: "E6", Title: "State backends: memory vs LSM vs changelog; full vs incremental checkpoints (§3.1)"}
	updates := n(scale, 100_000)
	keys := 5_000

	type res struct {
		name          string
		writeNsPerOp  float64
		readNsPerOp   float64
		snapshotBytes int
		recovery      string
	}
	var results []res

	runUpdates := func(b state.Backend) (writeNs, readNs float64) {
		start := time.Now()
		for i := 0; i < updates; i++ {
			b.SetCurrentKey(fmt.Sprintf("k%d", i%keys))
			b.Value("v").Set(int64(i))
		}
		writeNs = float64(time.Since(start).Nanoseconds()) / float64(updates)
		start = time.Now()
		for i := 0; i < updates/4; i++ {
			b.SetCurrentKey(fmt.Sprintf("k%d", i%keys))
			b.Value("v").Get()
		}
		readNs = float64(time.Since(start).Nanoseconds()) / float64(updates/4)
		return writeNs, readNs
	}

	// Memory backend.
	{
		b := state.NewMemoryBackend(0)
		w, r := runUpdates(b)
		img, _ := b.Snapshot()
		results = append(results, res{"memory", w, r, len(img), "restore image"})
	}
	// LSM backend.
	{
		dir, _ := os.MkdirTemp("", "lsm-e6")
		defer os.RemoveAll(dir)
		b, err := state.NewLSMBackend(dir, 0)
		if err == nil {
			w, r := runUpdates(b)
			img, _ := b.Snapshot()
			results = append(results, res{"lsm", w, r, len(img), "restore image or reopen dir"})
			b.Dispose()
		}
	}
	// Changelog backend.
	{
		log := state.NewChangelog()
		b := state.NewChangelogBackend(0, log)
		w, r := runUpdates(b)
		enc, _ := log.Encode()
		preLen := log.Len()
		log.Compact()
		results = append(results, res{"changelog", w, r, len(enc),
			fmt.Sprintf("replay log (%d ops, %d after compaction)", preLen, log.Len())})
	}

	rep.Rows = append(rep.Rows, fmt.Sprintf("%-10s %12s %12s %14s  %s",
		"backend", "write ns/op", "read ns/op", "snapshot B", "recovery path"))
	for _, r := range results {
		rep.Rows = append(rep.Rows, fmt.Sprintf("%-10s %12.0f %12.0f %14d  %s",
			r.name, r.writeNsPerOp, r.readNsPerOp, r.snapshotBytes, r.recovery))
	}

	// Incremental checkpoints on the LSM manifest.
	dir, _ := os.MkdirTemp("", "lsm-inc")
	defer os.RemoveAll(dir)
	if b, err := state.NewLSMBackend(dir, 0); err == nil {
		for i := 0; i < updates/2; i++ {
			b.SetCurrentKey(fmt.Sprintf("k%d", i%keys))
			b.Value("v").Set(int64(i))
		}
		b.Tree().Flush()
		first := manifestSet(b)
		for i := updates / 2; i < updates; i++ {
			b.SetCurrentKey(fmt.Sprintf("k%d", i%keys))
			b.Value("v").Set(int64(i))
		}
		b.Tree().Flush()
		second := manifestSet(b)
		newFiles := 0
		for f := range second {
			if !first[f] {
				newFiles++
			}
		}
		rep.Rows = append(rep.Rows, fmt.Sprintf(
			"incremental checkpoint: manifest %d -> %d tables, only %d new files shipped",
			len(first), len(second), newFiles))
		b.Dispose()
	}
	rep.Notes = append(rep.Notes,
		"snapshots use one portable Image format: a memory checkpoint restores into LSM and vice versa")
	return rep
}

func manifestSet(b *state.LSMBackend) map[string]bool {
	m := map[string]bool{}
	for _, f := range b.Tree().Manifest() {
		m[f] = true
	}
	return m
}

// E7Recovery reproduces the §3.2 availability comparison: active standby
// (instant failover, 2x resources) vs passive standby (checkpoint restore +
// replay, 1x resources) vs the lineage/micro-batch baseline (recompute from
// the last state checkpoint). Expected shape: active ~0 recovery at double
// cost; passive recovery bounded by checkpoint interval; lineage recomputes
// up to k-1 batches.
func E7Recovery(scale float64) Report {
	rep := Report{ID: "E7", Title: "Fault recovery: active vs passive standby vs lineage baseline (§3.2)"}
	events := n(scale, 4_000)

	fac := func(sink *core.CollectSink, store core.SnapshotStore) (*core.Job, error) {
		evs := make([]core.Event, events)
		for i := range evs {
			evs[i] = core.Event{Key: fmt.Sprintf("k%d", i%7), Timestamp: int64(i), Value: int64(1)}
		}
		b := core.NewBuilder(core.Config{
			Name:            "recovery",
			SnapshotStore:   store,
			CheckpointEvery: events / 10,
			ChannelCapacity: 8,
		})
		b.Source("src", core.NewSliceSourceFactory(evs)).
			Map("id", func(e core.Event) (core.Event, bool) { return e, true }).
			Sink("out", sink.Factory())
		return b.Build()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	rep.Rows = append(rep.Rows, fmt.Sprintf("%-18s %8s %10s %12s %10s %10s",
		"mode", "output", "dups", "recovery ms", "replayed", "resources"))

	if out, r, err := ha.RunActiveStandby(ctx, fac, events/2); err == nil {
		rep.Rows = append(rep.Rows, fmt.Sprintf("%-18s %8d %10d %12d %10d %9dx",
			r.Mode, len(out), r.Duplicates, r.RecoveryMillis, r.ReplayedEvents, r.ResourceUnits))
	} else {
		rep.Rows = append(rep.Rows, "active-standby FAILED: "+err.Error())
	}
	store := core.NewMemorySnapshotStore()
	if out, r, err := ha.RunPassiveStandby(ctx, fac, store, events/2); err == nil {
		rep.Rows = append(rep.Rows, fmt.Sprintf("%-18s %8d %10d %12d %10d %9dx",
			r.Mode, len(out), r.Duplicates, r.RecoveryMillis, r.ReplayedEvents, r.ResourceUnits))
	} else {
		rep.Rows = append(rep.Rows, "passive-standby FAILED: "+err.Error())
	}

	// Lineage baseline: micro-batches with a failure mid-stream.
	{
		evs := make([]core.Event, events)
		for i := range evs {
			evs[i] = core.Event{Timestamp: int64(i), Value: int64(1)}
		}
		j, err := lineage.NewJob(lineage.Config{BatchSize: events / 40, CheckpointEveryBatches: 8},
			evs, nil, func(st any, in []core.Event) ([]core.Event, any) {
				total := st.(int64) + int64(len(in))
				return []core.Event{{Value: total}}, total
			}, int64(0))
		if err == nil {
			out, _ := j.Run(27)
			rep.Rows = append(rep.Rows, fmt.Sprintf("%-18s %8d %10d %12s %10d %9dx",
				"lineage(microbatch)", len(out), 0, "n/a", j.RecomputedBatches*(events/40), 1))
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"lineage recovery recomputed %d batches (checkpoint every 8 batches)", j.RecomputedBatches))
		}
	}
	rep.Notes = append(rep.Notes,
		"active standby: duplicates are the secondary's parallel output, suppressed by the exactly-once dedup stage")

	// Ablation (DESIGN.md §5): checkpoint interval sweep — shorter intervals
	// cost more checkpoints (bytes written in steady state) but bound the
	// replay after a failure; longer intervals invert the trade.
	rep.Rows = append(rep.Rows, "", "ablation: checkpoint interval vs replay-on-failure (passive standby)")
	rep.Rows = append(rep.Rows, fmt.Sprintf("%-20s %14s %16s %12s %14s",
		"interval (events)", "checkpoints", "ckpt bytes", "replayed", "replay bound"))
	// Intervals stay below half the kill point so at least one checkpoint
	// reliably completes before the failure.
	for _, interval := range []int{events / 50, events / 10, events / 4} {
		if interval < 1 {
			interval = 1
		}
		store := core.NewMemorySnapshotStore()
		facI := func(sink *core.CollectSink, st core.SnapshotStore) (*core.Job, error) {
			evs := make([]core.Event, events)
			for i := range evs {
				evs[i] = core.Event{Key: fmt.Sprintf("k%d", i%7), Timestamp: int64(i), Value: int64(1)}
			}
			b := core.NewBuilder(core.Config{
				Name:            "sweep",
				SnapshotStore:   st,
				CheckpointEvery: interval,
				ChannelCapacity: 8,
			})
			b.Source("src", core.NewSliceSourceFactory(evs)).
				Map("id", func(e core.Event) (core.Event, bool) { return e, true }).
				Sink("out", sink.Factory())
			return b.Build()
		}
		_, r, err := ha.RunPassiveStandby(ctx, facI, store, events/2)
		if err != nil {
			// At tiny scales the failure can land before the first
			// checkpoint completes; that is the expected degenerate end of
			// the trade-off, not a harness failure.
			rep.Rows = append(rep.Rows, fmt.Sprintf(
				"%-20d no checkpoint completed before the failure (interval too long for this scale)", interval))
			continue
		}
		var totalBytes int64
		nCkpts := 0
		for _, m := range store.Completed() {
			totalBytes += m.Bytes
			nCkpts++
		}
		// A single run's replay is one draw from [0, interval] (failure
		// point relative to the last checkpoint); report the bound too.
		rep.Rows = append(rep.Rows, fmt.Sprintf("%-20d %14d %16d %12d %14d",
			interval, nCkpts, totalBytes, r.ReplayedEvents, interval))
	}
	return rep
}
