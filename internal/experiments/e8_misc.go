package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/load"
	"repro/internal/synopsis"
	"repro/internal/window"
)

// E8Overload reproduces the §3.3 generational contrast under a 2.5× burst:
// 1st-gen load shedding (random and semantic) vs 2nd-gen backpressure vs
// elasticity. Expected shape: shedding keeps latency low but loses tuples
// (semantic loses less utility); backpressure loses nothing but queues;
// elasticity scales out, recovering latency without loss.
func E8Overload(scale float64) Report {
	rep := Report{ID: "E8", Title: "Overload handling: shedding vs backpressure vs elasticity (§3.3)"}
	cfg := load.SimConfig{
		BaseRate:            n(scale, 100),
		BurstFactor:         2.5,
		BurstStart:          50,
		BurstEnd:            150,
		Ticks:               300,
		CapacityPerInstance: n(scale, 120),
		QueueBound:          n(scale, 500),
		Instances:           1,
		MaxInstances:        8,
		Seed:                7,
	}
	for _, r := range load.CompareOverloadPolicies(cfg) {
		rep.Rows = append(rep.Rows, r.String())
	}
	rep.Notes = append(rep.Notes,
		"semantic shedding drops lowest-utility tuples first (Aurora's QoS-driven shedder)",
		"the elastic controller is the DS2-style rate-based policy (three-steps); rescale pauses model state migration")
	return rep
}

// E9Synopses reproduces the 1st-generation bounded-memory design point of
// §3.1: approximate summaries vs exact state on a heavy-hitter and a
// distinct-count task over zipf-skewed flows. Expected shape: orders of
// magnitude less memory at bounded error.
func E9Synopses(scale float64) Report {
	rep := Report{ID: "E9", Title: "Synopses vs exact state: memory and accuracy (§3.1 'summary, synopsis, sketch')"}
	events := n(scale, 500_000)

	// Heavy-tail traffic: half the flows hit 10 hot talkers, half spread
	// over a 200k-address tail — the regime where exact per-key state is
	// expensive (the tail) while the signal (heavy hitters) is tiny.
	rng := rand.New(rand.NewSource(13))
	key := func() string {
		if rng.Intn(2) == 0 {
			return fmt.Sprintf("hot%d", rng.Intn(10))
		}
		return fmt.Sprintf("tail%d", rng.Intn(200_000))
	}

	exactCounts := map[string]uint64{}
	exactDistinct := map[string]bool{}
	cm, _ := synopsis.NewCountMin(0.001, 0.01)
	hll, _ := synopsis.NewHyperLogLog(12)
	eh, _ := synopsis.NewExpHistogram(60_000, 0.05)

	for i := 0; i < events; i++ {
		k := key()
		exactCounts[k]++
		exactDistinct[k] = true
		cm.Add(k, 1)
		hll.Add(k)
		eh.Add(int64(i * 2))
	}

	// Heavy-hitter accuracy over the top talker.
	var topKey string
	var topCount uint64
	for k, c := range exactCounts {
		if c > topCount {
			topKey, topCount = k, c
		}
	}
	est := cm.Estimate(topKey)
	exactBytes := 0
	for k := range exactCounts {
		exactBytes += len(k) + 8
	}
	distinctBytes := 0
	for k := range exactDistinct {
		distinctBytes += len(k)
	}

	rep.Rows = append(rep.Rows, fmt.Sprintf("%-24s %14s %14s %10s",
		"task", "exact bytes", "synopsis bytes", "error"))
	rep.Rows = append(rep.Rows, fmt.Sprintf("%-24s %14d %14d %9.2f%%",
		"heavy hitter (CMS)", exactBytes, cm.Bytes(),
		100*float64(est-topCount)/float64(topCount)))
	hllErr := 100 * (float64(hll.Estimate()) - float64(len(exactDistinct))) / float64(len(exactDistinct))
	rep.Rows = append(rep.Rows, fmt.Sprintf("%-24s %14d %14d %9.2f%%",
		"distinct count (HLL)", distinctBytes, hll.Bytes(), hllErr))
	rep.Rows = append(rep.Rows, fmt.Sprintf("%-24s %14s %14d %10s",
		"sliding count (ExpHist)", "O(window)", eh.Buckets()*16, "<=5% rel"))
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("stream: %d flows over %d distinct keys (10 hot + long tail); CMS error is on the top talker",
			events, len(exactDistinct)))
	return rep
}

// E10Vectorized reproduces the §4.2 hardware-acceleration claim at CPU
// scale: a branch-free batched window kernel vs the per-record scalar path.
// Expected shape: the batch kernel wins by the dispatch+pipelining factor —
// the same property GPU/FPGA results (Saber, Fleet) amplify further.
func E10Vectorized(scale float64) Report {
	rep := Report{ID: "E10", Title: "Vectorized window kernels vs per-record path (§4.2 HW acceleration)"}
	values := make([]float64, n(scale, 4_000_000))
	for i := range values {
		values[i] = float64(i%1000) * 0.5
	}
	rep.Rows = append(rep.Rows, fmt.Sprintf("%-6s %-8s %14s %14s %8s",
		"fn", "window", "scalar ns/v", "batch ns/v", "speedup"))
	for _, fn := range []window.AggFn{window.Sum, window.Min} {
		for _, size := range []int{64, 1024} {
			s := window.NewScalarTumbling(size, fn)
			bk := window.NewBatchTumbling(size, fn)
			// Flush drains the partial trailing window at end of stream —
			// scaled runs rarely land on a multiple of the window size, and
			// without the drain the batched kernel would retain the tail
			// records silently.
			t0 := time.Now()
			sOut := s.Process(values)
			if v, ok := s.Flush(); ok {
				sOut = append(sOut, v)
			}
			scalarNs := float64(time.Since(t0).Nanoseconds()) / float64(len(values))
			t0 = time.Now()
			bOut := bk.Process(values)
			if v, ok := bk.Flush(); ok {
				bOut = append(bOut, v)
			}
			batchNs := float64(time.Since(t0).Nanoseconds()) / float64(len(values))
			if len(sOut) != len(bOut) {
				rep.Notes = append(rep.Notes, fmt.Sprintf(
					"WARNING: scalar/batch window counts diverge (%d vs %d)", len(sOut), len(bOut)))
			}
			rep.Rows = append(rep.Rows, fmt.Sprintf("%-6s %-8d %14.2f %14.2f %7.1fx",
				fn.Name, size, scalarNs, batchNs, scalarNs/batchNs))
		}
	}
	rep.Notes = append(rep.Notes,
		"kernels verified equal to the scalar path in TestVectorizedKernelMatchesScalar")
	return rep
}
