// Package experiments implements the reproduction harness: one function per
// experiment in DESIGN.md §4 (E1–E13), each regenerating a paper exhibit
// (Figure 1, Table 1) or a figure-shaped comparison for a survey claim. The
// functions are shared by cmd/benchtables (human-readable report) and the
// root bench_test.go (testing.B benchmarks).
package experiments

import (
	"fmt"
	"strings"
)

// Report is one experiment's rendered result.
type Report struct {
	ID    string
	Title string
	Rows  []string
	Notes []string
}

// String renders the report.
func (r Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: %s ===\n", r.ID, r.Title)
	for _, row := range r.Rows {
		sb.WriteString("  " + row + "\n")
	}
	for _, n := range r.Notes {
		sb.WriteString("  note: " + n + "\n")
	}
	return sb.String()
}

// All runs every experiment with the given scale factor (1 = full harness
// size, smaller for quick runs).
func All(scale float64) []Report {
	if scale <= 0 {
		scale = 1
	}
	return []Report{
		E1Evolution(scale),
		E2Table1(),
		E3SlidingAggregation(scale),
		E4OOPvsBuffering(scale),
		E5ProgressMechanisms(scale),
		E6StateBackends(scale),
		E7Recovery(scale),
		E8Overload(scale),
		E9Synopses(scale),
		E10Vectorized(scale),
		E11Iteration(scale),
		E12Transactions(scale),
		E13Rescale(scale),
	}
}

func n(scale float64, base int) int {
	v := int(float64(base) * scale)
	if v < 10 {
		v = 10
	}
	return v
}
