package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsRunAtSmallScale smoke-tests every experiment and checks
// structural invariants of the reports.
func TestAllExperimentsRunAtSmallScale(t *testing.T) {
	reports := All(0.02)
	if len(reports) != 13 {
		t.Fatalf("want 13 experiments, got %d", len(reports))
	}
	wantIDs := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13"}
	for i, r := range reports {
		if r.ID != wantIDs[i] {
			t.Fatalf("report %d: want %s, got %s", i, wantIDs[i], r.ID)
		}
		if r.Title == "" || len(r.Rows) == 0 {
			t.Fatalf("%s: empty report", r.ID)
		}
		if strings.Contains(r.String(), "FAILED") {
			t.Fatalf("%s reported a failure:\n%s", r.ID, r)
		}
	}
}

// TestE2RowTotalsMatchPaper pins the Table 1 reconstruction to the paper's
// row totals.
func TestE2RowTotalsMatchPaper(t *testing.T) {
	rep := E2Table1()
	var totals string
	for _, row := range rep.Rows {
		if strings.HasPrefix(row, "checks per application:") {
			totals = row
		}
	}
	if !strings.Contains(totals, "cloud=8") || !strings.Contains(totals, "ml=8") || !strings.Contains(totals, "graph=4") {
		t.Fatalf("Table 1 totals drifted from the paper: %q", totals)
	}
}

// TestE4ShapeHolds verifies the claim E4 reproduces: IOP buffering grows
// with disorder while OOP state stays near-constant, with equal results.
func TestE4ShapeHolds(t *testing.T) {
	rep := E4OOPvsBuffering(0.2)
	type row struct {
		disorder, iop, oop int
		equal              bool
	}
	var rows []row
	for _, line := range rep.Rows[1:] {
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		d, _ := strconv.Atoi(f[0])
		iop, _ := strconv.Atoi(f[1])
		oop, _ := strconv.Atoi(f[2])
		rows = append(rows, row{d, iop, oop, f[3] == "true"})
	}
	if len(rows) < 4 {
		t.Fatalf("missing rows: %v", rep.Rows)
	}
	for _, r := range rows {
		if !r.equal {
			t.Fatalf("disorder %d: IOP and OOP results differ", r.disorder)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	if last.iop <= first.iop*10 {
		t.Fatalf("IOP buffering should grow strongly with disorder: %d -> %d", first.iop, last.iop)
	}
	if last.oop > first.oop*20 {
		t.Fatalf("OOP state should stay near-constant: %d -> %d", first.oop, last.oop)
	}
}

// TestE8ShapeHolds pins the §3.3 generational contrast.
func TestE8ShapeHolds(t *testing.T) {
	rep := E8Overload(0.3)
	joined := strings.Join(rep.Rows, "\n")
	for _, p := range []string{"shed-random", "shed-semantic", "backpressure", "elastic"} {
		if !strings.Contains(joined, p) {
			t.Fatalf("missing policy %s in:\n%s", p, joined)
		}
	}
	// Backpressure and elastic rows must show zero loss.
	for _, row := range rep.Rows {
		if strings.Contains(row, "backpressure") || strings.Contains(row, "elastic") {
			if !strings.Contains(row, "dropped=0") {
				t.Fatalf("lossless policy dropped data: %s", row)
			}
		}
		if strings.HasPrefix(strings.TrimSpace(row), "shed-") && strings.Contains(row, "dropped=0 ") {
			t.Fatalf("shedding policy dropped nothing under overload: %s", row)
		}
	}
}

// TestReportString renders headers and notes.
func TestReportString(t *testing.T) {
	r := Report{ID: "EX", Title: "t", Rows: []string{"row"}, Notes: []string{"n"}}
	s := r.String()
	for _, want := range []string{"=== EX: t ===", "row", "note: n"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in %q", want, s)
		}
	}
}
