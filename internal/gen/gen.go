// Package gen provides the synthetic workloads of the experiment harness:
// deterministic, replayable event generators with controllable rate, key
// skew (zipf), disorder and bursts, plus the domain streams the paper's
// introduction motivates — credit-card transactions (fraud detection),
// ride-share trips (dynamic pricing), network flows (Gigascope's domain) and
// sensor readings. Determinism matters twice: experiments are reproducible,
// and generated sources are replayable (event i is a pure function of
// (seed, i)), which is what exactly-once recovery requires of inputs.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/state"
)

// Spec parameterises a generated stream.
type Spec struct {
	// N is the number of events.
	N int
	// Keys is the key-space size.
	Keys int
	// ZipfS > 1 skews key popularity (zipf exponent); 0 means uniform.
	ZipfS float64
	// IntervalMs is the event-time gap between consecutive events.
	IntervalMs int64
	// DisorderMs bounds random backward timestamp jitter (out-of-orderness).
	DisorderMs int64
	// StartTs is the first event's base timestamp.
	StartTs int64
	// Seed drives all randomness.
	Seed int64
	// Value builds the event payload; nil produces float64 values in [0,1).
	Value func(i int64, key string, rng *rand.Rand) any
}

func (s Spec) withDefaults() Spec {
	if s.N <= 0 {
		s.N = 1000
	}
	if s.Keys <= 0 {
		s.Keys = 16
	}
	if s.IntervalMs <= 0 {
		s.IntervalMs = 10
	}
	return s
}

// splitmix64 is an O(1)-seed rand.Source64. The stock math/rand source
// initialises a 607-word table per seeding, which dominates any workload
// that derives one generator per event; splitmix64 seeds in a single add.
type splitmix64 struct {
	s uint64
}

func (s *splitmix64) Seed(seed int64) { s.s = uint64(seed) }

func (s *splitmix64) Uint64() uint64 {
	s.s += 0x9e3779b97f4a7c15
	z := s.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix64) Int63() int64 { return int64(s.Uint64() >> 1) }

// At deterministically computes event i of the spec.
func (s Spec) At(i int64) core.Event {
	// A per-event RNG seeded from (Seed, i) makes events independent of
	// iteration order — the property replayable offsets rely on.
	rng := rand.New(&splitmix64{s: uint64(s.Seed*1_000_003 + i)})
	var key string
	if s.ZipfS > 1 {
		z := rand.NewZipf(rng, s.ZipfS, 1, uint64(s.Keys-1))
		key = fmt.Sprintf("k%d", z.Uint64())
	} else {
		key = fmt.Sprintf("k%d", rng.Intn(s.Keys))
	}
	ts := s.StartTs + i*s.IntervalMs
	if s.DisorderMs > 0 {
		ts -= rng.Int63n(s.DisorderMs + 1)
		if ts < 0 {
			ts = 0
		}
	}
	var v any
	if s.Value != nil {
		v = s.Value(i, key, rng)
	} else {
		v = rng.Float64()
	}
	return core.Event{Key: key, Timestamp: ts, Value: v}
}

// Events materialises the whole stream (for SliceSource-based tests).
func Events(spec Spec) []core.Event {
	spec = spec.withDefaults()
	out := make([]core.Event, spec.N)
	for i := range out {
		out[i] = spec.At(int64(i))
	}
	return out
}

// SourceFactory returns a replayable streaming source over the spec: each
// parallel instance emits a strided partition, checkpointing its position.
func SourceFactory(spec Spec) core.SourceFactory {
	spec = spec.withDefaults()
	return func(instance, parallelism int) core.Source {
		return &genSource{spec: spec, instance: instance, par: parallelism}
	}
}

type genSource struct {
	spec     Spec
	instance int
	par      int
	offset   int64 // next local index to emit
}

// Run emits the instance's strided share of the stream.
func (g *genSource) Run(ctx core.SourceContext) error {
	for {
		globalIdx := int64(g.instance) + g.offset*int64(g.par)
		if globalIdx >= int64(g.spec.N) {
			return nil
		}
		if !ctx.Collect(g.spec.At(globalIdx)) {
			return nil
		}
		g.offset++
	}
}

// SnapshotOffset implements core.ReplayableSource.
func (g *genSource) SnapshotOffset() ([]byte, error) {
	o := g.offset
	return []byte{byte(o >> 56), byte(o >> 48), byte(o >> 40), byte(o >> 32),
		byte(o >> 24), byte(o >> 16), byte(o >> 8), byte(o)}, nil
}

// RestoreOffset implements core.ReplayableSource.
func (g *genSource) RestoreOffset(data []byte) error {
	if len(data) != 8 {
		return nil
	}
	g.offset = 0
	for _, b := range data {
		g.offset = g.offset<<8 | int64(b)
	}
	return nil
}

var _ core.ReplayableSource = (*genSource)(nil)

// --- Domain payloads ------------------------------------------------------

// Transaction is one credit-card charge; Fraudulent marks injected fraud
// (ground truth for the fraud-detection example).
type Transaction struct {
	Card       string
	Amount     float64
	MerchantID int
	Fraudulent bool
}

// Trip is one ride-share trip event.
type Trip struct {
	Driver   string
	Rider    string
	ZoneFrom int
	ZoneTo   int
	Fare     float64
	Surge    float64
}

// NetFlow is one network-flow record (the Gigascope workload shape).
type NetFlow struct {
	SrcIP, DstIP     string
	SrcPort, DstPort int
	Bytes            int64
	Protocol         string
}

// SensorReading is one IoT measurement.
type SensorReading struct {
	Sensor string
	Value  float64
}

func init() {
	state.RegisterType(Transaction{})
	state.RegisterType(Trip{})
	state.RegisterType(NetFlow{})
	state.RegisterType(SensorReading{})
}

// FraudSpec generates a transaction stream where ~fraudRate of events are
// fraud: a burst of small "probe" charges followed by a large charge on the
// same card — exactly the CEP pattern the fraud example hunts.
func FraudSpec(n int, cards int, fraudRate float64, seed int64) Spec {
	return Spec{
		N: n, Keys: cards, IntervalMs: 20, Seed: seed,
		Value: func(i int64, key string, rng *rand.Rand) any {
			fraud := rng.Float64() < fraudRate
			amount := 20 + rng.Float64()*180
			if fraud {
				amount = 600 + rng.Float64()*400
			}
			return Transaction{
				Card:       key,
				Amount:     amount,
				MerchantID: rng.Intn(500),
				Fraudulent: fraud,
			}
		},
	}
}

// TripSpec generates ride-share trips over `zones` city zones with zipf
// demand skew (rush zones are hot).
func TripSpec(n int, drivers, zones int, seed int64) Spec {
	return Spec{
		N: n, Keys: drivers, ZipfS: 1.2, IntervalMs: 15, Seed: seed,
		Value: func(i int64, key string, rng *rand.Rand) any {
			from := rng.Intn(zones)
			to := rng.Intn(zones)
			dist := float64((from-to)*(from-to)%17 + 1)
			return Trip{
				Driver:   key,
				Rider:    fmt.Sprintf("r%d", rng.Intn(drivers*10)),
				ZoneFrom: from,
				ZoneTo:   to,
				Fare:     2.5 + dist*1.3,
				Surge:    1,
			}
		},
	}
}

// FlowSpec generates network flows with zipf-skewed source addresses
// (heavy-hitter detection workload).
func FlowSpec(n int, hosts int, seed int64) Spec {
	return Spec{
		N: n, Keys: hosts, ZipfS: 1.5, IntervalMs: 5, Seed: seed,
		Value: func(i int64, key string, rng *rand.Rand) any {
			return NetFlow{
				SrcIP:    key,
				DstIP:    fmt.Sprintf("10.0.%d.%d", rng.Intn(256), rng.Intn(256)),
				SrcPort:  1024 + rng.Intn(60000),
				DstPort:  []int{80, 443, 53, 22}[rng.Intn(4)],
				Bytes:    int64(64 + rng.Intn(64000)),
				Protocol: []string{"tcp", "udp"}[rng.Intn(2)],
			}
		},
	}
}

// SensorSpec generates readings following a per-sensor random walk with
// occasional spikes (anomaly workload).
func SensorSpec(n int, sensors int, seed int64) Spec {
	return Spec{
		N: n, Keys: sensors, IntervalMs: 100, DisorderMs: 250, Seed: seed,
		Value: func(i int64, key string, rng *rand.Rand) any {
			base := 20 + 5*rng.NormFloat64()
			if rng.Float64() < 0.01 {
				base += 100 // spike
			}
			return SensorReading{Sensor: key, Value: base}
		},
	}
}

// WordSpec generates a skewed word stream (the canonical quickstart input).
func WordSpec(n int, seed int64) Spec {
	words := []string{"stream", "state", "window", "event", "time", "join",
		"watermark", "snapshot", "actor", "query"}
	return Spec{
		N: n, Keys: len(words), ZipfS: 1.3, IntervalMs: 10, Seed: seed,
		Value: func(i int64, key string, rng *rand.Rand) any {
			return words[rng.Intn(len(words))]
		},
	}
}
