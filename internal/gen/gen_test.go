package gen

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
)

func TestSpecDeterministic(t *testing.T) {
	spec := Spec{N: 100, Keys: 8, Seed: 42}.withDefaults()
	for i := int64(0); i < 100; i++ {
		a := spec.At(i)
		b := spec.At(i)
		if a.Key != b.Key || a.Timestamp != b.Timestamp || a.Value != b.Value {
			t.Fatalf("event %d not deterministic: %v vs %v", i, a, b)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	events := Events(Spec{N: 20000, Keys: 100, ZipfS: 1.5, Seed: 1})
	counts := map[string]int{}
	for _, e := range events {
		counts[e.Key]++
	}
	// The hottest key must dominate: zipf s=1.5 gives rank-1 a large share.
	if counts["k0"] < len(events)/4 {
		t.Fatalf("zipf skew absent: k0 has %d of %d", counts["k0"], len(events))
	}
}

func TestUniformKeysCoverSpace(t *testing.T) {
	events := Events(Spec{N: 5000, Keys: 10, Seed: 2})
	counts := map[string]int{}
	for _, e := range events {
		counts[e.Key]++
	}
	if len(counts) != 10 {
		t.Fatalf("want 10 keys, got %d", len(counts))
	}
	for k, c := range counts {
		if c < 300 || c > 700 {
			t.Fatalf("uniform distribution off for %s: %d", k, c)
		}
	}
}

func TestDisorderBounded(t *testing.T) {
	spec := Spec{N: 1000, IntervalMs: 10, DisorderMs: 200, Seed: 3}
	events := Events(spec)
	disordered := 0
	for i := 1; i < len(events); i++ {
		if events[i].Timestamp < events[i-1].Timestamp {
			disordered++
			if d := events[i-1].Timestamp - events[i].Timestamp; d > 200+10 {
				t.Fatalf("disorder exceeds bound: %d", d)
			}
		}
	}
	if disordered == 0 {
		t.Fatal("no disorder injected")
	}
}

func TestGeneratedSourceReplayable(t *testing.T) {
	// Run with checkpoints, savepoint-stop, resume: exact once across the
	// generated source.
	spec := Spec{N: 400, Keys: 4, Seed: 9}
	store := core.NewMemorySnapshotStore()

	var jobRef *core.Job
	mkTrig := func() core.Operator { return &trigOp{at: 150, job: &jobRef} }

	run := func(restore int64, withTrigger bool) *core.CollectSink {
		sink := core.NewCollectSink()
		b := core.NewBuilder(core.Config{Name: "gen", SnapshotStore: store, ChannelCapacity: 2})
		s := b.Source("src", SourceFactory(spec))
		if withTrigger {
			s = s.Process("mid", mkTrig)
		} else {
			s = s.Map("mid", func(e core.Event) (core.Event, bool) { return e, true })
		}
		s.Sink("out", sink.Factory())
		j, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		jobRef = j
		if restore >= 0 {
			j.RestoreFrom(restore)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		if err := j.Run(ctx); err != nil {
			t.Fatal(err)
		}
		return sink
	}

	first := run(-1, true)
	cp := jobRef.LastCheckpoint()
	if cp < 0 {
		t.Fatal("no savepoint")
	}
	second := run(cp, false)
	if first.Len()+second.Len() != spec.N {
		t.Fatalf("replay lost/duplicated: %d + %d != %d", first.Len(), second.Len(), spec.N)
	}
}

type trigOp struct {
	core.BaseOperator
	at   int
	seen int
	job  **core.Job
}

func (o *trigOp) ProcessElement(e core.Event, ctx core.Context) error {
	ctx.Emit(e)
	o.seen++
	if o.seen == o.at && *o.job != nil {
		(*o.job).TriggerSavepoint()
	}
	return nil
}

func TestDomainSpecs(t *testing.T) {
	for name, spec := range map[string]Spec{
		"fraud":  FraudSpec(500, 20, 0.05, 1),
		"trips":  TripSpec(500, 50, 20, 2),
		"flows":  FlowSpec(500, 100, 3),
		"sensor": SensorSpec(500, 10, 4),
		"words":  WordSpec(500, 5),
	} {
		events := Events(spec)
		if len(events) != 500 {
			t.Fatalf("%s: want 500 events, got %d", name, len(events))
		}
		for _, e := range events[:10] {
			if e.Value == nil {
				t.Fatalf("%s: nil payload", name)
			}
		}
	}
	// Fraud ground truth present at roughly the configured rate.
	frauds := 0
	for _, e := range Events(FraudSpec(10000, 20, 0.05, 1)) {
		if e.Value.(Transaction).Fraudulent {
			frauds++
		}
	}
	if frauds < 300 || frauds > 800 {
		t.Fatalf("fraud rate off: %d/10000", frauds)
	}
}
