// Package graphstream implements continuous analysis of graph streams
// (§4.1: "events indicate edge and vertex additions, deletions, and
// modifications ... a prominent use-case is traffic and demand prediction
// for ride sharing services [needing] shortest path queries with low
// latency"). It provides a dynamic graph ingesting edge events, incremental
// connected components (union-find with deletion-triggered rebuild),
// incremental single-source shortest paths (delta relaxation on insertions),
// and streaming random walks for online graph-embedding workloads.
package graphstream

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// EdgeOp discriminates edge-stream events.
type EdgeOp uint8

const (
	// AddEdge inserts or updates an edge.
	AddEdge EdgeOp = iota
	// RemoveEdge deletes an edge.
	RemoveEdge
)

// EdgeEvent is one element of a graph stream.
type EdgeEvent struct {
	Op     EdgeOp
	From   string
	To     string
	Weight float64
	Ts     int64
}

// DynamicGraph is an adjacency-map graph maintained from an edge stream.
// It is undirected when Undirected is set (edges mirrored).
type DynamicGraph struct {
	Undirected bool
	adj        map[string]map[string]float64
	edgeCount  int
}

// NewDynamicGraph returns an empty graph.
func NewDynamicGraph(undirected bool) *DynamicGraph {
	return &DynamicGraph{Undirected: undirected, adj: make(map[string]map[string]float64)}
}

// Apply ingests one edge event.
func (g *DynamicGraph) Apply(e EdgeEvent) {
	switch e.Op {
	case AddEdge:
		g.addHalf(e.From, e.To, e.Weight)
		if g.Undirected {
			g.addHalf(e.To, e.From, e.Weight)
		}
	case RemoveEdge:
		g.removeHalf(e.From, e.To)
		if g.Undirected {
			g.removeHalf(e.To, e.From)
		}
	}
}

func (g *DynamicGraph) addHalf(from, to string, w float64) {
	m := g.adj[from]
	if m == nil {
		m = make(map[string]float64)
		g.adj[from] = m
	}
	if _, existed := m[to]; !existed {
		g.edgeCount++
	}
	m[to] = w
	if g.adj[to] == nil {
		g.adj[to] = make(map[string]float64)
	}
}

func (g *DynamicGraph) removeHalf(from, to string) {
	if m := g.adj[from]; m != nil {
		if _, ok := m[to]; ok {
			delete(m, to)
			g.edgeCount--
		}
	}
}

// Neighbors returns the adjacency map of a vertex (shared; do not mutate).
func (g *DynamicGraph) Neighbors(v string) map[string]float64 { return g.adj[v] }

// Vertices returns the known vertex ids.
func (g *DynamicGraph) Vertices() []string {
	out := make([]string, 0, len(g.adj))
	for v := range g.adj {
		out = append(out, v)
	}
	return out
}

// NumEdges returns the directed edge count (undirected edges count once per
// direction stored).
func (g *DynamicGraph) NumEdges() int { return g.edgeCount }

// Degree returns the out-degree of a vertex.
func (g *DynamicGraph) Degree(v string) int { return len(g.adj[v]) }

// BFSComponents computes connected components from scratch (the reference
// implementation the incremental structure is tested against).
func (g *DynamicGraph) BFSComponents() map[string]string {
	comp := make(map[string]string, len(g.adj))
	for v := range g.adj {
		if _, done := comp[v]; done {
			continue
		}
		// Label the whole component with the minimum vertex id found.
		queue := []string{v}
		members := []string{}
		seen := map[string]bool{v: true}
		minID := v
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			members = append(members, u)
			if u < minID {
				minID = u
			}
			for n := range g.adj[u] {
				if !seen[n] {
					seen[n] = true
					queue = append(queue, n)
				}
			}
		}
		for _, m := range members {
			comp[m] = minID
		}
	}
	return comp
}

// SampleWalks draws `count` random walks of length `length` starting at
// uniformly chosen vertices — the primitive behind streaming graph
// embeddings ("generating graph embeddings using streaming random walks").
func (g *DynamicGraph) SampleWalks(rng *rand.Rand, count, length int) [][]string {
	verts := g.Vertices()
	if len(verts) == 0 {
		return nil
	}
	// Deterministic vertex order for reproducibility.
	sort.Strings(verts)
	walks := make([][]string, 0, count)
	for i := 0; i < count; i++ {
		cur := verts[rng.Intn(len(verts))]
		walk := []string{cur}
		for step := 1; step < length; step++ {
			nbrs := g.adj[cur]
			if len(nbrs) == 0 {
				break
			}
			keys := make([]string, 0, len(nbrs))
			for n := range nbrs {
				keys = append(keys, n)
			}
			sort.Strings(keys)
			cur = keys[rng.Intn(len(keys))]
			walk = append(walk, cur)
		}
		walks = append(walks, walk)
	}
	return walks
}

// Dijkstra computes shortest distances from src over the current graph (the
// from-scratch reference for IncrementalSSSP).
func (g *DynamicGraph) Dijkstra(src string) map[string]float64 {
	dist := map[string]float64{src: 0}
	pq := &distHeap{{v: src, d: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if d, ok := dist[it.v]; ok && it.d > d {
			continue
		}
		for n, w := range g.adj[it.v] {
			if w < 0 {
				continue
			}
			nd := it.d + w
			if cur, ok := dist[n]; !ok || nd < cur {
				dist[n] = nd
				heap.Push(pq, distItem{v: n, d: nd})
			}
		}
	}
	return dist
}

type distItem struct {
	v string
	d float64
}

type distHeap []distItem

func (h distHeap) Len() int           { return len(h) }
func (h distHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)        { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Infinity is the distance of unreachable vertices.
func Infinity() float64 { return math.Inf(1) }

// String renders summary statistics.
func (g *DynamicGraph) String() string {
	return fmt.Sprintf("graph{vertices=%d edges=%d}", len(g.adj), g.edgeCount)
}
