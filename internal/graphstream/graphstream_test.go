package graphstream

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func TestDynamicGraphAddRemove(t *testing.T) {
	g := NewDynamicGraph(true)
	g.Apply(EdgeEvent{Op: AddEdge, From: "a", To: "b", Weight: 1})
	if g.NumEdges() != 2 { // undirected stores both directions
		t.Fatalf("edge count: %d", g.NumEdges())
	}
	if g.Degree("a") != 1 || g.Degree("b") != 1 {
		t.Fatal("degrees wrong")
	}
	// Updating weight does not change count.
	g.Apply(EdgeEvent{Op: AddEdge, From: "a", To: "b", Weight: 5})
	if g.NumEdges() != 2 {
		t.Fatalf("update changed edge count: %d", g.NumEdges())
	}
	g.Apply(EdgeEvent{Op: RemoveEdge, From: "a", To: "b"})
	if g.NumEdges() != 0 {
		t.Fatalf("removal failed: %d", g.NumEdges())
	}
}

// TestIncrementalCCMatchesBFS is the property test: under a random stream of
// insertions and deletions, the incremental structure always agrees with a
// from-scratch BFS.
func TestIncrementalCCMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := NewDynamicGraph(true)
	cc := NewIncrementalCC(g)
	vertices := 20
	var live []EdgeEvent
	for step := 0; step < 1500; step++ {
		var e EdgeEvent
		if len(live) > 0 && rng.Intn(4) == 0 {
			i := rng.Intn(len(live))
			e = live[i]
			e.Op = RemoveEdge
			live = append(live[:i], live[i+1:]...)
		} else {
			e = EdgeEvent{
				Op:   AddEdge,
				From: fmt.Sprintf("v%d", rng.Intn(vertices)),
				To:   fmt.Sprintf("v%d", rng.Intn(vertices)),
			}
			live = append(live, e)
		}
		g.Apply(e)
		cc.Apply(e)
		if step%100 == 0 {
			want := g.BFSComponents()
			got := cc.Components()
			if len(want) != len(got) {
				t.Fatalf("step %d: vertex counts differ: %d vs %d", step, len(want), len(got))
			}
			for v, label := range want {
				if got[v] != label {
					t.Fatalf("step %d: component of %s: incremental=%s bfs=%s", step, v, got[v], label)
				}
			}
		}
	}
	if cc.Rebuilds == 0 {
		t.Fatal("expected deletion-triggered rebuilds")
	}
}

// TestIncrementalSSSPMatchesDijkstra: same property for shortest paths.
func TestIncrementalSSSPMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := NewDynamicGraph(false)
	ss := NewIncrementalSSSP(g, "v0")
	vertices := 15
	var live []EdgeEvent
	for step := 0; step < 800; step++ {
		var e EdgeEvent
		if len(live) > 0 && rng.Intn(5) == 0 {
			i := rng.Intn(len(live))
			e = live[i]
			e.Op = RemoveEdge
			live = append(live[:i], live[i+1:]...)
		} else {
			e = EdgeEvent{
				Op:     AddEdge,
				From:   fmt.Sprintf("v%d", rng.Intn(vertices)),
				To:     fmt.Sprintf("v%d", rng.Intn(vertices)),
				Weight: float64(1 + rng.Intn(9)),
			}
			live = append(live, e)
		}
		g.Apply(e)
		ss.Apply(e)
		if step%50 == 0 {
			want := g.Dijkstra("v0")
			for v, d := range want {
				if got := ss.Distance(v); got != d {
					t.Fatalf("step %d: dist[%s]: incremental=%v dijkstra=%v", step, v, got, d)
				}
			}
			// And nothing unreachable is reported reachable.
			for v, got := range ss.Distances() {
				if _, ok := want[v]; !ok && !math.IsInf(got, 1) {
					t.Fatalf("step %d: %s reported reachable (%v) but is not", step, v, got)
				}
			}
		}
	}
	if ss.Relaxations == 0 || ss.Recomputes == 0 {
		t.Fatalf("expected both incremental relaxations (%d) and recomputes (%d)",
			ss.Relaxations, ss.Recomputes)
	}
}

func TestIncrementalSSSPInsertionsAreCheap(t *testing.T) {
	// Insert-only stream: zero full recomputations.
	g := NewDynamicGraph(false)
	ss := NewIncrementalSSSP(g, "v0")
	for i := 0; i < 100; i++ {
		e := EdgeEvent{Op: AddEdge, From: fmt.Sprintf("v%d", i), To: fmt.Sprintf("v%d", i+1), Weight: 1}
		g.Apply(e)
		ss.Apply(e)
	}
	if ss.Recomputes != 0 {
		t.Fatalf("insert-only stream triggered %d recomputes", ss.Recomputes)
	}
	if d := ss.Distance("v100"); d != 100 {
		t.Fatalf("chain distance: want 100, got %v", d)
	}
}

func TestRandomWalks(t *testing.T) {
	g := NewDynamicGraph(true)
	for i := 0; i < 10; i++ {
		g.Apply(EdgeEvent{Op: AddEdge, From: fmt.Sprintf("v%d", i), To: fmt.Sprintf("v%d", (i+1)%10), Weight: 1})
	}
	rng := rand.New(rand.NewSource(5))
	walks := g.SampleWalks(rng, 20, 8)
	if len(walks) != 20 {
		t.Fatalf("want 20 walks, got %d", len(walks))
	}
	for _, w := range walks {
		if len(w) != 8 {
			t.Fatalf("ring walk should reach full length, got %d", len(w))
		}
		for i := 1; i < len(w); i++ {
			if _, ok := g.Neighbors(w[i-1])[w[i]]; !ok {
				t.Fatalf("walk step %s->%s is not an edge", w[i-1], w[i])
			}
		}
	}
}

func TestWalksOnEmptyGraph(t *testing.T) {
	g := NewDynamicGraph(true)
	if walks := g.SampleWalks(rand.New(rand.NewSource(1)), 5, 3); walks != nil {
		t.Fatal("walks on empty graph should be nil")
	}
}
