package graphstream

import "container/heap"

// IncrementalCC maintains connected components over an edge stream with a
// union-find structure: edge insertions are O(α) unions; deletions mark the
// structure dirty and trigger a rebuild on the next query (the standard
// practical compromise for fully-dynamic connectivity).
type IncrementalCC struct {
	g      *DynamicGraph
	parent map[string]string
	rank   map[string]int
	dirty  bool
	// Rebuilds counts deletion-triggered recomputations.
	Rebuilds int
}

// NewIncrementalCC tracks components of g; feed every edge event through
// Apply (in addition to g.Apply, which the caller owns).
func NewIncrementalCC(g *DynamicGraph) *IncrementalCC {
	return &IncrementalCC{
		g:      g,
		parent: make(map[string]string),
		rank:   make(map[string]int),
	}
}

// Apply observes an edge event (after it was applied to the graph).
func (c *IncrementalCC) Apply(e EdgeEvent) {
	switch e.Op {
	case AddEdge:
		c.union(e.From, e.To)
	case RemoveEdge:
		// Deleting an edge may split a component; rebuild lazily.
		c.dirty = true
	}
}

func (c *IncrementalCC) find(v string) string {
	p, ok := c.parent[v]
	if !ok {
		c.parent[v] = v
		c.rank[v] = 0
		return v
	}
	if p != v {
		c.parent[v] = c.find(p)
	}
	return c.parent[v]
}

func (c *IncrementalCC) union(a, b string) {
	ra, rb := c.find(a), c.find(b)
	if ra == rb {
		return
	}
	if c.rank[ra] < c.rank[rb] {
		ra, rb = rb, ra
	}
	c.parent[rb] = ra
	if c.rank[ra] == c.rank[rb] {
		c.rank[ra]++
	}
}

// rebuild reconstructs union-find from the live graph.
func (c *IncrementalCC) rebuild() {
	c.parent = make(map[string]string)
	c.rank = make(map[string]int)
	for _, v := range c.g.Vertices() {
		c.find(v)
		for n := range c.g.Neighbors(v) {
			c.union(v, n)
		}
	}
	c.dirty = false
	c.Rebuilds++
}

// SameComponent reports whether two vertices are connected.
func (c *IncrementalCC) SameComponent(a, b string) bool {
	if c.dirty {
		c.rebuild()
	}
	return c.find(a) == c.find(b)
}

// Components returns a canonical component label per vertex (the minimum
// member id, matching DynamicGraph.BFSComponents).
func (c *IncrementalCC) Components() map[string]string {
	if c.dirty {
		c.rebuild()
	}
	// Map each root to its minimum member.
	minOf := map[string]string{}
	for _, v := range c.g.Vertices() {
		r := c.find(v)
		if cur, ok := minOf[r]; !ok || v < cur {
			minOf[r] = v
		}
	}
	out := make(map[string]string, len(c.parent))
	for _, v := range c.g.Vertices() {
		out[v] = minOf[c.find(v)]
	}
	return out
}

// IncrementalSSSP maintains single-source shortest paths over an edge
// stream: insertions trigger delta relaxation from the improved endpoint
// (work proportional to the affected subgraph); deletions of relaxed edges
// trigger a full recompute.
type IncrementalSSSP struct {
	g    *DynamicGraph
	src  string
	dist map[string]float64
	// Recomputes counts deletion-triggered full recomputations; Relaxations
	// counts incremental edge relaxations.
	Recomputes  int
	Relaxations int
}

// NewIncrementalSSSP tracks distances from src over g.
func NewIncrementalSSSP(g *DynamicGraph, src string) *IncrementalSSSP {
	return &IncrementalSSSP{g: g, src: src, dist: map[string]float64{src: 0}}
}

// Apply observes an edge event (after it was applied to the graph).
func (s *IncrementalSSSP) Apply(e EdgeEvent) {
	switch e.Op {
	case AddEdge:
		s.relaxFrom(e.From, e.To, e.Weight)
		if s.g.Undirected {
			s.relaxFrom(e.To, e.From, e.Weight)
		}
	case RemoveEdge:
		// If the removed edge was on no shortest path the distances stay
		// valid; detecting that cheaply requires parent pointers, so be
		// conservative: recompute when either endpoint was reachable.
		_, fromReach := s.dist[e.From]
		_, toReach := s.dist[e.To]
		if fromReach || toReach {
			s.dist = s.g.Dijkstra(s.src)
			s.Recomputes++
		}
	}
}

// relaxFrom performs Dijkstra-style relaxation seeded by the new edge.
func (s *IncrementalSSSP) relaxFrom(u, v string, w float64) {
	du, ok := s.dist[u]
	if !ok {
		return
	}
	nd := du + w
	if cur, ok := s.dist[v]; ok && cur <= nd {
		return
	}
	s.dist[v] = nd
	s.Relaxations++
	pq := &distHeap{{v: v, d: nd}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if d, ok := s.dist[it.v]; ok && it.d > d {
			continue
		}
		for n, wt := range s.g.Neighbors(it.v) {
			cand := it.d + wt
			if cur, ok := s.dist[n]; !ok || cand < cur {
				s.dist[n] = cand
				s.Relaxations++
				heap.Push(pq, distItem{v: n, d: cand})
			}
		}
	}
}

// Distance returns the current distance to v (Infinity when unreachable).
func (s *IncrementalSSSP) Distance(v string) float64 {
	if d, ok := s.dist[v]; ok {
		return d
	}
	return Infinity()
}

// Distances returns a copy of all finite distances.
func (s *IncrementalSSSP) Distances() map[string]float64 {
	out := make(map[string]float64, len(s.dist))
	for k, v := range s.dist {
		out[k] = v
	}
	return out
}
