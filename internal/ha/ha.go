// Package ha implements the two high-availability techniques whose evolution
// §3.2 of the paper reviews:
//
//   - active standby: two identical job instances run in parallel; on
//     failure of the primary the system switches to the secondary, which is
//     already caught up — near-zero recovery time at twice the resource
//     cost, "the preferred option for critical applications";
//   - passive standby (the modern form): a fresh instance is started on
//     spare capacity from the latest checkpointed snapshot and replays the
//     tail — recovery time proportional to restore + replay, at minimal
//     steady-state overhead.
//
// Experiment E7 uses these, plus the lineage-based micro-batch baseline in
// package lineage, to reproduce the recovery-time vs. overhead trade-off.
package ha

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
)

// JobFactory builds a fresh, identical job instance: same replayable input,
// writing to the given sink, checkpointing to the given store (which may be
// ignored by the job when nil).
type JobFactory func(sink *core.CollectSink, store core.SnapshotStore) (*core.Job, error)

// Report summarises one recovery run.
type Report struct {
	Mode string
	// Output is the number of distinct result events delivered after dedup.
	Output int
	// Duplicates counts result events that were produced more than once
	// across the failover (suppressed by the dedup stage).
	Duplicates int
	// RecoveryMillis is the wall time from the failure to the standby having
	// produced output beyond the primary's progress. Only meaningful when
	// RecoveryMeasured is true.
	RecoveryMillis int64
	// RecoveryMeasured reports whether RecoveryMillis was actually observed:
	// false when the standby legitimately produced no post-failure output
	// (nothing left to replay), which is not a recovery timeout.
	RecoveryMeasured bool
	// ResourceUnits approximates steady-state cost: number of concurrently
	// running job instances during normal operation.
	ResourceUnits int
	// ReplayedEvents counts source events reprocessed after the failure
	// (zero for active standby; checkpoint-tail for passive).
	ReplayedEvents int
}

// String renders the report row.
func (r Report) String() string {
	recovery := fmt.Sprintf("%4dms", r.RecoveryMillis)
	if !r.RecoveryMeasured {
		recovery = "  n/a" // no post-failure output: nothing was replayed
	}
	return fmt.Sprintf("%-16s output=%-6d duplicates=%-6d recovery=%s replayed=%-6d resources=%dx",
		r.Mode, r.Output, r.Duplicates, recovery, r.ReplayedEvents, r.ResourceUnits)
}

// eventID derives the dedup identity of a result event. Jobs used with this
// package must emit results whose (Key, Timestamp) pairs are unique, which
// deterministic pipelines over replayable sources naturally provide.
func eventID(e core.Event) string {
	return fmt.Sprintf("%s@%d", e.Key, e.Timestamp)
}

// Dedup merges result-event slices from successive job incarnations keeping
// first occurrences, and counts the suppressed duplicates — the exactly-once
// merge every supervised/reconfigured lineage uses (restarts here, live
// rescales in internal/elastic). Events are identified by (Key, Timestamp);
// see eventID.
func Dedup(slices ...[]core.Event) ([]core.Event, int) {
	return dedup(slices...)
}

// dedup merges event slices keeping first occurrences, and counts
// suppressed duplicates.
func dedup(slices ...[]core.Event) (out []core.Event, duplicates int) {
	seen := make(map[string]bool)
	for _, s := range slices {
		for _, e := range s {
			id := eventID(e)
			if seen[id] {
				duplicates++
				continue
			}
			seen[id] = true
			out = append(out, e)
		}
	}
	return out, duplicates
}

// RunActiveStandby runs two identical jobs concurrently, kills the primary
// once it has produced killAfter results, and lets the secondary finish. The
// merged, deduplicated output plus the recovery accounting is returned.
func RunActiveStandby(ctx context.Context, fac JobFactory, killAfter int) ([]core.Event, Report, error) {
	rep := Report{Mode: "active-standby", ResourceUnits: 2}

	primarySink := core.NewCollectSink()
	secondarySink := core.NewCollectSink()
	primary, err := fac(primarySink, nil)
	if err != nil {
		return nil, rep, err
	}
	secondary, err := fac(secondarySink, nil)
	if err != nil {
		return nil, rep, err
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	primaryDone := make(chan error, 1)
	secondaryDone := make(chan error, 1)
	go func() { primaryDone <- primary.Run(runCtx) }()
	go func() { secondaryDone <- secondary.Run(runCtx) }()

	// Fail the primary after killAfter outputs (or when it finishes first).
	primaryFinished := false
	for primarySink.Len() < killAfter {
		select {
		case <-primaryDone:
			primaryFinished = true
			killAfter = primarySink.Len() // primary finished early
		case <-ctx.Done():
			return nil, rep, ctx.Err()
		default:
			time.Sleep(100 * time.Microsecond)
		}
		if primaryFinished || primarySink.Len() >= killAfter {
			break
		}
	}
	failureAt := time.Now()
	primary.Stop()
	if !primaryFinished {
		<-primaryDone
	}

	// Failover: the secondary is already running; recovery time is how long
	// until its output covers the primary's progress.
	for secondarySink.Len() < primarySink.Len() {
		select {
		case err := <-secondaryDone:
			if err != nil && err != context.Canceled {
				return nil, rep, fmt.Errorf("ha: secondary failed: %w", err)
			}
			secondaryDone <- nil
		case <-ctx.Done():
			return nil, rep, ctx.Err()
		default:
			time.Sleep(100 * time.Microsecond)
		}
		if secondarySink.Len() >= primarySink.Len() {
			break
		}
	}
	rep.RecoveryMillis = time.Since(failureAt).Milliseconds()
	rep.RecoveryMeasured = true

	if err := <-secondaryDone; err != nil && err != context.Canceled {
		return nil, rep, fmt.Errorf("ha: secondary failed: %w", err)
	}

	out, dups := dedup(primarySink.Events(), secondarySink.Events())
	rep.Output = len(out)
	rep.Duplicates = dups
	return out, rep, nil
}

// RunPassiveStandby runs one job with checkpointing, kills it after
// killAfter results, then starts a standby restored from the latest
// checkpoint and lets it finish.
func RunPassiveStandby(ctx context.Context, fac JobFactory, store core.SnapshotStore, killAfter int) ([]core.Event, Report, error) {
	rep := Report{Mode: "passive-standby", ResourceUnits: 1}

	sink1 := core.NewCollectSink()
	primary, err := fac(sink1, store)
	if err != nil {
		return nil, rep, err
	}
	done := make(chan error, 1)
	go func() { done <- primary.Run(ctx) }()

	finished := false
	for sink1.Len() < killAfter {
		select {
		case <-done:
			finished = true
		case <-ctx.Done():
			return nil, rep, ctx.Err()
		default:
			time.Sleep(100 * time.Microsecond)
		}
		if finished || sink1.Len() >= killAfter {
			break
		}
	}
	failureAt := time.Now()
	primary.Stop()
	if !finished {
		<-done
	}

	cp, ok := store.Latest()
	if !ok {
		return nil, rep, fmt.Errorf("ha: no completed checkpoint to recover from")
	}

	// Spin up the standby from the snapshot ("transferring the computation
	// code and the latest checkpointed state snapshot of a failed operator
	// to an available compute node").
	sink2 := core.NewCollectSink()
	standby, err := fac(sink2, store)
	if err != nil {
		return nil, rep, err
	}
	standby.RestoreFrom(cp.ID)
	// Watch for the standby's first output; the watcher stops with the run
	// instead of spinning forever when the standby has nothing to emit.
	firstOutput := make(chan time.Time, 1)
	watchStop := make(chan struct{})
	go func() {
		for {
			if sink2.Len() > 0 {
				firstOutput <- time.Now()
				return
			}
			select {
			case <-watchStop:
				return
			default:
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
	runErr := standby.Run(ctx)
	close(watchStop)
	if runErr != nil {
		return nil, rep, fmt.Errorf("ha: standby failed: %w", runErr)
	}
	// Recovery time is failure → first post-failure output (restore + replay
	// to the failure point). A standby that produced no output at all is NOT
	// a slow recovery — there was simply nothing left to replay past the
	// checkpoint — so the report distinguishes that case instead of charging
	// the whole standby runtime as recovery time.
	select {
	case t := <-firstOutput:
		rep.RecoveryMillis = t.Sub(failureAt).Milliseconds()
		rep.RecoveryMeasured = true
	default:
		if sink2.Len() > 0 {
			// Output arrived as the run drained, before the watcher polled it.
			rep.RecoveryMillis = time.Since(failureAt).Milliseconds()
			rep.RecoveryMeasured = true
		}
	}

	out, dups := dedup(sink1.Events(), sink2.Events())
	rep.Output = len(out)
	rep.Duplicates = dups
	rep.ReplayedEvents = dups // duplicates are exactly the replayed overlap
	return out, rep, nil
}

// RestartStrategy bounds how a supervised job recovers from crashes: each
// failed run (operator error, panic, injected fault) is restarted after a
// fixed delay from the latest completed checkpoint, up to MaxRestarts times.
// This is the "restart from the latest checkpointed snapshot" loop that makes
// passive standby a complete fault-tolerance mechanism rather than a one-shot
// failover.
type RestartStrategy struct {
	// MaxRestarts is the number of restarts allowed after the initial run
	// (so MaxRestarts=3 permits 4 attempts total). Zero or negative uses the
	// default of 3.
	MaxRestarts int
	// Delay is the fixed pause before each restart. Zero uses 10ms.
	Delay time.Duration
}

func (s RestartStrategy) withDefaults() RestartStrategy {
	if s.MaxRestarts <= 0 {
		s.MaxRestarts = 3
	}
	if s.Delay <= 0 {
		s.Delay = 10 * time.Millisecond
	}
	return s
}

// SupervisionReport summarises one supervised run.
type SupervisionReport struct {
	// Attempts is the number of runs started (1 for a fault-free job).
	Attempts int
	// Restarts is Attempts-1 for a job that eventually finished.
	Restarts int
	// RecoveredFrom records, per attempt, the checkpoint ID the run restored
	// from (-1 for a fresh start — the first attempt, or a restart before any
	// checkpoint completed).
	RecoveredFrom []int64
	// Failures holds the error text of every failed attempt, in order.
	Failures []string
	// Output and Duplicates account for the deduplicated merge of all
	// attempts' sink output.
	Output     int
	Duplicates int
	// RecoveryMillis sums, over every failure, the wall time from the
	// failure to the first output a restarted incarnation produced (restart
	// delay + restore + replay) — the passive-standby recovery metric under
	// supervision. Failures whose restart produced no output contribute the
	// time until that restart finished.
	RecoveryMillis int64
}

// RunSupervised runs a job under the restart strategy: the job is built
// fresh for every attempt, restored from the latest completed checkpoint
// when one exists, and restarted after strategy.Delay whenever the run
// fails. onStart, when non-nil, observes each attempt's job before it runs —
// fault injectors use it to aim their kill switches at the current
// incarnation. The merged, deduplicated output of all attempts is returned;
// under exactly-once checkpointing it equals the output of a fault-free run.
func RunSupervised(ctx context.Context, fac JobFactory, store core.SnapshotStore, strategy RestartStrategy, onStart func(attempt int, job *core.Job)) ([]core.Event, SupervisionReport, error) {
	strategy = strategy.withDefaults()
	var rep SupervisionReport
	var sinks []*core.CollectSink
	var failureAt time.Time // zero = not currently recovering from a failure
	for attempt := 0; ; attempt++ {
		sink := core.NewCollectSink()
		job, err := fac(sink, store)
		if err != nil {
			return nil, rep, fmt.Errorf("ha: build attempt %d: %w", attempt, err)
		}
		from := int64(-1)
		if attempt > 0 {
			if cp, ok := store.Latest(); ok {
				job.RestoreFrom(cp.ID)
				from = cp.ID
			}
		}
		rep.RecoveredFrom = append(rep.RecoveredFrom, from)
		sinks = append(sinks, sink)
		if onStart != nil {
			onStart(attempt, job)
		}
		rep.Attempts++

		// While recovering, watch for the incarnation's first output: that
		// closes the failure→recovered interval.
		var firstOut chan time.Time
		var watchStop chan struct{}
		if !failureAt.IsZero() {
			firstOut = make(chan time.Time, 1)
			watchStop = make(chan struct{})
			go func() {
				for {
					if sink.Len() > 0 {
						firstOut <- time.Now()
						return
					}
					select {
					case <-watchStop:
						return
					default:
						time.Sleep(50 * time.Microsecond)
					}
				}
			}()
		}
		runErr := job.Run(ctx)
		if watchStop != nil {
			close(watchStop)
			select {
			case t := <-firstOut:
				rep.RecoveryMillis += t.Sub(failureAt).Milliseconds()
				failureAt = time.Time{}
			default:
				if sink.Len() > 0 || runErr == nil {
					rep.RecoveryMillis += time.Since(failureAt).Milliseconds()
					failureAt = time.Time{}
				}
			}
		}
		if runErr == nil {
			out, dups := dedup(eventSlices(sinks)...)
			rep.Output = len(out)
			rep.Duplicates = dups
			return out, rep, nil
		}
		if ctx.Err() != nil {
			return nil, rep, ctx.Err()
		}
		rep.Failures = append(rep.Failures, runErr.Error())
		if attempt >= strategy.MaxRestarts {
			return nil, rep, fmt.Errorf("ha: job failed after %d attempts: %w", rep.Attempts, runErr)
		}
		if failureAt.IsZero() {
			failureAt = time.Now()
		}
		select {
		case <-time.After(strategy.Delay):
		case <-ctx.Done():
			return nil, rep, ctx.Err()
		}
		rep.Restarts++
	}
}

func eventSlices(sinks []*core.CollectSink) [][]core.Event {
	out := make([][]core.Event, len(sinks))
	for i, s := range sinks {
		out[i] = s.Events()
	}
	return out
}
