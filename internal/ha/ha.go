// Package ha implements the two high-availability techniques whose evolution
// §3.2 of the paper reviews:
//
//   - active standby: two identical job instances run in parallel; on
//     failure of the primary the system switches to the secondary, which is
//     already caught up — near-zero recovery time at twice the resource
//     cost, "the preferred option for critical applications";
//   - passive standby (the modern form): a fresh instance is started on
//     spare capacity from the latest checkpointed snapshot and replays the
//     tail — recovery time proportional to restore + replay, at minimal
//     steady-state overhead.
//
// Experiment E7 uses these, plus the lineage-based micro-batch baseline in
// package lineage, to reproduce the recovery-time vs. overhead trade-off.
package ha

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
)

// JobFactory builds a fresh, identical job instance: same replayable input,
// writing to the given sink, checkpointing to the given store (which may be
// ignored by the job when nil).
type JobFactory func(sink *core.CollectSink, store core.SnapshotStore) (*core.Job, error)

// Report summarises one recovery run.
type Report struct {
	Mode string
	// Output is the number of distinct result events delivered after dedup.
	Output int
	// Duplicates counts result events that were produced more than once
	// across the failover (suppressed by the dedup stage).
	Duplicates int
	// RecoveryMillis is the wall time from the failure to the standby having
	// produced output beyond the primary's progress.
	RecoveryMillis int64
	// ResourceUnits approximates steady-state cost: number of concurrently
	// running job instances during normal operation.
	ResourceUnits int
	// ReplayedEvents counts source events reprocessed after the failure
	// (zero for active standby; checkpoint-tail for passive).
	ReplayedEvents int
}

// String renders the report row.
func (r Report) String() string {
	return fmt.Sprintf("%-16s output=%-6d duplicates=%-6d recovery=%4dms replayed=%-6d resources=%dx",
		r.Mode, r.Output, r.Duplicates, r.RecoveryMillis, r.ReplayedEvents, r.ResourceUnits)
}

// eventID derives the dedup identity of a result event. Jobs used with this
// package must emit results whose (Key, Timestamp) pairs are unique, which
// deterministic pipelines over replayable sources naturally provide.
func eventID(e core.Event) string {
	return fmt.Sprintf("%s@%d", e.Key, e.Timestamp)
}

// dedup merges event slices keeping first occurrences, and counts
// suppressed duplicates.
func dedup(slices ...[]core.Event) (out []core.Event, duplicates int) {
	seen := make(map[string]bool)
	for _, s := range slices {
		for _, e := range s {
			id := eventID(e)
			if seen[id] {
				duplicates++
				continue
			}
			seen[id] = true
			out = append(out, e)
		}
	}
	return out, duplicates
}

// RunActiveStandby runs two identical jobs concurrently, kills the primary
// once it has produced killAfter results, and lets the secondary finish. The
// merged, deduplicated output plus the recovery accounting is returned.
func RunActiveStandby(ctx context.Context, fac JobFactory, killAfter int) ([]core.Event, Report, error) {
	rep := Report{Mode: "active-standby", ResourceUnits: 2}

	primarySink := core.NewCollectSink()
	secondarySink := core.NewCollectSink()
	primary, err := fac(primarySink, nil)
	if err != nil {
		return nil, rep, err
	}
	secondary, err := fac(secondarySink, nil)
	if err != nil {
		return nil, rep, err
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	primaryDone := make(chan error, 1)
	secondaryDone := make(chan error, 1)
	go func() { primaryDone <- primary.Run(runCtx) }()
	go func() { secondaryDone <- secondary.Run(runCtx) }()

	// Fail the primary after killAfter outputs (or when it finishes first).
	primaryFinished := false
	for primarySink.Len() < killAfter {
		select {
		case <-primaryDone:
			primaryFinished = true
			killAfter = primarySink.Len() // primary finished early
		case <-ctx.Done():
			return nil, rep, ctx.Err()
		default:
			time.Sleep(100 * time.Microsecond)
		}
		if primaryFinished || primarySink.Len() >= killAfter {
			break
		}
	}
	failureAt := time.Now()
	primary.Stop()
	if !primaryFinished {
		<-primaryDone
	}

	// Failover: the secondary is already running; recovery time is how long
	// until its output covers the primary's progress.
	for secondarySink.Len() < primarySink.Len() {
		select {
		case err := <-secondaryDone:
			if err != nil && err != context.Canceled {
				return nil, rep, fmt.Errorf("ha: secondary failed: %w", err)
			}
			secondaryDone <- nil
		case <-ctx.Done():
			return nil, rep, ctx.Err()
		default:
			time.Sleep(100 * time.Microsecond)
		}
		if secondarySink.Len() >= primarySink.Len() {
			break
		}
	}
	rep.RecoveryMillis = time.Since(failureAt).Milliseconds()

	if err := <-secondaryDone; err != nil && err != context.Canceled {
		return nil, rep, fmt.Errorf("ha: secondary failed: %w", err)
	}

	out, dups := dedup(primarySink.Events(), secondarySink.Events())
	rep.Output = len(out)
	rep.Duplicates = dups
	return out, rep, nil
}

// RunPassiveStandby runs one job with checkpointing, kills it after
// killAfter results, then starts a standby restored from the latest
// checkpoint and lets it finish.
func RunPassiveStandby(ctx context.Context, fac JobFactory, store core.SnapshotStore, killAfter int) ([]core.Event, Report, error) {
	rep := Report{Mode: "passive-standby", ResourceUnits: 1}

	sink1 := core.NewCollectSink()
	primary, err := fac(sink1, store)
	if err != nil {
		return nil, rep, err
	}
	done := make(chan error, 1)
	go func() { done <- primary.Run(ctx) }()

	finished := false
	for sink1.Len() < killAfter {
		select {
		case <-done:
			finished = true
		case <-ctx.Done():
			return nil, rep, ctx.Err()
		default:
			time.Sleep(100 * time.Microsecond)
		}
		if finished || sink1.Len() >= killAfter {
			break
		}
	}
	failureAt := time.Now()
	primary.Stop()
	if !finished {
		<-done
	}

	cp, ok := store.Latest()
	if !ok {
		return nil, rep, fmt.Errorf("ha: no completed checkpoint to recover from")
	}

	// Spin up the standby from the snapshot ("transferring the computation
	// code and the latest checkpointed state snapshot of a failed operator
	// to an available compute node").
	sink2 := core.NewCollectSink()
	standby, err := fac(sink2, store)
	if err != nil {
		return nil, rep, err
	}
	standby.RestoreFrom(cp.ID)
	var firstOutput time.Time
	recoveredFirst := make(chan struct{})
	go func() {
		for sink2.Len() == 0 {
			time.Sleep(50 * time.Microsecond)
		}
		firstOutput = time.Now()
		close(recoveredFirst)
	}()
	if err := standby.Run(ctx); err != nil {
		return nil, rep, fmt.Errorf("ha: standby failed: %w", err)
	}
	// Recovery time is failure → first post-failure output (restore +
	// replay to the failure point).
	select {
	case <-recoveredFirst:
		rep.RecoveryMillis = firstOutput.Sub(failureAt).Milliseconds()
	default:
		rep.RecoveryMillis = time.Since(failureAt).Milliseconds()
	}

	out, dups := dedup(sink1.Events(), sink2.Events())
	rep.Output = len(out)
	rep.Duplicates = dups
	rep.ReplayedEvents = dups // duplicates are exactly the replayed overlap
	return out, rep, nil
}
