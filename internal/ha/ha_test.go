package ha

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/window"
)

// factory builds identical pass-through jobs over n unique events.
func factory(n int) JobFactory {
	events := make([]core.Event, n)
	for i := range events {
		events[i] = core.Event{Key: fmt.Sprintf("k%d", i%5), Timestamp: int64(i), Value: int64(i)}
	}
	return func(sink *core.CollectSink, store core.SnapshotStore) (*core.Job, error) {
		b := core.NewBuilder(core.Config{
			Name:            "ha-job",
			SnapshotStore:   store,
			CheckpointEvery: 40,
			ChannelCapacity: 4,
		})
		b.Source("src", core.NewSliceSourceFactory(events)).
			Map("id", func(e core.Event) (core.Event, bool) { return e, true }).
			Sink("out", sink.Factory())
		return b.Build()
	}
}

func TestActiveStandbyDeliversEverythingOnce(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const n = 500
	out, rep, err := RunActiveStandby(ctx, factory(n), 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("active standby output: want %d distinct, got %d", n, len(out))
	}
	if rep.ResourceUnits != 2 {
		t.Fatalf("active standby should cost 2x resources, got %d", rep.ResourceUnits)
	}
	if rep.Duplicates == 0 {
		t.Fatal("active standby should have suppressed duplicate outputs from the pair")
	}
}

func TestPassiveStandbyRecoversFromCheckpoint(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const n = 500
	store := core.NewMemorySnapshotStore()
	out, rep, err := RunPassiveStandby(ctx, factory(n), store, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("passive standby output: want %d distinct, got %d", n, len(out))
	}
	if rep.ResourceUnits != 1 {
		t.Fatalf("passive standby steady-state cost should be 1x, got %d", rep.ResourceUnits)
	}
	// Replay length is bounded by the checkpoint interval (40 events per
	// source) plus in-flight buffering, and is strictly less than a full
	// replay.
	if rep.ReplayedEvents >= n {
		t.Fatalf("passive standby replayed the whole stream: %d", rep.ReplayedEvents)
	}
}

func TestPassiveStandbyWithoutCheckpointFails(t *testing.T) {
	ctx := context.Background()
	store := core.NewMemorySnapshotStore()
	// Kill immediately; no checkpoint has completed yet with a huge
	// interval.
	fac := func(sink *core.CollectSink, st core.SnapshotStore) (*core.Job, error) {
		b := core.NewBuilder(core.Config{Name: "nochk", SnapshotStore: st})
		b.Source("src", core.NewSliceSourceFactory([]core.Event{{Timestamp: 1}})).
			Sink("out", sink.Factory())
		return b.Build()
	}
	if _, _, err := RunPassiveStandby(ctx, fac, store, 1); err == nil {
		t.Fatal("recovery without checkpoints should fail")
	}
}

func TestDedupCountsDuplicates(t *testing.T) {
	a := []core.Event{{Key: "k", Timestamp: 1}, {Key: "k", Timestamp: 2}}
	b := []core.Event{{Key: "k", Timestamp: 2}, {Key: "k", Timestamp: 3}}
	out, dups := dedup(a, b)
	if len(out) != 3 || dups != 1 {
		t.Fatalf("dedup: got %d events, %d dups", len(out), dups)
	}
}

func TestActiveStandbyPrimaryFinishesBeforeKill(t *testing.T) {
	// killAfter beyond the stream length: the primary completes naturally;
	// failover still yields exactly-once output.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const n = 100
	out, rep, err := RunActiveStandby(ctx, factory(n), n*10)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("want %d distinct outputs, got %d", n, len(out))
	}
	if rep.Output != n {
		t.Fatalf("report output: %d", rep.Output)
	}
}

func TestPassiveStandbyNoReplayReportsUnmeasuredRecovery(t *testing.T) {
	// A pipeline that drops everything: the standby restores, replays, and
	// legitimately produces no output at all. That must not be reported as a
	// (huge) recovery time — the report flags recovery as unmeasured.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	events := make([]core.Event, 200)
	for i := range events {
		events[i] = core.Event{Key: "k", Timestamp: int64(i)}
	}
	fac := func(sink *core.CollectSink, store core.SnapshotStore) (*core.Job, error) {
		b := core.NewBuilder(core.Config{
			Name:            "silent",
			SnapshotStore:   store,
			CheckpointEvery: 20,
			ChannelCapacity: 4, // backpressure the source so checkpoints land mid-stream
		})
		b.Source("src", core.NewSliceSourceFactory(events)).
			Map("slow", func(e core.Event) (core.Event, bool) {
				time.Sleep(50 * time.Microsecond) // give checkpoints time to complete
				return e, true
			}).
			Filter("drop", func(core.Event) bool { return false }).
			Sink("out", sink.Factory())
		return b.Build()
	}
	store := core.NewMemorySnapshotStore()
	out, rep, err := RunPassiveStandby(ctx, fac, store, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("drop-all pipeline produced output: %d", len(out))
	}
	if rep.RecoveryMeasured {
		t.Fatalf("no post-failure output, yet recovery reported as measured: %+v", rep)
	}
	if rep.RecoveryMillis != 0 {
		t.Fatalf("unmeasured recovery should not carry a duration: %d", rep.RecoveryMillis)
	}
}

func TestPassiveStandbyWithOutputMeasuresRecovery(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	store := core.NewMemorySnapshotStore()
	_, rep, err := RunPassiveStandby(ctx, factory(500), store, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.RecoveryMeasured {
		t.Fatalf("standby replayed output but recovery unmeasured: %+v", rep)
	}
}

// flakyOp fails the job once after `failAt` elements, then behaves as a
// pass-through forever. The shared fired flag makes restarts run clean.
type flakyOp struct {
	core.BaseOperator
	seen   *int64
	failAt int64
	fired  *int32
}

func (f *flakyOp) ProcessElement(e core.Event, ctx core.Context) error {
	n := atomic.AddInt64(f.seen, 1)
	if n >= f.failAt && atomic.CompareAndSwapInt32(f.fired, 0, 1) {
		return fmt.Errorf("injected operator failure at element %d", n)
	}
	ctx.Emit(e)
	return nil
}

func flakyFactory(n int, failAt int64) (JobFactory, *int32) {
	events := make([]core.Event, n)
	for i := range events {
		events[i] = core.Event{Key: fmt.Sprintf("k%d", i%5), Timestamp: int64(i), Value: int64(i)}
	}
	fired := new(int32)
	fac := func(sink *core.CollectSink, store core.SnapshotStore) (*core.Job, error) {
		seen := new(int64)
		b := core.NewBuilder(core.Config{
			Name:            "supervised",
			SnapshotStore:   store,
			CheckpointEvery: 40,
			ChannelCapacity: 4,
		})
		b.Source("src", core.NewSliceSourceFactory(events)).
			Process("flaky", func() core.Operator {
				return &flakyOp{seen: seen, failAt: failAt, fired: fired}
			}).
			Sink("out", sink.Factory())
		return b.Build()
	}
	return fac, fired
}

func TestRunSupervisedRestartsFromCheckpoint(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const n = 500
	fac, _ := flakyFactory(n, 250)
	store := core.NewMemorySnapshotStore()
	out, rep, err := RunSupervised(ctx, fac, store, RestartStrategy{MaxRestarts: 3, Delay: time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("supervised run lost/duplicated output: want %d distinct, got %d", n, len(out))
	}
	if rep.Attempts != 2 || rep.Restarts != 1 {
		t.Fatalf("want exactly one restart, got %+v", rep)
	}
	if len(rep.RecoveredFrom) != 2 || rep.RecoveredFrom[0] != -1 || rep.RecoveredFrom[1] < 0 {
		t.Fatalf("restart should resume from a completed checkpoint: %v", rep.RecoveredFrom)
	}
	if len(rep.Failures) != 1 {
		t.Fatalf("failures: %v", rep.Failures)
	}
}

func TestRunSupervisedGivesUpAfterBudget(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	events := []core.Event{{Key: "k", Timestamp: 1}}
	fac := func(sink *core.CollectSink, store core.SnapshotStore) (*core.Job, error) {
		b := core.NewBuilder(core.Config{Name: "doomed", SnapshotStore: store})
		b.Source("src", core.NewSliceSourceFactory(events)).
			Process("fail", core.MapFunc(func(core.Event, core.Context) error {
				return fmt.Errorf("always fails")
			})).
			Sink("out", sink.Factory())
		return b.Build()
	}
	store := core.NewMemorySnapshotStore()
	_, rep, err := RunSupervised(ctx, fac, store, RestartStrategy{MaxRestarts: 2, Delay: time.Millisecond}, nil)
	if err == nil {
		t.Fatal("a permanently failing job must exhaust its restart budget")
	}
	if rep.Attempts != 3 {
		t.Fatalf("MaxRestarts=2 should allow 3 attempts, got %d", rep.Attempts)
	}
}

func TestRunSupervisedRecoversFromPanic(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const n = 400
	events := make([]core.Event, n)
	for i := range events {
		events[i] = core.Event{Key: fmt.Sprintf("k%d", i%3), Timestamp: int64(i), Value: int64(i)}
	}
	var fired int32
	fac := func(sink *core.CollectSink, store core.SnapshotStore) (*core.Job, error) {
		seen := new(int64)
		b := core.NewBuilder(core.Config{
			Name:            "panicky",
			SnapshotStore:   store,
			CheckpointEvery: 30,
			ChannelCapacity: 4,
		})
		b.Source("src", core.NewSliceSourceFactory(events)).
			Process("boom", core.MapFunc(func(e core.Event, ctx core.Context) error {
				if atomic.AddInt64(seen, 1) >= 180 && atomic.CompareAndSwapInt32(&fired, 0, 1) {
					panic("injected operator panic")
				}
				ctx.Emit(e)
				return nil
			})).
			Sink("out", sink.Factory())
		return b.Build()
	}
	store := core.NewMemorySnapshotStore()
	out, rep, err := RunSupervised(ctx, fac, store, RestartStrategy{MaxRestarts: 3, Delay: time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("panic recovery lost/duplicated output: want %d distinct, got %d", n, len(out))
	}
	if rep.Restarts != 1 {
		t.Fatalf("want one restart after the panic, got %+v", rep)
	}
}

// TestRunSupervisedRecoversAcrossDeltaChain pins supervised recovery when the
// latest completed checkpoint is an incremental (delta) checkpoint: the
// restarted incarnation must resolve the chain back to its full parent and
// resume exactly-once. The failure is triggered *by* chain shape — the job
// dies only once the store's Latest is a delta — so the test cannot silently
// degrade into restoring a self-contained snapshot.
func TestRunSupervisedRecoversAcrossDeltaChain(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const n = 600
	events := make([]core.Event, n)
	for i := range events {
		events[i] = core.Event{Key: fmt.Sprintf("k%d", i%5), Timestamp: int64(i * 10), Value: int64(i)}
	}
	store := core.NewMemorySnapshotStore()
	var fired int32
	var tripMeta core.CheckpointMeta
	fac := func(sink *core.CollectSink, st core.SnapshotStore) (*core.Job, error) {
		b := core.NewBuilder(core.Config{
			Name:              "ha-delta",
			SnapshotStore:     st,
			CheckpointEvery:   30,
			ChannelCapacity:   4,
			WatermarkInterval: 1,
			DeltaCheckpoints:  true,
			// Keep every checkpoint after the first a delta, so the trip
			// condition below implies the recovery point is a chain head.
			FullSnapshotEvery: 100,
		})
		keyed := b.Source("src", core.NewSliceSourceFactory(events), core.WithBoundedDisorder(0)).
			Process("trip", core.MapFunc(func(e core.Event, ctx core.Context) error {
				time.Sleep(120 * time.Microsecond) // pace so checkpoints land mid-stream
				if atomic.LoadInt32(&fired) == 0 {
					if meta, ok := store.Latest(); ok && meta.Parent != 0 &&
						atomic.CompareAndSwapInt32(&fired, 0, 1) {
						tripMeta = meta
						return fmt.Errorf("injected failure on delta checkpoint %d (parent %d)", meta.ID, meta.Parent)
					}
				}
				ctx.Emit(e)
				return nil
			})).
			KeyBy(func(e core.Event) string { return e.Key })
		window.Apply(keyed, "win", window.NewTumbling(1_000), window.CountAggregate()).
			Sink("out", sink.Factory())
		return b.Build()
	}
	out, rep, err := RunSupervised(ctx, fac, store, RestartStrategy{MaxRestarts: 3, Delay: time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&fired) == 0 {
		t.Fatal("no delta checkpoint completed before the stream drained; the scenario never ran")
	}
	if tripMeta.Parent == 0 {
		t.Fatalf("trip recorded a non-delta checkpoint: %+v", tripMeta)
	}
	if rep.Restarts != 1 {
		t.Fatalf("want exactly one restart, got %+v", rep)
	}
	if len(rep.RecoveredFrom) != 2 || rep.RecoveredFrom[1] < tripMeta.ID {
		t.Fatalf("restart should resume from the delta chain head %d or later: %v", tripMeta.ID, rep.RecoveredFrom)
	}
	// 6 tumbling 1s windows x 5 keys, 20 events each: a replay that dropped
	// or double-counted any event would surface as a distinct extra result.
	if len(out) != 30 {
		t.Fatalf("want 30 distinct window results, got %d", len(out))
	}
	for _, e := range out {
		if v, ok := e.Value.(int64); !ok || v != 20 {
			t.Fatalf("window %s@%d counted %v, want 20", e.Key, e.Timestamp, e.Value)
		}
	}
}

func TestPassiveStandbyPrimaryFinishesBeforeKill(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const n = 100
	store := core.NewMemorySnapshotStore()
	out, _, err := RunPassiveStandby(ctx, factory(n), store, n*10)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("want %d distinct outputs, got %d", n, len(out))
	}
}
