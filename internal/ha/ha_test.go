package ha

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
)

// factory builds identical pass-through jobs over n unique events.
func factory(n int) JobFactory {
	events := make([]core.Event, n)
	for i := range events {
		events[i] = core.Event{Key: fmt.Sprintf("k%d", i%5), Timestamp: int64(i), Value: int64(i)}
	}
	return func(sink *core.CollectSink, store core.SnapshotStore) (*core.Job, error) {
		b := core.NewBuilder(core.Config{
			Name:            "ha-job",
			SnapshotStore:   store,
			CheckpointEvery: 40,
			ChannelCapacity: 4,
		})
		b.Source("src", core.NewSliceSourceFactory(events)).
			Map("id", func(e core.Event) (core.Event, bool) { return e, true }).
			Sink("out", sink.Factory())
		return b.Build()
	}
}

func TestActiveStandbyDeliversEverythingOnce(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const n = 500
	out, rep, err := RunActiveStandby(ctx, factory(n), 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("active standby output: want %d distinct, got %d", n, len(out))
	}
	if rep.ResourceUnits != 2 {
		t.Fatalf("active standby should cost 2x resources, got %d", rep.ResourceUnits)
	}
	if rep.Duplicates == 0 {
		t.Fatal("active standby should have suppressed duplicate outputs from the pair")
	}
}

func TestPassiveStandbyRecoversFromCheckpoint(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const n = 500
	store := core.NewMemorySnapshotStore()
	out, rep, err := RunPassiveStandby(ctx, factory(n), store, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("passive standby output: want %d distinct, got %d", n, len(out))
	}
	if rep.ResourceUnits != 1 {
		t.Fatalf("passive standby steady-state cost should be 1x, got %d", rep.ResourceUnits)
	}
	// Replay length is bounded by the checkpoint interval (40 events per
	// source) plus in-flight buffering, and is strictly less than a full
	// replay.
	if rep.ReplayedEvents >= n {
		t.Fatalf("passive standby replayed the whole stream: %d", rep.ReplayedEvents)
	}
}

func TestPassiveStandbyWithoutCheckpointFails(t *testing.T) {
	ctx := context.Background()
	store := core.NewMemorySnapshotStore()
	// Kill immediately; no checkpoint has completed yet with a huge
	// interval.
	fac := func(sink *core.CollectSink, st core.SnapshotStore) (*core.Job, error) {
		b := core.NewBuilder(core.Config{Name: "nochk", SnapshotStore: st})
		b.Source("src", core.NewSliceSourceFactory([]core.Event{{Timestamp: 1}})).
			Sink("out", sink.Factory())
		return b.Build()
	}
	if _, _, err := RunPassiveStandby(ctx, fac, store, 1); err == nil {
		t.Fatal("recovery without checkpoints should fail")
	}
}

func TestDedupCountsDuplicates(t *testing.T) {
	a := []core.Event{{Key: "k", Timestamp: 1}, {Key: "k", Timestamp: 2}}
	b := []core.Event{{Key: "k", Timestamp: 2}, {Key: "k", Timestamp: 3}}
	out, dups := dedup(a, b)
	if len(out) != 3 || dups != 1 {
		t.Fatalf("dedup: got %d events, %d dups", len(out), dups)
	}
}

func TestActiveStandbyPrimaryFinishesBeforeKill(t *testing.T) {
	// killAfter beyond the stream length: the primary completes naturally;
	// failover still yields exactly-once output.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const n = 100
	out, rep, err := RunActiveStandby(ctx, factory(n), n*10)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("want %d distinct outputs, got %d", n, len(out))
	}
	if rep.Output != n {
		t.Fatalf("report output: %d", rep.Output)
	}
}

func TestPassiveStandbyPrimaryFinishesBeforeKill(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const n = 100
	store := core.NewMemorySnapshotStore()
	out, _, err := RunPassiveStandby(ctx, factory(n), store, n*10)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("want %d distinct outputs, got %d", n, len(out))
	}
}
