// Package iterate implements the loops & cycles of §4.2: most dataflow
// systems are DAG-bound, but ML and graph workloads need either
// *asynchronous* feedback (request/response, actor-style cycles) or
// *synchronous* bulk-iterative execution (BSP supersteps, "paramount for
// bulk iterative algorithms ... and graph analytics that rely on iterative
// superstep synchronization"). Both forms are provided here:
//
//   - AsyncLoop: a deadlock-free feedback queue around a processing
//     function — events may re-enter the loop any number of times;
//   - Pregel: a vertex-centric bulk-synchronous runner with superstep
//     barriers, message passing and vote-to-halt semantics.
package iterate

import (
	"fmt"
)

// AsyncLoop runs a function over an input stream where each invocation may
// emit final outputs and/or feedback elements that re-enter the loop. The
// feedback queue is unbounded, which removes the deadlock problem that makes
// cycles hard in backpressured dataflows (§4.2 "limitations in flow control
// (deadlock elimination)").
type AsyncLoop struct {
	// MaxSteps bounds total invocations as a divergence guard; 0 means
	// 1e7.
	MaxSteps int
	// Steps counts invocations of the last Run.
	Steps int
}

// Run processes the inputs to quiescence and returns the emitted outputs in
// emission order.
func (l *AsyncLoop) Run(inputs []any, fn func(v any, emit func(any), feedback func(any))) ([]any, error) {
	limit := l.MaxSteps
	if limit <= 0 {
		limit = 10_000_000
	}
	queue := append([]any(nil), inputs...)
	var out []any
	l.Steps = 0
	for len(queue) > 0 {
		if l.Steps >= limit {
			return out, fmt.Errorf("iterate: async loop exceeded %d steps (diverging feedback?)", limit)
		}
		v := queue[0]
		queue = queue[1:]
		l.Steps++
		fn(v,
			func(o any) { out = append(out, o) },
			func(fb any) { queue = append(queue, fb) },
		)
	}
	return out, nil
}

// Vertex is one node of a Pregel computation.
type Vertex struct {
	ID    string
	Value any
	Edges []Edge
	// halted is the vote-to-halt flag; an incoming message reactivates the
	// vertex.
	halted bool
}

// Edge is an outgoing connection with an optional weight.
type Edge struct {
	To     string
	Weight float64
}

// VertexContext is handed to the compute function each superstep.
type VertexContext struct {
	vertex    *Vertex
	superstep int
	outbox    map[string][]any
	aggregate *float64
}

// Superstep returns the current superstep number (0-based).
func (c *VertexContext) Superstep() int { return c.superstep }

// Vertex returns the vertex under computation.
func (c *VertexContext) Vertex() *Vertex { return c.vertex }

// SendTo delivers a message to another vertex for the next superstep.
func (c *VertexContext) SendTo(id string, msg any) {
	c.outbox[id] = append(c.outbox[id], msg)
}

// SendToAllNeighbors broadcasts along out-edges.
func (c *VertexContext) SendToAllNeighbors(msg any) {
	for _, e := range c.vertex.Edges {
		c.SendTo(e.To, msg)
	}
}

// VoteToHalt deactivates the vertex until a message arrives.
func (c *VertexContext) VoteToHalt() { c.vertex.halted = true }

// Aggregate adds to the global (per-superstep) float aggregator.
func (c *VertexContext) Aggregate(v float64) { *c.aggregate += v }

// Compute is the per-vertex program, invoked for active vertices with their
// incoming messages.
type Compute func(ctx *VertexContext, msgs []any)

// Pregel is a bulk-synchronous vertex-centric computation.
type Pregel struct {
	Vertices map[string]*Vertex
	// Supersteps counts executed supersteps after Run.
	Supersteps int
	// AggregatorHistory records the global aggregate per superstep.
	AggregatorHistory []float64
}

// NewPregel builds a computation over the given vertices.
func NewPregel(vertices []*Vertex) *Pregel {
	m := make(map[string]*Vertex, len(vertices))
	for _, v := range vertices {
		m[v.ID] = v
	}
	return &Pregel{Vertices: m}
}

// Run executes supersteps until all vertices halt with no messages in
// flight, or maxSupersteps is reached.
func (p *Pregel) Run(compute Compute, maxSupersteps int) error {
	if maxSupersteps <= 0 {
		maxSupersteps = 1000
	}
	inbox := map[string][]any{}
	p.Supersteps = 0
	p.AggregatorHistory = nil
	for step := 0; step < maxSupersteps; step++ {
		outbox := map[string][]any{}
		var agg float64
		active := 0
		for _, v := range p.Vertices {
			msgs := inbox[v.ID]
			if v.halted && len(msgs) == 0 {
				continue
			}
			v.halted = false
			active++
			ctx := &VertexContext{vertex: v, superstep: step, outbox: outbox, aggregate: &agg}
			compute(ctx, msgs)
		}
		p.AggregatorHistory = append(p.AggregatorHistory, agg)
		if active == 0 {
			return nil
		}
		p.Supersteps++
		// Barrier: deliver messages, dropping those to unknown vertices.
		inbox = map[string][]any{}
		for id, msgs := range outbox {
			if _, ok := p.Vertices[id]; ok {
				inbox[id] = msgs
			}
		}
		if len(inbox) == 0 {
			allHalted := true
			for _, v := range p.Vertices {
				if !v.halted {
					allHalted = false
					break
				}
			}
			if allHalted {
				return nil
			}
		}
	}
	return fmt.Errorf("iterate: pregel did not converge within %d supersteps", maxSupersteps)
}
