package iterate

import (
	"fmt"
	"math"
	"testing"
)

func TestAsyncLoopCollatz(t *testing.T) {
	// Feedback until each number reaches 1; outputs record step counts.
	var loop AsyncLoop
	type item struct{ n, steps int }
	out, err := loop.Run([]any{item{6, 0}, item{7, 0}}, func(v any, emit func(any), feedback func(any)) {
		it := v.(item)
		if it.n == 1 {
			emit(it.steps)
			return
		}
		if it.n%2 == 0 {
			feedback(item{it.n / 2, it.steps + 1})
		} else {
			feedback(item{3*it.n + 1, it.steps + 1})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("want 2 results, got %d", len(out))
	}
	// Collatz steps: 6→8 steps, 7→16 steps.
	got := map[int]bool{out[0].(int): true, out[1].(int): true}
	if !got[8] || !got[16] {
		t.Fatalf("collatz steps wrong: %v", out)
	}
}

func TestAsyncLoopDivergenceGuard(t *testing.T) {
	loop := AsyncLoop{MaxSteps: 100}
	_, err := loop.Run([]any{1}, func(v any, emit func(any), feedback func(any)) {
		feedback(v) // never terminates
	})
	if err == nil {
		t.Fatal("diverging loop not detected")
	}
}

// ringGraph builds a ring of n vertices.
func ringGraph(n int) []*Vertex {
	vs := make([]*Vertex, n)
	for i := range vs {
		vs[i] = &Vertex{ID: fmt.Sprintf("v%d", i), Value: float64(i)}
	}
	for i := range vs {
		vs[i].Edges = []Edge{{To: vs[(i+1)%n].ID, Weight: 1}}
	}
	return vs
}

func TestPregelMinLabelPropagation(t *testing.T) {
	// Connected components by min-label propagation on a ring: everything
	// converges to label 0.
	g := NewPregel(ringGraph(10))
	err := g.Run(func(ctx *VertexContext, msgs []any) {
		v := ctx.Vertex()
		cur := v.Value.(float64)
		changed := ctx.Superstep() == 0
		for _, m := range msgs {
			if l := m.(float64); l < cur {
				cur = l
				changed = true
			}
		}
		v.Value = cur
		if changed {
			ctx.SendToAllNeighbors(cur)
		}
		ctx.VoteToHalt()
	}, 100)
	if err != nil {
		t.Fatal(err)
	}
	for id, v := range g.Vertices {
		if v.Value.(float64) != 0 {
			t.Fatalf("vertex %s label %v, want 0", id, v.Value)
		}
	}
	if g.Supersteps < 5 {
		t.Fatalf("ring of 10 needs several supersteps, got %d", g.Supersteps)
	}
}

func TestPregelSSSP(t *testing.T) {
	// Weighted single-source shortest paths on a small graph.
	inf := math.Inf(1)
	vs := []*Vertex{
		{ID: "a", Value: 0.0, Edges: []Edge{{To: "b", Weight: 1}, {To: "c", Weight: 4}}},
		{ID: "b", Value: inf, Edges: []Edge{{To: "c", Weight: 2}, {To: "d", Weight: 6}}},
		{ID: "c", Value: inf, Edges: []Edge{{To: "d", Weight: 3}}},
		{ID: "d", Value: inf},
	}
	g := NewPregel(vs)
	err := g.Run(func(ctx *VertexContext, msgs []any) {
		v := ctx.Vertex()
		dist := v.Value.(float64)
		improved := ctx.Superstep() == 0 && dist == 0
		for _, m := range msgs {
			if d := m.(float64); d < dist {
				dist = d
				improved = true
			}
		}
		v.Value = dist
		if improved {
			for _, e := range v.Edges {
				ctx.SendTo(e.To, dist+e.Weight)
			}
		}
		ctx.VoteToHalt()
	}, 50)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"a": 0, "b": 1, "c": 3, "d": 6}
	for id, d := range want {
		if got := g.Vertices[id].Value.(float64); got != d {
			t.Fatalf("dist[%s] = %v, want %v", id, got, d)
		}
	}
}

func TestPregelAggregator(t *testing.T) {
	g := NewPregel(ringGraph(5))
	err := g.Run(func(ctx *VertexContext, msgs []any) {
		ctx.Aggregate(1) // count active vertices
		ctx.VoteToHalt()
	}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.AggregatorHistory) == 0 || g.AggregatorHistory[0] != 5 {
		t.Fatalf("aggregator history wrong: %v", g.AggregatorHistory)
	}
}

func TestPregelNonConvergenceDetected(t *testing.T) {
	g := NewPregel(ringGraph(3))
	err := g.Run(func(ctx *VertexContext, msgs []any) {
		ctx.SendToAllNeighbors(1.0) // chatter forever
	}, 10)
	if err == nil {
		t.Fatal("non-converging pregel not detected")
	}
}

func TestPregelMessageToUnknownVertexDropped(t *testing.T) {
	vs := []*Vertex{{ID: "only", Value: 0.0, Edges: []Edge{{To: "ghost"}}}}
	g := NewPregel(vs)
	err := g.Run(func(ctx *VertexContext, msgs []any) {
		if ctx.Superstep() == 0 {
			ctx.SendToAllNeighbors(1.0)
		}
		ctx.VoteToHalt()
	}, 10)
	if err != nil {
		t.Fatalf("message to unknown vertex should be dropped silently: %v", err)
	}
}
