// Package lineage implements a discretized-streams micro-batch engine with
// lineage-based fault recovery — the Spark Streaming architecture (§3.1
// cites "lineage-based approaches [50]") that serves as the baseline
// comparator in experiment E7. The stream is cut into batches; each batch
// flows through a deterministic transform chain; stateful folds thread state
// from batch to batch. A lost partition is recovered not from a replica or a
// snapshot but by *recomputing* it from its lineage: the source batch plus
// the deterministic transforms, re-folded from the last state checkpoint.
package lineage

import (
	"fmt"

	"repro/internal/core"
)

// Transform is a deterministic, stateless batch transformation.
type Transform func(in []core.Event) []core.Event

// Fold is a deterministic stateful batch transformation: it consumes a batch
// with the previous state and produces outputs plus the next state.
type Fold func(state any, in []core.Event) (out []core.Event, next any)

// Config parameterises a micro-batch job.
type Config struct {
	// BatchSize is the number of source events per batch (the batch
	// interval of discretized streams, expressed in events to stay
	// clock-free).
	BatchSize int
	// CheckpointEveryBatches cuts the lineage by persisting the fold state
	// every k batches; recovery recomputes at most k-1 batches. 0 disables
	// state checkpoints (full lineage replay).
	CheckpointEveryBatches int
}

// Job is a compiled micro-batch pipeline.
type Job struct {
	cfg        Config
	source     []core.Event
	transforms []Transform
	fold       Fold
	initState  any

	// checkpoints[i] is the fold state *before* batch i, present for
	// checkpointed batch indices (and always for batch 0).
	checkpoints map[int]any

	// Stats.
	BatchesRun        int // total batch executions, including recomputation
	RecomputedBatches int
}

// NewJob builds a micro-batch job over a fixed replayable source.
func NewJob(cfg Config, source []core.Event, transforms []Transform, fold Fold, initState any) (*Job, error) {
	if cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("lineage: batch size must be positive")
	}
	return &Job{
		cfg:         cfg,
		source:      source,
		transforms:  transforms,
		fold:        fold,
		initState:   initState,
		checkpoints: map[int]any{0: initState},
	}, nil
}

// NumBatches returns the batch count of the source.
func (j *Job) NumBatches() int {
	return (len(j.source) + j.cfg.BatchSize - 1) / j.cfg.BatchSize
}

// batch returns the i-th source batch (lineage step 1: the replayable
// source partition).
func (j *Job) batch(i int) []core.Event {
	lo := i * j.cfg.BatchSize
	hi := lo + j.cfg.BatchSize
	if hi > len(j.source) {
		hi = len(j.source)
	}
	return j.source[lo:hi]
}

// runBatch executes one batch through the transform chain and fold.
func (j *Job) runBatch(i int, state any) (out []core.Event, next any) {
	j.BatchesRun++
	data := j.batch(i)
	for _, t := range j.transforms {
		data = t(data)
	}
	if j.fold == nil {
		return data, state
	}
	return j.fold(state, data)
}

// Run executes all batches, optionally injecting a failure: failAtBatch >= 0
// simulates losing the in-memory results and state at that batch, forcing
// lineage recovery (recompute from the last checkpoint). Returns all output
// events in order.
func (j *Job) Run(failAtBatch int) ([]core.Event, error) {
	var out []core.Event
	state := j.initState
	n := j.NumBatches()
	failed := false
	for i := 0; i < n; i++ {
		if j.cfg.CheckpointEveryBatches > 0 && i%j.cfg.CheckpointEveryBatches == 0 {
			j.checkpoints[i] = state
		}
		if i == failAtBatch && !failed {
			failed = true
			// The worker holding the current state is gone. Recover the
			// state by recomputing from the nearest checkpoint (lineage).
			base := 0
			for c := range j.checkpoints {
				if c <= i && c > base {
					base = c
				}
			}
			state = j.checkpoints[base]
			for r := base; r < i; r++ {
				_, state = j.runBatch(r, state)
				j.RecomputedBatches++
			}
		}
		var batchOut []core.Event
		batchOut, state = j.runBatch(i, state)
		out = append(out, batchOut...)
	}
	return out, nil
}
