package lineage

import (
	"testing"

	"repro/internal/core"
)

func srcEvents(n int) []core.Event {
	events := make([]core.Event, n)
	for i := range events {
		events[i] = core.Event{Timestamp: int64(i), Value: int64(1)}
	}
	return events
}

// runningSum folds a running total and emits it once per batch.
func runningSum(state any, in []core.Event) ([]core.Event, any) {
	total := state.(int64)
	for _, e := range in {
		total += e.Value.(int64)
	}
	return []core.Event{{Timestamp: in[len(in)-1].Timestamp, Value: total}}, total
}

func TestMicroBatchProducesSameResultWithAndWithoutFailure(t *testing.T) {
	mk := func() *Job {
		j, err := NewJob(Config{BatchSize: 10, CheckpointEveryBatches: 4}, srcEvents(100),
			[]Transform{func(in []core.Event) []core.Event { return in }}, runningSum, int64(0))
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	clean, err := mk().Run(-1)
	if err != nil {
		t.Fatal(err)
	}
	failed, err := mk().Run(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean) != len(failed) {
		t.Fatalf("output lengths differ: %d vs %d", len(clean), len(failed))
	}
	for i := range clean {
		if clean[i].Value.(int64) != failed[i].Value.(int64) {
			t.Fatalf("batch %d differs after lineage recovery: %v vs %v", i, clean[i], failed[i])
		}
	}
	if final := failed[len(failed)-1].Value.(int64); final != 100 {
		t.Fatalf("final running sum: want 100, got %d", final)
	}
}

func TestLineageRecomputationBoundedByCheckpointInterval(t *testing.T) {
	j, err := NewJob(Config{BatchSize: 10, CheckpointEveryBatches: 4}, srcEvents(100),
		nil, runningSum, int64(0))
	if err != nil {
		t.Fatal(err)
	}
	// Fail at batch 7; last checkpoint at batch 4 → recompute batches 4..6.
	if _, err := j.Run(7); err != nil {
		t.Fatal(err)
	}
	if j.RecomputedBatches != 3 {
		t.Fatalf("recomputed batches: want 3, got %d", j.RecomputedBatches)
	}
}

func TestLineageFullReplayWithoutCheckpoints(t *testing.T) {
	j, err := NewJob(Config{BatchSize: 10}, srcEvents(100), nil, runningSum, int64(0))
	if err != nil {
		t.Fatal(err)
	}
	// Without state checkpoints, failing at batch 9 recomputes 0..8.
	if _, err := j.Run(9); err != nil {
		t.Fatal(err)
	}
	if j.RecomputedBatches != 9 {
		t.Fatalf("recomputed batches: want 9 (full lineage), got %d", j.RecomputedBatches)
	}
}

func TestStatelessTransformChain(t *testing.T) {
	double := func(in []core.Event) []core.Event {
		out := make([]core.Event, len(in))
		for i, e := range in {
			e.Value = e.Value.(int64) * 2
			out[i] = e
		}
		return out
	}
	j, err := NewJob(Config{BatchSize: 5}, srcEvents(20), []Transform{double, double}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := j.Run(-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 20 {
		t.Fatalf("want 20 outputs, got %d", len(out))
	}
	for _, e := range out {
		if e.Value.(int64) != 4 {
			t.Fatalf("transform chain: want 4, got %v", e.Value)
		}
	}
}

func TestBatchSizeValidation(t *testing.T) {
	if _, err := NewJob(Config{}, nil, nil, nil, nil); err == nil {
		t.Fatal("zero batch size accepted")
	}
}
