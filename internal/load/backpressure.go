package load

import (
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// CreditController implements credit-based flow control, the mechanism behind
// modern backpressure (§3.3): a receiver grants credits matching its free
// buffer space; a sender may only transmit while holding credits. When the
// receiver stalls, credits dry up and the stall propagates upstream hop by
// hop until the sources slow down — no data is dropped.
type CreditController struct {
	mu      sync.Mutex
	cond    *sync.Cond
	credits int
	max     int
	closed  bool
	// waits counts how many sends had to block — the backpressure signal
	// monitoring systems expose. Atomic so external readers (gauges, the
	// introspection server) need no lock.
	waits atomic.Int64
}

// NewCreditController returns a controller with the given buffer budget.
func NewCreditController(buffers int) *CreditController {
	c := &CreditController{credits: buffers, max: buffers}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Acquire takes one credit, blocking while none are available. It returns
// false if the controller was closed while waiting.
func (c *CreditController) Acquire() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	waited := false
	for c.credits == 0 && !c.closed {
		if !waited {
			c.waits.Add(1)
			waited = true
		}
		c.cond.Wait()
	}
	if c.closed {
		return false
	}
	c.credits--
	return true
}

// AcquireN takes n credits at once, blocking until all are available. A
// batched exchange acquires one credit per record but only once per batch
// message, so the accounting stays per-record while the locking is
// per-batch. It returns false if the controller was closed while waiting.
// n larger than the total budget can never be satisfied and returns false.
func (c *CreditController) AcquireN(n int) bool {
	if n <= 0 {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if n > c.max {
		return false
	}
	waited := false
	for c.credits < n && !c.closed {
		if !waited {
			c.waits.Add(1)
			waited = true
		}
		c.cond.Wait()
	}
	if c.closed {
		return false
	}
	c.credits -= n
	return true
}

// TryAcquire takes a credit without blocking.
func (c *CreditController) TryAcquire() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.credits == 0 || c.closed {
		return false
	}
	c.credits--
	return true
}

// Grant returns one credit (the receiver freed a buffer). Broadcast, not
// Signal: with batch (AcquireN) and single waiters mixed, a single Signal
// can wake only a waiter whose demand is still unmet while a satisfiable
// one keeps sleeping.
func (c *CreditController) Grant() {
	c.mu.Lock()
	if c.credits < c.max {
		c.credits++
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}

// GrantN returns n credits (the receiver drained a whole batch), waking all
// waiters so a blocked AcquireN sees the full refill at once.
func (c *CreditController) GrantN(n int) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	if c.credits += n; c.credits > c.max {
		c.credits = c.max
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}

// Available returns the current credit count.
func (c *CreditController) Available() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.credits
}

// WaitCount returns how many Acquire calls had to block for a credit.
func (c *CreditController) WaitCount() int64 { return c.waits.Load() }

// Instrument registers live gauges for this controller under the given name
// prefix: <name>.credits (free buffer budget) and <name>.wait_count (blocked
// sends, the backpressure signal).
func (c *CreditController) Instrument(r *metrics.Registry, name string) {
	r.GaugeFunc(name+".credits", func() int64 { return int64(c.Available()) })
	r.GaugeFunc(name+".wait_count", c.WaitCount)
}

// Close releases all waiters.
func (c *CreditController) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.cond.Broadcast()
}
