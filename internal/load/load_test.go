package load

import (
	"math"
	"sync"
	"testing"

	"repro/internal/metrics"
)

func TestRandomShedderApproximatesFraction(t *testing.T) {
	s := NewRandomShedder(1)
	kept := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Keep(0, 0.3) {
			kept++
		}
	}
	frac := float64(kept) / n
	if frac < 0.67 || frac > 0.73 {
		t.Fatalf("random shedder kept %.3f, want ~0.70", frac)
	}
}

func TestSemanticShedderDropsLowUtilityFirst(t *testing.T) {
	s := NewSemanticShedder(1000)
	// Warm the sample with uniform utilities.
	for i := 0; i < 1000; i++ {
		s.Keep(float64(i%100), 0)
	}
	// With 30% drop, utilities clearly above the 30th percentile survive and
	// clearly below are dropped.
	if !s.Keep(90, 0.3) {
		t.Fatal("high-utility tuple dropped")
	}
	if s.Keep(5, 0.3) {
		t.Fatal("low-utility tuple kept")
	}
}

func TestSheddingControllerActivatesOnlyUnderOverload(t *testing.T) {
	c := NewSheddingController(100, 0.95)
	for i := 0; i < 20; i++ {
		if f := c.ObserveArrivals(50); f != 0 {
			t.Fatalf("shedding under low load: %v", f)
		}
	}
	var f float64
	for i := 0; i < 20; i++ {
		f = c.ObserveArrivals(200)
	}
	if f < 0.4 || f > 0.6 {
		t.Fatalf("drop fraction under 2x overload: want ~0.525, got %v", f)
	}
}

func TestRateEstimatorConverges(t *testing.T) {
	e := NewRateEstimator(0.5)
	for i := 0; i < 30; i++ {
		e.Observe(100)
	}
	if r := e.Rate(); r < 99 || r > 101 {
		t.Fatalf("EWMA did not converge: %v", r)
	}
}

func TestCreditControllerBlocksAndGrants(t *testing.T) {
	c := NewCreditController(2)
	if !c.TryAcquire() || !c.TryAcquire() {
		t.Fatal("initial credits unavailable")
	}
	if c.TryAcquire() {
		t.Fatal("acquired beyond budget")
	}
	done := make(chan bool)
	go func() { done <- c.Acquire() }()
	// Wait for the acquirer to actually block (WaitCount is bumped before the
	// goroutine parks), then grant a credit.
	for c.WaitCount() == 0 {
	}
	c.Grant()
	if !<-done {
		t.Fatal("blocked acquire failed after grant")
	}
	if c.WaitCount() != 1 {
		t.Fatalf("wait count: want 1, got %d", c.WaitCount())
	}
}

func TestCreditControllerInstrument(t *testing.T) {
	c := NewCreditController(3)
	r := metrics.NewRegistry()
	c.Instrument(r, "net.edge0")
	c.TryAcquire()
	vals := map[string]int64{}
	r.Each(metrics.Visitor{Gauge: func(name string, v int64) { vals[name] = v }})
	if vals["net.edge0.credits"] != 2 {
		t.Fatalf("credits gauge: want 2, got %d", vals["net.edge0.credits"])
	}
	if vals["net.edge0.wait_count"] != 0 {
		t.Fatalf("wait_count gauge: want 0, got %d", vals["net.edge0.wait_count"])
	}
}

func TestCreditControllerCloseReleasesWaiters(t *testing.T) {
	c := NewCreditController(0)
	var wg sync.WaitGroup
	results := make([]bool, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.Acquire()
		}(i)
	}
	c.Close()
	wg.Wait()
	for i, r := range results {
		if r {
			t.Fatalf("waiter %d acquired after close", i)
		}
	}
}

func TestCreditControllerGrantCapped(t *testing.T) {
	c := NewCreditController(1)
	c.Grant()
	c.Grant()
	if c.Available() != 1 {
		t.Fatalf("credits exceeded max: %d", c.Available())
	}
}

func TestCreditControllerAcquireNImmediate(t *testing.T) {
	c := NewCreditController(4)
	if !c.AcquireN(3) {
		t.Fatal("AcquireN(3) failed with 4 credits available")
	}
	if c.Available() != 1 {
		t.Fatalf("credits after AcquireN(3): want 1, got %d", c.Available())
	}
	if !c.AcquireN(0) {
		t.Fatal("AcquireN(0) must always succeed")
	}
	if c.Available() != 1 {
		t.Fatalf("AcquireN(0) consumed credits: %d", c.Available())
	}
}

func TestCreditControllerAcquireNBlocksUntilGrantN(t *testing.T) {
	c := NewCreditController(4)
	if !c.AcquireN(4) {
		t.Fatal("initial AcquireN(4) failed")
	}
	done := make(chan bool)
	go func() { done <- c.AcquireN(3) }()
	for c.WaitCount() == 0 {
	}
	// A partial refill must not wake the waiter into success: it needs 3.
	c.GrantN(2)
	select {
	case <-done:
		t.Fatal("AcquireN(3) returned after only 2 credits granted")
	default:
	}
	c.GrantN(2)
	if !<-done {
		t.Fatal("blocked AcquireN failed after full grant")
	}
	if c.Available() != 1 {
		t.Fatalf("credits after refill and batch acquire: want 1, got %d", c.Available())
	}
}

func TestCreditControllerAcquireNBeyondBudget(t *testing.T) {
	c := NewCreditController(2)
	if c.AcquireN(3) {
		t.Fatal("AcquireN beyond total budget must fail, not deadlock")
	}
	if c.Available() != 2 {
		t.Fatalf("failed AcquireN consumed credits: %d", c.Available())
	}
}

func TestCreditControllerCloseReleasesAcquireN(t *testing.T) {
	c := NewCreditController(1)
	done := make(chan bool)
	go func() { done <- c.AcquireN(1) }()
	go func() { done <- c.AcquireN(1) }()
	// Two waiters race for one credit; one blocks. Close must release it.
	for c.WaitCount() == 0 {
	}
	c.Close()
	a, b := <-done, <-done
	if a && b {
		t.Fatal("both AcquireN calls succeeded with one credit")
	}
}

func TestCreditControllerGrantNCapped(t *testing.T) {
	c := NewCreditController(3)
	if !c.AcquireN(2) {
		t.Fatal("AcquireN(2) failed")
	}
	c.GrantN(10)
	if c.Available() != 3 {
		t.Fatalf("GrantN exceeded max: %d", c.Available())
	}
	c.GrantN(0)
	c.GrantN(-1)
	if c.Available() != 3 {
		t.Fatalf("no-op GrantN changed credits: %d", c.Available())
	}
}

func TestCreditControllerMixedWaitersAllWake(t *testing.T) {
	c := NewCreditController(4)
	if !c.AcquireN(4) {
		t.Fatal("initial AcquireN(4) failed")
	}
	var wg sync.WaitGroup
	results := make([]bool, 3)
	wg.Add(3)
	go func() { defer wg.Done(); results[0] = c.Acquire() }()
	go func() { defer wg.Done(); results[1] = c.Acquire() }()
	go func() { defer wg.Done(); results[2] = c.AcquireN(2) }()
	for c.WaitCount() < 3 {
	}
	// Refill exactly the total demand in one shot; Broadcast-based wakeup must
	// not strand any waiter regardless of which one the runtime resumes first.
	c.GrantN(4)
	wg.Wait()
	for i, r := range results {
		if !r {
			t.Fatalf("waiter %d starved after full refill", i)
		}
	}
}

func TestScalingPolicyComputesTarget(t *testing.T) {
	p := NewScalingPolicy(0.8, 1, 16)
	// 1000 events/s input, 150/s per instance at 80% target → ceil(8.33)=9.
	if got := p.Decide(1000, 150, 2); got != 9 {
		t.Fatalf("scale-out: want 9, got %d", got)
	}
}

func TestScalingPolicyHysteresisOnScaleDown(t *testing.T) {
	p := NewScalingPolicy(0.8, 1, 16)
	// Scale-down requires persistence.
	if got := p.Decide(100, 150, 8); got != 8 {
		t.Fatal("scaled down immediately")
	}
	p.Decide(100, 150, 8)
	if got := p.Decide(100, 150, 8); got == 8 {
		t.Fatal("did not scale down after hysteresis")
	}
}

func TestScalingPolicyClamps(t *testing.T) {
	p := NewScalingPolicy(0.8, 2, 4)
	if got := p.Decide(1e9, 1, 2); got != 4 {
		t.Fatalf("max clamp: want 4, got %d", got)
	}
}

func TestScalingPolicyHoldsOnNonFiniteRates(t *testing.T) {
	// Warm-up readings are not numbers: an EWMA meter reports NaN before its
	// first window closes, and a busy-time capacity estimate divides by zero
	// (±Inf) until the instance has processed anything. None of these may
	// move the operator — and none may advance the scale-down hysteresis
	// counter either.
	p := NewScalingPolicy(0.8, 1, 16)
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct{ in, per float64 }{
		{nan, 150}, {1000, nan}, {nan, nan},
		{inf, 150}, {1000, inf}, {-inf, 150}, {1000, -inf}, {inf, nan},
	}
	for _, c := range cases {
		if got := p.Decide(c.in, c.per, 5); got != 5 {
			t.Fatalf("Decide(%v, %v, 5) = %d, want hold at 5", c.in, c.per, got)
		}
	}
	// A garbage burst between two valid low readings must not count toward
	// hysteresis: two finite below-target decisions plus a NaN in between is
	// still only two, so the third finite reading triggers the scale-in.
	p2 := NewScalingPolicy(0.8, 1, 16)
	p2.Decide(100, 150, 8)
	p2.Decide(nan, nan, 8)
	p2.Decide(100, 150, 8)
	if got := p2.Decide(100, 150, 8); got == 8 {
		t.Fatal("hysteresis window corrupted by non-finite sample")
	}
}

// TestOverloadSimulationShapes is the E8 shape test: the generational claims
// of §3.3 must hold on the standard workload.
func TestOverloadSimulationShapes(t *testing.T) {
	cfg := SimConfig{
		BaseRate:            100,
		BurstFactor:         2.5,
		BurstStart:          50,
		BurstEnd:            150,
		Ticks:               300,
		CapacityPerInstance: 120,
		QueueBound:          500,
		Instances:           1,
		MaxInstances:        8,
		Seed:                7,
	}
	results := map[Policy]SimResult{}
	for _, r := range CompareOverloadPolicies(cfg) {
		results[r.Policy] = r
	}

	shed := results[PolicyShedRandom]
	sem := results[PolicyShedSemantic]
	bp := results[PolicyBackpressure]
	el := results[PolicyElastic]

	// Shedding loses data; backpressure and elastic lose none.
	if shed.Dropped == 0 || sem.Dropped == 0 {
		t.Fatalf("shedding policies should drop under overload: %v / %v", shed, sem)
	}
	if bp.Dropped != 0 || el.Dropped != 0 {
		t.Fatalf("backpressure/elastic must not drop: %v / %v", bp, el)
	}
	// Everything offered is accounted for.
	for _, r := range []SimResult{shed, sem, bp, el} {
		if r.Delivered+r.Dropped != r.Offered {
			t.Fatalf("%s: delivered+dropped != offered: %v", r.Policy, r)
		}
	}
	// Shedding keeps latency low; backpressure pays with queueing latency.
	if shed.AvgLatency >= bp.AvgLatency {
		t.Fatalf("shedding latency (%v) should be below backpressure latency (%v)",
			shed.AvgLatency, bp.AvgLatency)
	}
	// Elasticity scales out and recovers latency versus fixed-capacity
	// backpressure.
	if el.FinalInstances <= 1 && el.Rescales == 0 {
		t.Fatalf("elastic policy never scaled: %v", el)
	}
	if el.AvgLatency >= bp.AvgLatency {
		t.Fatalf("elastic latency (%v) should beat fixed backpressure (%v)", el.AvgLatency, bp.AvgLatency)
	}
	// Semantic shedding preserves more utility than random shedding for the
	// same overload (it drops the cheapest tuples).
	if sem.UtilityLost >= shed.UtilityLost {
		t.Fatalf("semantic shedding should lose less utility: semantic=%v random=%v",
			sem.UtilityLost, shed.UtilityLost)
	}
}

func TestSimulationDrainsCompletely(t *testing.T) {
	cfg := SimConfig{BaseRate: 50, BurstFactor: 3, BurstStart: 10, BurstEnd: 60,
		Ticks: 100, CapacityPerInstance: 60, Instances: 1, MaxInstances: 4, Seed: 1}
	for _, r := range CompareOverloadPolicies(cfg) {
		if r.Delivered+r.Dropped != r.Offered {
			t.Fatalf("%s leaked events: %+v", r.Policy, r)
		}
	}
}

func drainBuffer(b *BoundedBuffer[int]) []int {
	var out []int
	for {
		v, ok := b.Pop()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

func TestBoundedBufferDropOldest(t *testing.T) {
	b := NewBoundedBuffer[int](3, DropOldest)
	for i := 1; i <= 5; i++ {
		shed, kill := b.Push(i)
		if kill {
			t.Fatal("drop-oldest asked to disconnect")
		}
		if shed != (i > 3) {
			t.Fatalf("push %d: shed=%v", i, shed)
		}
	}
	got := drainBuffer(b)
	if len(got) != 3 || got[0] != 3 || got[1] != 4 || got[2] != 5 {
		t.Fatalf("drop-oldest kept %v, want [3 4 5]", got)
	}
	if b.Shed() != 2 {
		t.Fatalf("shed count %d, want 2", b.Shed())
	}
}

func TestBoundedBufferDropNewest(t *testing.T) {
	b := NewBoundedBuffer[int](3, DropNewest)
	for i := 1; i <= 5; i++ {
		b.Push(i)
	}
	got := drainBuffer(b)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("drop-newest kept %v, want [1 2 3]", got)
	}
	if b.Shed() != 2 {
		t.Fatalf("shed count %d, want 2", b.Shed())
	}
}

func TestBoundedBufferDisconnect(t *testing.T) {
	b := NewBoundedBuffer[int](2, Disconnect)
	b.Push(1)
	b.Push(2)
	shed, kill := b.Push(3)
	if !shed || !kill {
		t.Fatalf("full disconnect buffer: shed=%v kill=%v", shed, kill)
	}
	if got := drainBuffer(b); len(got) != 2 {
		t.Fatalf("disconnect mutated queue: %v", got)
	}
}

func TestBoundedBufferWrapAround(t *testing.T) {
	b := NewBoundedBuffer[int](4, DropOldest)
	next := 0
	for round := 0; round < 7; round++ {
		for i := 0; i < 3; i++ {
			b.Push(next)
			next++
		}
		if v, ok := b.Pop(); !ok || v != next-b.Len()-1 {
			t.Fatalf("round %d: pop %d (len %d)", round, v, b.Len())
		}
	}
}

func TestParseOverflowPolicy(t *testing.T) {
	for s, want := range map[string]OverflowPolicy{
		"": DropOldest, "drop-oldest": DropOldest,
		"drop-newest": DropNewest, "disconnect": Disconnect,
	} {
		got, err := ParseOverflowPolicy(s)
		if err != nil || got != want {
			t.Fatalf("parse %q: %v %v", s, got, err)
		}
		if s != "" && got.String() != s {
			t.Fatalf("roundtrip %q -> %q", s, got.String())
		}
	}
	if _, err := ParseOverflowPolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}
