package load

import "fmt"

// OverflowPolicy decides what a bounded per-consumer queue does when a
// producer outruns its consumer — the serving-layer incarnation of the §3.3
// load-shedding design space ("which tuples to drop") applied per subscriber:
// the job is the producer that must never block, so the overflow cost lands
// on the slow consumer instead.
type OverflowPolicy int

const (
	// DropOldest evicts the oldest queued element to admit the new one —
	// subscribers always converge toward the freshest data (the streaming
	// default).
	DropOldest OverflowPolicy = iota
	// DropNewest refuses the incoming element and keeps the queue as is —
	// preserves a contiguous prefix at the cost of staleness.
	DropNewest
	// Disconnect refuses the element and asks the caller to terminate the
	// consumer — for clients that would rather fail loudly than see gaps.
	Disconnect
)

// String renders the policy in the wire vocabulary.
func (p OverflowPolicy) String() string {
	switch p {
	case DropOldest:
		return "drop-oldest"
	case DropNewest:
		return "drop-newest"
	case Disconnect:
		return "disconnect"
	}
	return fmt.Sprintf("OverflowPolicy(%d)", int(p))
}

// ParseOverflowPolicy parses the wire vocabulary ("drop-oldest",
// "drop-newest", "disconnect"); the empty string selects DropOldest.
func ParseOverflowPolicy(s string) (OverflowPolicy, error) {
	switch s {
	case "", "drop-oldest":
		return DropOldest, nil
	case "drop-newest":
		return DropNewest, nil
	case "disconnect":
		return Disconnect, nil
	}
	return 0, fmt.Errorf("load: unknown overflow policy %q (want drop-oldest, drop-newest or disconnect)", s)
}

// BoundedBuffer is a fixed-capacity FIFO ring applying an OverflowPolicy when
// full. It is not safe for concurrent use; callers serialise access (the
// serve hub holds one per subscription under the subscription's lock).
type BoundedBuffer[T any] struct {
	buf    []T
	head   int // index of the oldest element
	n      int
	policy OverflowPolicy
	shed   int64
}

// NewBoundedBuffer returns an empty ring holding at most capacity elements
// (minimum 1).
func NewBoundedBuffer[T any](capacity int, policy OverflowPolicy) *BoundedBuffer[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &BoundedBuffer[T]{buf: make([]T, capacity), policy: policy}
}

// Push offers one element. When the ring is full the policy decides:
// DropOldest evicts the head and admits v (shed=true); DropNewest refuses v
// (shed=true); Disconnect refuses v and reports kill=true so the caller can
// terminate the consumer. Shed elements are counted (see Shed).
func (b *BoundedBuffer[T]) Push(v T) (shed, kill bool) {
	if b.n < len(b.buf) {
		b.buf[(b.head+b.n)%len(b.buf)] = v
		b.n++
		return false, false
	}
	switch b.policy {
	case DropOldest:
		// A full ring wraps: the slot after the newest element is head, so
		// overwriting head with v and advancing head both evicts the oldest
		// and appends v in one move.
		b.buf[b.head] = v
		b.head = (b.head + 1) % len(b.buf)
		b.shed++
		return true, false
	case DropNewest:
		b.shed++
		return true, false
	default: // Disconnect
		b.shed++
		return true, true
	}
}

// Pop removes and returns the oldest element.
func (b *BoundedBuffer[T]) Pop() (T, bool) {
	var zero T
	if b.n == 0 {
		return zero, false
	}
	v := b.buf[b.head]
	b.buf[b.head] = zero
	b.head = (b.head + 1) % len(b.buf)
	b.n--
	return v, true
}

// Len returns the number of queued elements.
func (b *BoundedBuffer[T]) Len() int { return b.n }

// Cap returns the ring capacity.
func (b *BoundedBuffer[T]) Cap() int { return len(b.buf) }

// Shed returns how many elements the policy has dropped or refused.
func (b *BoundedBuffer[T]) Shed() int64 { return b.shed }

// Policy returns the configured overflow policy.
func (b *BoundedBuffer[T]) Policy() OverflowPolicy { return b.policy }
