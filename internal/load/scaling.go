package load

import "math"

// ScalingPolicy computes the parallelism an operator needs from observed
// rates — the "three steps is all you need" (DS2) model: measure the true
// (useful-work) processing rate per instance and the input rate, and set
//
//	instances = ceil(inputRate / perInstanceRate / targetUtilisation)
//
// in a single step, instead of the stepwise trial-and-error of threshold
// controllers.
type ScalingPolicy struct {
	// TargetUtilisation is the desired busy fraction per instance (0, 1].
	TargetUtilisation float64
	// Min and Max clamp the decision.
	Min, Max int
	// ScaleDownHysteresis requires the computed target to stay below the
	// current parallelism for this many consecutive decisions before scaling
	// in, preventing oscillation.
	ScaleDownHysteresis int

	belowCount int
}

// NewScalingPolicy returns a policy with sensible defaults.
func NewScalingPolicy(targetUtilisation float64, min, max int) *ScalingPolicy {
	if targetUtilisation <= 0 || targetUtilisation > 1 {
		targetUtilisation = 0.8
	}
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	return &ScalingPolicy{
		TargetUtilisation:   targetUtilisation,
		Min:                 min,
		Max:                 max,
		ScaleDownHysteresis: 3,
	}
}

// Decide returns the parallelism for the observed input rate and measured
// per-instance processing capacity, given the current parallelism.
//
// Non-finite rates hold the current parallelism: EWMA meters emit NaN before
// their first sample window closes, and a busy-time-derived capacity divides
// by zero (→ ±Inf) until the instance has done any work. Feeding either into
// the ceil() below would produce a garbage target (int(math.Ceil(NaN)) is
// platform-dependent and typically a huge negative number), so warm-up
// readings must not move the operator.
func (p *ScalingPolicy) Decide(inputRate, perInstanceRate float64, current int) int {
	if math.IsNaN(inputRate) || math.IsInf(inputRate, 0) ||
		math.IsNaN(perInstanceRate) || math.IsInf(perInstanceRate, 0) {
		return current
	}
	if perInstanceRate <= 0 {
		return current
	}
	raw := int(math.Ceil(inputRate / (perInstanceRate * p.TargetUtilisation)))
	if raw < p.Min {
		raw = p.Min
	}
	if raw > p.Max {
		raw = p.Max
	}
	if raw > current {
		p.belowCount = 0
		return raw
	}
	if raw < current {
		p.belowCount++
		if p.belowCount >= p.ScaleDownHysteresis {
			p.belowCount = 0
			return raw
		}
		return current
	}
	p.belowCount = 0
	return current
}
