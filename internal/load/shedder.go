// Package load implements the load-management techniques whose evolution
// §3.3 of the paper traces: 1st-generation load shedding (Aurora/Tatbul et
// al. — dynamically dropping tuples, deciding when, where, how many and
// which), and the 2nd/3rd-generation replacements — credit-based
// backpressure and rate-based elasticity with key-group state migration.
// A deterministic discrete-time simulation (sim.go) reproduces the E8
// comparison of the three policies under overload.
package load

import (
	"math/rand"
	"sort"
	"sync"
)

// Shedder decides, per tuple, whether to drop it under the current shedding
// rate. Implementations correspond to the "which tuples" axis of the load
// shedding design space: random (drop uniformly) vs semantic (drop lowest
// utility first).
type Shedder interface {
	// Keep reports whether a tuple with the given utility survives when the
	// shedder is configured to drop `dropFraction` of the load.
	Keep(utility float64, dropFraction float64) bool
	Name() string
}

// RandomShedder drops tuples uniformly at random.
type RandomShedder struct {
	rng *rand.Rand
}

// NewRandomShedder returns a seeded random shedder.
func NewRandomShedder(seed int64) *RandomShedder {
	return &RandomShedder{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Shedder.
func (s *RandomShedder) Name() string { return "random" }

// Keep implements Shedder.
func (s *RandomShedder) Keep(_ float64, dropFraction float64) bool {
	return s.rng.Float64() >= dropFraction
}

// SemanticShedder drops the lowest-utility tuples first. It learns the
// utility distribution online (a sliding sample) and converts the drop
// fraction into a utility threshold — the QoS-driven "which" decision of the
// Aurora load shedder.
type SemanticShedder struct {
	mu      sync.Mutex
	sample  []float64
	maxSize int
	pos     int
	// sorted is a cached copy of sample, refreshed every refreshEvery
	// observations so threshold lookup is O(1) amortised.
	sorted       []float64
	sinceRefresh int
}

const shedderRefreshEvery = 128

// NewSemanticShedder returns a shedder estimating the utility distribution
// from a sliding sample of the given size.
func NewSemanticShedder(sampleSize int) *SemanticShedder {
	if sampleSize <= 0 {
		sampleSize = 1024
	}
	return &SemanticShedder{maxSize: sampleSize}
}

// Name implements Shedder.
func (s *SemanticShedder) Name() string { return "semantic" }

// Keep implements Shedder.
func (s *SemanticShedder) Keep(utility float64, dropFraction float64) bool {
	s.mu.Lock()
	if len(s.sample) < s.maxSize {
		s.sample = append(s.sample, utility)
	} else {
		s.sample[s.pos] = utility
		s.pos = (s.pos + 1) % s.maxSize
	}
	s.sinceRefresh++
	if s.sorted == nil || s.sinceRefresh >= shedderRefreshEvery {
		s.sorted = append(s.sorted[:0], s.sample...)
		sort.Float64s(s.sorted)
		s.sinceRefresh = 0
	}
	threshold := s.thresholdLocked(dropFraction)
	s.mu.Unlock()
	return utility >= threshold
}

// thresholdLocked returns the utility quantile below which tuples are shed.
func (s *SemanticShedder) thresholdLocked(dropFraction float64) float64 {
	if dropFraction <= 0 || len(s.sorted) == 0 {
		return -1e308
	}
	if dropFraction >= 1 {
		return 1e308
	}
	idx := int(dropFraction * float64(len(s.sorted)))
	if idx >= len(s.sorted) {
		idx = len(s.sorted) - 1
	}
	return s.sorted[idx]
}

// SheddingController implements the when/where/how-many decisions: it
// monitors the input rate against the system capacity and computes the drop
// fraction needed to bring load below capacity, with headroom.
type SheddingController struct {
	// Capacity is the sustainable processing rate (tuples per tick).
	Capacity float64
	// Headroom is the target utilisation (e.g. 0.9 sheds down to 90% of
	// capacity).
	Headroom float64
	est      *RateEstimator
}

// NewSheddingController returns a controller for the given capacity.
func NewSheddingController(capacity, headroom float64) *SheddingController {
	if headroom <= 0 || headroom > 1 {
		headroom = 0.95
	}
	return &SheddingController{Capacity: capacity, Headroom: headroom, est: NewRateEstimator(0.3)}
}

// ObserveArrivals records the arrivals of one tick and returns the drop
// fraction to apply next tick ("when": whenever estimated rate exceeds
// capacity; "how many": the excess fraction).
func (c *SheddingController) ObserveArrivals(n float64) float64 {
	rate := c.est.Observe(n)
	target := c.Capacity * c.Headroom
	if rate <= target {
		return 0
	}
	return 1 - target/rate
}

// RateEstimator is an exponentially weighted moving average of per-tick
// counts.
type RateEstimator struct {
	alpha   float64
	rate    float64
	started bool
}

// NewRateEstimator returns an EWMA estimator with the given smoothing factor
// in (0, 1].
func NewRateEstimator(alpha float64) *RateEstimator {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	return &RateEstimator{alpha: alpha}
}

// Observe folds one tick's count and returns the smoothed rate.
func (e *RateEstimator) Observe(n float64) float64 {
	if !e.started {
		e.rate = n
		e.started = true
		return e.rate
	}
	e.rate = e.alpha*n + (1-e.alpha)*e.rate
	return e.rate
}

// Rate returns the current estimate.
func (e *RateEstimator) Rate() float64 { return e.rate }
