package load

import (
	"fmt"

	"repro/internal/metrics"
)

// Policy selects the overload-handling strategy for the simulation.
type Policy int

// Overload policies, in historical order (§3.3).
const (
	// PolicyShedRandom is 1st-gen load shedding with random victim choice.
	PolicyShedRandom Policy = iota
	// PolicyShedSemantic is 1st-gen shedding dropping lowest utility first.
	PolicyShedSemantic
	// PolicyBackpressure is 2nd-gen flow control: bounded buffers, the
	// source is throttled, nothing is dropped.
	PolicyBackpressure
	// PolicyElastic is 2nd/3rd-gen: backpressure plus rate-based scale-out
	// with a migration pause.
	PolicyElastic
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyShedRandom:
		return "shed-random"
	case PolicyShedSemantic:
		return "shed-semantic"
	case PolicyBackpressure:
		return "backpressure"
	case PolicyElastic:
		return "elastic"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// SimConfig parameterises the overload simulation. All quantities are in
// abstract ticks and events; determinism makes the E8 experiment exactly
// reproducible.
type SimConfig struct {
	// BaseRate is the steady arrival rate (events/tick).
	BaseRate int
	// BurstFactor multiplies the rate during the burst window.
	BurstFactor float64
	// BurstStart and BurstEnd delimit the burst (ticks).
	BurstStart, BurstEnd int64
	// Ticks is the workload duration; the simulation then drains.
	Ticks int64
	// CapacityPerInstance is the per-tick processing rate of one instance.
	CapacityPerInstance int
	// QueueBound bounds the operator input queue for
	// backpressure/elastic policies (shedding queues are unbounded —
	// early systems shed because they could not push back).
	QueueBound int
	// Instances is the initial operator parallelism.
	Instances int
	// MaxInstances caps elastic scale-out.
	MaxInstances int
	// DecideEvery is the elastic controller period (ticks).
	DecideEvery int64
	// MigrationPause is the processing stall during a rescale (ticks) —
	// the cost of moving key groups.
	MigrationPause int64
	// Seed drives the shedders and utility generator.
	Seed int64
}

func (c SimConfig) withDefaults() SimConfig {
	if c.BaseRate <= 0 {
		c.BaseRate = 100
	}
	if c.BurstFactor <= 0 {
		c.BurstFactor = 2
	}
	if c.Ticks <= 0 {
		c.Ticks = 300
	}
	if c.CapacityPerInstance <= 0 {
		c.CapacityPerInstance = 120
	}
	if c.QueueBound <= 0 {
		c.QueueBound = 1000
	}
	if c.Instances <= 0 {
		c.Instances = 1
	}
	if c.MaxInstances < c.Instances {
		c.MaxInstances = c.Instances * 8
	}
	if c.DecideEvery <= 0 {
		c.DecideEvery = 10
	}
	if c.MigrationPause <= 0 {
		c.MigrationPause = 5
	}
	return c
}

// SimResult aggregates one policy's behaviour under the workload.
type SimResult struct {
	Policy         Policy
	Offered        int64 // events generated
	Delivered      int64 // events fully processed
	Dropped        int64 // events shed
	UtilityLost    float64
	AvgLatency     float64 // ticks spent queued, averaged
	P99Latency     int64
	MaxQueue       int
	MaxBacklog     int // source-side throttled backlog (backpressure)
	FinalInstances int
	Rescales       int
	DrainTicks     int64 // ticks past the workload needed to drain
}

// String renders one result row.
func (r SimResult) String() string {
	return fmt.Sprintf("%-14s offered=%-7d delivered=%-7d dropped=%-6d lossPct=%5.1f avgLat=%7.2f p99Lat=%-5d maxQ=%-6d instances=%d rescales=%d",
		r.Policy, r.Offered, r.Delivered, r.Dropped,
		100*float64(r.Dropped)/float64(max64(r.Offered, 1)),
		r.AvgLatency, r.P99Latency, r.MaxQueue, r.FinalInstances, r.Rescales)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

type simEvent struct {
	arrived int64
	utility float64
}

// RunOverloadSim executes the discrete-time overload simulation for one
// policy and returns its metrics. The same config drives all policies in E8
// so the comparison is apples to apples.
func RunOverloadSim(policy Policy, cfg SimConfig) SimResult {
	cfg = cfg.withDefaults()
	res := SimResult{Policy: policy, FinalInstances: cfg.Instances}
	lat := metrics.NewHistogram()

	var queue []simEvent   // operator input queue
	var backlog []simEvent // source-side throttled events (backpressure)
	instances := cfg.Instances

	var shedder Shedder
	switch policy {
	case PolicyShedRandom:
		shedder = NewRandomShedder(cfg.Seed + 1)
	case PolicyShedSemantic:
		shedder = NewSemanticShedder(2048)
	}
	shedCtl := NewSheddingController(float64(cfg.CapacityPerInstance*instances), 0.95)
	arrivalEst := NewRateEstimator(0.3)
	scaler := NewScalingPolicy(0.8, 1, cfg.MaxInstances)
	var migratePauseLeft int64
	var totalLatency float64

	// Deterministic utility sequence: utilities cycle 0..99.
	utilOf := func(i int64) float64 { return float64(i % 100) }

	var produced int64
	tick := int64(0)
	for {
		workloadActive := tick < cfg.Ticks
		// 1. Arrivals.
		var arrivals int
		if workloadActive {
			arrivals = cfg.BaseRate
			if tick >= cfg.BurstStart && tick < cfg.BurstEnd {
				arrivals = int(float64(cfg.BaseRate) * cfg.BurstFactor)
			}
		}
		dropFraction := shedCtl.ObserveArrivals(float64(arrivals))
		arrivalEst.Observe(float64(arrivals))

		for i := 0; i < arrivals; i++ {
			ev := simEvent{arrived: tick, utility: utilOf(produced)}
			produced++
			res.Offered++
			switch policy {
			case PolicyShedRandom, PolicyShedSemantic:
				if !shedder.Keep(ev.utility, dropFraction) {
					res.Dropped++
					res.UtilityLost += ev.utility
					continue
				}
				queue = append(queue, ev)
			default:
				// Backpressure/elastic: bounded queue, excess is throttled
				// at the source (replayable input, nothing lost).
				backlog = append(backlog, ev)
			}
		}

		// 2. Admit from backlog into the bounded queue.
		if policy == PolicyBackpressure || policy == PolicyElastic {
			free := cfg.QueueBound - len(queue)
			n := len(backlog)
			if n > free {
				n = free
			}
			if n > 0 {
				queue = append(queue, backlog[:n]...)
				backlog = backlog[n:]
			}
		}

		// 3. Elastic control loop.
		if policy == PolicyElastic && tick > 0 && tick%cfg.DecideEvery == 0 && migratePauseLeft == 0 {
			target := scaler.Decide(arrivalEst.Rate(), float64(cfg.CapacityPerInstance), instances)
			if target != instances {
				instances = target
				res.Rescales++
				migratePauseLeft = cfg.MigrationPause
			}
		}

		// 4. Processing.
		capacity := cfg.CapacityPerInstance * instances
		if migratePauseLeft > 0 {
			migratePauseLeft--
			capacity = 0
		}
		n := len(queue)
		if n > capacity {
			n = capacity
		}
		for i := 0; i < n; i++ {
			d := tick - queue[i].arrived
			lat.Observe(d)
			totalLatency += float64(d)
			res.Delivered++
		}
		queue = queue[n:]

		if len(queue) > res.MaxQueue {
			res.MaxQueue = len(queue)
		}
		if len(backlog) > res.MaxBacklog {
			res.MaxBacklog = len(backlog)
		}

		tick++
		if !workloadActive && len(queue) == 0 && len(backlog) == 0 {
			break
		}
		if tick > cfg.Ticks*100 {
			break // safety: pathological configuration cannot drain
		}
	}

	res.DrainTicks = tick - cfg.Ticks
	if res.DrainTicks < 0 {
		res.DrainTicks = 0
	}
	if res.Delivered > 0 {
		res.AvgLatency = totalLatency / float64(res.Delivered)
	}
	res.P99Latency = lat.Quantile(0.99)
	res.FinalInstances = instances
	return res
}

// CompareOverloadPolicies runs every policy on the same workload (E8).
func CompareOverloadPolicies(cfg SimConfig) []SimResult {
	policies := []Policy{PolicyShedRandom, PolicyShedSemantic, PolicyBackpressure, PolicyElastic}
	out := make([]SimResult, 0, len(policies))
	for _, p := range policies {
		out = append(out, RunOverloadSim(p, cfg))
	}
	return out
}
