package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

func openTest(t *testing.T, opts Options) *Tree {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	tree, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestPutGetDelete(t *testing.T) {
	tr := openTest(t, Options{})
	if err := tr.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, found, err := tr.Get([]byte("a"))
	if err != nil || !found || string(v) != "1" {
		t.Fatalf("get: %q %v %v", v, found, err)
	}
	if err := tr.Delete([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := tr.Get([]byte("a")); found {
		t.Fatal("deleted key still found")
	}
	if _, found, _ := tr.Get([]byte("missing")); found {
		t.Fatal("phantom key")
	}
}

func TestFlushAndReadFromSSTable(t *testing.T) {
	tr := openTest(t, Options{MemtableBytes: 1 << 30})
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("key-%05d", i))
		if err := tr.Put(k, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if tr.FlushCount != 1 {
		t.Fatalf("want 1 flush, got %d", tr.FlushCount)
	}
	for i := 0; i < 1000; i += 37 {
		k := []byte(fmt.Sprintf("key-%05d", i))
		v, found, err := tr.Get(k)
		if err != nil || !found {
			t.Fatalf("get %s after flush: found=%v err=%v", k, found, err)
		}
		if string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("wrong value for %s: %s", k, v)
		}
	}
}

func TestCompactionPreservesData(t *testing.T) {
	tr := openTest(t, Options{MemtableBytes: 2048, CompactionFanIn: 3})
	want := map[string]string{}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("k%04d", rng.Intn(500))
		v := fmt.Sprintf("v%d", i)
		want[k] = v
		if err := tr.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.CompactCount == 0 {
		t.Fatal("expected compactions to run")
	}
	for k, v := range want {
		got, found, err := tr.Get([]byte(k))
		if err != nil || !found || string(got) != v {
			t.Fatalf("after compaction %s: got %q found=%v err=%v want %q", k, got, found, err, v)
		}
	}
}

func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	tr := openTest(t, Options{Dir: dir, MemtableBytes: 1 << 30})
	for i := 0; i < 100; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	tr.Delete([]byte("k5"))
	// Simulate a crash: reopen without Close (no flush).
	tr2 := openTest(t, Options{Dir: dir})
	v, found, err := tr2.Get([]byte("k42"))
	if err != nil || !found || string(v) != "v42" {
		t.Fatalf("WAL recovery lost k42: %q %v %v", v, found, err)
	}
	if _, found, _ := tr2.Get([]byte("k5")); found {
		t.Fatal("WAL recovery resurrected deleted key")
	}
}

func TestReopenAfterClose(t *testing.T) {
	dir := t.TempDir()
	tr := openTest(t, Options{Dir: dir, MemtableBytes: 4096})
	for i := 0; i < 500; i++ {
		tr.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("x"))
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	tr2 := openTest(t, Options{Dir: dir})
	count := 0
	err := tr2.Scan(nil, nil, func(k, v []byte) bool {
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 500 {
		t.Fatalf("reopen: want 500 keys, got %d", count)
	}
}

func TestScanRangeAndOrder(t *testing.T) {
	tr := openTest(t, Options{MemtableBytes: 1024})
	for i := 0; i < 200; i++ {
		tr.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	var keys [][]byte
	err := tr.Scan([]byte("k050"), []byte("k100"), func(k, v []byte) bool {
		keys = append(keys, append([]byte(nil), k...))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 50 {
		t.Fatalf("range scan: want 50, got %d", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) >= 0 {
			t.Fatal("scan not in key order")
		}
	}
}

// TestTreeMatchesModelMap is the property test: a long random op sequence
// against the tree and a plain map must agree, across flushes & compactions.
func TestTreeMatchesModelMap(t *testing.T) {
	tr := openTest(t, Options{MemtableBytes: 512, CompactionFanIn: 3, Seed: 9})
	model := map[string]string{}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("k%03d", rng.Intn(300))
		switch rng.Intn(3) {
		case 0, 1:
			v := fmt.Sprintf("v%d", i)
			model[k] = v
			if err := tr.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
		case 2:
			delete(model, k)
			if err := tr.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
		}
		if i%500 == 0 {
			for mk, mv := range model {
				v, found, err := tr.Get([]byte(mk))
				if err != nil {
					t.Fatal(err)
				}
				if !found || string(v) != mv {
					t.Fatalf("iter %d: model mismatch on %s: tree=%q/%v model=%q", i, mk, v, found, mv)
				}
			}
		}
	}
	// Final full comparison via scan.
	got := map[string]string{}
	tr.Scan(nil, nil, func(k, v []byte) bool {
		got[string(k)] = string(v)
		return true
	})
	if len(got) != len(model) {
		t.Fatalf("live key counts differ: tree=%d model=%d", len(got), len(model))
	}
	for k, v := range model {
		if got[k] != v {
			t.Fatalf("final mismatch on %s: %q vs %q", k, got[k], v)
		}
	}
}

func TestManifestListsTables(t *testing.T) {
	tr := openTest(t, Options{MemtableBytes: 1 << 30})
	tr.Put([]byte("a"), []byte("1"))
	if n := len(tr.Manifest()); n != 0 {
		t.Fatalf("manifest before flush: want 0 tables, got %d", n)
	}
	tr.Flush()
	if n := len(tr.Manifest()); n != 1 {
		t.Fatalf("manifest after flush: want 1 table, got %d", n)
	}
	st := tr.Stats()
	if st.DiskBytes == 0 || len(st.Levels) == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open without dir must fail")
	}
}

func TestLargeValues(t *testing.T) {
	tr := openTest(t, Options{MemtableBytes: 1 << 20})
	big := bytes.Repeat([]byte("x"), 100_000)
	if err := tr.Put([]byte("big"), big); err != nil {
		t.Fatal(err)
	}
	tr.Flush()
	v, found, err := tr.Get([]byte("big"))
	if err != nil || !found || !bytes.Equal(v, big) {
		t.Fatalf("large value roundtrip failed: len=%d found=%v err=%v", len(v), found, err)
	}
}

func TestConcurrentReadersAndWriter(t *testing.T) {
	// One writer, several readers: the mutex discipline must keep reads
	// consistent across flushes and compactions.
	tr := openTest(t, Options{MemtableBytes: 2048, CompactionFanIn: 3})
	done := make(chan struct{})
	var writerErr error
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			k := []byte(fmt.Sprintf("k%03d", i%100))
			if err := tr.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
				writerErr = err
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			// Bounded read count with scheduling yields so the writer is not
			// starved on single-core runners.
			for i := 0; i < 500; i++ {
				k := []byte(fmt.Sprintf("k%03d", rng.Intn(100)))
				if v, found, err := tr.Get(k); err != nil {
					t.Errorf("get: %v", err)
					return
				} else if found && len(v) == 0 {
					t.Error("found key with empty value")
					return
				}
				runtime.Gosched()
			}
		}(int64(r))
	}
	<-done
	wg.Wait()
	if writerErr != nil {
		t.Fatal(writerErr)
	}
}
