// Package lsm implements a log-structured merge tree: a write-ahead log, an
// in-memory skiplist memtable, immutable sorted-string tables (SSTables) with
// bloom filters and sparse indexes, and size-tiered compaction. It is the
// disk-backed state backend of §3.1 ("file systems, log-structured merge
// trees and related data structures") and the substrate for incremental
// checkpoints (E6).
package lsm

import (
	"bytes"
	"math/rand"
)

const maxHeight = 12

// skiplist is a single-writer, multi-reader-unsafe sorted map used as the
// memtable. Concurrency control lives in Tree, which guards the active
// memtable with a mutex.
type skiplist struct {
	head   *slNode
	height int
	rng    *rand.Rand
	size   int // approximate bytes
	count  int
}

type slNode struct {
	key       []byte
	value     []byte
	tombstone bool
	next      [maxHeight]*slNode
}

func newSkiplist(seed int64) *skiplist {
	return &skiplist{
		head:   &slNode{},
		height: 1,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

func (s *skiplist) randomHeight() int {
	h := 1
	for h < maxHeight && s.rng.Intn(4) == 0 {
		h++
	}
	return h
}

// put inserts or overwrites key. A tombstone records a deletion.
func (s *skiplist) put(key, value []byte, tombstone bool) {
	var update [maxHeight]*slNode
	x := s.head
	for i := s.height - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
		update[i] = x
	}
	if n := x.next[0]; n != nil && bytes.Equal(n.key, key) {
		s.size += len(value) - len(n.value)
		n.value = value
		n.tombstone = tombstone
		return
	}
	h := s.randomHeight()
	if h > s.height {
		for i := s.height; i < h; i++ {
			update[i] = s.head
		}
		s.height = h
	}
	n := &slNode{key: key, value: value, tombstone: tombstone}
	for i := 0; i < h; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	s.size += len(key) + len(value) + 16
	s.count++
}

// get returns the value for key; found reports presence (including
// tombstones, which return found=true, deleted=true).
func (s *skiplist) get(key []byte) (value []byte, deleted, found bool) {
	x := s.head
	for i := s.height - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
	}
	if n := x.next[0]; n != nil && bytes.Equal(n.key, key) {
		return n.value, n.tombstone, true
	}
	return nil, false, false
}

// entries returns all entries in key order.
func (s *skiplist) entries() []entry {
	out := make([]entry, 0, s.count)
	for n := s.head.next[0]; n != nil; n = n.next[0] {
		out = append(out, entry{key: n.key, value: n.value, tombstone: n.tombstone})
	}
	return out
}

type entry struct {
	key       []byte
	value     []byte
	tombstone bool
}
