package lsm

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
)

// SSTable file format (all integers little-endian):
//
//	magic         uint32
//	entryCount    uint32
//	entries       entryCount × { keyLen u32, key, valLen u32, val, tombstone u8 }
//	bloomLen      uint32
//	bloom         bloomLen bytes (bit array)
//	bloomHashes   uint32
//	indexCount    uint32
//	index         indexCount × { keyLen u32, key, offset u64 }  (every Nth key)
//	footer        { indexOffset u64, crc u32 }
//
// Tables are immutable once written; reads use the bloom filter to skip
// tables that cannot contain the key, then binary-search the sparse index and
// scan at most indexInterval entries.

const (
	ssMagic       = 0x4C534D31 // "LSM1"
	indexInterval = 16
)

type sstable struct {
	path    string
	minKey  []byte
	maxKey  []byte
	count   int
	size    int64
	bloom   []byte
	hashes  uint32
	index   []indexEntry
	dataOff int64
}

type indexEntry struct {
	key    []byte
	offset int64
}

// writeSSTable persists sorted entries to path and returns the table handle.
func writeSSTable(path string, entries []entry) (*sstable, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("lsm: refusing to write empty sstable %s", path)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("lsm: create sstable: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)

	// Bloom filter sized at ~10 bits/key, 7 hashes. The bit count must equal
	// len(bloom)*8 exactly — mayContain derives the modulus from the byte
	// slice length, so any slack bits would shift every index.
	bloomBits := len(entries) * 10
	if bloomBits < 64 {
		bloomBits = 64
	}
	bloom := make([]byte, (bloomBits+7)/8)
	bloomBits = len(bloom) * 8
	const bloomHashes = 7
	addBloom := func(key []byte) {
		h1 := crc32.ChecksumIEEE(key)
		h2 := crc32.Checksum(key, crc32.MakeTable(crc32.Castagnoli))
		for i := uint32(0); i < bloomHashes; i++ {
			idx := (h1 + i*h2) % uint32(bloomBits)
			bloom[idx/8] |= 1 << (idx % 8)
		}
	}

	var buf bytes.Buffer
	writeU32 := func(b *bytes.Buffer, v uint32) {
		var tmp [4]byte
		binary.LittleEndian.PutUint32(tmp[:], v)
		b.Write(tmp[:])
	}
	writeU64 := func(b *bytes.Buffer, v uint64) {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], v)
		b.Write(tmp[:])
	}

	writeU32(&buf, ssMagic)
	writeU32(&buf, uint32(len(entries)))
	t := &sstable{path: path, count: len(entries)}
	var index []indexEntry
	for i, e := range entries {
		if i%indexInterval == 0 {
			index = append(index, indexEntry{key: e.key, offset: int64(buf.Len())})
		}
		writeU32(&buf, uint32(len(e.key)))
		buf.Write(e.key)
		writeU32(&buf, uint32(len(e.value)))
		buf.Write(e.value)
		if e.tombstone {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
		addBloom(e.key)
	}
	writeU32(&buf, uint32(len(bloom)))
	buf.Write(bloom)
	writeU32(&buf, bloomHashes)
	indexOffset := int64(buf.Len())
	writeU32(&buf, uint32(len(index)))
	for _, ie := range index {
		writeU32(&buf, uint32(len(ie.key)))
		buf.Write(ie.key)
		writeU64(&buf, uint64(ie.offset))
	}
	writeU64(&buf, uint64(indexOffset))
	crc := crc32.ChecksumIEEE(buf.Bytes())
	writeU32(&buf, crc)

	if _, err := w.Write(buf.Bytes()); err != nil {
		return nil, fmt.Errorf("lsm: write sstable: %w", err)
	}
	if err := w.Flush(); err != nil {
		return nil, fmt.Errorf("lsm: flush sstable: %w", err)
	}
	if err := f.Sync(); err != nil {
		return nil, fmt.Errorf("lsm: sync sstable: %w", err)
	}
	t.minKey = append([]byte(nil), entries[0].key...)
	t.maxKey = append([]byte(nil), entries[len(entries)-1].key...)
	t.size = int64(buf.Len())
	t.bloom = bloom
	t.hashes = bloomHashes
	t.index = index
	return t, nil
}

// openSSTable loads the metadata (bloom + index) of an existing table file.
func openSSTable(path string) (*sstable, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lsm: open sstable: %w", err)
	}
	if len(data) < 20 {
		return nil, fmt.Errorf("lsm: sstable %s truncated", path)
	}
	crcStored := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(data[:len(data)-4]) != crcStored {
		return nil, fmt.Errorf("lsm: sstable %s checksum mismatch", path)
	}
	if binary.LittleEndian.Uint32(data[0:4]) != ssMagic {
		return nil, fmt.Errorf("lsm: sstable %s bad magic", path)
	}
	entries, err := readAllEntries(data)
	if err != nil {
		return nil, err
	}
	t := &sstable{path: path, count: len(entries), size: int64(len(data))}
	if len(entries) > 0 {
		t.minKey = entries[0].key
		t.maxKey = entries[len(entries)-1].key
	}
	// Reconstruct bloom/index from the file tail.
	pos := 8
	for i := 0; i < len(entries); i++ {
		kl := int(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4 + kl
		vl := int(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4 + vl + 1
	}
	bl := int(binary.LittleEndian.Uint32(data[pos:]))
	pos += 4
	t.bloom = append([]byte(nil), data[pos:pos+bl]...)
	pos += bl
	t.hashes = binary.LittleEndian.Uint32(data[pos:])
	pos += 4
	ic := int(binary.LittleEndian.Uint32(data[pos:]))
	pos += 4
	for i := 0; i < ic; i++ {
		kl := int(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4
		key := append([]byte(nil), data[pos:pos+kl]...)
		pos += kl
		off := int64(binary.LittleEndian.Uint64(data[pos:]))
		pos += 8
		t.index = append(t.index, indexEntry{key: key, offset: off})
	}
	return t, nil
}

// readAllEntries decodes every entry in an sstable byte image.
func readAllEntries(data []byte) ([]entry, error) {
	count := int(binary.LittleEndian.Uint32(data[4:8]))
	pos := 8
	out := make([]entry, 0, count)
	for i := 0; i < count; i++ {
		if pos+4 > len(data) {
			return nil, fmt.Errorf("lsm: sstable truncated at entry %d", i)
		}
		kl := int(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4
		key := append([]byte(nil), data[pos:pos+kl]...)
		pos += kl
		vl := int(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4
		val := append([]byte(nil), data[pos:pos+vl]...)
		pos += vl
		tomb := data[pos] == 1
		pos++
		out = append(out, entry{key: key, value: val, tombstone: tomb})
	}
	return out, nil
}

// mayContain consults the bloom filter.
func (t *sstable) mayContain(key []byte) bool {
	if len(t.bloom) == 0 {
		return true
	}
	bits := uint32(len(t.bloom) * 8)
	h1 := crc32.ChecksumIEEE(key)
	h2 := crc32.Checksum(key, crc32.MakeTable(crc32.Castagnoli))
	for i := uint32(0); i < t.hashes; i++ {
		idx := (h1 + i*h2) % bits
		if t.bloom[idx/8]&(1<<(idx%8)) == 0 {
			return false
		}
	}
	return true
}

// get looks up key in the table by seeking via the sparse index.
func (t *sstable) get(key []byte) (value []byte, deleted, found bool, err error) {
	if bytes.Compare(key, t.minKey) < 0 || bytes.Compare(key, t.maxKey) > 0 {
		return nil, false, false, nil
	}
	if !t.mayContain(key) {
		return nil, false, false, nil
	}
	data, err := os.ReadFile(t.path)
	if err != nil {
		return nil, false, false, fmt.Errorf("lsm: read sstable: %w", err)
	}
	// Find the index block whose key is <= target.
	i := sort.Search(len(t.index), func(i int) bool {
		return bytes.Compare(t.index[i].key, key) > 0
	}) - 1
	if i < 0 {
		return nil, false, false, nil
	}
	pos := int(t.index[i].offset)
	// Scan at most to the next index block, clamped by the number of entries
	// actually remaining — running further would misread the bloom/index
	// sections as entries.
	limit := indexInterval
	if rem := t.count - i*indexInterval; rem < limit {
		limit = rem
	}
	for scanned := 0; scanned < limit && pos+4 <= len(data); scanned++ {
		kl := int(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4
		k := data[pos : pos+kl]
		pos += kl
		vl := int(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4
		v := data[pos : pos+vl]
		pos += vl
		tomb := data[pos] == 1
		pos++
		c := bytes.Compare(k, key)
		if c == 0 {
			return append([]byte(nil), v...), tomb, true, nil
		}
		if c > 0 {
			return nil, false, false, nil
		}
	}
	return nil, false, false, nil
}

// allEntries reads every entry from disk (used by compaction and scans).
func (t *sstable) allEntries() ([]entry, error) {
	data, err := os.ReadFile(t.path)
	if err != nil {
		return nil, fmt.Errorf("lsm: read sstable: %w", err)
	}
	return readAllEntries(data)
}
