package lsm

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Options configures a Tree.
type Options struct {
	// Dir is the directory holding the WAL and SSTable files.
	Dir string
	// MemtableBytes is the flush threshold for the in-memory table.
	// Defaults to 1 MiB.
	MemtableBytes int
	// CompactionFanIn is the number of tables in a level that triggers
	// compaction into the next level. Defaults to 4.
	CompactionFanIn int
	// DisableWAL skips write-ahead logging (used when durability is provided
	// by an outer mechanism such as engine checkpoints).
	DisableWAL bool
	// Seed seeds the skiplist height RNG for determinism in tests.
	Seed int64
}

// Tree is a log-structured merge tree supporting Put/Get/Delete/Scan,
// crash recovery from the WAL, and snapshot-style file manifests for
// incremental checkpoints.
type Tree struct {
	mu     sync.RWMutex
	opts   Options
	mem    *skiplist
	wal    *wal
	levels [][]*sstable // levels[0] newest first; deeper levels older
	nextID int
	// flushedTables counts tables ever written; compactions counts merges.
	FlushCount   int
	CompactCount int
}

// Open creates or reopens a tree in opts.Dir, replaying the WAL if present.
func Open(opts Options) (*Tree, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("lsm: Options.Dir is required")
	}
	if opts.MemtableBytes <= 0 {
		opts.MemtableBytes = 1 << 20
	}
	if opts.CompactionFanIn <= 0 {
		opts.CompactionFanIn = 4
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("lsm: create dir: %w", err)
	}
	t := &Tree{opts: opts, mem: newSkiplist(opts.Seed)}

	if err := t.loadTablesLocked(); err != nil {
		return nil, err
	}

	if !opts.DisableWAL {
		w, records, err := openWAL(filepath.Join(opts.Dir, "wal.log"))
		if err != nil {
			return nil, err
		}
		t.wal = w
		for _, r := range records {
			t.mem.put(r.key, r.value, r.tombstone)
		}
	}
	return t, nil
}

// loadTablesLocked scans opts.Dir for SSTables (named tbl-<level>-<id>.sst)
// and rebuilds the level structure from scratch.
func (t *Tree) loadTablesLocked() error {
	t.levels = nil
	names, err := filepath.Glob(filepath.Join(t.opts.Dir, "tbl-*.sst"))
	if err != nil {
		return fmt.Errorf("lsm: glob tables: %w", err)
	}
	sort.Strings(names)
	for _, name := range names {
		var level, id int
		base := filepath.Base(name)
		if _, err := fmt.Sscanf(base, "tbl-%d-%d.sst", &level, &id); err != nil {
			continue
		}
		tbl, err := openSSTable(name)
		if err != nil {
			return err
		}
		for len(t.levels) <= level {
			t.levels = append(t.levels, nil)
		}
		t.levels[level] = append(t.levels[level], tbl)
		if id >= t.nextID {
			t.nextID = id + 1
		}
	}
	// Within each level, newest (highest id) first.
	for _, lvl := range t.levels {
		sort.Slice(lvl, func(i, j int) bool { return lvl[i].path > lvl[j].path })
	}
	return nil
}

// syncDir fsyncs a directory so file creations/removals inside it survive a
// power failure. Checkpoint manifests reference tables by name; a table that
// exists only in the directory's in-memory dentry cache is not durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("lsm: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("lsm: sync dir: %w", err)
	}
	return nil
}

// Put stores key -> value.
func (t *Tree) Put(key, value []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.wal != nil {
		if err := t.wal.append(key, value, false); err != nil {
			return err
		}
	}
	t.mem.put(append([]byte(nil), key...), append([]byte(nil), value...), false)
	return t.maybeFlushLocked()
}

// Delete removes key (via tombstone).
func (t *Tree) Delete(key []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.wal != nil {
		if err := t.wal.append(key, nil, true); err != nil {
			return err
		}
	}
	t.mem.put(append([]byte(nil), key...), nil, true)
	return t.maybeFlushLocked()
}

// Get returns the value for key, or found=false.
func (t *Tree) Get(key []byte) (value []byte, found bool, err error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if v, del, ok := t.mem.get(key); ok {
		if del {
			return nil, false, nil
		}
		return v, true, nil
	}
	for _, lvl := range t.levels {
		for _, tbl := range lvl {
			v, del, ok, err := tbl.get(key)
			if err != nil {
				return nil, false, err
			}
			if ok {
				if del {
					return nil, false, nil
				}
				return v, true, nil
			}
		}
	}
	return nil, false, nil
}

// Scan calls fn for every live key in [start, end) in key order. A nil end
// means unbounded. fn returning false stops the scan.
func (t *Tree) Scan(start, end []byte, fn func(key, value []byte) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	merged, err := t.mergedEntriesLocked()
	if err != nil {
		return err
	}
	for _, e := range merged {
		if e.tombstone {
			continue
		}
		if start != nil && bytes.Compare(e.key, start) < 0 {
			continue
		}
		if end != nil && bytes.Compare(e.key, end) >= 0 {
			break
		}
		if !fn(e.key, e.value) {
			return nil
		}
	}
	return nil
}

// mergedEntriesLocked merges memtable + all levels, newest version winning.
func (t *Tree) mergedEntriesLocked() ([]entry, error) {
	// Gather sources newest-first: memtable, L0 newest..oldest, L1, ...
	sources := [][]entry{t.mem.entries()}
	for _, lvl := range t.levels {
		for _, tbl := range lvl {
			es, err := tbl.allEntries()
			if err != nil {
				return nil, err
			}
			sources = append(sources, es)
		}
	}
	return mergeEntrySets(sources), nil
}

// mergeEntrySets merges sorted entry sets; earlier sets shadow later ones.
func mergeEntrySets(sources [][]entry) []entry {
	seen := make(map[string]struct{})
	var out []entry
	for _, src := range sources {
		for _, e := range src {
			k := string(e.key)
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i].key, out[j].key) < 0 })
	return out
}

func (t *Tree) maybeFlushLocked() error {
	if t.mem.size < t.opts.MemtableBytes {
		return nil
	}
	return t.flushLocked()
}

// Flush forces the memtable to disk as a new L0 table.
func (t *Tree) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flushLocked()
}

func (t *Tree) flushLocked() error {
	entries := t.mem.entries()
	if len(entries) == 0 {
		return nil
	}
	path := filepath.Join(t.opts.Dir, fmt.Sprintf("tbl-%d-%08d.sst", 0, t.nextID))
	t.nextID++
	tbl, err := writeSSTable(path, entries)
	if err != nil {
		return err
	}
	if err := syncDir(t.opts.Dir); err != nil {
		return err
	}
	t.FlushCount++
	if len(t.levels) == 0 {
		t.levels = append(t.levels, nil)
	}
	t.levels[0] = append([]*sstable{tbl}, t.levels[0]...)
	t.mem = newSkiplist(t.opts.Seed + int64(t.nextID))
	if t.wal != nil {
		if err := t.wal.reset(); err != nil {
			return err
		}
	}
	return t.maybeCompactLocked()
}

func (t *Tree) maybeCompactLocked() error {
	for level := 0; level < len(t.levels); level++ {
		if len(t.levels[level]) < t.opts.CompactionFanIn {
			continue
		}
		// Merge every table in this level into one table in the next level.
		var sources [][]entry
		for _, tbl := range t.levels[level] {
			es, err := tbl.allEntries()
			if err != nil {
				return err
			}
			sources = append(sources, es)
		}
		merged := mergeEntrySets(sources)
		// Drop tombstones when compacting into the last level.
		lastLevel := level+1 >= len(t.levels)
		if lastLevel {
			live := merged[:0]
			for _, e := range merged {
				if !e.tombstone {
					live = append(live, e)
				}
			}
			merged = live
		}
		old := t.levels[level]
		t.levels[level] = nil
		if len(merged) > 0 {
			path := filepath.Join(t.opts.Dir, fmt.Sprintf("tbl-%d-%08d.sst", level+1, t.nextID))
			t.nextID++
			tbl, err := writeSSTable(path, merged)
			if err != nil {
				return err
			}
			for len(t.levels) <= level+1 {
				t.levels = append(t.levels, nil)
			}
			t.levels[level+1] = append([]*sstable{tbl}, t.levels[level+1]...)
		}
		for _, tbl := range old {
			if err := os.Remove(tbl.path); err != nil {
				return fmt.Errorf("lsm: remove compacted table: %w", err)
			}
		}
		t.CompactCount++
	}
	return nil
}

// SyncWAL forces any WAL records buffered in the OS down to the medium. The
// engine calls this at the checkpoint barrier so a completed checkpoint never
// references writes the OS hasn't persisted. No-op when the WAL is disabled.
func (t *Tree) SyncWAL() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.wal == nil {
		return nil
	}
	return t.wal.sync()
}

// ReplaceWithFiles discards the tree's current contents and adopts the given
// SSTable files (checkpoint restore). Files are hard-linked into the tree
// directory when possible, copied otherwise, preserving basenames so level
// and id survive. The WAL is reset: the adopted tables are the complete
// state.
func (t *Tree) ReplaceWithFiles(paths []string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	old, err := filepath.Glob(filepath.Join(t.opts.Dir, "tbl-*.sst"))
	if err != nil {
		return fmt.Errorf("lsm: glob tables: %w", err)
	}
	for _, name := range old {
		if err := os.Remove(name); err != nil {
			return fmt.Errorf("lsm: remove stale table: %w", err)
		}
	}
	for _, src := range paths {
		dst := filepath.Join(t.opts.Dir, filepath.Base(src))
		if err := linkOrCopy(src, dst); err != nil {
			return err
		}
	}
	if err := syncDir(t.opts.Dir); err != nil {
		return err
	}
	t.mem = newSkiplist(t.opts.Seed)
	t.nextID = 0
	if err := t.loadTablesLocked(); err != nil {
		return err
	}
	if t.wal != nil {
		return t.wal.reset()
	}
	return nil
}

// linkOrCopy hard-links src to dst, falling back to a fsynced copy when the
// link fails (cross-device, or a filesystem without hard links).
func linkOrCopy(src, dst string) error {
	if err := os.Link(src, dst); err == nil {
		return nil
	}
	data, err := os.ReadFile(src)
	if err != nil {
		return fmt.Errorf("lsm: copy table: %w", err)
	}
	f, err := os.OpenFile(dst, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("lsm: copy table: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return fmt.Errorf("lsm: copy table: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("lsm: copy table: %w", err)
	}
	return f.Close()
}

// Manifest lists the immutable table files currently composing the tree.
// Incremental checkpoints ship only files not present in the previous
// manifest.
func (t *Tree) Manifest() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var files []string
	for _, lvl := range t.levels {
		for _, tbl := range lvl {
			files = append(files, tbl.path)
		}
	}
	sort.Strings(files)
	return files
}

// Stats summarises the tree shape.
type Stats struct {
	MemtableBytes int
	MemtableKeys  int
	Levels        []int // tables per level
	DiskBytes     int64
}

// Stats returns current tree statistics.
func (t *Tree) Stats() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := Stats{MemtableBytes: t.mem.size, MemtableKeys: t.mem.count}
	for _, lvl := range t.levels {
		s.Levels = append(s.Levels, len(lvl))
		for _, tbl := range lvl {
			s.DiskBytes += tbl.size
		}
	}
	return s
}

// Close flushes and releases the WAL.
func (t *Tree) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.flushLocked(); err != nil {
		return err
	}
	if t.wal != nil {
		return t.wal.close()
	}
	return nil
}
