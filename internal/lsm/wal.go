package lsm

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// wal is a write-ahead log of put/delete records. Record format:
//
//	crc u32 | keyLen u32 | valLen u32 | tombstone u8 | key | val
//
// The crc covers everything after itself. Replay stops at the first corrupt
// or truncated record (standard torn-write handling).
type wal struct {
	f    *os.File
	w    *bufio.Writer
	path string
}

type walRecord struct {
	key       []byte
	value     []byte
	tombstone bool
}

func openWAL(path string) (*wal, []walRecord, error) {
	var records []walRecord
	if data, err := os.ReadFile(path); err == nil {
		records = decodeWAL(data)
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("lsm: read wal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("lsm: open wal: %w", err)
	}
	return &wal{f: f, w: bufio.NewWriter(f), path: path}, records, nil
}

func decodeWAL(data []byte) []walRecord {
	var records []walRecord
	pos := 0
	for pos+13 <= len(data) {
		crc := binary.LittleEndian.Uint32(data[pos:])
		kl := int(binary.LittleEndian.Uint32(data[pos+4:]))
		vl := int(binary.LittleEndian.Uint32(data[pos+8:]))
		tomb := data[pos+12] == 1
		end := pos + 13 + kl + vl
		if end > len(data) {
			break // truncated tail
		}
		body := data[pos+4 : end]
		if crc32.ChecksumIEEE(body) != crc {
			break // torn write
		}
		key := append([]byte(nil), data[pos+13:pos+13+kl]...)
		val := append([]byte(nil), data[pos+13+kl:end]...)
		records = append(records, walRecord{key: key, value: val, tombstone: tomb})
		pos = end
	}
	return records
}

func (w *wal) append(key, value []byte, tombstone bool) error {
	hdr := make([]byte, 13)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(value)))
	if tombstone {
		hdr[12] = 1
	}
	body := make([]byte, 0, 9+len(key)+len(value))
	body = append(body, hdr[4:]...)
	body = append(body, key...)
	body = append(body, value...)
	binary.LittleEndian.PutUint32(hdr[:4], crc32.ChecksumIEEE(body))
	if _, err := w.w.Write(hdr[:4]); err != nil {
		return fmt.Errorf("lsm: wal write: %w", err)
	}
	if _, err := w.w.Write(body); err != nil {
		return fmt.Errorf("lsm: wal write: %w", err)
	}
	return w.w.Flush()
}

// reset truncates the log (called after a successful memtable flush).
func (w *wal) reset() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("lsm: wal truncate: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("lsm: wal seek: %w", err)
	}
	w.w.Reset(w.f)
	return nil
}

func (w *wal) close() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.f.Close()
}
