package lsm

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// wal is a write-ahead log of put/delete records. Record format:
//
//	crc u32 | keyLen u32 | valLen u32 | tombstone u8 | key | val
//
// The crc covers everything after itself, so a torn frame (crash mid-append)
// is detected rather than silently accepted. Replay stops at the first
// corrupt or truncated record, and the file is truncated back to the last
// complete frame before appends resume — otherwise new records would land
// after the garbage and be unreachable on the next replay.
type wal struct {
	f    *os.File
	w    *bufio.Writer
	path string
}

type walRecord struct {
	key       []byte
	value     []byte
	tombstone bool
}

func openWAL(path string) (*wal, []walRecord, error) {
	var records []walRecord
	valid := int64(0)
	if data, err := os.ReadFile(path); err == nil {
		var n int
		records, n = decodeWAL(data)
		valid = int64(n)
		if n < len(data) {
			// Torn tail: cut the log back to the last complete frame so the
			// next append continues a decodable log instead of writing past
			// garbage that replay will never cross.
			if err := os.Truncate(path, valid); err != nil {
				return nil, nil, fmt.Errorf("lsm: truncate torn wal tail: %w", err)
			}
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("lsm: read wal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("lsm: open wal: %w", err)
	}
	return &wal{f: f, w: bufio.NewWriter(f), path: path}, records, nil
}

// decodeWAL parses records until the first torn or corrupt frame, returning
// the decoded records and the byte length of the valid prefix.
func decodeWAL(data []byte) ([]walRecord, int) {
	var records []walRecord
	pos := 0
	for pos+13 <= len(data) {
		crc := binary.LittleEndian.Uint32(data[pos:])
		kl := int(binary.LittleEndian.Uint32(data[pos+4:]))
		vl := int(binary.LittleEndian.Uint32(data[pos+8:]))
		tomb := data[pos+12] == 1
		end := pos + 13 + kl + vl
		if kl < 0 || vl < 0 || end < pos || end > len(data) {
			break // truncated tail (or corrupt lengths overflowing int)
		}
		body := data[pos+4 : end]
		if crc32.ChecksumIEEE(body) != crc {
			break // torn write
		}
		key := append([]byte(nil), data[pos+13:pos+13+kl]...)
		val := append([]byte(nil), data[pos+13+kl:end]...)
		records = append(records, walRecord{key: key, value: val, tombstone: tomb})
		pos = end
	}
	return records, pos
}

func (w *wal) append(key, value []byte, tombstone bool) error {
	hdr := make([]byte, 13)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(value)))
	if tombstone {
		hdr[12] = 1
	}
	body := make([]byte, 0, 9+len(key)+len(value))
	body = append(body, hdr[4:]...)
	body = append(body, key...)
	body = append(body, value...)
	binary.LittleEndian.PutUint32(hdr[:4], crc32.ChecksumIEEE(body))
	if _, err := w.w.Write(hdr[:4]); err != nil {
		return fmt.Errorf("lsm: wal write: %w", err)
	}
	if _, err := w.w.Write(body); err != nil {
		return fmt.Errorf("lsm: wal write: %w", err)
	}
	return w.w.Flush()
}

// sync forces buffered records to the medium. Appends only flush to the OS;
// a checkpoint must not complete while the log it depends on can still be
// lost to a power failure, so the engine syncs at the barrier boundary.
func (w *wal) sync() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("lsm: wal sync: %w", err)
	}
	return nil
}

// reset truncates the log (called after a successful memtable flush).
func (w *wal) reset() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("lsm: wal truncate: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("lsm: wal seek: %w", err)
	}
	w.w.Reset(w.f)
	return nil
}

func (w *wal) close() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.f.Close()
}
