package lsm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func walPath(dir string) string { return filepath.Join(dir, "wal.log") }

func writeTestWAL(t *testing.T, dir string, n int) {
	t.Helper()
	w, _, err := openWAL(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		v := []byte(fmt.Sprintf("val-%03d", i))
		if err := w.append(k, v, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeWALTornTail(t *testing.T) {
	dir := t.TempDir()
	writeTestWAL(t, dir, 5)
	data, err := os.ReadFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	// A crash mid-append leaves a prefix of the final record.
	for cut := 1; cut < 13+14; cut += 3 {
		torn := data[:len(data)-cut]
		records, valid := decodeWAL(torn)
		if len(records) != 4 {
			t.Fatalf("cut %d: want 4 records from torn log, got %d", cut, len(records))
		}
		if valid > len(torn) {
			t.Fatalf("cut %d: valid prefix %d exceeds data %d", cut, valid, len(torn))
		}
		if rest, n := decodeWAL(torn[:valid]); n != valid || len(rest) != 4 {
			t.Fatalf("cut %d: valid prefix is not self-delimiting (n=%d records=%d)", cut, n, len(rest))
		}
	}
}

func TestDecodeWALCorruptCRC(t *testing.T) {
	dir := t.TempDir()
	writeTestWAL(t, dir, 3)
	data, err := os.ReadFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second record's value; decode must stop at the
	// first record rather than accept the torn frame.
	recLen := 13 + 7 + 7
	data[recLen+recLen-1] ^= 0xff
	records, valid := decodeWAL(data)
	if len(records) != 1 {
		t.Fatalf("want 1 record before corrupt frame, got %d", len(records))
	}
	if valid != recLen {
		t.Fatalf("want valid prefix %d, got %d", recLen, valid)
	}
}

func TestDecodeWALInsaneLengths(t *testing.T) {
	// Corrupt length fields must not panic or over-read.
	data := make([]byte, 13)
	binary.LittleEndian.PutUint32(data[4:], 0xffffffff)
	binary.LittleEndian.PutUint32(data[8:], 0xffffffff)
	records, valid := decodeWAL(data)
	if len(records) != 0 || valid != 0 {
		t.Fatalf("want no records from garbage header, got %d (valid=%d)", len(records), valid)
	}
}

func TestOpenWALTruncatesTornTailThenAppends(t *testing.T) {
	// The core torn-tail bug: after a crash mid-append, new records must not
	// land after the garbage — the next replay would stop at the torn frame
	// and silently lose everything appended after it.
	dir := t.TempDir()
	writeTestWAL(t, dir, 5)
	data, err := os.ReadFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath(dir), data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	w, records, err := openWAL(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 {
		t.Fatalf("want 4 records after torn tail, got %d", len(records))
	}
	if err := w.append([]byte("after"), []byte("crash"), false); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	_, records, err = openWAL(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 5 {
		t.Fatalf("want 4 old + 1 new records after reopen, got %d", len(records))
	}
	last := records[len(records)-1]
	if string(last.key) != "after" || string(last.value) != "crash" {
		t.Fatalf("post-crash append lost: got %q=%q", last.key, last.value)
	}
}

func TestWALSyncSurvivesReplay(t *testing.T) {
	dir := t.TempDir()
	w, _, err := openWAL(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append([]byte("k"), []byte("v"), false); err != nil {
		t.Fatal(err)
	}
	if err := w.sync(); err != nil {
		t.Fatal(err)
	}
	// Abandon the handle without close: synced data must still replay.
	_, records, err := openWAL(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || string(records[0].key) != "k" {
		t.Fatalf("synced record lost: %v", records)
	}
}

func TestTreeSurvivesTornWALTail(t *testing.T) {
	dir := t.TempDir()
	tr := openTest(t, Options{Dir: dir, MemtableBytes: 1 << 30})
	for i := 0; i < 10; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: half a record lands at the tail.
	f, err := os.OpenFile(walPath(dir), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x05}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	tr2, err := Open(Options{Dir: dir, MemtableBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		v, found, err := tr2.Get([]byte(fmt.Sprintf("k%02d", i)))
		if err != nil || !found || !bytes.Equal(v, []byte(fmt.Sprintf("v%02d", i))) {
			t.Fatalf("k%02d lost after torn tail: %q %v %v", i, v, found, err)
		}
	}
	// And the log must keep working after the truncation.
	if err := tr2.Put([]byte("new"), []byte("rec")); err != nil {
		t.Fatal(err)
	}
	if err := tr2.Close(); err != nil {
		t.Fatal(err)
	}
	tr3, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if v, found, _ := tr3.Get([]byte("new")); !found || string(v) != "rec" {
		t.Fatalf("post-truncation write lost: %q %v", v, found)
	}
}

func TestReplaceWithFiles(t *testing.T) {
	srcDir := t.TempDir()
	src := openTest(t, Options{Dir: srcDir, MemtableBytes: 1 << 30})
	for i := 0; i < 100; i++ {
		if err := src.Put([]byte(fmt.Sprintf("s%03d", i)), []byte(fmt.Sprintf("sv%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Flush(); err != nil {
		t.Fatal(err)
	}
	manifest := src.Manifest()
	if len(manifest) == 0 {
		t.Fatal("source manifest empty")
	}

	dst := openTest(t, Options{MemtableBytes: 1 << 30})
	if err := dst.Put([]byte("stale"), []byte("gone")); err != nil {
		t.Fatal(err)
	}
	if err := dst.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := dst.ReplaceWithFiles(manifest); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := dst.Get([]byte("stale")); found {
		t.Fatal("stale key survived ReplaceWithFiles")
	}
	for i := 0; i < 100; i += 13 {
		k := []byte(fmt.Sprintf("s%03d", i))
		v, found, err := dst.Get(k)
		if err != nil || !found || !bytes.Equal(v, []byte(fmt.Sprintf("sv%03d", i))) {
			t.Fatalf("adopted key %s: %q %v %v", k, v, found, err)
		}
	}
	// Adopted tables are hard links: writes to dst must not disturb src.
	if err := dst.Put([]byte("s000"), []byte("changed")); err != nil {
		t.Fatal(err)
	}
	if err := dst.Flush(); err != nil {
		t.Fatal(err)
	}
	if v, found, _ := src.Get([]byte("s000")); !found || string(v) != "sv000" {
		t.Fatalf("source disturbed by writes to adopter: %q %v", v, found)
	}
}
