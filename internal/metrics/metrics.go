// Package metrics provides lightweight, concurrency-safe counters, gauges,
// throughput meters and log-bucketed latency histograms used by the engine
// and the experiment harness. It is intentionally dependency-free so every
// subsystem can report measurements without pulling in the engine itself.
package metrics

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta to the counter.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores the given value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta to the gauge.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram records observations into exponential (log2) buckets. It is
// designed for latency measurements spanning nanoseconds to minutes and keeps
// exact min/max/sum alongside bucket counts so quantiles can be approximated
// without storing samples.
type Histogram struct {
	mu      sync.Mutex
	buckets [64]int64 // bucket i holds values v with 2^i <= v < 2^(i+1); bucket 0 holds v <= 1
	count   int64
	sum     int64
	min     int64
	max     int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64}
}

// Observe records a single non-negative value. Negative values are clamped
// to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	b := 0
	if v > 1 {
		b = 63 - bits.LeadingZeros64(uint64(v))
	}
	h.mu.Lock()
	h.buckets[b]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Reset discards every observation, returning the histogram to its empty
// state. Harnesses use it to separate a warmup phase from the measured
// window without rebuilding the registry (the instrument identity — and any
// pointer an operator captured at wiring time — stays valid).
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.buckets = [64]int64{}
	h.count = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = 0
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the arithmetic mean of the observations, or 0 if empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest observation, or 0 if empty.
func (h *Histogram) Min() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or 0 if empty.
func (h *Histogram) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns an approximation of the q-th quantile (0 <= q <= 1).
// The approximation returns the upper bound of the bucket containing the
// quantile, which overestimates by at most 2x.
func (h *Histogram) Quantile(q float64) int64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := int64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen > rank {
			if i == 0 {
				return 1
			}
			ub := int64(1) << uint(i+1)
			if ub > h.max {
				ub = h.max
			}
			return ub
		}
	}
	return h.max
}

// Snapshot returns a human-readable summary of the histogram.
func (h *Histogram) Snapshot() string {
	return fmt.Sprintf("count=%d mean=%.1f p50=%d p95=%d p99=%d max=%d",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max())
}

// HistogramBucket is one non-empty exponential bucket in an export snapshot.
// UpperBound is the largest value the bucket admits (inclusive).
type HistogramBucket struct {
	UpperBound int64
	Count      int64
}

// HistogramSnapshot is a point-in-time copy of a histogram's distribution,
// the exporter-facing view (Prometheus and friends need raw buckets, not the
// human-readable Snapshot string).
type HistogramSnapshot struct {
	Count int64
	Sum   int64
	Min   int64
	Max   int64
	// Buckets lists the non-empty buckets in ascending bound order with
	// per-bucket (non-cumulative) counts.
	Buckets []HistogramBucket
}

// Export returns a consistent snapshot of the distribution.
func (h *Histogram) Export() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Max: h.max}
	if h.count > 0 {
		s.Min = h.min
	}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		ub := int64(math.MaxInt64)
		if i < 62 {
			ub = int64(1)<<uint(i+1) - 1
		}
		s.Buckets = append(s.Buckets, HistogramBucket{UpperBound: ub, Count: c})
	}
	return s
}

// meterTau is the EWMA time constant of Meter.Rate: observations older than a
// few multiples of this window no longer influence the reported rate.
const meterTau = 5 * time.Second

// meterMinSample is the smallest interval over which an instantaneous rate is
// computed; calls closer together than this reuse the previous estimate.
const meterMinSample = 10 * time.Millisecond

// Meter measures the rate of events: a windowed EWMA rate that tracks the
// current throughput (Rate) and the average over the meter's whole lifetime
// (LifetimeRate).
type Meter struct {
	count atomic.Int64
	start time.Time

	mu        sync.Mutex
	lastCount int64
	lastTime  time.Time
	ewma      float64
	primed    bool
	now       func() time.Time // test hook
}

// NewMeter returns a meter whose rate window starts now.
func NewMeter() *Meter {
	now := time.Now()
	return &Meter{start: now, lastTime: now, now: time.Now}
}

// Mark records n events.
func (m *Meter) Mark(n int64) { m.count.Add(n) }

// Count returns the total events marked.
func (m *Meter) Count() int64 { return m.count.Load() }

// Rate returns the current events-per-second throughput as an exponentially
// weighted moving average with a ~5 s window, so a live throughput collapse
// is visible within seconds. Use LifetimeRate for the all-time average.
func (m *Meter) Rate() float64 {
	n := m.count.Load()
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.now()
	el := t.Sub(m.lastTime)
	if el < meterMinSample {
		if !m.primed {
			// Too early for a windowed sample; fall back to the lifetime
			// average so a meter read immediately after marking is not zero.
			return m.lifetimeRateLocked(n, t)
		}
		return m.ewma
	}
	inst := float64(n-m.lastCount) / el.Seconds()
	if m.primed {
		alpha := 1 - math.Exp(-el.Seconds()/meterTau.Seconds())
		m.ewma += alpha * (inst - m.ewma)
	} else {
		m.ewma = inst
		m.primed = true
	}
	m.lastCount = n
	m.lastTime = t
	return m.ewma
}

// Reset zeroes the count and restarts both rate windows (EWMA and lifetime)
// from now, as if the meter had just been created. Concurrent Marks may land
// on either side of the reset.
func (m *Meter) Reset() {
	m.mu.Lock()
	now := m.now()
	m.count.Store(0)
	m.start = now
	m.lastTime = now
	m.lastCount = 0
	m.ewma = 0
	m.primed = false
	m.mu.Unlock()
}

// LifetimeRate returns events per second averaged since the meter was
// created.
func (m *Meter) LifetimeRate() float64 {
	n := m.count.Load()
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lifetimeRateLocked(n, m.now())
}

func (m *Meter) lifetimeRateLocked(n int64, now time.Time) float64 {
	el := now.Sub(m.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(n) / el
}

// Registry is a named collection of metrics. A Registry is safe for
// concurrent use; metric constructors return the existing instrument when the
// name is already registered.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() int64
	histograms map[string]*Histogram
	meters     map[string]*Meter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() int64),
		histograms: make(map[string]*Histogram),
		meters:     make(map[string]*Meter),
	}
}

// Counter returns the counter with the given name, creating it if absent.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it if absent.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it if absent.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// Meter returns the meter with the given name, creating it if absent.
func (r *Registry) Meter(name string) *Meter {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.meters[name]
	if !ok {
		m = NewMeter()
		r.meters[name] = m
	}
	return m
}

// GaugeFunc registers a callback gauge: fn is invoked at read time, so live
// values owned by other subsystems (queue lengths, credit counts) can be
// exported without a polling loop. Registering an existing name replaces the
// callback. fn must be safe for concurrent use and must not call back into
// the registry.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// Visitor receives every registered instrument from Each. Nil fields skip
// that instrument kind. Gauge is invoked for both stored gauges and callback
// gauges (GaugeFunc), unified to their current value.
type Visitor struct {
	Counter   func(name string, c *Counter)
	Gauge     func(name string, value int64)
	Histogram func(name string, h *Histogram)
	Meter     func(name string, m *Meter)
}

// Each visits every registered metric in ascending name order per kind:
// counters, gauges (stored and callback, interleaved by name), histograms,
// meters. The registry lock is not held during visits, so visitors may block
// or read other locks freely; instruments registered concurrently with an
// Each call may or may not be visited.
func (r *Registry) Each(v Visitor) {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	gaugeFns := make(map[string]func() int64, len(r.gaugeFuncs))
	for n, fn := range r.gaugeFuncs {
		gaugeFns[n] = fn
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for n, h := range r.histograms {
		histograms[n] = h
	}
	meters := make(map[string]*Meter, len(r.meters))
	for n, m := range r.meters {
		meters[n] = m
	}
	r.mu.Unlock()

	if v.Counter != nil {
		for _, n := range sortedKeys(counters) {
			v.Counter(n, counters[n])
		}
	}
	if v.Gauge != nil {
		names := sortedKeys(gauges)
		for n := range gaugeFns {
			if _, dup := gauges[n]; !dup {
				names = append(names, n)
			}
		}
		sort.Strings(names)
		for _, n := range names {
			if g, ok := gauges[n]; ok {
				v.Gauge(n, g.Value())
			} else {
				v.Gauge(n, gaugeFns[n]())
			}
		}
	}
	if v.Histogram != nil {
		for _, n := range sortedKeys(histograms) {
			v.Histogram(n, histograms[n])
		}
	}
	if v.Meter != nil {
		for _, n := range sortedKeys(meters) {
			v.Meter(n, meters[n])
		}
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteTo renders every registered metric in the human-readable dump format,
// sorted by name, one per line. Exporters that need a machine format should
// use Each instead of parsing this output.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	var lines []string
	r.Each(Visitor{
		Counter: func(n string, c *Counter) {
			lines = append(lines, fmt.Sprintf("counter %s = %d", n, c.Value()))
		},
		Gauge: func(n string, v int64) {
			lines = append(lines, fmt.Sprintf("gauge %s = %d", n, v))
		},
		Histogram: func(n string, h *Histogram) {
			lines = append(lines, fmt.Sprintf("histogram %s: %s", n, h.Snapshot()))
		},
		Meter: func(n string, m *Meter) {
			lines = append(lines, fmt.Sprintf("meter %s: count=%d rate=%.1f/s lifetime=%.1f/s",
				n, m.Count(), m.Rate(), m.LifetimeRate()))
		},
	})
	sort.Strings(lines)
	n, err := io.WriteString(w, strings.Join(lines, "\n"))
	return int64(n), err
}

// Dump renders every registered metric via WriteTo.
func (r *Registry) Dump() string {
	var b strings.Builder
	r.WriteTo(&b)
	return b.String()
}
