// Package metrics provides lightweight, concurrency-safe counters, gauges,
// throughput meters and log-bucketed latency histograms used by the engine
// and the experiment harness. It is intentionally dependency-free so every
// subsystem can report measurements without pulling in the engine itself.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta to the counter.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores the given value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta to the gauge.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram records observations into exponential (log2) buckets. It is
// designed for latency measurements spanning nanoseconds to minutes and keeps
// exact min/max/sum alongside bucket counts so quantiles can be approximated
// without storing samples.
type Histogram struct {
	mu      sync.Mutex
	buckets [64]int64 // bucket i holds values v with 2^i <= v < 2^(i+1); bucket 0 holds v <= 1
	count   int64
	sum     int64
	min     int64
	max     int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64}
}

// Observe records a single non-negative value. Negative values are clamped
// to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	b := 0
	if v > 1 {
		b = 63 - bits.LeadingZeros64(uint64(v))
	}
	h.mu.Lock()
	h.buckets[b]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the arithmetic mean of the observations, or 0 if empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest observation, or 0 if empty.
func (h *Histogram) Min() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or 0 if empty.
func (h *Histogram) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns an approximation of the q-th quantile (0 <= q <= 1).
// The approximation returns the upper bound of the bucket containing the
// quantile, which overestimates by at most 2x.
func (h *Histogram) Quantile(q float64) int64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := int64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen > rank {
			if i == 0 {
				return 1
			}
			ub := int64(1) << uint(i+1)
			if ub > h.max {
				ub = h.max
			}
			return ub
		}
	}
	return h.max
}

// Snapshot returns a human-readable summary of the histogram.
func (h *Histogram) Snapshot() string {
	return fmt.Sprintf("count=%d mean=%.1f p50=%d p95=%d p99=%d max=%d",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max())
}

// Meter measures the rate of events over its lifetime.
type Meter struct {
	count atomic.Int64
	start time.Time
}

// NewMeter returns a meter whose rate window starts now.
func NewMeter() *Meter { return &Meter{start: time.Now()} }

// Mark records n events.
func (m *Meter) Mark(n int64) { m.count.Add(n) }

// Count returns the total events marked.
func (m *Meter) Count() int64 { return m.count.Load() }

// Rate returns events per second since the meter was created.
func (m *Meter) Rate() float64 {
	el := time.Since(m.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(m.count.Load()) / el
}

// Registry is a named collection of metrics. A Registry is safe for
// concurrent use; metric constructors return the existing instrument when the
// name is already registered.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	meters     map[string]*Meter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		meters:     make(map[string]*Meter),
	}
}

// Counter returns the counter with the given name, creating it if absent.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it if absent.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it if absent.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// Meter returns the meter with the given name, creating it if absent.
func (r *Registry) Meter(name string) *Meter {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.meters[name]
	if !ok {
		m = NewMeter()
		r.meters[name] = m
	}
	return m
}

// Dump renders every registered metric, sorted by name, one per line.
func (r *Registry) Dump() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for n, c := range r.counters {
		lines = append(lines, fmt.Sprintf("counter %s = %d", n, c.Value()))
	}
	for n, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge %s = %d", n, g.Value()))
	}
	for n, h := range r.histograms {
		lines = append(lines, fmt.Sprintf("histogram %s: %s", n, h.Snapshot()))
	}
	for n, m := range r.meters {
		lines = append(lines, fmt.Sprintf("meter %s: count=%d rate=%.1f/s", n, m.Count(), m.Rate()))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
