package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("want 8000, got %d", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(42)
	g.Add(-2)
	if g.Value() != 40 {
		t.Fatalf("want 40, got %d", g.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	if h.Count() != 1000 {
		t.Fatalf("count: want 1000, got %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("min/max: got %d/%d", h.Min(), h.Max())
	}
	if m := h.Mean(); m < 500 || m > 501 {
		t.Fatalf("mean: want ~500.5, got %v", m)
	}
	p50 := h.Quantile(0.5)
	if p50 < 256 || p50 > 1024 {
		t.Fatalf("p50 bucket bound out of range: %d", p50)
	}
}

func TestHistogramQuantileWithinBucketBound(t *testing.T) {
	// Property: the quantile approximation is an upper bound within 2x of an
	// exact value for power-of-two-ish data.
	check := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram()
		max := int64(0)
		for _, v := range vals {
			h.Observe(int64(v))
			if int64(v) > max {
				max = int64(v)
			}
		}
		q := h.Quantile(1.0)
		return q <= max*2+2 && q >= 0
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5)
	if h.Min() != 0 {
		t.Fatalf("negative observation should clamp to 0, got min %d", h.Min())
	}
}

func TestRegistryReuse(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x")
	c1.Inc()
	c2 := r.Counter("x")
	if c2.Value() != 1 {
		t.Fatal("registry did not reuse counter")
	}
	r.Gauge("g").Set(1)
	r.Histogram("h").Observe(1)
	r.Meter("m").Mark(3)
	dump := r.Dump()
	for _, want := range []string{"counter x = 1", "gauge g = 1", "histogram h:", "meter m:"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestMeterRate(t *testing.T) {
	m := NewMeter()
	m.Mark(100)
	if m.Count() != 100 {
		t.Fatalf("count: want 100, got %d", m.Count())
	}
	if m.Rate() <= 0 {
		t.Fatal("rate should be positive after marks")
	}
}

// virtualMeter returns a meter on a manual clock plus the advance function.
func virtualMeter() (*Meter, func(d time.Duration)) {
	now := time.Unix(1000, 0)
	m := NewMeter()
	m.start = now
	m.lastTime = now
	m.now = func() time.Time { return now }
	return m, func(d time.Duration) { now = now.Add(d) }
}

func TestMeterEWMATracksCurrentRate(t *testing.T) {
	m, advance := virtualMeter()
	// 1000 events/s for one second primes the EWMA at the instantaneous rate.
	m.Mark(1000)
	advance(time.Second)
	if r := m.Rate(); r < 999 || r > 1001 {
		t.Fatalf("primed rate: want ~1000, got %v", r)
	}
	// Throughput collapses to zero: the windowed rate must decay within a few
	// time constants, while the lifetime rate stays high.
	for i := 0; i < 12; i++ {
		advance(5 * time.Second)
		m.Rate()
	}
	if r := m.Rate(); r > 1 {
		t.Fatalf("rate should have decayed toward 0 after idle minute, got %v", r)
	}
	if lr := m.LifetimeRate(); lr < 15 || lr > 17 {
		t.Fatalf("lifetime rate: want ~16 (1000 events / 61s), got %v", lr)
	}
}

func TestMeterRateBackToBackCallsStable(t *testing.T) {
	m, advance := virtualMeter()
	m.Mark(500)
	advance(time.Second)
	first := m.Rate()
	// A second read within the minimum sample interval must not produce a
	// bogus instantaneous spike from a tiny elapsed window.
	if second := m.Rate(); second != first {
		t.Fatalf("immediate re-read changed rate: %v -> %v", first, second)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.99) != 0 {
		t.Fatalf("reset histogram should report zeros: %s", h.Snapshot())
	}
	if s := h.Export(); s.Count != 0 || s.Sum != 0 || len(s.Buckets) != 0 {
		t.Fatalf("reset histogram export not empty: %+v", s)
	}
	// The instrument stays usable and min/max re-prime from fresh data.
	h.Observe(7)
	if h.Count() != 1 || h.Min() != 7 || h.Max() != 7 {
		t.Fatalf("histogram broken after reset: %s", h.Snapshot())
	}
}

func TestMeterReset(t *testing.T) {
	m, advance := virtualMeter()
	m.Mark(1000)
	advance(time.Second)
	if m.Rate() < 999 {
		t.Fatal("meter should be primed before reset")
	}
	m.Reset()
	if m.Count() != 0 {
		t.Fatalf("reset meter count: want 0, got %d", m.Count())
	}
	if lr := m.LifetimeRate(); lr != 0 {
		t.Fatalf("reset meter lifetime rate: want 0, got %v", lr)
	}
	// A fresh measurement window: 200 events over 1s reads ~200/s, not a
	// blend with the pre-reset rate.
	m.Mark(200)
	advance(time.Second)
	if r := m.Rate(); r < 199 || r > 201 {
		t.Fatalf("post-reset rate: want ~200, got %v", r)
	}
	if lr := m.LifetimeRate(); lr < 199 || lr > 201 {
		t.Fatalf("post-reset lifetime rate: want ~200, got %v", lr)
	}
}

func TestHistogramExport(t *testing.T) {
	h := NewHistogram()
	h.Observe(1)   // bucket 0, ub 1
	h.Observe(100) // bucket 6, ub 127
	h.Observe(100)
	s := h.Export()
	if s.Count != 3 || s.Sum != 201 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("export summary wrong: %+v", s)
	}
	if len(s.Buckets) != 2 {
		t.Fatalf("want 2 non-empty buckets, got %+v", s.Buckets)
	}
	if s.Buckets[0].UpperBound != 1 || s.Buckets[0].Count != 1 {
		t.Fatalf("bucket 0 wrong: %+v", s.Buckets[0])
	}
	if s.Buckets[1].UpperBound != 127 || s.Buckets[1].Count != 2 {
		t.Fatalf("bucket 1 wrong: %+v", s.Buckets[1])
	}
}

func TestRegistryEachAndWriteTo(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	r.Gauge("g").Set(5)
	r.GaugeFunc("gf", func() int64 { return 9 })
	r.Histogram("h").Observe(3)
	r.Meter("m").Mark(1)

	var counters, gauges, hists, meters []string
	gaugeVals := map[string]int64{}
	r.Each(Visitor{
		Counter:   func(n string, c *Counter) { counters = append(counters, n) },
		Gauge:     func(n string, v int64) { gauges = append(gauges, n); gaugeVals[n] = v },
		Histogram: func(n string, h *Histogram) { hists = append(hists, n) },
		Meter:     func(n string, m *Meter) { meters = append(meters, n) },
	})
	if len(counters) != 1 || len(hists) != 1 || len(meters) != 1 {
		t.Fatalf("each visited %v %v %v", counters, hists, meters)
	}
	if len(gauges) != 2 || gaugeVals["g"] != 5 || gaugeVals["gf"] != 9 {
		t.Fatalf("gauges wrong: %v %v", gauges, gaugeVals)
	}

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	// Dump renders via WriteTo; meter lines carry a live rate that may differ
	// between two renders, so compare everything else.
	stripMeters := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if !strings.HasPrefix(line, "meter ") {
				keep = append(keep, line)
			}
		}
		return strings.Join(keep, "\n")
	}
	if stripMeters(b.String()) != stripMeters(r.Dump()) {
		t.Fatalf("Dump should render via WriteTo:\n%s\nvs\n%s", b.String(), r.Dump())
	}
	if !strings.Contains(b.String(), "gauge gf = 9") {
		t.Fatalf("WriteTo missing callback gauge:\n%s", b.String())
	}
}

func TestEachVisitorsRunUnlocked(t *testing.T) {
	// A visitor reading the registry again must not deadlock.
	r := NewRegistry()
	r.Counter("a").Inc()
	done := make(chan struct{})
	go func() {
		r.Each(Visitor{Counter: func(n string, c *Counter) { r.Counter("a") }})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Each deadlocked while visitor touched the registry")
	}
}
