package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("want 8000, got %d", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(42)
	g.Add(-2)
	if g.Value() != 40 {
		t.Fatalf("want 40, got %d", g.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	if h.Count() != 1000 {
		t.Fatalf("count: want 1000, got %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("min/max: got %d/%d", h.Min(), h.Max())
	}
	if m := h.Mean(); m < 500 || m > 501 {
		t.Fatalf("mean: want ~500.5, got %v", m)
	}
	p50 := h.Quantile(0.5)
	if p50 < 256 || p50 > 1024 {
		t.Fatalf("p50 bucket bound out of range: %d", p50)
	}
}

func TestHistogramQuantileWithinBucketBound(t *testing.T) {
	// Property: the quantile approximation is an upper bound within 2x of an
	// exact value for power-of-two-ish data.
	check := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram()
		max := int64(0)
		for _, v := range vals {
			h.Observe(int64(v))
			if int64(v) > max {
				max = int64(v)
			}
		}
		q := h.Quantile(1.0)
		return q <= max*2+2 && q >= 0
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5)
	if h.Min() != 0 {
		t.Fatalf("negative observation should clamp to 0, got min %d", h.Min())
	}
}

func TestRegistryReuse(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x")
	c1.Inc()
	c2 := r.Counter("x")
	if c2.Value() != 1 {
		t.Fatal("registry did not reuse counter")
	}
	r.Gauge("g").Set(1)
	r.Histogram("h").Observe(1)
	r.Meter("m").Mark(3)
	dump := r.Dump()
	for _, want := range []string{"counter x = 1", "gauge g = 1", "histogram h:", "meter m:"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestMeterRate(t *testing.T) {
	m := NewMeter()
	m.Mark(100)
	if m.Count() != 100 {
		t.Fatalf("count: want 100, got %d", m.Count())
	}
	if m.Rate() <= 0 {
		t.Fatal("rate should be positive after marks")
	}
}
