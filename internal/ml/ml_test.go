package ml

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
)

func TestLinearRegressionConverges(t *testing.T) {
	// y = 2x1 - 3x2 + 1 with noise.
	rng := rand.New(rand.NewSource(1))
	m := NewLinearRegression(2)
	for i := 0; i < 20000; i++ {
		x := []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2}
		y := 2*x[0] - 3*x[1] + 1 + rng.NormFloat64()*0.01
		m.Update(Sample{Features: x, Label: y}, 0.05)
	}
	if math.Abs(m.W[0]-2) > 0.1 || math.Abs(m.W[1]+3) > 0.1 || math.Abs(m.B-1) > 0.1 {
		t.Fatalf("did not converge: W=%v B=%v", m.W, m.B)
	}
}

func TestLogisticRegressionSeparates(t *testing.T) {
	// Linearly separable data: positive iff x1 + x2 > 0.
	rng := rand.New(rand.NewSource(2))
	m := NewLogisticRegression(2)
	for i := 0; i < 20000; i++ {
		x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		label := 0.0
		if x[0]+x[1] > 0 {
			label = 1
		}
		m.Update(Sample{Features: x, Label: label}, 0.1)
	}
	correct := 0
	const probes = 2000
	for i := 0; i < probes; i++ {
		x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		want := x[0]+x[1] > 0
		if (m.Predict(x) > 0.5) == want {
			correct++
		}
	}
	if acc := float64(correct) / probes; acc < 0.95 {
		t.Fatalf("accuracy too low: %v", acc)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	m := NewLinearRegression(1)
	m.Update(Sample{Features: []float64{1}, Label: 5}, 0.1)
	c := m.Clone().(*LinearRegression)
	m.Update(Sample{Features: []float64{1}, Label: 5}, 0.1)
	if c.W[0] == m.W[0] {
		t.Fatal("clone shares weights with original")
	}
}

func TestStandardizer(t *testing.T) {
	s := NewStandardizer(1)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		s.Observe([]float64{rng.NormFloat64()*5 + 100})
	}
	// Transformed values should be ~N(0,1).
	var sum, sumSq float64
	const n = 5000
	for i := 0; i < n; i++ {
		v := s.Transform([]float64{rng.NormFloat64()*5 + 100})[0]
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.1 || math.Abs(variance-1) > 0.15 {
		t.Fatalf("standardizer off: mean=%v var=%v", mean, variance)
	}
}

func TestRegistryVersioningAndRollback(t *testing.T) {
	r := NewRegistry()
	if m, v := r.Current(); m != nil || v != 0 {
		t.Fatal("empty registry should have no current model")
	}
	m := NewLinearRegression(1)
	m.W[0] = 1
	v1 := r.Publish(m)
	m.W[0] = 2
	v2 := r.Publish(m)
	if v1 != 1 || v2 != 2 {
		t.Fatalf("versions: %d %d", v1, v2)
	}
	cur, v := r.Current()
	if v != 2 || cur.(*LinearRegression).W[0] != 2 {
		t.Fatalf("current wrong: v=%d w=%v", v, cur.(*LinearRegression).W)
	}
	// Published snapshots are immutable w.r.t. later training.
	m.W[0] = 99
	cur, _ = r.Current()
	if cur.(*LinearRegression).W[0] != 2 {
		t.Fatal("published snapshot mutated by training")
	}
	if err := r.Rollback(1); err != nil {
		t.Fatal(err)
	}
	cur, v = r.Current()
	if v != 1 || cur.(*LinearRegression).W[0] != 1 {
		t.Fatalf("rollback wrong: v=%d", v)
	}
	if err := r.Rollback(9); err == nil {
		t.Fatal("rollback to missing version accepted")
	}
}

func TestTrainAndServeInOnePipeline(t *testing.T) {
	// One stream carries labelled samples; the training operator learns
	// y = 3x and publishes every 200 samples; a serving operator scores a
	// parallel probe stream; later predictions must use later model
	// versions and be more accurate.
	rng := rand.New(rand.NewSource(4))
	var samples []core.Event
	for i := 0; i < 2000; i++ {
		x := rng.Float64()*2 - 1
		samples = append(samples, core.Event{
			Timestamp: int64(i),
			Value:     Sample{Features: []float64{x}, Label: 3 * x},
		})
	}

	registry := NewRegistry()
	trainSink := core.NewCollectSink()
	b := core.NewBuilder(core.Config{Name: "train-serve"})
	src := b.Source("samples", core.NewSliceSourceFactory(samples))
	TrainOperator(src, "train", NewLinearRegression(1), registry, 0.1, 200).
		Sink("train-log", trainSink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := j.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if registry.NumVersions() < 10 {
		t.Fatalf("want >= 10 published versions, got %d", registry.NumVersions())
	}

	// Serve with the final model: prediction for x=0.5 should be ~1.5.
	serveSink := core.NewCollectSink()
	b2 := core.NewBuilder(core.Config{Name: "serve"})
	probe := b2.Source("probes", core.NewSliceSourceFactory([]core.Event{
		{Key: "p", Timestamp: 1, Value: []float64{0.5}},
	}))
	ServeOperator(probe, "serve", registry).Sink("out", serveSink.Factory())
	j2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if serveSink.Len() != 1 {
		t.Fatalf("want 1 prediction, got %d", serveSink.Len())
	}
	pred := serveSink.Events()[0].Value.(Prediction)
	if math.Abs(pred.Score-1.5) > 0.1 {
		t.Fatalf("prediction off: %v", pred.Score)
	}
	if pred.ModelVersion < 10 {
		t.Fatalf("serving should use a late model version, got %d", pred.ModelVersion)
	}

	// Training loss must decrease between early and late publications.
	events := trainSink.Events()
	var first, last PublishEvent
	for _, e := range events {
		pe, ok := e.Value.(PublishEvent)
		if !ok || pe.AvgLoss == 0 {
			continue
		}
		if first.Version == 0 {
			first = pe
		}
		last = pe
	}
	if first.Version == 0 || last.AvgLoss >= first.AvgLoss {
		t.Fatalf("loss did not decrease: first=%+v last=%+v", first, last)
	}
}

func TestServeWithoutModelPassesSilently(t *testing.T) {
	registry := NewRegistry()
	sink := core.NewCollectSink()
	b := core.NewBuilder(core.Config{Name: "serve-empty"})
	src := b.Source("probes", core.NewSliceSourceFactory([]core.Event{
		{Timestamp: 1, Value: []float64{1}},
	}))
	ServeOperator(src, "serve", registry).Sink("out", sink.Factory())
	j, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 0 {
		t.Fatal("predictions emitted without a model")
	}
}
