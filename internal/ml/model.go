// Package ml implements online machine learning inside the stream processor
// (§4.1: "the stream processor can cover the needs for online training, by
// offering constructs such as iterations, dynamic tasks, and shared state";
// "consider a continuous model serving pipeline where a ML model needs to be
// updated while the pipeline is running"). It provides SGD-trained linear
// and logistic models, a feature standardiser, a versioned model registry
// with atomic hot swap, and engine operators for training and serving in the
// same pipeline.
package ml

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Sample is one labelled observation.
type Sample struct {
	Features []float64
	Label    float64
}

// Model is an online-trainable predictor.
type Model interface {
	// Predict scores a feature vector.
	Predict(x []float64) float64
	// Update performs one SGD step on a sample and returns the loss before
	// the step.
	Update(s Sample, lr float64) float64
	// Clone returns an independent deep copy (for publishing snapshots).
	Clone() Model
}

// LinearRegression is a linear model trained with squared-loss SGD.
type LinearRegression struct {
	W []float64
	B float64
}

// NewLinearRegression returns a zero model of the given dimension.
func NewLinearRegression(dim int) *LinearRegression {
	return &LinearRegression{W: make([]float64, dim)}
}

// Predict implements Model.
func (m *LinearRegression) Predict(x []float64) float64 {
	return dot(m.W, x) + m.B
}

// Update implements Model: one squared-loss gradient step.
func (m *LinearRegression) Update(s Sample, lr float64) float64 {
	pred := m.Predict(s.Features)
	err := pred - s.Label
	for i := range m.W {
		if i < len(s.Features) {
			m.W[i] -= lr * err * s.Features[i]
		}
	}
	m.B -= lr * err
	return err * err
}

// Clone implements Model.
func (m *LinearRegression) Clone() Model {
	return &LinearRegression{W: append([]float64(nil), m.W...), B: m.B}
}

// LogisticRegression is a binary classifier trained with log-loss SGD;
// Predict returns the positive-class probability.
type LogisticRegression struct {
	W []float64
	B float64
}

// NewLogisticRegression returns a zero model of the given dimension.
func NewLogisticRegression(dim int) *LogisticRegression {
	return &LogisticRegression{W: make([]float64, dim)}
}

// Predict implements Model.
func (m *LogisticRegression) Predict(x []float64) float64 {
	return sigmoid(dot(m.W, x) + m.B)
}

// Update implements Model: one log-loss gradient step (label in {0,1}).
func (m *LogisticRegression) Update(s Sample, lr float64) float64 {
	p := m.Predict(s.Features)
	grad := p - s.Label
	for i := range m.W {
		if i < len(s.Features) {
			m.W[i] -= lr * grad * s.Features[i]
		}
	}
	m.B -= lr * grad
	// Log loss, clamped for numerical safety.
	eps := 1e-12
	if s.Label > 0.5 {
		return -math.Log(math.Max(p, eps))
	}
	return -math.Log(math.Max(1-p, eps))
}

// Clone implements Model.
func (m *LogisticRegression) Clone() Model {
	return &LogisticRegression{W: append([]float64(nil), m.W...), B: m.B}
}

func dot(w, x []float64) float64 {
	n := len(w)
	if len(x) < n {
		n = len(x)
	}
	var s float64
	for i := 0; i < n; i++ {
		s += w[i] * x[i]
	}
	return s
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// Standardizer maintains running mean/variance per feature (Welford) and
// scales features online — the preprocessing step of a streaming ML
// pipeline.
type Standardizer struct {
	n    float64
	mean []float64
	m2   []float64
}

// NewStandardizer returns a standardiser for the given dimension.
func NewStandardizer(dim int) *Standardizer {
	return &Standardizer{mean: make([]float64, dim), m2: make([]float64, dim)}
}

// Observe folds a feature vector into the running statistics.
func (s *Standardizer) Observe(x []float64) {
	s.n++
	for i := range s.mean {
		if i >= len(x) {
			break
		}
		d := x[i] - s.mean[i]
		s.mean[i] += d / s.n
		s.m2[i] += d * (x[i] - s.mean[i])
	}
}

// Transform returns the standardised copy of x.
func (s *Standardizer) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		if i >= len(s.mean) || s.n < 2 {
			out[i] = x[i]
			continue
		}
		sd := math.Sqrt(s.m2[i] / (s.n - 1))
		if sd == 0 {
			out[i] = 0
			continue
		}
		out[i] = (x[i] - s.mean[i]) / sd
	}
	return out
}

// Registry is a versioned model store supporting atomic hot swap: training
// publishes immutable snapshots; serving reads the current version without
// locking (§4.2 State Versioning applied to models).
type Registry struct {
	mu       sync.Mutex
	versions []Model
	current  atomic.Pointer[registryEntry]
}

type registryEntry struct {
	version int
	model   Model
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Publish stores a snapshot of the model and makes it current; it returns
// the new version number (1-based).
func (r *Registry) Publish(m Model) int {
	snap := m.Clone()
	r.mu.Lock()
	r.versions = append(r.versions, snap)
	v := len(r.versions)
	r.mu.Unlock()
	r.current.Store(&registryEntry{version: v, model: snap})
	return v
}

// Current returns the live model and its version (nil, 0 when empty).
func (r *Registry) Current() (Model, int) {
	e := r.current.Load()
	if e == nil {
		return nil, 0
	}
	return e.model, e.version
}

// Version retrieves a historical snapshot.
func (r *Registry) Version(v int) (Model, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v < 1 || v > len(r.versions) {
		return nil, fmt.Errorf("ml: no model version %d (have %d)", v, len(r.versions))
	}
	return r.versions[v-1], nil
}

// Rollback makes a historical version current again.
func (r *Registry) Rollback(v int) error {
	m, err := r.Version(v)
	if err != nil {
		return err
	}
	r.current.Store(&registryEntry{version: v, model: m})
	return nil
}

// NumVersions returns how many snapshots were published.
func (r *Registry) NumVersions() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.versions)
}
