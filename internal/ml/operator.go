package ml

import (
	"fmt"

	"repro/internal/core"
)

// TrainOperator consumes Sample-valued events, updates a model with SGD, and
// publishes a snapshot to the registry every PublishEvery samples — the
// "training within the same pipeline as model serving" design of §4.1.
// Run it with parallelism 1 (the model is instance-local shared state).
func TrainOperator(s *core.Stream, name string, model Model, registry *Registry, lr float64, publishEvery int) *core.Stream {
	fac := func() core.Operator {
		return &trainOp{model: model, registry: registry, lr: lr, publishEvery: publishEvery}
	}
	return s.ProcessWith(name, fac, 1)
}

type trainOp struct {
	core.BaseOperator
	model        Model
	registry     *Registry
	lr           float64
	publishEvery int
	seen         int
	lossSum      float64
}

func (o *trainOp) ProcessElement(e core.Event, ctx core.Context) error {
	sample, ok := e.Value.(Sample)
	if !ok {
		return fmt.Errorf("ml: train operator expects Sample values, got %T", e.Value)
	}
	loss := o.model.Update(sample, o.lr)
	o.lossSum += loss
	o.seen++
	if o.publishEvery > 0 && o.seen%o.publishEvery == 0 {
		v := o.registry.Publish(o.model)
		avg := o.lossSum / float64(o.publishEvery)
		o.lossSum = 0
		ctx.Emit(core.Event{
			Key:       "model",
			Timestamp: e.Timestamp,
			Value:     PublishEvent{Version: v, AvgLoss: avg, Samples: o.seen},
		})
	}
	return nil
}

// Close publishes the final model so short streams still serve something.
func (o *trainOp) Close(ctx core.Context) error {
	if o.seen > 0 {
		v := o.registry.Publish(o.model)
		ctx.Emit(core.Event{Key: "model", Value: PublishEvent{Version: v, Samples: o.seen}})
	}
	return nil
}

// PublishEvent reports a model publication downstream.
type PublishEvent struct {
	Version int
	AvgLoss float64
	Samples int
}

// ServeOperator scores each event's feature vector ([]float64 value) with
// the registry's current model, emitting Prediction values; the model hot
// swaps under the pipeline as training publishes new versions.
func ServeOperator(s *core.Stream, name string, registry *Registry) *core.Stream {
	fac := func() core.Operator { return &serveOp{registry: registry} }
	return s.Process(name, fac)
}

type serveOp struct {
	core.BaseOperator
	registry *Registry
}

// Prediction is one scored event.
type Prediction struct {
	Score        float64
	ModelVersion int
}

func (o *serveOp) ProcessElement(e core.Event, ctx core.Context) error {
	features, ok := e.Value.([]float64)
	if !ok {
		if s, ok := e.Value.(Sample); ok {
			features = s.Features
		} else {
			return fmt.Errorf("ml: serve operator expects []float64 or Sample, got %T", e.Value)
		}
	}
	m, v := o.registry.Current()
	if m == nil {
		// No model yet: pass through unscored.
		return nil
	}
	ctx.Emit(core.Event{
		Key:       e.Key,
		Timestamp: e.Timestamp,
		Value:     Prediction{Score: m.Predict(features), ModelVersion: v},
	})
	return nil
}
