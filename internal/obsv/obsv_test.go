package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestTracerRecordsSpans(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.Begin("checkpoint", "", "job").SetInt("checkpoint", 3).SetAttr("savepoint", "true")
	sp.End()
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("want 1 span, got %d", len(spans))
	}
	s := spans[0]
	if s.Name != "checkpoint" || s.Instance != "job" {
		t.Fatalf("span identity wrong: %+v", s)
	}
	if s.Attrs["checkpoint"] != "3" || s.Attrs["savepoint"] != "true" {
		t.Fatalf("span attrs wrong: %v", s.Attrs)
	}
	if s.EndUnixNano < s.StartUnixNano || s.DurationNs < 0 {
		t.Fatalf("span timing wrong: %+v", s)
	}
}

func TestTracerRingEvictsOldest(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Begin("s", "", "").SetInt("i", int64(i)).End()
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring size: want 4, got %d", len(spans))
	}
	if got, want := spans[0].Attrs["i"], "6"; got != want {
		t.Fatalf("oldest retained span: want i=%s, got i=%s", want, got)
	}
	if got, want := spans[3].Attrs["i"], "9"; got != want {
		t.Fatalf("newest retained span: want i=%s, got i=%s", want, got)
	}
	if tr.Total() != 10 {
		t.Fatalf("total: want 10, got %d", tr.Total())
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin("x", "", "")
	sp.SetAttr("k", "v").SetInt("n", 1)
	sp.End() // must not panic
	if tr.Spans() != nil || tr.Total() != 0 {
		t.Fatal("nil tracer should report nothing")
	}
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var spans []Span
	if err := json.Unmarshal([]byte(b.String()), &spans); err != nil {
		t.Fatalf("nil tracer JSON invalid: %v", err)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := metrics.NewRegistry()
	r.Counter("node.win-5s.in").Add(42)
	r.Gauge("node.win-5s.0.queue_depth").Set(7)
	r.GaugeFunc("live.credits", func() int64 { return 3 })
	h := r.Histogram("node.win-5s.latency_ns")
	h.Observe(100)
	h.Observe(100_000)
	r.Meter("throughput").Mark(10)

	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE node_win_5s_in counter",
		"node_win_5s_in 42",
		"# TYPE node_win_5s_0_queue_depth gauge",
		"node_win_5s_0_queue_depth 7",
		"live_credits 3",
		"# TYPE node_win_5s_latency_ns histogram",
		`node_win_5s_latency_ns_bucket{le="+Inf"} 2`,
		"node_win_5s_latency_ns_sum 100100",
		"node_win_5s_latency_ns_count 2",
		"throughput_total 10",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative and ascending.
	if !strings.Contains(out, `node_win_5s_latency_ns_bucket{le="127"} 1`) {
		t.Fatalf("expected cumulative bucket for 100 at le=127:\n%s", out)
	}
}

func TestWritePrometheusQuantiles(t *testing.T) {
	r := metrics.NewRegistry()
	h := r.Histogram("node.win.latency_ns")
	// 99 small observations and one huge one: p50 must sit in the small
	// bucket, p99 in the large one, exactly as Histogram.Quantile reports.
	for i := 0; i < 99; i++ {
		h.Observe(100)
	}
	h.Observe(1_000_000)

	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE node_win_latency_ns_quantile gauge",
		fmt.Sprintf(`node_win_latency_ns_quantile{quantile="0.5"} %d`, h.Quantile(0.5)),
		fmt.Sprintf(`node_win_latency_ns_quantile{quantile="0.95"} %d`, h.Quantile(0.95)),
		fmt.Sprintf(`node_win_latency_ns_quantile{quantile="0.99"} %d`, h.Quantile(0.99)),
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	if h.Quantile(0.99) <= h.Quantile(0.5) {
		t.Fatalf("tail quantile should exceed median: p50=%d p99=%d", h.Quantile(0.5), h.Quantile(0.99))
	}
}

func TestServerEndpoints(t *testing.T) {
	r := metrics.NewRegistry()
	r.Counter("node.map.in").Add(5)
	tr := NewTracer(4)
	tr.Begin("operator.process", "map", "map-0").End()
	jobs := func() []JobInfo {
		return []JobInfo{{
			Name:  "demo",
			Nodes: []NodeInfo{{Name: "src", Parallelism: 1, Source: true}, {Name: "map", Parallelism: 2, In: 5}},
			Edges: []EdgeInfo{{From: "src", To: "map", Partition: "rebalance"}},
		}}
	}
	srv := httptest.NewServer(NewServer(r, tr, jobs).Handler())
	defer srv.Close()

	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d\n%s", path, resp.StatusCode, body)
		}
		return string(body)
	}

	if out := get("/metrics"); !strings.Contains(out, "node_map_in 5") {
		t.Fatalf("/metrics missing counter:\n%s", out)
	}
	var gotJobs []JobInfo
	if err := json.Unmarshal([]byte(get("/jobs")), &gotJobs); err != nil {
		t.Fatal(err)
	}
	if len(gotJobs) != 1 || gotJobs[0].Name != "demo" || len(gotJobs[0].Nodes) != 2 {
		t.Fatalf("/jobs unexpected: %+v", gotJobs)
	}
	var spans []Span
	if err := json.Unmarshal([]byte(get("/traces")), &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Operator != "map" {
		t.Fatalf("/traces unexpected: %+v", spans)
	}
}

func TestServerStartClose(t *testing.T) {
	s := NewServer(metrics.NewRegistry(), nil, nil)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Addr() == "" {
		t.Fatal("no bound address")
	}
}

// TestServerCloseJoinsServeGoroutine pins the fix for the unjoined serve
// goroutine: Close now waits for the background Serve loop to return, so a
// returned Close guarantees nothing from this server runs afterwards. With
// the join in place the goroutine count is back to baseline immediately after
// Close — no sleep, no retry.
func TestServerCloseJoinsServeGoroutine(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		s := NewServer(metrics.NewRegistry(), nil, nil)
		if err := s.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines grew from %d to %d across five start/close cycles", before, after)
	}
}

// TestServerCloseReleasesAddr: after Close returns, the exact address can be
// bound again — shutdown is complete, not merely initiated.
func TestServerCloseReleasesAddr(t *testing.T) {
	s1 := NewServer(metrics.NewRegistry(), nil, nil)
	if err := s1.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := s1.Addr()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := NewServer(metrics.NewRegistry(), nil, nil)
	if err := s2.Start(addr); err != nil {
		t.Fatalf("rebinding %s after Close: %v", addr, err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}
