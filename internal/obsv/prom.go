package obsv

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/metrics"
)

// WritePrometheus renders every metric in the registry in the Prometheus
// text exposition format (version 0.0.4):
//
//   - counters   -> `# TYPE name counter` with a `name` sample
//   - gauges     -> `# TYPE name gauge` (stored and callback gauges alike)
//   - histograms -> `# TYPE name histogram` with cumulative `name_bucket`
//     samples over the registry histogram's exponential bounds,
//     plus `name_sum` and `name_count`, plus a summary-style companion
//     gauge family `name_quantile{quantile="0.5"|"0.95"|"0.99"}` so
//     scrapers see the same tail estimates the engine itself reports
//     (Histogram.Quantile's bucket upper bounds) without re-deriving them
//     from the exponential buckets
//   - meters     -> `name_total` counter plus `name_rate` (EWMA) and
//     `name_lifetime_rate` gauges
//
// Metric names are sanitised to the Prometheus grammar: every character
// outside [a-zA-Z0-9_:] becomes '_' (so "node.win-5s.in" serves as
// "node_win_5s_in").
func WritePrometheus(w io.Writer, r *metrics.Registry) error {
	var err error
	emit := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	r.Each(metrics.Visitor{
		Counter: func(name string, c *metrics.Counter) {
			n := promName(name)
			emit("# TYPE %s counter\n%s %d\n", n, n, c.Value())
		},
		Gauge: func(name string, v int64) {
			n := promName(name)
			emit("# TYPE %s gauge\n%s %d\n", n, n, v)
		},
		Histogram: func(name string, h *metrics.Histogram) {
			n := promName(name)
			snap := h.Export()
			emit("# TYPE %s histogram\n", n)
			cum := int64(0)
			for _, b := range snap.Buckets {
				cum += b.Count
				emit("%s_bucket{le=\"%d\"} %d\n", n, b.UpperBound, cum)
			}
			emit("%s_bucket{le=\"+Inf\"} %d\n", n, snap.Count)
			emit("%s_sum %d\n%s_count %d\n", n, snap.Sum, n, snap.Count)
			// The `name` family is a histogram, whose sample vocabulary is
			// fixed (_bucket/_sum/_count) — the quantiles go out as a
			// separate gauge family to stay within the exposition grammar.
			emit("# TYPE %s_quantile gauge\n", n)
			for _, q := range promQuantiles {
				emit("%s_quantile{quantile=\"%s\"} %d\n", n, q.label, h.Quantile(q.q))
			}
		},
		Meter: func(name string, m *metrics.Meter) {
			n := promName(name)
			emit("# TYPE %s_total counter\n%s_total %d\n", n, n, m.Count())
			emit("# TYPE %s_rate gauge\n%s_rate %g\n", n, n, m.Rate())
			emit("# TYPE %s_lifetime_rate gauge\n%s_lifetime_rate %g\n", n, n, m.LifetimeRate())
		},
	})
	return err
}

// promQuantiles are the exported tail estimates, matching the quantiles the
// engine's own Snapshot strings and the bench harness record.
var promQuantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.50},
	{"0.95", 0.95},
	{"0.99", 0.99},
}

func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
